//! Static verification gate for the shipped workload suites.
//!
//! ```text
//! verify-workloads [ABBREV ...] [--config baseline|large] [--report PATH]
//! ```
//!
//! With no abbreviations, analyzes the whole extended suite (Table II plus
//! MUM). Prints one summary line per benchmark plus every diagnostic, and
//! exits non-zero if any benchmark has an unwaived error or warning. With
//! `--report PATH`, additionally writes the full per-benchmark reports
//! (metrics and diagnostics) to `PATH` — `cargo xtask check` uploads that
//! file as a CI artifact.

use std::process::ExitCode;

use gpu_sim::GpuConfig;
use ws_analyze::{verify_suite, Report};
use ws_workloads::{by_abbrev, extended_suite, Benchmark};

struct Options {
    benches: Vec<Benchmark>,
    cfg: GpuConfig,
    report_path: Option<String>,
}

fn usage() -> String {
    "usage: verify-workloads [ABBREV ...] [--config baseline|large] [--report PATH]\n\
     \n\
     Statically verifies the synthetic workload suite (all of it, or only the\n\
     named Table II abbreviations; MUM resolves too). Exits non-zero on any\n\
     unwaived error or warning."
        .to_string()
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut abbrevs: Vec<String> = Vec::new();
    let mut cfg = GpuConfig::isca_baseline();
    let mut report_path = None;
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => return Err(usage()),
            "--report" => {
                report_path = Some(
                    args.next()
                        .ok_or_else(|| "--report needs a path".to_string())?,
                );
            }
            "--config" => {
                let name = args
                    .next()
                    .ok_or_else(|| "--config needs a name".to_string())?;
                cfg = match name.as_str() {
                    "baseline" => GpuConfig::isca_baseline(),
                    "large" => GpuConfig::large(),
                    other => return Err(format!("unknown config `{other}`")),
                };
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            abbrev => abbrevs.push(abbrev.to_string()),
        }
    }
    let benches = if abbrevs.is_empty() {
        extended_suite()
    } else {
        let mut v = Vec::with_capacity(abbrevs.len());
        for a in &abbrevs {
            let b = by_abbrev(a).ok_or_else(|| format!("unknown benchmark `{a}`"))?;
            v.push(b);
        }
        v
    };
    Ok(Options {
        benches,
        cfg,
        report_path,
    })
}

fn summarize(report: &Report) -> String {
    let n_err = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == ws_analyze::Severity::Error)
        .count();
    let n_warn = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == ws_analyze::Severity::Warning)
        .count();
    let verdict = if report.is_clean() { "ok" } else { "FAIL" };
    format!(
        "{:<4} {verdict:<4} max CTAs/SM {} | traffic/inst {:.2} | RAW dominant {} | \
         {n_err} error(s), {n_warn} warning(s)",
        report.subject,
        report.metrics.max_ctas,
        report.metrics.global_traffic,
        report
            .metrics
            .dominant_raw_distance
            .map_or_else(|| "-".to_string(), |d| d.to_string()),
    )
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let reports = verify_suite(&opts.benches, &opts.cfg);
    let mut failed = false;
    for report in &reports {
        println!("{}", summarize(report));
        for diag in report.failures() {
            let span = diag.span.map_or_else(String::new, |s| format!(":inst {s}"));
            println!(
                "  {}{span}: {}: [{}] {}",
                report.subject, diag.severity, diag.rule, diag.message
            );
            if let Some(fix) = &diag.suggestion {
                println!("  {}{span}: help: {fix}", report.subject);
            }
        }
        failed |= !report.is_clean();
    }
    if let Some(path) = &opts.report_path {
        let mut text = String::new();
        for report in &reports {
            text.push_str(&report.to_string());
            text.push('\n');
        }
        if let Err(err) = std::fs::write(path, text) {
            eprintln!("cannot write report to {path}: {err}");
            return ExitCode::FAILURE;
        }
        println!("report written to {path}");
    }
    if failed {
        eprintln!("verify-workloads: FAILED (unwaived diagnostics above)");
        ExitCode::FAILURE
    } else {
        println!("verify-workloads: all {} benchmark(s) clean", reports.len());
        ExitCode::SUCCESS
    }
}
