//! Register-dataflow analysis of synthetic loop bodies.
//!
//! Every warp executes the loop body repeatedly, so definitions flow across
//! the iteration boundary: a read at instruction `i` of a register whose
//! only definition sits at `j > i` is reached by the *previous iteration's*
//! write. The reaching-definition state entering the body is computed as the
//! fixpoint over the loop back-edge. Because the body is straight-line code,
//! the transfer function is idempotent: the state leaving the body after one
//! symbolic pass (the last definition of each register) *is* the fixpoint,
//! and a second pass would not change it.
//!
//! The analysis classifies every register read as one of:
//!
//! * a **same-iteration read** — a definition precedes it in the body; its
//!   RAW distance is the instruction-slot gap to the nearest one;
//! * a **loop-carried read** — only a later definition exists, so the value
//!   crosses the back-edge; its RAW distance wraps (`i + body_len - j`) and
//!   on the very first iteration the read sees a live-in value, which the
//!   simulator models as ready-at-launch (counted in
//!   [`Dataflow::first_iter_uninit_reads`]);
//! * a **never-defined read** — no instruction in the body writes the
//!   register in any iteration. These are hard verifier errors
//!   (`gpu_sim::verify` rejects them) and are excluded from the histogram.
//!
//! The RAW dependence-distance histogram drives the scaling-archetype
//! consistency rules: a dominant distance of 1 serializes the warp (the
//! compute-non-saturating shape of Fig. 3a of the paper), while larger
//! distances expose instruction-level parallelism and saturate early.

use gpu_sim::{Program, Reg, NUM_VIRTUAL_REGS};

/// Maps a register name onto its slot in the virtual register window,
/// mirroring the masking in `gpu_sim::verify`.
fn reg_slot(reg: Reg) -> usize {
    usize::from(reg) % NUM_VIRTUAL_REGS
}

/// The dataflow facts derived from one loop body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dataflow {
    /// `raw_histogram[d - 1]` counts register reads whose nearest reaching
    /// definition is `d` instruction slots away (wrapping across the loop
    /// back-edge). Distances range over `1..=body_len`.
    pub raw_histogram: Vec<usize>,
    /// Reads of registers no instruction in the body ever defines, as
    /// `(instruction index, register)` pairs.
    pub never_defined: Vec<(usize, Reg)>,
    /// Loop-carried reads: on iteration 1 these consume a live-in value
    /// rather than a value computed by the body.
    pub first_iter_uninit_reads: usize,
}

impl Dataflow {
    /// Total register reads that carry a RAW dependence.
    #[must_use]
    pub fn total_reads(&self) -> usize {
        self.raw_histogram.iter().sum()
    }

    /// Median RAW distance over all reads, or `None` if the body reads no
    /// defined register.
    #[must_use]
    pub fn median_raw_distance(&self) -> Option<usize> {
        let total = self.total_reads();
        if total == 0 {
            return None;
        }
        let midpoint = total.div_ceil(2);
        let mut seen = 0usize;
        for (idx, count) in self.raw_histogram.iter().enumerate() {
            seen += count;
            if seen >= midpoint {
                return Some(idx + 1);
            }
        }
        None
    }

    /// The most common RAW distance (ties break toward the shorter
    /// distance), or `None` if the body reads no defined register. More
    /// robust than the median for archetype classification: the generator's
    /// primary dependence chain concentrates mass at exactly the configured
    /// `dep_distance`, while the random second operands spread thinly.
    #[must_use]
    pub fn dominant_raw_distance(&self) -> Option<usize> {
        let best = self
            .raw_histogram
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))?;
        if *best.1 == 0 {
            None
        } else {
            Some(best.0 + 1)
        }
    }
}

/// Runs the reaching-definition fixpoint over a loop body and collects the
/// RAW dependence-distance histogram.
#[must_use]
pub fn analyze(program: &Program) -> Dataflow {
    let len = program.len();
    // Fixpoint seed: the state entering the body equals the state leaving
    // it, i.e. the position of each register's last definition.
    let mut live_in: Vec<Option<usize>> = vec![None; NUM_VIRTUAL_REGS];
    for (i, inst) in program.iter().enumerate() {
        if let Some(dst) = inst.dst {
            if let Some(slot) = live_in.get_mut(reg_slot(dst)) {
                *slot = Some(i);
            }
        }
    }

    let mut current: Vec<Option<usize>> = vec![None; NUM_VIRTUAL_REGS];
    let mut raw_histogram = vec![0usize; len];
    let mut never_defined = Vec::new();
    let mut first_iter_uninit_reads = 0usize;
    for (i, inst) in program.iter().enumerate() {
        for src in inst.srcs.iter().flatten() {
            let slot = reg_slot(*src);
            let distance = match current.get(slot).copied().flatten() {
                Some(def) => i - def,
                None => match live_in.get(slot).copied().flatten() {
                    Some(def) => {
                        first_iter_uninit_reads += 1;
                        i + len - def
                    }
                    None => {
                        never_defined.push((i, *src));
                        continue;
                    }
                },
            };
            // Distances are in 1..=len by construction (a same-iteration
            // definition strictly precedes the read; a wrapped one is at
            // most a full body away).
            if let Some(bucket) = raw_histogram.get_mut(distance.saturating_sub(1)) {
                *bucket += 1;
            }
        }
        if let Some(dst) = inst.dst {
            if let Some(slot) = current.get_mut(reg_slot(dst)) {
                *slot = Some(i);
            }
        }
    }

    Dataflow {
        raw_histogram,
        never_defined,
        first_iter_uninit_reads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Inst, OpClass, Program, ProgramSpec};

    fn alu(dst: Option<Reg>, srcs: [Option<Reg>; 2]) -> Inst {
        Inst {
            op: OpClass::Alu,
            dst,
            srcs,
        }
    }

    #[test]
    fn same_iteration_distance_is_the_gap() {
        // r0 <- ...; r1 <- r0: distance 1. r2 <- r0: distance 2.
        let p = Program::new(vec![
            alu(Some(0), [None, None]),
            alu(Some(1), [Some(0), None]),
            alu(Some(2), [Some(0), None]),
        ]);
        let flow = analyze(&p);
        assert_eq!(flow.raw_histogram, vec![1, 1, 0]);
        assert_eq!(flow.first_iter_uninit_reads, 0);
        assert!(flow.never_defined.is_empty());
    }

    #[test]
    fn loop_carried_reads_wrap_and_count_as_live_in() {
        // inst 0 reads r1, defined only at inst 1: the previous iteration's
        // write reaches it at distance 0 + 2 - 1 = 1.
        let p = Program::new(vec![
            alu(Some(0), [Some(1), None]),
            alu(Some(1), [Some(0), None]),
        ]);
        let flow = analyze(&p);
        assert_eq!(flow.raw_histogram, vec![2, 0]);
        assert_eq!(flow.first_iter_uninit_reads, 1);
    }

    #[test]
    fn self_recurrence_has_distance_body_len() {
        // A single instruction reading its own destination: the value
        // crosses the whole loop, distance = body length = 1.
        let p = Program::new(vec![alu(Some(3), [Some(3), None])]);
        let flow = analyze(&p);
        assert_eq!(flow.raw_histogram, vec![1]);
        assert_eq!(flow.first_iter_uninit_reads, 1);
    }

    #[test]
    fn never_defined_reads_are_reported_not_counted() {
        let p = Program::new(vec![
            alu(Some(0), [Some(9), None]), // r9 never written
            alu(Some(1), [Some(0), None]),
        ]);
        let flow = analyze(&p);
        assert_eq!(flow.never_defined, vec![(0, 9)]);
        assert_eq!(flow.total_reads(), 1);
    }

    #[test]
    fn median_and_dominant_summarize_the_histogram() {
        let flow = Dataflow {
            raw_histogram: vec![5, 1, 1, 0],
            never_defined: Vec::new(),
            first_iter_uninit_reads: 0,
        };
        assert_eq!(flow.median_raw_distance(), Some(1));
        assert_eq!(flow.dominant_raw_distance(), Some(1));
        let flow = Dataflow {
            raw_histogram: vec![1, 1, 6, 6],
            never_defined: Vec::new(),
            first_iter_uninit_reads: 0,
        };
        assert_eq!(flow.median_raw_distance(), Some(3));
        assert_eq!(flow.dominant_raw_distance(), Some(3), "ties break short");
        let empty = Dataflow {
            raw_histogram: vec![0, 0],
            never_defined: Vec::new(),
            first_iter_uninit_reads: 0,
        };
        assert_eq!(empty.median_raw_distance(), None);
        assert_eq!(empty.dominant_raw_distance(), None);
    }

    #[test]
    fn generated_dependence_chain_dominates_the_histogram() {
        for dep in [1usize, 2, 4, 8] {
            let p = ProgramSpec {
                body_len: 100,
                gload_frac: 0.1,
                gstore_frac: 0.03,
                dep_distance: dep,
                seed: 7,
                ..ProgramSpec::default()
            }
            .generate();
            let flow = analyze(&p);
            assert_eq!(
                flow.dominant_raw_distance(),
                Some(dep),
                "dep_distance {dep} should dominate"
            );
        }
    }
}
