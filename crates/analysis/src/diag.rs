//! Structured analyzer diagnostics: rule identifiers, severities, spans
//! into the instruction list, suggested fixes, and per-kernel reports
//! rendered in the same `file:line: [rule] message` shape as the
//! `cargo xtask lint` findings.

use std::fmt;

/// How severe a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Derived metric or note; never fails the gate.
    Info,
    /// Suspicious but simulatable; fails the gate unless waived.
    Warning,
    /// The simulator cannot produce a meaningful result; fails the gate and
    /// the `Gpu` launch pre-flight. Errors cannot be waived.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Info => write!(f, "info"),
            Self::Warning => write!(f, "warning"),
            Self::Error => write!(f, "error"),
        }
    }
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable rule identifier (see [`crate::rules`] for the catalogue).
    pub rule: &'static str,
    /// Severity; the gate fails on anything above [`Severity::Info`].
    pub severity: Severity,
    /// Index into the kernel's loop-body instruction list, when the finding
    /// concerns one instruction.
    pub span: Option<usize>,
    /// Human-oriented explanation of the defect.
    pub message: String,
    /// A concrete suggested fix, when one exists.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// Builds an error diagnostic.
    #[must_use]
    pub fn error(rule: &'static str, span: Option<usize>, message: String) -> Self {
        Self {
            rule,
            severity: Severity::Error,
            span,
            message,
            suggestion: None,
        }
    }

    /// Builds a warning diagnostic.
    #[must_use]
    pub fn warning(rule: &'static str, span: Option<usize>, message: String) -> Self {
        Self {
            rule,
            severity: Severity::Warning,
            span,
            message,
            suggestion: None,
        }
    }

    /// Builds an informational diagnostic.
    #[must_use]
    pub fn info(rule: &'static str, message: String) -> Self {
        Self {
            rule,
            severity: Severity::Info,
            span: None,
            message,
            suggestion: None,
        }
    }

    /// Attaches a suggested fix.
    #[must_use]
    pub fn with_suggestion(mut self, suggestion: String) -> Self {
        self.suggestion = Some(suggestion);
        self
    }
}

/// Per-kernel statically derived metrics, printed by the report mode and
/// consumed by the declared-vs-derived consistency rules.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticMetrics {
    /// Loop-body length in instructions.
    pub body_len: usize,
    /// Loop iterations per warp.
    pub iterations: u32,
    /// Fraction of the body on the ALU pipeline.
    pub alu_frac: f64,
    /// Fraction of the body on the SFU pipeline.
    pub sfu_frac: f64,
    /// Fraction of the body that is global loads.
    pub gload_frac: f64,
    /// Fraction of the body that is global stores.
    pub gstore_frac: f64,
    /// Fraction of the body that is shared-memory accesses.
    pub shmem_frac: f64,
    /// Fraction of the body that is CTA-wide barriers.
    pub barrier_frac: f64,
    /// Fraction of the body occupying the load/store unit.
    pub lsu_frac: f64,
    /// Global-memory transactions generated per warp instruction
    /// (global fraction x transactions per access).
    pub global_traffic: f64,
    /// Arithmetic instructions per global-memory transaction — the static
    /// arithmetic-intensity proxy. `f64::INFINITY` for kernels with no
    /// global traffic.
    pub arithmetic_intensity: f64,
    /// Median nearest-definition RAW distance across all register reads
    /// (`None` when the body reads no registers).
    pub median_raw_distance: Option<usize>,
    /// Most common nearest-definition RAW distance (ties break short); the
    /// generator's dependence chain concentrates mass here.
    pub dominant_raw_distance: Option<usize>,
    /// RAW dependence-distance histogram: `raw_histogram[d]` counts reads
    /// whose nearest reaching definition is `d + 1` instruction slots away.
    pub raw_histogram: Vec<usize>,
    /// Reads with no same-iteration definition (live-ins on iteration 1).
    pub first_iter_uninit_reads: usize,
    /// Maximum resident CTAs per SM by each resource:
    /// `[threads, registers, shared memory, CTA slots]`.
    pub max_ctas_by: [u32; 4],
    /// Overall maximum CTAs per SM (the minimum over `max_ctas_by`).
    pub max_ctas: u32,
}

/// The analyzer's output for one kernel: the derived metrics plus every
/// diagnostic, with waived findings downgraded to [`Severity::Info`].
#[derive(Debug, Clone)]
pub struct Report {
    /// Kernel or benchmark name the report describes.
    pub subject: String,
    /// Statically derived metrics.
    pub metrics: StaticMetrics,
    /// All findings, hardest first.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Whether the kernel passes the gate: no diagnostic above
    /// [`Severity::Info`].
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics
            .iter()
            .all(|d| d.severity == Severity::Info)
    }

    /// The diagnostics that fail the gate (severity above info).
    pub fn failures(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity > Severity::Info)
    }

    /// Sorts diagnostics by severity (errors first), then rule, then span.
    pub fn sort(&mut self) {
        self.diagnostics
            .sort_by(|a, b| (b.severity, a.rule, a.span).cmp(&(a.severity, b.rule, b.span)));
    }
}

/// Renders a per-resource CTA quota; `u32::MAX` marks a resource with zero
/// per-CTA demand, which never binds.
fn quota(v: u32) -> String {
    if v == u32::MAX {
        "-".to_string()
    } else {
        v.to_string()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = &self.metrics;
        writeln!(
            f,
            "{}: {} insts x {} iters | alu {:.2} sfu {:.2} gload {:.2} gstore {:.2} \
             shm {:.2} bar {:.2}",
            self.subject,
            m.body_len,
            m.iterations,
            m.alu_frac,
            m.sfu_frac,
            m.gload_frac,
            m.gstore_frac,
            m.shmem_frac,
            m.barrier_frac
        )?;
        let dist = |d: Option<usize>| d.map_or_else(|| "-".to_string(), |d| d.to_string());
        writeln!(
            f,
            "{}: lsu {:.2} | traffic/inst {:.2} | arith intensity {:.1} | RAW median {} \
             dominant {} | live-in reads {}",
            self.subject,
            m.lsu_frac,
            m.global_traffic,
            m.arithmetic_intensity,
            dist(m.median_raw_distance),
            dist(m.dominant_raw_distance),
            m.first_iter_uninit_reads
        )?;
        let [by_threads, by_regs, by_shmem, by_slots] = m.max_ctas_by;
        writeln!(
            f,
            "{}: max CTAs/SM {} (threads {}, regs {}, shmem {}, slots {})",
            self.subject,
            quota(m.max_ctas),
            quota(by_threads),
            quota(by_regs),
            quota(by_shmem),
            quota(by_slots)
        )?;
        for d in &self.diagnostics {
            let span = d.span.map_or_else(String::new, |s| format!(":inst {s}"));
            writeln!(
                f,
                "{}{}: {}: [{}] {}",
                self.subject, span, d.severity, d.rule, d.message
            )?;
            if let Some(fix) = &d.suggestion {
                writeln!(f, "{}{}: help: {}", self.subject, span, fix)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> StaticMetrics {
        StaticMetrics {
            body_len: 4,
            iterations: 2,
            alu_frac: 0.5,
            sfu_frac: 0.0,
            gload_frac: 0.25,
            gstore_frac: 0.0,
            shmem_frac: 0.25,
            barrier_frac: 0.0,
            lsu_frac: 0.5,
            global_traffic: 0.25,
            arithmetic_intensity: 2.0,
            median_raw_distance: Some(2),
            dominant_raw_distance: Some(2),
            raw_histogram: vec![0, 3],
            first_iter_uninit_reads: 1,
            max_ctas_by: [8, 8, 8, 8],
            max_ctas: 8,
        }
    }

    #[test]
    fn severity_ordering_drives_gate() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn clean_report_has_no_failures() {
        let r = Report {
            subject: "K".into(),
            metrics: metrics(),
            diagnostics: vec![Diagnostic::info("note", "fyi".into())],
        };
        assert!(r.is_clean());
        assert_eq!(r.failures().count(), 0);
    }

    #[test]
    fn errors_sort_before_warnings() {
        let mut r = Report {
            subject: "K".into(),
            metrics: metrics(),
            diagnostics: vec![
                Diagnostic::warning("w", None, "later".into()),
                Diagnostic::error("e", Some(3), "first".into()),
            ],
        };
        r.sort();
        assert_eq!(r.diagnostics[0].rule, "e");
        assert!(!r.is_clean());
        assert_eq!(r.failures().count(), 2);
    }

    #[test]
    fn report_renders_rule_and_span() {
        let r = Report {
            subject: "BLK".into(),
            metrics: metrics(),
            diagnostics: vec![
                Diagnostic::error("never-defined-read", Some(7), "r9".into())
                    .with_suggestion("define r9 somewhere in the body".into()),
            ],
        };
        let text = r.to_string();
        assert!(text.contains("BLK:inst 7: error: [never-defined-read] r9"));
        assert!(text.contains("help: define r9"));
    }
}
