//! # ws-analyze
//!
//! Static kernel-IR verifier and dataflow analyzer for the Warped-Slicer
//! synthetic workloads. Without simulating a single cycle, it checks that a
//! [`gpu_sim::KernelDesc`] can execute meaningfully and that a classified
//! [`ws_workloads::Benchmark`] actually exhibits the properties it declares:
//!
//! * **Hard rules** (shared with the `Gpu::try_add_kernel` launch
//!   pre-flight): Eq. 1 resource feasibility against the SM configuration
//!   (zero occupancy is a hard error), register reads that no instruction
//!   ever defines, operand-carrying barriers, destination-less loads, and
//!   structural zeroes.
//! * **Dataflow** ([`dataflow`]): a reaching-definition fixpoint across the
//!   loop back-edge yields the RAW dependence-distance histogram, the
//!   live-in read count, and the dominant dependence distance that drives
//!   compute-scaling behaviour (Fig. 3a of the paper).
//! * **Kernel warnings**: declared memory footprints vs the address-space
//!   geometry, tiles vs L1 capacity, clamped transaction counts,
//!   shared-memory allocation/usage mismatches, degenerate barriers.
//! * **Consistency rules**: declared `WorkloadClass` / `ScalingArchetype`
//!   vs the derived global-traffic rate and dominant RAW distance.
//!
//! Findings are structured [`Diagnostic`]s (stable rule id, severity, span,
//! suggested fix). A benchmark may suppress a *warning* with a
//! [`ws_workloads::Waiver`] carrying a written justification; errors cannot
//! be waived, and an empty justification is itself an error.
//!
//! The `verify-workloads` binary (wired into `cargo xtask check`) runs
//! [`verify_suite`] over the shipped suites and fails on any unwaived
//! finding.
//!
//! ```
//! use gpu_sim::GpuConfig;
//! use ws_analyze::analyze_benchmark;
//!
//! let cfg = GpuConfig::isca_baseline();
//! let report = analyze_benchmark(&ws_workloads::hot(), &cfg);
//! assert!(report.is_clean());
//! assert_eq!(report.metrics.max_ctas, 6);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod dataflow;
pub mod diag;
pub mod predict;
pub mod rules;

pub use dataflow::Dataflow;
pub use diag::{Diagnostic, Report, Severity, StaticMetrics};
pub use predict::{
    extract_features, knee_of, predict_curve, predict_kernel, Features, PerfCurve, KNEE_TOL,
};
pub use rules::{
    analyze_benchmark, analyze_kernel, rule_catalogue, verify_suite, ANALYSIS_RULES, HARD_RULES,
};
