//! `ws-predict`: static performance prediction from the kernel IR.
//!
//! The analyzer walks the loop body with the reaching-definition fixpoint of
//! [`crate::dataflow`] and abstracts each kernel into a small feature vector
//! ([`Features`]): memory intensity φ_mem from load/store density, an ILP
//! bound from the RAW dependence-distance histogram, an MLP bound (how many
//! independent global loads one warp keeps in flight), a
//! barrier-serialization factor, and the Eq. 1 occupancy-feasible CTA range
//! (shared with the launch pre-flight via [`gpu_sim::occupancy_breakdown`]).
//!
//! The features are composed through an **analytic contention model** into a
//! predicted [`PerfCurve`]: IPC at every feasible CTA count, plus the
//! predicted knee (the smallest CTA count within [`KNEE_TOL`] of the curve's
//! peak — the Fig. 3a operating point Warped-Slicer's water-filling cares
//! about). The model mirrors the simulator's actual bottlenecks:
//!
//! * **per-warp issue rate** `1 / max(c_fetch, c_raw)` — the front end
//!   delivers one instruction per `fetch_latency + miss x penalty` cycles
//!   per warp, and the RAW scoreboard lets a warp cover its mix-weighted
//!   producer latency with `dep_distance` independent slots (global loads
//!   overlap only up to the per-warp MLP);
//! * **SM-wide unit caps** — scheduler issue slots and ALU / SFU / LSU
//!   initiation intervals, combined with the latency line through a p-norm
//!   soft-minimum (contention near a cap bends the curve before it clips);
//! * **shared-memory-system caps** — hard DRAM and L2 service-rate ceilings
//!   over the *post-coalescing* DRAM traffic, with a utilization-driven
//!   latency inflation feeding back into the latency line;
//! * **cache feedback** — a per-[`AccessPattern`] L1 model in which the
//!   warps of a CTA *share* sequential walks (the leader warp misses, the
//!   trailers hit) until the aggregate resident demand thrashes the L1 —
//!   the mechanism that bends cache-sensitive kernels (NN, MVP) back down
//!   past their peak.
//!
//! Predictions are *advisory*: the profiling sweep remains the ground truth,
//! and the `SweepPlan` built from a predicted knee always carries a
//! measured-guard fallback (see `warped_slicer::sweep`). The
//! `verify-predictions` binary cross-validates every suite workload's
//! predicted curve against simulated ground truth and gates the knee-hit
//! rate in CI.

use crate::diag::StaticMetrics;
use crate::{dataflow, rules};
use gpu_sim::{AccessPattern, GpuConfig, KernelDesc, KernelVerifyError, SmConfig};

/// Relative tolerance defining the knee: the smallest CTA count whose IPC is
/// within this fraction of the curve's peak. Shared between predicted and
/// measured curves so knee-hit accuracy compares like with like.
pub const KNEE_TOL: f64 = 0.05;

/// Light-load round-trip latency of a DRAM-serviced miss in core cycles
/// (interconnect + L2 probe + DRAM service). Queueing on top of this is the
/// `DRAM_QUEUE` inflation term.
const DRAM_LATENCY: f64 = 220.0;

/// Round-trip latency of an L2-resident miss (interconnect + L2 hit).
const L2_LATENCY: f64 = 46.0;

/// Latency of an L1 hit as seen by the consumer (LSU issue + hit latency).
const L1_HIT: f64 = 30.0;

/// Residual miss rate of a footprint that fits the L1 (cold misses,
/// conflict noise).
const RESIDENT_MISS: f64 = 0.03;

/// Fraction of the L1 usable as a working set before conflict misses set in
/// (4-way associativity pressure).
const L1_EFFECTIVE: f64 = 0.6;

/// L1 lines of residency one sequential stream needs for trailing warps to
/// keep hitting the leader's fills.
const STREAM_LINES: f64 = 2.0;

/// Drift factor of a shared sequential walk: trailers occasionally run past
/// the leader's fills, so the effective miss divisor is
/// `warps x STREAM_SHARE`, not `warps`.
const STREAM_SHARE: f64 = 1.5;

/// Exponent of the p-norm soft-minimum combining the latency line with the
/// SM unit caps.
const SOFTMIN_P: f64 = 4.0;

/// DRAM latency inflation per unit of modeled DRAM utilization.
const DRAM_QUEUE: f64 = 0.5;

/// Achievable fraction of the theoretical DRAM service rate.
const DRAM_ETA: f64 = 0.95;

/// Achievable fraction of the theoretical L2 service rate.
const L2_ETA: f64 = 0.87;

/// Per-warp cost multiplier applied to a barrier instruction per extra warp
/// it synchronizes.
const BARRIER_COST: f64 = 0.5;

/// Fixed-point iterations of the DRAM-utilization feedback loop.
const FEEDBACK_ITERS: u32 = 4;

/// The static feature vector the abstract interpretation derives for one
/// kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct Features {
    /// The shared mix/dataflow/occupancy metrics (also reported by
    /// `--analyze`).
    pub metrics: StaticMetrics,
    /// Warps per CTA.
    pub warps_per_cta: u32,
    /// Eq. 1 occupancy-feasible CTA range: `1..=max_ctas`.
    pub max_ctas: u32,
    /// Per-resource Eq. 1 quotas (threads / registers / shared memory / CTA
    /// slots), `u32::MAX` where a resource never binds.
    pub max_ctas_by: [u32; 4],
    /// Memory intensity: fraction of issue slots that are global memory
    /// instructions (the static analogue of the paper's φ_mem).
    pub phi_mem: f64,
    /// Independent instructions one warp keeps in flight, bounded by the
    /// dominant RAW dependence distance.
    pub ilp: f64,
    /// Independent global loads one warp keeps in flight: loads spaced
    /// closer than the dependence distance overlap, everything else
    /// serializes on the consumer.
    pub mlp: f64,
    /// Throughput multiplier (`<= 1`) from barrier serialization across the
    /// CTA's warps.
    pub barrier_eff: f64,
    /// Memory transactions per warp instruction when every access misses.
    pub traffic_per_inst: f64,
}

/// A predicted IPC-vs-CTA curve.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfCurve {
    /// `ipc[i]` is the predicted per-SM IPC with `i + 1` resident CTAs;
    /// the length is the Eq. 1 feasible maximum.
    pub ipc: Vec<f64>,
    /// Predicted knee: smallest CTA count within [`KNEE_TOL`] of the peak.
    pub knee: u32,
}

impl PerfCurve {
    /// Number of feasible CTA counts the curve covers.
    #[must_use]
    pub fn max_ctas(&self) -> u32 {
        u32::try_from(self.ipc.len()).unwrap_or(u32::MAX)
    }
}

/// The knee of an IPC-vs-CTA curve (`curve[i]` = IPC at `i + 1` CTAs): the
/// smallest CTA count whose IPC is within [`KNEE_TOL`] of the peak. An
/// empty or all-zero curve has its knee at 1 CTA.
#[must_use]
pub fn knee_of(curve: &[f64]) -> u32 {
    let peak = curve.iter().copied().fold(0.0_f64, f64::max);
    if peak <= 0.0 {
        return 1;
    }
    let threshold = (1.0 - KNEE_TOL) * peak;
    curve
        .iter()
        .position(|&p| p >= threshold)
        .and_then(|i| u32::try_from(i + 1).ok())
        .unwrap_or(1)
}

/// Extracts the static feature vector for one kernel.
///
/// Gated on the launch pre-flight: a kernel the simulator would reject (or
/// execute meaninglessly) has no performance to predict, so the pre-flight
/// error is surfaced instead of a garbage curve.
pub fn extract_features(desc: &KernelDesc, cfg: &GpuConfig) -> Result<Features, KernelVerifyError> {
    gpu_sim::verify::preflight(desc, &cfg.sm)?;
    let flow = dataflow::analyze(&desc.program);
    let metrics = rules::compute_metrics(desc, &cfg.sm, &flow);
    let (max_ctas_by, max_ctas) = gpu_sim::occupancy_breakdown(desc, &cfg.sm);
    let warps_per_cta = desc.warps_per_cta();

    // ILP: the generator's primary dependence chain spaces producer and
    // consumer `dominant_raw_distance` slots apart, so that many
    // instructions are independent and schedulable back to back.
    let body_len = metrics.body_len.max(1);
    let dominant = metrics
        .dominant_raw_distance
        .or(metrics.median_raw_distance)
        .unwrap_or(body_len);
    let ilp = clampf(to_f64(dominant), 1.0, 32.0);

    // MLP: a warp issues past a pending load only within the dependence
    // window, so a second load overlaps only if the inter-load gap
    // (`1 / gload_frac` slots) fits inside it: in-flight loads per warp
    // `= max(1, ilp x gload_frac)`.
    let mlp = if metrics.gload_frac > 0.0 {
        (ilp * metrics.gload_frac).max(1.0)
    } else {
        0.0
    };

    // Barriers make every warp in the CTA wait for the slowest sibling; the
    // cost grows with the number of warps synchronized.
    let extra_warps = f64::from(warps_per_cta.saturating_sub(1));
    let barrier_eff = 1.0 / (1.0 + metrics.barrier_frac * extra_warps * BARRIER_COST);

    Ok(Features {
        phi_mem: metrics.gload_frac + metrics.gstore_frac,
        traffic_per_inst: metrics.global_traffic,
        metrics,
        warps_per_cta,
        max_ctas,
        max_ctas_by,
        ilp,
        mlp,
        barrier_eff,
    })
}

/// Composes the features through the analytic contention model into a
/// predicted curve over the feasible CTA range.
#[must_use]
pub fn predict_curve(features: &Features, desc: &KernelDesc, cfg: &GpuConfig) -> PerfCurve {
    let ipc: Vec<f64> = (1..=features.max_ctas)
        .map(|n| predict_ipc(features, desc, cfg, n))
        .collect();
    let knee = knee_of(&ipc);
    PerfCurve { ipc, knee }
}

/// Predicts one kernel end to end: pre-flight gate, feature extraction, and
/// the contention model.
pub fn predict_kernel(desc: &KernelDesc, cfg: &GpuConfig) -> Result<PerfCurve, KernelVerifyError> {
    let features = extract_features(desc, cfg)?;
    Ok(predict_curve(&features, desc, cfg))
}

/// The L1 behaviour of one kernel at `n` resident CTAs, produced by
/// [`miss_profile`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MissProfile {
    /// Effective L1 misses per global access (after shared-walk
    /// coalescing: trailing warps hit the leader's fills).
    pub l1_miss: f64,
    /// Of those L1 misses, the fraction serviced by the L2 (the rest go to
    /// DRAM).
    pub l2_hit: f64,
}

/// The per-pattern L1/L2 model at `n` resident CTAs.
///
/// This is where CTA count feeds back into per-access cost. Two mechanisms
/// matter: (1) warps of a CTA share sequential walks (Streaming / Tiled /
/// the HotCold cold stream), so only the leading warp misses — *until* the
/// aggregate resident demand (stream windows + reused footprints) exceeds
/// the effective L1 capacity and the sharing collapses; (2) bounded reused
/// footprints grow with `n` and thrash. Both produce the cache-sensitive
/// archetype's mid-curve peak.
#[must_use]
pub fn miss_profile(desc: &KernelDesc, cfg: &GpuConfig, n: u32) -> MissProfile {
    let l1_lines = f64::from(cfg.l1.size_bytes / cfg.l1.line_bytes.max(1)) * L1_EFFECTIVE;
    let l2_lines = total_l2_lines(cfg);
    let n = f64::from(n.max(1));
    let warps = f64::from(desc.warps_per_cta().max(1));
    let share = warps * STREAM_SHARE;
    match desc.pattern {
        // One sequential walk per CTA, shared by its warps: the leader
        // misses every line, trailers hit while the walk windows stay
        // resident. Far too large for any cache: L2 misses too.
        AccessPattern::Streaming { .. } => {
            let resident = (l1_lines / (n * warps * STREAM_LINES)).min(1.0);
            MissProfile {
                l1_miss: mix(1.0 / share, 1.0, resident),
                l2_hit: 0.0,
            }
        }
        // Independent uniformly random draws over a kernel-shared
        // footprint: no sharing benefit, hit rate is pure residency.
        AccessPattern::Random {
            footprint_lines, ..
        } => {
            let footprint = u64_to_f64(footprint_lines).max(1.0);
            MissProfile {
                l1_miss: (1.0 - l1_lines / footprint).max(RESIDENT_MISS),
                l2_hit: (l2_lines / footprint).min(1.0),
            }
        }
        // A resident tile hits `reuse - 1` of its `reuse` passes and the
        // tile walk is shared across the CTA's warps; tiles of co-resident
        // CTAs competing past the L1 degrade toward miss-per-pass. Spilled
        // tiles are L2-resident.
        AccessPattern::Tiled {
            tile_lines, reuse, ..
        } => {
            let reuse = f64::from(reuse.max(1));
            let demand = n * warps * STREAM_LINES + n * f64::from(tile_lines.max(1));
            let resident = (l1_lines / demand).min(1.0);
            let shared_base = 1.0 / reuse / share;
            MissProfile {
                l1_miss: mix(shared_base, 1.0 / reuse, resident),
                l2_hit: 1.0,
            }
        }
        // Random draws over private-per-CTA plus kernel-shared footprints:
        // the private demand scales with `n`; spills stay L2-resident.
        AccessPattern::BoundedFootprint {
            private_lines,
            shared_lines,
            shared_frac,
            ..
        } => {
            let shared_frac = clampf(shared_frac, 0.0, 1.0);
            let demand = n * f64::from(private_lines.max(1)) * (1.0 - shared_frac)
                + u64_to_f64(shared_lines.max(1)) * shared_frac;
            let resident = (l1_lines / demand).min(1.0);
            MissProfile {
                l1_miss: mix(RESIDENT_MISS, 1.0, resident),
                l2_hit: 1.0,
            }
        }
        // Reused hot lines plus a shared sequential cold stream. The cold
        // stream behaves like Streaming (leader-miss, DRAM-bound); the hot
        // set behaves like a bounded footprint (L2-resident spills). Both
        // compete for the same L1.
        AccessPattern::HotCold {
            hot_lines,
            hot_frac,
            ..
        } => {
            let hot_frac = clampf(hot_frac, 0.0, 1.0);
            let demand = n * warps * STREAM_LINES + n * f64::from(hot_lines.max(1));
            let resident = (l1_lines / demand).min(1.0);
            let cold = (1.0 - hot_frac) * mix(1.0 / share, 1.0, resident);
            let hot = hot_frac * mix(RESIDENT_MISS, 1.0, resident);
            let miss = cold + hot;
            MissProfile {
                l1_miss: miss,
                l2_hit: if miss > 0.0 { hot / miss } else { 0.0 },
            }
        }
    }
}

/// The contention model at one operating point: predicted per-SM IPC with
/// `n` resident CTAs.
#[must_use]
pub fn predict_ipc(features: &Features, desc: &KernelDesc, cfg: &GpuConfig, n: u32) -> f64 {
    let m = &features.metrics;
    let sm = &cfg.sm;
    let warps = f64::from(n) * f64::from(features.warps_per_cta);
    let schedulers = f64::from(sm.num_schedulers.max(1));
    let profile = miss_profile(desc, cfg, n);
    let tx = f64::from(desc.pattern.transactions());

    // Front end: one instruction per warp per fetch round trip.
    let c_fetch = f64::from(sm.fetch_latency.max(1))
        + desc.icache_miss_rate * f64::from(sm.icache_miss_penalty);

    // Execution-unit occupancy cycles per warp instruction (each scheduler
    // owns one ALU / SFU / LSU pipe).
    let warp_size = f64::from(SmConfig::WARP_SIZE);
    let alu_occ = warp_size / f64::from(sm.simt_width.max(1));
    let sfu_occ = warp_size / f64::from(sm.sfu_width.max(1));
    let conflict = f64::from(desc.shmem_conflict_degree.max(1));
    let gmem_occ = tx.max(2.0);
    let shmem_occ = 2.0 * conflict;
    let lsu_demand = (m.gload_frac + m.gstore_frac) * gmem_occ + m.shmem_frac * shmem_occ;

    // SM-wide throughput caps (warp instructions per cycle).
    let issue_cap = schedulers;
    let alu_cap = per_frac(schedulers / alu_occ, m.alu_frac);
    let sfu_cap = per_frac(schedulers / sfu_occ, m.sfu_frac);
    let lsu_cap = per_frac(schedulers, lsu_demand);

    // Shared-memory-system service rates (per SM, per cycle).
    let num_sms = f64::from(cfg.num_sms.max(1));
    let burst = f64::from(cfg.mem.timing.t_burst.max(1)) * cfg.core_per_dram_clock();
    let dram_rate = DRAM_ETA * f64::from(cfg.mem.num_channels.max(1)) / burst;
    let l2_rate = L2_ETA * f64::from(cfg.mem.num_channels.max(1)) / num_sms;
    let l2_per_inst = features.phi_mem * tx * profile.l1_miss;
    let dram_per_inst = l2_per_inst * (1.0 - profile.l2_hit);
    let l2_cap = per_frac(l2_rate, l2_per_inst);

    // RAW latency per warp, with the DRAM-utilization feedback: higher
    // predicted throughput -> higher DRAM utilization -> longer miss
    // latency -> lower latency-line throughput. A few damped iterations
    // converge.
    let shmem_lat = f64::from(sm.shmem_latency) + 2.0 * (conflict - 1.0);
    let l_nonload = m.alu_frac * f64::from(sm.alu_latency)
        + m.sfu_frac * f64::from(sm.sfu_latency)
        + m.shmem_frac * shmem_lat;
    let mut ipc = 0.0;
    for _ in 0..FEEDBACK_ITERS {
        let util = if dram_rate > 0.0 {
            (ipc * dram_per_inst * num_sms / (dram_rate * num_sms)).min(1.0)
        } else {
            0.0
        };
        let dram_lat = DRAM_LATENCY * (1.0 + DRAM_QUEUE * util / (1.0 - 0.9 * util));
        let l_load = (1.0 - profile.l1_miss) * L1_HIT
            + profile.l1_miss * (profile.l2_hit * L2_LATENCY + (1.0 - profile.l2_hit) * dram_lat);
        let c_raw = l_nonload / features.ilp + m.gload_frac * l_load / features.mlp.max(1.0);
        let line = warps / c_fetch.max(c_raw);

        // Soft-minimum of the latency line and the pipe caps: contention
        // bends the curve as a bound is approached, it does not clip.
        let core = soft_min(&[line, issue_cap, alu_cap, sfu_cap, lsu_cap]);

        // Hard shared-system ceilings: DRAM service on post-coalescing
        // traffic, L2 service on every L1 miss, and MSHR occupancy
        // (Little's law over in-flight misses).
        let dram_cap = per_frac(dram_rate / num_sms, dram_per_inst);
        let mshr_cap = if l2_per_inst > 0.0 {
            let outstanding =
                f64::from(cfg.l1.mshr_entries).min(warps * features.mlp.max(1.0) * tx);
            let lat = profile.l2_hit * L2_LATENCY + (1.0 - profile.l2_hit) * dram_lat;
            outstanding / lat / l2_per_inst
        } else {
            f64::INFINITY
        };

        let next = core.min(dram_cap).min(l2_cap).min(mshr_cap).max(0.0) * features.barrier_eff;
        ipc = 0.5 * (ipc + next);
    }
    ipc
}

/// `limit / frac`, unbounded when the kernel never exercises the resource.
fn per_frac(limit: f64, frac: f64) -> f64 {
    if frac > 0.0 {
        limit / frac
    } else {
        f64::INFINITY
    }
}

/// p-norm soft-minimum: close to `min` but bends as bounds converge.
fn soft_min(bounds: &[f64]) -> f64 {
    let sum: f64 = bounds
        .iter()
        .filter(|b| b.is_finite() && **b > 0.0)
        .map(|b| b.powf(-SOFTMIN_P))
        .sum();
    if sum > 0.0 {
        sum.powf(-1.0 / SOFTMIN_P)
    } else {
        0.0
    }
}

/// Linear blend from `fit` (fully resident) to `spill` as residency drops.
fn mix(fit: f64, spill: f64, resident: f64) -> f64 {
    spill + (fit - spill) * resident
}

/// Total L2 capacity in lines across all channels.
fn total_l2_lines(cfg: &GpuConfig) -> f64 {
    f64::from(cfg.l2.size_bytes_per_channel / cfg.l2.line_bytes.max(1))
        * f64::from(cfg.mem.num_channels.max(1))
}

/// `usize -> f64` without a lossy `as` cast.
fn to_f64(v: usize) -> f64 {
    u64_to_f64(u64::try_from(v).unwrap_or(u64::MAX))
}

/// `u64 -> f64` without a lossy `as` cast: exact below 2^53 (every count
/// this module produces), monotone above.
fn u64_to_f64(v: u64) -> f64 {
    let hi = u32::try_from(v >> 32).unwrap_or(u32::MAX);
    let lo = u32::try_from(v & 0xFFFF_FFFF).unwrap_or(u32::MAX);
    f64::from(hi) * 4_294_967_296.0 + f64::from(lo)
}

fn clampf(v: f64, lo: f64, hi: f64) -> f64 {
    v.max(lo).min(hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ws_workloads::{by_abbrev, suite, ScalingArchetype};

    fn cfg() -> GpuConfig {
        GpuConfig::isca_baseline()
    }

    #[test]
    fn knee_of_handles_degenerate_curves() {
        assert_eq!(knee_of(&[]), 1);
        assert_eq!(knee_of(&[0.0, 0.0]), 1);
        assert_eq!(knee_of(&[1.0]), 1);
        // Monotone rise: knee at the first point within 5% of the peak.
        assert_eq!(knee_of(&[1.0, 2.0, 3.0, 3.9, 4.0]), 4);
        // Peak-then-degrade: knee at the peak, not the tail.
        assert_eq!(knee_of(&[1.0, 4.0, 2.0, 1.5]), 2);
    }

    #[test]
    fn features_gate_on_the_preflight() {
        let mut d = by_abbrev("BLK").unwrap().desc;
        d.grid_ctas = 0;
        let err = extract_features(&d, &cfg()).unwrap_err();
        assert_eq!(err.rule(), "zero-grid");
        assert!(predict_kernel(&d, &cfg()).is_err());
    }

    #[test]
    fn curves_cover_the_feasible_range_and_are_positive() {
        for b in suite() {
            let curve = predict_kernel(&b.desc, &cfg()).unwrap();
            assert_eq!(
                curve.max_ctas(),
                b.max_ctas_baseline(),
                "{}: curve length is the Eq. 1 range",
                b.abbrev
            );
            assert!(
                curve.ipc.iter().all(|&p| p > 0.0 && p.is_finite()),
                "{}: positive finite IPC",
                b.abbrev
            );
            assert!(curve.knee >= 1 && curve.knee <= curve.max_ctas());
        }
    }

    /// The calibration contract: predicted knees stay within +-1 CTA of the
    /// simulated ground truth recorded by `verify-predictions` (40k-cycle
    /// isolation sweeps under the ISCA baseline). This pins model quality
    /// without running simulations.
    #[test]
    fn predicted_knees_track_simulated_ground_truth() {
        let measured = [
            ("BLK", 4),
            ("BFS", 2),
            ("DXT", 8),
            ("HOT", 6),
            ("IMG", 6),
            ("KNN", 2),
            ("LBM", 7),
            ("MM", 4),
            ("MVP", 2),
            ("NN", 3),
        ];
        let mut misses = Vec::new();
        for (abbrev, knee) in measured {
            let b = by_abbrev(abbrev).unwrap();
            let c = predict_kernel(&b.desc, &cfg()).unwrap();
            if c.knee.abs_diff(knee) > 1 {
                misses.push(format!("{abbrev}: predicted {} vs measured {knee}", c.knee));
            }
        }
        assert!(
            misses.len() <= 2,
            "knee-hit rate must stay >= 80%: {misses:?}"
        );
    }

    #[test]
    fn cache_sensitive_curves_peak_below_the_occupancy_limit() {
        // MVP's cold-stream sharing collapses once co-resident CTAs thrash
        // the L1: the predicted curve must degrade past its peak. NN's
        // spills stay L2-resident so the predicted tail merely flattens,
        // but its knee must still land well below the Eq. 1 limit.
        let mvp = predict_kernel(&by_abbrev("MVP").unwrap().desc, &cfg()).unwrap();
        let peak = mvp.ipc.iter().copied().fold(0.0_f64, f64::max);
        let last = mvp.ipc.last().copied().unwrap_or(0.0);
        assert!(last < peak, "MVP: tail {last} should sit below peak {peak}");

        let nn = by_abbrev("NN").unwrap();
        assert_eq!(nn.archetype, ScalingArchetype::CacheSensitive);
        let nn_curve = predict_kernel(&nn.desc, &cfg()).unwrap();
        assert!(
            nn_curve.knee + 2 <= nn_curve.max_ctas(),
            "NN: knee {} should sit well below the occupancy limit {}",
            nn_curve.knee,
            nn_curve.max_ctas()
        );
    }

    #[test]
    fn miss_profile_is_monotone_for_private_footprints() {
        let d = by_abbrev("NN").unwrap().desc;
        let c = cfg();
        let rates: Vec<f64> = (1..=8).map(|n| miss_profile(&d, &c, n).l1_miss).collect();
        for pair in rates.windows(2) {
            if let [a, b] = pair {
                assert!(b >= a, "miss rate must not drop with more CTAs: {rates:?}");
            }
        }
        assert!(rates.iter().all(|r| (0.0..=1.0).contains(r)));
    }

    #[test]
    fn phi_mem_tracks_the_instruction_mix() {
        let lbm = extract_features(&by_abbrev("LBM").unwrap().desc, &cfg()).unwrap();
        let img = extract_features(&by_abbrev("IMG").unwrap().desc, &cfg()).unwrap();
        assert!(
            lbm.phi_mem > img.phi_mem,
            "LBM ({}) is more memory-intense than IMG ({})",
            lbm.phi_mem,
            img.phi_mem
        );
        assert!(lbm.mlp >= 1.0);
        assert!((0.0..=1.0).contains(&img.barrier_eff));
    }
}
