//! The analyzer rule catalogue: hard launch rules re-surfaced as
//! diagnostics, kernel-level well-formedness warnings, and the
//! declared-vs-derived consistency checks for suite benchmarks.
//!
//! Severity policy:
//!
//! * **Errors** mirror `gpu_sim::verify` — conditions under which the
//!   simulator panics or produces a meaningless result (zero occupancy under
//!   Eq. 1 of the paper, reads of never-defined registers, malformed
//!   barriers/loads). They also fail the `Gpu::try_add_kernel` pre-flight
//!   and cannot be waived.
//! * **Warnings** are statically suspicious but simulatable (a declared
//!   footprint the address generator silently clamps, a tile larger than the
//!   L1, a benchmark whose derived traffic contradicts its declared class).
//!   They fail the `cargo xtask verify-workloads` gate unless the benchmark
//!   carries a [`Waiver`] with a written justification.
//! * **Info** diagnostics never fail anything; waived warnings are
//!   downgraded to info with the justification attached.
//!
//! The consistency thresholds are calibrated against the shipped Table II
//! suite (see each constant's documentation) so that the paper's workloads
//! pass by construction and a regressed instruction mix is caught.

use crate::dataflow;
use crate::diag::{Diagnostic, Report, Severity, StaticMetrics};
use gpu_sim::{
    AccessPattern, GpuConfig, KernelDesc, OpClass, SmConfig, CTA_REGION_LINES, MAX_DISJOINT_CTAS,
    SHARED_REGION_LINES,
};
use ws_workloads::{Benchmark, ScalingArchetype, Waiver, WorkloadClass};

/// Hard rules, enforced both here and by the launch pre-flight
/// (`gpu_sim::verify`). Identifiers match
/// [`gpu_sim::KernelVerifyError::rule`].
pub const HARD_RULES: [&str; 8] = [
    "zero-grid",
    "zero-threads",
    "zero-iterations",
    "eq1-infeasible",
    "never-defined-read",
    "barrier-operands",
    "load-without-dest",
    "rate-out-of-range",
];

/// Analyzer-only rules: kernel-level warnings, benchmark consistency
/// checks, and waiver hygiene.
pub const ANALYSIS_RULES: [&str; 16] = [
    "barrier-first-inst",
    "barrier-single-warp",
    "footprint-overflow",
    "zero-footprint",
    "transactions-clamped",
    "tile-exceeds-l1",
    "conflict-degree-range",
    "unused-shmem",
    "shmem-without-allocation",
    "cta-region-overlap",
    "class-traffic",
    "archetype-class",
    "archetype-raw",
    "empty-waiver-justification",
    "unknown-waiver-rule",
    "stale-waiver",
];

/// Every rule identifier the analyzer can emit, hard rules first.
#[must_use]
pub fn rule_catalogue() -> Vec<&'static str> {
    HARD_RULES
        .iter()
        .chain(ANALYSIS_RULES.iter())
        .copied()
        .collect()
}

/// Memory-class benchmarks must generate at least this much global traffic
/// (transactions per warp instruction). Calibrated against the suite: the
/// lightest Memory benchmark (BLK) derives 0.20, the heaviest Compute one
/// (MM) 0.13.
const MEMORY_MIN_TRAFFIC: f64 = 0.15;

/// Compute-class benchmarks must stay at or below this much global traffic.
const COMPUTE_MAX_TRAFFIC: f64 = 0.14;

/// Compute-class benchmarks must keep their global-instruction fraction at
/// or below this bound, independent of coalescing.
const COMPUTE_MAX_GLOBAL_FRAC: f64 = 0.25;

/// Statically analyzes one kernel descriptor: hard launch rules, dataflow,
/// derived metrics, and kernel-level warnings.
///
/// Unlike the launch pre-flight (which stops at the first violation), the
/// analyzer collects *every* finding, so a malformed fixture reports all of
/// its defects at once.
#[must_use]
pub fn analyze_kernel(desc: &KernelDesc, cfg: &GpuConfig) -> Report {
    let flow = dataflow::analyze(&desc.program);
    let mut diagnostics = hard_diagnostics(desc, &cfg.sm, &flow);
    diagnostics.extend(kernel_warnings(desc, cfg));
    let metrics = compute_metrics(desc, &cfg.sm, &flow);
    let mut report = Report {
        subject: desc.name.clone(),
        metrics,
        diagnostics,
    };
    report.sort();
    report
}

/// Statically analyzes one suite benchmark: everything [`analyze_kernel`]
/// checks, plus the declared-vs-derived consistency rules, with the
/// benchmark's waivers applied.
#[must_use]
pub fn analyze_benchmark(bench: &Benchmark, cfg: &GpuConfig) -> Report {
    let mut report = analyze_kernel(&bench.desc, cfg);
    report.subject = bench.abbrev.to_string();
    report
        .diagnostics
        .extend(consistency_diagnostics(bench, &report.metrics));
    apply_waivers(&mut report, bench.waivers);
    report.sort();
    report
}

/// Analyzes every benchmark in `benches`, returning one report each.
#[must_use]
pub fn verify_suite(benches: &[Benchmark], cfg: &GpuConfig) -> Vec<Report> {
    benches.iter().map(|b| analyze_benchmark(b, cfg)).collect()
}

/// Strips the `"[rule] "` prefix a [`gpu_sim::KernelVerifyError`] renders,
/// so the rule id is not duplicated in the diagnostic message.
fn strip_rule_prefix(rendered: &str) -> String {
    rendered
        .split_once("] ")
        .map_or_else(|| rendered.to_string(), |(_, msg)| msg.to_string())
}

/// Collects every hard-rule violation (the launch pre-flight reports only
/// the first).
fn hard_diagnostics(
    desc: &KernelDesc,
    sm: &SmConfig,
    flow: &dataflow::Dataflow,
) -> Vec<Diagnostic> {
    use gpu_sim::KernelVerifyError as E;
    let mut out = Vec::new();
    if desc.grid_ctas == 0 {
        out.push(
            Diagnostic::error(
                "zero-grid",
                None,
                strip_rule_prefix(&E::ZeroGrid.to_string()),
            )
            .with_suggestion("set grid_ctas to the benchmark's Table II griddim".to_string()),
        );
    }
    if desc.threads_per_cta == 0 {
        out.push(Diagnostic::error(
            "zero-threads",
            None,
            strip_rule_prefix(&E::ZeroThreads.to_string()),
        ));
    }
    if desc.iterations == 0 {
        out.push(Diagnostic::error(
            "zero-iterations",
            None,
            strip_rule_prefix(&E::ZeroIterations.to_string()),
        ));
    }
    if !(0.0..=1.0).contains(&desc.icache_miss_rate) {
        let err = E::RateOutOfRange {
            field: "icache_miss_rate",
            value: desc.icache_miss_rate,
        };
        out.push(Diagnostic::error(
            "rate-out-of-range",
            None,
            strip_rule_prefix(&err.to_string()),
        ));
    }
    if desc.threads_per_cta > 0 {
        if let Err(err @ E::Infeasible { .. }) = desc.try_max_ctas_per_sm(sm) {
            out.push(
                Diagnostic::error("eq1-infeasible", None, strip_rule_prefix(&err.to_string()))
                    .with_suggestion(
                        "shrink the CTA's per-resource demand until one CTA fits an idle SM \
                         (Eq. 1)"
                            .to_string(),
                    ),
            );
        }
    }
    for (i, inst) in desc.program.iter().enumerate() {
        if inst.op.is_barrier() && (inst.dst.is_some() || inst.srcs.iter().any(Option::is_some)) {
            let err = E::BarrierOperands { inst: i };
            out.push(
                Diagnostic::error(
                    "barrier-operands",
                    Some(i),
                    strip_rule_prefix(&err.to_string()),
                )
                .with_suggestion("clear the barrier's dst and srcs".to_string()),
            );
        }
        if inst.op == OpClass::GlobalLoad && inst.dst.is_none() {
            let err = E::LoadWithoutDest { inst: i };
            out.push(
                Diagnostic::error(
                    "load-without-dest",
                    Some(i),
                    strip_rule_prefix(&err.to_string()),
                )
                .with_suggestion("give the load a destination register".to_string()),
            );
        }
    }
    for &(i, reg) in &flow.never_defined {
        let err = E::NeverDefinedRead { inst: i, reg };
        out.push(
            Diagnostic::error(
                "never-defined-read",
                Some(i),
                strip_rule_prefix(&err.to_string()),
            )
            .with_suggestion(format!(
                "add an instruction defining r{reg} or drop the operand"
            )),
        );
    }
    out
}

/// Kernel-level warnings: suspicious but simulatable descriptors.
fn kernel_warnings(desc: &KernelDesc, cfg: &GpuConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let has_barrier = desc.program.iter().any(|i| i.op.is_barrier());
    if desc
        .program
        .iter()
        .next()
        .is_some_and(|i| i.op.is_barrier())
    {
        out.push(
            Diagnostic::warning(
                "barrier-first-inst",
                Some(0),
                "the loop body opens with a barrier: warps synchronize before doing any work \
                 each iteration"
                    .to_string(),
            )
            .with_suggestion("move the barrier between the tile load and the tile use".to_string()),
        );
    }
    if has_barrier && desc.warps_per_cta() <= 1 {
        out.push(Diagnostic::warning(
            "barrier-single-warp",
            None,
            format!(
                "the body contains barriers but a {}-thread CTA has a single warp, so every \
                 barrier is a no-op",
                desc.threads_per_cta
            ),
        ));
    }
    out.extend(pattern_warnings(desc, cfg));
    if desc.shmem_conflict_degree == 0 || desc.shmem_conflict_degree > SmConfig::WARP_SIZE {
        out.push(Diagnostic::warning(
            "conflict-degree-range",
            None,
            format!(
                "shmem_conflict_degree {} is outside 1..={} (one warp cannot serialize more \
                 than its lane count)",
                desc.shmem_conflict_degree,
                SmConfig::WARP_SIZE
            ),
        ));
    }
    let shmem_frac = desc.program.fraction(OpClass::SharedMem);
    if desc.shmem_per_cta > 0 && shmem_frac <= 0.0 {
        out.push(
            Diagnostic::warning(
                "unused-shmem",
                None,
                format!(
                    "{} bytes of shared memory are allocated per CTA but the body never \
                     issues a shared-memory access; the allocation only throttles occupancy",
                    desc.shmem_per_cta
                ),
            )
            .with_suggestion(
                "drop shmem_per_cta or add SharedMem instructions to the mix".to_string(),
            ),
        );
    }
    if desc.shmem_per_cta == 0 && shmem_frac > 0.0 {
        out.push(
            Diagnostic::warning(
                "shmem-without-allocation",
                None,
                format!(
                    "{:.0}% of the body accesses shared memory but shmem_per_cta is 0",
                    shmem_frac * 100.0
                ),
            )
            .with_suggestion("declare the CTA's shared-memory allocation".to_string()),
        );
    }
    if desc.grid_ctas > MAX_DISJOINT_CTAS {
        out.push(Diagnostic::warning(
            "cta-region-overlap",
            None,
            format!(
                "grid of {} CTAs exceeds the {MAX_DISJOINT_CTAS} disjoint per-CTA address \
                 regions; private footprints would alias the kernel-shared region",
                desc.grid_ctas
            ),
        ));
    }
    out
}

/// Warnings derived from the declared [`AccessPattern`] against the address
/// -space and cache geometry.
fn pattern_warnings(desc: &KernelDesc, cfg: &GpuConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut overflow = |what: &str, declared: u64, capacity: u64| {
        if declared > capacity {
            out.push(
                Diagnostic::warning(
                    "footprint-overflow",
                    None,
                    format!(
                        "declared {what} of {declared} lines exceeds the {capacity}-line \
                         region the address generator wraps within"
                    ),
                )
                .with_suggestion(format!("declare at most {capacity} lines")),
            );
        }
    };
    match desc.pattern {
        AccessPattern::Streaming { .. } => {}
        AccessPattern::Random {
            footprint_lines, ..
        } => {
            overflow("random footprint", footprint_lines, SHARED_REGION_LINES);
            if footprint_lines == 0 {
                out.push(zero_footprint("footprint_lines"));
            }
        }
        AccessPattern::BoundedFootprint {
            private_lines,
            shared_lines,
            shared_frac,
            ..
        } => {
            overflow(
                "private footprint",
                u64::from(private_lines),
                CTA_REGION_LINES,
            );
            overflow("shared footprint", shared_lines, SHARED_REGION_LINES);
            if private_lines == 0 {
                out.push(zero_footprint("private_lines"));
            }
            if shared_lines == 0 {
                out.push(zero_footprint("shared_lines"));
            }
            if !(0.0..=1.0).contains(&shared_frac) {
                out.push(Diagnostic::warning(
                    "rate-out-of-range",
                    None,
                    format!("shared_frac is {shared_frac}, outside [0, 1]"),
                ));
            }
        }
        AccessPattern::HotCold {
            hot_lines,
            hot_frac,
            ..
        } => {
            // The cold stream walks the CTA region above the hot lines, so
            // the hot set must leave most of the region to stream through.
            overflow("hot footprint", u64::from(hot_lines), CTA_REGION_LINES / 2);
            if hot_lines == 0 {
                out.push(zero_footprint("hot_lines"));
            }
            if !(0.0..=1.0).contains(&hot_frac) {
                out.push(Diagnostic::warning(
                    "rate-out-of-range",
                    None,
                    format!("hot_frac is {hot_frac}, outside [0, 1]"),
                ));
            }
        }
        AccessPattern::Tiled {
            tile_lines, reuse, ..
        } => {
            overflow("tile", u64::from(tile_lines), CTA_REGION_LINES);
            if tile_lines == 0 {
                out.push(zero_footprint("tile_lines"));
            }
            if reuse == 0 {
                out.push(zero_footprint("reuse"));
            }
            let l1_lines = u64::from(cfg.l1.size_bytes) / u64::from(cfg.l1.line_bytes.max(1));
            if u64::from(tile_lines) > l1_lines {
                out.push(
                    Diagnostic::warning(
                        "tile-exceeds-l1",
                        None,
                        format!(
                            "a {tile_lines}-line tile cannot be L1-resident ({l1_lines} lines \
                             per SM); the tiled pattern's low-miss-rate premise breaks"
                        ),
                    )
                    .with_suggestion(format!("keep tiles at or below {l1_lines} lines")),
                );
            }
        }
    }
    let raw_transactions = match desc.pattern {
        AccessPattern::Streaming { transactions }
        | AccessPattern::Random { transactions, .. }
        | AccessPattern::BoundedFootprint { transactions, .. }
        | AccessPattern::Tiled { transactions, .. }
        | AccessPattern::HotCold { transactions, .. } => transactions,
    };
    if raw_transactions == 0 || raw_transactions > SmConfig::WARP_SIZE {
        out.push(
            Diagnostic::warning(
                "transactions-clamped",
                None,
                format!(
                    "declared {raw_transactions} transactions per access; the generator \
                     silently clamps to 1..={} and the declared value misstates the traffic",
                    SmConfig::WARP_SIZE
                ),
            )
            .with_suggestion("declare the clamped value explicitly".to_string()),
        );
    }
    out
}

fn zero_footprint(field: &str) -> Diagnostic {
    Diagnostic::warning(
        "zero-footprint",
        None,
        format!(
            "{field} is 0; the address generator clamps it to 1, so every access hits one \
             line and the declared geometry is misleading"
        ),
    )
    .with_suggestion(format!("declare {field} >= 1"))
}

/// Declared-vs-derived consistency checks for a classified benchmark.
fn consistency_diagnostics(bench: &Benchmark, metrics: &StaticMetrics) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let traffic = metrics.global_traffic;
    let global_frac = metrics.gload_frac + metrics.gstore_frac;
    match bench.class {
        WorkloadClass::Memory => {
            if traffic < MEMORY_MIN_TRAFFIC {
                out.push(Diagnostic::warning(
                    "class-traffic",
                    None,
                    format!(
                        "declared Memory class but derives only {traffic:.2} global \
                         transactions per warp instruction (< {MEMORY_MIN_TRAFFIC}); the \
                         kernel cannot saturate DRAM bandwidth"
                    ),
                ));
            }
        }
        WorkloadClass::Compute => {
            if traffic > COMPUTE_MAX_TRAFFIC || global_frac > COMPUTE_MAX_GLOBAL_FRAC {
                out.push(Diagnostic::warning(
                    "class-traffic",
                    None,
                    format!(
                        "declared Compute class but derives {traffic:.2} global transactions \
                         per warp instruction with a {global_frac:.2} global fraction \
                         (bounds: {COMPUTE_MAX_TRAFFIC} and {COMPUTE_MAX_GLOBAL_FRAC})"
                    ),
                ));
            }
        }
        WorkloadClass::Cache => {
            let bounded = matches!(
                bench.desc.pattern,
                AccessPattern::HotCold { .. } | AccessPattern::BoundedFootprint { .. }
            );
            if !bounded {
                out.push(
                    Diagnostic::warning(
                        "class-traffic",
                        None,
                        "declared Cache class but the access pattern has no bounded reused \
                         footprint, so L1 capacity cannot be the performance knee"
                            .to_string(),
                    )
                    .with_suggestion(
                        "use a HotCold or BoundedFootprint pattern for cache-sensitive \
                         benchmarks"
                            .to_string(),
                    ),
                );
            }
        }
    }
    let class_for_archetype = match bench.archetype {
        ScalingArchetype::MemorySaturating => WorkloadClass::Memory,
        ScalingArchetype::CacheSensitive => WorkloadClass::Cache,
        ScalingArchetype::ComputeNonSaturating | ScalingArchetype::ComputeSaturating => {
            WorkloadClass::Compute
        }
    };
    if class_for_archetype != bench.class {
        out.push(Diagnostic::warning(
            "archetype-class",
            None,
            format!(
                "archetype {:?} implies class {class_for_archetype} but the benchmark \
                 declares {}",
                bench.archetype, bench.class
            ),
        ));
    }
    let dominant = metrics.dominant_raw_distance;
    match bench.archetype {
        ScalingArchetype::ComputeNonSaturating => {
            if dominant.is_none_or(|d| d > 1) {
                out.push(Diagnostic::warning(
                    "archetype-raw",
                    None,
                    format!(
                        "ComputeNonSaturating needs a serializing RAW chain (dominant \
                         distance 1) but the body's dominant distance is {dominant:?}; \
                         performance would saturate before the occupancy limit"
                    ),
                ));
            }
        }
        ScalingArchetype::ComputeSaturating => {
            if dominant.is_none_or(|d| d < 2) {
                out.push(Diagnostic::warning(
                    "archetype-raw",
                    None,
                    format!(
                        "ComputeSaturating needs exposed ILP (dominant RAW distance >= 2) \
                         but the body's dominant distance is {dominant:?}; the warp would \
                         serialize and keep scaling"
                    ),
                ));
            }
        }
        ScalingArchetype::MemorySaturating | ScalingArchetype::CacheSensitive => {}
    }
    out
}

/// Applies a benchmark's waivers: matching warnings are downgraded to info
/// with the justification attached; waiver-hygiene findings (empty
/// justification, unknown rule, stale waiver) are appended and cannot
/// themselves be waived.
fn apply_waivers(report: &mut Report, waivers: &[Waiver]) {
    let catalogue = rule_catalogue();
    for waiver in waivers {
        if waiver.justification.trim().is_empty() {
            report.diagnostics.push(Diagnostic::error(
                "empty-waiver-justification",
                None,
                format!(
                    "waiver for rule `{}` has no justification; waivers must record why \
                     the violation is intentional",
                    waiver.rule
                ),
            ));
            continue;
        }
        if !catalogue.contains(&waiver.rule) {
            report.diagnostics.push(Diagnostic::warning(
                "unknown-waiver-rule",
                None,
                format!("waiver names unknown rule `{}`", waiver.rule),
            ));
            continue;
        }
        let mut hit = false;
        for diag in &mut report.diagnostics {
            if diag.rule == waiver.rule && diag.severity == Severity::Warning {
                diag.severity = Severity::Info;
                diag.message = format!("{} (waived: {})", diag.message, waiver.justification);
                hit = true;
            }
        }
        if !hit {
            report.diagnostics.push(Diagnostic::warning(
                "stale-waiver",
                None,
                format!(
                    "waiver for rule `{}` suppresses nothing under this configuration",
                    waiver.rule
                ),
            ));
        }
    }
}

/// Derives the static metrics for one kernel. Shared with the performance
/// predictor ([`crate::predict`]), whose abstract domain starts from these
/// mix/dataflow/occupancy facts.
pub(crate) fn compute_metrics(
    desc: &KernelDesc,
    sm: &SmConfig,
    flow: &dataflow::Dataflow,
) -> StaticMetrics {
    let p = &desc.program;
    let gload_frac = p.fraction(OpClass::GlobalLoad);
    let gstore_frac = p.fraction(OpClass::GlobalStore);
    let shmem_frac = p.fraction(OpClass::SharedMem);
    let alu_frac = p.fraction(OpClass::Alu);
    let sfu_frac = p.fraction(OpClass::Sfu);
    let global_traffic = (gload_frac + gstore_frac) * f64::from(desc.pattern.transactions());
    let arithmetic_intensity = if global_traffic > 0.0 {
        (alu_frac + sfu_frac) / global_traffic
    } else {
        f64::INFINITY
    };
    let (max_ctas_by, max_ctas) = gpu_sim::occupancy_breakdown(desc, sm);
    StaticMetrics {
        body_len: p.len(),
        iterations: desc.iterations,
        alu_frac,
        sfu_frac,
        gload_frac,
        gstore_frac,
        shmem_frac,
        barrier_frac: p.fraction(OpClass::Barrier),
        lsu_frac: gload_frac + gstore_frac + shmem_frac,
        global_traffic,
        arithmetic_intensity,
        median_raw_distance: flow.median_raw_distance(),
        dominant_raw_distance: flow.dominant_raw_distance(),
        raw_histogram: flow.raw_histogram.clone(),
        first_iter_uninit_reads: flow.first_iter_uninit_reads,
        max_ctas_by,
        max_ctas,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Inst, Program, ProgramSpec};

    fn cfg() -> GpuConfig {
        GpuConfig::isca_baseline()
    }

    fn desc() -> KernelDesc {
        KernelDesc {
            name: "K".into(),
            grid_ctas: 64,
            threads_per_cta: 128,
            regs_per_thread: 16,
            shmem_per_cta: 0,
            program: ProgramSpec::default().generate(),
            iterations: 2,
            pattern: AccessPattern::Streaming { transactions: 1 },
            icache_miss_rate: 0.0,
            shmem_conflict_degree: 1,
            seed: 1,
        }
    }

    fn rules_of(report: &Report) -> Vec<&'static str> {
        report.diagnostics.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn well_formed_kernel_is_clean() {
        let r = analyze_kernel(&desc(), &cfg());
        assert!(r.is_clean(), "unexpected findings: {r}");
        assert_eq!(r.metrics.max_ctas, 8);
    }

    #[test]
    fn analyzer_collects_every_hard_error() {
        let mut d = desc();
        d.grid_ctas = 0;
        d.iterations = 0;
        d.icache_miss_rate = 2.0;
        let r = analyze_kernel(&d, &cfg());
        let rules = rules_of(&r);
        assert!(rules.contains(&"zero-grid"));
        assert!(rules.contains(&"zero-iterations"));
        assert!(rules.contains(&"rate-out-of-range"));
        assert!(r.diagnostics.len() >= 3);
    }

    #[test]
    fn infeasible_kernel_is_a_hard_error_with_suggestion() {
        let mut d = desc();
        d.shmem_per_cta = 49 * 1024;
        let r = analyze_kernel(&d, &cfg());
        let diag = r
            .diagnostics
            .iter()
            .find(|d| d.rule == "eq1-infeasible")
            .expect("eq1 violation reported");
        assert_eq!(diag.severity, Severity::Error);
        assert!(diag.suggestion.is_some());
        assert_eq!(r.metrics.max_ctas, 0, "zero occupancy in the breakdown");
    }

    #[test]
    fn never_defined_reads_all_reported() {
        let mut d = desc();
        d.program = Program::new(vec![
            Inst {
                op: OpClass::Alu,
                dst: Some(0),
                srcs: [Some(7), None], // r7 never defined
            },
            Inst {
                op: OpClass::Alu,
                dst: Some(1),
                srcs: [Some(8), None], // r8 never defined
            },
        ]);
        let r = analyze_kernel(&d, &cfg());
        let spans: Vec<_> = r
            .diagnostics
            .iter()
            .filter(|d| d.rule == "never-defined-read")
            .map(|d| d.span)
            .collect();
        assert_eq!(spans, vec![Some(0), Some(1)]);
    }

    #[test]
    fn leading_barrier_and_single_warp_are_warned() {
        let mut d = desc();
        d.threads_per_cta = 32;
        d.program = Program::new(vec![
            Inst {
                op: OpClass::Barrier,
                dst: None,
                srcs: [None, None],
            },
            Inst {
                op: OpClass::Alu,
                dst: Some(0),
                srcs: [Some(0), None],
            },
        ]);
        let r = analyze_kernel(&d, &cfg());
        let rules = rules_of(&r);
        assert!(rules.contains(&"barrier-first-inst"));
        assert!(rules.contains(&"barrier-single-warp"));
        assert!(!r.is_clean());
    }

    #[test]
    fn footprint_and_transaction_bounds_are_checked() {
        let mut d = desc();
        d.pattern = AccessPattern::Random {
            footprint_lines: SHARED_REGION_LINES + 1,
            transactions: 64,
        };
        let r = analyze_kernel(&d, &cfg());
        let rules = rules_of(&r);
        assert!(rules.contains(&"footprint-overflow"));
        assert!(rules.contains(&"transactions-clamped"));
    }

    #[test]
    fn zero_footprints_and_oversized_tiles_are_warned() {
        let mut d = desc();
        d.pattern = AccessPattern::Tiled {
            tile_lines: 256, // L1 holds 128 lines
            reuse: 0,
            transactions: 1,
        };
        let r = analyze_kernel(&d, &cfg());
        let rules = rules_of(&r);
        assert!(rules.contains(&"tile-exceeds-l1"));
        assert!(rules.contains(&"zero-footprint"));
    }

    #[test]
    fn shmem_mismatches_are_warned_both_ways() {
        let mut d = desc();
        d.shmem_per_cta = 1024; // allocated but never accessed
        let r = analyze_kernel(&d, &cfg());
        assert!(rules_of(&r).contains(&"unused-shmem"));

        let mut d = desc();
        d.program = ProgramSpec {
            shmem_frac: 0.2,
            ..ProgramSpec::default()
        }
        .generate();
        let r = analyze_kernel(&d, &cfg());
        assert!(rules_of(&r).contains(&"shmem-without-allocation"));
    }

    #[test]
    fn oversized_grid_warns_region_overlap() {
        let mut d = desc();
        d.grid_ctas = MAX_DISJOINT_CTAS + 1;
        let r = analyze_kernel(&d, &cfg());
        assert!(rules_of(&r).contains(&"cta-region-overlap"));
    }

    #[test]
    fn conflict_degree_out_of_range_is_warned() {
        let mut d = desc();
        d.shmem_conflict_degree = 33;
        let r = analyze_kernel(&d, &cfg());
        assert!(rules_of(&r).contains(&"conflict-degree-range"));
    }

    #[test]
    fn occupancy_breakdown_marks_unbounded_resources() {
        let (by, max) = gpu_sim::occupancy_breakdown(&desc(), &cfg().sm);
        let [threads, regs, shmem, slots] = by;
        assert_eq!(threads, 12); // 1536 / 128
        assert_eq!(regs, 16); // 32768 / 2048
        assert_eq!(shmem, u32::MAX, "no shared memory demanded");
        assert_eq!(slots, 8);
        assert_eq!(max, 8);
    }

    #[test]
    fn catalogue_is_deduplicated_and_complete() {
        let cat = rule_catalogue();
        let mut sorted = cat.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), cat.len(), "no duplicate rule ids");
        assert!(cat.contains(&"eq1-infeasible"));
        assert!(cat.contains(&"class-traffic"));
    }
}
