//! Integration tests tying the static verifier to the simulator.
//!
//! The contract under test: a kernel the analyzer accepts must launch
//! through [`Gpu::try_add_kernel`] and simulate to completion, and a kernel
//! the analyzer rejects must be rejected by the launch pre-flight too, for
//! the *same* rule. Randomized descriptors use [`SimRng`] with fixed seeds
//! so failures reproduce.

use gpu_sim::{
    AccessPattern, Gpu, GpuConfig, Inst, KernelDesc, OpClass, Program, ProgramSpec, SchedulerKind,
    SimRng,
};
use ws_analyze::{analyze_benchmark, analyze_kernel, Severity};
use ws_workloads::{
    by_abbrev, extended_suite, Benchmark, PaperRow, ScalingArchetype, Waiver, WorkloadClass,
};

/// A small, analyzer-clean descriptor used as the baseline for mutations.
fn clean_desc(seed: u64) -> KernelDesc {
    KernelDesc {
        name: format!("fixture-{seed}"),
        grid_ctas: 2,
        threads_per_cta: 128,
        regs_per_thread: 16,
        shmem_per_cta: 0,
        program: ProgramSpec {
            body_len: 48,
            sfu_frac: 0.05,
            gload_frac: 0.10,
            gstore_frac: 0.05,
            shmem_frac: 0.0,
            barrier_frac: 0.0,
            dep_distance: 4,
            seed,
        }
        .generate(),
        iterations: 4,
        pattern: AccessPattern::Streaming { transactions: 1 },
        icache_miss_rate: 0.0,
        shmem_conflict_degree: 1,
        seed,
    }
}

/// Error-severity rule ids in a report.
fn error_rules(report: &ws_analyze::Report) -> Vec<&'static str> {
    report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .map(|d| d.rule)
        .collect()
}

/// Asserts the descriptor is rejected by BOTH the ws-analyze report and the
/// simulator's launch pre-flight, each naming `rule`.
fn assert_rejected_everywhere(desc: KernelDesc, rule: &str) {
    let cfg = GpuConfig::isca_baseline();
    let report = analyze_kernel(&desc, &cfg);
    assert!(
        error_rules(&report).contains(&rule),
        "ws-analyze should report [{rule}], got {:?}",
        report.diagnostics
    );
    let mut gpu = Gpu::new(cfg, SchedulerKind::GreedyThenOldest);
    let err = gpu
        .try_add_kernel(desc)
        .expect_err("launch pre-flight should reject the kernel");
    assert_eq!(err.rule(), rule, "pre-flight rejected for {err}");
}

#[test]
fn never_defined_read_is_rejected_by_both_layers() {
    let mut desc = clean_desc(1);
    // Register slot 40 aliases slot 8 (mod 32); neither is ever written in
    // this hand-built two-instruction body.
    desc.program = Program::new(vec![
        Inst {
            op: OpClass::Alu,
            dst: Some(0),
            srcs: [None, None],
        },
        Inst {
            op: OpClass::Alu,
            dst: Some(1),
            srcs: [Some(8), None],
        },
    ]);
    assert_rejected_everywhere(desc, "never-defined-read");
}

#[test]
fn infeasible_eq1_footprint_is_rejected_by_both_layers() {
    let mut desc = clean_desc(2);
    // 64 KB of shared memory per CTA exceeds the SM's 48 KB outright: zero
    // occupancy under Eq. 1.
    desc.shmem_per_cta = 64 * 1024;
    assert_rejected_everywhere(desc, "eq1-infeasible");
}

#[test]
fn operand_carrying_barrier_is_rejected_by_both_layers() {
    let mut desc = clean_desc(3);
    desc.program = Program::new(vec![
        Inst {
            op: OpClass::Alu,
            dst: Some(0),
            srcs: [None, None],
        },
        Inst {
            op: OpClass::Barrier,
            dst: None,
            srcs: [Some(0), None],
        },
    ]);
    assert_rejected_everywhere(desc, "barrier-operands");
}

#[test]
fn verifier_clean_descriptors_simulate_to_completion() {
    // Property: over SimRng-drawn descriptors the analyzer passes, the
    // launch pre-flight agrees and the simulation retires every CTA.
    let cfg = GpuConfig::isca_baseline();
    let mut rng = SimRng::seed_from_u64(0xC0FFEE);
    for trial in 0..4u64 {
        let mut desc = clean_desc(100 + trial);
        desc.program = ProgramSpec {
            body_len: 32 + rng.range_usize(32),
            sfu_frac: 0.1 * rng.unit_f64(),
            gload_frac: 0.05 + 0.1 * rng.unit_f64(),
            gstore_frac: 0.05 * rng.unit_f64(),
            shmem_frac: 0.0,
            barrier_frac: 0.0,
            dep_distance: 1 + rng.range_usize(8),
            seed: rng.next_u64(),
        }
        .generate();
        let report = analyze_kernel(&desc, &cfg);
        assert!(
            report.is_clean(),
            "trial {trial} expected a clean report, got {report}"
        );
        let grid = desc.grid_ctas;
        let cap = desc.max_ctas_per_sm(&cfg.sm);
        let mut gpu = Gpu::new(cfg.clone(), SchedulerKind::GreedyThenOldest);
        let k = gpu
            .try_add_kernel(desc)
            .expect("analyzer-clean kernel must pass the launch pre-flight");
        let mut done = false;
        for _ in 0..30_000 {
            for s in 0..gpu.num_sms() {
                while gpu.sm(s).kernel_ctas(0) < cap && gpu.try_launch(k, s) {}
            }
            gpu.tick();
            if gpu.kernel_meta(k).completed_ctas >= grid {
                done = true;
                break;
            }
        }
        assert!(
            done,
            "trial {trial}: analyzer-clean kernel did not retire its {grid}-CTA grid"
        );
    }
}

#[test]
fn corrupted_programs_fail_for_the_stated_rule() {
    // Property: take a clean generated program and append one corrupted
    // instruction (appending never removes a definition, so the planted
    // violation is the only one); both layers must reject it for exactly
    // the stated rule, at the appended span.
    for trial in 0..4u64 {
        let desc = clean_desc(200 + trial);
        let insts: Vec<Inst> = desc.program.iter().copied().collect();
        let victim = insts.len();
        let (bad_inst, rule) = if trial % 2 == 0 {
            (
                Inst {
                    op: OpClass::Barrier,
                    dst: None,
                    srcs: [Some(0), None],
                },
                "barrier-operands",
            )
        } else {
            (
                Inst {
                    op: OpClass::GlobalLoad,
                    dst: None,
                    srcs: [None, None],
                },
                "load-without-dest",
            )
        };
        let mut corrupted = insts;
        corrupted.push(bad_inst);
        let mut bad = desc;
        bad.program = Program::new(corrupted);
        let cfg = GpuConfig::isca_baseline();
        let report = analyze_kernel(&bad, &cfg);
        let offending: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.rule == rule)
            .collect();
        assert!(
            offending.iter().any(|d| d.span == Some(victim)),
            "trial {trial}: expected [{rule}] at inst {victim}, got {:?}",
            report.diagnostics
        );
        let mut gpu = Gpu::new(cfg, SchedulerKind::GreedyThenOldest);
        let err = gpu.try_add_kernel(bad).expect_err("pre-flight must reject");
        assert_eq!(err.rule(), rule);
    }
}

#[test]
fn shipped_suites_are_verifier_clean() {
    // The xtask gate depends on this staying true; keep it pinned by a test
    // so a suite edit that introduces a diagnostic fails close to the edit.
    let cfg = GpuConfig::isca_baseline();
    for report in ws_analyze::verify_suite(&extended_suite(), &cfg) {
        assert!(report.is_clean(), "unexpected diagnostics:\n{report}");
    }
}

#[test]
fn by_abbrev_resolves_any_case() {
    // `MUM` and `mum` must name the same benchmark, and the same holds for
    // every abbreviation in the extended suite.
    let upper = by_abbrev("MUM").expect("MUM resolves");
    let lower = by_abbrev("mum").expect("mum resolves");
    assert_eq!(upper.abbrev, lower.abbrev);
    assert_eq!(upper.desc, lower.desc);
    for bench in extended_suite() {
        let from_lower = by_abbrev(&bench.abbrev.to_ascii_lowercase())
            .unwrap_or_else(|| panic!("{} resolves lowercased", bench.abbrev));
        assert_eq!(from_lower.abbrev, bench.abbrev);
    }
}

/// A descriptor consistent with the fixture's declared metadata (Compute
/// class, non-saturating archetype): light global traffic, unit RAW chain.
fn compute_fixture_desc(seed: u64) -> KernelDesc {
    let mut desc = clean_desc(seed);
    desc.program = ProgramSpec {
        body_len: 48,
        sfu_frac: 0.05,
        gload_frac: 0.06,
        gstore_frac: 0.02,
        shmem_frac: 0.0,
        barrier_frac: 0.0,
        dep_distance: 1,
        seed,
    }
    .generate();
    desc
}

/// Wraps a descriptor into a fixture [`Benchmark`] with the given waivers.
fn fixture_bench(desc: KernelDesc, waivers: &'static [Waiver]) -> Benchmark {
    Benchmark {
        abbrev: "FIX",
        full_name: "waiver fixture",
        desc,
        class: WorkloadClass::Compute,
        archetype: ScalingArchetype::ComputeNonSaturating,
        paper: PaperRow {
            reg: 0.0,
            shm: 0.0,
            alu: 0.0,
            sfu: 0.0,
            ls: 0.0,
            l2_mpki: 0.0,
        },
        waivers,
    }
}

#[test]
fn waiver_downgrades_a_warning_and_stale_waivers_warn() {
    let cfg = GpuConfig::isca_baseline();
    // Shared memory allocated but never touched: warns unwaived...
    let mut desc = compute_fixture_desc(7);
    desc.shmem_per_cta = 1024;
    let unwaived = analyze_benchmark(&fixture_bench(desc.clone(), &[]), &cfg);
    assert!(!unwaived.is_clean());
    assert!(unwaived.failures().any(|d| d.rule == "unused-shmem"));

    // ...and is downgraded to Info by a justified waiver.
    let waived = analyze_benchmark(
        &fixture_bench(
            desc.clone(),
            &[Waiver {
                rule: "unused-shmem",
                justification: "models an over-allocating compiler; occupancy throttle intended",
            }],
        ),
        &cfg,
    );
    assert!(waived.is_clean(), "waived report still fails:\n{waived}");
    assert!(waived
        .diagnostics
        .iter()
        .any(|d| d.rule == "unused-shmem" && d.severity == Severity::Info));

    // A waiver whose rule never fires is itself reported as stale.
    let mut plain = compute_fixture_desc(8);
    plain.shmem_per_cta = 0;
    let stale = analyze_benchmark(
        &fixture_bench(
            plain,
            &[Waiver {
                rule: "unused-shmem",
                justification: "left over from an earlier descriptor",
            }],
        ),
        &cfg,
    );
    assert!(stale.failures().any(|d| d.rule == "stale-waiver"));
}

#[test]
fn waiver_bookkeeping_is_itself_verified() {
    let cfg = GpuConfig::isca_baseline();
    // Empty justification: hard error, cannot be waived away.
    let empty = analyze_benchmark(
        &fixture_bench(
            compute_fixture_desc(9),
            &[Waiver {
                rule: "unused-shmem",
                justification: "",
            }],
        ),
        &cfg,
    );
    assert!(error_rules(&empty).contains(&"empty-waiver-justification"));
    // Unknown rule id: flagged so typos don't silently waive nothing.
    let unknown = analyze_benchmark(
        &fixture_bench(
            compute_fixture_desc(10),
            &[Waiver {
                rule: "no-such-rule",
                justification: "typo'd rule id",
            }],
        ),
        &cfg,
    );
    assert!(unknown.failures().any(|d| d.rule == "unknown-waiver-rule"));
}
