//! Execution-layer baseline: wall-clock of the Fig. 3a suite sweep with a
//! serial pool vs. a multi-worker pool, written machine-readably to
//! `results/BENCH_exec.json`.
//!
//! The sweep fans out one CTA-capped simulation per (benchmark, CTA count)
//! point — the workload the [`ws_exec::Pool`] exists for. Besides timing,
//! the bench asserts the rendered Fig. 3a table is byte-identical between
//! the two pools, so the perf baseline doubles as a determinism check.

use std::num::NonZeroUsize;
use std::path::PathBuf;
use std::time::Instant;

use warped_slicer::RunConfig;
use ws_bench::experiments::fig3;
use ws_bench::ExperimentContext;

const BUDGET: u64 = 4_000;
const WINDOW: u64 = 2_000;

/// Times one full-suite sweep on a pool with `threads` workers; returns
/// (wall seconds, jobs completed, rendered table).
fn time_sweep(threads: usize) -> (f64, u64, String) {
    let cfg = RunConfig {
        isolation_cycles: BUDGET,
        ..RunConfig::default()
    };
    let ctx = ExperimentContext::with_pool(cfg, ws_exec::Pool::new(threads));
    let t = Instant::now();
    let curves = fig3::compute(&ctx, WINDOW);
    let wall = t.elapsed().as_secs_f64();
    (wall, ctx.pool().jobs_completed(), fig3::render(&curves))
}

fn main() {
    let host = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);
    // On a single-core host the threaded path still runs (measuring its
    // overhead honestly); speedup is only physically possible when host > 1.
    let parallel_threads = host.max(2);

    let (serial_wall, jobs, serial_render) = time_sweep(1);
    let (parallel_wall, _, parallel_render) = time_sweep(parallel_threads);
    assert_eq!(
        serial_render, parallel_render,
        "fig3 render must be byte-identical at any worker count"
    );

    let speedup = serial_wall / parallel_wall.max(1e-9);
    let json = format!(
        "{{\n  \"bench\": \"exec_fig3_sweep\",\n  \"isolation_cycles\": {BUDGET},\n  \
         \"window_cycles\": {WINDOW},\n  \"jobs_per_sweep\": {jobs},\n  \
         \"host_parallelism\": {host},\n  \
         \"serial\": {{ \"threads\": 1, \"wall_s\": {serial_wall:.4} }},\n  \
         \"parallel\": {{ \"threads\": {parallel_threads}, \"wall_s\": {parallel_wall:.4} }},\n  \
         \"speedup\": {speedup:.3},\n  \"identical_output\": true\n}}\n"
    );

    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    let path = dir.join("BENCH_exec.json");
    match std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, &json)) {
        Ok(()) => println!("exec/fig3_sweep: serial {serial_wall:.2}s, {parallel_threads} threads {parallel_wall:.2}s (x{speedup:.2}) -> {}", path.display()),
        Err(e) => {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}
