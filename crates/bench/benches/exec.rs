//! Execution-layer scaling bench: wall-clock of the Fig. 3a suite sweep at
//! 1/2/4/8 workers plus the barriered-vs-pipelined profile→decide
//! comparison, written machine-readably to `results/BENCH_exec.json`.
//!
//! The sweep fans out one CTA-capped simulation per (benchmark, CTA count)
//! point — the workload the persistent [`ws_exec::Pool`] exists for. Every
//! arm asserts the rendered Fig. 3a table is byte-identical to the serial
//! run, so the perf numbers double as a determinism check; likewise the
//! pipelined decide harness is asserted equal to the barriered one.
//!
//! CI floor: when `WS_EXEC_BENCH_MIN_SPEEDUP` is set **and** the host has
//! at least 4 cores, the 4-worker arm must reach that speedup over serial
//! or the bench exits non-zero. On narrower hosts the floor is recorded as
//! skipped — a 1-core container cannot physically demonstrate scaling, and
//! pretending otherwise would gate CI on noise.

use std::num::NonZeroUsize;
use std::path::PathBuf;
use std::time::Instant;

use warped_slicer::RunConfig;
use ws_bench::experiments::fig3;
use ws_bench::ExperimentContext;
use ws_workloads::all_pairs;

const BUDGET: u64 = 4_000;
const WINDOW: u64 = 2_000;
const ARM_THREADS: [usize; 4] = [1, 2, 4, 8];
/// Worker count the CI floor gates on (and the decide comparison uses).
const FLOOR_THREADS: usize = 4;
/// Pairs for the profile→decide comparison (kept small: the point is the
/// barrier-vs-overlap delta, not suite coverage).
const DECIDE_PAIRS: usize = 6;
const DECIDE_WINDOW: u64 = 1_500;

/// One measured sweep arm.
struct Arm {
    threads: usize,
    wall_s: f64,
    speedup: f64,
    efficiency: f64,
}

fn ctx_with(threads: usize) -> ExperimentContext {
    let cfg = RunConfig {
        isolation_cycles: BUDGET,
        ..RunConfig::default()
    };
    ExperimentContext::with_pool(cfg, ws_exec::Pool::new(threads))
}

/// Times one full-suite sweep on a pool with `threads` workers; returns
/// (wall seconds, jobs completed, rendered table).
fn time_sweep(threads: usize) -> (f64, u64, String) {
    let ctx = ctx_with(threads);
    let t = Instant::now();
    let curves = fig3::compute(&ctx, WINDOW);
    let wall = t.elapsed().as_secs_f64();
    (wall, ctx.pool().jobs_completed(), fig3::render(&curves))
}

fn main() {
    let host = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);

    // Fig. 3 sweep at every arm; serial is the baseline and the golden
    // render every other arm must reproduce byte for byte.
    let (serial_wall, jobs, serial_render) = time_sweep(1);
    let mut arms = vec![Arm {
        threads: 1,
        wall_s: serial_wall,
        speedup: 1.0,
        efficiency: 1.0,
    }];
    for &threads in ARM_THREADS.iter().skip(1) {
        let (wall, _, render) = time_sweep(threads);
        assert_eq!(
            serial_render, render,
            "fig3 render must be byte-identical at {threads} workers"
        );
        let speedup = serial_wall / wall.max(1e-9);
        arms.push(Arm {
            threads,
            wall_s: wall,
            speedup,
            efficiency: speedup / threads as f64,
        });
    }

    // Profile→decide: the staged/barriered harness vs. the pipelined one
    // on the same pool, same pairs, asserted byte-identical.
    let pairs: Vec<_> = all_pairs().into_iter().take(DECIDE_PAIRS).collect();
    let decide_ctx = ctx_with(FLOOR_THREADS.min(host.max(2)));
    let t = Instant::now();
    let barriered = decide_ctx.decide_pairs(&pairs, DECIDE_WINDOW);
    let barriered_wall = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let pipelined = decide_ctx.decide_pairs_pipelined(&pairs, DECIDE_WINDOW);
    let pipelined_wall = t.elapsed().as_secs_f64();
    assert_eq!(
        barriered, pipelined,
        "pipelined decide harness must match the barriered baseline"
    );
    let decide_speedup = barriered_wall / pipelined_wall.max(1e-9);

    // CI floor: only meaningful on a multi-core host.
    let floor_env = std::env::var("WS_EXEC_BENCH_MIN_SPEEDUP").ok();
    let floor: Option<f64> = floor_env.as_deref().and_then(|v| v.trim().parse().ok());
    let enforced = floor.is_some() && host >= FLOOR_THREADS;
    let gated_speedup = arms
        .iter()
        .find(|a| a.threads == FLOOR_THREADS)
        .map_or(0.0, |a| a.speedup);
    let passed = match (enforced, floor) {
        (true, Some(f)) => gated_speedup >= f,
        _ => true,
    };

    let arm_json: Vec<String> = arms
        .iter()
        .map(|a| {
            format!(
                "    {{ \"threads\": {}, \"wall_s\": {:.4}, \"speedup\": {:.3}, \
                 \"efficiency\": {:.3}, \"identical_output\": true }}",
                a.threads, a.wall_s, a.speedup, a.efficiency
            )
        })
        .collect();
    // A host narrower than the gated arm cannot demonstrate scaling: its
    // arm speedups are scheduler noise, and the committed artifact must
    // say so rather than look like a (terrible) measurement.
    let note = if host < FLOOR_THREADS {
        format!(
            "\n  \"note\": \"arms recorded on a {host}-core host: speedups are \
             noise-level, not scaling measurements; multi-core CI owns the \
             enforced numbers\",",
        )
    } else {
        String::new()
    };
    let json = format!(
        "{{\n  \"bench\": \"exec_fig3_sweep\",\n  \"isolation_cycles\": {BUDGET},\n  \
         \"window_cycles\": {WINDOW},\n  \"jobs_per_sweep\": {jobs},\n  \
         \"host_parallelism\": {host},{note}\n  \"arms\": [\n{}\n  ],\n  \
         \"pipeline\": {{ \"pairs\": {}, \"threads\": {}, \
         \"barriered_wall_s\": {barriered_wall:.4}, \"pipelined_wall_s\": {pipelined_wall:.4}, \
         \"speedup\": {decide_speedup:.3}, \"identical_decisions\": true }},\n  \
         \"floor\": {{ \"env\": \"WS_EXEC_BENCH_MIN_SPEEDUP\", \"value\": {}, \
         \"gated_threads\": {FLOOR_THREADS}, \"enforced\": {enforced}, \"passed\": {passed} }}\n}}\n",
        arm_json.join(",\n"),
        pairs.len(),
        decide_ctx.pool().threads(),
        floor.map_or("null".to_string(), |f| format!("{f}")),
    );

    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    let path = dir.join("BENCH_exec.json");
    if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, &json)) {
        eprintln!("failed to write {}: {e}", path.display());
        std::process::exit(1);
    }
    for a in &arms {
        println!(
            "exec/fig3_sweep: {} threads {:.2}s (x{:.2}, eff {:.2})",
            a.threads, a.wall_s, a.speedup, a.efficiency
        );
    }
    println!(
        "exec/decide: barriered {barriered_wall:.2}s, pipelined {pipelined_wall:.2}s (x{decide_speedup:.2}) -> {}",
        path.display()
    );
    match (enforced, floor) {
        (true, Some(f)) if !passed => {
            eprintln!(
                "FAIL: {FLOOR_THREADS}-worker speedup {gated_speedup:.2} below floor {f:.2}"
            );
            std::process::exit(1);
        }
        (true, Some(f)) => {
            println!("floor: {FLOOR_THREADS}-worker speedup {gated_speedup:.2} >= {f:.2} ok")
        }
        _ => println!(
            "floor: skipped (host_parallelism {host} < {FLOOR_THREADS} or WS_EXEC_BENCH_MIN_SPEEDUP unset)"
        ),
    }
}
