//! Micro-benchmarks that regenerate each paper artifact at a reduced cycle
//! budget through the same library entry points the `experiments` binary
//! uses — one bench per table/figure, so `cargo bench` exercises the full
//! evaluation pipeline end to end. Runs on the dependency-free
//! `ws_bench::microbench` harness.

use ws_bench::experiments::{
    ablation, energy, fig1, fig10, fig2, fig3, fig5, fig6, fig7, fig8, fig9, large_config,
    overhead, table1, table2, table3,
};
use ws_bench::{ExperimentContext, Runner};
use ws_workloads::{by_abbrev, Pair, PairCategory};

const BUDGET: u64 = 4_000;

fn ctx() -> ExperimentContext {
    ExperimentContext::new(BUDGET)
}

fn one_pair() -> Pair {
    Pair {
        a: by_abbrev("IMG").expect("suite"),
        b: by_abbrev("NN").expect("suite"),
        category: PairCategory::ComputeCache,
    }
}

fn main() {
    let mut r = Runner::new("figures");

    r.bench("table1", || {
        table1::render(&ExperimentContext::new(BUDGET).cfg.gpu)
    });
    r.bench("table2", || {
        let ctx = ctx();
        table2::render(&table2::compute(&ctx))
    });
    r.bench("fig1", || {
        let ctx = ctx();
        fig1::render(&fig1::compute(&ctx))
    });
    r.bench("fig2", || fig2::render(&fig2::compute()));
    {
        let ctx = ctx();
        let img = by_abbrev("IMG").expect("suite");
        r.bench("fig3a_one_curve", || fig3::sweep(&ctx, &img, 2_000));
        r.bench("fig3b", || fig3::compute_sweet_spot(&ctx, 2_000));
        r.bench("fig5_one_series", || fig5::series(&ctx, &img, 2_000, 2));
    }
    r.bench("fig6_one_pair", || {
        let ctx = ctx();
        fig6::run_pair(&ctx, &one_pair(), false)
    });
    {
        let ctx = ctx();
        let data = fig6::Fig6Data {
            pairs: vec![fig6::run_pair(&ctx, &one_pair(), false)],
        };
        r.bench("table3_render", || table3::render(&data, &ctx.cfg.gpu));
        r.bench("fig7_from_runs", || {
            (
                fig7::utilization_ratios(&data),
                fig7::render_cache(&data),
                fig7::render_stalls(&data),
            )
        });
        r.bench("fig9_metrics", || fig9::two_kernel(&ctx, &data));
        r.bench("energy_model", || energy::compute(&data));
    }
    r.bench("fig8_one_triple", || {
        let triple = ws_workloads::all_triples().remove(0);
        let ctx = ctx();
        fig8::run_triple(&ctx, &triple)
    });
    r.bench("fig10a_one_point", || {
        let ctx = ctx();
        let pairs = vec![one_pair()];
        fig10::compute_timing(&ctx, &pairs)
    });
    r.bench("fig10b_schedulers", || {
        fig10::compute_schedulers(BUDGET, &[one_pair()])
    });
    r.bench("large_config_one_pair", || {
        large_config::compute(BUDGET, &[one_pair()])
    });
    r.bench("overhead", overhead::render);
    r.bench("ablation_one_pair", || {
        let ctx = ctx();
        let pairs = vec![one_pair()];
        ablation::compute(&ctx, &pairs)
    });
}
