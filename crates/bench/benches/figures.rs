//! Criterion benchmarks that regenerate each paper artifact at a reduced
//! cycle budget through the same library entry points the `experiments`
//! binary uses — one bench per table/figure, so `cargo bench` exercises the
//! full evaluation pipeline end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use ws_bench::experiments::{
    ablation, energy, fig1, fig10, fig2, fig3, fig5, fig6, fig7, fig8, fig9, large_config,
    overhead, table1, table2, table3,
};
use ws_bench::ExperimentContext;
use ws_workloads::{by_abbrev, Pair, PairCategory};

const BUDGET: u64 = 4_000;

fn ctx() -> ExperimentContext {
    ExperimentContext::new(BUDGET)
}

fn one_pair() -> Pair {
    Pair {
        a: by_abbrev("IMG").expect("suite"),
        b: by_abbrev("NN").expect("suite"),
        category: PairCategory::ComputeCache,
    }
}

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);

    g.bench_function("table1", |b| {
        b.iter(|| table1::render(&ExperimentContext::new(BUDGET).cfg.gpu))
    });
    g.bench_function("table2", |b| {
        b.iter(|| {
            let mut ctx = ctx();
            table2::render(&table2::compute(&mut ctx))
        })
    });
    g.bench_function("fig1", |b| {
        b.iter(|| {
            let mut ctx = ctx();
            fig1::render(&fig1::compute(&mut ctx))
        })
    });
    g.bench_function("fig2", |b| b.iter(|| fig2::render(&fig2::compute())));
    g.bench_function("fig3a_one_curve", |b| {
        let ctx = ctx();
        let img = by_abbrev("IMG").expect("suite");
        b.iter(|| fig3::sweep(&ctx, &img, 2_000))
    });
    g.bench_function("fig3b", |b| {
        let ctx = ctx();
        b.iter(|| fig3::compute_sweet_spot(&ctx, 2_000))
    });
    g.bench_function("fig5_one_series", |b| {
        let ctx = ctx();
        let img = by_abbrev("IMG").expect("suite");
        b.iter(|| fig5::series(&ctx, &img, 2_000, 2))
    });
    g.bench_function("fig6_one_pair", |b| {
        b.iter(|| {
            let mut ctx = ctx();
            fig6::run_pair(&mut ctx, &one_pair(), false)
        })
    });
    g.bench_function("table3_render", |b| {
        let mut ctx = ctx();
        let data = fig6::Fig6Data {
            pairs: vec![fig6::run_pair(&mut ctx, &one_pair(), false)],
        };
        b.iter(|| table3::render(&data, &ctx.cfg.gpu))
    });
    g.bench_function("fig7_from_runs", |b| {
        let mut ctx = ctx();
        let data = fig6::Fig6Data {
            pairs: vec![fig6::run_pair(&mut ctx, &one_pair(), false)],
        };
        b.iter(|| {
            (
                fig7::utilization_ratios(&data),
                fig7::render_cache(&data),
                fig7::render_stalls(&data),
            )
        })
    });
    g.bench_function("fig8_one_triple", |b| {
        let triple = ws_workloads::all_triples().remove(0);
        b.iter(|| {
            let mut ctx = ctx();
            fig8::run_triple(&mut ctx, &triple)
        })
    });
    g.bench_function("fig9_metrics", |b| {
        let mut ctx = ctx();
        let data = fig6::Fig6Data {
            pairs: vec![fig6::run_pair(&mut ctx, &one_pair(), false)],
        };
        b.iter(|| fig9::two_kernel(&data, BUDGET))
    });
    g.bench_function("energy_model", |b| {
        let mut ctx = ctx();
        let data = fig6::Fig6Data {
            pairs: vec![fig6::run_pair(&mut ctx, &one_pair(), false)],
        };
        b.iter(|| energy::compute(&data))
    });
    g.bench_function("fig10a_one_point", |b| {
        b.iter(|| {
            let mut ctx = ctx();
            let pairs = vec![one_pair()];
            fig10::compute_timing(&mut ctx, &pairs)
        })
    });
    g.bench_function("fig10b_schedulers", |b| {
        b.iter(|| fig10::compute_schedulers(BUDGET, &[one_pair()]))
    });
    g.bench_function("large_config_one_pair", |b| {
        b.iter(|| large_config::compute(BUDGET, &[one_pair()]))
    });
    g.bench_function("overhead", |b| b.iter(overhead::render));
    g.bench_function("ablation_one_pair", |b| {
        b.iter(|| {
            let mut ctx = ctx();
            let pairs = vec![one_pair()];
            ablation::compute(&mut ctx, &pairs)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
