//! Micro-benchmarks for the multiprogramming policy machinery: a short
//! co-run per policy (controller overhead + simulation) on one pair. Runs
//! on the dependency-free `ws_bench::microbench` harness.

use warped_slicer::{run_corun, PolicyKind, RunConfig, WarpedSlicerConfig};
use ws_bench::Runner;
use ws_workloads::by_abbrev;

fn main() {
    let cfg = RunConfig {
        isolation_cycles: 2_000,
        max_cycle_factor: 3,
        ..RunConfig::default()
    };
    let a = by_abbrev("IMG").expect("suite").desc;
    let b = by_abbrev("BLK").expect("suite").desc;
    // Fixed small targets keep every run the same length.
    let targets = [20_000u64, 10_000];
    let mut r = Runner::new("policies");
    for policy in [
        PolicyKind::LeftOver,
        PolicyKind::Fcfs,
        PolicyKind::Even,
        PolicyKind::Spatial,
        PolicyKind::Quota(vec![5, 3]),
        PolicyKind::WarpedSlicer(WarpedSlicerConfig::scaled_for(2_000)),
    ] {
        r.bench(&policy.to_string(), || {
            run_corun(&[&a, &b], &targets, &policy, &cfg)
        });
    }
}
