//! Criterion benchmarks for the multiprogramming policy machinery: a short
//! co-run per policy (controller overhead + simulation) on one pair.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use warped_slicer::{run_corun, PolicyKind, RunConfig, WarpedSlicerConfig};
use ws_workloads::by_abbrev;

fn bench_policies(c: &mut Criterion) {
    let cfg = RunConfig {
        isolation_cycles: 2_000,
        max_cycle_factor: 3,
        ..RunConfig::default()
    };
    let a = by_abbrev("IMG").expect("suite").desc;
    let b = by_abbrev("BLK").expect("suite").desc;
    // Fixed small targets keep every run the same length.
    let targets = [20_000u64, 10_000];
    let mut g = c.benchmark_group("policies");
    g.sample_size(10);
    for policy in [
        PolicyKind::LeftOver,
        PolicyKind::Fcfs,
        PolicyKind::Even,
        PolicyKind::Spatial,
        PolicyKind::Quota(vec![5, 3]),
        PolicyKind::WarpedSlicer(WarpedSlicerConfig::scaled_for(2_000)),
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(policy.to_string()),
            &policy,
            |bench, policy| {
                bench.iter(|| run_corun(&[&a, &b], &targets, policy, &cfg));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
