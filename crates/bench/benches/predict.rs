//! ws-predict baseline: static-prediction throughput and sweep-sample
//! savings over the Table II suite, written machine-readably to
//! `results/BENCH_predict.json`.
//!
//! Two numbers characterize the analyzer:
//!
//! - `decisions_per_sec` — full static predictions (feature extraction +
//!   contention model + knee) per second across the ten suite kernels.
//!   The predictor sits on the controller's profiling path, so it must be
//!   orders of magnitude cheaper than the sampling it replaces.
//! - `samples_saved_fraction` — fraction of Fig. 3 sweep simulations the
//!   predicted ±1 knee windows skip before any fall-back round
//!   (`SweepPlan::samples_saved / full_samples`).
//!
//! The file also carries `knee_hit_floor`, the accuracy floor the
//! `verify-predictions` gate enforces — changing the floor is a reviewed
//! edit to this committed artifact, not an env tweak.
//!
//! Optional floors for CI (the bench exits non-zero when violated):
//! - `WS_PREDICT_BENCH_MIN_DPS`: minimum decisions/sec (only meaningful on
//!   quiet hosts).
//! - `WS_PREDICT_BENCH_MIN_SAVED`: minimum samples-saved fraction
//!   (deterministic, safe on noisy shared runners).

use std::path::PathBuf;
use std::time::Instant;

use gpu_sim::GpuConfig;
use warped_slicer::SweepPlan;
use ws_analyze::predict_kernel;
use ws_workloads::suite;

/// The committed knee-hit-rate floor `verify-predictions` enforces.
const KNEE_HIT_FLOOR: f64 = 0.8;

const REPS: u32 = 200;

fn main() {
    let cfg = GpuConfig::isca_baseline();
    let benches = suite();
    let descs: Vec<&gpu_sim::KernelDesc> = benches.iter().map(|b| &b.desc).collect();
    let maxes: Vec<u32> = benches.iter().map(|b| b.max_ctas_baseline()).collect();

    // Throughput: repeat the full-suite prediction enough times to measure.
    let start = Instant::now();
    let mut decisions = 0u64;
    for _ in 0..REPS {
        for desc in &descs {
            let curve = predict_kernel(desc, &cfg).expect("suite kernels pass pre-flight");
            assert!(curve.knee >= 1);
            decisions += 1;
        }
    }
    let wall = start.elapsed().as_secs_f64();
    let dps = decisions as f64 / wall.max(1e-9);

    // Savings: the pruned plan the controller would run for this suite.
    let plan = SweepPlan::from_predictions(&descs, &maxes, &cfg);
    let full = plan.full_samples();
    let saved = plan.samples_saved();
    let saved_frac = saved as f64 / full.max(1) as f64;

    let json = format!(
        "{{\n  \"bench\": \"predict\",\n  \
         \"workload\": \"Table II suite ({} kernels), {} predictions\",\n  \
         \"decisions_per_sec\": {:.0},\n  \"prediction_wall_s\": {:.4},\n  \
         \"full_sweep_samples\": {},\n  \"planned_sweep_samples\": {},\n  \
         \"samples_saved\": {},\n  \"samples_saved_fraction\": {:.4},\n  \
         \"knee_hit_floor\": {:.2}\n}}\n",
        descs.len(),
        decisions,
        dps,
        wall,
        full,
        plan.planned_samples(),
        saved,
        saved_frac,
        KNEE_HIT_FLOOR
    );

    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    let path = dir.join("BENCH_predict.json");
    if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, &json)) {
        eprintln!("failed to write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!(
        "predict: {dps:.0} decisions/s; sweep {full} -> {} samples ({saved} saved, {:.0}%)",
        plan.planned_samples(),
        saved_frac * 100.0
    );
    println!("-> {}", path.display());

    let floor = |env: &str| std::env::var(env).ok().and_then(|v| v.parse::<f64>().ok());
    if let Some(min) = floor("WS_PREDICT_BENCH_MIN_DPS") {
        if dps < min {
            eprintln!("decisions/sec {dps:.0} below committed floor {min}");
            std::process::exit(1);
        }
    }
    if let Some(min) = floor("WS_PREDICT_BENCH_MIN_SAVED") {
        if saved_frac < min {
            eprintln!("samples-saved fraction {saved_frac:.4} below committed floor {min}");
            std::process::exit(1);
        }
    }
}
