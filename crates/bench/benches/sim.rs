//! Simulator-core fast-forward baseline: wall-clock of memory-bound
//! co-runs with the event-horizon fast-forward on vs. off, written
//! machine-readably to `results/BENCH_sim.json`.
//!
//! Two scenarios bracket the regimes documented in DESIGN.md §9:
//!
//! - `steady_state_corun` — BFS+LBM under the Warped-Slicer controller at
//!   full occupancy. A saturated machine has a state-changing event almost
//!   every cycle, so nothing is skippable; this scenario documents that
//!   fast-forward adds no measurable overhead (the attempt backoff keeps
//!   failed probes off the hot path).
//! - `safety_cap_corun` — the headline: an equal-work BFS+MUM co-run whose
//!   kernels exhaust their grids before reaching their instruction
//!   targets, so the harness runs the drained machine to its
//!   `max_cycle_factor` safety cap (`timed_out` outcome). Dead cycles
//!   dominate and fast-forward collapses them to a single jump.
//!
//! Both scenarios assert the two modes produce byte-identical statistics,
//! so the perf baseline doubles as a correctness check of the
//! event-horizon contract.
//!
//! Optional floors for CI (the bench exits non-zero when violated):
//! - `WS_SIM_BENCH_MIN_SKIPPED`: minimum skipped-cycle fraction in the
//!   safety-cap scenario (deterministic, safe on noisy shared runners).
//! - `WS_SIM_BENCH_MIN_SPEEDUP`: minimum wall-clock speedup there (only
//!   meaningful on quiet hosts).
//! - `WS_SIM_BENCH_MIN_STEADY_SPEEDUP`: minimum fast-forward-vs-naive
//!   speedup in the *saturated* scenario. The dense regime is where the
//!   SoA scoreboard and micro-horizons earn their keep; this floor keeps
//!   fast-forward probing from ever regressing it (it sat unenforced at
//!   0.96x before the data-oriented refactor). Throughput itself is
//!   reported as `cycles_per_sec` per scenario for baseline comparisons.

use std::path::PathBuf;
use std::time::Instant;

use warped_slicer::{
    execute, PolicyKind, RunConfig, SimJob, SimOutcome, StopCondition, WarpedSlicerConfig,
};
use ws_workloads::by_abbrev;

const STEADY_WARMUP: u64 = 2_000;
const STEADY_MEASURE: u64 = 60_000;

fn steady_state_job(fast_forward: bool) -> SimJob {
    let a = by_abbrev("BFS").expect("suite benchmark");
    let b = by_abbrev("LBM").expect("suite benchmark");
    SimJob {
        kernels: vec![a.desc.clone(), b.desc.clone()],
        policy: PolicyKind::WarpedSlicer(WarpedSlicerConfig::scaled_for(STEADY_MEASURE)),
        cfg: RunConfig {
            fast_forward: Some(fast_forward),
            ..RunConfig::default()
        },
        warmup: STEADY_WARMUP,
        stop: StopCondition::Cycles(STEADY_MEASURE),
    }
}

fn safety_cap_job(fast_forward: bool) -> SimJob {
    let mut a = by_abbrev("BFS").expect("suite benchmark").desc.clone();
    let mut b = by_abbrev("MUM").expect("suite benchmark").desc.clone();
    // Truncated grids: both kernels run out of CTAs long before the
    // (deliberately unreachable) instruction targets, so the run stretches
    // to `isolation_cycles * max_cycle_factor` with a drained machine.
    a.grid_ctas = 128;
    b.grid_ctas = 96;
    SimJob {
        kernels: vec![a, b],
        policy: PolicyKind::Fcfs,
        cfg: RunConfig {
            fast_forward: Some(fast_forward),
            ..RunConfig::default()
        },
        warmup: 0,
        stop: StopCondition::Targets(vec![2_000_000, 2_000_000]),
    }
}

/// Every outcome field except the diagnostic skip counter, rendered
/// through `Debug` so all statistics are compared bit-for-bit.
fn fingerprint(out: &SimOutcome) -> String {
    format!(
        "{:?} {:?} {} {} {:?} {} {:?} {:?}",
        out.start_insts,
        out.end_insts,
        out.measured_cycles,
        out.total_cycles,
        out.finish_cycle,
        out.timed_out,
        out.stats,
        out.decision
    )
}

struct ScenarioResult {
    name: &'static str,
    naive_wall: f64,
    fast_wall: f64,
    speedup: f64,
    total_cycles: u64,
    skipped_cycles: u64,
    skipped_frac: f64,
    /// Simulated cycles per wall-clock second, both modes: the dense-regime
    /// throughput number the SoA refactor is gated on.
    naive_cycles_per_sec: f64,
    fast_cycles_per_sec: f64,
}

fn run_scenario(name: &'static str, make: fn(bool) -> SimJob) -> ScenarioResult {
    let t = Instant::now();
    let naive = execute(&make(false));
    let naive_wall = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let fast = execute(&make(true));
    let fast_wall = t.elapsed().as_secs_f64();

    assert_eq!(naive.ff_skipped_cycles, 0, "{name}: disabled mode skipped");
    assert_eq!(
        fingerprint(&naive),
        fingerprint(&fast),
        "{name}: fast-forward must be byte-identical to the naive loop"
    );

    let skipped_frac = fast.ff_skipped_cycles as f64 / fast.total_cycles.max(1) as f64;
    ScenarioResult {
        name,
        naive_wall,
        fast_wall,
        speedup: naive_wall / fast_wall.max(1e-9),
        total_cycles: fast.total_cycles,
        skipped_cycles: fast.ff_skipped_cycles,
        skipped_frac,
        naive_cycles_per_sec: fast.total_cycles as f64 / naive_wall.max(1e-9),
        fast_cycles_per_sec: fast.total_cycles as f64 / fast_wall.max(1e-9),
    }
}

fn render(s: &ScenarioResult) -> String {
    format!(
        "    {{ \"name\": \"{}\", \"naive_wall_s\": {:.4}, \"fast_forward_wall_s\": {:.4}, \
         \"speedup\": {:.3}, \"total_cycles\": {}, \"skipped_cycles\": {}, \
         \"skipped_fraction\": {:.4}, \"naive_cycles_per_sec\": {:.0}, \
         \"fast_forward_cycles_per_sec\": {:.0} }}",
        s.name,
        s.naive_wall,
        s.fast_wall,
        s.speedup,
        s.total_cycles,
        s.skipped_cycles,
        s.skipped_frac,
        s.naive_cycles_per_sec,
        s.fast_cycles_per_sec
    )
}

fn floor(env: &str) -> Option<f64> {
    std::env::var(env).ok().and_then(|v| v.parse().ok())
}

fn main() {
    let steady = run_scenario("steady_state_corun", steady_state_job);
    let cap = run_scenario("safety_cap_corun", safety_cap_job);

    let json = format!(
        "{{\n  \"bench\": \"sim_fast_forward\",\n  \
         \"workload\": \"memory-bound coruns (BFS+LBM steady state, BFS+MUM safety cap)\",\n  \
         \"scenarios\": [\n{},\n{}\n  ],\n  \
         \"speedup\": {:.3},\n  \"skipped_fraction\": {:.4},\n  \"identical_output\": true\n}}\n",
        render(&steady),
        render(&cap),
        cap.speedup,
        cap.skipped_frac
    );

    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    let path = dir.join("BENCH_sim.json");
    if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, &json)) {
        eprintln!("failed to write {}: {e}", path.display());
        std::process::exit(1);
    }
    for s in [&steady, &cap] {
        println!(
            "sim/{}: naive {:.2}s, fast-forward {:.2}s (x{:.2}), skipped {}/{} cycles \
             ({:.1}%), {:.0} cycles/s",
            s.name,
            s.naive_wall,
            s.fast_wall,
            s.speedup,
            s.skipped_cycles,
            s.total_cycles,
            s.skipped_frac * 100.0,
            s.fast_cycles_per_sec
        );
    }
    println!("-> {}", path.display());

    if let Some(min) = floor("WS_SIM_BENCH_MIN_SKIPPED") {
        if cap.skipped_frac < min {
            eprintln!(
                "safety-cap skipped fraction {:.4} below committed floor {min}",
                cap.skipped_frac
            );
            std::process::exit(1);
        }
    }
    if let Some(min) = floor("WS_SIM_BENCH_MIN_SPEEDUP") {
        if cap.speedup < min {
            eprintln!(
                "safety-cap speedup {:.3} below committed floor {min}",
                cap.speedup
            );
            std::process::exit(1);
        }
    }
    if let Some(min) = floor("WS_SIM_BENCH_MIN_STEADY_SPEEDUP") {
        if steady.speedup < min {
            eprintln!(
                "steady-state speedup {:.3} below committed floor {min}: fast-forward \
                 probing is dragging the saturated regime",
                steady.speedup
            );
            std::process::exit(1);
        }
    }
}
