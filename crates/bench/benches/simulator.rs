//! Criterion micro-benchmarks for the simulator substrate: cycle
//! throughput for representative kernel classes, plus cache/DRAM/allocator
//! component benchmarks.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gpu_sim::{
    Gpu, GpuConfig, LinearAllocator, ProbeResult, SchedulerKind, SetAssocCache, SimRng,
};
use ws_workloads::by_abbrev;

fn bench_cycle_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator/cycles");
    for abbrev in ["IMG", "BLK", "BFS"] {
        g.bench_function(abbrev, |b| {
            let bench = by_abbrev(abbrev).expect("suite benchmark");
            b.iter_batched(
                || {
                    let mut gpu =
                        Gpu::new(GpuConfig::isca_baseline(), SchedulerKind::GreedyThenOldest);
                    let k = gpu.add_kernel(bench.desc.clone());
                    for s in 0..gpu.num_sms() {
                        while gpu.try_launch(k, s) {}
                    }
                    gpu
                },
                |mut gpu| {
                    gpu.run(500);
                    gpu
                },
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("simulator/l1_access_stream", |b| {
        let mut cache = SetAssocCache::new(16 * 1024, 4, 128);
        let mut rng = SimRng::seed_from_u64(1);
        b.iter(|| {
            let line = rng.range_u64(4096);
            if cache.access(line) == ProbeResult::Miss {
                cache.fill(line);
            }
        });
    });
}

fn bench_allocator(c: &mut Criterion) {
    c.bench_function("simulator/allocator_churn", |b| {
        let mut alloc = LinearAllocator::new(48 * 1024);
        let mut live = Vec::new();
        let mut rng = SimRng::seed_from_u64(2);
        b.iter(|| {
            if live.len() > 6 || (rng.range_u64(2) == 0 && !live.is_empty()) {
                let i = rng.range_usize(live.len());
                alloc.free(live.swap_remove(i));
            } else if let Some(r) = alloc.alloc(1024 + 512 * rng.range_u64(8) as u32) {
                live.push(r);
            }
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_cycle_throughput, bench_cache, bench_allocator
}
criterion_main!(benches);
