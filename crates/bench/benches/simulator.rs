//! Micro-benchmarks for the simulator substrate: cycle throughput for
//! representative kernel classes, plus cache and allocator component
//! benchmarks. Runs on the dependency-free `ws_bench::microbench` harness.

use gpu_sim::{Gpu, GpuConfig, LinearAllocator, ProbeResult, SchedulerKind, SetAssocCache, SimRng};
use ws_bench::Runner;
use ws_workloads::by_abbrev;

fn bench_cycle_throughput(r: &mut Runner) {
    for abbrev in ["IMG", "BLK", "BFS"] {
        let bench = by_abbrev(abbrev).expect("suite benchmark");
        r.bench_batched(
            abbrev,
            || {
                let mut gpu = Gpu::new(GpuConfig::isca_baseline(), SchedulerKind::GreedyThenOldest);
                let k = gpu.add_kernel(bench.desc.clone());
                for s in 0..gpu.num_sms() {
                    while gpu.try_launch(k, s) {}
                }
                gpu
            },
            |mut gpu| {
                gpu.run(500);
                gpu
            },
        );
    }
}

fn bench_cache(r: &mut Runner) {
    let mut cache = SetAssocCache::new(16 * 1024, 4, 128);
    let mut rng = SimRng::seed_from_u64(1);
    r.bench("l1_access_stream", || {
        let line = rng.range_u64(4096);
        if cache.access(line) == ProbeResult::Miss {
            cache.fill(line);
        }
    });
}

fn bench_allocator(r: &mut Runner) {
    let mut alloc = LinearAllocator::new(48 * 1024);
    let mut live = Vec::new();
    let mut rng = SimRng::seed_from_u64(2);
    r.bench("allocator_churn", || {
        if live.len() > 6 || (rng.range_u64(2) == 0 && !live.is_empty()) {
            let i = rng.range_usize(live.len());
            alloc.free(live.swap_remove(i));
        } else if let Some(r) = alloc.alloc(1024 + 512 * rng.range_u64(8) as u32) {
            live.push(r);
        }
    });
}

fn main() {
    let mut r = Runner::new("simulator");
    bench_cycle_throughput(&mut r);
    bench_cache(&mut r);
    bench_allocator(&mut r);
}
