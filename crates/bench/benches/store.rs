//! ws-store bench: cold-vs-warm decision latency and hit rate under a
//! repeated-arrival trace, written machine-readably to
//! `results/BENCH_store.json`.
//!
//! A *cold* arrival pays the controller's full profile-to-decide path:
//! signature lookup (miss), prediction-pruned sweep plan, the planned
//! profiling simulations on the [`ws_exec::Pool`], and Algorithm 1
//! water-filling over the measured curves, which are then memoized. A
//! *warm* arrival is the store path: signature derivation, curve lookup,
//! water-fill — no simulation at all. The bench replays a trace where each
//! distinct pair arrives once cold and then [`WARM_ROUNDS`] times warm,
//! asserting every warm quota vector byte-identical to its cold original.
//!
//! CI floor: `WS_STORE_BENCH_MIN_SPEEDUP` — minimum cold/warm per-decision
//! latency ratio (the issue's acceptance gate is 10). The ratio is
//! structural (profiling simulates thousands of cycles; lookup is a map
//! probe), so the floor is safe on noisy shared runners.

use std::path::PathBuf;
use std::time::Instant;

use gpu_sim::GpuConfig;
use warped_slicer::store::DEFAULT_STORE_CAPACITY;
use warped_slicer::{
    profile_curves_planned, water_fill, CurveStore, KernelCurve, KernelSignature, ResourceVec,
    RunConfig, StoreEntry, SweepPlan,
};
use ws_workloads::by_abbrev;

/// Distinct co-run pairs in the arrival trace.
const PAIRS: [(&str, &str); 3] = [("IMG", "NN"), ("MM", "BFS"), ("HOT", "DXT")];
/// Warm repetitions of the whole trace after the cold pass.
const WARM_ROUNDS: usize = 16;
/// Profiling window per sweep sample (cycles), as in the exec bench.
const WINDOW: u64 = 2_000;
const BUDGET: u64 = 4_000;

fn main() {
    let gpu = GpuConfig::isca_baseline();
    let cfg = RunConfig {
        isolation_cycles: BUDGET,
        ..RunConfig::default()
    };
    let pool = ws_exec::Pool::new(2);
    let capacity = ResourceVec::sm_capacity(&gpu.sm);
    let mut store = CurveStore::new(DEFAULT_STORE_CAPACITY);

    let pairs: Vec<_> = PAIRS
        .iter()
        .map(|&(a, b)| {
            (
                by_abbrev(a).expect("suite abbreviation"),
                by_abbrev(b).expect("suite abbreviation"),
            )
        })
        .collect();

    // Cold pass: every distinct pair arrives once; the lookup misses, the
    // pruned sweep runs, and the measured curves are memoized.
    let mut cold_wall = 0.0f64;
    let mut samples_run = 0usize;
    let mut cold_quotas: Vec<Vec<u32>> = Vec::new();
    for (ba, bb) in &pairs {
        let descs = [&ba.desc, &bb.desc];
        let maxes = [ba.max_ctas_baseline(), bb.max_ctas_baseline()];
        let t = Instant::now();
        let sigs: Vec<KernelSignature> = descs
            .iter()
            .map(|d| KernelSignature::derive(d, &gpu).expect("suite kernels pass pre-flight"))
            .collect();
        for sig in &sigs {
            assert!(store.lookup(&sig.key).is_none(), "cold arrival must miss");
        }
        let plan = SweepPlan::from_predictions(&descs, &maxes, &gpu);
        let swept = profile_curves_planned(&pool, &descs, &plan, WINDOW, &cfg);
        let kernels: Vec<KernelCurve> = descs
            .iter()
            .zip(&swept.curves)
            .map(|(d, perf)| KernelCurve {
                perf: perf.clone(),
                cta_cost: ResourceVec::cta_cost(d),
            })
            .collect();
        let part = water_fill(&kernels, capacity).expect("suite pairs are feasible");
        cold_wall += t.elapsed().as_secs_f64();
        samples_run += swept.samples_run;
        for (sig, perf) in sigs.iter().zip(&swept.curves) {
            assert!(store.insert(sig.key, StoreEntry::measured(sig, perf.clone())));
        }
        cold_quotas.push(part.ctas);
    }

    // Warm passes: the same trace repeated; every arrival hits and the
    // quota vector must reproduce the cold decision byte for byte.
    let mut warm_wall = 0.0f64;
    let mut warm_decisions = 0usize;
    for _ in 0..WARM_ROUNDS {
        for ((ba, bb), cold) in pairs.iter().zip(&cold_quotas) {
            let descs = [&ba.desc, &bb.desc];
            let t = Instant::now();
            let kernels: Vec<KernelCurve> = descs
                .iter()
                .map(|d| {
                    let sig =
                        KernelSignature::derive(d, &gpu).expect("suite kernels pass pre-flight");
                    let entry = store.lookup(&sig.key).expect("warm arrival must hit");
                    KernelCurve {
                        perf: entry.perf.clone(),
                        cta_cost: ResourceVec::cta_cost(d),
                    }
                })
                .collect();
            let part = water_fill(&kernels, capacity).expect("suite pairs are feasible");
            warm_wall += t.elapsed().as_secs_f64();
            warm_decisions += 1;
            assert_eq!(&part.ctas, cold, "warm quotas byte-identical to cold");
        }
    }

    let cold_per = cold_wall / pairs.len() as f64;
    let warm_per = warm_wall / warm_decisions.max(1) as f64;
    let speedup = cold_per / warm_per.max(1e-12);
    let stats = store.stats();
    let probes = stats.hits + stats.misses;
    let hit_rate = stats.hits as f64 / probes.max(1) as f64;

    let floor_env = std::env::var("WS_STORE_BENCH_MIN_SPEEDUP").ok();
    let floor: Option<f64> = floor_env.as_deref().and_then(|v| v.trim().parse().ok());
    let passed = floor.is_none_or(|f| speedup >= f);

    let json = format!(
        "{{\n  \"bench\": \"store\",\n  \
         \"workload\": \"{} distinct pairs, 1 cold + {WARM_ROUNDS} warm arrivals each\",\n  \
         \"window_cycles\": {WINDOW},\n  \"profile_samples_cold\": {samples_run},\n  \
         \"cold_decisions\": {},\n  \"warm_decisions\": {warm_decisions},\n  \
         \"cold_decision_s\": {cold_per:.6},\n  \"warm_decision_s\": {warm_per:.9},\n  \
         \"cold_over_warm_speedup\": {speedup:.1},\n  \
         \"store\": {{ \"hits\": {}, \"misses\": {}, \"entries\": {}, \"hit_rate\": {hit_rate:.4} }},\n  \
         \"identical_quotas\": true,\n  \
         \"floor\": {{ \"env\": \"WS_STORE_BENCH_MIN_SPEEDUP\", \"value\": {}, \"passed\": {passed} }}\n}}\n",
        pairs.len(),
        pairs.len(),
        stats.hits,
        stats.misses,
        store.len(),
        floor.map_or("null".to_string(), |f| format!("{f}")),
    );

    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    let path = dir.join("BENCH_store.json");
    if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, &json)) {
        eprintln!("failed to write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!(
        "store: cold {:.1} ms/decision ({samples_run} profile samples), warm {:.1} us/decision (x{speedup:.0})",
        cold_per * 1e3,
        warm_per * 1e6
    );
    println!(
        "store: {} hits / {} misses (hit rate {:.1}%) -> {}",
        stats.hits,
        stats.misses,
        hit_rate * 100.0,
        path.display()
    );
    match floor {
        Some(f) if !passed => {
            eprintln!("FAIL: cold/warm speedup {speedup:.1} below floor {f:.1}");
            std::process::exit(1);
        }
        Some(f) => println!("floor: speedup {speedup:.1} >= {f:.1} ok"),
        None => println!("floor: skipped (WS_STORE_BENCH_MIN_SPEEDUP unset)"),
    }
}
