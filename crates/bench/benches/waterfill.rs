//! Criterion benchmarks for Algorithm 1: the O(KN) water-filling pass vs.
//! the O(N^K) exhaustive reference, across kernel counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::SimRng;
use warped_slicer::{brute_force, water_fill, KernelCurve, ResourceVec};

fn curves(k: usize, n: usize, seed: u64) -> Vec<KernelCurve> {
    let mut rng = SimRng::seed_from_u64(seed);
    (0..k)
        .map(|_| {
            let mut perf = Vec::with_capacity(n);
            let mut acc = 0.0;
            for _ in 0..n {
                acc += rng.unit_f64();
                perf.push(acc * (0.5 + rng.unit_f64()));
            }
            KernelCurve {
                perf,
                cta_cost: ResourceVec {
                    regs: 2048 + rng.range_u64(4096),
                    shmem: rng.range_u64(4096),
                    threads: 64 + 32 * rng.range_u64(8),
                    ctas: 1,
                },
            }
        })
        .collect()
}

fn cap() -> ResourceVec {
    ResourceVec {
        regs: 32768,
        shmem: 48 * 1024,
        threads: 1536,
        ctas: 8,
    }
}

fn bench_waterfill(c: &mut Criterion) {
    let mut g = c.benchmark_group("waterfill");
    for k in [2usize, 3, 4] {
        let ks = curves(k, 8, k as u64);
        g.bench_with_input(BenchmarkId::new("algorithm1", k), &ks, |b, ks| {
            b.iter(|| water_fill(std::hint::black_box(ks), cap()));
        });
        g.bench_with_input(BenchmarkId::new("brute_force", k), &ks, |b, ks| {
            b.iter(|| brute_force(std::hint::black_box(ks), cap()));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_waterfill);
criterion_main!(benches);
