//! Micro-benchmarks for Algorithm 1: the O(KN) water-filling pass vs. the
//! O(N^K) exhaustive reference, across kernel counts. Runs on the
//! dependency-free `ws_bench::microbench` harness.

use gpu_sim::SimRng;
use warped_slicer::{brute_force, water_fill, KernelCurve, ResourceVec};
use ws_bench::Runner;

fn curves(k: usize, n: usize, seed: u64) -> Vec<KernelCurve> {
    let mut rng = SimRng::seed_from_u64(seed);
    (0..k)
        .map(|_| {
            let mut perf = Vec::with_capacity(n);
            let mut acc = 0.0;
            for _ in 0..n {
                acc += rng.unit_f64();
                perf.push(acc * (0.5 + rng.unit_f64()));
            }
            KernelCurve {
                perf,
                cta_cost: ResourceVec {
                    regs: 2048 + rng.range_u64(4096),
                    shmem: rng.range_u64(4096),
                    threads: 64 + 32 * rng.range_u64(8),
                    ctas: 1,
                },
            }
        })
        .collect()
}

fn cap() -> ResourceVec {
    ResourceVec {
        regs: 32768,
        shmem: 48 * 1024,
        threads: 1536,
        ctas: 8,
    }
}

fn main() {
    let mut r = Runner::new("waterfill");
    for k in [2usize, 3, 4] {
        let ks = curves(k, 8, k as u64);
        r.bench(&format!("algorithm1/{k}"), || {
            water_fill(std::hint::black_box(&ks), cap())
        });
        r.bench(&format!("brute_force/{k}"), || {
            brute_force(std::hint::black_box(&ks), cap())
        });
    }
}
