//! Regenerates the Warped-Slicer paper's tables and figures.
//!
//! ```text
//! experiments <artifact> [--cycles N] [--oracle] [--full]
//!
//! artifacts:
//!   table1 table2 table3 fig1 fig2 fig3a fig3b fig5 fig6 fig7 fig8 fig9
//!   fig10a fig10b energy large-config overhead ablation all
//! ```
//!
//! `--cycles N` sets the isolation budget (default 100000; the paper uses
//! 2M — shapes are stable across budgets). `--oracle` adds the exhaustive
//! Oracle search to fig6 (slow). `--full` makes the sensitivity sweeps use
//! all 30 pairs instead of the representative subset. `--csv DIR` also
//! writes machine-readable CSVs (fig3a/fig6/fig8) for external plotting.

use std::process::ExitCode;

use ws_bench::experiments::{
    ablation, energy, fig1, fig10, fig2, fig3, fig5, fig6, fig7, fig8, fig9, large_config,
    overhead, table1, table2, table3,
};
use ws_bench::ExperimentContext;
use ws_workloads::all_pairs;

struct Options {
    artifact: String,
    cycles: u64,
    oracle: bool,
    full: bool,
    csv_dir: Option<std::path::PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let artifact = args.next().ok_or_else(usage)?;
    let mut opts = Options {
        artifact,
        cycles: 100_000,
        oracle: false,
        full: false,
        csv_dir: None,
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--cycles" => {
                let v = args.next().ok_or("--cycles needs a value")?;
                opts.cycles = v.parse().map_err(|_| format!("bad cycle count: {v}"))?;
            }
            "--oracle" => opts.oracle = true,
            "--full" => opts.full = true,
            "--csv" => {
                let v = args.next().ok_or("--csv needs a directory")?;
                opts.csv_dir = Some(std::path::PathBuf::from(v));
            }
            other => return Err(format!("unknown flag: {other}\n{}", usage())),
        }
    }
    Ok(opts)
}

fn usage() -> String {
    "usage: experiments <table1|table2|table3|fig1|fig2|fig3a|fig3b|fig5|fig6|fig7|fig8|fig9|fig10a|fig10b|energy|large-config|overhead|ablation|all> [--cycles N] [--oracle] [--full] [--csv DIR]".to_string()
}

fn need_fig6(
    ctx: &ExperimentContext,
    cache: &mut Option<fig6::Fig6Data>,
    oracle: bool,
) -> fig6::Fig6Data {
    if cache.is_none() {
        let label = if oracle {
            "fig6 (30 pairs x 4 policies + oracle)"
        } else {
            "fig6 (30 pairs x 4 policies)"
        };
        *cache = Some(ctx.observe(label, |c| fig6::compute(c, oracle)));
    }
    cache.clone().expect("just filled")
}

fn need_fig8(
    ctx: &ExperimentContext,
    cache: &mut Option<Vec<fig8::TripleResult>>,
) -> Vec<fig8::TripleResult> {
    if cache.is_none() {
        *cache = Some(ctx.observe("fig8 (15 triples x 4 policies)", fig8::compute));
    }
    cache.clone().expect("just filled")
}

fn write_csv(dir: &Option<std::path::PathBuf>, name: &str, contents: &str) {
    let Some(dir) = dir else { return };
    if let Err(e) = std::fs::create_dir_all(dir)
        .and_then(|()| std::fs::write(dir.join(format!("{name}.csv")), contents))
    {
        eprintln!("warning: failed to write {name}.csv: {e}");
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let mut ctx = ExperimentContext::new(opts.cycles);
    // Every observed unit reports wall-clock and pool-job counts through
    // one uniform channel instead of ad-hoc prints.
    ctx.set_progress(Box::new(|p| eprintln!("[{p}]")));
    eprintln!(
        "[pool: {} worker thread(s); set {} to override]",
        ctx.pool().threads(),
        ws_exec::THREADS_ENV
    );
    let window = (opts.cycles / 8).max(2_000);
    let sweep_pairs = if opts.full {
        all_pairs()
    } else {
        fig10::subset_pairs()
    };

    let mut fig6_cache: Option<fig6::Fig6Data> = None;
    let mut fig8_cache: Option<Vec<fig8::TripleResult>> = None;

    let artifacts: Vec<&str> = if opts.artifact == "all" {
        vec![
            "table1",
            "table2",
            "fig1",
            "fig2",
            "fig3a",
            "fig3b",
            "fig5",
            "fig6",
            "table3",
            "fig7",
            "fig8",
            "fig9",
            "energy",
            "fig10a",
            "fig10b",
            "large-config",
            "overhead",
            "ablation",
        ]
    } else {
        vec![opts.artifact.as_str()]
    };

    for artifact in artifacts {
        match artifact {
            "table1" => println!("{}", table1::render(&ctx.cfg.gpu)),
            "table2" => println!(
                "{}",
                table2::render(&ctx.observe("table2", table2::compute))
            ),
            "fig1" => println!("{}", fig1::render(&ctx.observe("fig1", fig1::compute))),
            "fig2" => println!("{}", fig2::render(&fig2::compute())),
            "fig3a" => {
                let curves = ctx.observe("fig3a", |c| fig3::compute(c, window));
                write_csv(&opts.csv_dir, "fig3a", &fig3::csv(&curves));
                println!("{}", fig3::render(&curves));
            }
            "fig3b" => println!(
                "{}",
                fig3::render_sweet_spot(
                    &ctx.observe("fig3b", |c| fig3::compute_sweet_spot(c, window))
                )
            ),
            "fig5" => println!(
                "{}",
                fig5::render(&ctx.observe("fig5", |c| fig5::compute(c, 5_000, 10)), 5_000)
            ),
            "fig6" => {
                let data = need_fig6(&ctx, &mut fig6_cache, opts.oracle);
                write_csv(&opts.csv_dir, "fig6", &fig6::csv(&data));
                println!("{}", fig6::render(&data));
            }
            "table3" => {
                let data = need_fig6(&ctx, &mut fig6_cache, opts.oracle);
                println!("{}", table3::render(&data, &ctx.cfg.gpu));
            }
            "fig7" => {
                let data = need_fig6(&ctx, &mut fig6_cache, opts.oracle);
                println!(
                    "{}",
                    fig7::render_utilization(&fig7::utilization_ratios(&data))
                );
                println!("{}", fig7::render_cache(&data));
                println!("{}", fig7::render_stalls(&data));
            }
            "fig8" => {
                let data = need_fig8(&ctx, &mut fig8_cache);
                write_csv(&opts.csv_dir, "fig8", &fig8::csv(&data));
                println!("{}", fig8::render(&data));
            }
            "fig9" => {
                let six = need_fig6(&ctx, &mut fig6_cache, opts.oracle);
                let eight = need_fig8(&ctx, &mut fig8_cache);
                let two = fig9::two_kernel(&ctx, &six);
                let three = fig9::three_kernel(&ctx, &eight);
                println!("{}", fig9::render(&two, &three));
            }
            "energy" => {
                let data = need_fig6(&ctx, &mut fig6_cache, opts.oracle);
                println!("{}", energy::render(&energy::compute(&data)));
            }
            "fig10a" => println!(
                "{}",
                fig10::render_timing(
                    &ctx.observe("fig10a", |c| fig10::compute_timing(c, &sweep_pairs))
                )
            ),
            "fig10b" => println!(
                "{}",
                fig10::render_schedulers(&ctx.observe("fig10b", |_| {
                    fig10::compute_schedulers(opts.cycles, &sweep_pairs)
                }))
            ),
            "large-config" => println!(
                "{}",
                large_config::render(&ctx.observe("large-config", |_| {
                    large_config::compute(opts.cycles, &sweep_pairs)
                }))
            ),
            "overhead" => println!("{}", overhead::render()),
            "ablation" => println!(
                "{}",
                ablation::render(&ctx.observe("ablation", |c| ablation::compute(c, &sweep_pairs)))
            ),
            other => {
                eprintln!("unknown artifact: {other}\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
