//! Cross-validates `ws-predict` static performance predictions against
//! simulated ground truth for every workload in `crates/workloads`.
//!
//! For each Table II benchmark the binary simulates the full Fig. 3 CTA
//! sweep (the measured IPC-vs-CTA curve), predicts the same curve with
//! [`ws_analyze::predict_kernel`], and scores the prediction:
//!
//! * **knee hit** — the predicted knee lands within ±1 CTA of the measured
//!   knee (the window the pruned profiling sweep samples, so a hit means
//!   pruning would have covered the true operating point);
//! * **curve RMSE** — root-mean-square error between the peak-normalized
//!   predicted and measured curves (shape accuracy).
//!
//! The per-kernel report is written as JSONL (one `predict_accuracy` record
//! per kernel plus a trailing `predict_summary`), by default to
//! `target/predict-accuracy.jsonl`; CI uploads it as an artifact. The run
//! **fails** (exit 1) when the knee-hit rate drops below the floor recorded
//! in `results/BENCH_predict.json` (`"knee_hit_floor"`), defaulting to 0.8
//! when no floor is recorded.
//!
//! Usage: `cargo xtask verify-predictions`, or directly:
//! `cargo run --release -p ws-bench --bin verify-predictions --
//!  [--report PATH] [--cycles N]`.

use std::path::{Path, PathBuf};

use gpu_sim::GpuConfig;
use warped_slicer::{profile_curves, tracefmt, RunConfig};
use ws_analyze::{knee_of, predict_kernel};
use ws_workloads::{suite, Benchmark};

/// Sampling window (cycles) for each measured point of the ground-truth
/// sweep. Long enough for DRAM-bound kernels to reach steady state.
const DEFAULT_CYCLES: u64 = 40_000;

/// Knee-hit-rate floor used when `results/BENCH_predict.json` records none.
const DEFAULT_FLOOR: f64 = 0.8;

struct Row {
    abbrev: String,
    max_ctas: u32,
    predicted_knee: u32,
    measured_knee: u32,
    hit: bool,
    rmse: f64,
    predicted: Vec<f64>,
    measured: Vec<f64>,
}

/// Peak-normalizes a curve (all-zero curves stay all-zero).
fn normalized(curve: &[f64]) -> Vec<f64> {
    let peak = curve.iter().copied().fold(0.0_f64, f64::max);
    if peak <= 0.0 {
        return curve.to_vec();
    }
    curve.iter().map(|p| p / peak).collect()
}

fn rmse(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    if n == 0 {
        return 0.0;
    }
    let sum: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    (sum / n as f64).sqrt()
}

fn curve_json(curve: &[f64]) -> String {
    let body: Vec<String> = curve.iter().map(|p| format!("{p:.4}")).collect();
    format!("[{}]", body.join(","))
}

fn row_jsonl(r: &Row) -> String {
    format!(
        "{{\"type\":\"predict_accuracy\",\"kernel\":\"{}\",\"max_ctas\":{},\
         \"predicted_knee\":{},\"measured_knee\":{},\"knee_hit\":{},\
         \"curve_rmse\":{:.4},\"predicted_ipc\":{},\"measured_ipc\":{}}}",
        tracefmt::esc(&r.abbrev),
        r.max_ctas,
        r.predicted_knee,
        r.measured_knee,
        r.hit,
        r.rmse,
        curve_json(&r.predicted),
        curve_json(&r.measured),
    )
}

/// Reads the committed knee-hit floor out of `results/BENCH_predict.json`
/// (a flat `"knee_hit_floor": <x>` field), falling back to
/// [`DEFAULT_FLOOR`].
fn committed_floor(repo_root: &Path) -> f64 {
    let path = repo_root.join("results").join("BENCH_predict.json");
    let Ok(text) = std::fs::read_to_string(&path) else {
        return DEFAULT_FLOOR;
    };
    text.split("\"knee_hit_floor\":")
        .nth(1)
        .and_then(|rest| {
            rest.trim_start()
                .split([',', '}', '\n'])
                .next()
                .and_then(|v| v.trim().parse::<f64>().ok())
        })
        .unwrap_or(DEFAULT_FLOOR)
}

fn main() {
    let mut report_path: Option<PathBuf> = None;
    let mut cycles = DEFAULT_CYCLES;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--report" => report_path = args.next().map(PathBuf::from),
            "--cycles" => {
                cycles = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(DEFAULT_CYCLES);
            }
            other => {
                eprintln!("verify-predictions: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    let repo_root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report_path =
        report_path.unwrap_or_else(|| repo_root.join("target").join("predict-accuracy.jsonl"));

    let gpu = GpuConfig::isca_baseline();
    let cfg = RunConfig {
        isolation_cycles: cycles,
        ..RunConfig::default()
    };
    let pool = ws_exec::Pool::from_env();
    let benches = suite();
    let descs: Vec<&gpu_sim::KernelDesc> = benches.iter().map(|b| &b.desc).collect();
    let maxes: Vec<u32> = benches.iter().map(Benchmark::max_ctas_baseline).collect();
    let measured_curves = profile_curves(&pool, &descs, &maxes, cycles, &cfg);

    let mut rows = Vec::new();
    for (bench, measured) in benches.iter().zip(&measured_curves) {
        let predicted = match predict_kernel(&bench.desc, &gpu) {
            Ok(curve) => curve,
            Err(err) => {
                eprintln!(
                    "verify-predictions: {} failed pre-flight: {err}",
                    bench.abbrev
                );
                std::process::exit(1);
            }
        };
        let measured_knee = knee_of(measured);
        let hit = predicted.knee.abs_diff(measured_knee) <= 1;
        rows.push(Row {
            abbrev: bench.abbrev.to_string(),
            max_ctas: predicted.max_ctas(),
            predicted_knee: predicted.knee,
            measured_knee,
            hit,
            rmse: rmse(&normalized(&predicted.ipc), &normalized(measured)),
            predicted: predicted.ipc,
            measured: measured.clone(),
        });
    }

    let hits = rows.iter().filter(|r| r.hit).count();
    let hit_rate = hits as f64 / rows.len().max(1) as f64;
    let mean_rmse = rows.iter().map(|r| r.rmse).sum::<f64>() / rows.len().max(1) as f64;

    println!("kernel  max  knee(pred/meas)  hit  rmse   curves (pred | meas, normalized)");
    for r in &rows {
        let pn: Vec<String> = normalized(&r.predicted)
            .iter()
            .map(|p| format!("{p:.2}"))
            .collect();
        let mn: Vec<String> = normalized(&r.measured)
            .iter()
            .map(|p| format!("{p:.2}"))
            .collect();
        println!(
            "{:<7} {:<4} {:>4}/{:<4}       {:<4} {:.3}  {} | {}",
            r.abbrev,
            r.max_ctas,
            r.predicted_knee,
            r.measured_knee,
            if r.hit { "yes" } else { "NO" },
            r.rmse,
            pn.join(" "),
            mn.join(" ")
        );
    }
    println!(
        "knee-hit rate: {hits}/{} ({:.0}%), mean curve RMSE {mean_rmse:.3}",
        rows.len(),
        hit_rate * 100.0
    );

    let mut jsonl: String = rows.iter().map(|r| row_jsonl(r) + "\n").collect();
    jsonl.push_str(&format!(
        "{{\"type\":\"predict_summary\",\"kernels\":{},\"knee_hits\":{hits},\
         \"knee_hit_rate\":{hit_rate:.4},\"mean_curve_rmse\":{mean_rmse:.4},\
         \"sample_cycles\":{cycles}}}\n",
        rows.len()
    ));
    if let Err(err) = tracefmt::validate_json_syntax(&jsonl) {
        eprintln!("verify-predictions: malformed report: {err}");
        std::process::exit(1);
    }
    if let Some(dir) = report_path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(err) = std::fs::write(&report_path, &jsonl) {
        eprintln!(
            "verify-predictions: failed to write {}: {err}",
            report_path.display()
        );
        std::process::exit(1);
    }
    println!("-> {}", report_path.display());

    let floor = committed_floor(&repo_root);
    if hit_rate < floor {
        eprintln!(
            "verify-predictions: knee-hit rate {hit_rate:.2} below the committed floor {floor}"
        );
        std::process::exit(1);
    }
}
