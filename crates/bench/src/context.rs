//! Shared experiment state: run configuration, the deterministic execution
//! pool, memoized isolation runs (every figure normalizes against the same
//! per-benchmark targets, so the isolation runs are computed once and
//! shared), and the progress sink the harness reports through.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use warped_slicer::{
    execute_batch, profile_curves, CorunResult, IsolationResult, PolicyKind, RunConfig, SimJob,
    WarpedSlicerConfig,
};
use ws_workloads::Benchmark;

/// One progress report, emitted after an observed unit of work completes.
#[derive(Debug, Clone)]
pub struct Progress {
    /// What finished (an artifact name like `"fig6"`).
    pub label: String,
    /// Wall-clock time the unit took.
    pub wall: Duration,
    /// Simulation jobs the pool completed during the unit.
    pub jobs: u64,
}

impl std::fmt::Display for Progress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} jobs in {:.2}s",
            self.label,
            self.jobs,
            self.wall.as_secs_f64()
        )
    }
}

/// Callback receiving [`Progress`] events (see
/// [`ExperimentContext::set_progress`]).
pub type ProgressSink = Box<dyn Fn(&Progress) + Send + Sync>;

/// Shared state for the experiment harness.
///
/// Methods take `&self`: the isolation memo uses interior mutability and
/// hands out [`Arc`]s, so experiment code can fan work out through the
/// context from batch closures without cloning full results.
pub struct ExperimentContext {
    /// The run configuration every experiment uses (unless it explicitly
    /// overrides, e.g. the large-configuration study).
    pub cfg: RunConfig,
    pool: ws_exec::Pool,
    iso: Mutex<HashMap<String, Arc<IsolationResult>>>,
    progress: Option<ProgressSink>,
}

impl std::fmt::Debug for ExperimentContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExperimentContext")
            .field("cfg", &self.cfg)
            .field("pool", &self.pool)
            .field("progress", &self.progress.is_some())
            .finish_non_exhaustive()
    }
}

impl ExperimentContext {
    /// Creates a context with the default configuration and the given
    /// isolation cycle budget. The pool is sized by `WS_EXEC_THREADS`.
    #[must_use]
    pub fn new(isolation_cycles: u64) -> Self {
        Self::with_config(RunConfig {
            isolation_cycles,
            ..RunConfig::default()
        })
    }

    /// Creates a context with an explicit configuration. The pool is sized
    /// by `WS_EXEC_THREADS`.
    #[must_use]
    pub fn with_config(cfg: RunConfig) -> Self {
        Self::with_pool(cfg, ws_exec::Pool::from_env())
    }

    /// Creates a context with an explicit configuration and pool (tests pin
    /// worker counts this way).
    #[must_use]
    pub fn with_pool(cfg: RunConfig, pool: ws_exec::Pool) -> Self {
        Self {
            cfg,
            pool,
            iso: Mutex::new(HashMap::new()),
            progress: None,
        }
    }

    /// The execution pool experiments submit job batches to.
    #[must_use]
    pub fn pool(&self) -> &ws_exec::Pool {
        &self.pool
    }

    /// Installs a progress sink; [`Self::observe`] reports through it.
    pub fn set_progress(&mut self, sink: ProgressSink) {
        self.progress = Some(sink);
    }

    /// Runs `f`, then reports its wall-clock time and the number of pool
    /// jobs it completed to the progress sink (if one is installed).
    pub fn observe<T>(&self, label: &str, f: impl FnOnce(&Self) -> T) -> T {
        let jobs_before = self.pool.jobs_completed();
        let start = Instant::now();
        let out = f(self);
        if let Some(sink) = &self.progress {
            sink(&Progress {
                label: label.to_string(),
                wall: start.elapsed(),
                jobs: self.pool.jobs_completed() - jobs_before,
            });
        }
        out
    }

    /// The Warped-Slicer policy with profile phases scaled to this
    /// context's budget.
    #[must_use]
    pub fn dynamic_policy(&self) -> PolicyKind {
        PolicyKind::WarpedSlicer(WarpedSlicerConfig::scaled_for(self.cfg.isolation_cycles))
    }

    /// The isolation run for `bench`, memoized and shared.
    pub fn isolation(&self, bench: &Benchmark) -> Arc<IsolationResult> {
        self.isolation_batch(&[bench]).swap_remove(0)
    }

    /// Isolation runs for every benchmark in `benches`, in order.
    ///
    /// Misses are simulated as one job batch on the pool; hits come from
    /// the memo. The memo is keyed by abbreviation, so duplicates in
    /// `benches` cost one simulation.
    pub fn isolation_batch(&self, benches: &[&Benchmark]) -> Vec<Arc<IsolationResult>> {
        let missing: Vec<&Benchmark> = {
            let iso = self.iso.lock().unwrap_or_else(PoisonError::into_inner);
            let mut seen: Vec<&str> = Vec::new();
            let mut out = Vec::new();
            for b in benches {
                if !iso.contains_key(b.abbrev) && !seen.contains(&b.abbrev) {
                    seen.push(b.abbrev);
                    out.push(*b);
                }
            }
            out
        };
        if !missing.is_empty() {
            let jobs: Vec<SimJob> = missing
                .iter()
                .map(|b| SimJob::isolation(&b.desc, &self.cfg))
                .collect();
            let results = execute_batch(&self.pool, &jobs);
            let mut iso = self.iso.lock().unwrap_or_else(PoisonError::into_inner);
            for (b, outcome) in missing.iter().zip(results) {
                iso.entry(b.abbrev.to_string())
                    .or_insert_with(|| Arc::new(outcome.into_isolation()));
            }
        }
        let iso = self.iso.lock().unwrap_or_else(PoisonError::into_inner);
        benches
            .iter()
            .map(|b| {
                Arc::clone(iso.get(b.abbrev).unwrap_or_else(|| {
                    // Unreachable: the miss pass above filled every key.
                    panic!("isolation memo missing {}", b.abbrev)
                }))
            })
            .collect()
    }

    /// Equal-work instruction targets for a multiprogrammed workload.
    pub fn targets(&self, benches: &[&Benchmark]) -> Vec<u64> {
        self.isolation_batch(benches)
            .iter()
            .map(|r| r.target_insts)
            .collect()
    }

    /// Per-kernel *true* isolated cycle counts for a workload — how long
    /// each benchmark alone needed for its equal-work target (its last
    /// instruction-issue cycle, not the shared isolation budget). This is
    /// the normalizer [`warped_slicer::metrics`] requires, one entry per
    /// kernel.
    pub fn isolated_cycles(&self, benches: &[&Benchmark]) -> Vec<u64> {
        self.isolation_batch(benches)
            .iter()
            .map(|r| r.isolated_cycles)
            .collect()
    }

    /// The equal-work corun job for `benches` under `policy` (targets come
    /// from the isolation memo).
    pub fn corun_job(&self, benches: &[&Benchmark], policy: &PolicyKind) -> SimJob {
        let targets = self.targets(benches);
        let descs: Vec<&gpu_sim::KernelDesc> = benches.iter().map(|b| &b.desc).collect();
        SimJob::corun(&descs, &targets, policy, &self.cfg)
    }

    /// Runs `benches` concurrently under `policy` with equal-work targets.
    pub fn corun(&self, benches: &[&Benchmark], policy: &PolicyKind) -> CorunResult {
        self.corun_batch(&[(benches.to_vec(), policy.clone())])
            .swap_remove(0)
    }

    /// Runs every `(workload, policy)` pair as one job batch on the pool,
    /// returning results in submission order.
    ///
    /// Isolation targets for every distinct benchmark are resolved first
    /// (one batch), then the coruns themselves run as a second batch.
    pub fn corun_batch(&self, runs: &[(Vec<&Benchmark>, PolicyKind)]) -> Vec<CorunResult> {
        let all: Vec<&Benchmark> = runs.iter().flat_map(|(bs, _)| bs.iter().copied()).collect();
        let _ = self.isolation_batch(&all);
        let jobs: Vec<SimJob> = runs
            .iter()
            .map(|(bs, policy)| self.corun_job(bs, policy))
            .collect();
        execute_batch(&self.pool, &jobs)
            .into_iter()
            .zip(&jobs)
            .map(|(outcome, job)| outcome.into_corun(job))
            .collect()
    }

    /// CTA-occupancy sweeps for Fig. 3-style curves: for each benchmark,
    /// the IPC at every CTA count `1..=max_ctas[i]`, sampled over `window`
    /// cycles. All points across all benchmarks run as one job batch.
    pub fn cta_sweeps(
        &self,
        benches: &[&Benchmark],
        max_ctas: &[u32],
        window: u64,
    ) -> Vec<Vec<f64>> {
        let descs: Vec<&gpu_sim::KernelDesc> = benches.iter().map(|b| &b.desc).collect();
        profile_curves(&self.pool, &descs, max_ctas, window, &self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ws_workloads::by_abbrev;

    #[test]
    fn isolation_runs_are_memoized() {
        let ctx = ExperimentContext::new(5_000);
        let img = by_abbrev("IMG").unwrap();
        let a = ctx.isolation(&img);
        let b = ctx.isolation(&img);
        assert_eq!(a.target_insts, b.target_insts);
        assert!(Arc::ptr_eq(&a, &b), "memo shares one result");
    }

    #[test]
    fn corun_uses_cached_targets() {
        let ctx = ExperimentContext::new(5_000);
        let img = by_abbrev("IMG").unwrap();
        let mm = by_abbrev("MM").unwrap();
        let r = ctx.corun(&[&img, &mm], &PolicyKind::Even);
        assert_eq!(r.targets, ctx.targets(&[&img, &mm]));
        assert_eq!(
            ctx.iso.lock().unwrap_or_else(PoisonError::into_inner).len(),
            2
        );
    }

    #[test]
    fn batch_matches_singles_for_any_worker_count() {
        let img = by_abbrev("IMG").unwrap();
        let mm = by_abbrev("MM").unwrap();
        let cfg = RunConfig {
            isolation_cycles: 3_000,
            ..RunConfig::default()
        };
        let serial = ExperimentContext::with_pool(cfg.clone(), ws_exec::Pool::new(1));
        let parallel = ExperimentContext::with_pool(cfg, ws_exec::Pool::new(4));
        let runs = vec![
            (vec![&img, &mm], PolicyKind::Even),
            (vec![&img, &mm], PolicyKind::Spatial),
        ];
        let a = serial.corun_batch(&runs);
        let b = parallel.corun_batch(&runs);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.total_cycles, y.total_cycles);
            assert_eq!(x.finish_cycle, y.finish_cycle);
            assert!((x.combined_ipc - y.combined_ipc).abs() < f64::EPSILON);
        }
    }

    #[test]
    fn observe_reports_jobs_and_wall_clock() {
        let mut ctx = ExperimentContext::new(2_000);
        let events = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&events);
        ctx.set_progress(Box::new(move |p| {
            sink.lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(p.clone());
        }));
        let img = by_abbrev("IMG").unwrap();
        ctx.observe("iso", |c| {
            let _ = c.isolation(&img);
        });
        let events = events.lock().unwrap_or_else(PoisonError::into_inner);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].label, "iso");
        assert_eq!(events[0].jobs, 1);
        assert!(events[0].to_string().contains("iso: 1 jobs"));
    }
}
