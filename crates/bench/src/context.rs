//! Shared experiment state: run configuration, the deterministic execution
//! pool, memoized isolation runs (every figure normalizes against the same
//! per-benchmark targets, so the isolation runs are computed once and
//! shared), and the progress sink the harness reports through.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use warped_slicer::{
    accept_pruned, build_curves, execute_batch, execute_batch_observed, predict_default,
    profile_curves, water_fill, CorunResult, IsolationResult, KernelCurve, PolicyKind,
    ProfileSample, ResourceVec, RunConfig, SimJob, SimOutcome, SimStream, SweepPlan,
    WarpedSlicerConfig,
};
use ws_workloads::{Benchmark, Pair};

/// One progress report, emitted after an observed unit of work completes.
#[derive(Debug, Clone)]
pub struct Progress {
    /// What finished (an artifact name like `"fig6"`).
    pub label: String,
    /// Wall-clock time the unit took.
    pub wall: Duration,
    /// Simulation jobs the pool completed during the unit.
    pub jobs: u64,
}

impl std::fmt::Display for Progress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} jobs in {:.2}s",
            self.label,
            self.jobs,
            self.wall.as_secs_f64()
        )
    }
}

/// Callback receiving [`Progress`] events (see
/// [`ExperimentContext::set_progress`]).
pub type ProgressSink = Box<dyn Fn(&Progress) + Send + Sync>;

/// One per-job progress report from an observed batch, delivered on the
/// submitting thread in completion-count order (`seq` goes `1..=total`
/// strictly increasing regardless of worker count; `id` names the job
/// that actually finished).
#[derive(Debug, Clone)]
pub struct JobProgress {
    /// Which batch the job belongs to (e.g. `"corun"`, `"isolation"`).
    pub label: String,
    /// 1-based completion count within the batch.
    pub seq: usize,
    /// Jobs in the batch.
    pub total: usize,
    /// The finishing job.
    pub id: ws_exec::JobId,
}

/// Callback receiving [`JobProgress`] events (see
/// [`ExperimentContext::set_job_progress`]).
pub type JobProgressSink = Box<dyn Fn(&JobProgress) + Send + Sync>;

/// The profile→decide outcome for one co-scheduled pair: the Algorithm 1
/// water-filling quotas computed from (possibly pruned) Fig. 3 sampling
/// plus Eq. 2-4 scaling. Produced identically by the barriered
/// ([`ExperimentContext::decide_pairs`]) and pipelined
/// ([`ExperimentContext::decide_pairs_pipelined`]) harnesses.
#[derive(Debug, Clone, PartialEq)]
pub struct PairDecision {
    /// The pair's `A_B` label.
    pub label: String,
    /// CTA quota per kernel (empty when no intra-SM partition fits).
    pub quotas: Vec<u32>,
    /// Normalized per-kernel performance at the granted quotas.
    pub perf: Vec<f64>,
    /// Whether each kernel's pruned sweep window was accepted.
    pub pruned: Vec<bool>,
    /// Simulation samples run for this pair, across both rounds.
    pub samples_run: usize,
}

/// Per-(pair, kernel) sampling state for the decide harnesses.
#[derive(Debug, Default, Clone)]
struct KernelSampling {
    /// `(cta cap, ipc, phi_mem)` samples collected so far.
    samples: Vec<(u32, f64, f64)>,
    /// Outstanding jobs of the current round (pipelined harness only).
    pending: usize,
    /// Whether the full-sweep fallback round has been submitted.
    fallback: bool,
    /// Whether sampling for this kernel is complete.
    done: bool,
    /// Whether the pruned window was accepted.
    pruned: bool,
}

impl KernelSampling {
    /// The sampled `(cap, ipc)` pairs, sorted by CTA count — the
    /// order-insensitive form the acceptance check consumes.
    fn sorted_ipc(&self) -> Vec<(u32, f64)> {
        let mut s: Vec<(u32, f64)> = self.samples.iter().map(|&(c, ipc, _)| (c, ipc)).collect();
        s.sort_by_key(|&(c, _)| c);
        s
    }
}

/// Looks up one kernel's sampling slot.
fn slot(state: &mut [[KernelSampling; 2]], pi: usize, k: usize) -> Option<&mut KernelSampling> {
    state.get_mut(pi).and_then(|p| p.get_mut(k))
}

/// Shared state for the experiment harness.
///
/// Methods take `&self`: the isolation memo uses interior mutability and
/// hands out [`Arc`]s, so experiment code can fan work out through the
/// context from batch closures without cloning full results.
pub struct ExperimentContext {
    /// The run configuration every experiment uses (unless it explicitly
    /// overrides, e.g. the large-configuration study).
    pub cfg: RunConfig,
    pool: ws_exec::Pool,
    iso: Mutex<HashMap<String, Arc<IsolationResult>>>,
    progress: Option<ProgressSink>,
    job_progress: Option<JobProgressSink>,
}

impl std::fmt::Debug for ExperimentContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExperimentContext")
            .field("cfg", &self.cfg)
            .field("pool", &self.pool)
            .field("progress", &self.progress.is_some())
            .finish_non_exhaustive()
    }
}

impl ExperimentContext {
    /// Creates a context with the default configuration and the given
    /// isolation cycle budget. The pool is sized by `WS_EXEC_THREADS`.
    #[must_use]
    pub fn new(isolation_cycles: u64) -> Self {
        Self::with_config(RunConfig {
            isolation_cycles,
            ..RunConfig::default()
        })
    }

    /// Creates a context with an explicit configuration. The pool is sized
    /// by `WS_EXEC_THREADS`.
    #[must_use]
    pub fn with_config(cfg: RunConfig) -> Self {
        Self::with_pool(cfg, ws_exec::Pool::from_env())
    }

    /// Creates a context with an explicit configuration and pool (tests pin
    /// worker counts this way).
    #[must_use]
    pub fn with_pool(cfg: RunConfig, pool: ws_exec::Pool) -> Self {
        Self {
            cfg,
            pool,
            iso: Mutex::new(HashMap::new()),
            progress: None,
            job_progress: None,
        }
    }

    /// The execution pool experiments submit job batches to.
    #[must_use]
    pub fn pool(&self) -> &ws_exec::Pool {
        &self.pool
    }

    /// Installs a progress sink; [`Self::observe`] reports through it.
    pub fn set_progress(&mut self, sink: ProgressSink) {
        self.progress = Some(sink);
    }

    /// Installs a per-job progress sink: every batch the context runs
    /// reports one [`JobProgress`] per finished job, on the submitting
    /// thread, in completion-count order — deterministic shape at any
    /// worker count.
    pub fn set_job_progress(&mut self, sink: JobProgressSink) {
        self.job_progress = Some(sink);
    }

    /// Runs a job batch, reporting per-job progress when a sink is set.
    fn batch(&self, label: &str, jobs: &[SimJob]) -> Vec<SimOutcome> {
        match &self.job_progress {
            None => execute_batch(&self.pool, jobs),
            Some(sink) => execute_batch_observed(&self.pool, jobs, |p| {
                sink(&JobProgress {
                    label: label.to_string(),
                    seq: p.seq,
                    total: p.total,
                    id: p.id,
                });
            }),
        }
    }

    /// Runs `f`, then reports its wall-clock time and the number of pool
    /// jobs it completed to the progress sink (if one is installed).
    pub fn observe<T>(&self, label: &str, f: impl FnOnce(&Self) -> T) -> T {
        let jobs_before = self.pool.jobs_completed();
        let start = Instant::now();
        let out = f(self);
        if let Some(sink) = &self.progress {
            sink(&Progress {
                label: label.to_string(),
                wall: start.elapsed(),
                jobs: self.pool.jobs_completed() - jobs_before,
            });
        }
        out
    }

    /// The Warped-Slicer policy with profile phases scaled to this
    /// context's budget.
    #[must_use]
    pub fn dynamic_policy(&self) -> PolicyKind {
        PolicyKind::WarpedSlicer(WarpedSlicerConfig::scaled_for(self.cfg.isolation_cycles))
    }

    /// The isolation run for `bench`, memoized and shared.
    pub fn isolation(&self, bench: &Benchmark) -> Arc<IsolationResult> {
        self.isolation_batch(&[bench]).swap_remove(0)
    }

    /// Isolation runs for every benchmark in `benches`, in order.
    ///
    /// Misses are simulated as one job batch on the pool; hits come from
    /// the memo. The memo is keyed by abbreviation, so duplicates in
    /// `benches` cost one simulation.
    pub fn isolation_batch(&self, benches: &[&Benchmark]) -> Vec<Arc<IsolationResult>> {
        let missing: Vec<&Benchmark> = {
            let iso = self.iso.lock().unwrap_or_else(PoisonError::into_inner);
            let mut seen: Vec<&str> = Vec::new();
            let mut out = Vec::new();
            for b in benches {
                if !iso.contains_key(b.abbrev) && !seen.contains(&b.abbrev) {
                    seen.push(b.abbrev);
                    out.push(*b);
                }
            }
            out
        };
        if !missing.is_empty() {
            let jobs: Vec<SimJob> = missing
                .iter()
                .map(|b| SimJob::isolation(&b.desc, &self.cfg))
                .collect();
            let results = self.batch("isolation", &jobs);
            let mut iso = self.iso.lock().unwrap_or_else(PoisonError::into_inner);
            for (b, outcome) in missing.iter().zip(results) {
                iso.entry(b.abbrev.to_string())
                    .or_insert_with(|| Arc::new(outcome.into_isolation()));
            }
        }
        let iso = self.iso.lock().unwrap_or_else(PoisonError::into_inner);
        benches
            .iter()
            .map(|b| {
                Arc::clone(iso.get(b.abbrev).unwrap_or_else(|| {
                    // Unreachable: the miss pass above filled every key.
                    panic!("isolation memo missing {}", b.abbrev)
                }))
            })
            .collect()
    }

    /// Equal-work instruction targets for a multiprogrammed workload.
    pub fn targets(&self, benches: &[&Benchmark]) -> Vec<u64> {
        self.isolation_batch(benches)
            .iter()
            .map(|r| r.target_insts)
            .collect()
    }

    /// Per-kernel *true* isolated cycle counts for a workload — how long
    /// each benchmark alone needed for its equal-work target (its last
    /// instruction-issue cycle, not the shared isolation budget). This is
    /// the normalizer [`warped_slicer::metrics`] requires, one entry per
    /// kernel.
    pub fn isolated_cycles(&self, benches: &[&Benchmark]) -> Vec<u64> {
        self.isolation_batch(benches)
            .iter()
            .map(|r| r.isolated_cycles)
            .collect()
    }

    /// The equal-work corun job for `benches` under `policy` (targets come
    /// from the isolation memo).
    pub fn corun_job(&self, benches: &[&Benchmark], policy: &PolicyKind) -> SimJob {
        let targets = self.targets(benches);
        let descs: Vec<&gpu_sim::KernelDesc> = benches.iter().map(|b| &b.desc).collect();
        SimJob::corun(&descs, &targets, policy, &self.cfg)
    }

    /// Runs `benches` concurrently under `policy` with equal-work targets.
    pub fn corun(&self, benches: &[&Benchmark], policy: &PolicyKind) -> CorunResult {
        self.corun_batch(&[(benches.to_vec(), policy.clone())])
            .swap_remove(0)
    }

    /// Runs every `(workload, policy)` pair as one job batch on the pool,
    /// returning results in submission order.
    ///
    /// Isolation targets for every distinct benchmark are resolved first
    /// (one batch), then the coruns themselves run as a second batch.
    pub fn corun_batch(&self, runs: &[(Vec<&Benchmark>, PolicyKind)]) -> Vec<CorunResult> {
        let all: Vec<&Benchmark> = runs.iter().flat_map(|(bs, _)| bs.iter().copied()).collect();
        let _ = self.isolation_batch(&all);
        let jobs: Vec<SimJob> = runs
            .iter()
            .map(|(bs, policy)| self.corun_job(bs, policy))
            .collect();
        self.batch("corun", &jobs)
            .into_iter()
            .zip(&jobs)
            .map(|(outcome, job)| outcome.into_corun(job))
            .collect()
    }

    /// CTA-occupancy sweeps for Fig. 3-style curves: for each benchmark,
    /// the IPC at every CTA count `1..=max_ctas[i]`, sampled over `window`
    /// cycles. All points across all benchmarks run as one job batch.
    pub fn cta_sweeps(
        &self,
        benches: &[&Benchmark],
        max_ctas: &[u32],
        window: u64,
    ) -> Vec<Vec<f64>> {
        let descs: Vec<&gpu_sim::KernelDesc> = benches.iter().map(|b| &b.desc).collect();
        profile_curves(&self.pool, &descs, max_ctas, window, &self.cfg)
    }

    /// Eq. 1 CTA-feasibility bound for `bench` on this context's hardware.
    #[must_use]
    pub fn max_ctas(&self, bench: &Benchmark) -> u32 {
        bench.desc.max_ctas_per_sm(&self.cfg.gpu.sm)
    }

    /// The sweep plan for one pair: prediction-pruned windows when
    /// `WS_PREDICT` allows, full windows otherwise.
    fn pair_plan(&self, pair: &Pair) -> SweepPlan {
        let descs = [&pair.a.desc, &pair.b.desc];
        let maxes = [self.max_ctas(&pair.a), self.max_ctas(&pair.b)];
        if predict_default() {
            SweepPlan::from_predictions(&descs, &maxes, &self.cfg.gpu)
        } else {
            SweepPlan::full(&maxes)
        }
    }

    /// The Eq. 2-4 + Algorithm 1 decision for one fully sampled pair.
    ///
    /// Samples are sorted by `(kernel, cta count)` before scaling, so the
    /// result is independent of completion order — the property that makes
    /// the barriered and pipelined harnesses byte-identical.
    fn pair_decision(&self, pair: &Pair, a: &KernelSampling, b: &KernelSampling) -> PairDecision {
        let maxes = [self.max_ctas(&pair.a), self.max_ctas(&pair.b)];
        let mut profile: Vec<ProfileSample> = Vec::new();
        for (k, s) in [a, b].into_iter().enumerate() {
            let mut sorted = s.samples.clone();
            sorted.sort_by_key(|&(c, _, _)| c);
            for (cap, ipc, phi) in sorted {
                profile.push(ProfileSample {
                    kernel: k,
                    ctas: cap,
                    ipc_sampled: ipc,
                    phi_mem: phi,
                    bandwidth: None,
                });
            }
        }
        let curves = build_curves(&profile, &maxes);
        let kernels: Vec<KernelCurve> = curves
            .into_iter()
            .zip([&pair.a.desc, &pair.b.desc])
            .map(|(perf, desc)| KernelCurve {
                perf,
                cta_cost: ResourceVec::cta_cost(desc),
            })
            .collect();
        let (quotas, perf) = match water_fill(&kernels, ResourceVec::sm_capacity(&self.cfg.gpu.sm))
        {
            Some(p) => (p.ctas, p.perf),
            None => (Vec::new(), Vec::new()),
        };
        PairDecision {
            label: pair.label(),
            quotas,
            perf,
            pruned: vec![a.pruned, b.pruned],
            samples_run: a.samples.len() + b.samples.len(),
        }
    }

    /// The **barriered** profile→decide harness: round-1 sampling windows
    /// for *every* pair run as one batch (global barrier), then every
    /// rejected kernel's full-sweep fallback runs as a second batch
    /// (second barrier), then decisions are computed serially. This is the
    /// staged shape the pre-streaming harness had; it exists as the
    /// baseline the pipelined variant is benchmarked against and as the
    /// equivalence oracle for its output.
    #[must_use]
    pub fn decide_pairs(&self, pairs: &[Pair], window: u64) -> Vec<PairDecision> {
        let plans: Vec<SweepPlan> = pairs.iter().map(|p| self.pair_plan(p)).collect();
        let mut state: Vec<[KernelSampling; 2]> = vec![Default::default(); pairs.len()];
        // Round 1: every planned window sample across all pairs.
        let mut jobs: Vec<SimJob> = Vec::new();
        let mut tags: Vec<(usize, usize, u32)> = Vec::new();
        for (pi, (pair, plan)) in pairs.iter().zip(&plans).enumerate() {
            for (k, w) in plan.windows.iter().enumerate() {
                let desc = if k == 0 { &pair.a.desc } else { &pair.b.desc };
                for cap in w.planned_caps() {
                    tags.push((pi, k, cap));
                    jobs.push(SimJob::cta_cap(desc, cap, window, &self.cfg));
                }
            }
        }
        let outs = self.batch("decide:profile", &jobs);
        for (&(pi, k, cap), out) in tags.iter().zip(&outs) {
            if let Some(s) = slot(&mut state, pi, k) {
                s.samples.push((cap, out.measured_ipc(), out.stats.phi_mem));
            }
        }
        // Acceptance per kernel; round 2 for every rejected kernel.
        let mut jobs2: Vec<SimJob> = Vec::new();
        let mut tags2: Vec<(usize, usize, u32)> = Vec::new();
        for (pi, (pair, plan)) in pairs.iter().zip(&plans).enumerate() {
            for (k, w) in plan.windows.iter().enumerate() {
                let Some(s) = slot(&mut state, pi, k) else {
                    continue;
                };
                let sorted = s.sorted_ipc();
                if accept_pruned(&sorted, w).is_some() {
                    s.pruned = !w.is_full();
                    continue;
                }
                let desc = if k == 0 { &pair.a.desc } else { &pair.b.desc };
                for cap in 1..=w.max.max(1) {
                    if !sorted.iter().any(|&(c, _)| c == cap) {
                        tags2.push((pi, k, cap));
                        jobs2.push(SimJob::cta_cap(desc, cap, window, &self.cfg));
                    }
                }
            }
        }
        let outs2 = self.batch("decide:fallback", &jobs2);
        for (&(pi, k, cap), out) in tags2.iter().zip(&outs2) {
            if let Some(s) = slot(&mut state, pi, k) {
                s.samples.push((cap, out.measured_ipc(), out.stats.phi_mem));
            }
        }
        // Decisions, serially, after the final barrier.
        pairs
            .iter()
            .zip(&state)
            .map(|(pair, p)| self.pair_decision(pair, &p[0], &p[1]))
            .collect()
    }

    /// The **pipelined** profile→decide harness: all pairs' sampling
    /// windows go into one completion stream, a rejected kernel's
    /// full-sweep fallback is re-submitted the moment its window round
    /// drains (no global barrier), and the Eq. 2-4 scaling + Algorithm 1
    /// water-filling decision for a pair runs on the drain thread as soon
    /// as *its* sampling completes — while other pairs' windows are still
    /// simulating. Output is byte-identical to [`Self::decide_pairs`].
    ///
    /// # Panics
    ///
    /// Re-raises the lowest-submission-index job panic after the stream
    /// drains.
    #[must_use]
    pub fn decide_pairs_pipelined(&self, pairs: &[Pair], window: u64) -> Vec<PairDecision> {
        let plans: Vec<SweepPlan> = pairs.iter().map(|p| self.pair_plan(p)).collect();
        let mut state: Vec<[KernelSampling; 2]> = vec![Default::default(); pairs.len()];
        let mut stream = SimStream::new(&self.pool);
        let mut tags: Vec<(usize, usize, u32)> = Vec::new();
        for (pi, (pair, plan)) in pairs.iter().zip(&plans).enumerate() {
            for (k, w) in plan.windows.iter().enumerate() {
                let caps = w.planned_caps();
                if let Some(s) = slot(&mut state, pi, k) {
                    s.pending = caps.len();
                }
                let desc = if k == 0 { &pair.a.desc } else { &pair.b.desc };
                for cap in caps {
                    tags.push((pi, k, cap));
                    stream.submit_job(&SimJob::cta_cap(desc, cap, window, &self.cfg));
                }
            }
        }
        let mut decisions: Vec<Option<PairDecision>> = vec![None; pairs.len()];
        let mut first_panic: Option<ws_exec::JobPanic> = None;
        while let Some((id, result)) = stream.next() {
            let Some(&(pi, k, cap)) = tags.get(id.0) else {
                continue;
            };
            match result {
                Ok(out) => {
                    if let Some(s) = slot(&mut state, pi, k) {
                        s.samples.push((cap, out.measured_ipc(), out.stats.phi_mem));
                    }
                }
                Err(p) => {
                    if first_panic.as_ref().is_none_or(|q| p.id < q.id) {
                        first_panic = Some(p);
                    }
                }
            }
            let (round_done, was_fallback) = match slot(&mut state, pi, k) {
                Some(s) => {
                    s.pending = s.pending.saturating_sub(1);
                    (s.pending == 0, s.fallback)
                }
                None => continue,
            };
            if !round_done {
                continue;
            }
            if was_fallback {
                // The fallback round just finished: fully sampled.
                if let Some(s) = slot(&mut state, pi, k) {
                    s.done = true;
                }
            } else {
                let sorted = match slot(&mut state, pi, k) {
                    Some(s) => s.sorted_ipc(),
                    None => continue,
                };
                let Some(w) = plans.get(pi).and_then(|p| p.windows.get(k)) else {
                    continue;
                };
                if accept_pruned(&sorted, w).is_some() {
                    if let Some(s) = slot(&mut state, pi, k) {
                        s.pruned = !w.is_full();
                        s.done = true;
                    }
                } else {
                    // Rejected: re-submit the missing counts immediately —
                    // the other pairs keep simulating underneath.
                    let Some(pair) = pairs.get(pi) else { continue };
                    let desc = if k == 0 { &pair.a.desc } else { &pair.b.desc };
                    let mut missing = 0usize;
                    for cap in 1..=w.max.max(1) {
                        if !sorted.iter().any(|&(c, _)| c == cap) {
                            tags.push((pi, k, cap));
                            stream.submit_job(&SimJob::cta_cap(desc, cap, window, &self.cfg));
                            missing += 1;
                        }
                    }
                    if let Some(s) = slot(&mut state, pi, k) {
                        s.fallback = true;
                        s.pending = missing;
                        if missing == 0 {
                            s.done = true;
                        }
                    }
                }
            }
            // Decide this pair the moment both kernels are fully sampled.
            let ready = state.get(pi).is_some_and(|p| p[0].done && p[1].done);
            if ready {
                if let (Some(pair), Some(p)) = (pairs.get(pi), state.get(pi)) {
                    if let Some(d) = decisions.get_mut(pi) {
                        *d = Some(self.pair_decision(pair, &p[0], &p[1]));
                    }
                }
            }
        }
        if let Some(p) = first_panic {
            panic!("{p}");
        }
        decisions
            .into_iter()
            .enumerate()
            .map(|(pi, d)| {
                d.unwrap_or_else(|| panic!("pipelined decide: pair #{pi} never completed"))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ws_workloads::by_abbrev;

    #[test]
    fn isolation_runs_are_memoized() {
        let ctx = ExperimentContext::new(5_000);
        let img = by_abbrev("IMG").unwrap();
        let a = ctx.isolation(&img);
        let b = ctx.isolation(&img);
        assert_eq!(a.target_insts, b.target_insts);
        assert!(Arc::ptr_eq(&a, &b), "memo shares one result");
    }

    #[test]
    fn corun_uses_cached_targets() {
        let ctx = ExperimentContext::new(5_000);
        let img = by_abbrev("IMG").unwrap();
        let mm = by_abbrev("MM").unwrap();
        let r = ctx.corun(&[&img, &mm], &PolicyKind::Even);
        assert_eq!(r.targets, ctx.targets(&[&img, &mm]));
        assert_eq!(
            ctx.iso.lock().unwrap_or_else(PoisonError::into_inner).len(),
            2
        );
    }

    #[test]
    fn batch_matches_singles_for_any_worker_count() {
        let img = by_abbrev("IMG").unwrap();
        let mm = by_abbrev("MM").unwrap();
        let cfg = RunConfig {
            isolation_cycles: 3_000,
            ..RunConfig::default()
        };
        let serial = ExperimentContext::with_pool(cfg.clone(), ws_exec::Pool::new(1));
        let parallel = ExperimentContext::with_pool(cfg, ws_exec::Pool::new(4));
        let runs = vec![
            (vec![&img, &mm], PolicyKind::Even),
            (vec![&img, &mm], PolicyKind::Spatial),
        ];
        let a = serial.corun_batch(&runs);
        let b = parallel.corun_batch(&runs);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.total_cycles, y.total_cycles);
            assert_eq!(x.finish_cycle, y.finish_cycle);
            assert!((x.combined_ipc - y.combined_ipc).abs() < f64::EPSILON);
        }
    }

    #[test]
    fn observe_reports_jobs_and_wall_clock() {
        let mut ctx = ExperimentContext::new(2_000);
        let events = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&events);
        ctx.set_progress(Box::new(move |p| {
            sink.lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(p.clone());
        }));
        let img = by_abbrev("IMG").unwrap();
        ctx.observe("iso", |c| {
            let _ = c.isolation(&img);
        });
        let events = events.lock().unwrap_or_else(PoisonError::into_inner);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].label, "iso");
        assert_eq!(events[0].jobs, 1);
        assert!(events[0].to_string().contains("iso: 1 jobs"));
    }
}
