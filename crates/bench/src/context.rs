//! Shared experiment state: run configuration plus memoized isolation runs
//! (every figure normalizes against the same per-benchmark targets, so the
//! isolation runs are computed once and reused).

use std::collections::HashMap;

use warped_slicer::{
    run_corun, run_isolation, CorunResult, IsolationResult, PolicyKind, RunConfig,
    WarpedSlicerConfig,
};
use ws_workloads::Benchmark;

/// Shared state for the experiment harness.
#[derive(Debug)]
pub struct ExperimentContext {
    /// The run configuration every experiment uses (unless it explicitly
    /// overrides, e.g. the large-configuration study).
    pub cfg: RunConfig,
    iso: HashMap<String, IsolationResult>,
}

impl ExperimentContext {
    /// Creates a context with the default configuration and the given
    /// isolation cycle budget.
    #[must_use]
    pub fn new(isolation_cycles: u64) -> Self {
        Self::with_config(RunConfig {
            isolation_cycles,
            ..RunConfig::default()
        })
    }

    /// Creates a context with an explicit configuration.
    #[must_use]
    pub fn with_config(cfg: RunConfig) -> Self {
        Self {
            cfg,
            iso: HashMap::new(),
        }
    }

    /// The Warped-Slicer policy with profile phases scaled to this
    /// context's budget.
    #[must_use]
    pub fn dynamic_policy(&self) -> PolicyKind {
        PolicyKind::WarpedSlicer(WarpedSlicerConfig::scaled_for(self.cfg.isolation_cycles))
    }

    /// The isolation run for `bench`, memoized.
    pub fn isolation(&mut self, bench: &Benchmark) -> IsolationResult {
        if let Some(r) = self.iso.get(bench.abbrev) {
            return r.clone();
        }
        let r = run_isolation(&bench.desc, &self.cfg);
        self.iso.insert(bench.abbrev.to_string(), r.clone());
        r
    }

    /// Equal-work instruction targets for a multiprogrammed workload.
    pub fn targets(&mut self, benches: &[&Benchmark]) -> Vec<u64> {
        benches
            .iter()
            .map(|b| self.isolation(b).target_insts)
            .collect()
    }

    /// Runs `benches` concurrently under `policy` with equal-work targets.
    pub fn corun(&mut self, benches: &[&Benchmark], policy: &PolicyKind) -> CorunResult {
        let targets = self.targets(benches);
        let descs: Vec<&gpu_sim::KernelDesc> = benches.iter().map(|b| &b.desc).collect();
        run_corun(&descs, &targets, policy, &self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ws_workloads::by_abbrev;

    #[test]
    fn isolation_runs_are_memoized() {
        let mut ctx = ExperimentContext::new(5_000);
        let img = by_abbrev("IMG").unwrap();
        let a = ctx.isolation(&img);
        let b = ctx.isolation(&img);
        assert_eq!(a.target_insts, b.target_insts);
        assert_eq!(ctx.iso.len(), 1);
    }

    #[test]
    fn corun_uses_cached_targets() {
        let mut ctx = ExperimentContext::new(5_000);
        let img = by_abbrev("IMG").unwrap();
        let mm = by_abbrev("MM").unwrap();
        let r = ctx.corun(&[&img, &mm], &PolicyKind::Even);
        assert_eq!(r.targets, ctx.targets(&[&img, &mm]));
        assert_eq!(ctx.iso.len(), 2);
    }
}
