//! Ablations beyond the paper's own sensitivity studies (DESIGN.md §5):
//! the bandwidth-interference scaling factor on/off, the spatial-fallback
//! threshold sweep, and the phase monitor on/off.

use warped_slicer::{water_fill, KernelCurve, PolicyKind, ResourceVec, WarpedSlicerConfig};
use ws_workloads::{Benchmark, Pair};

use crate::context::ExperimentContext;
use crate::report::{f2, gmean, Table};

/// One ablation variant and its geomean normalized IPC.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Variant label.
    pub label: String,
    /// Geomean combined IPC over the pairs, normalized to the default
    /// Warped-Slicer configuration.
    pub ipc_vs_default: f64,
}

/// A fixed-quota policy derived from *offline* isolation CTA sweeps plus
/// Algorithm 1 — the upper bound on what the online profiler's curves
/// could achieve (no sampling noise, no co-run interference, but also no
/// runtime adaptivity and an offline cost the paper's design avoids).
pub fn offline_curve_policy(ctx: &ExperimentContext, pair: &Pair) -> PolicyKind {
    let window = (ctx.cfg.isolation_cycles / 8).max(2_000);
    let benches = [&pair.a, &pair.b];
    let max_ctas: Vec<u32> = benches
        .iter()
        .map(|b| b.desc.max_ctas_per_sm(&ctx.cfg.gpu.sm).max(1))
        .collect();
    let kernels: Vec<KernelCurve> = ctx
        .cta_sweeps(&benches, &max_ctas, window)
        .into_iter()
        .zip(&benches)
        .map(|(perf, b)| KernelCurve {
            perf,
            cta_cost: ResourceVec::cta_cost(&b.desc),
        })
        .collect();
    let cap = ResourceVec::sm_capacity(&ctx.cfg.gpu.sm);
    match water_fill(&kernels, cap) {
        Some(p) => PolicyKind::Quota(p.ctas),
        None => PolicyKind::Spatial,
    }
}

/// Runs the ablation battery over `pairs`.
pub fn compute(ctx: &ExperimentContext, pairs: &[Pair]) -> Vec<AblationRow> {
    let base_cfg = WarpedSlicerConfig::scaled_for(ctx.cfg.isolation_cycles);
    let variants: Vec<(String, WarpedSlicerConfig)> = vec![
        ("default".into(), base_cfg.clone()),
        (
            "no bandwidth scaling (Eq.3 off)".into(),
            WarpedSlicerConfig {
                enable_scaling: false,
                ..base_cfg.clone()
            },
        ),
        (
            "no phase monitor".into(),
            WarpedSlicerConfig {
                enable_phase_monitor: false,
                ..base_cfg.clone()
            },
        ),
        (
            "loss threshold 10%".into(),
            WarpedSlicerConfig {
                loss_threshold: Some(0.10),
                ..base_cfg.clone()
            },
        ),
        (
            "loss threshold 30%".into(),
            WarpedSlicerConfig {
                loss_threshold: Some(0.30),
                ..base_cfg.clone()
            },
        ),
        (
            "loss threshold 100% (never fall back)".into(),
            WarpedSlicerConfig {
                loss_threshold: Some(1.0),
                ..base_cfg
            },
        ),
    ];
    // All `variants x pairs` runs go out as one job batch.
    let runs: Vec<(Vec<&Benchmark>, PolicyKind)> = variants
        .iter()
        .flat_map(|(_, cfg)| {
            pairs
                .iter()
                .map(move |p| (vec![&p.a, &p.b], PolicyKind::WarpedSlicer(cfg.clone())))
        })
        .collect();
    let corun = ctx.corun_batch(&runs);
    let mut rows = Vec::new();
    let mut baseline: Option<f64> = None;
    for ((label, _), chunk) in variants.iter().zip(corun.chunks(pairs.len().max(1))) {
        let ipcs: Vec<f64> = chunk.iter().map(|r| r.combined_ipc).collect();
        let g = gmean(&ipcs);
        let base = *baseline.get_or_insert(g);
        rows.push(AblationRow {
            label: label.clone(),
            ipc_vs_default: g / base,
        });
    }
    // Offline-curve quotas: how much is lost to *online* profiling noise?
    {
        let offline: Vec<(Vec<&Benchmark>, PolicyKind)> = pairs
            .iter()
            .map(|p| (vec![&p.a, &p.b], offline_curve_policy(ctx, p)))
            .collect();
        let ipcs: Vec<f64> = ctx
            .corun_batch(&offline)
            .iter()
            .map(|r| r.combined_ipc)
            .collect();
        let g = gmean(&ipcs);
        let base = baseline.unwrap_or(g);
        rows.push(AblationRow {
            label: "offline curves + water-fill (no profiling phase)".into(),
            ipc_vs_default: g / base,
        });
    }
    rows
}

/// Renders the ablation table.
#[must_use]
pub fn render(rows: &[AblationRow]) -> String {
    let mut t = Table::new(vec!["Variant", "IPC vs default"]);
    for r in rows {
        t.row(vec![r.label.clone(), f2(r.ipc_vs_default)]);
    }
    format!("Ablations: Warped-Slicer design choices\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::fig10::subset_pairs;

    #[test]
    fn ablations_run_and_default_is_unity() {
        let ctx = ExperimentContext::new(10_000);
        let pairs = vec![subset_pairs().remove(1)];
        let rows = compute(&ctx, &pairs);
        assert_eq!(rows.len(), 7);
        assert!((rows[0].ipc_vs_default - 1.0).abs() < 1e-12);
        for r in &rows {
            assert!(r.ipc_vs_default > 0.5, "{}: {}", r.label, r.ipc_vs_default);
        }
        assert!(render(&rows).contains("Eq.3"));
    }
}
