//! Sec. V-G: power and energy. The paper reports Warped-Slicer increasing
//! average dynamic power by ~3 % (higher utilization) while cutting total
//! energy by ~16 % (much shorter execution).

use warped_slicer::EnergyModel;

use crate::experiments::fig6::Fig6Data;
use crate::report::{f2, gmean, Table};

/// Energy/power ratios of one policy versus Left-Over.
#[derive(Debug, Clone, Copy)]
pub struct EnergyRatios {
    /// Dynamic-power ratio (> 1 means higher average power).
    pub dynamic_power: f64,
    /// Total-energy ratio (< 1 means energy saved).
    pub total_energy: f64,
}

/// Selects one policy's run out of a [`crate::experiments::fig6::PairResult`].
type RunSelector =
    Box<dyn Fn(&crate::experiments::fig6::PairResult) -> &warped_slicer::CorunResult>;

/// Computes energy ratios for Spatial/Even/Dynamic from the Fig. 6 runs.
#[must_use]
pub fn compute(data: &Fig6Data) -> Vec<(&'static str, EnergyRatios)> {
    let model = EnergyModel::default();
    let policies: [(&'static str, RunSelector); 3] = [
        ("Spatial", Box::new(|p| &p.spatial)),
        ("Even", Box::new(|p| &p.even)),
        ("Dynamic", Box::new(|p| &p.dynamic)),
    ];
    policies
        .into_iter()
        .map(|(name, get)| {
            let mut power = Vec::new();
            let mut energy = Vec::new();
            for p in &data.pairs {
                let base = model.evaluate(&p.left_over.stats);
                let r = model.evaluate(&get(p).stats);
                power.push(r.dynamic_power_w / base.dynamic_power_w.max(1e-12));
                energy.push(r.total_mj() / base.total_mj().max(1e-12));
            }
            (
                name,
                EnergyRatios {
                    dynamic_power: gmean(&power),
                    total_energy: gmean(&energy),
                },
            )
        })
        .collect()
}

/// Renders the Sec. V-G comparison.
#[must_use]
pub fn render(rows: &[(&'static str, EnergyRatios)]) -> String {
    let mut t = Table::new(vec!["Policy", "DynPower vs LO", "TotalEnergy vs LO"]);
    for (name, r) in rows {
        t.row(vec![
            (*name).to_string(),
            f2(r.dynamic_power),
            f2(r.total_energy),
        ]);
    }
    format!(
        "Sec. V-G: power and energy vs. Left-Over (paper: Dynamic +3.1% power, -16% energy)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExperimentContext;
    use crate::experiments::fig6;
    use ws_workloads::{by_abbrev, Pair, PairCategory};

    #[test]
    fn dynamic_saves_energy_by_finishing_early() {
        let ctx = ExperimentContext::new(10_000);
        let pair = Pair {
            a: by_abbrev("IMG").unwrap(),
            b: by_abbrev("BLK").unwrap(),
            category: PairCategory::ComputeMemory,
        };
        let data = Fig6Data {
            pairs: vec![fig6::run_pair(&ctx, &pair, false)],
        };
        let rows = compute(&data);
        let dynamic = rows.iter().find(|(n, _)| *n == "Dynamic").unwrap().1;
        // Higher utilization, less leakage time.
        assert!(
            dynamic.total_energy < 1.05,
            "energy ratio {}",
            dynamic.total_energy
        );
        assert!(render(&rows).contains("DynPower"));
    }
}
