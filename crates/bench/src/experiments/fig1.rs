//! Fig. 1: fraction of scheduler-cycles during which warps cannot issue,
//! broken down by reason, per benchmark (isolation runs).

use gpu_sim::StallBreakdown;
use ws_workloads::{extended_suite, Benchmark};

use crate::context::ExperimentContext;
use crate::report::{pct, Table};

/// One benchmark's stall breakdown as fractions of scheduler-cycles.
#[derive(Debug, Clone)]
pub struct Row {
    /// The benchmark.
    pub bench: Benchmark,
    /// Long-memory-latency fraction.
    pub mem: f64,
    /// Short-RAW fraction.
    pub raw: f64,
    /// Execute-stage-resource fraction.
    pub exec: f64,
    /// I-buffer-empty fraction.
    pub ibuffer: f64,
    /// Barrier-wait fraction (our substrate models `__syncthreads`; the
    /// paper's figure folds this into the other categories).
    pub barrier: f64,
}

impl Row {
    fn from(bench: Benchmark, stalls: &StallBreakdown, sched_cycles: u64) -> Self {
        let d = sched_cycles.max(1) as f64;
        Self {
            bench,
            mem: stalls.mem as f64 / d,
            raw: stalls.raw as f64 / d,
            exec: stalls.exec as f64 / d,
            ibuffer: stalls.ibuffer as f64 / d,
            barrier: stalls.barrier as f64 / d,
        }
    }

    /// Total non-idle stall fraction.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.mem + self.raw + self.exec + self.ibuffer + self.barrier
    }
}

/// Measures the breakdown for every suite benchmark (one isolation batch).
pub fn compute(ctx: &ExperimentContext) -> Vec<Row> {
    let benches = extended_suite();
    let isos = ctx.isolation_batch(&benches.iter().collect::<Vec<_>>());
    benches
        .into_iter()
        .zip(isos)
        .map(|(bench, iso)| Row::from(bench, &iso.stats.stalls, iso.stats.sched_cycles))
        .collect()
}

/// Renders the figure data, with an AVG row as in the paper.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(vec![
        "App",
        "LongMemLatency",
        "ShortRAW",
        "ExecResource",
        "IbufferEmpty",
        "Barrier",
        "Total",
    ]);
    for r in rows {
        t.row(vec![
            r.bench.abbrev.to_string(),
            pct(r.mem),
            pct(r.raw),
            pct(r.exec),
            pct(r.ibuffer),
            pct(r.barrier),
            pct(r.total()),
        ]);
    }
    let n = rows.len().max(1) as f64;
    t.row(vec![
        "AVG".to_string(),
        pct(rows.iter().map(|r| r.mem).sum::<f64>() / n),
        pct(rows.iter().map(|r| r.raw).sum::<f64>() / n),
        pct(rows.iter().map(|r| r.exec).sum::<f64>() / n),
        pct(rows.iter().map(|r| r.ibuffer).sum::<f64>() / n),
        pct(rows.iter().map(|r| r.barrier).sum::<f64>() / n),
        pct(rows.iter().map(Row::total).sum::<f64>() / n),
    ]);
    format!(
        "Fig. 1: stall-cycle breakdown (fraction of scheduler-cycles)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_matches_paper_shapes() {
        let ctx = ExperimentContext::new(8_000);
        let rows = compute(&ctx);
        let get = |a: &str| rows.iter().find(|r| r.bench.abbrev == a).unwrap();
        // BFS waits on memory; DXT waits on instruction fetch (paper Sec. II-C).
        let bfs = get("BFS");
        assert!(bfs.mem > bfs.raw && bfs.mem > bfs.ibuffer, "{bfs:?}");
        let dxt = get("DXT");
        assert!(dxt.ibuffer > dxt.mem, "{dxt:?}");
        // IMG is compute bound: RAW dominates memory.
        let img = get("IMG");
        assert!(img.raw > img.mem, "{img:?}");
        assert!(render(&rows).contains("AVG"));
    }
}
