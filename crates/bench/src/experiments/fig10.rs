//! Fig. 10: sensitivity studies — (a) profiling length and partitioning-
//! algorithm delay, (b) warp schedulers (gto vs. round-robin).

use gpu_sim::SchedulerKind;
use warped_slicer::{PolicyKind, ProfileTiming, RunConfig, WarpedSlicerConfig};
use ws_workloads::{by_abbrev, Benchmark, Pair, PairCategory};

use crate::context::ExperimentContext;
use crate::report::{f2, gmean, Table};

/// A representative subset of pairs (one per category) used for the
/// sensitivity sweeps; the paper sweeps all 30, which the `--full` flag
/// also allows.
#[must_use]
pub fn subset_pairs() -> Vec<Pair> {
    // Static suite abbreviations; by_abbrev cannot fail on them.
    vec![
        Pair {
            a: by_abbrev("IMG").expect("suite"), // xtask-allow: no-unwrap
            b: by_abbrev("NN").expect("suite"),  // xtask-allow: no-unwrap
            category: PairCategory::ComputeCache,
        },
        Pair {
            a: by_abbrev("MM").expect("suite"),  // xtask-allow: no-unwrap
            b: by_abbrev("BLK").expect("suite"), // xtask-allow: no-unwrap
            category: PairCategory::ComputeMemory,
        },
        Pair {
            a: by_abbrev("HOT").expect("suite"), // xtask-allow: no-unwrap
            b: by_abbrev("LBM").expect("suite"), // xtask-allow: no-unwrap
            category: PairCategory::ComputeMemory,
        },
        Pair {
            a: by_abbrev("MM").expect("suite"),  // xtask-allow: no-unwrap
            b: by_abbrev("IMG").expect("suite"), // xtask-allow: no-unwrap
            category: PairCategory::ComputeCompute,
        },
    ]
}

fn dynamic_with(timing: ProfileTiming) -> PolicyKind {
    PolicyKind::WarpedSlicer(WarpedSlicerConfig {
        timing,
        ..WarpedSlicerConfig::default()
    })
}

/// Geomean combined IPC of the Warped-Slicer with `timing` over `pairs`,
/// normalized to the default timing. All `timings x pairs` runs go out as
/// one job batch.
pub fn sweep_timing(
    ctx: &ExperimentContext,
    pairs: &[Pair],
    timings: &[(String, ProfileTiming)],
) -> Vec<(String, f64)> {
    let runs: Vec<(Vec<&Benchmark>, PolicyKind)> = timings
        .iter()
        .flat_map(|(_, timing)| {
            pairs
                .iter()
                .map(move |p| (vec![&p.a, &p.b], dynamic_with(*timing)))
        })
        .collect();
    let corun = ctx.corun_batch(&runs);
    let mut results = Vec::new();
    let mut baseline: Option<f64> = None;
    for ((label, _), chunk) in timings.iter().zip(corun.chunks(pairs.len().max(1))) {
        let ipcs: Vec<f64> = chunk.iter().map(|r| r.combined_ipc).collect();
        let g = gmean(&ipcs);
        let base = *baseline.get_or_insert(g);
        results.push((label.clone(), g / base));
    }
    results
}

/// Fig. 10a: sampling-length and algorithm-delay sensitivity. Lengths and
/// delays are scaled to the run budget in the same proportion as the
/// paper's 5 K/10 K/1 K..10 K out of 2 M.
pub fn compute_timing(ctx: &ExperimentContext, pairs: &[Pair]) -> Vec<(String, f64)> {
    let base = WarpedSlicerConfig::scaled_for(ctx.cfg.isolation_cycles).timing;
    let timings = vec![
        (format!("sample {}", base.sample), base),
        (
            format!("sample {}", base.sample * 2),
            ProfileTiming {
                sample: base.sample * 2,
                ..base
            },
        ),
        (
            format!("sample {}", base.sample * 4),
            ProfileTiming {
                sample: base.sample * 4,
                ..base
            },
        ),
        (
            format!("delay {}", base.sample / 2),
            ProfileTiming {
                algorithm_delay: base.sample / 2,
                ..base
            },
        ),
        (
            format!("delay {}", base.sample * 2),
            ProfileTiming {
                algorithm_delay: base.sample * 2,
                ..base
            },
        ),
        (
            format!("delay {}", base.sample * 4),
            ProfileTiming {
                algorithm_delay: base.sample * 4,
                ..base
            },
        ),
    ];
    sweep_timing(ctx, pairs, &timings)
}

/// Fig. 10b: policy comparison under each warp scheduler. Each scheduler's
/// `pairs x 4` runs go out as one job batch.
pub fn compute_schedulers(isolation_cycles: u64, pairs: &[Pair]) -> Vec<(String, f64, f64, f64)> {
    let mut out = Vec::new();
    for sched in [SchedulerKind::GreedyThenOldest, SchedulerKind::RoundRobin] {
        let ctx = ExperimentContext::with_config(RunConfig {
            isolation_cycles,
            scheduler: sched,
            ..RunConfig::default()
        });
        let policies = [
            PolicyKind::LeftOver,
            PolicyKind::Spatial,
            PolicyKind::Even,
            ctx.dynamic_policy(),
        ];
        let runs: Vec<(Vec<&Benchmark>, PolicyKind)> = pairs
            .iter()
            .flat_map(|p| {
                policies
                    .iter()
                    .map(move |policy| (vec![&p.a, &p.b], policy.clone()))
            })
            .collect();
        let results = ctx.corun_batch(&runs);
        let mut sp = Vec::new();
        let mut ev = Vec::new();
        let mut dy = Vec::new();
        for chunk in results.chunks(4) {
            let [lo, s, e, d] = chunk else {
                unreachable!("corun_batch returns four results per pair")
            };
            let lo = lo.combined_ipc;
            sp.push(s.combined_ipc / lo);
            ev.push(e.combined_ipc / lo);
            dy.push(d.combined_ipc / lo);
        }
        out.push((sched.to_string(), gmean(&sp), gmean(&ev), gmean(&dy)));
    }
    out
}

/// Renders Fig. 10a.
#[must_use]
pub fn render_timing(rows: &[(String, f64)]) -> String {
    let mut t = Table::new(vec!["Profiling variant (cycles)", "Normalized IPC"]);
    for (label, ipc) in rows {
        t.row(vec![label.clone(), f2(*ipc)]);
    }
    format!(
        "Fig. 10a: sensitivity to profiling length and algorithm delay\n{}",
        t.render()
    )
}

/// Renders Fig. 10b.
#[must_use]
pub fn render_schedulers(rows: &[(String, f64, f64, f64)]) -> String {
    let mut t = Table::new(vec!["Scheduler", "Spatial", "Even", "Dynamic"]);
    for (name, s, e, d) in rows {
        t.row(vec![name.clone(), f2(*s), f2(*e), f2(*d)]);
    }
    format!("Fig. 10b: sensitivity to warp schedulers\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_sensitivity_is_small() {
        let ctx = ExperimentContext::new(12_000);
        let pairs = vec![subset_pairs().remove(0)];
        let rows = compute_timing(&ctx, &pairs);
        assert_eq!(rows.len(), 6);
        for (label, ipc) in &rows {
            // The paper reports <= ~2% IPC variation; allow slack for the
            // reduced budget.
            assert!((0.85..=1.15).contains(ipc), "{label}: {ipc}");
        }
    }

    #[test]
    fn both_schedulers_preserve_dynamic_wins() {
        let pairs = vec![subset_pairs().remove(0)];
        let rows = compute_schedulers(10_000, &pairs);
        assert_eq!(rows.len(), 2);
        for (name, _s, _e, d) in &rows {
            assert!(*d > 0.9, "{name}: dynamic {d}");
        }
    }
}
