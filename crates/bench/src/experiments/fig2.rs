//! Fig. 2: storage-allocation strategies and fragmentation.
//!
//! The paper's Fig. 2 is an illustration; here it is made *executable*: we
//! replay the scenario (kernel A's CTAs need half the shared memory of
//! kernel B's) against the real [`gpu_sim::LinearAllocator`] under each
//! strategy and report what each strategy can do with the space kernel A
//! frees when it terminates.

use gpu_sim::{LinearAllocator, Region};

use crate::report::Table;

/// Outcome of one allocation strategy in the Fig. 2 scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyOutcome {
    /// Strategy name.
    pub name: &'static str,
    /// Free space after kernel A's CTAs finish (bytes).
    pub free_after_a: u32,
    /// Largest contiguous free extent at that point.
    pub largest_free: u32,
    /// Whether a new CTA of kernel B can be admitted under the strategy's
    /// rules.
    pub new_b_fits: bool,
    /// Explanation for the table.
    pub note: &'static str,
}

const TOTAL: u32 = 48 * 1024;
const A: u32 = 8 * 1024; // kernel A CTA shared-memory footprint
const B: u32 = 16 * 1024; // kernel B CTA footprint (2x A, as in Fig. 2)

/// FCFS interleaving (Fig. 2a): A and B CTAs alternate; all A CTAs finish;
/// the freed space is fragmented into A-sized holes no B CTA can use.
#[must_use]
pub fn fcfs() -> StrategyOutcome {
    let mut alloc = LinearAllocator::new(TOTAL);
    let mut a_blocks = Vec::new();
    while let Some(r) = alloc.alloc(A) {
        a_blocks.push(r);
        if alloc.alloc(B).is_none() {
            break;
        }
    }
    for r in a_blocks {
        alloc.free(r);
    }
    StrategyOutcome {
        name: "FCFS",
        free_after_a: alloc.capacity() - alloc.used(),
        largest_free: alloc.largest_free(),
        new_b_fits: alloc.alloc(B).is_some(),
        note: "freed A space fragmented into A-sized holes",
    }
}

/// Left-Over (Fig. 2b): kernel A packs first, B gets the remainder; when
/// all of A finishes, its space is one contiguous extent.
#[must_use]
pub fn left_over() -> StrategyOutcome {
    let mut alloc = LinearAllocator::new(TOTAL);
    let mut a_blocks = Vec::new();
    for _ in 0..4 {
        // Invariant: 4 * A <= TOTAL by construction of the figure's geometry.
        // xtask-allow: no-unwrap
        a_blocks.push(alloc.alloc(A).expect("A fits"));
    }
    while alloc.alloc(B).is_some() {}
    for r in a_blocks {
        alloc.free(r);
    }
    StrategyOutcome {
        name: "Left-Over",
        free_after_a: alloc.capacity() - alloc.used(),
        largest_free: alloc.largest_free(),
        new_b_fits: alloc.alloc(B).is_some(),
        note: "B only waits for *adjacent* A departures",
    }
}

/// Even partitioning (Fig. 2c): each kernel confined to half the space;
/// A's departures free A's half, but B cannot use it by policy.
#[must_use]
pub fn even() -> StrategyOutcome {
    let mut alloc = LinearAllocator::new(TOTAL);
    let half_a = Region {
        start: 0,
        len: TOTAL / 2,
    };
    let half_b = Region {
        start: TOTAL / 2,
        len: TOTAL / 2,
    };
    let mut a_blocks = Vec::new();
    while let Some(r) = alloc.alloc_in_window(A, half_a) {
        a_blocks.push(r);
    }
    while alloc.alloc_in_window(B, half_b).is_some() {}
    for r in a_blocks {
        alloc.free(r);
    }
    let new_b = alloc.largest_free_in_window(half_b) >= B;
    StrategyOutcome {
        name: "Even",
        free_after_a: alloc.capacity() - alloc.used(),
        largest_free: alloc.largest_free(),
        new_b_fits: new_b,
        note: "A's half reusable only by A (policy confinement)",
    }
}

/// Warped-Slicer (Fig. 2d): regions sized to quotas (here 2 A-CTAs and 2
/// B-CTAs). Within B's region departures leave exactly B-sized holes, so a
/// replacement CTA always fits — no cross-kernel fragmentation ever.
#[must_use]
pub fn warped_slicer() -> StrategyOutcome {
    let mut alloc = LinearAllocator::new(TOTAL);
    let a_region = Region {
        start: 0,
        len: 2 * A,
    };
    let b_region = Region {
        start: 2 * A,
        len: TOTAL - 2 * A,
    };
    let mut a_blocks = Vec::new();
    while let Some(r) = alloc.alloc_in_window(A, a_region) {
        a_blocks.push(r);
    }
    let mut b_blocks = Vec::new();
    while let Some(r) = alloc.alloc_in_window(B, b_region) {
        b_blocks.push(r);
    }
    for r in a_blocks {
        alloc.free(r);
    }
    // One B CTA finishes: its replacement must fit exactly.
    alloc.free(b_blocks[0]);
    let new_b = alloc.alloc_in_window(B, b_region).is_some();
    StrategyOutcome {
        name: "Warped-Slicer",
        free_after_a: alloc.capacity() - alloc.used() - B, // before the re-alloc above
        largest_free: alloc.largest_free(),
        new_b_fits: new_b,
        note: "quota regions: replacements always fit their region",
    }
}

/// Runs all four strategies.
#[must_use]
pub fn compute() -> Vec<StrategyOutcome> {
    vec![fcfs(), left_over(), even(), warped_slicer()]
}

/// Renders the scenario outcomes.
#[must_use]
pub fn render(outcomes: &[StrategyOutcome]) -> String {
    let mut t = Table::new(vec![
        "Strategy",
        "FreeAfterA(KB)",
        "LargestFree(KB)",
        "NewB_CTAFits",
        "Note",
    ]);
    for o in outcomes {
        t.row(vec![
            o.name.to_string(),
            format!("{}", o.free_after_a / 1024),
            format!("{}", o.largest_free / 1024),
            if o.new_b_fits { "yes" } else { "NO" }.to_string(),
            o.note.to_string(),
        ]);
    }
    format!(
        "Fig. 2: shared-memory allocation strategies (A = {}KB/CTA, B = {}KB/CTA, {}KB total)\n{}",
        A / 1024,
        B / 1024,
        TOTAL / 1024,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fcfs_fragments_the_freed_space() {
        let o = fcfs();
        // Plenty of total free space, but every hole is A-sized.
        assert!(o.free_after_a >= B, "{o:?}");
        assert_eq!(o.largest_free, A, "{o:?}");
        assert!(!o.new_b_fits, "{o:?}");
    }

    #[test]
    fn left_over_reclaims_contiguously() {
        let o = left_over();
        assert!(o.largest_free >= 4 * A, "{o:?}");
        assert!(o.new_b_fits, "{o:?}");
    }

    #[test]
    fn even_confines_b_to_its_half() {
        let o = even();
        // A's half is completely free, yet B cannot be admitted.
        assert!(o.largest_free >= TOTAL / 2 - A, "{o:?}");
        assert!(!o.new_b_fits, "{o:?}");
    }

    #[test]
    fn warped_slicer_replacements_always_fit() {
        let o = warped_slicer();
        assert!(o.new_b_fits, "{o:?}");
    }

    #[test]
    fn render_shows_all_strategies() {
        let s = render(&compute());
        for name in ["FCFS", "Left-Over", "Even", "Warped-Slicer"] {
            assert!(s.contains(name));
        }
    }
}
