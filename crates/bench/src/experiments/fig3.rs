//! Fig. 3a: normalized performance vs. CTA occupancy per benchmark, and
//! Fig. 3b: the sweet-spot identification for the IMG + NN pair.

use warped_slicer::{water_fill, KernelCurve, ResourceVec};
#[cfg(test)]
use ws_workloads::ScalingArchetype;
use ws_workloads::{by_abbrev, suite, Benchmark};

use crate::context::ExperimentContext;
use crate::report::{f2, Table};

/// One benchmark's occupancy-scaling curve.
#[derive(Debug, Clone)]
pub struct Curve {
    /// The benchmark.
    pub bench: Benchmark,
    /// Raw GPU IPC at 1..=max CTAs per SM.
    pub ipc: Vec<f64>,
}

impl Curve {
    /// The curve normalized to its peak.
    #[must_use]
    pub fn normalized(&self) -> Vec<f64> {
        let peak = self.ipc.iter().copied().fold(0.0f64, f64::max).max(1e-12);
        self.ipc.iter().map(|x| x / peak).collect()
    }

    /// Index (0-based) of the peak.
    #[must_use]
    pub fn peak_index(&self) -> usize {
        self.ipc
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map_or(0, |(i, _)| i)
    }
}

/// Sweeps benchmarks over every CTA count up to their baseline occupancy,
/// submitting all `Σ max_ctas` points as one job batch.
pub fn sweep_all(ctx: &ExperimentContext, benches: &[&Benchmark], window: u64) -> Vec<Curve> {
    let max_ctas: Vec<u32> = benches.iter().map(|b| b.max_ctas_baseline()).collect();
    ctx.cta_sweeps(benches, &max_ctas, window)
        .into_iter()
        .zip(benches)
        .map(|(ipc, b)| Curve {
            bench: (*b).clone(),
            ipc,
        })
        .collect()
}

/// Sweeps one benchmark over every CTA count.
pub fn sweep(ctx: &ExperimentContext, bench: &Benchmark, window: u64) -> Curve {
    sweep_all(ctx, &[bench], window).swap_remove(0)
}

/// Sweeps the full suite (Fig. 3a).
pub fn compute(ctx: &ExperimentContext, window: u64) -> Vec<Curve> {
    let benches = suite();
    sweep_all(ctx, &benches.iter().collect::<Vec<_>>(), window)
}

/// Renders Fig. 3a.
#[must_use]
pub fn render(curves: &[Curve]) -> String {
    let mut t = Table::new(vec![
        "App", "Class", "1", "2", "3", "4", "5", "6", "7", "8", "PeakIPC",
    ]);
    for c in curves {
        let norm = c.normalized();
        let mut cells = vec![
            c.bench.abbrev.to_string(),
            format!("{:?}", c.bench.archetype),
        ];
        for j in 0..8 {
            cells.push(norm.get(j).map_or(String::new(), |v| f2(*v)));
        }
        cells.push(f2(c.ipc.iter().copied().fold(0.0f64, f64::max)));
        t.row(cells);
    }
    format!(
        "Fig. 3a: normalized IPC vs. CTAs per SM (isolation)\n{}",
        t.render()
    )
}

/// Machine-readable Fig. 3a data (raw IPC, one row per benchmark x CTA
/// count) for external plotting.
#[must_use]
pub fn csv(curves: &[Curve]) -> String {
    let mut t = Table::new(vec!["app", "archetype", "ctas", "ipc", "normalized"]);
    for c in curves {
        let norm = c.normalized();
        for (j, (&ipc, &n)) in c.ipc.iter().zip(&norm).enumerate() {
            t.row(vec![
                c.bench.abbrev.to_string(),
                format!("{:?}", c.bench.archetype),
                format!("{}", j + 1),
                format!("{ipc:.4}"),
                format!("{n:.4}"),
            ]);
        }
    }
    t.to_csv()
}

/// Fig. 3b data: the two mirrored curves and the sweet spot the
/// water-filling algorithm picks for IMG + NN.
#[derive(Debug, Clone)]
pub struct SweetSpot {
    /// IMG's curve.
    pub img: Curve,
    /// NN's curve.
    pub nn: Curve,
    /// CTA split chosen by Algorithm 1 on the measured curves.
    pub chosen: Vec<u32>,
    /// Normalized per-kernel performance at the chosen split.
    pub perf: Vec<f64>,
}

/// Computes Fig. 3b.
pub fn compute_sweet_spot(ctx: &ExperimentContext, window: u64) -> SweetSpot {
    // Static suite abbreviations. xtask-allow: no-unwrap
    let img_bench = by_abbrev("IMG").expect("IMG in suite");
    let nn_bench = by_abbrev("NN").expect("NN in suite"); // xtask-allow: no-unwrap
    let mut curves = sweep_all(ctx, &[&img_bench, &nn_bench], window);
    let nn = curves.swap_remove(1);
    let img = curves.swap_remove(0);
    let kernels = [
        KernelCurve {
            perf: img.ipc.clone(),
            cta_cost: ResourceVec::cta_cost(&img.bench.desc),
        },
        KernelCurve {
            perf: nn.ipc.clone(),
            cta_cost: ResourceVec::cta_cost(&nn.bench.desc),
        },
    ];
    let cap = ResourceVec::sm_capacity(&ctx.cfg.gpu.sm);
    // Invariant: both kernels fit one CTA each on the ISCA baseline SM.
    // xtask-allow: no-unwrap
    let p = water_fill(&kernels, cap).expect("IMG+NN is feasible");
    SweetSpot {
        img,
        nn,
        chosen: p.ctas,
        perf: p.perf,
    }
}

/// Renders Fig. 3b.
#[must_use]
pub fn render_sweet_spot(s: &SweetSpot) -> String {
    let img = s.img.normalized();
    let nn = s.nn.normalized();
    let mut t = Table::new(vec!["IMG CTAs", "IMG perf", "NN CTAs", "NN perf", "min"]);
    // Mirrored axes as in the figure: every row is a complete split of the
    // 8 CTA slots (IMG k, NN max-k).
    let max = img.len().max(nn.len());
    for i in 0..max.saturating_sub(1) {
        let img_n = i + 1;
        let nn_n = max - 1 - i;
        let pi = img.get(img_n - 1).copied().unwrap_or(0.0);
        let pn = nn.get(nn_n - 1).copied().unwrap_or(0.0);
        t.row(vec![
            format!("{img_n}"),
            f2(pi),
            format!("{nn_n}"),
            f2(pn),
            f2(pi.min(pn)),
        ]);
    }
    format!(
        "Fig. 3b: sweet-spot identification for IMG + NN\n{}\nWater-filling picks IMG={} NN={} (normalized perf {} / {})\n",
        t.render(),
        s.chosen[0],
        s.chosen[1],
        f2(s.perf[0]),
        f2(s.perf[1]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn archetypes_emerge_from_sweeps() {
        // Memory-bound kernels need a window long enough for the DRAM
        // queues to reach equilibrium.
        let ctx = ExperimentContext::new(12_000);
        let curves = compute(&ctx, 12_000);
        for c in &curves {
            let norm = c.normalized();
            let peak = c.peak_index();
            match c.bench.archetype {
                ScalingArchetype::ComputeNonSaturating => {
                    // Still climbing near the end.
                    assert!(
                        peak + 1 >= norm.len().saturating_sub(1),
                        "{}: peak at {peak} of {}",
                        c.bench.abbrev,
                        norm.len()
                    );
                    assert!(norm[0] < 0.5, "{} grows a lot", c.bench.abbrev);
                }
                ScalingArchetype::ComputeSaturating => {
                    assert!(norm[0] < 0.6, "{} starts low", c.bench.abbrev);
                    let half = norm.len() / 2;
                    assert!(norm[half] > 0.6, "{} saturates", c.bench.abbrev);
                }
                ScalingArchetype::MemorySaturating => {
                    // Bandwidth-bound: already substantial at one CTA and
                    // near peak within the first half of the range.
                    let half = norm.len().div_ceil(2);
                    let early_peak = norm.iter().take(half).copied().fold(0.0f64, f64::max);
                    assert!(
                        norm[0] > 0.4 && early_peak > 0.78,
                        "{} saturates fast: {norm:?}",
                        c.bench.abbrev
                    );
                }
                ScalingArchetype::CacheSensitive => {
                    assert!(
                        peak < norm.len() - 1,
                        "{} peaks early: {norm:?}",
                        c.bench.abbrev
                    );
                    assert!(
                        *norm.last().unwrap() < 0.9,
                        "{} declines: {norm:?}",
                        c.bench.abbrev
                    );
                }
            }
        }
    }

    #[test]
    fn sweet_spot_is_asymmetric() {
        let ctx = ExperimentContext::new(6_000);
        let s = compute_sweet_spot(&ctx, 6_000);
        // IMG keeps scaling, NN thrashes: IMG gets more CTAs than NN.
        assert!(s.chosen[0] > s.chosen[1], "{:?}", s.chosen);
        assert!(render_sweet_spot(&s).contains("Water-filling picks"));
    }
}
