//! Fig. 5: does a short sampling window characterize the whole kernel?
//!
//! The paper compares `φ_mem` and per-SM IPC over the first 5 K cycles with
//! a 50 K-cycle execution window. We reproduce that by running each
//! benchmark in isolation and reporting windowed IPC / `φ_mem` series plus
//! the deviation of the first window from the long-run mean.

use gpu_sim::{Gpu, GpuConfig, SchedulerKind};
use warped_slicer::PolicyKind;
use ws_workloads::{suite, Benchmark};

use crate::context::ExperimentContext;
use crate::report::{f2, pct, Table};

/// Windowed statistics for one benchmark.
#[derive(Debug, Clone)]
pub struct WindowSeries {
    /// The benchmark.
    pub bench: Benchmark,
    /// Per-window GPU IPC.
    pub ipc: Vec<f64>,
    /// Per-window `φ_mem`.
    pub phi_mem: Vec<f64>,
}

impl WindowSeries {
    /// Relative deviation of the first window's IPC from the series mean.
    #[must_use]
    pub fn first_window_ipc_error(&self) -> f64 {
        if self.ipc.is_empty() {
            return 0.0;
        }
        let mean = self.ipc.iter().sum::<f64>() / self.ipc.len() as f64;
        if mean.abs() < 1e-12 {
            return 0.0;
        }
        (self.ipc[0] - mean).abs() / mean
    }
}

/// Runs `bench` for `windows * window` cycles, recording per-window stats.
pub fn series(
    ctx: &ExperimentContext,
    bench: &Benchmark,
    window: u64,
    windows: usize,
) -> WindowSeries {
    series_on(&ctx.cfg.gpu, bench, window, windows)
}

/// [`series`] against an explicit hardware config — the owned-input form
/// the pool's `'static` job closures capture.
fn series_on(gpu_cfg: &GpuConfig, bench: &Benchmark, window: u64, windows: usize) -> WindowSeries {
    let mut gpu = Gpu::new(gpu_cfg.clone(), SchedulerKind::GreedyThenOldest);
    let k = gpu.add_kernel(bench.desc.clone());
    let mut controller = warped_slicer::make_controller(&PolicyKind::LeftOver);
    let mut ipc = Vec::with_capacity(windows);
    let mut phi = Vec::with_capacity(windows);
    let mut last_insts = 0u64;
    let mut last_mem = 0u64;
    for _ in 0..windows {
        for _ in 0..window {
            controller.on_cycle(&mut gpu);
            gpu.tick();
        }
        let insts = gpu.kernel_insts(k);
        let mem: u64 = gpu.sms().map(|s| s.stats().stalls.mem).sum();
        let sched_cycles = window * gpu.num_sms() as u64 * 2;
        ipc.push((insts - last_insts) as f64 / window as f64);
        phi.push((mem - last_mem) as f64 / sched_cycles as f64);
        last_insts = insts;
        last_mem = mem;
    }
    WindowSeries {
        bench: bench.clone(),
        ipc,
        phi_mem: phi,
    }
}

/// Computes the series for the whole suite, one pool job per benchmark.
pub fn compute(ctx: &ExperimentContext, window: u64, windows: usize) -> Vec<WindowSeries> {
    let gpu_cfg = ctx.cfg.gpu.clone();
    ctx.pool().run(&suite(), move |_, b| {
        series_on(&gpu_cfg, b, window, windows)
    })
}

/// Renders the windowed characterization.
#[must_use]
pub fn render(series: &[WindowSeries], window: u64) -> String {
    let mut t = Table::new(vec![
        "App",
        "IPC(w0)",
        "IPC(mean)",
        "IPC err",
        "phi(w0)",
        "phi(mean)",
    ]);
    for s in series {
        let ipc_mean = s.ipc.iter().sum::<f64>() / s.ipc.len().max(1) as f64;
        let phi_mean = s.phi_mem.iter().sum::<f64>() / s.phi_mem.len().max(1) as f64;
        t.row(vec![
            s.bench.abbrev.to_string(),
            f2(s.ipc.first().copied().unwrap_or(0.0)),
            f2(ipc_mean),
            pct(s.first_window_ipc_error()),
            f2(s.phi_mem.first().copied().unwrap_or(0.0)),
            f2(phi_mean),
        ]);
    }
    format!(
        "Fig. 5: {window}-cycle sampling window vs. long-run behaviour\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ws_workloads::by_abbrev;

    #[test]
    fn first_window_characterizes_the_run() {
        let ctx = ExperimentContext::new(5_000);
        let s = series(&ctx, &by_abbrev("IMG").unwrap(), 5_000, 6);
        assert_eq!(s.ipc.len(), 6);
        // The paper's claim: the sampling window is representative.
        assert!(
            s.first_window_ipc_error() < 0.25,
            "first-window error: {} ({:?})",
            s.first_window_ipc_error(),
            s.ipc
        );
    }

    #[test]
    fn memory_kernels_show_high_phi() {
        let ctx = ExperimentContext::new(5_000);
        let s = series(&ctx, &by_abbrev("LBM").unwrap(), 5_000, 3);
        assert!(s.phi_mem.iter().all(|&p| p > 0.3), "{:?}", s.phi_mem);
    }
}
