//! Fig. 6: normalized combined IPC of all 30 application pairs under
//! Spatial, Even, and Warped-Slicer (Dynamic), normalized to the Left-Over
//! baseline — optionally with the exhaustive Oracle.

use std::sync::Arc;

use gpu_sim::KernelDesc;
use warped_slicer::{run_oracle, CorunResult, PolicyKind, RunConfig};
use ws_workloads::{all_pairs, Benchmark, Pair, PairCategory};

use crate::context::ExperimentContext;
use crate::report::{f2, gmean, Table};

/// Results for one pair under every policy.
#[derive(Debug, Clone)]
pub struct PairResult {
    /// The workload pair.
    pub pair: Pair,
    /// Left-Over baseline run.
    pub left_over: CorunResult,
    /// Spatial multitasking run.
    pub spatial: CorunResult,
    /// Even intra-SM partitioning run.
    pub even: CorunResult,
    /// Warped-Slicer run.
    pub dynamic: CorunResult,
    /// Best exhaustive result, when the Oracle search was enabled.
    pub oracle_ipc: Option<f64>,
}

impl PairResult {
    /// Normalized IPC of `r` against this pair's Left-Over baseline.
    #[must_use]
    pub fn normalized(&self, r: &CorunResult) -> f64 {
        r.combined_ipc / self.left_over.combined_ipc.max(1e-12)
    }

    /// (spatial, even, dynamic, oracle) normalized IPCs.
    #[must_use]
    pub fn normalized_all(&self) -> (f64, f64, f64, Option<f64>) {
        (
            self.normalized(&self.spatial),
            self.normalized(&self.even),
            self.normalized(&self.dynamic),
            self.oracle_ipc
                .map(|o| o / self.left_over.combined_ipc.max(1e-12)),
        )
    }
}

/// The full Fig. 6 dataset.
#[derive(Debug, Clone)]
pub struct Fig6Data {
    /// Per-pair results in Table III order.
    pub pairs: Vec<PairResult>,
}

impl Fig6Data {
    /// Pairs belonging to `category`.
    pub fn category(&self, category: PairCategory) -> impl Iterator<Item = &PairResult> {
        self.pairs
            .iter()
            .filter(move |p| p.pair.category == category)
    }

    /// Geometric-mean normalized IPC over all pairs per policy:
    /// (spatial, even, dynamic, oracle-if-any).
    #[must_use]
    pub fn gmeans(&self) -> (f64, f64, f64, Option<f64>) {
        let collect =
            |f: &dyn Fn(&PairResult) -> f64| -> Vec<f64> { self.pairs.iter().map(f).collect() };
        let spatial = gmean(&collect(&|p| p.normalized(&p.spatial)));
        let even = gmean(&collect(&|p| p.normalized(&p.even)));
        let dynamic = gmean(&collect(&|p| p.normalized(&p.dynamic)));
        let oracle = if self.pairs.iter().all(|p| p.oracle_ipc.is_some()) {
            let os: Vec<f64> = self
                .pairs
                .iter()
                // Invariant: the all() guard above established oracle_ipc
                // is Some for every pair. xtask-allow: no-unwrap
                .map(|p| p.normalized_all().3.expect("checked"))
                .collect();
            Some(gmean(&os))
        } else {
            None
        };
        (spatial, even, dynamic, oracle)
    }
}

/// Runs one pair under every policy.
pub fn run_pair(ctx: &ExperimentContext, pair: &Pair, with_oracle: bool) -> PairResult {
    run_pairs(ctx, std::slice::from_ref(pair), with_oracle).swap_remove(0)
}

/// Runs every pair under every policy as one job batch (`pairs x 4` corun
/// jobs), then — when requested — fans the per-pair exhaustive Oracle
/// searches out over the pool.
pub fn run_pairs(ctx: &ExperimentContext, pairs: &[Pair], with_oracle: bool) -> Vec<PairResult> {
    let policies = [
        PolicyKind::LeftOver,
        PolicyKind::Spatial,
        PolicyKind::Even,
        ctx.dynamic_policy(),
    ];
    let runs: Vec<(Vec<&Benchmark>, PolicyKind)> = pairs
        .iter()
        .flat_map(|p| {
            policies
                .iter()
                .map(move |policy| (vec![&p.a, &p.b], policy.clone()))
        })
        .collect();
    let mut results = ctx.corun_batch(&runs).into_iter();
    let oracle: Vec<Option<f64>> = if with_oracle {
        // Targets are already memoized by the corun batch, so each job is
        // pure search over one pair's quota grid. The pool's job closures
        // are `'static`, so each job owns its inputs: the kernel descs,
        // the (caller-resolved) instruction targets, and a shared config.
        let cfg = Arc::new(ctx.cfg.clone());
        let searches: Vec<(KernelDesc, KernelDesc, Vec<u64>, Arc<RunConfig>)> = pairs
            .iter()
            .map(|p| {
                let targets = ctx.targets(&[&p.a, &p.b]);
                (
                    p.a.desc.clone(),
                    p.b.desc.clone(),
                    targets,
                    Arc::clone(&cfg),
                )
            })
            .collect();
        ctx.pool().run(&searches, |_, (a, b, targets, cfg)| {
            Some(run_oracle(&[a, b], targets, cfg).best.combined_ipc)
        })
    } else {
        vec![None; pairs.len()]
    };
    pairs
        .iter()
        .zip(oracle)
        .map(|(pair, oracle_best)| {
            let (Some(left_over), Some(spatial), Some(even), Some(dynamic)) = (
                results.next(),
                results.next(),
                results.next(),
                results.next(),
            ) else {
                unreachable!("corun_batch returns four results per pair")
            };
            // The Oracle is the best of *everything*, including Dynamic
            // itself.
            let oracle_ipc = oracle_best.map(|o| o.max(dynamic.combined_ipc));
            PairResult {
                pair: pair.clone(),
                left_over,
                spatial,
                even,
                dynamic,
                oracle_ipc,
            }
        })
        .collect()
}

/// Runs all 30 pairs. `with_oracle` adds the exhaustive search (slow).
pub fn compute(ctx: &ExperimentContext, with_oracle: bool) -> Fig6Data {
    Fig6Data {
        pairs: run_pairs(ctx, &all_pairs(), with_oracle),
    }
}

/// Machine-readable Fig. 6 data: one row per pair with normalized IPCs.
#[must_use]
pub fn csv(data: &Fig6Data) -> String {
    let mut t = Table::new(vec![
        "pair",
        "category",
        "spatial",
        "even",
        "dynamic",
        "oracle",
        "leftover_ipc",
    ]);
    for p in &data.pairs {
        let (s, e, d, o) = p.normalized_all();
        t.row(vec![
            p.pair.label(),
            p.pair.category.to_string(),
            format!("{s:.4}"),
            format!("{e:.4}"),
            format!("{d:.4}"),
            o.map_or(String::new(), |o| format!("{o:.4}")),
            format!("{:.4}", p.left_over.combined_ipc),
        ]);
    }
    t.to_csv()
}

/// Renders the Fig. 6 table (three category blocks + GMEAN row).
#[must_use]
pub fn render(data: &Fig6Data) -> String {
    let mut out = String::from("Fig. 6: normalized IPC (vs. Left-Over)\n");
    for cat in [
        PairCategory::ComputeCache,
        PairCategory::ComputeMemory,
        PairCategory::ComputeCompute,
    ] {
        out.push_str(&format!("\n({cat})\n"));
        let mut t = Table::new(vec!["Pair", "Spatial", "Even", "Dynamic", "Oracle"]);
        let mut sp = Vec::new();
        let mut ev = Vec::new();
        let mut dy = Vec::new();
        let mut or = Vec::new();
        for p in data.category(cat) {
            let (s, e, d, o) = p.normalized_all();
            sp.push(s);
            ev.push(e);
            dy.push(d);
            if let Some(o) = o {
                or.push(o);
            }
            t.row(vec![
                p.pair.label(),
                f2(s),
                f2(e),
                f2(d),
                o.map_or(String::from("-"), f2),
            ]);
        }
        t.row(vec![
            "GMEAN".to_string(),
            f2(gmean(&sp)),
            f2(gmean(&ev)),
            f2(gmean(&dy)),
            if or.is_empty() {
                "-".to_string()
            } else {
                f2(gmean(&or))
            },
        ]);
        out.push_str(&t.render());
    }
    let (s, e, d, o) = data.gmeans();
    out.push_str(&format!(
        "\nGMEAN of ALL 30 pairs: Spatial {} | Even {} | Dynamic {} | Oracle {}\n",
        f2(s),
        f2(e),
        f2(d),
        o.map_or("-".to_string(), f2)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ws_workloads::by_abbrev;

    #[test]
    fn single_pair_produces_consistent_normalization() {
        let ctx = ExperimentContext::new(10_000);
        let pair = Pair {
            a: by_abbrev("IMG").unwrap(),
            b: by_abbrev("NN").unwrap(),
            category: PairCategory::ComputeCache,
        };
        let r = run_pair(&ctx, &pair, false);
        let (s, e, d, o) = r.normalized_all();
        assert!(o.is_none());
        assert!(s > 0.5 && e > 0.5 && d > 0.5, "({s}, {e}, {d})");
        assert!((r.normalized(&r.left_over) - 1.0).abs() < 1e-12);
        assert!(!r.left_over.timed_out);
    }
}
