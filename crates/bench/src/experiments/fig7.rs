//! Fig. 7: (a) resource utilization of Warped-Slicer normalized to Even,
//! (b) L1/L2 miss rates per policy and workload category, (c) stall-cycle
//! breakdown per policy.

use ws_workloads::PairCategory;

use crate::experiments::fig6::Fig6Data;
use crate::report::{f2, pct, Table};

/// Fig. 7a: average utilization ratios (Dynamic / Even) across pairs.
#[derive(Debug, Clone, Copy, Default)]
pub struct UtilizationRatios {
    /// ALU busy-fraction ratio.
    pub alu: f64,
    /// SFU ratio.
    pub sfu: f64,
    /// LSU ratio.
    pub ldst: f64,
    /// Register-occupancy ratio.
    pub reg: f64,
    /// Shared-memory-occupancy ratio.
    pub shm: f64,
}

/// Computes Fig. 7a from the Fig. 6 runs.
#[must_use]
pub fn utilization_ratios(data: &Fig6Data) -> UtilizationRatios {
    let mut acc = UtilizationRatios::default();
    let mut n = 0.0;
    for p in &data.pairs {
        let d = &p.dynamic.stats.util;
        let e = &p.even.stats.util;
        let ratio = |a: f64, b: f64| if b > 1e-9 { a / b } else { 1.0 };
        acc.alu += ratio(d.alu, e.alu);
        acc.sfu += ratio(d.sfu, e.sfu);
        acc.ldst += ratio(d.lsu, e.lsu);
        acc.reg += ratio(d.reg, e.reg);
        acc.shm += ratio(d.shmem, e.shmem);
        n += 1.0;
    }
    if n > 0.0 {
        acc.alu /= n;
        acc.sfu /= n;
        acc.ldst /= n;
        acc.reg /= n;
        acc.shm /= n;
    }
    acc
}

/// Renders Fig. 7a.
#[must_use]
pub fn render_utilization(r: &UtilizationRatios) -> String {
    let mut t = Table::new(vec!["ALU", "SFU", "LDST", "REG", "SHM"]);
    t.row(vec![f2(r.alu), f2(r.sfu), f2(r.ldst), f2(r.reg), f2(r.shm)]);
    format!(
        "Fig. 7a: Warped-Slicer resource utilization normalized to Even\n{}",
        t.render()
    )
}

/// Fig. 7b: cache miss rates per policy, split into Compute+Cache and
/// Compute+Non-Cache categories as in the paper.
#[must_use]
pub fn render_cache(data: &Fig6Data) -> String {
    let mut out = String::from("Fig. 7b: cache miss rates by policy\n");
    for (name, cats) in [
        ("Compute + Cache", vec![PairCategory::ComputeCache]),
        (
            "Compute + Non-Cache",
            vec![PairCategory::ComputeMemory, PairCategory::ComputeCompute],
        ),
    ] {
        let mut t = Table::new(vec!["Policy", "L1D miss", "L2 miss"]);
        for (policy, get) in [
            ("Left-Over", 0usize),
            ("Spatial", 1),
            ("Even", 2),
            ("Dynamic", 3),
        ] {
            let mut l1a = 0u64;
            let mut l1m = 0u64;
            let mut l2a = 0u64;
            let mut l2m = 0u64;
            for p in data
                .pairs
                .iter()
                .filter(|p| cats.contains(&p.pair.category))
            {
                let s = match get {
                    0 => &p.left_over.stats,
                    1 => &p.spatial.stats,
                    2 => &p.even.stats,
                    _ => &p.dynamic.stats,
                };
                l1a += s.cache.l1_accesses;
                l1m += s.cache.l1_misses;
                l2a += s.cache.l2_accesses;
                l2m += s.cache.l2_misses;
            }
            t.row(vec![
                policy.to_string(),
                pct(l1m as f64 / l1a.max(1) as f64),
                pct(l2m as f64 / l2a.max(1) as f64),
            ]);
        }
        out.push_str(&format!("\n({name})\n{}", t.render()));
    }
    out
}

/// Fig. 7c: stall-cycle fractions per policy, averaged over all pairs.
#[must_use]
pub fn render_stalls(data: &Fig6Data) -> String {
    let mut t = Table::new(vec!["Policy", "MEM", "RAW", "EXE", "IBUFFER", "Total"]);
    for (policy, get) in [
        ("Left-Over", 0usize),
        ("Spatial", 1),
        ("Even", 2),
        ("Dynamic", 3),
    ] {
        let mut mem = 0.0;
        let mut raw = 0.0;
        let mut exe = 0.0;
        let mut ib = 0.0;
        let mut n = 0.0;
        for p in &data.pairs {
            let s = match get {
                0 => &p.left_over.stats,
                1 => &p.spatial.stats,
                2 => &p.even.stats,
                _ => &p.dynamic.stats,
            };
            let d = s.sched_cycles.max(1) as f64;
            mem += s.stalls.mem as f64 / d;
            raw += s.stalls.raw as f64 / d;
            exe += s.stalls.exec as f64 / d;
            ib += s.stalls.ibuffer as f64 / d;
            n += 1.0;
        }
        t.row(vec![
            policy.to_string(),
            pct(mem / n),
            pct(raw / n),
            pct(exe / n),
            pct(ib / n),
            pct((mem + raw + exe + ib) / n),
        ]);
    }
    format!(
        "Fig. 7c: stall-cycle breakdown by policy (fraction of scheduler-cycles, mean over pairs)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExperimentContext;
    use crate::experiments::fig6;
    use ws_workloads::{by_abbrev, Pair};

    fn tiny_data() -> Fig6Data {
        let ctx = ExperimentContext::new(10_000);
        let pair = Pair {
            a: by_abbrev("MM").unwrap(),
            b: by_abbrev("MVP").unwrap(),
            category: PairCategory::ComputeCache,
        };
        Fig6Data {
            pairs: vec![fig6::run_pair(&ctx, &pair, false)],
        }
    }

    #[test]
    fn fig7_renders_from_fig6_runs() {
        let data = tiny_data();
        let u = utilization_ratios(&data);
        assert!(u.alu > 0.2 && u.alu < 5.0, "{u:?}");
        assert!(render_utilization(&u).contains("LDST"));
        assert!(render_cache(&data).contains("L1D miss"));
        assert!(render_stalls(&data).contains("IBUFFER"));
    }
}
