//! Fig. 8: three kernels sharing an SM — all 15 combinations of one
//! memory/cache benchmark with two compute benchmarks.

use warped_slicer::{CorunResult, PolicyKind};
use ws_workloads::{all_triples, Benchmark, Triple};

use crate::context::ExperimentContext;
use crate::report::{f2, gmean, Table};

/// Results for one triple.
#[derive(Debug, Clone)]
pub struct TripleResult {
    /// The workload.
    pub triple: Triple,
    /// Left-Over baseline.
    pub left_over: CorunResult,
    /// Spatial multitasking.
    pub spatial: CorunResult,
    /// Even split (1/3 each).
    pub even: CorunResult,
    /// Warped-Slicer.
    pub dynamic: CorunResult,
}

impl TripleResult {
    /// (spatial, even, dynamic) IPC normalized to Left-Over.
    #[must_use]
    pub fn normalized(&self) -> (f64, f64, f64) {
        let base = self.left_over.combined_ipc.max(1e-12);
        (
            self.spatial.combined_ipc / base,
            self.even.combined_ipc / base,
            self.dynamic.combined_ipc / base,
        )
    }
}

/// Runs one triple under every policy.
pub fn run_triple(ctx: &ExperimentContext, triple: &Triple) -> TripleResult {
    run_triples(ctx, std::slice::from_ref(triple)).swap_remove(0)
}

/// Runs every triple under every policy as one `triples x 4` job batch.
pub fn run_triples(ctx: &ExperimentContext, triples: &[Triple]) -> Vec<TripleResult> {
    let policies = [
        PolicyKind::LeftOver,
        PolicyKind::Spatial,
        PolicyKind::Even,
        ctx.dynamic_policy(),
    ];
    let runs: Vec<(Vec<&Benchmark>, PolicyKind)> = triples
        .iter()
        .flat_map(|t| {
            policies
                .iter()
                .map(move |policy| (vec![&t.a, &t.b, &t.c], policy.clone()))
        })
        .collect();
    let mut results = ctx.corun_batch(&runs).into_iter();
    triples
        .iter()
        .map(|triple| {
            let (Some(left_over), Some(spatial), Some(even), Some(dynamic)) = (
                results.next(),
                results.next(),
                results.next(),
                results.next(),
            ) else {
                unreachable!("corun_batch returns four results per triple")
            };
            TripleResult {
                triple: triple.clone(),
                left_over,
                spatial,
                even,
                dynamic,
            }
        })
        .collect()
}

/// Runs all 15 triples.
pub fn compute(ctx: &ExperimentContext) -> Vec<TripleResult> {
    run_triples(ctx, &all_triples())
}

/// Machine-readable Fig. 8 data.
#[must_use]
pub fn csv(results: &[TripleResult]) -> String {
    let mut t = Table::new(vec![
        "workload",
        "spatial",
        "even",
        "dynamic",
        "leftover_ipc",
    ]);
    for r in results {
        let (s, e, d) = r.normalized();
        t.row(vec![
            r.triple.label(),
            format!("{s:.4}"),
            format!("{e:.4}"),
            format!("{d:.4}"),
            format!("{:.4}", r.left_over.combined_ipc),
        ]);
    }
    t.to_csv()
}

/// Renders Fig. 8.
#[must_use]
pub fn render(results: &[TripleResult]) -> String {
    let mut t = Table::new(vec!["Workload", "Spatial", "Even", "Dynamic"]);
    let mut sp = Vec::new();
    let mut ev = Vec::new();
    let mut dy = Vec::new();
    for r in results {
        let (s, e, d) = r.normalized();
        sp.push(s);
        ev.push(e);
        dy.push(d);
        t.row(vec![r.triple.label(), f2(s), f2(e), f2(d)]);
    }
    t.row(vec![
        "GMEAN".to_string(),
        f2(gmean(&sp)),
        f2(gmean(&ev)),
        f2(gmean(&dy)),
    ]);
    format!(
        "Fig. 8: three applications per SM, normalized IPC (vs. Left-Over)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ws_workloads::by_abbrev;

    #[test]
    fn one_triple_runs_under_all_policies() {
        let ctx = ExperimentContext::new(10_000);
        let triple = Triple {
            a: by_abbrev("BLK").unwrap(),
            b: by_abbrev("IMG").unwrap(),
            c: by_abbrev("DXT").unwrap(),
        };
        let r = run_triple(&ctx, &triple);
        assert!(!r.left_over.timed_out, "{:?}", r.left_over.finish_cycle);
        assert!(!r.dynamic.timed_out);
        let (s, e, d) = r.normalized();
        assert!(s > 0.4 && e > 0.4 && d > 0.4, "({s}, {e}, {d})");
        // The dynamic controller made a 3-way decision.
        let dec = r.dynamic.decision.expect("decision");
        if let Some(q) = dec.quotas {
            assert_eq!(q.len(), 3);
        }
    }
}
