//! Fig. 9: fairness (minimum speedup) and average normalized turnaround
//! time for two- and three-kernel workloads, normalized to Left-Over.
//!
//! Each kernel's speedup and slowdown are normalized by *its own* isolated
//! execution time (from the context's isolation memo), not by the shared
//! isolation budget — the two differ whenever a kernel exhausts its grid
//! before the budget.

use warped_slicer::{antt, fairness};

use crate::context::ExperimentContext;
use crate::experiments::fig6::Fig6Data;
use crate::experiments::fig8::TripleResult;
use crate::report::{f2, gmean, Table};

/// Aggregated fairness metrics for one policy.
#[derive(Debug, Clone, Copy)]
pub struct PolicyFairness {
    /// Geometric-mean fairness (min speedup) normalized to Left-Over.
    pub fairness_vs_leftover: f64,
    /// Mean ANTT (raw; lower is better).
    pub antt: f64,
}

/// Selects one policy's run out of a pair result.
type PairSelector =
    Box<dyn Fn(&crate::experiments::fig6::PairResult) -> &warped_slicer::CorunResult>;
/// Selects one policy's run out of a triple result.
type TripleSelector = Box<dyn Fn(&TripleResult) -> &warped_slicer::CorunResult>;

/// Computes Fig. 9 aggregates for 2-kernel workloads from the Fig. 6 runs,
/// normalizing each kernel by its own isolated cycle count from `ctx`'s
/// isolation memo.
#[must_use]
pub fn two_kernel(ctx: &ExperimentContext, data: &Fig6Data) -> Vec<(&'static str, PolicyFairness)> {
    let policies: [(&'static str, PairSelector); 3] = [
        ("Spatial", Box::new(|p| &p.spatial)),
        ("Even", Box::new(|p| &p.even)),
        ("Dynamic", Box::new(|p| &p.dynamic)),
    ];
    policies
        .into_iter()
        .map(|(name, get)| {
            let mut ratios = Vec::new();
            let mut antts = Vec::new();
            for p in &data.pairs {
                let iso = ctx.isolated_cycles(&[&p.pair.a, &p.pair.b]);
                let base = fairness(&p.left_over, &iso).max(1e-12);
                let f = fairness(get(p), &iso);
                ratios.push(f / base);
                antts.push(antt(get(p), &iso));
            }
            (
                name,
                PolicyFairness {
                    fairness_vs_leftover: gmean(&ratios),
                    antt: antts.iter().sum::<f64>() / antts.len().max(1) as f64,
                },
            )
        })
        .collect()
}

/// Computes Fig. 9 aggregates for 3-kernel workloads from the Fig. 8 runs,
/// normalizing each kernel by its own isolated cycle count from `ctx`'s
/// isolation memo.
#[must_use]
pub fn three_kernel(
    ctx: &ExperimentContext,
    data: &[TripleResult],
) -> Vec<(&'static str, PolicyFairness)> {
    let policies: [(&'static str, TripleSelector); 3] = [
        ("Spatial", Box::new(|t| &t.spatial)),
        ("Even", Box::new(|t| &t.even)),
        ("Dynamic", Box::new(|t| &t.dynamic)),
    ];
    policies
        .into_iter()
        .map(|(name, get)| {
            let mut ratios = Vec::new();
            let mut antts = Vec::new();
            for t in data {
                let iso = ctx.isolated_cycles(&[&t.triple.a, &t.triple.b, &t.triple.c]);
                let base = fairness(&t.left_over, &iso).max(1e-12);
                ratios.push(fairness(get(t), &iso) / base);
                antts.push(antt(get(t), &iso));
            }
            (
                name,
                PolicyFairness {
                    fairness_vs_leftover: gmean(&ratios),
                    antt: antts.iter().sum::<f64>() / antts.len().max(1) as f64,
                },
            )
        })
        .collect()
}

/// Renders both panels of Fig. 9.
#[must_use]
pub fn render(
    two: &[(&'static str, PolicyFairness)],
    three: &[(&'static str, PolicyFairness)],
) -> String {
    let mut t = Table::new(vec![
        "Policy",
        "Fairness 2K",
        "ANTT 2K",
        "Fairness 3K",
        "ANTT 3K",
    ]);
    for (name, f2k) in two {
        let f3k = three.iter().find(|(n, _)| n == name).map(|(_, f)| f);
        t.row(vec![
            (*name).to_string(),
            f2(f2k.fairness_vs_leftover),
            f2(f2k.antt),
            f3k.map_or("-".to_string(), |f| f2(f.fairness_vs_leftover)),
            f3k.map_or("-".to_string(), |f| f2(f.antt)),
        ]);
    }
    format!(
        "Fig. 9: fairness (min speedup, normalized to Left-Over) and ANTT\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExperimentContext;
    use crate::experiments::fig6;
    use ws_workloads::{by_abbrev, Pair, PairCategory};

    #[test]
    fn fairness_aggregates_compute() {
        let ctx = ExperimentContext::new(10_000);
        let pair = Pair {
            a: by_abbrev("IMG").unwrap(),
            b: by_abbrev("BLK").unwrap(),
            category: PairCategory::ComputeMemory,
        };
        let data = Fig6Data {
            pairs: vec![fig6::run_pair(&ctx, &pair, false)],
        };
        let two = two_kernel(&ctx, &data);
        assert_eq!(two.len(), 3);
        for (name, f) in &two {
            assert!(
                f.fairness_vs_leftover > 0.5,
                "{name}: {}",
                f.fairness_vs_leftover
            );
            assert!(f.antt >= 1.0, "{name} ANTT {}", f.antt);
        }
        let s = render(&two, &[]);
        assert!(s.contains("Fairness 2K"));
    }
}
