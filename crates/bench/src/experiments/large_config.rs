//! Sec. V-H: the "less contended" configuration — 256 KB register file,
//! 96 KB shared memory, 32 CTA slots and 64 warps per SM. The paper reports
//! Warped-Slicer still improving performance and fairness by ~26 %.

use gpu_sim::GpuConfig;
use warped_slicer::{fairness, PolicyKind, RunConfig};
use ws_workloads::Pair;

use crate::context::ExperimentContext;
use crate::experiments::fig10::subset_pairs;
use crate::report::{f2, gmean, Table};

/// One pair's outcome under the large configuration.
#[derive(Debug, Clone)]
pub struct LargeRow {
    /// Workload label.
    pub label: String,
    /// Dynamic combined IPC normalized to Left-Over.
    pub dynamic_ipc: f64,
    /// Dynamic fairness normalized to Left-Over.
    pub dynamic_fairness: f64,
}

/// Runs the subset pairs (or any provided list) under the Sec. V-H config,
/// submitting all `pairs x 2` runs as one job batch.
pub fn compute(isolation_cycles: u64, pairs: &[Pair]) -> Vec<LargeRow> {
    let ctx = ExperimentContext::with_config(RunConfig {
        gpu: GpuConfig::large(),
        isolation_cycles,
        ..RunConfig::default()
    });
    let runs: Vec<(Vec<&ws_workloads::Benchmark>, PolicyKind)> = pairs
        .iter()
        .flat_map(|p| {
            [
                (vec![&p.a, &p.b], PolicyKind::LeftOver),
                (vec![&p.a, &p.b], ctx.dynamic_policy()),
            ]
        })
        .collect();
    let results = ctx.corun_batch(&runs);
    pairs
        .iter()
        .zip(results.chunks(2))
        .map(|(p, chunk)| {
            let [lo, dy] = chunk else {
                unreachable!("corun_batch returns two results per pair")
            };
            let iso = ctx.isolated_cycles(&[&p.a, &p.b]);
            LargeRow {
                label: format!("{}_{}", p.a.abbrev, p.b.abbrev),
                dynamic_ipc: dy.combined_ipc / lo.combined_ipc.max(1e-12),
                dynamic_fairness: fairness(dy, &iso) / fairness(lo, &iso).max(1e-12),
            }
        })
        .collect()
}

/// Convenience: the default subset.
pub fn compute_default(isolation_cycles: u64) -> Vec<LargeRow> {
    compute(isolation_cycles, &subset_pairs())
}

/// Renders Sec. V-H.
#[must_use]
pub fn render(rows: &[LargeRow]) -> String {
    let mut t = Table::new(vec!["Pair", "Dynamic IPC vs LO", "Dynamic fairness vs LO"]);
    for r in rows {
        t.row(vec![
            r.label.clone(),
            f2(r.dynamic_ipc),
            f2(r.dynamic_fairness),
        ]);
    }
    let g_ipc = gmean(&rows.iter().map(|r| r.dynamic_ipc).collect::<Vec<_>>());
    let g_fair = gmean(&rows.iter().map(|r| r.dynamic_fairness).collect::<Vec<_>>());
    t.row(vec!["GMEAN".to_string(), f2(g_ipc), f2(g_fair)]);
    format!(
        "Sec. V-H: large configuration (256KB RF, 96KB shm, 32 CTAs, 64 warps)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_config_still_benefits_from_slicing() {
        let pairs = vec![subset_pairs().remove(1)]; // MM_BLK
        let rows = compute(10_000, &pairs);
        assert_eq!(rows.len(), 1);
        assert!(
            rows[0].dynamic_ipc > 0.9,
            "dynamic should not collapse: {}",
            rows[0].dynamic_ipc
        );
        assert!(render(&rows).contains("GMEAN"));
    }
}
