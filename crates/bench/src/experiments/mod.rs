//! One module per paper artifact (table or figure), plus ablations.
//!
//! Every module exposes a `compute`-style function returning plain data and
//! a `render` function producing the printable table, so the CLI binary,
//! the Criterion benches, and tests all share the same entry points.

pub mod ablation;
pub mod energy;
pub mod fig1;
pub mod fig10;
pub mod fig2;
pub mod fig3;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod large_config;
pub mod overhead;
pub mod table1;
pub mod table2;
pub mod table3;
