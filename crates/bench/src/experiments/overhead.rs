//! Sec. V-I: hardware implementation overhead.
//!
//! The paper synthesized the profiling counters and the Algorithm 1 logic
//! with the NCSU PDK 45 nm library. There is no RTL to synthesize in this
//! reproduction, so this module documents the counter inventory our
//! implementation actually requires per SM and reproduces the paper's
//! reported area/power figures as constants for comparison.

use crate::report::Table;

/// One hardware counter/register the mechanism needs.
#[derive(Debug, Clone, Copy)]
pub struct CounterSpec {
    /// What the counter tracks.
    pub name: &'static str,
    /// Bits required.
    pub bits: u32,
    /// Instances per SM.
    pub per_sm: u32,
}

/// The per-SM counter inventory implied by the profiling strategy: one
/// instruction counter, one memory-stall counter, one DRAM-transaction
/// counter, plus sampling-window bookkeeping.
#[must_use]
pub fn counter_inventory() -> Vec<CounterSpec> {
    vec![
        CounterSpec {
            name: "issued-instruction counter (sampling window)",
            bits: 24,
            per_sm: 1,
        },
        CounterSpec {
            name: "long-memory-stall counter (phi_mem)",
            bits: 24,
            per_sm: 1,
        },
        CounterSpec {
            name: "DRAM-transaction counter (bandwidth scaling)",
            bits: 20,
            per_sm: 1,
        },
        CounterSpec {
            name: "resident-CTA quota register (per kernel slot)",
            bits: 4,
            per_sm: 4,
        },
        CounterSpec {
            name: "partition-window base/limit (regs + shmem, per kernel)",
            bits: 32,
            per_sm: 4,
        },
    ]
}

/// Paper-reported synthesis results (NCSU PDK 45 nm): kept as constants
/// for the comparison table.
pub mod paper {
    /// Sampling counters per SM (um^2).
    pub const COUNTERS_UM2_PER_SM: f64 = 714.0;
    /// Global Algorithm 1 logic (mm^2).
    pub const GLOBAL_LOGIC_MM2: f64 = 0.04;
    /// Total area overhead for 16 SMs (mm^2).
    pub const TOTAL_MM2: f64 = 0.05;
    /// 16-SM GPU area from GPUWattch (mm^2).
    pub const GPU_MM2: f64 = 704.0;
    /// Area overhead fraction.
    pub const AREA_OVERHEAD: f64 = 0.0001;
    /// Dynamic power overhead (mW).
    pub const DYNAMIC_MW: f64 = 54.0;
    /// Leakage power overhead (mW).
    pub const LEAKAGE_MW: f64 = 0.27;
}

/// Renders the overhead report.
#[must_use]
pub fn render() -> String {
    let mut t = Table::new(vec!["Structure", "Bits", "Per SM", "Total bits (16 SMs)"]);
    let mut total_bits = 0u32;
    for c in counter_inventory() {
        let bits = c.bits * c.per_sm;
        total_bits += bits;
        t.row(vec![
            c.name.to_string(),
            format!("{}", c.bits),
            format!("{}", c.per_sm),
            format!("{}", bits * 16),
        ]);
    }
    format!(
        "Sec. V-I: implementation overhead\n{}\nTotal per-SM state: {} bits (~{} bytes).\n\
         Paper synthesis (45nm): {}um^2/SM counters + {}mm^2 global logic = {}mm^2 total \
         over a {}mm^2 GPU ({:.2}% area), {}mW dynamic / {}mW leakage.\n",
        t.render(),
        total_bits,
        total_bits.div_ceil(8),
        paper::COUNTERS_UM2_PER_SM,
        paper::GLOBAL_LOGIC_MM2,
        paper::TOTAL_MM2,
        paper::GPU_MM2,
        paper::AREA_OVERHEAD * 100.0,
        paper::DYNAMIC_MW,
        paper::LEAKAGE_MW,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_is_small() {
        let total: u32 = counter_inventory().iter().map(|c| c.bits * c.per_sm).sum();
        // The whole mechanism needs only a few hundred bits of state per SM,
        // consistent with the paper's negligible-area claim.
        assert!(total < 1024, "{total} bits");
        assert!(render().contains("45nm"));
    }
}
