//! Table I: the baseline configuration.

use gpu_sim::GpuConfig;

use crate::report::Table;

/// Renders Table I from the live configuration structure (so the printout
/// can never drift from what the simulator actually uses).
#[must_use]
pub fn render(cfg: &GpuConfig) -> String {
    let mut t = Table::new(vec!["Parameter", "Value"]);
    t.row(vec![
        "Compute Units".to_string(),
        format!(
            "{}, {}MHz, SIMT Width = {}x{}",
            cfg.num_sms, cfg.core_clock_mhz, cfg.sm.simt_width, cfg.sm.num_schedulers
        ),
    ]);
    t.row(vec![
        "Resources / Core".to_string(),
        format!(
            "max {} Threads, {} Registers, max {} CTAs, {}KB Shared Memory",
            cfg.sm.max_threads,
            cfg.sm.max_registers,
            cfg.sm.max_ctas,
            cfg.sm.shared_mem_bytes / 1024
        ),
    ]);
    t.row(vec![
        "Warp Schedulers".to_string(),
        format!("{} per SM, default gto", cfg.sm.num_schedulers),
    ]);
    t.row(vec![
        "L1 Data Cache".to_string(),
        format!(
            "{}KB {}-way {}MSHR",
            cfg.l1.size_bytes / 1024,
            cfg.l1.assoc,
            cfg.l1.mshr_entries
        ),
    ]);
    t.row(vec![
        "L2 Cache".to_string(),
        format!(
            "{}KB/Memory Channel, {}-way",
            cfg.l2.size_bytes_per_channel / 1024,
            cfg.l2.assoc
        ),
    ]);
    t.row(vec![
        "Memory Model".to_string(),
        format!(
            "{} MCs, FR-FCFS, {}MHz",
            cfg.mem.num_channels, cfg.mem.dram_clock_mhz
        ),
    ]);
    let tm = &cfg.mem.timing;
    t.row(vec![
        "GDDR5 Timing".to_string(),
        format!(
            "tCL={}, tRP={}, tRC={}, tRAS={}, tRCD={}, tRRD={}",
            tm.t_cl, tm.t_rp, tm.t_rc, tm.t_ras, tm.t_rcd, tm.t_rrd
        ),
    ]);
    format!("Table I: Baseline configuration\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_table_i_values() {
        let s = render(&GpuConfig::isca_baseline());
        assert!(s.contains("16, 1400MHz"));
        assert!(s.contains("max 1536 Threads"));
        assert!(s.contains("16KB 4-way 64MSHR"));
        assert!(s.contains("128KB/Memory Channel"));
        assert!(s.contains("tCL=12"));
    }
}
