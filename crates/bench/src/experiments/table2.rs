//! Table II: per-benchmark resource utilization, functional-unit usage,
//! L2 MPKI, and type classification, measured from isolation runs and
//! printed beside the paper's values.

use warped_slicer::WarpedSlicerConfig;
use ws_workloads::{suite, Benchmark, WorkloadClass};

use crate::context::ExperimentContext;
use crate::report::{pct, Table};

/// One measured Table II row.
#[derive(Debug, Clone)]
pub struct Row {
    /// The benchmark.
    pub bench: Benchmark,
    /// Warp instructions executed in the isolation budget.
    pub insts: u64,
    /// Measured register occupancy (fraction).
    pub reg: f64,
    /// Measured shared-memory occupancy (fraction).
    pub shm: f64,
    /// Measured ALU utilization.
    pub alu: f64,
    /// Measured SFU utilization.
    pub sfu: f64,
    /// Measured LSU utilization.
    pub ls: f64,
    /// Measured L2 MPKI.
    pub l2_mpki: f64,
    /// Class implied by the measured MPKI and benchmark metadata.
    pub measured_class: WorkloadClass,
    /// Profiling overhead: (warm-up + sample) cycles over the isolation
    /// budget (the paper's `Profile%` column analog).
    pub profile_pct: f64,
}

/// The measured-MPKI threshold separating memory-intensive benchmarks; the
/// paper uses 30 on its workloads, we use the midpoint of the same gap in
/// our measured distribution.
#[must_use]
pub fn classify(bench: &Benchmark, l2_mpki: f64) -> WorkloadClass {
    if bench.class == WorkloadClass::Cache {
        // Cache sensitivity is a scaling property (Fig. 3a), not an MPKI
        // threshold; it is carried by the suite metadata.
        WorkloadClass::Cache
    } else if l2_mpki >= 30.0 {
        WorkloadClass::Memory
    } else {
        WorkloadClass::Compute
    }
}

/// Measures every suite benchmark (one isolation batch).
pub fn compute(ctx: &ExperimentContext) -> Vec<Row> {
    let ws = WarpedSlicerConfig::scaled_for(ctx.cfg.isolation_cycles);
    let profile_cycles = ws.timing.warmup + ws.timing.sample;
    let benches = suite();
    let isos = ctx.isolation_batch(&benches.iter().collect::<Vec<_>>());
    benches
        .into_iter()
        .zip(isos)
        .map(|(bench, iso)| {
            let s = &iso.stats;
            Row {
                insts: s.insts,
                reg: s.util.reg,
                shm: s.util.shmem,
                alu: s.util.alu,
                sfu: s.util.sfu,
                ls: s.util.lsu,
                l2_mpki: s.l2_mpki_per_kernel[0],
                measured_class: classify(&bench, s.l2_mpki_per_kernel[0]),
                profile_pct: profile_cycles as f64 / ctx.cfg.isolation_cycles as f64,
                bench,
            }
        })
        .collect()
}

/// Renders the measured-vs-paper table.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(vec![
        "App", "Inst", "Reg", "(paper)", "Shm", "(paper)", "ALU", "(paper)", "SFU", "(paper)",
        "LS", "(paper)", "MPKI", "(paper)", "Type", "Profile%",
    ]);
    for r in rows {
        t.row(vec![
            r.bench.abbrev.to_string(),
            format!("{:.1}M", r.insts as f64 / 1e6),
            pct(r.reg),
            pct(r.bench.paper.reg),
            pct(r.shm),
            pct(r.bench.paper.shm),
            pct(r.alu),
            pct(r.bench.paper.alu),
            pct(r.sfu),
            pct(r.bench.paper.sfu),
            pct(r.ls),
            pct(r.bench.paper.ls),
            format!("{:.1}", r.l2_mpki),
            format!("{:.1}", r.bench.paper.l2_mpki),
            r.measured_class.to_string(),
            pct(r.profile_pct),
        ]);
    }
    format!(
        "Table II: benchmark characterization (measured vs. paper)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_rows_have_sane_shapes() {
        let ctx = ExperimentContext::new(6_000);
        let rows = compute(&ctx);
        assert_eq!(rows.len(), 10);
        for r in &rows {
            assert!(r.insts > 0, "{} ran", r.bench.abbrev);
            assert!((0.0..=1.0).contains(&r.reg));
            assert!((0.0..=1.0).contains(&r.alu));
        }
        let s = render(&rows);
        assert!(s.contains("BLK"));
        assert!(s.contains("Profile%"));
    }

    #[test]
    fn classify_uses_threshold_and_metadata() {
        let nn = ws_workloads::by_abbrev("NN").unwrap();
        assert_eq!(classify(&nn, 500.0), WorkloadClass::Cache);
        let blk = ws_workloads::by_abbrev("BLK").unwrap();
        assert_eq!(classify(&blk, 100.0), WorkloadClass::Memory);
        assert_eq!(classify(&blk, 5.0), WorkloadClass::Compute);
    }
}
