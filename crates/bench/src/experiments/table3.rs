//! Table III: the CTA partitions chosen by Warped-Slicer (Dyn) versus the
//! Even policy's effective allocation, for every pair.

use gpu_sim::GpuConfig;
use ws_workloads::Benchmark;

use crate::experiments::fig6::Fig6Data;
use crate::report::Table;

/// The CTA count the Even policy's `1/K` windows can actually hold for one
/// kernel (its "effective" quota — the numbers in the paper's Even column).
#[must_use]
pub fn even_effective_ctas(bench: &Benchmark, cfg: &GpuConfig, k: u32) -> u32 {
    let d = &bench.desc;
    let by_slots = (cfg.sm.max_ctas / k).max(1);
    let by_threads = (cfg.sm.max_threads / k) / d.threads_per_cta.max(1);
    let by_regs = (cfg.sm.max_registers / k)
        .checked_div(d.regs_per_cta())
        .unwrap_or(by_slots);
    let by_shm = (cfg.sm.shared_mem_bytes / k)
        .checked_div(d.shmem_per_cta)
        .unwrap_or(by_slots);
    by_slots.min(by_threads).min(by_regs).min(by_shm)
}

/// Renders Table III from the Fig. 6 runs' recorded decisions.
#[must_use]
pub fn render(data: &Fig6Data, cfg: &GpuConfig) -> String {
    let mut t = Table::new(vec!["Workload", "Dyn", "Even", "Predicted perf"]);
    for p in &data.pairs {
        let dyn_cell = match &p.dynamic.decision {
            Some(d) if d.spatial_fallback => "spatial".to_string(),
            Some(d) => {
                // Invariant: non-spatial decisions always carry quotas.
                // xtask-allow: no-unwrap
                let q = d.quotas.as_ref().expect("quotas when not spatial");
                format!("({},{})", q[0], q[1])
            }
            None => "-".to_string(),
        };
        let even_cell = format!(
            "({},{})",
            even_effective_ctas(&p.pair.a, cfg, 2),
            even_effective_ctas(&p.pair.b, cfg, 2)
        );
        let pred = match &p.dynamic.decision {
            Some(d) if !d.predicted_perf.is_empty() => {
                format!("{:.2}/{:.2}", d.predicted_perf[0], d.predicted_perf[1])
            }
            _ => "-".to_string(),
        };
        t.row(vec![p.pair.label(), dyn_cell, even_cell, pred]);
    }
    format!(
        "Table III: resource partitioning, Warped-Slicer (Dyn) vs Even\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ws_workloads::by_abbrev;

    #[test]
    fn even_effective_matches_half_resources() {
        let cfg = GpuConfig::isca_baseline();
        // BFS: 512-thread CTAs; half an SM holds 768 threads -> 1 CTA.
        assert_eq!(even_effective_ctas(&by_abbrev("BFS").unwrap(), &cfg, 2), 1);
        // IMG: 64 threads x 28 regs: half slots (4) bind.
        assert_eq!(even_effective_ctas(&by_abbrev("IMG").unwrap(), &cfg, 2), 4);
        // HOT: half threads 768/256 = 3.
        assert_eq!(even_effective_ctas(&by_abbrev("HOT").unwrap(), &cfg, 2), 3);
    }

    #[test]
    fn three_way_split_shrinks_quotas() {
        let cfg = GpuConfig::isca_baseline();
        let img = by_abbrev("IMG").unwrap();
        assert!(even_effective_ctas(&img, &cfg, 3) <= even_effective_ctas(&img, &cfg, 2));
    }
}
