//! # ws-bench
//!
//! The experiment harness for the Warped-Slicer reproduction: regenerates
//! every table and figure of the paper's evaluation from the simulator, and
//! exposes the same entry points to the `experiments` binary, the
//! dependency-free [`microbench`] benches, and the test suite.
//!
//! See DESIGN.md §4 for the per-experiment index and EXPERIMENTS.md for the
//! paper-vs-measured record.

pub mod context;
pub mod experiments;
pub mod microbench;
pub mod report;

pub use context::{ExperimentContext, JobProgress, JobProgressSink, PairDecision};
pub use microbench::Runner;
