//! # ws-bench
//!
//! The experiment harness for the Warped-Slicer reproduction: regenerates
//! every table and figure of the paper's evaluation from the simulator, and
//! exposes the same entry points to the `experiments` binary, the Criterion
//! benches, and the test suite.
//!
//! See DESIGN.md §4 for the per-experiment index and EXPERIMENTS.md for the
//! paper-vs-measured record.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod context;
pub mod experiments;
pub mod report;

pub use context::ExperimentContext;
