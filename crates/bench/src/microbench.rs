//! A dependency-free micro-benchmark harness.
//!
//! Replaces Criterion so the workspace resolves `--offline`: the bench
//! targets (`harness = false`) call into this module from a plain `main`.
//! The harness auto-calibrates the iteration count to a wall-clock budget,
//! reports min/median/mean per-iteration times, and honours the standard
//! libtest-style `--bench <filter>` argument so `cargo bench foo` still
//! narrows the run.
//!
//! It intentionally does *not* attempt statistical change detection; the
//! goal is a stable, offline-runnable smoke-and-magnitude signal, not a
//! regression oracle.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Per-sample wall-clock budget. Overridable via `WS_BENCH_MS` for CI, where
/// a 1 ms budget keeps `cargo bench` under a second per target.
fn sample_budget() -> Duration {
    let ms = std::env::var("WS_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(100);
    Duration::from_millis(ms.max(1))
}

/// Number of timed samples per benchmark.
const SAMPLES: usize = 7;

/// A named group of benchmarks, printed as `group/name  ...` rows.
pub struct Runner {
    group: String,
    filter: Option<String>,
}

impl Runner {
    /// Creates a runner; reads the CLI filter from `std::env::args` (any
    /// non-flag argument narrows which benchmarks run, as with libtest).
    #[must_use]
    pub fn new(group: &str) -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        Self {
            group: group.to_string(),
            filter,
        }
    }

    fn enabled(&self, name: &str) -> bool {
        match &self.filter {
            Some(f) => format!("{}/{}", self.group, name).contains(f.as_str()),
            None => true,
        }
    }

    /// Benchmarks `f`, timing repeated calls.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        if !self.enabled(name) {
            return;
        }
        let budget = sample_budget();
        // Calibrate: grow the batch until one batch costs >= budget/8.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed * 8 >= budget || iters >= 1 << 30 {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        let mut per_iter: Vec<Duration> = (0..SAMPLES)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                t.elapsed() / u32::try_from(iters).unwrap_or(u32::MAX)
            })
            .collect();
        per_iter.sort_unstable();
        self.report(name, &per_iter, iters);
    }

    /// Benchmarks `run` over fresh states from `setup`; only `run` is timed.
    /// The per-call setup makes this the analogue of Criterion's
    /// `iter_batched`, for workloads that consume their input.
    pub fn bench_batched<S, R>(
        &mut self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut run: impl FnMut(S) -> R,
    ) {
        if !self.enabled(name) {
            return;
        }
        let budget = sample_budget();
        let mut per_iter: Vec<Duration> = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let mut total = Duration::ZERO;
            let mut iters: u64 = 0;
            while total < budget / SAMPLES as u32 || iters == 0 {
                let state = setup();
                let t = Instant::now();
                black_box(run(state));
                total += t.elapsed();
                iters += 1;
            }
            per_iter.push(total / u32::try_from(iters).unwrap_or(u32::MAX));
        }
        per_iter.sort_unstable();
        self.report(name, &per_iter, 1);
    }

    fn report(&self, name: &str, sorted: &[Duration], iters: u64) {
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / u32::try_from(sorted.len()).unwrap_or(1);
        println!(
            "{:<44} min {:>12?}  median {:>12?}  mean {:>12?}  ({} iters/sample)",
            format!("{}/{}", self.group, name),
            min,
            median,
            mean,
            iters,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        std::env::set_var("WS_BENCH_MS", "1");
        let mut r = Runner {
            group: "test".into(),
            filter: None,
        };
        let mut n = 0u64;
        r.bench("counter", || {
            n = n.wrapping_add(1);
            n
        });
        assert!(n > 0, "closure must have been driven");
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut r = Runner {
            group: "test".into(),
            filter: Some("other".into()),
        };
        let mut ran = false;
        r.bench("skipped", || ran = true);
        assert!(!ran);
    }

    #[test]
    fn batched_times_only_run() {
        std::env::set_var("WS_BENCH_MS", "1");
        let mut r = Runner {
            group: "test".into(),
            filter: None,
        };
        let mut setups = 0u64;
        r.bench_batched(
            "batched",
            || {
                setups += 1;
                vec![1u8; 16]
            },
            |v| v.len(),
        );
        assert!(setups > 0);
    }
}
