//! Tiny fixed-width table printer for experiment output.

/// A plain-text table accumulated row by row.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let mut cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV (RFC-4180-style quoting for cells that
    /// need it).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let quote = |c: &str| -> String {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Renders the table.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{c:<w$}", w = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio as `1.23`.
#[must_use]
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a fraction as a percentage `42.0%`.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Geometric mean of a slice (1.0 for empty input).
#[must_use]
pub fn gmean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    (xs.iter().map(|x| x.max(1e-12).ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["name", "v"]);
        t.row(vec!["a", "1.00"]);
        t.row(vec!["longer", "2"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a "));
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["x"]);
        assert!(t.render().contains('x'));
    }

    #[test]
    fn csv_quotes_only_when_needed() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["plain", "needs,quote"]);
        t.row(vec!["has\"q", "x"]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "plain,\"needs,quote\"");
        assert_eq!(lines[2], "\"has\"\"q\",x");
    }

    #[test]
    fn gmean_is_geometric() {
        assert!((gmean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(gmean(&[]), 1.0);
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(pct(0.421), "42.1%");
    }
}
