//! The execution layer's determinism contract, pinned end to end: rendered
//! experiment tables must be byte-identical whether the pool runs with one
//! worker (the historical serial harness) or many.

use warped_slicer::{PolicyKind, RunConfig};
use ws_bench::experiments::{fig3, fig6};
use ws_bench::ExperimentContext;
use ws_workloads::{by_abbrev, Pair, PairCategory};

fn ctx_with(threads: usize, isolation_cycles: u64) -> ExperimentContext {
    let cfg = RunConfig {
        isolation_cycles,
        ..RunConfig::default()
    };
    ExperimentContext::with_pool(cfg, ws_exec::Pool::new(threads))
}

#[test]
fn fig3_render_is_byte_identical_across_worker_counts() {
    let serial = fig3::render(&fig3::compute(&ctx_with(1, 4_000), 2_000));
    let parallel = fig3::render(&fig3::compute(&ctx_with(8, 4_000), 2_000));
    assert_eq!(serial, parallel);
}

#[test]
fn corun_experiment_is_byte_identical_across_worker_counts() {
    let pair = Pair {
        a: by_abbrev("IMG").expect("suite"),
        b: by_abbrev("NN").expect("suite"),
        category: PairCategory::ComputeCache,
    };
    let render = |threads: usize| {
        let ctx = ctx_with(threads, 6_000);
        let data = fig6::Fig6Data {
            pairs: vec![fig6::run_pair(&ctx, &pair, false)],
        };
        fig6::render(&data)
    };
    assert_eq!(render(1), render(8));
}

#[test]
fn corun_batch_matches_sequential_coruns() {
    let img = by_abbrev("IMG").expect("suite");
    let mm = by_abbrev("MM").expect("suite");
    let ctx = ctx_with(4, 4_000);
    let batch = ctx.corun_batch(&[
        (vec![&img, &mm], PolicyKind::Even),
        (vec![&img, &mm], PolicyKind::Spatial),
    ]);
    let even = ctx.corun(&[&img, &mm], &PolicyKind::Even);
    let spatial = ctx.corun(&[&img, &mm], &PolicyKind::Spatial);
    assert_eq!(batch[0].total_cycles, even.total_cycles);
    assert_eq!(batch[0].finish_cycle, even.finish_cycle);
    assert_eq!(batch[1].total_cycles, spatial.total_cycles);
    assert_eq!(batch[1].finish_cycle, spatial.finish_cycle);
}
