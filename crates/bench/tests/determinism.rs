//! The execution layer's determinism contract, pinned end to end: rendered
//! experiment tables must be byte-identical whether the pool runs with one
//! worker (the historical serial harness) or many — including under
//! work-stealing with heavily skewed job sizes, and for the pipelined
//! profile→decide harness against its barriered baseline.

use std::sync::{Arc, Mutex, PoisonError};

use warped_slicer::{execute_batch, PolicyKind, RunConfig, SimJob};
use ws_bench::experiments::{fig3, fig6};
use ws_bench::ExperimentContext;
use ws_workloads::{all_pairs, by_abbrev, Pair, PairCategory};

fn ctx_with(threads: usize, isolation_cycles: u64) -> ExperimentContext {
    let cfg = RunConfig {
        isolation_cycles,
        ..RunConfig::default()
    };
    ExperimentContext::with_pool(cfg, ws_exec::Pool::new(threads))
}

#[test]
fn fig3_render_is_byte_identical_across_worker_counts() {
    let serial = fig3::render(&fig3::compute(&ctx_with(1, 4_000), 2_000));
    let parallel = fig3::render(&fig3::compute(&ctx_with(8, 4_000), 2_000));
    assert_eq!(serial, parallel);
}

#[test]
fn corun_experiment_is_byte_identical_across_worker_counts() {
    let pair = Pair {
        a: by_abbrev("IMG").expect("suite"),
        b: by_abbrev("NN").expect("suite"),
        category: PairCategory::ComputeCache,
    };
    let render = |threads: usize| {
        let ctx = ctx_with(threads, 6_000);
        let data = fig6::Fig6Data {
            pairs: vec![fig6::run_pair(&ctx, &pair, false)],
        };
        fig6::render(&data)
    };
    assert_eq!(render(1), render(8));
}

#[test]
fn skewed_sim_batch_is_byte_identical_under_stealing() {
    // One 40k-cycle isolation job among 2k-cycle ones: the long job pins
    // its worker while the stolen short ones finish around it. Outcomes
    // must match the serial run field for field.
    let img = by_abbrev("IMG").expect("suite");
    let lbm = by_abbrev("LBM").expect("suite");
    let jobs: Vec<SimJob> = (0..12)
        .map(|i| {
            let (desc, cycles) = if i == 3 {
                (&lbm.desc, 40_000)
            } else {
                (&img.desc, 2_000)
            };
            SimJob::cta_cap(desc, (i % 4) + 1, cycles, &RunConfig::default())
        })
        .collect();
    let serial = execute_batch(&ws_exec::Pool::new(1), &jobs);
    let stolen = execute_batch(&ws_exec::Pool::new(8), &jobs);
    for (i, (a, b)) in serial.iter().zip(&stolen).enumerate() {
        assert_eq!(a.end_insts, b.end_insts, "job {i} insts");
        assert_eq!(a.total_cycles, b.total_cycles, "job {i} cycles");
        assert!((a.measured_ipc() - b.measured_ipc()).abs() < f64::EPSILON);
    }
}

#[test]
fn decide_pairs_pipelined_matches_barriered_at_any_worker_count() {
    // The pipelined profile→decide harness must produce byte-identical
    // decisions to the barriered baseline, serial and under stealing.
    let pairs: Vec<Pair> = all_pairs().into_iter().take(4).collect();
    let serial = ctx_with(1, 3_000).decide_pairs(&pairs, 1_500);
    for threads in [1usize, 8] {
        let ctx = ctx_with(threads, 3_000);
        let barriered = ctx.decide_pairs(&pairs, 1_500);
        let pipelined = ctx.decide_pairs_pipelined(&pairs, 1_500);
        assert_eq!(barriered, pipelined, "threads={threads}");
        assert_eq!(serial, pipelined, "threads={threads} vs serial");
    }
    for d in &serial {
        assert_eq!(d.quotas.len(), 2, "{} infeasible", d.label);
        assert!(d.samples_run >= 4, "{} sampled too little", d.label);
    }
}

#[test]
fn job_progress_shape_is_deterministic_across_worker_counts() {
    // The per-job progress sink reports completion-count order: seq must
    // be 1..=total at 1 and at 8 workers; only the finishing JobId may
    // differ with scheduling.
    let img = by_abbrev("IMG").expect("suite");
    let mm = by_abbrev("MM").expect("suite");
    let run = |threads: usize| -> Vec<(String, usize, usize)> {
        let mut ctx = ctx_with(threads, 3_000);
        let events = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&events);
        ctx.set_job_progress(Box::new(move |p| {
            sink.lock().unwrap_or_else(PoisonError::into_inner).push((
                p.label.clone(),
                p.seq,
                p.total,
            ));
        }));
        let _ = ctx.corun_batch(&[
            (vec![&img, &mm], PolicyKind::Even),
            (vec![&img, &mm], PolicyKind::Spatial),
            (vec![&img, &mm], PolicyKind::LeftOver),
        ]);
        let out = events.lock().unwrap_or_else(PoisonError::into_inner);
        out.clone()
    };
    let serial = run(1);
    let parallel = run(8);
    // Identical shape: same labels, same seq sequences, same totals.
    assert_eq!(serial, parallel);
    let coruns: Vec<usize> = serial
        .iter()
        .filter(|(l, _, _)| l == "corun")
        .map(|&(_, seq, _)| seq)
        .collect();
    assert_eq!(coruns, vec![1, 2, 3]);
}

#[test]
fn corun_batch_matches_sequential_coruns() {
    let img = by_abbrev("IMG").expect("suite");
    let mm = by_abbrev("MM").expect("suite");
    let ctx = ctx_with(4, 4_000);
    let batch = ctx.corun_batch(&[
        (vec![&img, &mm], PolicyKind::Even),
        (vec![&img, &mm], PolicyKind::Spatial),
    ]);
    let even = ctx.corun(&[&img, &mm], &PolicyKind::Even);
    let spatial = ctx.corun(&[&img, &mm], &PolicyKind::Spatial);
    assert_eq!(batch[0].total_cycles, even.total_cycles);
    assert_eq!(batch[0].finish_cycle, even.finish_cycle);
    assert_eq!(batch[1].total_cycles, spatial.total_cycles);
    assert_eq!(batch[1].finish_cycle, spatial.finish_cycle);
}
