//! Standalone simulator driver.
//!
//! Three modes:
//!
//! * **Single-kernel** (default): describe a synthetic kernel on the
//!   command line, run it on the Table I GPU, and print a statistics
//!   report.
//! * **`--analyze`**: no simulation; the full ws-analyze rule catalogue
//!   runs over the kernel and the report — derived static metrics,
//!   per-resource Eq. 1 occupancy quotas, every diagnostic — is printed.
//!   Exits non-zero when any error-severity diagnostic is emitted (the
//!   same findings that fail the `Gpu` launch pre-flight).
//! * **`--predict`**: no simulation; the ws-predict static performance
//!   analyzer prints the predicted IPC-vs-CTA curve, the predicted knee,
//!   and the pruned profiling window the dynamic controller would use.
//!   Exits non-zero on error-severity diagnostics.
//! * **`--corun A,B[,C]`**: run the named benchmark workloads (Table II
//!   abbreviations) concurrently under the paper's equal-work methodology
//!   and print fairness/ANTT. With `--trace FILE` the run captures the
//!   ws-trace event stream and the Warped-Slicer decision audit and writes
//!   them as JSONL; `--chrome FILE` additionally writes a Chrome
//!   `trace_event` document for `chrome://tracing` / Perfetto.
//!
//! `--validate-trace FILE` checks a previously written JSONL trace against
//! the ws-trace schema and exits.
//!
//! **`store`** manages a persistent ws-store performance-curve file
//! (versioned JSONL, validated against the ws-trace schema on every read
//! and write):
//!
//! * `store warm FILE --corun A,B` loads the store (or creates it), runs
//!   the co-run with the store attached to the dynamic controller —
//!   first arrival profiles cold and memoizes, repeat arrivals decide
//!   warm — then writes the updated store back to `FILE`.
//! * `store inspect FILE` prints every memoized curve in insertion order.
//! * `store clear FILE` resets the file to an empty store.
//!
//! ```text
//! gpu-sim [--threads N] [--regs N] [--shmem BYTES] [--grid N]
//!         [--body N] [--iters N] [--alu F] [--sfu F] [--gload F]
//!         [--gstore F] [--shm-frac F] [--barrier F] [--dep N]
//!         [--pattern streaming|random:LINES|tiled:TILE,REUSE|hotcold:HOT,FRAC]
//!         [--transactions N] [--icache-miss F] [--conflicts N]
//!         [--ctas-per-sm N] [--cycles N] [--sched gto|rr] [--large]
//!         [--analyze | --predict]
//! gpu-sim --corun IMG,NN [--policy leftover|fcfs|even|spatial|dynamic]
//!         [--cycles N] [--trace FILE] [--chrome FILE] [--large]
//! gpu-sim --validate-trace FILE
//! gpu-sim store warm FILE --corun IMG,NN [--cycles N] [--capacity N] [--large]
//! gpu-sim store inspect FILE
//! gpu-sim store clear FILE [--capacity N]
//! ```

use std::process::ExitCode;

use gpu_sim::{AccessPattern, Gpu, GpuConfig, KernelDesc, ProgramSpec, SchedulerKind, StallReason};
use warped_slicer::store::DEFAULT_STORE_CAPACITY;
use warped_slicer::{
    antt, chrome_trace, execute, fairness, jsonl, run_isolation, validate_jsonl, CurveStore,
    PolicyKind, RunConfig, SharedCurveStore, SimJob, TraceOptions, WarpedSlicerConfig,
};
use ws_analyze::Severity;
use ws_workloads::by_abbrev;

#[derive(Debug)]
struct Args {
    threads: u32,
    regs: u32,
    shmem: u32,
    grid: u64,
    body: usize,
    iters: u32,
    sfu: f64,
    gload: f64,
    gstore: f64,
    shm_frac: f64,
    barrier: f64,
    dep: usize,
    pattern: AccessPattern,
    icache_miss: f64,
    conflicts: u32,
    ctas_per_sm: u32,
    cycles: u64,
    sched: SchedulerKind,
    large: bool,
    seed: u64,
    analyze: bool,
    predict: bool,
    corun: Option<Vec<String>>,
    policy: String,
    trace: Option<String>,
    chrome: Option<String>,
    validate: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            threads: 128,
            regs: 16,
            shmem: 0,
            grid: 10_000,
            body: 100,
            iters: 4,
            sfu: 0.05,
            gload: 0.1,
            gstore: 0.02,
            shm_frac: 0.0,
            barrier: 0.0,
            dep: 4,
            pattern: AccessPattern::Streaming { transactions: 1 },
            icache_miss: 0.0,
            conflicts: 1,
            ctas_per_sm: u32::MAX,
            cycles: 50_000,
            sched: SchedulerKind::GreedyThenOldest,
            large: false,
            seed: 1,
            analyze: false,
            predict: false,
            corun: None,
            policy: "dynamic".to_string(),
            trace: None,
            chrome: None,
            validate: None,
        }
    }
}

fn parse_pattern(v: &str, transactions: u32) -> Result<AccessPattern, String> {
    let (kind, rest) = v.split_once(':').unwrap_or((v, ""));
    match kind {
        "streaming" => Ok(AccessPattern::Streaming { transactions }),
        "random" => {
            let footprint_lines = rest
                .parse()
                .map_err(|_| format!("random:LINES expected, got {v}"))?;
            Ok(AccessPattern::Random {
                footprint_lines,
                transactions,
            })
        }
        "tiled" => {
            let (t, r) = rest
                .split_once(',')
                .ok_or_else(|| format!("tiled:TILE,REUSE expected, got {v}"))?;
            Ok(AccessPattern::Tiled {
                tile_lines: t.parse().map_err(|_| format!("bad tile size in {v}"))?,
                reuse: r.parse().map_err(|_| format!("bad reuse in {v}"))?,
                transactions,
            })
        }
        "hotcold" => {
            let (h, f) = rest
                .split_once(',')
                .ok_or_else(|| format!("hotcold:HOT_LINES,HOT_FRAC expected, got {v}"))?;
            Ok(AccessPattern::HotCold {
                hot_lines: h.parse().map_err(|_| format!("bad hot lines in {v}"))?,
                hot_frac: f.parse().map_err(|_| format!("bad hot fraction in {v}"))?,
                transactions,
            })
        }
        other => Err(format!("unknown pattern kind: {other}")),
    }
}

fn parse_args() -> Result<Args, String> {
    let mut out = Args::default();
    let mut transactions = 1u32;
    let mut pattern_arg: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "--large" {
            out.large = true;
            continue;
        }
        if flag == "--analyze" {
            out.analyze = true;
            continue;
        }
        if flag == "--predict" {
            out.predict = true;
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("{flag} requires a value"))?;
        let f = || -> Result<f64, String> {
            value
                .parse()
                .map_err(|_| format!("bad value for {flag}: {value}"))
        };
        match flag.as_str() {
            "--threads" => out.threads = value.parse().map_err(|e| format!("{flag}: {e}"))?,
            "--regs" => out.regs = value.parse().map_err(|e| format!("{flag}: {e}"))?,
            "--shmem" => out.shmem = value.parse().map_err(|e| format!("{flag}: {e}"))?,
            "--grid" => out.grid = value.parse().map_err(|e| format!("{flag}: {e}"))?,
            "--body" => out.body = value.parse().map_err(|e| format!("{flag}: {e}"))?,
            "--iters" => out.iters = value.parse().map_err(|e| format!("{flag}: {e}"))?,
            "--sfu" => out.sfu = f()?,
            "--gload" => out.gload = f()?,
            "--gstore" => out.gstore = f()?,
            "--shm-frac" => out.shm_frac = f()?,
            "--barrier" => out.barrier = f()?,
            "--dep" => out.dep = value.parse().map_err(|e| format!("{flag}: {e}"))?,
            "--pattern" => pattern_arg = Some(value),
            "--transactions" => {
                transactions = value.parse().map_err(|e| format!("{flag}: {e}"))?;
            }
            "--icache-miss" => out.icache_miss = f()?,
            "--conflicts" => out.conflicts = value.parse().map_err(|e| format!("{flag}: {e}"))?,
            "--ctas-per-sm" => {
                out.ctas_per_sm = value.parse().map_err(|e| format!("{flag}: {e}"))?;
            }
            "--cycles" => out.cycles = value.parse().map_err(|e| format!("{flag}: {e}"))?,
            "--seed" => out.seed = value.parse().map_err(|e| format!("{flag}: {e}"))?,
            "--sched" => {
                out.sched = match value.as_str() {
                    "gto" => SchedulerKind::GreedyThenOldest,
                    "rr" => SchedulerKind::RoundRobin,
                    other => return Err(format!("unknown scheduler: {other}")),
                }
            }
            "--corun" => {
                out.corun = Some(value.split(',').map(str::to_string).collect());
            }
            "--policy" => out.policy = value,
            "--trace" => out.trace = Some(value),
            "--chrome" => out.chrome = Some(value),
            "--validate-trace" => out.validate = Some(value),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    out.pattern = parse_pattern(pattern_arg.as_deref().unwrap_or("streaming"), transactions)?;
    if out.corun.is_none() && (out.trace.is_some() || out.chrome.is_some()) {
        return Err("--trace/--chrome require --corun".to_string());
    }
    Ok(out)
}

/// `--analyze`: run the full ws-analyze rule catalogue over the kernel and
/// print the report (derived metrics, Eq. 1 occupancy quotas, and every
/// diagnostic). Exits non-zero when any *error*-severity diagnostic is
/// emitted — the same findings that fail the `Gpu` launch pre-flight — so
/// scripted callers cannot silently pass a rejected kernel.
fn analyze(desc: &KernelDesc, cfg: &GpuConfig) -> ExitCode {
    println!(
        "kernel `{}`: {} CTAs x {} threads, {} regs/thread, {} B shmem/CTA",
        desc.name, desc.grid_ctas, desc.threads_per_cta, desc.regs_per_thread, desc.shmem_per_cta
    );
    let report = ws_analyze::analyze_kernel(desc, cfg);
    print!("{report}");
    let errors = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    if errors > 0 {
        eprintln!("error: {errors} error-severity diagnostic(s); kernel rejected");
        ExitCode::FAILURE
    } else {
        println!("{}: verdict ok", report.subject);
        ExitCode::SUCCESS
    }
}

/// `--predict`: run the ws-predict static performance analyzer and print
/// the predicted IPC-vs-CTA curve, the predicted knee, and the profiling
/// window the controller would use. Exits non-zero on error-severity
/// diagnostics or when prediction is rejected by the pre-flight.
fn predict(desc: &KernelDesc, cfg: &GpuConfig) -> ExitCode {
    let report = ws_analyze::analyze_kernel(desc, cfg);
    let mut errors = 0usize;
    for d in report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
    {
        eprintln!("{}: error: [{}] {}", report.subject, d.rule, d.message);
        errors += 1;
    }
    if errors > 0 {
        eprintln!("error: {errors} error-severity diagnostic(s); kernel rejected");
        return ExitCode::FAILURE;
    }
    match ws_analyze::predict_kernel(desc, cfg) {
        Ok(curve) => {
            println!(
                "kernel `{}`: ws-predict static performance curve",
                desc.name
            );
            for (j, ipc) in curve.ipc.iter().enumerate() {
                let n = j as u32 + 1;
                let mark = if n == curve.knee {
                    "  <- predicted knee"
                } else {
                    ""
                };
                println!("  {n:>2} CTAs/SM : IPC {ipc:.3}{mark}");
            }
            let max = curve.max_ctas();
            println!("  predicted knee   : {} of 1..={max} CTAs/SM", curve.knee);
            println!(
                "  profiling window : dense 1..={} + guard at {max} (WS_PREDICT=0 for the full sweep)",
                curve.knee.saturating_add(1).min(max),
            );
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("error: prediction rejected: {err}");
            ExitCode::FAILURE
        }
    }
}

/// `--validate-trace`: check a JSONL trace against the ws-trace schema.
fn validate_trace(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match validate_jsonl(&text) {
        Ok(records) => {
            println!("{path}: {records} schema-valid records");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{path}: INVALID: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse_policy(name: &str, isolation_cycles: u64) -> Result<PolicyKind, String> {
    match name {
        "leftover" => Ok(PolicyKind::LeftOver),
        "fcfs" => Ok(PolicyKind::Fcfs),
        "even" => Ok(PolicyKind::Even),
        "spatial" => Ok(PolicyKind::Spatial),
        "dynamic" => Ok(PolicyKind::WarpedSlicer(WarpedSlicerConfig::scaled_for(
            isolation_cycles,
        ))),
        other => Err(format!(
            "unknown policy: {other} (expected leftover|fcfs|even|spatial|dynamic)"
        )),
    }
}

/// `--corun`: equal-work multiprogrammed run with optional ws-trace export.
fn corun(args: &Args, abbrevs: &[String]) -> Result<ExitCode, String> {
    let benches: Vec<_> = abbrevs
        .iter()
        .map(|a| by_abbrev(a).ok_or_else(|| format!("unknown benchmark abbreviation: {a}")))
        .collect::<Result<_, _>>()?;
    if benches.len() < 2 {
        return Err("--corun needs at least two comma-separated benchmarks".to_string());
    }
    let cfg = RunConfig {
        gpu: if args.large {
            GpuConfig::large()
        } else {
            GpuConfig::isca_baseline()
        },
        scheduler: args.sched,
        isolation_cycles: args.cycles,
        ..RunConfig::default()
    };
    let policy = parse_policy(&args.policy, args.cycles)?;
    let names: Vec<&str> = benches.iter().map(|b| b.abbrev).collect();
    println!(
        "corun {} under `{}` (isolation budget {} cycles)",
        names.join("+"),
        args.policy,
        args.cycles
    );
    let iso: Vec<_> = benches
        .iter()
        .map(|b| run_isolation(&b.desc, &cfg))
        .collect();
    let targets: Vec<u64> = iso.iter().map(|r| r.target_insts).collect();
    let isolated: Vec<u64> = iso.iter().map(|r| r.isolated_cycles).collect();
    let traced = args.trace.is_some() || args.chrome.is_some();
    let run_cfg = RunConfig {
        trace: traced.then(TraceOptions::default),
        ..cfg
    };
    let descs: Vec<&KernelDesc> = benches.iter().map(|b| &b.desc).collect();
    let job = SimJob::corun(&descs, &targets, &policy, &run_cfg);
    let outcome = execute(&job);
    let result = outcome.clone().into_corun(&job);
    println!("  total cycles      : {}", result.total_cycles);
    for (i, name) in names.iter().enumerate() {
        let fin = result.finish_cycle.get(i).copied().flatten();
        println!(
            "  {name:<6} target {:>9} insts, isolated {:>8} cycles, finished at {}",
            targets.get(i).copied().unwrap_or(0),
            isolated.get(i).copied().unwrap_or(0),
            fin.map_or_else(|| "TIMEOUT".to_string(), |c| c.to_string()),
        );
    }
    println!("  combined IPC      : {:.3}", result.combined_ipc);
    println!("  fairness          : {:.3}", fairness(&result, &isolated));
    println!("  ANTT              : {:.3}", antt(&result, &isolated));
    if let Some(path) = &args.trace {
        let text = jsonl(&outcome, &result.label, &result.policy, &names);
        let records = validate_jsonl(&text).map_err(|e| format!("internal: {e}"))?;
        std::fs::write(path, &text).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("  trace             : {records} records -> {path}");
    }
    if let Some(path) = &args.chrome {
        let doc = chrome_trace(&outcome, &names);
        std::fs::write(path, &doc).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("  chrome trace      : -> {path}");
    }
    Ok(ExitCode::SUCCESS)
}

/// Load a ws-store file, or start an empty store when the file does not
/// exist yet. A present-but-malformed file is an error, never silently
/// replaced.
fn load_or_new_store(path: &str, capacity: usize) -> Result<CurveStore, String> {
    match std::fs::read_to_string(path) {
        Ok(text) => CurveStore::from_jsonl(&text).map_err(|e| format!("{path}: {e}")),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(CurveStore::new(capacity)),
        Err(e) => Err(format!("cannot read {path}: {e}")),
    }
}

/// Validate and write a store back to its JSONL file.
fn write_store(path: &str, store: &CurveStore) -> Result<usize, String> {
    let text = store.to_jsonl();
    let records =
        validate_jsonl(&text).map_err(|e| format!("internal: store file invalid: {e}"))?;
    std::fs::write(path, &text).map_err(|e| format!("cannot write {path}: {e}"))?;
    Ok(records)
}

/// `store inspect FILE`: print every memoized curve in insertion order.
fn store_inspect(path: &str) -> Result<ExitCode, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let store = CurveStore::from_jsonl(&text).map_err(|e| format!("{path}: {e}"))?;
    println!("store file    : {path}");
    println!("store capacity: {}", store.capacity());
    println!("store entries : {}", store.len());
    for (key, entry) in store.entries_in_insertion_order() {
        let pts: Vec<String> = entry.perf.iter().map(|v| format!("{v:.3}")).collect();
        println!(
            "  {:016x}/{:016x}  {:<8} {:<24} knee {:>2}  [{}]",
            key.kernel_sig,
            key.gpu_sig,
            entry.class,
            entry.archetype,
            entry.knee,
            pts.join(", ")
        );
    }
    Ok(ExitCode::SUCCESS)
}

/// `store clear FILE`: reset the file to an empty store, preserving the
/// capacity of an existing file unless `--capacity` overrides it.
fn store_clear(path: &str, rest: &[String]) -> Result<ExitCode, String> {
    let mut capacity: Option<usize> = None;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--capacity" => {
                let v = it.next().ok_or("--capacity requires a value")?;
                capacity = Some(v.parse().map_err(|e| format!("--capacity: {e}"))?);
            }
            other => return Err(format!("unknown store clear flag: {other}")),
        }
    }
    let kept = capacity.unwrap_or_else(|| {
        load_or_new_store(path, DEFAULT_STORE_CAPACITY)
            .map_or(DEFAULT_STORE_CAPACITY, |s| s.capacity())
    });
    let store = CurveStore::new(kept);
    write_store(path, &store)?;
    println!("store file    : {path}");
    println!("store entries : 0 (cleared, capacity {kept})");
    Ok(ExitCode::SUCCESS)
}

/// `store warm FILE --corun A,B`: run the co-run with the store attached
/// to the dynamic Warped-Slicer controller and persist the updated store.
fn store_warm(path: &str, rest: &[String]) -> Result<ExitCode, String> {
    let mut corun_arg: Option<String> = None;
    let mut cycles = 12_000u64;
    let mut capacity = DEFAULT_STORE_CAPACITY;
    let mut large = false;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--large" => large = true,
            "--corun" => {
                corun_arg = Some(it.next().ok_or("--corun requires a value")?.clone());
            }
            "--cycles" => {
                let v = it.next().ok_or("--cycles requires a value")?;
                cycles = v.parse().map_err(|e| format!("--cycles: {e}"))?;
            }
            "--capacity" => {
                let v = it.next().ok_or("--capacity requires a value")?;
                capacity = v.parse().map_err(|e| format!("--capacity: {e}"))?;
            }
            other => return Err(format!("unknown store warm flag: {other}")),
        }
    }
    let abbrevs = corun_arg.ok_or("store warm requires --corun A,B")?;
    let benches: Vec<_> = abbrevs
        .split(',')
        .map(|a| by_abbrev(a).ok_or_else(|| format!("unknown benchmark abbreviation: {a}")))
        .collect::<Result<_, _>>()?;
    if benches.len() < 2 {
        return Err("store warm needs at least two comma-separated benchmarks".to_string());
    }
    let shared = SharedCurveStore::new(load_or_new_store(path, capacity)?);
    let cfg = RunConfig {
        gpu: if large {
            GpuConfig::large()
        } else {
            GpuConfig::isca_baseline()
        },
        isolation_cycles: cycles,
        ..RunConfig::default()
    };
    let policy = PolicyKind::WarpedSlicer(WarpedSlicerConfig {
        store: Some(shared.clone()),
        ..WarpedSlicerConfig::scaled_for(cycles)
    });
    let names: Vec<&str> = benches.iter().map(|b| b.abbrev).collect();
    let targets: Vec<u64> = benches
        .iter()
        .map(|b| run_isolation(&b.desc, &cfg).target_insts)
        .collect();
    let descs: Vec<&KernelDesc> = benches.iter().map(|b| &b.desc).collect();
    let job = SimJob::corun(&descs, &targets, &policy, &cfg);
    let outcome = execute(&job);
    // Stats reset on load, so a run that never missed decided entirely
    // from memoized curves.
    let (stats, entries) = shared.with(|s| (s.stats(), s.len()));
    let warm = outcome.decision.is_some() && stats.misses == 0 && stats.hits > 0;
    let records = shared.with(|s| write_store(path, s))?;
    println!(
        "store warm {} ({} cycles): {} decision",
        names.join("+"),
        cycles,
        if warm { "warm" } else { "cold" }
    );
    println!("store hits    : {}", stats.hits);
    println!("store misses  : {}", stats.misses);
    println!("store entries : {entries}");
    println!("store file    : {path} ({records} records)");
    Ok(ExitCode::SUCCESS)
}

/// `store …` subcommand dispatch.
fn store_cmd(argv: &[String]) -> Result<ExitCode, String> {
    let usage = "usage: gpu-sim store inspect|warm|clear FILE [flags]";
    let sub = argv.first().map(String::as_str).ok_or(usage)?;
    let path = argv.get(1).map(String::as_str).ok_or(usage)?;
    let rest = argv.get(2..).unwrap_or(&[]);
    match sub {
        "inspect" => {
            if let Some(extra) = rest.first() {
                return Err(format!("unknown store inspect flag: {extra}"));
            }
            store_inspect(path)
        }
        "warm" => store_warm(path, rest),
        "clear" => store_clear(path, rest),
        other => Err(format!(
            "unknown store subcommand: {other} (expected inspect|warm|clear)"
        )),
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("store") {
        return match store_cmd(argv.get(1..).unwrap_or(&[])) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &args.validate {
        return validate_trace(path);
    }
    if let Some(abbrevs) = &args.corun {
        return match corun(&args, abbrevs) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let cfg = if args.large {
        GpuConfig::large()
    } else {
        GpuConfig::isca_baseline()
    };
    let desc = KernelDesc {
        name: "cli".into(),
        grid_ctas: args.grid,
        threads_per_cta: args.threads,
        regs_per_thread: args.regs,
        shmem_per_cta: args.shmem,
        program: ProgramSpec {
            body_len: args.body,
            sfu_frac: args.sfu,
            gload_frac: args.gload,
            gstore_frac: args.gstore,
            shmem_frac: args.shm_frac,
            barrier_frac: args.barrier,
            dep_distance: args.dep,
            seed: args.seed,
        }
        .generate(),
        iterations: args.iters,
        pattern: args.pattern.clone(),
        icache_miss_rate: args.icache_miss,
        shmem_conflict_degree: args.conflicts,
        seed: args.seed,
    };
    if args.analyze {
        return analyze(&desc, &cfg);
    }
    if args.predict {
        return predict(&desc, &cfg);
    }
    let max_ctas = desc.max_ctas_per_sm(&cfg.sm);
    println!(
        "kernel: {} threads/CTA, {} regs/thread, {} B shmem/CTA -> max {} CTAs/SM",
        desc.threads_per_cta, desc.regs_per_thread, desc.shmem_per_cta, max_ctas
    );

    let mut gpu = Gpu::new(cfg.clone(), args.sched);
    let k = gpu.add_kernel(desc);
    let cap = args.ctas_per_sm.min(max_ctas);
    for _ in 0..args.cycles {
        for s in 0..gpu.num_sms() {
            while gpu.sm(s).kernel_ctas(0) < cap && gpu.try_launch(k, s) {}
        }
        gpu.tick();
    }

    println!("after {} cycles ({}):", args.cycles, args.sched);
    println!("  warp instructions : {}", gpu.kernel_insts(k));
    println!("  IPC (GPU-wide)    : {:.3}", gpu.total_ipc());
    println!(
        "  CTAs completed    : {}",
        gpu.kernel_meta(k).completed_ctas
    );
    let mem = gpu.mem_stats();
    let mut l1a = 0u64;
    let mut l1m = 0u64;
    for sm in gpu.sms() {
        l1a += sm.stats().kernel(0).l1_accesses;
        l1m += sm.stats().kernel(0).l1_misses;
    }
    println!(
        "  L1 miss rate      : {:.1}%  ({} accesses)",
        100.0 * l1m as f64 / l1a.max(1) as f64,
        l1a
    );
    println!(
        "  L2 miss rate      : {:.1}%  (MPKI {:.1})",
        100.0 * mem.total.l2_misses as f64 / mem.total.l2_accesses.max(1) as f64,
        mem.total.l2_misses as f64 * 1000.0 / gpu.kernel_insts(k).max(1) as f64
    );
    println!(
        "  DRAM              : {} transactions, {:.1}% bus busy",
        gpu.mem().dram_serviced(),
        100.0 * gpu.mem().dram_busy_fraction(args.cycles)
    );
    let sched_cycles =
        (args.cycles * gpu.num_sms() as u64 * u64::from(cfg.sm.num_schedulers)) as f64;
    let mut stall_line = String::new();
    for (name, reason) in [
        ("mem", StallReason::LongMemoryLatency),
        ("raw", StallReason::ShortRawHazard),
        ("exec", StallReason::ExecResource),
        ("ibuf", StallReason::IbufferEmpty),
        ("barrier", StallReason::Barrier),
    ] {
        let c: u64 = gpu.sms().map(|s| s.stats().stalls.get(reason)).sum();
        stall_line.push_str(&format!("{name} {:.1}%  ", 100.0 * c as f64 / sched_cycles));
    }
    println!("  stalls            : {stall_line}");
    ExitCode::SUCCESS
}
