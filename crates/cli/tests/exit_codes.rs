//! Exit-code regression tests for the static-analysis CLI modes.
//!
//! `--analyze` and `--predict` are meant for scripts and CI gates, so a
//! kernel with error-severity diagnostics must fail the process — an
//! exit code of 0 on a rejected kernel silently passes in shell pipelines.

use std::process::{Command, Output};

fn gpu_sim(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_gpu-sim"))
        .args(args)
        .output()
        .expect("gpu-sim binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn analyze_clean_kernel_exits_zero() {
    let out = gpu_sim(&["--analyze", "--threads", "128", "--gload", "0.1"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("verdict ok"));
}

#[test]
fn analyze_rejected_kernel_exits_nonzero() {
    // 2000 threads/CTA exceeds the SM's 1536-thread bound: an
    // error-severity diagnostic, so the process must fail.
    let out = gpu_sim(&["--analyze", "--threads", "2000"]);
    assert!(!out.status.success(), "rejected kernel must exit non-zero");
    assert!(
        stderr(&out).contains("error-severity"),
        "stderr: {}",
        stderr(&out)
    );
    assert!(stdout(&out).contains("error"), "report names the error");
}

#[test]
fn predict_clean_kernel_prints_a_curve_and_exits_zero() {
    let out = gpu_sim(&["--predict", "--threads", "128", "--gload", "0.1"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("predicted knee"), "stdout: {text}");
    assert!(text.contains("CTAs/SM : IPC"), "curve points printed");
}

#[test]
fn predict_rejected_kernel_exits_nonzero() {
    let out = gpu_sim(&["--predict", "--threads", "2000"]);
    assert!(!out.status.success(), "rejected kernel must exit non-zero");
    assert!(
        stderr(&out).contains("error-severity"),
        "stderr: {}",
        stderr(&out)
    );
}

#[test]
fn bad_flag_exits_nonzero() {
    let out = gpu_sim(&["--no-such-flag", "1"]);
    assert!(!out.status.success());
}
