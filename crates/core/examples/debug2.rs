//! Side-by-side isolation vs. co-run dump for one pair, for debugging
//! partitioning decisions.

use warped_slicer::{run_corun, run_isolation, PolicyKind, RunConfig, WarpedSlicerConfig};
use ws_workloads::by_abbrev;

fn main() {
    let cfg = RunConfig {
        isolation_cycles: 60_000,
        ..RunConfig::default()
    };
    let ba = by_abbrev("MM").unwrap().desc;
    let bb = by_abbrev("MVP").unwrap().desc;
    let ta = run_isolation(&ba, &cfg).target_insts;
    let tb = run_isolation(&bb, &cfg).target_insts;
    println!("targets {ta} {tb}");
    for i in 0..3 {
        let r = run_corun(
            &[&ba, &bb],
            &[ta, tb],
            &PolicyKind::WarpedSlicer(WarpedSlicerConfig::scaled_for(cfg.isolation_cycles)),
            &cfg,
        );
        let d = r.decision.unwrap();
        println!(
            "run {i}: quotas={:?} spatial={} predicted={:?} ipc={:.3}",
            d.quotas, d.spatial_fallback, d.predicted_perf, r.combined_ipc
        );
    }
}
