//! Scratch: dump profiled curves + decision for specific pairs.
use gpu_sim::{Gpu, GpuConfig, SchedulerKind};
use warped_slicer::policy::Controller;
use warped_slicer::{WarpedSlicerConfig, WarpedSlicerController};
use ws_workloads::by_abbrev;

fn main() {
    for (a, b) in [("MM", "MVP"), ("DXT", "BFS"), ("IMG", "NN")] {
        let mut gpu = Gpu::new(GpuConfig::isca_baseline(), SchedulerKind::GreedyThenOldest);
        gpu.add_kernel(by_abbrev(a).unwrap().desc);
        gpu.add_kernel(by_abbrev(b).unwrap().desc);
        let mut cfg = WarpedSlicerConfig::scaled_for(150_000);
        if std::env::var("NOSCALE").is_ok() {
            cfg.enable_scaling = false;
        }
        let mut c = WarpedSlicerController::new(cfg);
        for _ in 0..20_000 {
            c.on_cycle(&mut gpu);
            gpu.tick();
        }
        let d = c.decision().unwrap();
        println!(
            "{a}_{b}: quotas={:?} spatial={} predicted={:?}",
            d.quotas,
            d.spatial_fallback,
            d.predicted_perf
                .iter()
                .map(|p| (p * 100.0).round() / 100.0)
                .collect::<Vec<_>>()
        );
        for smp in c.last_samples() {
            println!(
                "  sample k{} ctas {} ipc {:.3} phi {:.2} bw {:?}",
                smp.kernel,
                smp.ctas,
                smp.ipc_sampled,
                smp.phi_mem,
                smp.bandwidth.map(|b| (
                    b.sm_transactions,
                    (b.fair_transactions * 10.0).round() / 10.0,
                    (b.dram_busy * 100.0).round() / 100.0
                ))
            );
        }
        for (i, c) in d.measured_curves.iter().enumerate() {
            println!(
                "  k{i} curve: {:?}",
                c.iter()
                    .map(|p| (p * 100.0).round() / 100.0)
                    .collect::<Vec<_>>()
            );
        }
    }
}
