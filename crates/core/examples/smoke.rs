//! Scratch: policy ordering smoke test on a few representative pairs.
use warped_slicer::{run_corun, run_isolation, PolicyKind, RunConfig, WarpedSlicerConfig};
use ws_workloads::by_abbrev;

fn main() {
    let cfg = RunConfig {
        isolation_cycles: 150_000,
        ..RunConfig::default()
    };
    for (a, b) in [
        ("IMG", "NN"),
        ("MM", "BLK"),
        ("DXT", "BFS"),
        ("HOT", "LBM"),
        ("MM", "MVP"),
        ("DXT", "IMG"),
    ] {
        let ba = by_abbrev(a).unwrap().desc;
        let bb = by_abbrev(b).unwrap().desc;
        let ta = run_isolation(&ba, &cfg).target_insts;
        let tb = run_isolation(&bb, &cfg).target_insts;
        print!("{a}_{b}: ");
        let mut lo_ipc = 0.0;
        for p in [
            PolicyKind::LeftOver,
            PolicyKind::Spatial,
            PolicyKind::Even,
            PolicyKind::WarpedSlicer(WarpedSlicerConfig::scaled_for(cfg.isolation_cycles)),
        ] {
            let r = run_corun(&[&ba, &bb], &[ta, tb], &p, &cfg);
            if matches!(p, PolicyKind::LeftOver) {
                lo_ipc = r.combined_ipc;
            }
            print!(
                "{}={:.2}{} ",
                r.policy,
                r.combined_ipc / lo_ipc,
                if r.timed_out { "(TIMEOUT)" } else { "" }
            );
            if let Some(d) = &r.decision {
                if let Some(q) = &d.quotas {
                    print!("q{q:?} ");
                } else if d.spatial_fallback {
                    print!("(spatial-fb) ");
                }
            }
        }
        println!();
    }
}
