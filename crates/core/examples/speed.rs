//! Wall-clock timing of an isolation run, for quick performance checks.

use std::time::Instant;
use warped_slicer::{run_isolation, RunConfig};
use ws_workloads::by_abbrev;

fn main() {
    let cfg = RunConfig {
        isolation_cycles: 100_000,
        ..RunConfig::default()
    };
    for b in ["IMG", "BLK", "BFS"] {
        let t = Instant::now();
        let r = run_isolation(&by_abbrev(b).unwrap().desc, &cfg);
        let dt = t.elapsed().as_secs_f64();
        println!("{b}: {:.0} cycles/s (ipc {:.2})", 100_000.0 / dt, r.ipc);
    }
}
