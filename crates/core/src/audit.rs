//! ws-trace decision-audit channel: a structured record of *why* the
//! Warped-Slicer controller partitioned the way it did.
//!
//! Where [`gpu_sim::trace`] records what the simulator *did* (CTA
//! lifecycle, fills, fast-forward jumps), this channel records what the
//! policy *decided* and from which inputs: every Eq. 2-4 scaling
//! application with its `φ_mem`/`ψ` inputs and clamp verdict, the curves
//! handed to the water-filling partitioner together with the CTA costs and
//! SM capacity, each Algorithm 1 grant, the chosen water level and quota
//! vector, the `1/K × 120 %` fallback verdict, and the phase monitor's
//! baseline/deviation history.
//!
//! The audit is recorded only at decision points (profile end, phase-monitor
//! windows), never per tick, and only when
//! [`WarpedSlicerConfig::audit`](crate::policy::WarpedSlicerConfig) is set —
//! the run path is unaffected otherwise. A recorded audit is *sufficient to
//! replay the decision*: [`DecisionAudit::replay_water_fill`] re-runs
//! Algorithm 1 from the recorded inputs and must reproduce the recorded
//! quota vector (a property the test suite pins).

use crate::resources::ResourceVec;
use crate::scaling::ScaleOutcome;
use crate::waterfill::{water_fill, KernelCurve, Partition};

/// One decision-level audit record.
#[derive(Debug, Clone, PartialEq)]
pub enum AuditEvent {
    /// Eq. 2-4 scaling applied to one raw profile sample.
    ScaledPoint {
        /// Kernel slot the sample measures.
        kernel: usize,
        /// CTA count the profiled SM was holding.
        ctas: u32,
        /// Raw sampled IPC before correction.
        ipc_sampled: f64,
        /// Fraction of scheduler-cycles lost to long memory latency.
        phi_mem: f64,
        /// The `ψ` input used (Eq. 4 CTA ratio, or the measured-bandwidth
        /// equivalent when DRAM evidence was available).
        psi: f64,
        /// The factor applied, its pre-clamp value, and the clamp verdict.
        outcome: ScaleOutcome,
    },
    /// The partitioner's resource inputs (recorded once per decision,
    /// before the per-kernel curves).
    WaterFillInputs {
        /// Per-kernel single-CTA resource footprints.
        cta_costs: Vec<ResourceVec>,
        /// The SM capacity partitioned (Eq. 1 right-hand side).
        capacity: ResourceVec,
    },
    /// One kernel's scaled performance-vs-CTA curve as handed to the
    /// partitioner.
    Curve {
        /// Kernel slot.
        kernel: usize,
        /// `perf[j]` is the predicted performance with `j + 1` CTAs.
        perf: Vec<f64>,
    },
    /// One Algorithm 1 grant (the water-filling main loop raising the
    /// currently-worst lane).
    WaterFillStep {
        /// Kernel whose lane was raised.
        kernel: usize,
        /// The lane's CTA total after the grant.
        ctas: u32,
        /// The lane's normalized performance after the grant.
        perf: f64,
    },
    /// The water-filling answer.
    WaterFillDecision {
        /// The chosen quota vector `(T_1..T_K)`.
        quotas: Vec<u32>,
        /// The water level: the minimum normalized performance achieved.
        water_level: f64,
        /// Per-kernel normalized performance at the chosen quotas.
        predicted: Vec<f64>,
    },
    /// The fallback-threshold test (Sec. IV: fall back to spatial
    /// multitasking when any kernel's predicted loss exceeds `1/K × 120 %`).
    FallbackVerdict {
        /// The per-kernel loss threshold in force.
        threshold: f64,
        /// The largest predicted loss (`None` when partitioning was
        /// infeasible and there was nothing to compare).
        max_loss: Option<f64>,
        /// Whether the controller fell back to spatial multitasking.
        spatial: bool,
    },
    /// One kernel's `ws-predict` static curve, recorded when the
    /// controller used prediction to plan its profiling sweep. Distinct
    /// from [`AuditEvent::Curve`] (the *sampled* curve handed to the
    /// partitioner), so predicted-vs-sampled comparisons are replayable
    /// from one audit.
    PredictedCurve {
        /// Kernel slot.
        kernel: usize,
        /// `perf[j]` is the predicted IPC with `j + 1` CTAs.
        perf: Vec<f64>,
        /// The predicted performance knee (CTA count).
        knee: u32,
    },
    /// The profiling window the controller chose for one kernel from its
    /// static prediction (dense sampling `lo..=hi` out of `1..=max`).
    SweepWindow {
        /// Kernel slot.
        kernel: usize,
        /// First densely sampled CTA count.
        lo: u32,
        /// Last densely sampled CTA count.
        hi: u32,
        /// The kernel's Eq. 1 feasibility bound.
        max: u32,
    },
    /// A ws-store warm hit: the controller found a memoized performance
    /// curve for this kernel and skipped its profiling sweep. The recorded
    /// curve is the one handed to the partitioner, so warm decisions stay
    /// replayable from the audit alone.
    StoreHit {
        /// Kernel slot.
        kernel: usize,
        /// The kernel-signature half of the [`CurveKey`](crate::store::CurveKey).
        sig: u64,
        /// The memoized curve (`perf[j]` = performance with `j + 1` CTAs).
        perf: Vec<f64>,
    },
    /// A ws-store miss: no memoized curve for this kernel signature, so
    /// the cold profiling path ran (and inserted its accepted curve).
    StoreMiss {
        /// Kernel slot.
        kernel: usize,
        /// The kernel-signature half of the [`CurveKey`](crate::store::CurveKey).
        sig: u64,
    },
    /// A ws-store invalidation: a phase-monitor trigger removed exactly
    /// this kernel's memoized curve before the re-profile.
    StoreInvalidate {
        /// Kernel slot.
        kernel: usize,
        /// The kernel-signature half of the [`CurveKey`](crate::store::CurveKey).
        sig: u64,
    },
    /// One phase-monitor window observation for one kernel.
    PhaseSample {
        /// Kernel slot.
        kernel: usize,
        /// Core cycle at which the window closed.
        cycle: u64,
        /// The window's IPC.
        ipc: f64,
        /// The baseline the deviation was measured against (`None` while
        /// the monitor was re-arming).
        baseline: Option<f64>,
        /// Whether this window triggered a re-profile.
        triggered: bool,
    },
}

/// The accumulated audit of one controller's decision process, in recording
/// order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DecisionAudit {
    /// Events in the order they were recorded.
    pub events: Vec<AuditEvent>,
}

impl DecisionAudit {
    /// Appends one event.
    pub fn record(&mut self, event: AuditEvent) {
        self.events.push(event);
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The most recent recorded quota vector, if a feasible partition was
    /// ever chosen.
    #[must_use]
    pub fn last_quotas(&self) -> Option<&[u32]> {
        self.events.iter().rev().find_map(|e| match e {
            AuditEvent::WaterFillDecision { quotas, .. } => Some(quotas.as_slice()),
            _ => None,
        })
    }

    /// The most recent `ws-predict` curve recorded for kernel `kernel`
    /// (the predicted IPC-vs-CTA points and the predicted knee), if the
    /// controller planned its sweep from a prediction.
    #[must_use]
    pub fn predicted_curve(&self, kernel: usize) -> Option<(&[f64], u32)> {
        self.events.iter().rev().find_map(|e| match e {
            AuditEvent::PredictedCurve {
                kernel: k,
                perf,
                knee,
            } if *k == kernel => Some((perf.as_slice(), *knee)),
            _ => None,
        })
    }

    /// The most recent sampled curve recorded for kernel `kernel` (the
    /// scaled profile curve handed to the partitioner), paired with
    /// [`DecisionAudit::predicted_curve`] for predicted-vs-sampled audits.
    #[must_use]
    pub fn sampled_curve(&self, kernel: usize) -> Option<&[f64]> {
        self.events.iter().rev().find_map(|e| match e {
            AuditEvent::Curve { kernel: k, perf } if *k == kernel => Some(perf.as_slice()),
            _ => None,
        })
    }

    /// Scaled-point records for kernel `kernel` (sampled vs. scaled IPC
    /// with the `φ_mem`/`ψ` inputs), in recording order.
    pub fn scaled_points(&self, kernel: usize) -> impl Iterator<Item = &AuditEvent> {
        self.events
            .iter()
            .filter(move |e| matches!(e, AuditEvent::ScaledPoint { kernel: k, .. } if *k == kernel))
    }

    /// Replays the most recent recorded decision: rebuilds the
    /// [`KernelCurve`]s from the last [`AuditEvent::WaterFillInputs`] and
    /// the [`AuditEvent::Curve`]s recorded with it, and re-runs Algorithm 1.
    /// Returns `None` when the audit holds no complete decision.
    ///
    /// The trace-sufficiency contract: for any recorded decision,
    /// `replay_water_fill().map(|p| p.ctas)` equals the recorded
    /// [`AuditEvent::WaterFillDecision`] quota vector.
    #[must_use]
    pub fn replay_water_fill(&self) -> Option<Partition> {
        let start = self
            .events
            .iter()
            .rposition(|e| matches!(e, AuditEvent::WaterFillInputs { .. }))?;
        let tail = self.events.get(start..)?;
        let Some(AuditEvent::WaterFillInputs {
            cta_costs,
            capacity,
        }) = tail.first()
        else {
            return None;
        };
        let mut curves: Vec<Option<Vec<f64>>> = vec![None; cta_costs.len()];
        for e in tail {
            if let AuditEvent::Curve { kernel, perf } = e {
                if let Some(slot) = curves.get_mut(*kernel) {
                    *slot = Some(perf.clone());
                }
            }
        }
        let kernels: Vec<KernelCurve> = cta_costs
            .iter()
            .zip(curves)
            .map(|(&cta_cost, perf)| perf.map(|perf| KernelCurve { perf, cta_cost }))
            .collect::<Option<_>>()?;
        water_fill(&kernels, *capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost() -> ResourceVec {
        ResourceVec {
            regs: 2048,
            shmem: 0,
            threads: 128,
            ctas: 1,
        }
    }

    fn capacity() -> ResourceVec {
        ResourceVec {
            regs: 32768,
            shmem: 48 * 1024,
            threads: 1536,
            ctas: 8,
        }
    }

    #[test]
    fn property_replay_matches_water_fill_on_random_curves() {
        // Trace-sufficiency, fuzzed: for any recorded (inputs, curves,
        // decision) triple, replaying Algorithm 1 from the audit alone must
        // reproduce the recorded quota vector.
        let mut rng = gpu_sim::SimRng::seed_from_u64(0xa0d17);
        let mut replayed_decisions = 0;
        for _ in 0..100 {
            let k = 2 + (rng.next_u64() % 2) as usize;
            let kernels: Vec<KernelCurve> = (0..k)
                .map(|_| {
                    let len = 3 + (rng.next_u64() % 6) as usize;
                    KernelCurve {
                        perf: (0..len)
                            .map(|_| (1 + rng.next_u64() % 1000) as f64 / 1000.0)
                            .collect(),
                        cta_cost: ResourceVec {
                            regs: 1024 * (1 + rng.next_u64() % 8),
                            shmem: 4096 * (rng.next_u64() % 4),
                            threads: 64 * (1 + rng.next_u64() % 6),
                            ctas: 1,
                        },
                    }
                })
                .collect();
            let mut a = DecisionAudit::default();
            a.record(AuditEvent::WaterFillInputs {
                cta_costs: kernels.iter().map(|c| c.cta_cost).collect(),
                capacity: capacity(),
            });
            for (i, c) in kernels.iter().enumerate() {
                a.record(AuditEvent::Curve {
                    kernel: i,
                    perf: c.perf.clone(),
                });
            }
            let Some(p) = water_fill(&kernels, capacity()) else {
                assert!(
                    a.replay_water_fill().is_none(),
                    "infeasible partitions have no decision to replay"
                );
                continue;
            };
            a.record(AuditEvent::WaterFillDecision {
                quotas: p.ctas.clone(),
                water_level: p.min_perf(),
                predicted: p.perf.clone(),
            });
            let replayed = a.replay_water_fill().expect("decision is complete");
            assert_eq!(replayed.ctas.as_slice(), a.last_quotas().unwrap());
            assert_eq!(replayed.ctas, p.ctas);
            replayed_decisions += 1;
        }
        assert!(replayed_decisions > 50, "feasible cases dominate the fuzz");
    }

    #[test]
    fn empty_audit_has_no_decision() {
        let a = DecisionAudit::default();
        assert!(a.is_empty());
        assert_eq!(a.last_quotas(), None);
        assert!(a.replay_water_fill().is_none());
    }

    #[test]
    fn replay_reproduces_the_recorded_quotas() {
        let mut a = DecisionAudit::default();
        a.record(AuditEvent::WaterFillInputs {
            cta_costs: vec![cost(), cost()],
            capacity: capacity(),
        });
        a.record(AuditEvent::Curve {
            kernel: 0,
            perf: vec![0.25, 0.5, 0.75, 1.0],
        });
        a.record(AuditEvent::Curve {
            kernel: 1,
            perf: vec![0.9, 1.0, 0.6, 0.4],
        });
        // The recorded answer for these curves under this capacity.
        let expected = water_fill(
            &[
                KernelCurve {
                    perf: vec![0.25, 0.5, 0.75, 1.0],
                    cta_cost: cost(),
                },
                KernelCurve {
                    perf: vec![0.9, 1.0, 0.6, 0.4],
                    cta_cost: cost(),
                },
            ],
            capacity(),
        )
        .expect("feasible");
        a.record(AuditEvent::WaterFillDecision {
            quotas: expected.ctas.clone(),
            water_level: expected.min_perf(),
            predicted: expected.perf.clone(),
        });
        let replayed = a.replay_water_fill().expect("complete decision");
        assert_eq!(replayed.ctas.as_slice(), a.last_quotas().unwrap());
    }

    #[test]
    fn incomplete_decision_does_not_replay() {
        let mut a = DecisionAudit::default();
        a.record(AuditEvent::WaterFillInputs {
            cta_costs: vec![cost(), cost()],
            capacity: capacity(),
        });
        a.record(AuditEvent::Curve {
            kernel: 0,
            perf: vec![1.0],
        });
        // Kernel 1's curve is missing.
        assert!(a.replay_water_fill().is_none());
    }

    #[test]
    fn scaled_points_filter_by_kernel() {
        let mut a = DecisionAudit::default();
        for kernel in [0usize, 1, 0] {
            a.record(AuditEvent::ScaledPoint {
                kernel,
                ctas: 1,
                ipc_sampled: 1.0,
                phi_mem: 0.5,
                psi: 0.0,
                outcome: crate::scaling::scale_ipc_with_psi_audited(1.0, 0.5, 0.0),
            });
        }
        assert_eq!(a.scaled_points(0).count(), 2);
        assert_eq!(a.scaled_points(1).count(), 1);
    }
}
