//! Event-based power and energy model (Sec. V-G substitute).
//!
//! The paper evaluates power with GPUWattch/McPAT. We replace those RTL/
//! circuit models with an event-energy model over the simulator's activity
//! counters: each issued instruction, functional-unit cycle, cache access,
//! and DRAM transaction carries a fixed energy, plus constant leakage.
//! The per-event energies are calibrated so a fully utilized 16-SM GPU
//! lands near the dynamic/leakage figures the paper itself reports for its
//! GPUWattch extraction (37.7 W dynamic, 34.6 W leakage for 16 SMs,
//! Sec. V-I), which is sufficient for the *relative* power/energy claims of
//! Sec. V-G.

use crate::runner::AggregateStats;

/// Per-event energies (picojoules) and static power (watts).
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// Front-end energy per issued warp instruction (fetch/decode/issue +
    /// register-file access).
    pub issue_pj: f64,
    /// Energy per ALU-pipeline busy cycle.
    pub alu_cycle_pj: f64,
    /// Energy per SFU-pipeline busy cycle.
    pub sfu_cycle_pj: f64,
    /// Energy per LSU-pipeline busy cycle.
    pub lsu_cycle_pj: f64,
    /// Energy per L1 access.
    pub l1_access_pj: f64,
    /// Energy per L2 access.
    pub l2_access_pj: f64,
    /// Energy per 128-byte DRAM transaction.
    pub dram_access_pj: f64,
    /// Leakage power for the whole GPU, in watts.
    pub leakage_w: f64,
    /// Core clock in MHz (converts cycles to seconds).
    pub clock_mhz: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            issue_pj: 220.0,
            alu_cycle_pj: 320.0,
            sfu_cycle_pj: 480.0,
            lsu_cycle_pj: 260.0,
            l1_access_pj: 140.0,
            l2_access_pj: 360.0,
            dram_access_pj: 4_000.0,
            leakage_w: 34.6,
            clock_mhz: 1400.0,
        }
    }
}

/// Energy/power breakdown of one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// Dynamic energy in millijoules.
    pub dynamic_mj: f64,
    /// Leakage energy in millijoules.
    pub leakage_mj: f64,
    /// Average dynamic power in watts.
    pub dynamic_power_w: f64,
    /// Run wall-clock in milliseconds.
    pub time_ms: f64,
}

impl EnergyReport {
    /// Total (dynamic + leakage) energy in millijoules.
    #[must_use]
    pub fn total_mj(&self) -> f64 {
        self.dynamic_mj + self.leakage_mj
    }
}

impl EnergyModel {
    /// Evaluates the model over a run's activity counters.
    #[must_use]
    pub fn evaluate(&self, stats: &AggregateStats) -> EnergyReport {
        // Reconstruct unit busy cycles from the utilization fractions.
        let unit_cycles = stats.sched_cycles as f64;
        let dynamic_pj = stats.insts as f64 * self.issue_pj
            + stats.util.alu * unit_cycles * self.alu_cycle_pj
            + stats.util.sfu * unit_cycles * self.sfu_cycle_pj
            + stats.util.lsu * unit_cycles * self.lsu_cycle_pj
            + stats.cache.l1_accesses as f64 * self.l1_access_pj
            + stats.cache.l2_accesses as f64 * self.l2_access_pj
            + stats.dram_transactions as f64 * self.dram_access_pj;
        let time_s = stats.cycles as f64 / (self.clock_mhz * 1e6);
        let dynamic_j = dynamic_pj * 1e-12;
        EnergyReport {
            dynamic_mj: dynamic_j * 1e3,
            leakage_mj: self.leakage_w * time_s * 1e3,
            dynamic_power_w: if time_s > 0.0 {
                dynamic_j / time_s
            } else {
                0.0
            },
            time_ms: time_s * 1e3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{CacheStats, UtilizationStats};

    fn busy_stats(cycles: u64) -> AggregateStats {
        AggregateStats {
            cycles,
            sched_cycles: cycles * 32,
            insts: cycles * 28, // ~28 IPC GPU-wide
            util: UtilizationStats {
                alu: 0.6,
                sfu: 0.2,
                lsu: 0.4,
                reg: 0.8,
                shmem: 0.3,
                threads: 0.9,
            },
            cache: CacheStats {
                l1_accesses: cycles * 4,
                l1_misses: cycles,
                l2_accesses: cycles * 2,
                l2_misses: cycles / 2,
            },
            dram_transactions: cycles / 2,
            ..AggregateStats::default()
        }
    }

    #[test]
    fn busy_gpu_lands_near_paper_power() {
        let report = EnergyModel::default().evaluate(&busy_stats(1_000_000));
        assert!(
            (20.0..60.0).contains(&report.dynamic_power_w),
            "dynamic power {} W should be near the paper's 37.7 W",
            report.dynamic_power_w
        );
    }

    #[test]
    fn shorter_run_saves_leakage_energy() {
        let m = EnergyModel::default();
        let fast = m.evaluate(&busy_stats(500_000));
        let slow = m.evaluate(&busy_stats(1_000_000));
        assert!(fast.leakage_mj < slow.leakage_mj);
        assert!(fast.total_mj() < slow.total_mj());
    }

    #[test]
    fn energy_scales_with_activity() {
        let m = EnergyModel::default();
        let mut idle = busy_stats(1_000_000);
        idle.insts = 0;
        idle.util = UtilizationStats::default();
        idle.cache = CacheStats::default();
        idle.dram_transactions = 0;
        let idle_r = m.evaluate(&idle);
        let busy_r = m.evaluate(&busy_stats(1_000_000));
        assert!(idle_r.dynamic_mj < busy_r.dynamic_mj / 100.0);
        assert!((idle_r.leakage_mj - busy_r.leakage_mj).abs() < 1e-9);
    }

    #[test]
    fn zero_cycles_reports_zero_power() {
        let r = EnergyModel::default().evaluate(&AggregateStats::default());
        assert_eq!(r.dynamic_power_w, 0.0);
        assert_eq!(r.time_ms, 0.0);
    }
}
