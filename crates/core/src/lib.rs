//! # warped-slicer
//!
//! A from-scratch implementation of **Warped-Slicer** (Xu, Jeon, Kim, Ro,
//! Annavaram — ISCA 2016): efficient intra-SM slicing through dynamic
//! resource partitioning for GPU multiprogramming.
//!
//! The crate provides, on top of the [`gpu_sim`] substrate:
//!
//! * [`waterfill`] — the `O(KN)` discrete water-filling partitioning
//!   algorithm (Algorithm 1) plus an exhaustive reference implementation;
//! * [`scaling`] — the bandwidth-interference IPC correction (Eq. 2-4);
//! * [`profiler`] — the parallel-SM online profiling strategy (Fig. 4);
//! * [`sweep`] — `ws-predict`-driven pruning of the profiling sweep, with
//!   the checked fall-back that keeps water-filling exact;
//! * [`phase`] — sustained-IPC-change detection (Sec. IV-B);
//! * [`policy`] — CTA-dispatch controllers for Left-Over, FCFS, Even,
//!   Spatial, fixed-quota, and the dynamic Warped-Slicer;
//! * [`runner`] — the equal-work experiment methodology (Sec. V-A);
//! * [`metrics`] — combined IPC, fairness (minimum speedup), ANTT;
//! * [`audit`] / [`tracefmt`] — the ws-trace decision-audit channel and
//!   its JSONL / Chrome `trace_event` export formats;
//! * [`store`] — the persistent memoized performance-curve cache
//!   (lookup-before-profile, phase-trigger invalidation, deterministic
//!   insertion-order eviction);
//! * [`energy`] — an event-based power/energy model (Sec. V-G);
//! * [`oracle`] — exhaustive best-partition search (the figures' Oracle).
//!
//! ## Example: partition two kernels with Algorithm 1
//!
//! ```
//! use warped_slicer::resources::ResourceVec;
//! use warped_slicer::waterfill::{water_fill, KernelCurve};
//!
//! let cap = ResourceVec { regs: 32768, shmem: 48 * 1024, threads: 1536, ctas: 8 };
//! let compute = KernelCurve {
//!     perf: vec![0.25, 0.5, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0],
//!     cta_cost: ResourceVec { regs: 4096, shmem: 0, threads: 128, ctas: 1 },
//! };
//! let cache_sensitive = KernelCurve {
//!     perf: vec![0.8, 1.0, 0.7, 0.6, 0.5, 0.45, 0.4, 0.35],
//!     cta_cost: ResourceVec { regs: 3072, shmem: 0, threads: 192, ctas: 1 },
//! };
//! let partition = water_fill(&[compute, cache_sensitive], cap).expect("feasible");
//! assert_eq!(partition.ctas, vec![4, 2]); // compute scales, cache peaks at 2
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod audit;
pub mod energy;
pub mod metrics;
pub mod oracle;
pub mod phase;
pub mod policy;
pub mod profiler;
pub mod resources;
pub mod runner;
pub mod scaling;
pub mod store;
pub mod sweep;
pub mod tracefmt;
pub mod waterfill;

pub use audit::{AuditEvent, DecisionAudit};
pub use energy::{EnergyModel, EnergyReport};
pub use metrics::{antt, fairness, speedups, system_throughput};
pub use oracle::{feasible_quotas, run_oracle, OracleResult};
pub use phase::PhaseMonitor;
pub use policy::{
    make_controller, Controller, Decision, EvenController, FcfsController, LeftOverController,
    PolicyKind, QuotaController, SpatialController, WarpedSlicerConfig, WarpedSlicerController,
};
pub use profiler::{
    build_curves, build_curves_audited, profile_curves, ProfilePlan, ProfilePlanError,
    ProfileSample, ProfileTiming, SmAssignment,
};
pub use resources::ResourceVec;
pub use runner::{
    collect_stats, execute, execute_batch, execute_batch_observed, run_corun, run_isolation,
    run_with_cta_cap, AggregateStats, CacheStats, CorunResult, IsolationResult, RunConfig, SimJob,
    SimOutcome, SimStream, StopCondition, TraceOptions, UtilizationStats,
};
pub use scaling::{psi, scale_ipc, scale_ipc_audited, ScaleOutcome};
pub use store::{CurveKey, CurveStore, KernelSignature, SharedCurveStore, StoreEntry, StoreStats};
pub use sweep::{
    accept_pruned, predict_default, profile_curves_planned, PlannedSweep, SweepPlan, SweepWindow,
};
pub use tracefmt::{chrome_trace, jsonl, validate_jsonl};
pub use waterfill::{
    brute_force, water_fill, water_fill_traced, KernelCurve, Partition, WaterFillStep,
};
