//! Multiprogramming metrics (Sec. V-A and V-F).
//!
//! * **Combined IPC** — the sum of all kernels' instruction counts divided
//!   by the time until all kernels finish; figures normalize this to the
//!   Left-Over policy's value.
//! * **Fairness** — the *minimum speedup* across kernels, where a kernel's
//!   speedup is its isolated execution time over its multiprogrammed
//!   finish time (Fig. 9a).
//! * **ANTT** — average normalized turnaround time, the mean of the
//!   per-kernel slowdowns (Fig. 9b; lower is better).

use crate::runner::CorunResult;

/// Per-kernel speedups: `isolated_cycles / finish_cycle`.
///
/// Kernels that timed out get a speedup computed against the run's total
/// cycles (a conservative lower bound).
#[must_use]
pub fn speedups(result: &CorunResult, isolated_cycles: u64) -> Vec<f64> {
    result
        .finish_cycle
        .iter()
        .map(|f| isolated_cycles as f64 / f.unwrap_or(result.total_cycles).max(1) as f64)
        .collect()
}

/// Fairness: the minimum per-kernel speedup (Fig. 9a; higher is better).
///
/// A policy that finishes one kernel on time but doubles the other's
/// turnaround scores 0.5 — the starved kernel defines fairness.
#[must_use]
pub fn fairness(result: &CorunResult, isolated_cycles: u64) -> f64 {
    speedups(result, isolated_cycles)
        .into_iter()
        .fold(f64::INFINITY, f64::min)
}

/// Average normalized turnaround time: mean of `finish / isolated`
/// (Fig. 9b; lower is better, 1.0 = no slowdown).
#[must_use]
pub fn antt(result: &CorunResult, isolated_cycles: u64) -> f64 {
    let slowdowns: Vec<f64> = result
        .finish_cycle
        .iter()
        .map(|f| f.unwrap_or(result.total_cycles).max(1) as f64 / isolated_cycles as f64)
        .collect();
    slowdowns.iter().sum::<f64>() / slowdowns.len() as f64
}

/// System throughput: the sum of per-kernel speedups (a.k.a. weighted
/// speedup).
#[must_use]
pub fn system_throughput(result: &CorunResult, isolated_cycles: u64) -> f64 {
    speedups(result, isolated_cycles).iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::AggregateStats;

    fn result(finish: Vec<Option<u64>>, total: u64) -> CorunResult {
        CorunResult {
            label: "T".into(),
            policy: "test".into(),
            targets: vec![100; finish.len()],
            finish_cycle: finish,
            total_cycles: total,
            combined_ipc: 0.0,
            timed_out: false,
            stats: AggregateStats::default(),
            decision: None,
        }
    }

    #[test]
    fn speedups_divide_isolated_by_finish() {
        let r = result(vec![Some(200), Some(400)], 400);
        assert_eq!(speedups(&r, 200), vec![1.0, 0.5]);
    }

    #[test]
    fn fairness_is_the_minimum() {
        let r = result(vec![Some(200), Some(400), Some(250)], 400);
        assert!((fairness(&r, 200) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn antt_is_mean_slowdown() {
        let r = result(vec![Some(200), Some(400)], 400);
        // Slowdowns 1.0 and 2.0 -> ANTT 1.5.
        assert!((antt(&r, 200) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn stp_sums_speedups() {
        let r = result(vec![Some(200), Some(400)], 400);
        assert!((system_throughput(&r, 200) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn timed_out_kernels_use_total_cycles() {
        let r = result(vec![Some(100), None], 1000);
        assert_eq!(speedups(&r, 100), vec![1.0, 0.1]);
        assert!((antt(&r, 100) - 5.5).abs() < 1e-12);
    }
}
