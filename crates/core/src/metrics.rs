//! Multiprogramming metrics (Sec. V-A and V-F).
//!
//! * **Combined IPC** — the sum of all kernels' instruction counts divided
//!   by the time until all kernels finish; figures normalize this to the
//!   Left-Over policy's value.
//! * **Fairness** — the *minimum speedup* across kernels, where a kernel's
//!   speedup is its isolated execution time over its multiprogrammed
//!   finish time (Fig. 9a).
//! * **ANTT** — average normalized turnaround time, the mean of the
//!   per-kernel slowdowns (Fig. 9b; lower is better).
//!
//! Every metric takes *per-kernel* isolated cycle counts (`isolated[k]` is
//! how long kernel `k` alone needs for its equal-work target). A single
//! shared scalar — the historical interface — is wrong for heterogeneous
//! pairs: a kernel that exhausts its grid before the isolation budget has a
//! true isolated time below the budget, and normalizing it by the shared
//! budget inflated its speedup and deflated its slowdown.

use crate::runner::CorunResult;

/// Per-kernel speedups: `isolated[k] / finish_cycle[k]`.
///
/// Kernels that timed out get a speedup computed against the run's total
/// cycles (a conservative lower bound).
///
/// # Panics
///
/// Panics unless `isolated` has exactly one entry per kernel.
#[must_use]
pub fn speedups(result: &CorunResult, isolated: &[u64]) -> Vec<f64> {
    assert_eq!(
        isolated.len(),
        result.finish_cycle.len(),
        "one isolated-cycle count per kernel"
    );
    result
        .finish_cycle
        .iter()
        .zip(isolated)
        .map(|(f, &iso)| iso as f64 / f.unwrap_or(result.total_cycles).max(1) as f64)
        .collect()
}

/// Fairness: the minimum per-kernel speedup (Fig. 9a; higher is better).
///
/// A policy that finishes one kernel on time but doubles the other's
/// turnaround scores 0.5 — the starved kernel defines fairness.
///
/// # Panics
///
/// Panics unless `isolated` has exactly one entry per kernel.
#[must_use]
pub fn fairness(result: &CorunResult, isolated: &[u64]) -> f64 {
    speedups(result, isolated)
        .into_iter()
        .fold(f64::INFINITY, f64::min)
}

/// Average normalized turnaround time: mean of `finish[k] / isolated[k]`
/// (Fig. 9b; lower is better, 1.0 = no slowdown).
///
/// # Panics
///
/// Panics unless `isolated` has exactly one entry per kernel.
#[must_use]
pub fn antt(result: &CorunResult, isolated: &[u64]) -> f64 {
    assert_eq!(
        isolated.len(),
        result.finish_cycle.len(),
        "one isolated-cycle count per kernel"
    );
    let slowdowns: Vec<f64> = result
        .finish_cycle
        .iter()
        .zip(isolated)
        .map(|(f, &iso)| f.unwrap_or(result.total_cycles).max(1) as f64 / iso.max(1) as f64)
        .collect();
    slowdowns.iter().sum::<f64>() / slowdowns.len() as f64
}

/// System throughput: the sum of per-kernel speedups (a.k.a. weighted
/// speedup).
///
/// # Panics
///
/// Panics unless `isolated` has exactly one entry per kernel.
#[must_use]
pub fn system_throughput(result: &CorunResult, isolated: &[u64]) -> f64 {
    speedups(result, isolated).iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::AggregateStats;

    fn result(finish: Vec<Option<u64>>, total: u64) -> CorunResult {
        CorunResult {
            label: "T".into(),
            policy: "test".into(),
            targets: vec![100; finish.len()],
            finish_cycle: finish,
            total_cycles: total,
            combined_ipc: 0.0,
            timed_out: false,
            stats: AggregateStats::default(),
            decision: None,
        }
    }

    #[test]
    fn speedups_divide_isolated_by_finish() {
        let r = result(vec![Some(200), Some(400)], 400);
        assert_eq!(speedups(&r, &[200, 200]), vec![1.0, 0.5]);
    }

    #[test]
    fn fairness_is_the_minimum() {
        let r = result(vec![Some(200), Some(400), Some(250)], 400);
        assert!((fairness(&r, &[200, 200, 200]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn antt_is_mean_slowdown() {
        let r = result(vec![Some(200), Some(400)], 400);
        // Slowdowns 1.0 and 2.0 -> ANTT 1.5.
        assert!((antt(&r, &[200, 200]) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn stp_sums_speedups() {
        let r = result(vec![Some(200), Some(400)], 400);
        assert!((system_throughput(&r, &[200, 200]) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn timed_out_kernels_use_total_cycles() {
        let r = result(vec![Some(100), None], 1000);
        assert_eq!(speedups(&r, &[100, 100]), vec![1.0, 0.1]);
        assert!((antt(&r, &[100, 100]) - 5.5).abs() < 1e-12);
    }

    #[test]
    fn heterogeneous_pair_uses_each_kernels_own_isolation() {
        // Kernel 0 alone needs 100 cycles for its target, kernel 1 needs
        // 400 (e.g. it exhausted its grid before the isolation budget). In
        // the co-run they finish at 200 and 800: both were slowed 2x, so
        // fairness is 0.5 and ANTT is 2.0.
        let r = result(vec![Some(200), Some(800)], 800);
        let iso = [100u64, 400];
        assert_eq!(speedups(&r, &iso), vec![0.5, 0.5]);
        assert!((fairness(&r, &iso) - 0.5).abs() < 1e-12);
        assert!((antt(&r, &iso) - 2.0).abs() < 1e-12);
        assert!((system_throughput(&r, &iso) - 1.0).abs() < 1e-12);
        // Regression pin: the old interface applied one shared scalar (the
        // isolation budget both kernels ran under, here kernel 0's 100) to
        // every kernel and reported fairness 100/800 = 0.125 — starvation
        // that never happened — and ANTT (2 + 8) / 2 = 5.0. Pinned here as
        // the *wrong* values the shared-scalar computation produces.
        let shared = [100u64, 100];
        assert!((fairness(&r, &shared) - 0.125).abs() < 1e-12);
        assert!((antt(&r, &shared) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn property_fairness_is_min_isolated_over_finish() {
        // Randomized heterogeneous workloads: fairness must equal
        // `min_k(isolated[k] / finish[k])` computed independently, speedups
        // must be the per-kernel ratios, and ANTT the mean of their
        // reciprocals — for any kernel count, finish order, and timeout mix.
        let mut rng = gpu_sim::SimRng::seed_from_u64(0x5eed_fa1e);
        for round in 0..200 {
            let k = 2 + (rng.next_u64() % 3) as usize;
            let total = 1_000 + rng.next_u64() % 100_000;
            let finish: Vec<Option<u64>> = (0..k)
                .map(|_| (!rng.next_u64().is_multiple_of(8)).then(|| 1 + rng.next_u64() % total))
                .collect();
            let iso: Vec<u64> = (0..k).map(|_| 1 + rng.next_u64() % total).collect();
            let r = result(finish.clone(), total);
            let ratios: Vec<f64> = finish
                .iter()
                .zip(&iso)
                .map(|(f, &i)| i as f64 / f.unwrap_or(total).max(1) as f64)
                .collect();
            let min_ratio = ratios.iter().copied().fold(f64::INFINITY, f64::min);
            assert_eq!(speedups(&r, &iso), ratios, "round {round}");
            assert!(
                (fairness(&r, &iso) - min_ratio).abs() < 1e-12,
                "round {round}: fairness {} vs oracle {min_ratio}",
                fairness(&r, &iso)
            );
            let mean_slowdown = ratios.iter().map(|s| 1.0 / s).sum::<f64>() / k as f64;
            assert!(
                (antt(&r, &iso) - mean_slowdown).abs() < 1e-9 * mean_slowdown,
                "round {round}: antt {} vs oracle {mean_slowdown}",
                antt(&r, &iso)
            );
        }
    }

    #[test]
    #[should_panic(expected = "one isolated-cycle count per kernel")]
    fn mismatched_isolated_slice_rejected() {
        let r = result(vec![Some(200), Some(400)], 400);
        let _ = speedups(&r, &[200]);
    }
}
