//! The Oracle (Sec. V-A): "the highest performance we obtained for the
//! application pair among all multiprogramming approaches discussed in this
//! paper (Left-Over, Spatial and Intra-SM Slicing)", with intra-SM slicing
//! searched exhaustively over all feasible CTA combinations.

use gpu_sim::KernelDesc;

use crate::policy::PolicyKind;
use crate::resources::ResourceVec;
use crate::runner::{run_corun, CorunResult, RunConfig};

/// Enumerates every feasible CTA-quota vector for `descs` on one SM (each
/// kernel gets at least one CTA; all capacity constraints respected).
#[must_use]
pub fn feasible_quotas(descs: &[&KernelDesc], cfg: &RunConfig) -> Vec<Vec<u32>> {
    let cap = ResourceVec::sm_capacity(&cfg.gpu.sm);
    let costs: Vec<ResourceVec> = descs.iter().map(|d| ResourceVec::cta_cost(d)).collect();
    let maxes: Vec<u32> = descs
        .iter()
        .map(|d| d.max_ctas_per_sm(&cfg.gpu.sm).max(1))
        .collect();
    let mut out = Vec::new();
    let mut current = vec![1u32; descs.len()];
    enumerate(&costs, &maxes, cap, 0, &mut current, &mut out);
    out
}

fn enumerate(
    costs: &[ResourceVec],
    maxes: &[u32],
    left: ResourceVec,
    i: usize,
    current: &mut Vec<u32>,
    out: &mut Vec<Vec<u32>>,
) {
    if i == costs.len() {
        out.push(current.clone());
        return;
    }
    for t in 1..=maxes[i] {
        let need = costs[i].times(u64::from(t));
        if !left.covers(&need) {
            break;
        }
        current[i] = t;
        enumerate(
            costs,
            maxes,
            left.saturating_sub(&need),
            i + 1,
            current,
            out,
        );
    }
}

/// The Oracle's verdict for one workload.
#[derive(Debug, Clone)]
pub struct OracleResult {
    /// The best run found.
    pub best: CorunResult,
    /// The policy that achieved it (printable form).
    pub best_policy: String,
    /// Combined IPC of every candidate tried, for inspection.
    pub candidates: Vec<(String, f64)>,
}

/// Exhaustively searches Left-Over, Spatial, Even and every feasible CTA
/// quota, returning the best result by combined IPC.
///
/// # Panics
///
/// Panics if `descs` is empty or the workload has no feasible co-location
/// *and* no baseline run completes.
#[must_use]
pub fn run_oracle(descs: &[&KernelDesc], targets: &[u64], cfg: &RunConfig) -> OracleResult {
    let mut policies: Vec<PolicyKind> =
        vec![PolicyKind::LeftOver, PolicyKind::Spatial, PolicyKind::Even];
    policies.extend(
        feasible_quotas(descs, cfg)
            .into_iter()
            .map(PolicyKind::Quota),
    );
    let mut candidates = Vec::with_capacity(policies.len());
    let mut best: Option<(CorunResult, String)> = None;
    for p in policies {
        let r = run_corun(descs, targets, &p, cfg);
        candidates.push((p.to_string(), r.combined_ipc));
        let better = match &best {
            None => true,
            Some((b, _)) => r.combined_ipc > b.combined_ipc,
        };
        if better {
            best = Some((r, p.to_string()));
        }
    }
    // Invariant: the candidate list always contains the spatial fallback,
    // so `best` is set. xtask-allow: no-unwrap
    let (best, best_policy) = best.expect("at least one policy candidate");
    OracleResult {
        best,
        best_policy,
        candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ws_workloads::by_abbrev;

    #[test]
    fn quota_enumeration_respects_capacity() {
        let cfg = RunConfig::default();
        let img = by_abbrev("IMG").unwrap().desc;
        let nn = by_abbrev("NN").unwrap().desc;
        let quotas = feasible_quotas(&[&img, &nn], &cfg);
        assert!(!quotas.is_empty());
        let cap = ResourceVec::sm_capacity(&cfg.gpu.sm);
        for q in &quotas {
            let used = ResourceVec::cta_cost(&img)
                .times(u64::from(q[0]))
                .plus(&ResourceVec::cta_cost(&nn).times(u64::from(q[1])));
            assert!(cap.covers(&used), "infeasible quota {q:?}");
            assert!(q.iter().all(|&t| t >= 1));
        }
        // Every quota vector is unique.
        let mut sorted = quotas.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), quotas.len());
    }

    #[test]
    fn big_kernels_have_few_feasible_combos() {
        let cfg = RunConfig::default();
        let bfs = by_abbrev("BFS").unwrap().desc;
        let hot = by_abbrev("HOT").unwrap().desc;
        // BFS CTAs are 512 threads and HOT CTAs 256: at most
        // (1536 - 256) / 512 = 2 BFS with 1 HOT, etc.
        let quotas = feasible_quotas(&[&hot, &bfs], &cfg);
        for q in &quotas {
            assert!(256 * q[0] + 512 * q[1] <= 1536, "{q:?}");
        }
    }

    #[test]
    fn oracle_beats_or_matches_left_over() {
        let cfg = RunConfig {
            isolation_cycles: 8_000,
            ..RunConfig::default()
        };
        let img = by_abbrev("IMG").unwrap().desc;
        let blk = by_abbrev("BLK").unwrap().desc;
        let ta = crate::runner::run_isolation(&img, &cfg).target_insts;
        let tb = crate::runner::run_isolation(&blk, &cfg).target_insts;
        let oracle = run_oracle(&[&img, &blk], &[ta, tb], &cfg);
        let lo = oracle
            .candidates
            .iter()
            .find(|(p, _)| p == "Left-Over")
            .expect("left-over evaluated");
        assert!(oracle.best.combined_ipc >= lo.1);
        assert!(oracle.candidates.len() > 3, "quota combos were searched");
    }
}
