//! Phase-behaviour detection (Sec. IV-B).
//!
//! After a partition decision, per-kernel IPC is monitored over fixed
//! windows. If the IPC deviates from the post-decision baseline by more
//! than a threshold for several consecutive windows (a *significant and
//! sustained* change), the controller should re-enter the sampling phase
//! and re-run the partitioning algorithm.

/// Sliding-window IPC monitor for one kernel.
///
/// # Examples
///
/// ```
/// use warped_slicer::phase::PhaseMonitor;
///
/// let mut m = PhaseMonitor::new(0.3, 2);
/// assert!(!m.observe(2.0)); // establishes the baseline
/// assert!(!m.observe(0.5)); // first deviant window
/// assert!(m.observe(0.5));  // sustained -> phase change
/// ```
#[derive(Debug, Clone)]
pub struct PhaseMonitor {
    threshold: f64,
    sustain: u32,
    baseline: Option<f64>,
    deviant_windows: u32,
}

impl PhaseMonitor {
    /// Creates a monitor that triggers after `sustain` consecutive windows
    /// deviating more than `threshold` (relative) from the baseline.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not positive or `sustain` is zero.
    #[must_use]
    pub fn new(threshold: f64, sustain: u32) -> Self {
        assert!(threshold > 0.0, "threshold must be positive");
        assert!(sustain > 0, "sustain must be at least one window");
        Self {
            threshold,
            sustain,
            baseline: None,
            deviant_windows: 0,
        }
    }

    /// Defaults matching the paper's discussion: a 30 % sustained change
    /// over at least the length of one profile run (one 5 K-cycle window).
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(0.3, 2)
    }

    /// Feeds one window's IPC. Returns `true` when a significant, sustained
    /// phase change is detected; the monitor then re-arms — the baseline is
    /// cleared and re-established from the *next* observed window, so the
    /// kernel's post-trigger steady state (typically under a fresh
    /// partition) defines the new reference rather than the transition
    /// window itself.
    pub fn observe(&mut self, window_ipc: f64) -> bool {
        let Some(base) = self.baseline else {
            self.baseline = Some(window_ipc);
            return false;
        };
        let deviation = if base.abs() < f64::EPSILON {
            if window_ipc.abs() < f64::EPSILON {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (window_ipc - base).abs() / base
        };
        if deviation > self.threshold {
            self.deviant_windows += 1;
            if self.deviant_windows >= self.sustain {
                // Re-arm rather than re-baseline at the transition window's
                // IPC: the trigger window is mid-transition, and using it as
                // the new reference made any settled level > threshold away
                // from it re-fire every `sustain` windows (a re-sampling
                // storm).
                self.baseline = None;
                self.deviant_windows = 0;
                return true;
            }
        } else {
            self.deviant_windows = 0;
        }
        false
    }

    /// Clears the baseline (e.g., after an externally triggered re-profile).
    pub fn reset(&mut self) {
        self.baseline = None;
        self.deviant_windows = 0;
    }

    /// The current baseline IPC, if established.
    #[must_use]
    pub fn baseline(&self) -> Option<f64> {
        self.baseline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_ipc_never_triggers() {
        let mut m = PhaseMonitor::new(0.3, 2);
        for _ in 0..100 {
            assert!(!m.observe(2.0));
        }
    }

    #[test]
    fn small_noise_never_triggers() {
        let mut m = PhaseMonitor::new(0.3, 2);
        let series = [2.0, 2.2, 1.9, 2.1, 1.8, 2.3, 2.0];
        for ipc in series {
            assert!(!m.observe(ipc));
        }
    }

    #[test]
    fn sustained_change_triggers_once() {
        let mut m = PhaseMonitor::new(0.3, 2);
        assert!(!m.observe(2.0)); // baseline
        assert!(!m.observe(0.5)); // first deviant window
        assert!(m.observe(0.5)); // second -> trigger
                                 // Re-armed: the next window re-establishes
                                 // the baseline, so a stable continuation is
                                 // quiet.
        assert!(!m.observe(0.5));
        assert!(!m.observe(0.52));
    }

    #[test]
    fn rearms_after_trigger_and_does_not_refire() {
        // Regression: the monitor used to re-baseline at the *trigger
        // window's* IPC instead of re-arming. A kernel settling afterwards
        // at a level > threshold away from that mid-transition value then
        // re-fired every `sustain` windows — a perpetual re-sampling storm.
        let mut m = PhaseMonitor::new(0.3, 2);
        assert!(!m.observe(2.0)); // baseline
        assert!(!m.observe(0.2)); // first deviant window
        assert!(m.observe(0.6)); // second -> trigger, re-arm
        assert_eq!(m.baseline(), None, "trigger must clear the baseline");
        // Settled level 0.8 deviates 33% from the trigger window's 0.6, so
        // the buggy monitor fired again here every two windows. The fixed
        // one re-baselines at 0.8 and stays quiet forever.
        for _ in 0..20 {
            assert!(!m.observe(0.8), "monitor re-fired after settling");
        }
        assert_eq!(m.baseline(), Some(0.8));
    }

    #[test]
    fn transient_spike_does_not_trigger() {
        let mut m = PhaseMonitor::new(0.3, 2);
        assert!(!m.observe(2.0));
        assert!(!m.observe(0.5)); // one bad window
        assert!(!m.observe(2.0)); // recovered -> counter resets
        assert!(!m.observe(0.5));
        assert!(!m.observe(2.0));
    }

    #[test]
    fn zero_baseline_handled() {
        let mut m = PhaseMonitor::new(0.3, 1);
        assert!(!m.observe(0.0));
        assert!(
            m.observe(1.0),
            "any activity after a dead window is a change"
        );
    }

    #[test]
    fn reset_forgets_baseline() {
        let mut m = PhaseMonitor::new(0.3, 1);
        let _ = m.observe(2.0);
        m.reset();
        assert_eq!(m.baseline(), None);
        assert!(!m.observe(10.0), "first window after reset is the baseline");
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn invalid_threshold_rejected() {
        let _ = PhaseMonitor::new(0.0, 1);
    }
}
