//! Multiprogramming policies (CTA-dispatch controllers).
//!
//! The simulator exposes launch primitives; a [`Controller`] decides every
//! cycle which kernel's CTAs go where. This module implements the paper's
//! baselines — [`LeftOverController`] (the Hyper-Q/CKE default),
//! [`FcfsController`] (Fig. 2a), [`EvenController`] (even intra-SM split),
//! [`SpatialController`] (inter-SM multitasking), [`QuotaController`]
//! (a fixed CTA-quota intra-SM partition, used by the Oracle search) — and
//! re-exports the dynamic [`WarpedSlicerController`].

mod warped_slicer;

pub use warped_slicer::{WarpedSlicerConfig, WarpedSlicerController};

use gpu_sim::{Gpu, GpuConfig, KernelDesc, KernelId, PartitionWindow, Region};

/// Which multiprogramming policy to run.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyKind {
    /// Kernel 1 receives every resource it can use; later kernels get the
    /// leftovers (the baseline of all figures).
    LeftOver,
    /// First-come-first-serve interleaved allocation (Fig. 2a).
    Fcfs,
    /// Each kernel is confined to a `1/K` slice of every SM resource.
    Even,
    /// Inter-SM slicing: each kernel gets a dedicated group of SMs.
    Spatial,
    /// Fixed intra-SM CTA quotas (used by the Oracle exhaustive search).
    Quota(Vec<u32>),
    /// The paper's contribution: online profiling + water-filling.
    WarpedSlicer(WarpedSlicerConfig),
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::LeftOver => write!(f, "Left-Over"),
            Self::Fcfs => write!(f, "FCFS"),
            Self::Even => write!(f, "Even"),
            Self::Spatial => write!(f, "Spatial"),
            Self::Quota(q) => write!(f, "Quota{q:?}"),
            Self::WarpedSlicer(_) => write!(f, "Warped-Slicer"),
        }
    }
}

/// The partitioning outcome a dynamic policy settled on (for Table III).
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// CTA quotas per kernel, when intra-SM slicing was chosen.
    pub quotas: Option<Vec<u32>>,
    /// Whether the policy fell back to spatial multitasking.
    pub spatial_fallback: bool,
    /// Predicted normalized performance per kernel at the decision point.
    pub predicted_perf: Vec<f64>,
    /// Cycle at which the decision took effect.
    pub decided_at: u64,
    /// The scaled performance-vs-CTA curves the decision was based on
    /// (per kernel; raw IPC units).
    pub measured_curves: Vec<Vec<f64>>,
}

/// A CTA-dispatch controller driven once per simulated cycle.
pub trait Controller: std::fmt::Debug {
    /// Called before each `gpu.tick()`.
    fn on_cycle(&mut self, gpu: &mut Gpu);

    /// The partition decision, if this policy makes one.
    fn decision(&self) -> Option<&Decision> {
        None
    }

    /// The decision-audit trail, if this policy records one (see
    /// [`crate::audit::DecisionAudit`]; only the Warped-Slicer controller
    /// does, and only when
    /// [`WarpedSlicerConfig::audit`](crate::policy::WarpedSlicerConfig) is
    /// set).
    fn audit(&self) -> Option<&crate::audit::DecisionAudit> {
        None
    }

    /// Earliest future cycle at which this controller may act even though
    /// the GPU's launch-relevant state (completed CTAs, halted kernels) is
    /// unchanged — a timer-driven intervention such as a sampling-phase
    /// boundary or a periodic phase-monitor check.
    ///
    /// The runner's fast-forward path clamps every dead-cycle skip to this
    /// value, so returning `None` promises "I only react to state changes".
    /// Returning `Some(c)` with `c` *later* than the true intervention
    /// cycle is a correctness bug; *earlier* merely forfeits speedup.
    fn next_intervention(&self) -> Option<u64> {
        None
    }
}

/// Builds the controller for `kind`.
#[must_use]
pub fn make_controller(kind: &PolicyKind) -> Box<dyn Controller> {
    match kind {
        PolicyKind::LeftOver => Box::new(LeftOverController::new()),
        PolicyKind::Fcfs => Box::new(FcfsController::new()),
        PolicyKind::Even => Box::new(EvenController::new()),
        PolicyKind::Spatial => Box::new(SpatialController::new()),
        PolicyKind::Quota(q) => Box::new(QuotaController::new(q.clone())),
        PolicyKind::WarpedSlicer(cfg) => Box::new(WarpedSlicerController::new(cfg.clone())),
    }
}

/// Cheap change detector: launch opportunities only appear when a CTA
/// retires, a kernel halts, or the controller itself changed windows.
#[derive(Debug, Default, Clone)]
pub(crate) struct ChangeTracker {
    last: Option<(u64, usize)>,
}

impl ChangeTracker {
    pub(crate) fn changed(&mut self, gpu: &Gpu) -> bool {
        let cur = (gpu.total_completed(), gpu.halted_kernels());
        if self.last == Some(cur) {
            false
        } else {
            self.last = Some(cur);
            true
        }
    }

    /// Forces the next `changed` call to report `true`.
    pub(crate) fn invalidate(&mut self) {
        self.last = None;
    }
}

/// A window that blocks a kernel from an SM entirely.
#[must_use]
pub(crate) fn blocked_window() -> PartitionWindow {
    PartitionWindow {
        regs: Region { start: 0, len: 0 },
        shmem: Region { start: 0, len: 0 },
        max_ctas: 0,
        max_threads: 0,
    }
}

/// The even-partitioning window for kernel-slot `i` of `k` kernels: slice
/// `i` of every resource.
#[must_use]
pub(crate) fn even_window(cfg: &GpuConfig, i: usize, k: usize) -> PartitionWindow {
    let k32 = k as u32;
    let i32 = i as u32;
    let reg_slice = cfg.sm.max_registers / k32;
    let shm_slice = cfg.sm.shared_mem_bytes / k32;
    PartitionWindow {
        regs: Region {
            start: i32 * reg_slice,
            len: reg_slice,
        },
        shmem: Region {
            start: i32 * shm_slice,
            len: shm_slice,
        },
        max_ctas: (cfg.sm.max_ctas / k32).max(1),
        max_threads: (cfg.sm.max_threads / k32).max(1),
    }
}

/// Packed quota windows: kernel `i` gets a contiguous region sized for
/// `quotas[i]` CTAs of its footprint, laid out back to back (Fig. 2d).
#[must_use]
pub(crate) fn quota_windows(
    cfg: &GpuConfig,
    descs: &[&KernelDesc],
    quotas: &[u32],
) -> Vec<PartitionWindow> {
    let mut reg_cursor = 0u32;
    let mut shm_cursor = 0u32;
    descs
        .iter()
        .zip(quotas)
        .map(|(d, &q)| {
            let reg_len = (d.regs_per_cta() * q).min(cfg.sm.max_registers - reg_cursor);
            let shm_len = (d.shmem_per_cta * q).min(cfg.sm.shared_mem_bytes - shm_cursor);
            let w = PartitionWindow {
                regs: Region {
                    start: reg_cursor,
                    len: reg_len,
                },
                shmem: Region {
                    start: shm_cursor,
                    len: shm_len,
                },
                max_ctas: q,
                max_threads: (d.threads_per_cta * q).min(cfg.sm.max_threads),
            };
            reg_cursor += reg_len;
            shm_cursor += shm_len;
            w
        })
        .collect()
}

/// Fills every SM with CTAs, trying kernels in `order`, optionally
/// restricted by `allowed(sm, kernel)`.
pub(crate) fn sweep_launch(
    gpu: &mut Gpu,
    order: &[KernelId],
    allowed: impl Fn(usize, KernelId) -> bool,
) {
    for sm in 0..gpu.num_sms() {
        for &k in order {
            if !allowed(sm, k) {
                continue;
            }
            while gpu.try_launch(k, sm) {}
        }
    }
}

/// The Left-Over policy: kernels are served strictly in arrival order.
#[derive(Debug, Default)]
pub struct LeftOverController {
    tracker: ChangeTracker,
}

impl LeftOverController {
    /// Creates the controller.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Controller for LeftOverController {
    fn on_cycle(&mut self, gpu: &mut Gpu) {
        if self.tracker.changed(gpu) {
            let order = gpu.kernel_ids();
            sweep_launch(gpu, &order, |_, _| true);
        }
    }
}

/// FCFS interleaved allocation: kernels take turns claiming resources, so
/// their CTAs interleave in the register file and shared memory (Fig. 2a).
#[derive(Debug, Default)]
pub struct FcfsController {
    tracker: ChangeTracker,
    next: usize,
}

impl FcfsController {
    /// Creates the controller.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Controller for FcfsController {
    fn on_cycle(&mut self, gpu: &mut Gpu) {
        if !self.tracker.changed(gpu) {
            return;
        }
        let ids = gpu.kernel_ids();
        let k = ids.len();
        for sm in 0..gpu.num_sms() {
            // Alternate kernels one CTA at a time until nothing fits.
            let mut stuck = 0;
            while stuck < k {
                let kid = ids[self.next % k];
                self.next += 1;
                if gpu.try_launch(kid, sm) {
                    stuck = 0;
                } else {
                    stuck += 1;
                }
            }
        }
    }
}

/// Even intra-SM partitioning: each kernel is confined to a `1/K` slice of
/// every SM resource (Fig. 2c).
#[derive(Debug, Default)]
pub struct EvenController {
    tracker: ChangeTracker,
    configured: bool,
    released: bool,
}

impl EvenController {
    /// Creates the controller.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Controller for EvenController {
    fn on_cycle(&mut self, gpu: &mut Gpu) {
        let ids = gpu.kernel_ids();
        if !self.configured {
            self.configured = true;
            let cfg = gpu.config().clone();
            for sm in 0..gpu.num_sms() {
                for (i, &k) in ids.iter().enumerate() {
                    gpu.set_window(sm, k, Some(even_window(&cfg, i, ids.len())));
                }
            }
            self.tracker.invalidate();
        }
        // Once any kernel finishes its work, survivors may use everything.
        if !self.released && gpu.halted_kernels() > 0 {
            self.released = true;
            for sm in 0..gpu.num_sms() {
                for &k in &ids {
                    gpu.set_window(sm, k, None);
                }
            }
            self.tracker.invalidate();
        }
        if self.tracker.changed(gpu) {
            sweep_launch(gpu, &ids, |_, _| true);
        }
    }
}

/// Spatial multitasking: SMs are split into one group per kernel.
#[derive(Debug, Default)]
pub struct SpatialController {
    tracker: ChangeTracker,
}

impl SpatialController {
    /// Creates the controller.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Group assignment: kernel owning SM `sm` out of `k` kernels over
    /// `num_sms` SMs (contiguous equal groups).
    #[must_use]
    pub fn owner_of(sm: usize, num_sms: usize, k: usize) -> usize {
        (sm * k / num_sms).min(k - 1)
    }
}

impl Controller for SpatialController {
    fn on_cycle(&mut self, gpu: &mut Gpu) {
        if !self.tracker.changed(gpu) {
            return;
        }
        let ids = gpu.kernel_ids();
        let k = ids.len();
        let n = gpu.num_sms();
        let all_alive = gpu.halted_kernels() == 0;
        sweep_launch(gpu, &ids, |sm, kid| {
            if all_alive {
                Self::owner_of(sm, n, k) == kid.0
            } else {
                true // survivors expand over the whole GPU
            }
        });
    }
}

/// Fixed CTA-quota intra-SM partitioning on every SM (Fig. 2d). This is
/// both the Oracle search's building block and the mechanism the
/// Warped-Slicer applies after its decision.
#[derive(Debug)]
pub struct QuotaController {
    quotas: Vec<u32>,
    tracker: ChangeTracker,
    configured: bool,
    released: bool,
    decision: Decision,
}

impl QuotaController {
    /// Creates a controller enforcing `quotas[i]` CTAs of kernel-slot `i`
    /// per SM.
    #[must_use]
    pub fn new(quotas: Vec<u32>) -> Self {
        Self {
            decision: Decision {
                quotas: Some(quotas.clone()),
                spatial_fallback: false,
                predicted_perf: Vec::new(),
                decided_at: 0,
                measured_curves: Vec::new(),
            },
            quotas,
            tracker: ChangeTracker::default(),
            configured: false,
            released: false,
        }
    }
}

impl Controller for QuotaController {
    fn on_cycle(&mut self, gpu: &mut Gpu) {
        let ids = gpu.kernel_ids();
        if !self.configured {
            self.configured = true;
            let cfg = gpu.config().clone();
            let descs: Vec<KernelDesc> = ids.iter().map(|&k| gpu.kernel_desc(k).clone()).collect();
            let desc_refs: Vec<&KernelDesc> = descs.iter().collect();
            let windows = quota_windows(&cfg, &desc_refs, &self.quotas);
            for sm in 0..gpu.num_sms() {
                for (&k, w) in ids.iter().zip(&windows) {
                    gpu.set_window(sm, k, Some(*w));
                }
            }
            self.tracker.invalidate();
        }
        if !self.released && gpu.halted_kernels() > 0 {
            self.released = true;
            for sm in 0..gpu.num_sms() {
                for &k in &ids {
                    gpu.set_window(sm, k, None);
                }
            }
            self.tracker.invalidate();
        }
        if self.tracker.changed(gpu) {
            sweep_launch(gpu, &ids, |_, _| true);
        }
    }

    fn decision(&self) -> Option<&Decision> {
        Some(&self.decision)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{GpuConfig, SchedulerKind};
    use ws_workloads::{by_abbrev, suite};

    fn gpu_with(abbrevs: &[&str]) -> Gpu {
        let mut gpu = Gpu::new(GpuConfig::isca_baseline(), SchedulerKind::GreedyThenOldest);
        for a in abbrevs {
            gpu.add_kernel(by_abbrev(a).unwrap().desc);
        }
        gpu
    }

    #[test]
    fn left_over_starves_the_second_kernel() {
        let mut gpu = gpu_with(&["IMG", "NN"]);
        let mut c = LeftOverController::new();
        for _ in 0..2000 {
            c.on_cycle(&mut gpu);
            gpu.tick();
        }
        assert!(gpu.kernel_insts(KernelId(0)) > 0);
        assert_eq!(
            gpu.kernel_insts(KernelId(1)),
            0,
            "kernel 2 must wait while kernel 1 has CTAs left"
        );
    }

    #[test]
    fn even_splits_resources_in_half() {
        let mut gpu = gpu_with(&["IMG", "NN"]);
        let mut c = EvenController::new();
        for _ in 0..3000 {
            c.on_cycle(&mut gpu);
            gpu.tick();
        }
        // Both kernels run everywhere, each capped at 4 CTAs per SM.
        for sm in gpu.sms() {
            assert!(sm.kernel_ctas(0) <= 4);
            assert!(sm.kernel_ctas(1) <= 4);
            assert!(sm.kernel_ctas(0) >= 1);
            assert!(sm.kernel_ctas(1) >= 1);
        }
        assert!(gpu.kernel_insts(KernelId(1)) > 0);
    }

    #[test]
    fn spatial_separates_sm_groups() {
        let mut gpu = gpu_with(&["IMG", "NN"]);
        let mut c = SpatialController::new();
        for _ in 0..1000 {
            c.on_cycle(&mut gpu);
            gpu.tick();
        }
        for s in 0..16 {
            let sm = gpu.sm(s);
            if s < 8 {
                assert!(sm.kernel_ctas(0) > 0 && sm.kernel_ctas(1) == 0);
            } else {
                assert!(sm.kernel_ctas(1) > 0 && sm.kernel_ctas(0) == 0);
            }
        }
    }

    #[test]
    fn quota_controller_enforces_quotas() {
        let mut gpu = gpu_with(&["IMG", "NN"]);
        let mut c = QuotaController::new(vec![5, 3]);
        for _ in 0..3000 {
            c.on_cycle(&mut gpu);
            gpu.tick();
        }
        for sm in gpu.sms() {
            assert!(sm.kernel_ctas(0) <= 5);
            assert!(sm.kernel_ctas(1) <= 3);
        }
        assert_eq!(
            c.decision().unwrap().quotas.as_deref(),
            Some([5u32, 3].as_slice())
        );
    }

    #[test]
    fn quota_release_on_halt_lets_survivor_expand() {
        let mut gpu = gpu_with(&["IMG", "NN"]);
        let mut c = QuotaController::new(vec![4, 4]);
        for _ in 0..500 {
            c.on_cycle(&mut gpu);
            gpu.tick();
        }
        gpu.halt_kernel(KernelId(1));
        for _ in 0..4000 {
            c.on_cycle(&mut gpu);
            gpu.tick();
        }
        // NN gone; IMG should now exceed its old quota of 4 somewhere.
        assert!(
            gpu.sms().any(|sm| sm.kernel_ctas(0) > 4),
            "survivor should expand past its quota"
        );
    }

    #[test]
    fn fcfs_interleaves_both_kernels_immediately() {
        let mut gpu = gpu_with(&["IMG", "NN"]);
        let mut c = FcfsController::new();
        c.on_cycle(&mut gpu);
        let sm = gpu.sm(0);
        assert!(sm.kernel_ctas(0) > 0 && sm.kernel_ctas(1) > 0);
    }

    #[test]
    fn owner_of_partitions_evenly() {
        let owners: Vec<usize> = (0..16)
            .map(|s| SpatialController::owner_of(s, 16, 2))
            .collect();
        assert_eq!(owners.iter().filter(|&&o| o == 0).count(), 8);
        assert_eq!(owners.iter().filter(|&&o| o == 1).count(), 8);
        let owners3: Vec<usize> = (0..16)
            .map(|s| SpatialController::owner_of(s, 16, 3))
            .collect();
        for k in 0..3 {
            let n = owners3.iter().filter(|&&o| o == k).count();
            assert!(n >= 5, "group {k} too small: {owners3:?}");
        }
    }

    #[test]
    fn even_window_slices_do_not_overlap() {
        let cfg = GpuConfig::isca_baseline();
        let w0 = even_window(&cfg, 0, 2);
        let w1 = even_window(&cfg, 1, 2);
        assert_eq!(w0.regs.end(), w1.regs.start);
        assert_eq!(w0.shmem.end(), w1.shmem.start);
        assert_eq!(w0.max_ctas, 4);
    }

    #[test]
    fn quota_windows_pack_back_to_back() {
        let cfg = GpuConfig::isca_baseline();
        let a = by_abbrev("IMG").unwrap().desc;
        let b = by_abbrev("NN").unwrap().desc;
        let ws = quota_windows(&cfg, &[&a, &b], &[5, 3]);
        assert_eq!(ws[0].regs.start, 0);
        assert_eq!(ws[0].regs.len, 5 * a.regs_per_cta());
        assert_eq!(ws[1].regs.start, ws[0].regs.end());
        assert_eq!(ws[1].regs.len, 3 * b.regs_per_cta());
        assert_eq!(ws[0].max_ctas, 5);
        assert_eq!(ws[1].max_threads, 3 * b.threads_per_cta);
    }

    #[test]
    fn all_benchmarks_launch_under_every_static_policy() {
        // Smoke: every suite kernel can co-run under each static policy
        // without panicking.
        for policy in [PolicyKind::LeftOver, PolicyKind::Even, PolicyKind::Spatial] {
            let mut gpu = gpu_with(&["MM", "BLK"]);
            let mut c = make_controller(&policy);
            for _ in 0..500 {
                c.on_cycle(&mut gpu);
                gpu.tick();
            }
            let _ = suite();
            assert!(gpu.kernel_insts(KernelId(0)) > 0, "{policy}");
        }
    }
}
