//! The Warped-Slicer dynamic intra-SM slicing controller (Sec. IV).
//!
//! Lifecycle: *profile* (each SM holds a different CTA count of one kernel;
//! Fig. 4) → *sample* (5 K-cycle IPC / `φ_mem` measurement per SM) →
//! *decide* (bandwidth-scaled curves into the water-filling partitioner;
//! fall back to spatial multitasking when the predicted loss exceeds
//! `1/K × 120 %`) → *run* (fixed CTA quotas per SM, Fig. 2d/2e), with an
//! optional phase monitor that re-triggers sampling on sustained IPC shifts.

use gpu_sim::{Gpu, KernelDesc};

use crate::audit::{AuditEvent, DecisionAudit};
use crate::phase::PhaseMonitor;
use crate::policy::{
    blocked_window, quota_windows, sweep_launch, ChangeTracker, Controller, Decision,
    SpatialController,
};
use crate::profiler::{
    build_curves, build_curves_audited, BandwidthSample, ProfilePlan, ProfileSample, ProfileTiming,
};
use crate::resources::ResourceVec;
use crate::store::{KernelSignature, SharedCurveStore, StoreEntry};
use crate::sweep::{predict_default, SweepWindow};
use crate::waterfill::{water_fill, water_fill_traced, KernelCurve};
use ws_analyze::predict_kernel;

/// Tunables for the Warped-Slicer controller.
#[derive(Debug, Clone, PartialEq)]
pub struct WarpedSlicerConfig {
    /// Warm-up / sample / decision-delay cycle counts.
    pub timing: ProfileTiming,
    /// Per-kernel performance-loss threshold above which the controller
    /// falls back to spatial multitasking. `None` selects the paper's
    /// `1/K × 120 %`.
    pub loss_threshold: Option<f64>,
    /// Apply the Eq. 3 bandwidth-interference scaling factor (ablation
    /// hook; the paper always scales).
    pub enable_scaling: bool,
    /// Monitor per-kernel IPC after the decision and re-profile on
    /// sustained change (Sec. IV-B).
    pub enable_phase_monitor: bool,
    /// Phase-monitor window length in cycles.
    pub phase_window: u64,
    /// Windows to wait after a decision before arming the phase monitor,
    /// so the drain of over-quota profile CTAs (Fig. 2e) is not mistaken
    /// for a program phase change.
    pub phase_settle_windows: u32,
    /// Record a [`DecisionAudit`] of every scaling application,
    /// water-filling grant, fallback verdict, and phase-monitor window.
    /// Recording happens only at decision points, so the simulated run is
    /// identical either way; off by default to keep decisions
    /// allocation-free.
    pub audit: bool,
    /// Plan the profiling ramp from `ws-predict` static curves: each
    /// kernel's SM group concentrates its CTA counts in a window around the
    /// predicted knee (guarding the feasibility bound) instead of the plain
    /// `1..=N` ramp. `None` defers to the `WS_PREDICT` environment variable
    /// ([`crate::sweep::predict_default`]); `Some` pins the behavior
    /// regardless of the environment.
    pub predict: Option<bool>,
    /// Attach a shared ws-store performance-curve cache. Before installing
    /// profiling windows the controller looks every kernel's signature up
    /// in the store; when all of them hit, the memoized curves go straight
    /// to Algorithm 1 water-filling and the profiling sweep is skipped
    /// entirely. Cold decisions insert their accepted curves; a
    /// phase-monitor trigger invalidates exactly the triggered kernel's
    /// key before the re-profile replaces it. `None` (the default) keeps
    /// the controller store-free.
    pub store: Option<SharedCurveStore>,
}

impl Default for WarpedSlicerConfig {
    fn default() -> Self {
        Self {
            timing: ProfileTiming::default(),
            loss_threshold: None,
            enable_scaling: true,
            enable_phase_monitor: true,
            phase_window: 5_000,
            phase_settle_windows: 4,
            audit: false,
            predict: None,
            store: None,
        }
    }
}

impl WarpedSlicerConfig {
    /// Profile timing proportional to the experiment's cycle budget.
    ///
    /// The paper profiles for 20 K + 5 K cycles out of 2 M-cycle runs
    /// (~1 % overhead). When an experiment scales the run budget down, the
    /// profile phases scale with it (capped at the paper's values) so the
    /// relative overhead matches the paper's.
    #[must_use]
    pub fn scaled_for(isolation_cycles: u64) -> Self {
        Self {
            timing: ProfileTiming {
                warmup: (isolation_cycles / 15).clamp(1_000, 20_000),
                sample: (isolation_cycles / 40).clamp(500, 5_000),
                algorithm_delay: 0,
            },
            ..Self::default()
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Init,
    Warmup { until: u64 },
    Sampling { until: u64 },
    Deciding { until: u64 },
    Run,
}

#[derive(Debug, Clone, Copy, Default)]
struct SmSnap {
    insts: u64,
    mem_stalls: u64,
    cycles: u64,
    dram_transactions: u64,
}

/// The dynamic Warped-Slicer CTA-dispatch controller.
#[derive(Debug)]
pub struct WarpedSlicerController {
    cfg: WarpedSlicerConfig,
    phase: Phase,
    tracker: ChangeTracker,
    plan: Option<ProfilePlan>,
    snapshots: Vec<SmSnap>,
    decision: Option<Decision>,
    spatial_mode: bool,
    released: bool,
    monitors: Vec<PhaseMonitor>,
    last_kernel_insts: Vec<u64>,
    last_phase_check: u64,
    phase_armed_at: u64,
    dram_busy_snap: u64,
    reprofiles: u32,
    last_samples: Vec<ProfileSample>,
    known_kernels: usize,
    audit: DecisionAudit,
    store_keys: Vec<Option<KernelSignature>>,
    warm_decisions: u32,
}

impl WarpedSlicerController {
    /// Creates the controller.
    #[must_use]
    pub fn new(cfg: WarpedSlicerConfig) -> Self {
        Self {
            cfg,
            phase: Phase::Init,
            tracker: ChangeTracker::default(),
            plan: None,
            snapshots: Vec::new(),
            decision: None,
            spatial_mode: false,
            released: false,
            monitors: Vec::new(),
            last_kernel_insts: Vec::new(),
            last_phase_check: 0,
            phase_armed_at: 0,
            dram_busy_snap: 0,
            reprofiles: 0,
            last_samples: Vec::new(),
            known_kernels: 0,
            audit: DecisionAudit::default(),
            store_keys: Vec::new(),
            warm_decisions: 0,
        }
    }

    /// The raw per-SM samples behind the most recent decision (for
    /// diagnostics and the experiment harness).
    #[must_use]
    pub fn last_samples(&self) -> &[ProfileSample] {
        &self.last_samples
    }

    /// How many times the phase monitor forced a re-profile.
    #[must_use]
    pub fn reprofile_count(&self) -> u32 {
        self.reprofiles
    }

    /// How many decisions were made from memoized ws-store curves (the
    /// profiling sweep skipped entirely).
    #[must_use]
    pub fn warm_decision_count(&self) -> u32 {
        self.warm_decisions
    }

    fn max_ctas(gpu: &Gpu) -> Vec<u32> {
        gpu.kernel_ids()
            .iter()
            .map(|&k| gpu.kernel_desc(k).max_ctas_per_sm(&gpu.config().sm).max(1))
            .collect()
    }

    /// Builds the profiling plan, windowed by `ws-predict` static curves
    /// when prediction is enabled. Kernels whose prediction fails
    /// pre-flight keep their full `1..=N` ramp — pruning is an
    /// optimization, never a gate.
    fn plan_profile(&mut self, gpu: &Gpu, max: &[u32]) -> ProfilePlan {
        if !self.cfg.predict.unwrap_or_else(predict_default) {
            return ProfilePlan::build(gpu.num_sms(), max);
        }
        let cfg = gpu.config();
        let windows: Vec<SweepWindow> = gpu
            .kernel_ids()
            .iter()
            .zip(max)
            .enumerate()
            .map(
                |(i, (&k, &m))| match predict_kernel(gpu.kernel_desc(k), cfg) {
                    Ok(curve) => {
                        let w = SweepWindow::around_knee(curve.knee, m);
                        if self.cfg.audit {
                            self.audit.record(AuditEvent::PredictedCurve {
                                kernel: i,
                                perf: curve.ipc,
                                knee: curve.knee,
                            });
                            self.audit.record(AuditEvent::SweepWindow {
                                kernel: i,
                                lo: w.lo,
                                hi: w.hi,
                                max: w.max,
                            });
                        }
                        w
                    }
                    Err(_) => SweepWindow::full(m),
                },
            )
            .collect();
        ProfilePlan::build_windowed(gpu.num_sms(), &windows)
    }

    /// Re-derives the per-kernel store signatures for the current kernel
    /// set (static analysis only; runs at decision points, never per tick).
    fn derive_store_keys(&mut self, gpu: &Gpu) {
        let cfg = gpu.config();
        self.store_keys = gpu
            .kernel_ids()
            .iter()
            .map(|&k| KernelSignature::derive(gpu.kernel_desc(k), cfg))
            .collect();
    }

    /// The ws-store lookup-before-profile path: when a store is attached
    /// and *every* kernel's signature hits, the memoized curves go straight
    /// to water-filling and no profiling windows are ever installed.
    /// Returns whether a warm decision was made.
    fn try_store_decision(&mut self, gpu: &mut Gpu) -> bool {
        let Some(store) = self.cfg.store.clone() else {
            return false;
        };
        if gpu.kernel_ids().is_empty() {
            return false;
        }
        self.derive_store_keys(gpu);
        let keys = self.store_keys.clone();
        let curves: Vec<Option<Vec<f64>>> = store.with(|s| {
            keys.iter()
                .map(|sig| {
                    let sig = sig.as_ref()?;
                    s.lookup(&sig.key).map(|e| e.perf.clone())
                })
                .collect()
        });
        if self.cfg.audit {
            for (i, (sig, curve)) in keys.iter().zip(&curves).enumerate() {
                let Some(sig) = sig else { continue };
                match curve {
                    Some(perf) => self.audit.record(AuditEvent::StoreHit {
                        kernel: i,
                        sig: sig.key.kernel_sig,
                        perf: perf.clone(),
                    }),
                    None => self.audit.record(AuditEvent::StoreMiss {
                        kernel: i,
                        sig: sig.key.kernel_sig,
                    }),
                }
            }
        }
        let Some(curves) = curves.into_iter().collect::<Option<Vec<Vec<f64>>>>() else {
            return false;
        };
        // Warm hit: no samples back this decision.
        self.last_samples.clear();
        self.warm_decisions += 1;
        self.decide_from_curves(gpu, curves);
        true
    }

    /// Inserts (or replaces) the accepted measured curves into the
    /// attached store after a cold decision.
    fn store_insert(&mut self, gpu: &Gpu, curves: &[Vec<f64>]) {
        let Some(store) = self.cfg.store.clone() else {
            return;
        };
        self.derive_store_keys(gpu);
        store.with(|s| {
            for (sig, perf) in self.store_keys.iter().zip(curves) {
                if let Some(sig) = sig {
                    let _ = s.insert(sig.key, StoreEntry::measured(sig, perf.clone()));
                }
            }
        });
    }

    /// Invalidates exactly one kernel's store entry (a phase-monitor
    /// trigger: the memoized curve no longer describes the kernel).
    fn store_invalidate(&mut self, kernel: usize) {
        let Some(store) = self.cfg.store.clone() else {
            return;
        };
        let Some(Some(sig)) = self.store_keys.get(kernel).copied() else {
            return;
        };
        let removed = store.with(|s| s.invalidate(&sig.key));
        if removed && self.cfg.audit {
            self.audit.record(AuditEvent::StoreInvalidate {
                kernel,
                sig: sig.key.kernel_sig,
            });
        }
    }

    fn enter_profile(&mut self, gpu: &mut Gpu) {
        if self.try_store_decision(gpu) {
            return;
        }
        let now = gpu.cycle();
        let max = Self::max_ctas(gpu);
        let plan = self.plan_profile(gpu, &max);
        let ids = gpu.kernel_ids();
        for a in &plan.assignments {
            for &k in &ids {
                let w = if k.0 == a.kernel {
                    let cfg = gpu.config();
                    gpu_sim::PartitionWindow {
                        regs: gpu_sim::Region::whole(cfg.sm.max_registers),
                        shmem: gpu_sim::Region::whole(cfg.sm.shared_mem_bytes),
                        max_ctas: a.quota,
                        max_threads: cfg.sm.max_threads,
                    }
                } else {
                    blocked_window()
                };
                gpu.set_window(a.sm, k, Some(w));
            }
        }
        self.plan = Some(plan);
        self.phase = Phase::Warmup {
            until: now + self.cfg.timing.warmup,
        };
        self.tracker.invalidate();
    }

    fn take_snapshots(&mut self, gpu: &Gpu) {
        // Phase-machine invariant: only Profiling reaches here, after
        // `start_profiling` installed a plan. xtask-allow: no-unwrap
        let plan = self.plan.as_ref().expect("snapshot requires a plan");
        self.snapshots = plan
            .assignments
            .iter()
            .map(|a| {
                let st = gpu.sm(a.sm).stats();
                SmSnap {
                    insts: st.kernel(a.kernel).insts_issued,
                    mem_stalls: st.stalls.mem,
                    cycles: st.cycles,
                    dram_transactions: gpu.mem_stats().dram_by_sm(a.sm),
                }
            })
            .collect();
        self.dram_busy_snap = gpu.mem().dram_busy_cycles();
    }

    fn decide(&mut self, gpu: &mut Gpu) {
        // Phase-machine invariant: Deciding follows Profiling, which
        // installed the plan. xtask-allow: no-unwrap
        let plan = self.plan.as_ref().expect("decision requires a plan");
        let num_sched = gpu.config().sm.num_schedulers;
        let sample_cycles = self.cfg.timing.sample.max(1);
        let num_channels = gpu.mem().num_channels() as u64;
        let dram_busy = (gpu.mem().dram_busy_cycles() - self.dram_busy_snap) as f64
            / (sample_cycles * num_channels) as f64;
        // Per-SM fair share of DRAM transaction capacity over the window.
        let burst = (f64::from(gpu.config().mem.timing.t_burst)
            * gpu.config().core_per_dram_clock())
        .max(1.0);
        let fair = (num_channels * sample_cycles) as f64 / burst / gpu.num_sms() as f64;
        let samples: Vec<ProfileSample> = plan
            .assignments
            .iter()
            .zip(&self.snapshots)
            .map(|(a, snap)| {
                let st = gpu.sm(a.sm).stats();
                let d_cycles = (st.cycles - snap.cycles).max(1);
                let d_insts = st.kernel(a.kernel).insts_issued - snap.insts;
                let d_mem = st.stalls.mem - snap.mem_stalls;
                let d_dram = gpu.mem_stats().dram_by_sm(a.sm) - snap.dram_transactions;
                ProfileSample {
                    kernel: a.kernel,
                    ctas: a.quota,
                    ipc_sampled: d_insts as f64 / d_cycles as f64,
                    phi_mem: if self.cfg.enable_scaling {
                        d_mem as f64 / (d_cycles * u64::from(num_sched)) as f64
                    } else {
                        0.0
                    },
                    bandwidth: self.cfg.enable_scaling.then_some(BandwidthSample {
                        sm_transactions: d_dram,
                        fair_transactions: fair,
                        dram_busy: dram_busy.clamp(0.0, 1.0),
                    }),
                }
            })
            .collect();

        self.last_samples = samples.clone();
        let max = Self::max_ctas(gpu);
        let curves = if self.cfg.audit {
            build_curves_audited(&samples, &max, &mut self.audit)
        } else {
            build_curves(&samples, &max)
        };
        self.store_insert(gpu, &curves);
        self.decide_from_curves(gpu, curves);
    }

    /// The shared decision tail: runs Algorithm 1 water-filling over
    /// per-kernel performance curves, applies the fallback-threshold test,
    /// and installs (or schedules) the decision. Both the cold path
    /// (freshly measured curves) and the ws-store warm path (memoized
    /// curves) end here, which is what makes a warm-hit decision
    /// byte-identical to the cold-path decision for the same curves.
    fn decide_from_curves(&mut self, gpu: &mut Gpu, curves: Vec<Vec<f64>>) {
        let now = gpu.cycle();
        let measured_curves = curves.clone();
        let ids = gpu.kernel_ids();
        let kernels: Vec<KernelCurve> = ids
            .iter()
            .zip(curves)
            .map(|(&k, perf)| KernelCurve {
                perf,
                cta_cost: ResourceVec::cta_cost(gpu.kernel_desc(k)),
            })
            .collect();
        let capacity = ResourceVec::sm_capacity(&gpu.config().sm);
        let threshold = self.cfg.loss_threshold.unwrap_or(1.2 / ids.len() as f64);

        let partition = if self.cfg.audit {
            self.audit.record(AuditEvent::WaterFillInputs {
                cta_costs: kernels.iter().map(|k| k.cta_cost).collect(),
                capacity,
            });
            for (i, k) in kernels.iter().enumerate() {
                self.audit.record(AuditEvent::Curve {
                    kernel: i,
                    perf: k.perf.clone(),
                });
            }
            let mut steps = Vec::new();
            let p = water_fill_traced(&kernels, capacity, &mut steps);
            for s in steps {
                self.audit.record(AuditEvent::WaterFillStep {
                    kernel: s.kernel,
                    ctas: s.ctas,
                    perf: s.perf,
                });
            }
            if let Some(p) = &p {
                self.audit.record(AuditEvent::WaterFillDecision {
                    quotas: p.ctas.clone(),
                    water_level: p.min_perf(),
                    predicted: p.perf.clone(),
                });
            }
            p
        } else {
            water_fill(&kernels, capacity)
        };
        if self.cfg.audit {
            let max_loss = partition
                .as_ref()
                .map(|p| p.losses().iter().copied().fold(f64::NEG_INFINITY, f64::max));
            let spatial = match &partition {
                Some(p) => p.losses().iter().any(|&l| l > threshold),
                None => true,
            };
            self.audit.record(AuditEvent::FallbackVerdict {
                threshold,
                max_loss,
                spatial,
            });
        }
        let (quotas, predicted, spatial) = match partition {
            Some(p) if p.losses().iter().all(|&l| l <= threshold) => {
                (Some(p.ctas.clone()), p.perf, false)
            }
            Some(p) => (None, p.perf, true),
            None => (None, Vec::new(), true),
        };
        self.decision = Some(Decision {
            quotas: quotas.clone(),
            spatial_fallback: spatial,
            predicted_perf: predicted,
            decided_at: now,
            measured_curves,
        });
        if self.cfg.timing.algorithm_delay > 0 {
            self.phase = Phase::Deciding {
                until: now + self.cfg.timing.algorithm_delay,
            };
        } else {
            self.apply_decision(gpu);
        }
    }

    fn apply_decision(&mut self, gpu: &mut Gpu) {
        let ids = gpu.kernel_ids();
        // Clear the profiling windows.
        for sm in 0..gpu.num_sms() {
            for &k in &ids {
                gpu.set_window(sm, k, None);
            }
        }
        // Phase-machine invariant: Applying follows Deciding, which stored
        // the decision. xtask-allow: no-unwrap
        let decision = self.decision.as_ref().expect("apply requires a decision");
        if let Some(quotas) = decision.quotas.clone() {
            let cfg = gpu.config().clone();
            let descs: Vec<KernelDesc> = ids.iter().map(|&k| gpu.kernel_desc(k).clone()).collect();
            let refs: Vec<&KernelDesc> = descs.iter().collect();
            let windows = quota_windows(&cfg, &refs, &quotas);
            for sm in 0..gpu.num_sms() {
                for (&k, w) in ids.iter().zip(&windows) {
                    gpu.set_window(sm, k, Some(*w));
                }
            }
            self.spatial_mode = false;
        } else {
            self.spatial_mode = true;
        }
        self.phase = Phase::Run;
        self.last_phase_check = gpu.cycle();
        self.phase_armed_at =
            gpu.cycle() + u64::from(self.cfg.phase_settle_windows) * self.cfg.phase_window;
        self.last_kernel_insts = ids.iter().map(|&k| gpu.kernel_insts(k)).collect();
        self.monitors = ids.iter().map(|_| PhaseMonitor::paper_default()).collect();
        self.tracker.invalidate();
    }

    fn run_phase_monitor(&mut self, gpu: &mut Gpu) {
        let now = gpu.cycle();
        if now - self.last_phase_check < self.cfg.phase_window {
            return;
        }
        if now < self.phase_armed_at {
            // Settling: track instruction counts but do not feed monitors.
            self.last_phase_check = now;
            let ids = gpu.kernel_ids();
            for (i, &k) in ids.iter().enumerate() {
                self.last_kernel_insts[i] = gpu.kernel_insts(k);
            }
            return;
        }
        let window = (now - self.last_phase_check) as f64;
        self.last_phase_check = now;
        let ids = gpu.kernel_ids();
        let mut trigger = false;
        for (i, &k) in ids.iter().enumerate() {
            let insts = gpu.kernel_insts(k);
            let ipc = (insts - self.last_kernel_insts[i]) as f64 / window;
            self.last_kernel_insts[i] = insts;
            if gpu.kernel_meta(k).halted {
                continue;
            }
            let baseline = self.monitors[i].baseline();
            let triggered = self.monitors[i].observe(ipc);
            if self.cfg.audit {
                self.audit.record(AuditEvent::PhaseSample {
                    kernel: i,
                    cycle: now,
                    ipc,
                    baseline,
                    triggered,
                });
            }
            if triggered {
                trigger = true;
                // The memoized curve no longer describes this kernel:
                // invalidate exactly its key, so the re-profile below
                // misses, measures fresh, and replaces the entry.
                self.store_invalidate(i);
            }
        }
        if trigger {
            self.reprofiles += 1;
            self.enter_profile(gpu);
        }
    }
}

impl Controller for WarpedSlicerController {
    fn on_cycle(&mut self, gpu: &mut Gpu) {
        let now = gpu.cycle();
        // A kernel arriving mid-run (Fig. 2e: "re-partitioning for the
        // third kernel") launches a fresh profiling phase over the new
        // kernel set; resident CTAs of the old set drain naturally.
        let nk = gpu.num_kernels();
        if self.known_kernels != nk {
            let first = self.known_kernels == 0;
            self.known_kernels = nk;
            if !first && !self.released {
                self.reprofiles += 1;
                self.enter_profile(gpu);
            }
        }
        match self.phase {
            Phase::Init => self.enter_profile(gpu),
            Phase::Warmup { until } if now >= until => {
                self.take_snapshots(gpu);
                self.phase = Phase::Sampling {
                    until: now + self.cfg.timing.sample,
                };
            }
            Phase::Sampling { until } if now >= until => self.decide(gpu),
            Phase::Deciding { until } if now >= until => self.apply_decision(gpu),
            Phase::Run if self.cfg.enable_phase_monitor && !self.released => {
                self.run_phase_monitor(gpu);
            }
            _ => {}
        }

        // Endgame: once any kernel halts, survivors get everything.
        if !self.released && gpu.halted_kernels() > 0 {
            self.released = true;
            self.spatial_mode = false;
            let ids = gpu.kernel_ids();
            for sm in 0..gpu.num_sms() {
                for &k in &ids {
                    gpu.set_window(sm, k, None);
                }
            }
            self.phase = Phase::Run;
            self.tracker.invalidate();
        }

        if self.tracker.changed(gpu) {
            let ids = gpu.kernel_ids();
            let n = gpu.num_sms();
            let k = ids.len();
            let spatial = self.spatial_mode && !self.released;
            sweep_launch(gpu, &ids, |sm, kid| {
                if spatial {
                    SpatialController::owner_of(sm, n, k) == kid.0
                } else {
                    true
                }
            });
        }
    }

    fn decision(&self) -> Option<&Decision> {
        self.decision.as_ref()
    }

    fn audit(&self) -> Option<&DecisionAudit> {
        self.cfg.audit.then_some(&self.audit)
    }

    fn next_intervention(&self) -> Option<u64> {
        match self.phase {
            // Init transitions on the very next `on_cycle`, so nothing may
            // be skipped.
            Phase::Init => Some(0),
            Phase::Warmup { until } | Phase::Sampling { until } | Phase::Deciding { until } => {
                Some(until)
            }
            Phase::Run if self.cfg.enable_phase_monitor && !self.released => {
                Some(self.last_phase_check + self.cfg.phase_window)
            }
            Phase::Run => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{GpuConfig, SchedulerKind};
    use ws_workloads::by_abbrev;

    fn fast_cfg() -> WarpedSlicerConfig {
        WarpedSlicerConfig {
            timing: ProfileTiming {
                warmup: 2_000,
                sample: 2_000,
                algorithm_delay: 0,
            },
            // Pin the plain 1..=N ramp so these tests are independent of
            // the ambient WS_PREDICT environment.
            predict: Some(false),
            ..WarpedSlicerConfig::default()
        }
    }

    fn run_pair(
        a: &str,
        b: &str,
        cycles: u64,
        cfg: WarpedSlicerConfig,
    ) -> (Gpu, WarpedSlicerController) {
        let mut gpu = Gpu::new(GpuConfig::isca_baseline(), SchedulerKind::GreedyThenOldest);
        gpu.add_kernel(by_abbrev(a).unwrap().desc);
        gpu.add_kernel(by_abbrev(b).unwrap().desc);
        let mut c = WarpedSlicerController::new(cfg);
        for _ in 0..cycles {
            c.on_cycle(&mut gpu);
            gpu.tick();
        }
        (gpu, c)
    }

    #[test]
    fn profiling_assigns_ramped_cta_counts() {
        let (gpu, c) = run_pair("IMG", "NN", 1_500, fast_cfg());
        assert!(matches!(c.phase, Phase::Warmup { .. }));
        // During profiling, SM 0 holds 1 CTA of IMG, SM 7 holds 8.
        assert_eq!(gpu.sm(0).kernel_ctas(0), 1);
        assert_eq!(gpu.sm(7).kernel_ctas(0), 8);
        assert_eq!(gpu.sm(0).kernel_ctas(1), 0, "exclusive profiling SMs");
        assert_eq!(gpu.sm(8).kernel_ctas(1), 1);
        assert_eq!(gpu.sm(15).kernel_ctas(1), 8);
    }

    #[test]
    fn predicted_windows_shape_the_profiling_ramp() {
        let cfg = WarpedSlicerConfig {
            predict: Some(true),
            audit: true,
            ..fast_cfg()
        };
        let (gpu, c) = run_pair("IMG", "NN", 1_500, cfg);
        assert!(matches!(c.phase, Phase::Warmup { .. }));
        // The windowed ramp still anchors both ends of each group: 1 CTA on
        // the group's first SM, the guard at the feasibility bound on its
        // last (IMG and NN both cap at 8).
        assert_eq!(gpu.sm(0).kernel_ctas(0), 1);
        assert_eq!(gpu.sm(7).kernel_ctas(0), 8);
        assert_eq!(gpu.sm(8).kernel_ctas(1), 1);
        assert_eq!(gpu.sm(15).kernel_ctas(1), 8);
        // The audit holds the predicted curve and chosen window per kernel.
        let audit = c.audit.clone();
        for k in 0..2 {
            let (perf, knee) = audit.predicted_curve(k).expect("predicted curve");
            assert_eq!(perf.len(), 8);
            assert!((1..=8).contains(&knee));
        }
        assert!(audit
            .events
            .iter()
            .any(|e| matches!(e, AuditEvent::SweepWindow { .. })));
    }

    #[test]
    fn predicted_windows_still_reach_a_co_location_decision() {
        let cfg = WarpedSlicerConfig {
            predict: Some(true),
            ..fast_cfg()
        };
        let (_, c) = run_pair("IMG", "NN", 40_000, cfg);
        let d = c.decision().expect("decision after sampling");
        assert!(!d.spatial_fallback, "IMG+NN should still co-locate");
        let quotas = d.quotas.as_ref().expect("feasible quotas");
        assert_eq!(quotas.len(), 2);
        assert!(quotas.iter().all(|&q| (1..=8).contains(&q)), "{quotas:?}");
    }

    #[test]
    fn decision_is_made_and_applied() {
        // Long enough for the profile-phase CTAs (which may exceed the new
        // quotas; Fig. 2e drains them naturally) to retire.
        let (gpu, c) = run_pair("IMG", "NN", 40_000, fast_cfg());
        let d = c.decision().expect("decision after sampling");
        assert!(!d.spatial_fallback, "IMG+NN should co-locate");
        let quotas = d.quotas.as_ref().unwrap();
        assert_eq!(quotas.len(), 2);
        // The paper's Fig. 3b intuition: IMG (saturating compute) gets more
        // CTAs than cache-sensitive NN's thrash point would allow it.
        assert!(quotas[0] >= 3, "IMG quota: {quotas:?}");
        assert!(quotas[1] <= 5, "NN quota: {quotas:?}");
        // Quotas enforced once the profile-phase residents have drained.
        for sm in gpu.sms() {
            assert!(sm.kernel_ctas(0) <= quotas[0]);
            assert!(sm.kernel_ctas(1) <= quotas[1]);
        }
    }

    #[test]
    fn tight_threshold_forces_spatial_fallback() {
        let cfg = WarpedSlicerConfig {
            loss_threshold: Some(0.001),
            ..fast_cfg()
        };
        let (gpu, c) = run_pair("LBM", "BLK", 12_000, cfg);
        let d = c.decision().expect("decision");
        assert!(
            d.spatial_fallback,
            "near-zero loss tolerance must fall back"
        );
        assert!(d.quotas.is_none());
        // Spatial mode: each kernel on its own SM group (new launches).
        let left_has_k1 = (0..8).any(|s| gpu.sm(s).kernel_ctas(1) > 0);
        assert!(!left_has_k1, "kernel 1 must not launch on kernel 0's SMs");
    }

    #[test]
    fn algorithm_delay_defers_application() {
        let cfg = WarpedSlicerConfig {
            timing: ProfileTiming {
                warmup: 1_000,
                sample: 1_000,
                algorithm_delay: 5_000,
            },
            ..fast_cfg()
        };
        let (_, c) = run_pair("IMG", "NN", 3_000, cfg.clone());
        assert!(matches!(c.phase, Phase::Deciding { .. }));
        let (_, c) = run_pair("IMG", "NN", 9_000, cfg);
        assert!(matches!(c.phase, Phase::Run));
    }

    #[test]
    fn halt_releases_partitions() {
        let (mut gpu, mut c) = run_pair("IMG", "NN", 12_000, fast_cfg());
        gpu.halt_kernel(gpu_sim::KernelId(1));
        for _ in 0..5_000 {
            c.on_cycle(&mut gpu);
            gpu.tick();
        }
        assert!(
            gpu.sms().any(|sm| sm.kernel_ctas(0) > 6),
            "IMG should expand once NN halts"
        );
    }

    #[test]
    fn stable_kernels_do_not_reprofile() {
        let (_, c) = run_pair("IMG", "NN", 40_000, fast_cfg());
        assert_eq!(c.reprofile_count(), 0);
    }

    #[test]
    fn late_arriving_kernel_triggers_repartitioning() {
        let mut gpu = Gpu::new(GpuConfig::isca_baseline(), SchedulerKind::GreedyThenOldest);
        gpu.add_kernel(by_abbrev("IMG").unwrap().desc);
        let mut c = WarpedSlicerController::new(fast_cfg());
        for _ in 0..8_000 {
            c.on_cycle(&mut gpu);
            gpu.tick();
        }
        let first = c.decision().expect("single-kernel decision").clone();
        assert_eq!(first.quotas.as_ref().map(Vec::len), Some(1));
        // A second kernel arrives: the controller must re-profile and make
        // a two-kernel decision.
        gpu.add_kernel(by_abbrev("NN").unwrap().desc);
        for _ in 0..8_000 {
            c.on_cycle(&mut gpu);
            gpu.tick();
        }
        assert!(c.reprofile_count() >= 1);
        let second = c.decision().expect("two-kernel decision");
        assert!(second.decided_at > first.decided_at);
        if let Some(q) = &second.quotas {
            assert_eq!(q.len(), 2, "{q:?}");
        }
        // The newcomer actually runs.
        assert!(gpu.kernel_insts(gpu_sim::KernelId(1)) > 0);
    }

    #[test]
    fn audit_records_a_replayable_decision() {
        let cfg = WarpedSlicerConfig {
            audit: true,
            ..fast_cfg()
        };
        let (_, c) = run_pair("IMG", "NN", 12_000, cfg);
        let audit = c.audit().expect("audit enabled");
        let d = c.decision().expect("decision made");
        let quotas = d.quotas.as_ref().expect("IMG+NN co-locate");
        // Every kernel's Eq. 2-4 applications were recorded with their
        // inputs, and the water-filling decision replays from the trace to
        // the same quota vector.
        assert!(audit.scaled_points(0).count() >= 1);
        assert!(audit.scaled_points(1).count() >= 1);
        assert_eq!(audit.last_quotas(), Some(quotas.as_slice()));
        let replayed = audit.replay_water_fill().expect("complete decision");
        assert_eq!(&replayed.ctas, quotas);
    }

    #[test]
    fn audit_is_off_by_default() {
        let (_, c) = run_pair("IMG", "NN", 12_000, fast_cfg());
        assert!(c.audit().is_none());
        assert!(c.decision().is_some());
    }

    #[test]
    fn both_kernels_progress_under_warped_slicer() {
        let (gpu, _) = run_pair("MM", "BLK", 15_000, fast_cfg());
        assert!(gpu.kernel_insts(gpu_sim::KernelId(0)) > 1_000);
        assert!(gpu.kernel_insts(gpu_sim::KernelId(1)) > 1_000);
    }

    #[test]
    fn store_warm_hit_skips_profiling_and_matches_cold_decision() {
        let store = SharedCurveStore::with_capacity(8);
        let cfg = WarpedSlicerConfig {
            store: Some(store.clone()),
            ..fast_cfg()
        };
        // First arrival: cold — pays the profiling sweep, inserts curves.
        let (_, cold) = run_pair("IMG", "NN", 12_000, cfg.clone());
        let cold_d = cold.decision().expect("cold decision").clone();
        assert_eq!(cold.warm_decision_count(), 0);
        assert!(
            cold_d.decided_at >= 4_000,
            "cold path pays warmup + sample ({})",
            cold_d.decided_at
        );
        assert_eq!(store.with(|s| s.len()), 2, "both curves memoized");

        // Repeat arrival: warm — decides immediately from the store, and
        // the decision is byte-identical to the cold one.
        let (_, warm) = run_pair("IMG", "NN", 200, cfg);
        assert_eq!(warm.warm_decision_count(), 1);
        let warm_d = warm.decision().expect("warm decision");
        assert!(
            warm_d.decided_at < 10,
            "no profiling phases on the warm path ({})",
            warm_d.decided_at
        );
        assert_eq!(warm_d.quotas, cold_d.quotas);
        assert_eq!(warm_d.spatial_fallback, cold_d.spatial_fallback);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
        assert_eq!(bits(&warm_d.predicted_perf), bits(&cold_d.predicted_perf));
        assert_eq!(warm_d.measured_curves.len(), cold_d.measured_curves.len());
        for (w, c) in warm_d.measured_curves.iter().zip(&cold_d.measured_curves) {
            assert_eq!(bits(w), bits(c), "warm curves bit-equal to cold");
        }
        assert!(warm.last_samples().is_empty(), "warm path has no samples");
    }

    #[test]
    fn store_audit_records_misses_then_hits() {
        let store = SharedCurveStore::with_capacity(8);
        let cfg = WarpedSlicerConfig {
            store: Some(store.clone()),
            audit: true,
            ..fast_cfg()
        };
        let (_, cold) = run_pair("IMG", "NN", 12_000, cfg.clone());
        let misses = cold
            .audit()
            .expect("audit enabled")
            .events
            .iter()
            .filter(|e| matches!(e, AuditEvent::StoreMiss { .. }))
            .count();
        assert_eq!(misses, 2, "first arrival misses both kernels");
        let (_, warm) = run_pair("IMG", "NN", 200, cfg);
        let audit = warm.audit().expect("audit enabled");
        let hits = audit
            .events
            .iter()
            .filter(|e| matches!(e, AuditEvent::StoreHit { .. }))
            .count();
        assert_eq!(hits, 2, "repeat arrival hits both kernels");
        // Warm decisions stay replayable from the audit alone.
        let d = warm.decision().expect("warm decision");
        let quotas = d.quotas.as_ref().expect("co-located");
        let replayed = audit.replay_water_fill().expect("complete decision");
        assert_eq!(&replayed.ctas, quotas);
    }
}
