//! The online profiling strategy (Sec. IV-A, Fig. 4).
//!
//! When `K` kernels co-arrive, the SMs are split into `K` groups; within a
//! group each SM runs a different CTA count of its kernel. After a warm-up,
//! a short sampling window measures each SM's IPC and memory-stall fraction
//! (`φ_mem`); the sampled IPCs are corrected for bandwidth interference
//! ([`crate::scaling`]) and assembled into per-kernel performance-vs-CTA
//! curves for the water-filling partitioner.
//!
//! This module contains the *pure* parts of that pipeline — planning which
//! SM profiles which CTA count, and turning raw samples into curves — so
//! they are unit-testable without a simulator. The Warped-Slicer controller
//! drives them against a live [`gpu_sim::Gpu`].

use crate::audit::{AuditEvent, DecisionAudit};
use crate::runner::{execute_batch, RunConfig, SimJob, SimOutcome};
use crate::scaling::{
    bandwidth_scale_factor_audited, psi, psi_measured, scale_ipc_with_psi_audited,
};
use crate::sweep::SweepWindow;
use gpu_sim::KernelDesc;

/// Timing parameters of the profiling phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileTiming {
    /// Cycles to let the GPU warm up before sampling (paper: 20 K).
    pub warmup: u64,
    /// Sampling-window length in cycles (paper: 5 K).
    pub sample: u64,
    /// Extra cycles between the end of sampling and applying the new
    /// partition, modeling the partitioning algorithm's own latency
    /// (Fig. 10a sensitivity; default 0).
    pub algorithm_delay: u64,
}

impl Default for ProfileTiming {
    fn default() -> Self {
        Self {
            warmup: 20_000,
            sample: 5_000,
            algorithm_delay: 0,
        }
    }
}

/// One SM's profiling assignment: run `quota` CTAs of kernel `kernel`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmAssignment {
    /// SM index.
    pub sm: usize,
    /// Kernel slot profiled on this SM.
    pub kernel: usize,
    /// CTA count to hold resident.
    pub quota: u32,
}

/// A structural defect in a prediction-windowed profiling plan: one
/// kernel's [`SweepWindow`] plans no CTA caps at all, so its SM group
/// would have nothing to probe. Historically this was papered over by
/// silently assigning the group 1 CTA — a degenerate plan that profiles
/// the wrong point; now it is a first-class planning error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfilePlanError {
    /// Kernel slot whose window was empty.
    pub kernel: usize,
    /// The offending window.
    pub window: SweepWindow,
}

impl std::fmt::Display for ProfilePlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "kernel {} window {}..={} (max {}) plans no CTA caps",
            self.kernel, self.window.lo, self.window.hi, self.window.max
        )
    }
}

impl std::error::Error for ProfilePlanError {}

/// The profiling plan: one assignment per SM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfilePlan {
    /// Per-SM assignments, one entry per SM.
    pub assignments: Vec<SmAssignment>,
}

impl ProfilePlan {
    /// Builds the Fig. 4 plan: SMs are split into `max_ctas.len()`
    /// contiguous groups; within kernel `i`'s group the CTA quota ramps
    /// from 1 up to `max_ctas[i]` (duplicating the densest counts when the
    /// group has more SMs than distinct counts, spreading evenly when it
    /// has fewer).
    ///
    /// # Examples
    ///
    /// ```
    /// use warped_slicer::profiler::ProfilePlan;
    ///
    /// // Two kernels on 16 SMs: kernel 0 profiles 1..=8 CTAs on SMs 0-7.
    /// let plan = ProfilePlan::build(16, &[8, 8]);
    /// let quotas: Vec<u32> = plan.for_kernel(0).map(|a| a.quota).collect();
    /// assert_eq!(quotas, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if there are no kernels or more kernels than SMs.
    #[must_use]
    pub fn build(num_sms: usize, max_ctas: &[u32]) -> Self {
        let k = max_ctas.len();
        assert!(k > 0, "at least one kernel required");
        assert!(k <= num_sms, "more kernels than SMs");
        let mut assignments = Vec::with_capacity(num_sms);
        let base = num_sms / k;
        let extra = num_sms % k;
        let mut sm = 0;
        for (i, &max) in max_ctas.iter().enumerate() {
            let group = base + usize::from(i < extra);
            for j in 0..group {
                let quota = if group == 1 {
                    max.max(1)
                } else {
                    // Evenly spread 1..=max over the group (rounding up so
                    // the last SM always probes the maximum).
                    let max = f64::from(max.max(1));
                    (1.0 + (max - 1.0) * j as f64 / (group - 1) as f64).round() as u32
                };
                assignments.push(SmAssignment {
                    sm,
                    kernel: i,
                    quota: quota.max(1),
                });
                sm += 1;
            }
        }
        Self { assignments }
    }

    /// The prediction-windowed variant of [`ProfilePlan::build`]: kernel
    /// `i`'s SM group ramps over its [`SweepWindow::planned_caps`] — the
    /// dense prefix around the predicted knee plus the guard points — so
    /// online sampling concentrates where the knee is expected while the
    /// guard at the feasibility bound still checks the skipped tail. A
    /// full window reproduces [`ProfilePlan::build`] exactly. A one-SM
    /// group spends its single sample on [`SweepWindow::knee_cap`] — the
    /// predicted knee — because a knee sample anchors the curve's ramp
    /// where a guard-bound sample alone would flatline it (the K ==
    /// `num_sms` co-run case).
    ///
    /// # Errors
    ///
    /// Returns [`ProfilePlanError`] when a window plans no CTA caps at
    /// all (e.g. an inverted `lo > hi` range with no guard) — there would
    /// be nothing for that kernel's SM group to probe.
    ///
    /// # Panics
    ///
    /// Panics if there are no kernels or more kernels than SMs.
    pub fn try_build_windowed(
        num_sms: usize,
        windows: &[SweepWindow],
    ) -> Result<Self, ProfilePlanError> {
        let k = windows.len();
        assert!(k > 0, "at least one kernel required");
        assert!(k <= num_sms, "more kernels than SMs");
        let mut assignments = Vec::with_capacity(num_sms);
        let base = num_sms / k;
        let extra = num_sms % k;
        let mut sm = 0;
        for (i, w) in windows.iter().enumerate() {
            let group = base + usize::from(i < extra);
            let caps = w.planned_caps();
            if caps.is_empty() {
                return Err(ProfilePlanError {
                    kernel: i,
                    window: *w,
                });
            }
            let last = caps.len() - 1;
            for j in 0..group {
                let idx = if group == 1 {
                    // One sample for the whole kernel: probe the predicted
                    // knee, not the guard.
                    caps.iter().position(|&c| c == w.knee_cap()).unwrap_or(last)
                } else {
                    // Evenly spread the planned caps over the group
                    // (rounding so the last SM always probes the guard).
                    let t = j as f64 / (group - 1) as f64;
                    (t * last as f64).round() as usize
                };
                let quota = caps.get(idx).copied().unwrap_or(1);
                assignments.push(SmAssignment {
                    sm,
                    kernel: i,
                    quota: quota.max(1),
                });
                sm += 1;
            }
        }
        Ok(Self { assignments })
    }

    /// The panic-on-defect wrapper around [`ProfilePlan::try_build_windowed`]
    /// for callers on the hot decision path. An empty window is an
    /// invariant violation under strict-invariants; release builds widen
    /// every empty window to its full `1..=max` ramp and retry, so the
    /// profile degrades to the unpruned plan instead of probing a
    /// fabricated 1-CTA point.
    ///
    /// # Panics
    ///
    /// Panics if there are no kernels or more kernels than SMs, and —
    /// under `debug_assertions` or the `strict-invariants` feature — if
    /// any window plans no CTA caps.
    #[must_use]
    pub fn build_windowed(num_sms: usize, windows: &[SweepWindow]) -> Self {
        match Self::try_build_windowed(num_sms, windows) {
            Ok(plan) => plan,
            Err(e) => {
                gpu_sim::strict_assert!(false, "windowed profile plan invalid: {e}");
                let widened: Vec<SweepWindow> = windows
                    .iter()
                    .map(|w| {
                        if w.planned_caps().is_empty() {
                            SweepWindow::full(w.max)
                        } else {
                            *w
                        }
                    })
                    .collect();
                // Full windows always plan caps, so the retry cannot fail.
                Self::try_build_windowed(num_sms, &widened).unwrap_or(Self {
                    assignments: Vec::new(),
                })
            }
        }
    }

    /// Assignments belonging to kernel `kernel`.
    pub fn for_kernel(&self, kernel: usize) -> impl Iterator<Item = &SmAssignment> {
        self.assignments.iter().filter(move |a| a.kernel == kernel)
    }
}

/// Samples per-kernel performance-vs-CTA curves *offline* by running the
/// Fig. 4 grid — every (kernel, CTA count) point up to `max_ctas[i]` — as
/// independent [`SimJob::cta_cap`] simulations on `pool`.
///
/// This is the batch analogue of the online profiling phase: where the live
/// controller samples all points simultaneously on disjoint SM groups of
/// one GPU, this variant gives each point its own dedicated simulation of
/// `window` cycles, trading simulated time for sampling noise. The result
/// has the same shape as [`build_curves`]:
/// `curve[i][j]` = IPC of kernel `i` with `j + 1` CTAs per SM.
///
/// Determinism: jobs are pure data and the pool collects results by
/// submission index, so the curves are byte-identical for any worker count.
///
/// # Panics
///
/// Panics if `descs` and `max_ctas` lengths differ.
#[must_use]
pub fn profile_curves(
    pool: &ws_exec::Pool,
    descs: &[&KernelDesc],
    max_ctas: &[u32],
    window: u64,
    cfg: &RunConfig,
) -> Vec<Vec<f64>> {
    assert_eq!(descs.len(), max_ctas.len(), "one CTA bound per kernel");
    let mut jobs = Vec::new();
    for (desc, &max) in descs.iter().zip(max_ctas) {
        for cap in 1..=max.max(1) {
            jobs.push(SimJob::cta_cap(desc, cap, window, cfg));
        }
    }
    let mut outcomes = execute_batch(pool, &jobs).into_iter();
    max_ctas
        .iter()
        .map(|&max| {
            (1..=max.max(1))
                .map(|_| {
                    outcomes
                        .next()
                        .as_ref()
                        .map_or(0.0, SimOutcome::measured_ipc)
                })
                .collect()
        })
        .collect()
}

/// One SM's raw sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfileSample {
    /// Kernel slot this sample measures.
    pub kernel: usize,
    /// CTA count the SM was holding.
    pub ctas: u32,
    /// IPC of that SM over the sampling window.
    pub ipc_sampled: f64,
    /// Fraction of scheduler-cycles lost to long memory latency.
    pub phi_mem: f64,
    /// Measured bandwidth evidence. When present, the correction factor is
    /// computed from the SM's actual DRAM share
    /// ([`bandwidth_scale_factor`]); when absent, the paper's CTA-count
    /// approximation ([`psi`]) is used.
    pub bandwidth: Option<BandwidthSample>,
}

/// Per-SM DRAM-bandwidth evidence gathered over the sampling window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthSample {
    /// DRAM transactions this SM issued during the window.
    pub sm_transactions: u64,
    /// The SM's fair share of the DRAM subsystem's transaction *capacity*
    /// over the window (`channels x window / burst / num_sms`) — the
    /// bandwidth it would get if every SM ran its configuration on a
    /// saturated bus.
    pub fair_transactions: f64,
    /// Fraction of DRAM data-bus cycles busy during the window; damps the
    /// correction when the bus was not contended.
    pub dram_busy: f64,
}

/// Turns raw per-SM samples into per-kernel performance curves
/// `curve[i][j] = predicted perf of kernel i with j + 1 CTAs`, applying the
/// bandwidth-interference scaling factor and interpolating CTA counts that
/// were not directly sampled.
///
/// `max_ctas[i]` bounds kernel `i`'s curve length.
#[must_use]
pub fn build_curves(samples: &[ProfileSample], max_ctas: &[u32]) -> Vec<Vec<f64>> {
    build_curves_audited(samples, max_ctas, &mut DecisionAudit::default())
}

/// [`build_curves`] with a decision-audit trail: every sample's Eq. 2-4
/// scaling application is recorded as an [`AuditEvent::ScaledPoint`]
/// carrying the raw IPC, the `φ_mem`/`ψ` inputs, and the clamp verdict, in
/// sample order.
#[must_use]
pub fn build_curves_audited(
    samples: &[ProfileSample],
    max_ctas: &[u32],
    audit: &mut DecisionAudit,
) -> Vec<Vec<f64>> {
    let cta_avg = if samples.is_empty() {
        1.0
    } else {
        samples.iter().map(|s| f64::from(s.ctas)).sum::<f64>() / samples.len() as f64
    };
    max_ctas
        .iter()
        .enumerate()
        .map(|(i, &max)| {
            let n = max.max(1) as usize;
            // Average scaled IPC per sampled CTA count.
            let mut sums = vec![0.0f64; n];
            let mut counts = vec![0u32; n];
            for s in samples.iter().filter(|s| s.kernel == i) {
                let j = (s.ctas.clamp(1, max) - 1) as usize;
                let (psi_used, outcome) = match s.bandwidth {
                    Some(bw) => (
                        psi_measured(bw.sm_transactions, bw.fair_transactions, bw.dram_busy),
                        bandwidth_scale_factor_audited(
                            s.ipc_sampled,
                            bw.sm_transactions,
                            bw.fair_transactions,
                            bw.dram_busy,
                            s.phi_mem,
                        ),
                    ),
                    None => {
                        let p = psi(s.ctas, cta_avg);
                        (p, scale_ipc_with_psi_audited(s.ipc_sampled, s.phi_mem, p))
                    }
                };
                audit.record(AuditEvent::ScaledPoint {
                    kernel: s.kernel,
                    ctas: s.ctas,
                    ipc_sampled: s.ipc_sampled,
                    phi_mem: s.phi_mem,
                    psi: psi_used,
                    outcome,
                });
                sums[j] += outcome.ipc;
                counts[j] += 1;
            }
            interpolate_counts(&sums, &counts)
        })
        .collect()
}

/// Linear interpolation over missing points; extrapolation clamps to the
/// nearest measured value (and to zero at 0 CTAs on the left). Shared with
/// the prediction-driven sweep pruner ([`crate::sweep`]), which relies on
/// interpolated values being bounded by their sampled endpoints.
pub(crate) fn interpolate_counts(sums: &[f64], counts: &[u32]) -> Vec<f64> {
    let n = sums.len();
    let measured: Vec<(usize, f64)> = sums
        .iter()
        .zip(counts)
        .enumerate()
        .filter(|&(_, (_, &c))| c > 0)
        .map(|(j, (&s, &c))| (j, s / f64::from(c)))
        .collect();
    if measured.is_empty() {
        return vec![0.0; n];
    }
    (0..n)
        .map(
            |j| match measured.binary_search_by_key(&j, |&(idx, _)| idx) {
                Ok(pos) => measured.get(pos).map_or(0.0, |&(_, v)| v),
                Err(pos) => {
                    let left = pos.checked_sub(1).and_then(|p| measured.get(p));
                    match (left, measured.get(pos)) {
                        // Left of the first sample: interpolate toward 0 at
                        // "0 CTAs" (IPC vanishes with no CTAs).
                        (None, Some(&(j1, v1))) => v1 * (j + 1) as f64 / (j1 + 1) as f64,
                        // Right of the last sample: clamp.
                        (Some(&(_, v0)), None) => v0,
                        (Some(&(j0, v0)), Some(&(j1, v1))) => {
                            let t = (j - j0) as f64 / (j1 - j0) as f64;
                            v0 + (v1 - v0) * t
                        }
                        // `measured` is non-empty, so one neighbour exists.
                        (None, None) => 0.0,
                    }
                }
            },
        )
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_kernel_plan_splits_sms_evenly() {
        let plan = ProfilePlan::build(16, &[8, 8]);
        assert_eq!(plan.assignments.len(), 16);
        assert_eq!(plan.for_kernel(0).count(), 8);
        assert_eq!(plan.for_kernel(1).count(), 8);
        // Fig. 4: quotas ramp 1..=8 within each group.
        let quotas: Vec<u32> = plan.for_kernel(0).map(|a| a.quota).collect();
        assert_eq!(quotas, vec![1, 2, 3, 4, 5, 6, 7, 8]);
        let quotas: Vec<u32> = plan.for_kernel(1).map(|a| a.quota).collect();
        assert_eq!(quotas, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn small_max_duplicates_counts() {
        let plan = ProfilePlan::build(16, &[3, 8]);
        let quotas: Vec<u32> = plan.for_kernel(0).map(|a| a.quota).collect();
        assert_eq!(quotas.len(), 8);
        assert_eq!(*quotas.first().unwrap(), 1);
        assert_eq!(*quotas.last().unwrap(), 3);
        assert!(quotas.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn three_kernel_plan_covers_all_sms() {
        let plan = ProfilePlan::build(16, &[8, 6, 8]);
        assert_eq!(plan.assignments.len(), 16);
        // 16 = 6 + 5 + 5.
        assert_eq!(plan.for_kernel(0).count(), 6);
        assert_eq!(plan.for_kernel(1).count(), 5);
        assert_eq!(plan.for_kernel(2).count(), 5);
        for k in 0..3 {
            let quotas: Vec<u32> = plan.for_kernel(k).map(|a| a.quota).collect();
            assert_eq!(*quotas.first().unwrap(), 1, "always probe 1 CTA");
            assert!(quotas.windows(2).all(|w| w[0] <= w[1]));
        }
        // SM indices are a permutation of 0..16.
        let mut sms: Vec<usize> = plan.assignments.iter().map(|a| a.sm).collect();
        sms.sort_unstable();
        assert_eq!(sms, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn windowed_plan_with_full_windows_matches_build() {
        let windows = [SweepWindow::full(8), SweepWindow::full(8)];
        assert_eq!(
            ProfilePlan::build_windowed(16, &windows),
            ProfilePlan::build(16, &[8, 8])
        );
    }

    #[test]
    fn windowed_plan_concentrates_samples_and_keeps_the_guard() {
        // Kernel 0: knee predicted at 2 out of 8 -> dense 1..=3, midpoint
        // 5, guard 8. Kernel 1: full window.
        let windows = [SweepWindow::around_knee(2, 8), SweepWindow::full(8)];
        let plan = ProfilePlan::build_windowed(16, &windows);
        assert_eq!(plan.assignments.len(), 16);
        let quotas: Vec<u32> = plan.for_kernel(0).map(|a| a.quota).collect();
        // 8 SMs over caps [1, 2, 3, 5, 8]: starts at 1, ends at the guard,
        // non-decreasing, and only planned caps appear.
        assert_eq!(quotas.first(), Some(&1));
        assert_eq!(quotas.last(), Some(&8));
        assert!(quotas.windows(2).all(|w| w[0] <= w[1]));
        assert!(quotas.iter().all(|q| [1, 2, 3, 5, 8].contains(q)));
        // The dense window is sampled more heavily than under the plain
        // ramp (which gives each count one SM).
        assert!(quotas.iter().filter(|&&q| q <= 3).count() > 3, "{quotas:?}");
        let quotas: Vec<u32> = plan.for_kernel(1).map(|a| a.quota).collect();
        assert_eq!(quotas, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn curves_average_and_scale() {
        // Two samples of the same point average; phi=0 means no scaling.
        let samples = [
            ProfileSample {
                kernel: 0,
                ctas: 1,
                ipc_sampled: 1.0,
                phi_mem: 0.0,
                bandwidth: None,
            },
            ProfileSample {
                kernel: 0,
                ctas: 1,
                ipc_sampled: 3.0,
                phi_mem: 0.0,
                bandwidth: None,
            },
            ProfileSample {
                kernel: 0,
                ctas: 2,
                ipc_sampled: 4.0,
                phi_mem: 0.0,
                bandwidth: None,
            },
        ];
        let curves = build_curves(&samples, &[2]);
        assert_eq!(curves.len(), 1);
        assert!((curves[0][0] - 2.0).abs() < 1e-12);
        assert!((curves[0][1] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn curves_interpolate_gaps() {
        let samples = [
            ProfileSample {
                kernel: 0,
                ctas: 1,
                ipc_sampled: 1.0,
                phi_mem: 0.0,
                bandwidth: None,
            },
            ProfileSample {
                kernel: 0,
                ctas: 5,
                ipc_sampled: 5.0,
                phi_mem: 0.0,
                bandwidth: None,
            },
        ];
        let c = &build_curves(&samples, &[8])[0];
        assert!((c[2] - 3.0).abs() < 1e-9, "midpoint interpolates: {c:?}");
        assert!((c[7] - 5.0).abs() < 1e-9, "right edge clamps");
    }

    #[test]
    fn memory_bound_samples_get_scaled() {
        // Average CTA count is 4.5; the 8-CTA fully memory-bound sample is
        // scaled up, the 1-CTA one down.
        let samples = [
            ProfileSample {
                kernel: 0,
                ctas: 1,
                ipc_sampled: 1.0,
                phi_mem: 1.0,
                bandwidth: None,
            },
            ProfileSample {
                kernel: 0,
                ctas: 8,
                ipc_sampled: 1.0,
                phi_mem: 1.0,
                bandwidth: None,
            },
        ];
        let c = &build_curves(&samples, &[8])[0];
        assert!(c[0] < 1.0);
        assert!(c[7] > 1.0);
    }

    #[test]
    fn measured_bandwidth_overrides_cta_ratio() {
        // The 8-CTA SM consumed over 3x its fair share of a saturated bus:
        // its sample is scaled *down*, not up; the underfed 2-CTA SM is
        // scaled up.
        let bw = |tx: u64| {
            Some(BandwidthSample {
                sm_transactions: tx,
                fair_transactions: 100.0,
                dram_busy: 1.0,
            })
        };
        let samples = [
            ProfileSample {
                kernel: 0,
                ctas: 2,
                ipc_sampled: 2.0,
                phi_mem: 1.0,
                bandwidth: bw(50),
            },
            ProfileSample {
                kernel: 0,
                ctas: 8,
                ipc_sampled: 2.0,
                phi_mem: 1.0,
                bandwidth: bw(350),
            },
        ];
        let c = &build_curves(&samples, &[8])[0];
        assert!(c[7] < 2.0, "hog scaled down: {c:?}");
        assert!(c[1] > 2.0, "underfed scaled up: {c:?}");
    }

    #[test]
    fn audited_curves_record_every_scaling_application() {
        let samples = [
            ProfileSample {
                kernel: 0,
                ctas: 1,
                ipc_sampled: 1.0,
                phi_mem: 0.5,
                bandwidth: None,
            },
            ProfileSample {
                kernel: 1,
                ctas: 4,
                ipc_sampled: 2.0,
                phi_mem: 1.0,
                bandwidth: Some(BandwidthSample {
                    sm_transactions: 350,
                    fair_transactions: 100.0,
                    dram_busy: 1.0,
                }),
            },
        ];
        let mut audit = DecisionAudit::default();
        let audited = build_curves_audited(&samples, &[2, 4], &mut audit);
        // The audited and plain entry points agree on the curves.
        assert_eq!(audited, build_curves(&samples, &[2, 4]));
        assert_eq!(audit.scaled_points(0).count(), 1);
        assert_eq!(audit.scaled_points(1).count(), 1);
        // The recorded outcome reproduces the curve point it fed.
        let Some(AuditEvent::ScaledPoint {
            ipc_sampled,
            outcome,
            ..
        }) = audit.scaled_points(0).next()
        else {
            panic!("missing scaled point");
        };
        assert!((ipc_sampled * outcome.factor - outcome.ipc).abs() < 1e-12);
        assert!((outcome.ipc - audited[0][0]).abs() < 1e-12);
    }

    #[test]
    fn empty_samples_give_zero_curves() {
        let c = build_curves(&[], &[4]);
        assert_eq!(c, vec![vec![0.0; 4]]);
    }

    #[test]
    #[should_panic(expected = "more kernels than SMs")]
    fn too_many_kernels_rejected() {
        let _ = ProfilePlan::build(2, &[1, 1, 1]);
    }

    #[test]
    fn single_sm_groups_probe_the_predicted_knee() {
        // K == num_sms: every group has exactly one SM, so each kernel
        // gets exactly one sample. It must be the predicted knee — the
        // guard at the feasibility bound would make build_curves see a
        // flat single-point curve at the wrong end.
        let windows = [
            SweepWindow::around_knee(2, 8),
            SweepWindow::around_knee(4, 8),
        ];
        let plan = ProfilePlan::build_windowed(2, &windows);
        let quotas: Vec<u32> = plan.assignments.iter().map(|a| a.quota).collect();
        assert_eq!(quotas, vec![2, 4]);
        // Full windows keep probing the bound, matching ProfilePlan::build.
        let full = [SweepWindow::full(8), SweepWindow::full(6)];
        let plan = ProfilePlan::build_windowed(2, &full);
        let quotas: Vec<u32> = plan.assignments.iter().map(|a| a.quota).collect();
        assert_eq!(quotas, vec![8, 6]);
        let built = ProfilePlan::build(2, &[8, 6]);
        let quotas: Vec<u32> = built.assignments.iter().map(|a| a.quota).collect();
        assert_eq!(quotas, vec![8, 6]);
    }

    #[test]
    fn single_knee_sample_yields_a_non_degenerate_curve() {
        // The K == num_sms case downstream: one sample at the knee still
        // gives build_curves a ramp (toward 0 at 0 CTAs) plus a clamped
        // tail, not a curve that is flat everywhere.
        let samples = [ProfileSample {
            kernel: 0,
            ctas: 4,
            ipc_sampled: 2.0,
            phi_mem: 0.0,
            bandwidth: None,
        }];
        let c = &build_curves(&samples, &[8])[0];
        assert!(c[0] < c[3], "curve ramps up to the knee: {c:?}");
        assert!((c[3] - 2.0).abs() < 1e-12, "knee point is exact");
        assert!((c[7] - 2.0).abs() < 1e-12, "right of the sample clamps");
    }

    #[test]
    fn empty_window_is_a_structured_planning_error() {
        // An inverted window with no guard plans nothing to probe.
        let empty = SweepWindow {
            lo: 9,
            hi: 8,
            max: 8,
        };
        assert!(empty.planned_caps().is_empty());
        let err = ProfilePlan::try_build_windowed(16, &[SweepWindow::full(8), empty])
            .expect_err("empty window is rejected");
        assert_eq!(err.kernel, 1, "the offending kernel is named");
        assert_eq!(err.window, empty);
        assert!(err.to_string().contains("kernel 1"), "{err}");
    }

    #[test]
    #[should_panic(expected = "plans no CTA caps")]
    fn build_windowed_panics_on_empty_window_under_strict_invariants() {
        let empty = SweepWindow {
            lo: 9,
            hi: 8,
            max: 8,
        };
        let _ = ProfilePlan::build_windowed(16, &[SweepWindow::full(8), empty]);
    }
}
