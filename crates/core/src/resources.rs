//! Multi-dimensional SM resource vectors.
//!
//! Algorithm 1 of the paper reasons about "resources" abstractly; on a real
//! SM a CTA simultaneously consumes registers, shared memory, thread slots
//! and a CTA slot. [`ResourceVec`] carries all four so the partitioner's
//! capacity constraint `Σ R_Ti <= R_tot` is checked component-wise.

use gpu_sim::{KernelDesc, SmConfig};

/// A bundle of the four per-SM resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceVec {
    /// Registers.
    pub regs: u64,
    /// Shared-memory bytes.
    pub shmem: u64,
    /// Thread slots.
    pub threads: u64,
    /// CTA slots.
    pub ctas: u64,
}

impl ResourceVec {
    /// The zero vector.
    #[must_use]
    pub fn zero() -> Self {
        Self::default()
    }

    /// Capacity of one SM under `cfg`.
    #[must_use]
    pub fn sm_capacity(cfg: &SmConfig) -> Self {
        Self {
            regs: u64::from(cfg.max_registers),
            shmem: u64::from(cfg.shared_mem_bytes),
            threads: u64::from(cfg.max_threads),
            ctas: u64::from(cfg.max_ctas),
        }
    }

    /// Footprint of one CTA of `desc`.
    #[must_use]
    pub fn cta_cost(desc: &KernelDesc) -> Self {
        Self {
            regs: u64::from(desc.regs_per_cta()),
            shmem: u64::from(desc.shmem_per_cta),
            threads: u64::from(desc.threads_per_cta),
            ctas: 1,
        }
    }

    /// Component-wise `self >= other`.
    #[must_use]
    pub fn covers(&self, other: &ResourceVec) -> bool {
        self.regs >= other.regs
            && self.shmem >= other.shmem
            && self.threads >= other.threads
            && self.ctas >= other.ctas
    }

    /// Component-wise saturating subtraction.
    #[must_use]
    pub fn saturating_sub(&self, other: &ResourceVec) -> Self {
        Self {
            regs: self.regs.saturating_sub(other.regs),
            shmem: self.shmem.saturating_sub(other.shmem),
            threads: self.threads.saturating_sub(other.threads),
            ctas: self.ctas.saturating_sub(other.ctas),
        }
    }

    /// Component-wise addition.
    #[must_use]
    pub fn plus(&self, other: &ResourceVec) -> Self {
        Self {
            regs: self.regs + other.regs,
            shmem: self.shmem + other.shmem,
            threads: self.threads + other.threads,
            ctas: self.ctas + other.ctas,
        }
    }

    /// Scalar multiple (`n` CTAs of this footprint).
    #[must_use]
    pub fn times(&self, n: u64) -> Self {
        Self {
            regs: self.regs * n,
            shmem: self.shmem * n,
            threads: self.threads * n,
            ctas: self.ctas * n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::GpuConfig;

    fn vec4(regs: u64, shmem: u64, threads: u64, ctas: u64) -> ResourceVec {
        ResourceVec {
            regs,
            shmem,
            threads,
            ctas,
        }
    }

    #[test]
    fn covers_is_componentwise() {
        let cap = vec4(100, 100, 100, 8);
        assert!(cap.covers(&vec4(100, 0, 50, 8)));
        assert!(!cap.covers(&vec4(101, 0, 0, 0)));
        assert!(!cap.covers(&vec4(0, 0, 0, 9)));
        assert!(cap.covers(&ResourceVec::zero()));
    }

    #[test]
    fn arithmetic_roundtrips() {
        let a = vec4(10, 20, 30, 1);
        let b = a.times(3);
        assert_eq!(b, vec4(30, 60, 90, 3));
        assert_eq!(b.saturating_sub(&a), vec4(20, 40, 60, 2));
        assert_eq!(a.plus(&a), a.times(2));
        assert_eq!(
            vec4(1, 1, 1, 1).saturating_sub(&vec4(5, 5, 5, 5)),
            ResourceVec::zero()
        );
    }

    #[test]
    fn sm_capacity_matches_config() {
        let cfg = GpuConfig::isca_baseline().sm;
        let cap = ResourceVec::sm_capacity(&cfg);
        assert_eq!(cap, vec4(32768, 48 * 1024, 1536, 8));
    }
}
