//! Experiment runner implementing the paper's equal-work methodology
//! (Sec. V-A): each benchmark's instruction target is recorded from an
//! isolation run of a fixed cycle budget; in a multiprogrammed run each
//! kernel halts (and releases its resources) upon reaching its target, and
//! the run ends when every kernel has finished.
//!
//! Every run is described by a [`SimJob`] — a plain-data value (hardware
//! config + kernels + policy + warm-up + stop condition) executed by the
//! single [`execute`] entry point. Because a job is pure data and
//! `execute` is a pure function of it, batches of jobs run on the
//! [`ws_exec::Pool`] with byte-identical results at any worker count; see
//! [`execute_batch`]. The historical entry points ([`run_isolation`],
//! [`run_with_cta_cap`], [`run_corun`]) are thin wrappers over `execute`.

use gpu_sim::{Gpu, GpuConfig, KernelDesc, KernelId, SchedulerKind, StallBreakdown, TraceEvent};

use crate::audit::DecisionAudit;
use crate::policy::{make_controller, Decision, PolicyKind};

/// Global run parameters.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Hardware configuration.
    pub gpu: GpuConfig,
    /// Warp scheduler.
    pub scheduler: SchedulerKind,
    /// Isolation-run cycle budget that defines each benchmark's
    /// instruction target (the paper uses 2 M; the default here is smaller
    /// so the full evaluation regenerates quickly — shapes are stable).
    pub isolation_cycles: u64,
    /// Multiprogrammed runs are aborted at
    /// `isolation_cycles * max_cycle_factor` (safety net; a well-behaved
    /// policy finishes far earlier).
    pub max_cycle_factor: u64,
    /// Event-horizon fast-forward override: `None` follows the process
    /// default ([`gpu_sim::fast_forward_default`], i.e. the
    /// `WS_SIM_FASTFORWARD` env var), `Some(on)` forces it for this job.
    /// Either way the outcome statistics are byte-identical; only
    /// wall-clock time changes.
    pub fast_forward: Option<bool>,
    /// ws-trace capture: `Some` enables the simulator's ring-buffered event
    /// sink and (for the Warped-Slicer policy) the decision audit, both
    /// returned on the [`SimOutcome`]. `None` (the default) keeps the run
    /// allocation-free on the tick path. Statistics are identical either
    /// way; only the outcome's `trace`/`audit` fields change.
    pub trace: Option<TraceOptions>,
}

/// Tunables for ws-trace capture (see [`RunConfig::trace`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOptions {
    /// Ring-buffer capacity in events; when full, the oldest events are
    /// overwritten (the sink counts the drops).
    pub ring_capacity: usize,
    /// Emit an aggregated stall-breakdown event every this many cycles
    /// (0 disables stall windows).
    pub stall_window: u64,
}

impl Default for TraceOptions {
    fn default() -> Self {
        Self {
            ring_capacity: 1 << 16,
            stall_window: 5_000,
        }
    }
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            gpu: GpuConfig::isca_baseline(),
            scheduler: SchedulerKind::GreedyThenOldest,
            isolation_cycles: 100_000,
            max_cycle_factor: 30,
            fast_forward: None,
            trace: None,
        }
    }
}

/// Hardware-utilization summary over a run (Fig. 7a inputs).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UtilizationStats {
    /// ALU pipeline busy fraction.
    pub alu: f64,
    /// SFU pipeline busy fraction.
    pub sfu: f64,
    /// LSU pipeline busy fraction.
    pub lsu: f64,
    /// Time-averaged register-file occupancy.
    pub reg: f64,
    /// Time-averaged shared-memory occupancy.
    pub shmem: f64,
    /// Time-averaged thread occupancy.
    pub threads: f64,
}

/// Cache behaviour summary (Fig. 7b inputs).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CacheStats {
    /// L1 accesses across all SMs.
    pub l1_accesses: u64,
    /// L1 misses across all SMs.
    pub l1_misses: u64,
    /// L2 accesses.
    pub l2_accesses: u64,
    /// L2 misses.
    pub l2_misses: u64,
}

impl CacheStats {
    /// L1 miss rate (0 when never accessed).
    #[must_use]
    pub fn l1_miss_rate(&self) -> f64 {
        if self.l1_accesses == 0 {
            0.0
        } else {
            self.l1_misses as f64 / self.l1_accesses as f64
        }
    }

    /// L2 miss rate (0 when never accessed).
    #[must_use]
    pub fn l2_miss_rate(&self) -> f64 {
        if self.l2_accesses == 0 {
            0.0
        } else {
            self.l2_misses as f64 / self.l2_accesses as f64
        }
    }
}

/// Everything measured over one simulation run.
#[derive(Debug, Clone, Default)]
pub struct AggregateStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Scheduler-cycles (cycles × SMs × schedulers).
    pub sched_cycles: u64,
    /// Warp instructions issued, total.
    pub insts: u64,
    /// Warp instructions issued per kernel slot.
    pub insts_per_kernel: Vec<u64>,
    /// Stall breakdown summed over all schedulers.
    pub stalls: StallBreakdown,
    /// Utilization summary.
    pub util: UtilizationStats,
    /// Cache summary (all kernels).
    pub cache: CacheStats,
    /// Per-kernel L2 MPKI (L2 misses per kilo warp instructions).
    pub l2_mpki_per_kernel: Vec<f64>,
    /// Per-kernel L1 miss rate.
    pub l1_miss_rate_per_kernel: Vec<f64>,
    /// DRAM transactions serviced (reads + writes).
    pub dram_transactions: u64,
    /// Fraction of DRAM data-bus cycles busy.
    pub dram_busy: f64,
    /// Fraction of scheduler-cycles lost to long memory latency.
    pub phi_mem: f64,
}

/// Collects [`AggregateStats`] from a finished (or in-flight) GPU.
#[must_use]
pub fn collect_stats(gpu: &Gpu) -> AggregateStats {
    let cfg = gpu.config();
    let num_sched = u64::from(cfg.sm.num_schedulers);
    let cycles = gpu.cycle();
    let num_kernels = gpu.num_kernels();
    let mut stalls = StallBreakdown::default();
    let mut alu = 0u64;
    let mut sfu = 0u64;
    let mut lsu = 0u64;
    let mut reg = 0.0;
    let mut shm = 0.0;
    let mut thr = 0.0;
    let mut l1_acc = 0u64;
    let mut l1_miss = 0u64;
    let mut l1_acc_k = vec![0u64; num_kernels];
    let mut l1_miss_k = vec![0u64; num_kernels];
    for sm in gpu.sms() {
        let st = sm.stats();
        stalls = StallBreakdown {
            mem: stalls.mem + st.stalls.mem,
            raw: stalls.raw + st.stalls.raw,
            exec: stalls.exec + st.stalls.exec,
            ibuffer: stalls.ibuffer + st.stalls.ibuffer,
            barrier: stalls.barrier + st.stalls.barrier,
            idle: stalls.idle + st.stalls.idle,
        };
        alu += st.alu_busy;
        sfu += st.sfu_busy;
        lsu += st.lsu_busy;
        reg += st.avg_reg_occupancy(cfg.sm.max_registers);
        shm += st.avg_shmem_occupancy(cfg.sm.shared_mem_bytes);
        thr += st.avg_thread_occupancy(cfg.sm.max_threads);
        for k in 0..num_kernels {
            let ks = st.kernel(k);
            l1_acc += ks.l1_accesses;
            l1_miss += ks.l1_misses;
            l1_acc_k[k] += ks.l1_accesses;
            l1_miss_k[k] += ks.l1_misses;
        }
    }
    let n_sms = gpu.num_sms() as u64;
    let n_sms_f = gpu.num_sms() as f64;
    let mem = gpu.mem_stats();
    let insts_per_kernel: Vec<u64> = (0..num_kernels)
        .map(|k| gpu.kernel_insts(KernelId(k)))
        .collect();
    let insts: u64 = insts_per_kernel.iter().sum();
    let sched_cycles = cycles * n_sms * num_sched;
    let denom_units = (cycles * n_sms * num_sched).max(1) as f64;
    AggregateStats {
        cycles,
        sched_cycles,
        insts,
        stalls,
        util: UtilizationStats {
            alu: alu as f64 / denom_units,
            sfu: sfu as f64 / denom_units,
            lsu: lsu as f64 / denom_units,
            reg: reg / n_sms_f,
            shmem: shm / n_sms_f,
            threads: thr / n_sms_f,
        },
        cache: CacheStats {
            l1_accesses: l1_acc,
            l1_misses: l1_miss,
            l2_accesses: mem.total.l2_accesses,
            l2_misses: mem.total.l2_misses,
        },
        l2_mpki_per_kernel: (0..num_kernels)
            .map(|k| {
                let ki = insts_per_kernel[k];
                if ki == 0 {
                    0.0
                } else {
                    mem.kernel(KernelId(k)).l2_misses as f64 * 1000.0 / ki as f64
                }
            })
            .collect(),
        l1_miss_rate_per_kernel: (0..num_kernels)
            .map(|k| {
                if l1_acc_k[k] == 0 {
                    0.0
                } else {
                    l1_miss_k[k] as f64 / l1_acc_k[k] as f64
                }
            })
            .collect(),
        insts_per_kernel,
        dram_transactions: gpu.mem().dram_serviced(),
        dram_busy: gpu.mem().dram_busy_fraction(cycles.max(1)),
        phi_mem: stalls.mem as f64 / sched_cycles.max(1) as f64,
    }
}

/// Result of an isolation run.
#[derive(Debug, Clone)]
pub struct IsolationResult {
    /// Warp instructions issued in the budget — the benchmark's equal-work
    /// target.
    pub target_insts: u64,
    /// Cycles the kernel actually needed to issue `target_insts` alone: the
    /// cycle of its last instruction issue, not the isolation budget. The
    /// two differ when the kernel exhausts its grid (or stalls out) before
    /// the budget; metrics must normalize by *this* value, one per kernel,
    /// never by the shared budget (see [`crate::metrics`]). Always >= 1.
    pub isolated_cycles: u64,
    /// GPU-wide IPC over the budget.
    pub ipc: f64,
    /// Full statistics.
    pub stats: AggregateStats,
}

/// When a simulation job stops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StopCondition {
    /// Run exactly this many cycles after the warm-up.
    Cycles(u64),
    /// Run until every kernel reaches its equal-work instruction target
    /// (halting each as it finishes) or the safety cap
    /// `isolation_cycles * max_cycle_factor` is hit.
    Targets(Vec<u64>),
}

/// A complete, self-contained description of one simulation run: hardware
/// configuration, kernels, dispatch policy, warm-up and stop condition.
///
/// Jobs are plain data (`Clone + Send`), so a batch of them can be executed
/// on any thread in any order; [`execute`] is a pure function of the job.
#[derive(Debug, Clone)]
pub struct SimJob {
    /// Kernels dispatched at cycle 0, in slot order.
    pub kernels: Vec<KernelDesc>,
    /// CTA-dispatch policy controlling the run.
    pub policy: PolicyKind,
    /// Run parameters (hardware config, scheduler, budgets).
    pub cfg: RunConfig,
    /// Cycles to run before the measurement window opens.
    pub warmup: u64,
    /// When the run ends.
    pub stop: StopCondition,
}

impl SimJob {
    /// The isolation job behind [`run_isolation`]: `desc` alone under
    /// Left-Over for `cfg.isolation_cycles`.
    #[must_use]
    pub fn isolation(desc: &KernelDesc, cfg: &RunConfig) -> Self {
        Self {
            kernels: vec![desc.clone()],
            policy: PolicyKind::LeftOver,
            cfg: cfg.clone(),
            warmup: 0,
            stop: StopCondition::Cycles(cfg.isolation_cycles),
        }
    }

    /// The CTA-capped sampling job behind [`run_with_cta_cap`]: `desc`
    /// alone with at most `cap` CTAs per SM, warmed up for a quarter of the
    /// window and measured for `cycles`.
    #[must_use]
    pub fn cta_cap(desc: &KernelDesc, cap: u32, cycles: u64, cfg: &RunConfig) -> Self {
        Self {
            kernels: vec![desc.clone()],
            policy: PolicyKind::Quota(vec![cap]),
            cfg: cfg.clone(),
            warmup: cycles / 4,
            stop: StopCondition::Cycles(cycles),
        }
    }

    /// The multiprogrammed equal-work job behind [`run_corun`].
    ///
    /// # Panics
    ///
    /// Panics if `descs` and `targets` lengths differ or are empty.
    #[must_use]
    pub fn corun(
        descs: &[&KernelDesc],
        targets: &[u64],
        policy: &PolicyKind,
        cfg: &RunConfig,
    ) -> Self {
        assert!(!descs.is_empty(), "at least one kernel required");
        assert_eq!(descs.len(), targets.len(), "one target per kernel");
        Self {
            kernels: descs.iter().map(|d| (*d).clone()).collect(),
            policy: policy.clone(),
            cfg: cfg.clone(),
            warmup: 0,
            stop: StopCondition::Targets(targets.to_vec()),
        }
    }

    /// The workload label (kernel names joined by `_`, e.g. `"IMG_NN"`).
    #[must_use]
    pub fn label(&self) -> String {
        self.kernels
            .iter()
            .map(|d| d.name.as_str())
            .collect::<Vec<_>>()
            .join("_")
    }
}

/// Everything [`execute`] measures over one [`SimJob`].
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Per-kernel instructions issued when the measurement window opened
    /// (end of warm-up).
    pub start_insts: Vec<u64>,
    /// Per-kernel instructions issued at run end.
    pub end_insts: Vec<u64>,
    /// Cycles inside the measurement window (excludes warm-up).
    pub measured_cycles: u64,
    /// Total cycles simulated (includes warm-up).
    pub total_cycles: u64,
    /// Cycle at which each kernel reached its target (`Targets` jobs only;
    /// `None` = not reached).
    pub finish_cycle: Vec<Option<u64>>,
    /// Whether a `Targets` job hit the safety cap.
    pub timed_out: bool,
    /// Full statistics at run end.
    pub stats: AggregateStats,
    /// The partition decision, for dynamic policies.
    pub decision: Option<Decision>,
    /// Simulated cycles the event-horizon fast-forward path skipped
    /// (diagnostic only; 0 when fast-forward is disabled). Deliberately
    /// not part of [`AggregateStats`] so outcome comparisons across
    /// fast-forward modes stay byte-identical.
    pub ff_skipped_cycles: u64,
    /// Cycle at which each kernel last issued an instruction (0 if it never
    /// did). For an isolation job this is the kernel's true isolated
    /// execution time for its target.
    pub last_progress_cycle: Vec<u64>,
    /// Captured simulator events, oldest first ([`RunConfig::trace`] jobs
    /// only). Unlike the statistics, the event *stream* is only comparable
    /// between runs with the same fast-forward setting.
    pub trace: Option<Vec<TraceEvent>>,
    /// The policy's decision audit ([`RunConfig::trace`] jobs under the
    /// Warped-Slicer policy, or any policy configured with
    /// [`WarpedSlicerConfig::audit`](crate::policy::WarpedSlicerConfig)).
    pub audit: Option<DecisionAudit>,
}

impl SimOutcome {
    /// GPU-wide IPC over the measurement window, summed across kernels —
    /// the Fig. 3 sampling metric.
    #[must_use]
    pub fn measured_ipc(&self) -> f64 {
        let issued: u64 = self
            .end_insts
            .iter()
            .zip(&self.start_insts)
            .map(|(e, s)| e - s)
            .sum();
        issued as f64 / self.measured_cycles.max(1) as f64
    }

    /// Interprets the outcome of a [`SimJob::isolation`] job.
    #[must_use]
    pub fn into_isolation(self) -> IsolationResult {
        IsolationResult {
            target_insts: self.end_insts.iter().sum(),
            isolated_cycles: self
                .last_progress_cycle
                .first()
                .copied()
                .unwrap_or(self.total_cycles)
                .max(1),
            ipc: self.stats.insts as f64 / self.measured_cycles.max(1) as f64,
            stats: self.stats,
        }
    }

    /// Interprets the outcome of a [`SimJob::corun`] job, labelling it from
    /// the job it came from.
    ///
    /// # Panics
    ///
    /// Panics if `job` is not a `Targets` job.
    #[must_use]
    pub fn into_corun(self, job: &SimJob) -> CorunResult {
        let StopCondition::Targets(targets) = &job.stop else {
            panic!("into_corun requires a Targets job");
        };
        CorunResult {
            label: job.label(),
            policy: job.policy.to_string(),
            targets: targets.clone(),
            finish_cycle: self.finish_cycle,
            total_cycles: self.total_cycles,
            combined_ipc: targets.iter().sum::<u64>() as f64 / self.total_cycles.max(1) as f64,
            timed_out: self.timed_out,
            stats: self.stats,
            decision: self.decision,
        }
    }
}

/// One fast-forward attempt after a `gpu.tick()`.
///
/// Skipping an `on_cycle` call is only sound if that call would have been a
/// no-op, so the skip is gated on the controller-visible change signature
/// — `(completed CTAs, halted kernels)`, the same key
/// [`crate::policy`]'s `ChangeTracker` watches — being unchanged since the
/// previous iteration, and the jump is clamped to both the stop-condition
/// `boundary` and the controller's own
/// [`Controller::next_intervention`](crate::policy::Controller::next_intervention)
/// timer. See `DESIGN.md` §9 for the full contract.
fn fast_forward_step(
    gpu: &mut Gpu,
    controller: &dyn crate::policy::Controller,
    last_sig: &mut (u64, usize),
    boundary: u64,
) {
    let sig = (gpu.total_completed(), gpu.halted_kernels());
    if sig == *last_sig {
        let limit = controller
            .next_intervention()
            .map_or(boundary, |iv| iv.min(boundary));
        let _ = gpu.fast_forward(limit);
    }
    *last_sig = sig;
}

/// Updates each kernel's last-progress cycle after a tick: any kernel whose
/// instruction count moved issued at the just-ticked cycle. Instruction
/// counts are frozen inside fast-forwarded spans, so this is exact under
/// fast-forward too.
fn note_progress(gpu: &Gpu, ids: &[KernelId], last_insts: &mut [u64], last_cycle: &mut [u64]) {
    for (i, &k) in ids.iter().enumerate() {
        let insts = gpu.kernel_insts(k);
        if let (Some(prev), Some(cell)) = (last_insts.get_mut(i), last_cycle.get_mut(i)) {
            if insts > *prev {
                *prev = insts;
                *cell = gpu.cycle();
            }
        }
    }
}

/// Executes one [`SimJob`] to completion. Pure in the job: the same job
/// always produces the same outcome, on any thread — and, by the
/// event-horizon contract, regardless of whether fast-forward is on.
#[must_use]
pub fn execute(job: &SimJob) -> SimOutcome {
    let mut gpu = Gpu::new(job.cfg.gpu.clone(), job.cfg.scheduler);
    if let Some(on) = job.cfg.fast_forward {
        gpu.set_fast_forward(on);
    }
    if let Some(t) = &job.cfg.trace {
        gpu.enable_trace(t.ring_capacity, t.stall_window);
    }
    let ids: Vec<KernelId> = job
        .kernels
        .iter()
        .map(|d| gpu.add_kernel(d.clone()))
        .collect();
    // A traced Warped-Slicer run implies the decision audit: recording only
    // happens at decision points, so the simulated run is unchanged.
    let policy = match (&job.cfg.trace, &job.policy) {
        (Some(_), PolicyKind::WarpedSlicer(ws)) if !ws.audit => {
            PolicyKind::WarpedSlicer(crate::policy::WarpedSlicerConfig {
                audit: true,
                ..ws.clone()
            })
        }
        _ => job.policy.clone(),
    };
    let mut controller = make_controller(&policy);
    let mut sig = (gpu.total_completed(), gpu.halted_kernels());
    let mut last_insts = vec![0u64; ids.len()];
    let mut last_progress = vec![0u64; ids.len()];
    while gpu.cycle() < job.warmup {
        controller.on_cycle(&mut gpu);
        gpu.tick();
        note_progress(&gpu, &ids, &mut last_insts, &mut last_progress);
        fast_forward_step(&mut gpu, controller.as_ref(), &mut sig, job.warmup);
    }
    let start_insts: Vec<u64> = ids.iter().map(|&k| gpu.kernel_insts(k)).collect();
    let warm_end = gpu.cycle();
    let mut finish: Vec<Option<u64>> = vec![None; ids.len()];
    let mut timed_out = false;
    match &job.stop {
        StopCondition::Cycles(cycles) => {
            let end = warm_end + cycles;
            while gpu.cycle() < end {
                controller.on_cycle(&mut gpu);
                gpu.tick();
                note_progress(&gpu, &ids, &mut last_insts, &mut last_progress);
                fast_forward_step(&mut gpu, controller.as_ref(), &mut sig, end);
            }
        }
        StopCondition::Targets(targets) => {
            let max_cycles = job.cfg.isolation_cycles * job.cfg.max_cycle_factor;
            let mut done = 0usize;
            while done < ids.len() && gpu.cycle() < max_cycles {
                controller.on_cycle(&mut gpu);
                gpu.tick();
                note_progress(&gpu, &ids, &mut last_insts, &mut last_progress);
                for (i, &k) in ids.iter().enumerate() {
                    if finish[i].is_none() && gpu.kernel_insts(k) >= targets[i] {
                        finish[i] = Some(gpu.cycle());
                        gpu.halt_kernel(k);
                        done += 1;
                    }
                }
                // Safe after the target checks: instruction counts are
                // frozen inside a dead span, so no target can be crossed
                // mid-skip.
                fast_forward_step(&mut gpu, controller.as_ref(), &mut sig, max_cycles);
            }
            timed_out = finish.iter().any(Option::is_none);
        }
    }
    SimOutcome {
        end_insts: ids.iter().map(|&k| gpu.kernel_insts(k)).collect(),
        start_insts,
        measured_cycles: gpu.cycle() - warm_end,
        total_cycles: gpu.cycle(),
        finish_cycle: finish,
        timed_out,
        stats: collect_stats(&gpu),
        decision: controller.decision().cloned(),
        ff_skipped_cycles: gpu.skipped_cycles(),
        last_progress_cycle: last_progress,
        trace: gpu.take_trace().map(|t| t.events().copied().collect()),
        audit: controller.audit().cloned(),
    }
}

/// Executes a batch of jobs on `pool`, returning outcomes in job order —
/// byte-identical to a serial loop for any worker count.
///
/// # Panics
///
/// Re-raises the first job panic deterministically (lowest job index); see
/// [`ws_exec::Pool::run`].
#[must_use]
pub fn execute_batch(pool: &ws_exec::Pool, jobs: &[SimJob]) -> Vec<SimOutcome> {
    pool.run(jobs, |_, job| execute(job))
}

/// [`execute_batch`] with a per-completion observer: `observe` runs on the
/// caller's thread once per finished simulation, in completion-count order
/// (`seq` goes `1..=total` strictly increasing) with the finishing job's
/// id attached — deterministic progress shape at any worker count.
///
/// # Panics
///
/// Re-raises the first job panic deterministically (lowest job index).
#[must_use]
pub fn execute_batch_observed(
    pool: &ws_exec::Pool,
    jobs: &[SimJob],
    observe: impl FnMut(ws_exec::BatchProgress),
) -> Vec<SimOutcome> {
    let results = pool.try_run_observed(jobs, |_, job| execute(job), observe);
    let mut out = Vec::with_capacity(results.len());
    for r in results {
        match r {
            Ok(v) => out.push(v),
            Err(p) => panic!("{p}"),
        }
    }
    out
}

/// A streaming simulation session: submit [`SimJob`]s one at a time, drain
/// [`SimOutcome`]s in finish order. This is the overlap primitive behind
/// the pipelined profiling sweep — curve acceptance and water-filling for
/// one kernel run on the drain thread while other kernels' sampling
/// windows still simulate.
pub struct SimStream<'p> {
    inner: ws_exec::Stream<'p, SimOutcome>,
}

impl<'p> SimStream<'p> {
    /// Opens a stream on `pool`. Jobs are numbered from 0 per stream.
    #[must_use]
    pub fn new(pool: &'p ws_exec::Pool) -> Self {
        Self {
            inner: pool.stream(),
        }
    }

    /// Submits one simulation; returns its stream-local id. (Named
    /// `submit_job` rather than `submit` so the xtask call graph — which
    /// resolves method calls by name — never links the memory subsystem's
    /// tick-path `submit` to this entry point into whole-GPU construction.)
    pub fn submit_job(&mut self, job: &SimJob) -> ws_exec::JobId {
        let job = job.clone();
        self.inner.submit(move || execute(&job))
    }

    /// Jobs submitted so far.
    #[must_use]
    pub fn submitted(&self) -> usize {
        self.inner.submitted()
    }

    /// Jobs submitted but not yet drained.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.inner.in_flight()
    }
}

impl Iterator for SimStream<'_> {
    type Item = (ws_exec::JobId, ws_exec::JobResult<SimOutcome>);

    /// Blocks for the next finished simulation; `None` once every
    /// submitted job has been delivered (more may be submitted after).
    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next()
    }
}

/// Runs `desc` alone (Left-Over single-kernel dispatch) for
/// `cfg.isolation_cycles` and records its instruction target and solo
/// statistics.
#[must_use]
pub fn run_isolation(desc: &KernelDesc, cfg: &RunConfig) -> IsolationResult {
    execute(&SimJob::isolation(desc, cfg)).into_isolation()
}

/// Runs `desc` with at most `cap` CTAs per SM for `cycles` cycles and
/// returns the GPU-wide IPC — the primitive behind Fig. 3a/3b and the
/// Oracle's per-point measurements.
#[must_use]
pub fn run_with_cta_cap(desc: &KernelDesc, cap: u32, cycles: u64, cfg: &RunConfig) -> f64 {
    execute(&SimJob::cta_cap(desc, cap, cycles, cfg)).measured_ipc()
}

/// Result of a multiprogrammed run.
#[derive(Debug, Clone)]
pub struct CorunResult {
    /// Workload label (e.g. `"IMG_NN"`).
    pub label: String,
    /// Policy that produced this result.
    pub policy: String,
    /// Per-kernel instruction targets.
    pub targets: Vec<u64>,
    /// Cycle at which each kernel reached its target (`None` = timed out).
    pub finish_cycle: Vec<Option<u64>>,
    /// Cycles until every kernel finished (or the safety cap).
    pub total_cycles: u64,
    /// `Σ targets / total_cycles` — the paper's combined-IPC metric.
    pub combined_ipc: f64,
    /// Whether the safety cap was hit.
    pub timed_out: bool,
    /// Full statistics at run end.
    pub stats: AggregateStats,
    /// The partition decision, for dynamic policies.
    pub decision: Option<Decision>,
}

/// Runs the kernels of `descs` concurrently under `policy` with the
/// equal-work targets `targets` (from [`run_isolation`]).
///
/// # Panics
///
/// Panics if `descs` and `targets` lengths differ or are empty.
#[must_use]
pub fn run_corun(
    descs: &[&KernelDesc],
    targets: &[u64],
    policy: &PolicyKind,
    cfg: &RunConfig,
) -> CorunResult {
    let job = SimJob::corun(descs, targets, policy, cfg);
    execute(&job).into_corun(&job)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ws_workloads::by_abbrev;

    fn quick_cfg() -> RunConfig {
        RunConfig {
            isolation_cycles: 12_000,
            ..RunConfig::default()
        }
    }

    #[test]
    fn isolation_run_measures_a_target() {
        let cfg = quick_cfg();
        let r = run_isolation(&by_abbrev("IMG").unwrap().desc, &cfg);
        assert!(r.target_insts > 10_000);
        assert!(r.ipc > 0.5);
        assert!(
            r.stats.util.alu > 0.3,
            "IMG is ALU-heavy: {:?}",
            r.stats.util
        );
    }

    #[test]
    fn corun_finishes_both_kernels() {
        let cfg = quick_cfg();
        let a = by_abbrev("IMG").unwrap().desc;
        let b = by_abbrev("BLK").unwrap().desc;
        let ta = run_isolation(&a, &cfg).target_insts;
        let tb = run_isolation(&b, &cfg).target_insts;
        let r = run_corun(&[&a, &b], &[ta, tb], &PolicyKind::Even, &cfg);
        assert!(!r.timed_out, "{r:?}");
        assert!(r.finish_cycle.iter().all(Option::is_some));
        assert!(
            r.total_cycles >= cfg.isolation_cycles,
            "co-run can't beat solo"
        );
        assert!(r.combined_ipc > 0.0);
    }

    #[test]
    fn left_over_approximates_sequential_execution() {
        let cfg = quick_cfg();
        let a = by_abbrev("IMG").unwrap().desc;
        let b = by_abbrev("MM").unwrap().desc;
        let ta = run_isolation(&a, &cfg).target_insts;
        let tb = run_isolation(&b, &cfg).target_insts;
        let r = run_corun(&[&a, &b], &[ta, tb], &PolicyKind::LeftOver, &cfg);
        assert!(!r.timed_out);
        // Sequential would be ~2x the isolation budget.
        let expect = 2 * cfg.isolation_cycles;
        let ratio = r.total_cycles as f64 / expect as f64;
        assert!(
            (0.75..=1.35).contains(&ratio),
            "Left-Over should be near-sequential: {} vs {expect}",
            r.total_cycles
        );
    }

    #[test]
    fn cta_cap_primitive_reproduces_scaling() {
        let cfg = quick_cfg();
        let img = by_abbrev("IMG").unwrap().desc;
        let low = run_with_cta_cap(&img, 1, 6_000, &cfg);
        let high = run_with_cta_cap(&img, 8, 6_000, &cfg);
        assert!(high > 2.0 * low, "IMG scales with CTAs: {low} vs {high}");
    }

    #[test]
    fn stats_are_internally_consistent() {
        let cfg = quick_cfg();
        let r = run_isolation(&by_abbrev("BLK").unwrap().desc, &cfg);
        let s = &r.stats;
        assert_eq!(s.cycles, cfg.isolation_cycles);
        assert_eq!(s.sched_cycles, s.cycles * 16 * 2);
        assert_eq!(s.insts, s.insts_per_kernel.iter().sum::<u64>());
        assert!(s.cache.l1_misses <= s.cache.l1_accesses);
        assert!(s.cache.l2_misses <= s.cache.l2_accesses);
        assert!(s.util.reg > 0.5, "BLK fills the register file");
        assert!(s.phi_mem > 0.2, "BLK is memory bound");
        assert!(s.l2_mpki_per_kernel[0] > 30.0, "BLK is memory class");
    }

    #[test]
    fn isolation_measures_per_kernel_cycles() {
        let cfg = quick_cfg();
        let r = run_isolation(&by_abbrev("IMG").unwrap().desc, &cfg);
        assert!(r.isolated_cycles >= 1);
        assert!(r.isolated_cycles <= cfg.isolation_cycles);
        // IMG keeps issuing through the whole budget, so its true isolated
        // time is (nearly) the budget itself.
        assert!(r.isolated_cycles > cfg.isolation_cycles / 2);
    }

    #[test]
    fn traced_corun_captures_events_and_audit_without_changing_results() {
        let cfg = quick_cfg();
        let a = by_abbrev("IMG").unwrap().desc;
        let b = by_abbrev("NN").unwrap().desc;
        let ta = run_isolation(&a, &cfg).target_insts;
        let tb = run_isolation(&b, &cfg).target_insts;
        let policy =
            PolicyKind::WarpedSlicer(crate::policy::WarpedSlicerConfig::scaled_for(12_000));
        let plain = SimJob::corun(&[&a, &b], &[ta, tb], &policy, &cfg);
        let traced = SimJob {
            cfg: RunConfig {
                trace: Some(TraceOptions::default()),
                ..cfg.clone()
            },
            ..plain.clone()
        };
        let p = execute(&plain);
        let t = execute(&traced);
        // Tracing is observation only: the simulated run is identical.
        assert_eq!(p.total_cycles, t.total_cycles);
        assert_eq!(p.finish_cycle, t.finish_cycle);
        assert_eq!(p.end_insts, t.end_insts);
        assert!(p.trace.is_none() && p.audit.is_none());
        let events = t.trace.expect("trace captured");
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::KernelLaunch { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::KernelHalt { .. })));
        let audit = t.audit.expect("Warped-Slicer audit implied by tracing");
        assert!(audit.scaled_points(0).count() >= 1);
        assert!(audit.scaled_points(1).count() >= 1);
    }

    #[test]
    #[should_panic(expected = "one target per kernel")]
    fn mismatched_targets_rejected() {
        let cfg = quick_cfg();
        let a = by_abbrev("IMG").unwrap().desc;
        let _ = run_corun(&[&a], &[1, 2], &PolicyKind::Even, &cfg);
    }
}
