//! The bandwidth-interference IPC scaling factor (Sec. IV-A, Eq. 2-4).
//!
//! During the profiling phase every SM runs a different CTA count, so SMs
//! with more CTAs demand more than their fair share of DRAM bandwidth and
//! their sampled IPC misrepresents what the kernel would achieve at that
//! CTA count in isolation. Following Jog et al.'s observation that
//! `IPC ∝ BW / MPKI` for memory-intensive kernels (Eq. 2), the sampled IPC
//! is corrected by
//!
//! ```text
//! IPC_scaled = IPC_sampled * (1 + φ_mem * ψ),   ψ ≈ CTA_i / CTA_avg - 1
//! ```
//!
//! where `φ_mem` is the fraction of scheduler-cycles lost to long memory
//! latency during the sample (so compute-bound samples are barely touched).

/// Computes `ψ ≈ CTA_i / CTA_avg − 1` (Eq. 4).
///
/// # Panics
///
/// Panics if `cta_avg` is not positive.
#[must_use]
pub fn psi(cta_i: u32, cta_avg: f64) -> f64 {
    assert!(cta_avg > 0.0, "cta_avg must be positive");
    f64::from(cta_i) / cta_avg - 1.0
}

/// Applies the scaling factor of Eq. 3 to a sampled IPC.
///
/// `phi_mem` is clamped into `[0, 1]`; the resulting factor is floored at a
/// small positive value so a pathological sample can never produce a
/// negative IPC.
///
/// # Examples
///
/// ```
/// use warped_slicer::scaling::scale_ipc;
///
/// // A fully memory-bound SM holding twice the average CTA count is
/// // assumed to deserve twice the bandwidth it got during sampling.
/// assert_eq!(scale_ipc(1.0, 1.0, 8, 4.0), 2.0);
/// // A compute-bound sample is untouched.
/// assert_eq!(scale_ipc(2.0, 0.0, 8, 4.0), 2.0);
/// ```
#[must_use]
pub fn scale_ipc(ipc_sampled: f64, phi_mem: f64, cta_i: u32, cta_avg: f64) -> f64 {
    let phi = phi_mem.clamp(0.0, 1.0);
    let factor = (1.0 + phi * psi(cta_i, cta_avg)).max(0.05);
    ipc_sampled * factor
}

/// Computes `ψ` from *measured* per-SM bandwidth instead of the paper's
/// CTA-count simplification.
///
/// The paper derives `ψ = B_scaled / B_sampled − 1` (Eq. 3) and then
/// approximates the bandwidth ratio by `CTA_i / CTA_avg` under the
/// assumption that sampling-phase bandwidth is split evenly across SMs. Our
/// DRAM substrate arbitrates demand-proportionally (FR-FCFS), so this
/// implementation evaluates the ratio directly: `B_scaled` is the fair
/// per-SM share the SM would get if every SM ran its configuration
/// (`fair_transactions`), and `B_sampled` is the SM's measured transaction
/// count. The correction matters only when the DRAM was actually contended,
/// so `ψ` is damped by the measured bus-busy fraction.
#[must_use]
pub fn psi_measured(sm_transactions: u64, fair_transactions: f64, dram_busy: f64) -> f64 {
    if sm_transactions == 0 || fair_transactions <= 0.0 {
        return 0.0;
    }
    let ratio = fair_transactions / sm_transactions as f64;
    if ratio < 1.0 {
        // Over-share: if every SM ran this configuration the bus *would*
        // saturate and this SM would be cut to its fair share — no damping.
        ratio - 1.0
    } else {
        // Under-share: the sample was only pessimistic to the extent the
        // bus was actually contended during sampling.
        dram_busy.clamp(0.0, 1.0) * (ratio - 1.0)
    }
}

/// Applies Eq. 3 with an explicit `ψ` (from [`psi`] or [`psi_measured`]).
/// The factor is clamped to `[0.25, 2.5]` so one noisy sample cannot
/// dominate a curve.
#[must_use]
pub fn scale_ipc_with_psi(ipc_sampled: f64, phi_mem: f64, psi: f64) -> f64 {
    let phi = phi_mem.clamp(0.0, 1.0);
    ipc_sampled * (1.0 + phi * psi).clamp(0.25, 2.5)
}

/// The complete measured-bandwidth correction factor.
///
/// * **Over-share** (`sm > fair`): if every SM ran this configuration, the
///   bus would saturate and the SM would be cut to its fair share; by
///   Eq. 2 (`IPC ∝ BW/MPKI`) its IPC scales with the cut directly.
/// * **Under-share**: the sample was pessimistic only to the extent the
///   bus was contended during sampling and the kernel was memory-stalled,
///   so the relief is damped by both `dram_busy` and `φ_mem` (Eq. 3).
///
/// The factor is clamped to `[0.25, 2.5]`.
#[must_use]
pub fn bandwidth_scale_factor(
    sm_transactions: u64,
    fair_transactions: f64,
    dram_busy: f64,
    phi_mem: f64,
) -> f64 {
    if sm_transactions == 0 || fair_transactions <= 0.0 {
        return 1.0;
    }
    let ratio = fair_transactions / sm_transactions as f64;
    let factor = if ratio < 1.0 {
        ratio
    } else {
        1.0 + phi_mem.clamp(0.0, 1.0) * dram_busy.clamp(0.0, 1.0) * (ratio - 1.0)
    };
    factor.clamp(0.25, 2.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn psi_is_zero_at_average() {
        assert!((psi(4, 4.0)).abs() < 1e-12);
        assert!(psi(8, 4.0) > 0.0);
        assert!(psi(1, 4.0) < 0.0);
    }

    #[test]
    fn compute_bound_samples_are_untouched() {
        // phi_mem = 0: no memory stalls -> no correction.
        let ipc = scale_ipc(2.0, 0.0, 8, 4.0);
        assert!((ipc - 2.0).abs() < 1e-12);
    }

    #[test]
    fn memory_bound_over_average_scales_up() {
        // An SM running twice the average CTA count, fully memory bound:
        // factor = 1 + 1.0 * (2 - 1) = 2.
        let ipc = scale_ipc(1.0, 1.0, 8, 4.0);
        assert!((ipc - 2.0).abs() < 1e-12);
    }

    #[test]
    fn memory_bound_under_average_scales_down() {
        // factor = 1 + 0.5 * (0.25 - 1) = 0.625.
        let ipc = scale_ipc(2.0, 0.5, 1, 4.0);
        assert!((ipc - 1.25).abs() < 1e-12);
    }

    #[test]
    fn factor_is_floored_positive() {
        // Extreme inputs cannot flip the sign of IPC.
        let ipc = scale_ipc(1.0, 1.0, 0, 100.0);
        assert!(ipc > 0.0);
    }

    #[test]
    fn phi_is_clamped() {
        let a = scale_ipc(1.0, 5.0, 8, 4.0);
        let b = scale_ipc(1.0, 1.0, 8, 4.0);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_average_panics() {
        let _ = psi(1, 0.0);
    }

    #[test]
    fn measured_psi_scales_down_bandwidth_hogs() {
        // An SM that consumed twice its fair share under a saturated bus.
        let p = psi_measured(200, 100.0, 1.0);
        assert!((p - (-0.5)).abs() < 1e-12);
        // And scales up an underfed one.
        let p = psi_measured(50, 100.0, 1.0);
        assert!((p - 1.0).abs() < 1e-12);
    }

    #[test]
    fn measured_psi_vanishes_without_contention() {
        // Under-share relief is damped away on an idle bus...
        assert_eq!(psi_measured(50, 100.0, 0.0), 0.0);
        assert_eq!(psi_measured(0, 100.0, 1.0), 0.0);
        // ...but the over-share counterfactual cut is not: a hog would
        // saturate the bus if every SM ran like it.
        assert!((psi_measured(200, 100.0, 0.0) - (-0.5)).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_factor_cuts_hogs_fully() {
        // 4x over fair share -> 0.25x IPC regardless of phi.
        let f = bandwidth_scale_factor(400, 100.0, 0.2, 0.1);
        assert!((f - 0.25).abs() < 1e-12);
        let f = bandwidth_scale_factor(200, 100.0, 0.0, 0.0);
        assert!((f - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_factor_relief_is_damped() {
        // 2x under fair share: relief needs both contention and stalls.
        assert!((bandwidth_scale_factor(50, 100.0, 1.0, 1.0) - 2.0).abs() < 1e-12);
        assert!((bandwidth_scale_factor(50, 100.0, 0.5, 1.0) - 1.5).abs() < 1e-12);
        assert!((bandwidth_scale_factor(50, 100.0, 1.0, 0.0) - 1.0).abs() < 1e-12);
        assert_eq!(bandwidth_scale_factor(0, 100.0, 1.0, 1.0), 1.0);
    }

    #[test]
    fn explicit_psi_factor_is_clamped() {
        assert!((scale_ipc_with_psi(1.0, 1.0, 10.0) - 2.5).abs() < 1e-12);
        assert!((scale_ipc_with_psi(1.0, 1.0, -10.0) - 0.25).abs() < 1e-12);
        assert!((scale_ipc_with_psi(2.0, 0.5, 0.5) - 2.5).abs() < 1e-12);
    }
}
