//! The bandwidth-interference IPC scaling factor (Sec. IV-A, Eq. 2-4).
//!
//! During the profiling phase every SM runs a different CTA count, so SMs
//! with more CTAs demand more than their fair share of DRAM bandwidth and
//! their sampled IPC misrepresents what the kernel would achieve at that
//! CTA count in isolation. Following Jog et al.'s observation that
//! `IPC ∝ BW / MPKI` for memory-intensive kernels (Eq. 2), the sampled IPC
//! is corrected by
//!
//! ```text
//! IPC_scaled = IPC_sampled * (1 + φ_mem * ψ),   ψ ≈ CTA_i / CTA_avg - 1
//! ```
//!
//! where `φ_mem` is the fraction of scheduler-cycles lost to long memory
//! latency during the sample (so compute-bound samples are barely touched).

/// Raw Eq. 3 factors below this floor are clamped so a pathological sample
/// can never produce a negative (or zero) scaled IPC. Hitting the floor
/// means the scaling model broke down for that sample — audited variants
/// flag it, and [`scale_ipc`] asserts against it under strict invariants.
pub const MIN_SCALE_FACTOR: f64 = 0.05;

/// Lower edge of the soft clamp applied by the ψ/bandwidth variants so one
/// noisy sample cannot dominate a curve.
pub const FACTOR_CLAMP_MIN: f64 = 0.25;

/// Upper edge of the soft clamp applied by the ψ/bandwidth variants.
pub const FACTOR_CLAMP_MAX: f64 = 2.5;

/// One audited application of an Eq. 3-style scaling factor: the scaled
/// IPC together with the factor used, the raw (pre-clamp) factor, and
/// whether clamping fired. Decision-audit traces record these outcomes so a
/// clamped sample is attributable instead of silently floored.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleOutcome {
    /// The scaled IPC (`ipc_sampled * factor`).
    pub ipc: f64,
    /// The factor actually applied (after any clamping).
    pub factor: f64,
    /// The raw Eq. 3 factor before clamping.
    pub raw_factor: f64,
    /// Whether the raw factor fell outside the clamp range.
    pub clamped: bool,
}

/// Clamps `raw` into `[lo, hi]` and packages the audited outcome.
fn clamp_outcome(ipc_sampled: f64, raw: f64, lo: f64, hi: f64) -> ScaleOutcome {
    let clamped = raw < lo || raw > hi;
    let factor = raw.clamp(lo, hi);
    ScaleOutcome {
        ipc: ipc_sampled * factor,
        factor,
        raw_factor: raw,
        clamped,
    }
}

/// Computes `ψ ≈ CTA_i / CTA_avg − 1` (Eq. 4).
///
/// # Panics
///
/// Panics if `cta_avg` is not positive.
#[must_use]
pub fn psi(cta_i: u32, cta_avg: f64) -> f64 {
    assert!(cta_avg > 0.0, "cta_avg must be positive");
    f64::from(cta_i) / cta_avg - 1.0
}

/// Applies the scaling factor of Eq. 3 to a sampled IPC, reporting whether
/// the [`MIN_SCALE_FACTOR`] floor fired. `phi_mem` is clamped into
/// `[0, 1]`.
///
/// # Panics
///
/// Panics if `cta_avg` is not positive (see [`psi`]).
#[must_use]
pub fn scale_ipc_audited(ipc_sampled: f64, phi_mem: f64, cta_i: u32, cta_avg: f64) -> ScaleOutcome {
    let phi = phi_mem.clamp(0.0, 1.0);
    let raw = 1.0 + phi * psi(cta_i, cta_avg);
    clamp_outcome(ipc_sampled, raw, MIN_SCALE_FACTOR, f64::INFINITY)
}

/// Applies the scaling factor of Eq. 3 to a sampled IPC.
///
/// `phi_mem` is clamped into `[0, 1]`; the resulting factor is floored at
/// [`MIN_SCALE_FACTOR`] so a pathological sample can never produce a
/// negative IPC. Callers that can hit the floor legitimately should use
/// [`scale_ipc_audited`] and inspect [`ScaleOutcome::clamped`] instead.
///
/// # Examples
///
/// ```
/// use warped_slicer::scaling::scale_ipc;
///
/// // A fully memory-bound SM holding twice the average CTA count is
/// // assumed to deserve twice the bandwidth it got during sampling.
/// assert_eq!(scale_ipc(1.0, 1.0, 8, 4.0), 2.0);
/// // A compute-bound sample is untouched.
/// assert_eq!(scale_ipc(2.0, 0.0, 8, 4.0), 2.0);
/// ```
///
/// # Panics
///
/// Panics if `cta_avg` is not positive — and, under strict invariants
/// (`debug_assertions` or the `strict-invariants` feature), if the factor
/// had to be floored: a clamped sample means the scaling model broke down,
/// which this unaudited entry point treats as corruption.
#[must_use]
pub fn scale_ipc(ipc_sampled: f64, phi_mem: f64, cta_i: u32, cta_avg: f64) -> f64 {
    let out = scale_ipc_audited(ipc_sampled, phi_mem, cta_i, cta_avg);
    gpu_sim::strict_assert!(
        !out.clamped,
        "scaling model breakdown: Eq. 3 factor {} for cta_i={cta_i} \
         cta_avg={cta_avg} phi_mem={phi_mem} was floored at {MIN_SCALE_FACTOR}; \
         use scale_ipc_audited to handle clamped samples",
        out.raw_factor
    );
    out.ipc
}

/// Computes `ψ` from *measured* per-SM bandwidth instead of the paper's
/// CTA-count simplification.
///
/// The paper derives `ψ = B_scaled / B_sampled − 1` (Eq. 3) and then
/// approximates the bandwidth ratio by `CTA_i / CTA_avg` under the
/// assumption that sampling-phase bandwidth is split evenly across SMs. Our
/// DRAM substrate arbitrates demand-proportionally (FR-FCFS), so this
/// implementation evaluates the ratio directly: `B_scaled` is the fair
/// per-SM share the SM would get if every SM ran its configuration
/// (`fair_transactions`), and `B_sampled` is the SM's measured transaction
/// count. The correction matters only when the DRAM was actually contended,
/// so `ψ` is damped by the measured bus-busy fraction.
#[must_use]
pub fn psi_measured(sm_transactions: u64, fair_transactions: f64, dram_busy: f64) -> f64 {
    if sm_transactions == 0 || fair_transactions <= 0.0 {
        return 0.0;
    }
    let ratio = fair_transactions / sm_transactions as f64;
    if ratio < 1.0 {
        // Over-share: if every SM ran this configuration the bus *would*
        // saturate and this SM would be cut to its fair share — no damping.
        ratio - 1.0
    } else {
        // Under-share: the sample was only pessimistic to the extent the
        // bus was actually contended during sampling.
        dram_busy.clamp(0.0, 1.0) * (ratio - 1.0)
    }
}

/// Applies Eq. 3 with an explicit `ψ`, reporting whether the
/// `[`[`FACTOR_CLAMP_MIN`]`, `[`FACTOR_CLAMP_MAX`]`]` clamp fired.
#[must_use]
pub fn scale_ipc_with_psi_audited(ipc_sampled: f64, phi_mem: f64, psi: f64) -> ScaleOutcome {
    let phi = phi_mem.clamp(0.0, 1.0);
    clamp_outcome(
        ipc_sampled,
        1.0 + phi * psi,
        FACTOR_CLAMP_MIN,
        FACTOR_CLAMP_MAX,
    )
}

/// Applies Eq. 3 with an explicit `ψ` (from [`psi`] or [`psi_measured`]).
/// The factor is clamped to `[0.25, 2.5]` so one noisy sample cannot
/// dominate a curve.
#[must_use]
pub fn scale_ipc_with_psi(ipc_sampled: f64, phi_mem: f64, psi: f64) -> f64 {
    scale_ipc_with_psi_audited(ipc_sampled, phi_mem, psi).ipc
}

/// The complete measured-bandwidth correction factor.
///
/// * **Over-share** (`sm > fair`): if every SM ran this configuration, the
///   bus would saturate and the SM would be cut to its fair share; by
///   Eq. 2 (`IPC ∝ BW/MPKI`) its IPC scales with the cut directly.
/// * **Under-share**: the sample was pessimistic only to the extent the
///   bus was contended during sampling and the kernel was memory-stalled,
///   so the relief is damped by both `dram_busy` and `φ_mem` (Eq. 3).
///
/// The factor is clamped to `[0.25, 2.5]`.
#[must_use]
pub fn bandwidth_scale_factor(
    sm_transactions: u64,
    fair_transactions: f64,
    dram_busy: f64,
    phi_mem: f64,
) -> f64 {
    bandwidth_scale_factor_audited(1.0, sm_transactions, fair_transactions, dram_busy, phi_mem)
        .factor
}

/// The measured-bandwidth correction applied to a sampled IPC, reporting
/// whether the `[`[`FACTOR_CLAMP_MIN`]`, `[`FACTOR_CLAMP_MAX`]`]` clamp
/// fired (see [`bandwidth_scale_factor`] for the model).
#[must_use]
pub fn bandwidth_scale_factor_audited(
    ipc_sampled: f64,
    sm_transactions: u64,
    fair_transactions: f64,
    dram_busy: f64,
    phi_mem: f64,
) -> ScaleOutcome {
    if sm_transactions == 0 || fair_transactions <= 0.0 {
        return ScaleOutcome {
            ipc: ipc_sampled,
            factor: 1.0,
            raw_factor: 1.0,
            clamped: false,
        };
    }
    let ratio = fair_transactions / sm_transactions as f64;
    let raw = if ratio < 1.0 {
        ratio
    } else {
        1.0 + phi_mem.clamp(0.0, 1.0) * dram_busy.clamp(0.0, 1.0) * (ratio - 1.0)
    };
    clamp_outcome(ipc_sampled, raw, FACTOR_CLAMP_MIN, FACTOR_CLAMP_MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn psi_is_zero_at_average() {
        assert!((psi(4, 4.0)).abs() < 1e-12);
        assert!(psi(8, 4.0) > 0.0);
        assert!(psi(1, 4.0) < 0.0);
    }

    #[test]
    fn compute_bound_samples_are_untouched() {
        // phi_mem = 0: no memory stalls -> no correction.
        let ipc = scale_ipc(2.0, 0.0, 8, 4.0);
        assert!((ipc - 2.0).abs() < 1e-12);
    }

    #[test]
    fn memory_bound_over_average_scales_up() {
        // An SM running twice the average CTA count, fully memory bound:
        // factor = 1 + 1.0 * (2 - 1) = 2.
        let ipc = scale_ipc(1.0, 1.0, 8, 4.0);
        assert!((ipc - 2.0).abs() < 1e-12);
    }

    #[test]
    fn memory_bound_under_average_scales_down() {
        // factor = 1 + 0.5 * (0.25 - 1) = 0.625.
        let ipc = scale_ipc(2.0, 0.5, 1, 4.0);
        assert!((ipc - 1.25).abs() < 1e-12);
    }

    #[test]
    fn factor_is_floored_positive_and_flagged() {
        // Extreme inputs cannot flip the sign of IPC — and the floor is no
        // longer silent: the audited outcome pins the clamped path.
        let out = scale_ipc_audited(1.0, 1.0, 0, 100.0);
        assert!(out.ipc > 0.0);
        assert!(out.clamped, "hitting the floor must be flagged");
        assert!((out.factor - MIN_SCALE_FACTOR).abs() < 1e-12);
        assert!((out.ipc - MIN_SCALE_FACTOR).abs() < 1e-12);
        assert!(out.raw_factor < MIN_SCALE_FACTOR);
        // A healthy sample is not flagged.
        let ok = scale_ipc_audited(1.0, 1.0, 8, 4.0);
        assert!(!ok.clamped);
        assert!((ok.ipc - 2.0).abs() < 1e-12);
        assert!((ok.factor - ok.raw_factor).abs() < 1e-12);
    }

    #[cfg(any(debug_assertions, feature = "strict-invariants"))]
    #[test]
    #[should_panic(expected = "scaling model breakdown")]
    fn unaudited_floor_panics_under_strict_invariants() {
        // The unaudited entry point treats a floored factor as corruption.
        let _ = scale_ipc(1.0, 1.0, 0, 100.0);
    }

    #[test]
    fn psi_and_bandwidth_audits_flag_their_clamps() {
        let out = scale_ipc_with_psi_audited(1.0, 1.0, 10.0);
        assert!(out.clamped);
        assert!((out.factor - FACTOR_CLAMP_MAX).abs() < 1e-12);
        assert!((out.raw_factor - 11.0).abs() < 1e-12);
        assert!(!scale_ipc_with_psi_audited(1.0, 1.0, 0.5).clamped);
        // 8x over fair share: raw 0.125 clamps to 0.25.
        let out = bandwidth_scale_factor_audited(2.0, 800, 100.0, 1.0, 1.0);
        assert!(out.clamped);
        assert!((out.factor - FACTOR_CLAMP_MIN).abs() < 1e-12);
        assert!((out.ipc - 0.5).abs() < 1e-12);
        // Degenerate inputs are an unclamped identity.
        let out = bandwidth_scale_factor_audited(2.0, 0, 100.0, 1.0, 1.0);
        assert!(!out.clamped);
        assert!((out.ipc - 2.0).abs() < 1e-12);
    }

    #[test]
    fn phi_is_clamped() {
        let a = scale_ipc(1.0, 5.0, 8, 4.0);
        let b = scale_ipc(1.0, 1.0, 8, 4.0);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_average_panics() {
        let _ = psi(1, 0.0);
    }

    #[test]
    fn measured_psi_scales_down_bandwidth_hogs() {
        // An SM that consumed twice its fair share under a saturated bus.
        let p = psi_measured(200, 100.0, 1.0);
        assert!((p - (-0.5)).abs() < 1e-12);
        // And scales up an underfed one.
        let p = psi_measured(50, 100.0, 1.0);
        assert!((p - 1.0).abs() < 1e-12);
    }

    #[test]
    fn measured_psi_vanishes_without_contention() {
        // Under-share relief is damped away on an idle bus...
        assert_eq!(psi_measured(50, 100.0, 0.0), 0.0);
        assert_eq!(psi_measured(0, 100.0, 1.0), 0.0);
        // ...but the over-share counterfactual cut is not: a hog would
        // saturate the bus if every SM ran like it.
        assert!((psi_measured(200, 100.0, 0.0) - (-0.5)).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_factor_cuts_hogs_fully() {
        // 4x over fair share -> 0.25x IPC regardless of phi.
        let f = bandwidth_scale_factor(400, 100.0, 0.2, 0.1);
        assert!((f - 0.25).abs() < 1e-12);
        let f = bandwidth_scale_factor(200, 100.0, 0.0, 0.0);
        assert!((f - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_factor_relief_is_damped() {
        // 2x under fair share: relief needs both contention and stalls.
        assert!((bandwidth_scale_factor(50, 100.0, 1.0, 1.0) - 2.0).abs() < 1e-12);
        assert!((bandwidth_scale_factor(50, 100.0, 0.5, 1.0) - 1.5).abs() < 1e-12);
        assert!((bandwidth_scale_factor(50, 100.0, 1.0, 0.0) - 1.0).abs() < 1e-12);
        assert_eq!(bandwidth_scale_factor(0, 100.0, 1.0, 1.0), 1.0);
    }

    #[test]
    fn explicit_psi_factor_is_clamped() {
        assert!((scale_ipc_with_psi(1.0, 1.0, 10.0) - 2.5).abs() < 1e-12);
        assert!((scale_ipc_with_psi(1.0, 1.0, -10.0) - 0.25).abs() < 1e-12);
        assert!((scale_ipc_with_psi(2.0, 0.5, 0.5) - 2.5).abs() < 1e-12);
    }
}
