//! ws-store: a persistent, memoized performance-curve cache.
//!
//! Warped-Slicer re-runs the Fig. 4 profiling phase on every kernel
//! co-arrival, but a sharing service sees the same tenant kernels arrive
//! over and over. The store memoizes the *accepted* performance-vs-CTA
//! curve of each kernel under each GPU configuration: the first arrival
//! pays the prediction-pruned sweep and inserts its curve; repeat arrivals
//! hit the store and go straight to Algorithm 1 water-filling, skipping
//! profiling entirely.
//!
//! ## Key derivation
//!
//! A [`CurveKey`] is the pair of two FNV-1a hashes:
//!
//! * **kernel signature** — over the ws-analyze derived class/archetype tag
//!   (the same global-traffic and dominant-RAW-distance signals the
//!   `class-traffic` / `archetype-raw` consistency rules check) plus the
//!   full [`Features`] fingerprint, so any change to the kernel's static
//!   feature vector yields a different key;
//! * **GPU-config hash** — over the [`GpuConfig`] debug rendering, so the
//!   same kernel profiled on a different machine model never aliases.
//!
//! Keys are derived from static analysis only — no simulated cycle — which
//! is what makes the warm path cheap.
//!
//! ## Invalidation and eviction discipline
//!
//! A [`PhaseMonitor`](crate::phase::PhaseMonitor) trigger means the cached
//! curve no longer describes the kernel's current phase: the controller
//! invalidates exactly the triggered kernel's key, re-profiles, and the new
//! decision replaces the entry. Capacity is bounded; eviction is
//! deterministic LRU-by-insertion-order (the oldest *inserted* entry goes
//! first — re-inserting an existing key refreshes its slot in place without
//! renewing its age), so two runs that perform the same inserts always hold
//! the same entries. Nothing about the store consults wall-clock time or
//! pointer identity.
//!
//! ## Persistence and byte-identity
//!
//! [`CurveStore::to_jsonl`] / [`CurveStore::from_jsonl`] round-trip the
//! store through a versioned JSONL format (`store_meta` header +
//! `store_entry` records) validated by [`crate::tracefmt::validate_jsonl`].
//! Curve points are serialized with Rust's shortest-roundtrip `f64`
//! formatting, which parses back bit-identically — so a warm-hit
//! water-fill decision made from a loaded entry is byte-identical to the
//! cold-path decision made from the freshly measured curve. Under
//! strict-invariants every insert checks that round-trip; non-finite curve
//! points (unrepresentable in JSON) are rejected at insert.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use gpu_sim::{GpuConfig, KernelDesc};
use ws_analyze::{extract_features, knee_of, Features};

use crate::tracefmt::{self, Json};

/// On-disk format version written to (and required from) the
/// `store_meta` header.
pub const STORE_FORMAT_VERSION: u64 = 1;

/// Default bounded capacity of a [`CurveStore`].
pub const DEFAULT_STORE_CAPACITY: usize = 64;

/// FNV-1a 64-bit: deterministic, dependency-free, stable across runs and
/// platforms (unlike `DefaultHasher`, whose keys are randomized).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The ws-analyze-derived (class, archetype) tag for a feature vector,
/// mirroring the signals of the `class-traffic` / `archetype-raw`
/// consistency rules: global traffic separates memory- from compute-class
/// kernels, the dominant RAW dependence distance separates serializing
/// (non-saturating) from ILP-exposing (saturating) compute bodies.
#[must_use]
fn derived_signature(f: &Features) -> (&'static str, &'static str) {
    // Thresholds match ws-analyze's class-traffic rule bounds.
    const MEMORY_MIN_TRAFFIC: f64 = 0.15;
    const COMPUTE_MAX_TRAFFIC: f64 = 0.14;
    let traffic = f.metrics.global_traffic;
    if traffic >= MEMORY_MIN_TRAFFIC {
        ("memory", "memory-saturating")
    } else if traffic <= COMPUTE_MAX_TRAFFIC {
        match f.metrics.dominant_raw_distance {
            Some(d) if d <= 1 => ("compute", "compute-non-saturating"),
            Some(_) => ("compute", "compute-saturating"),
            None => ("compute", "compute-saturating"),
        }
    } else {
        ("mixed", "mixed")
    }
}

/// The store key: (kernel signature, GPU-config hash).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct CurveKey {
    /// FNV-1a over the derived class/archetype tag plus the full
    /// [`Features`] fingerprint.
    pub kernel_sig: u64,
    /// FNV-1a over the [`GpuConfig`] debug rendering.
    pub gpu_sig: u64,
}

/// A derived kernel signature: the [`CurveKey`] plus the human-readable
/// class/archetype tag that went into it (kept for `store inspect`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelSignature {
    /// The store key.
    pub key: CurveKey,
    /// Derived workload class tag (`memory` / `compute` / `mixed`).
    pub class: &'static str,
    /// Derived scaling-archetype tag.
    pub archetype: &'static str,
}

impl KernelSignature {
    /// Derives the signature for `desc` under `cfg` from static analysis
    /// alone. Returns `None` when feature extraction rejects the kernel
    /// pre-flight — such kernels simply never use the store.
    #[must_use]
    pub fn derive(desc: &KernelDesc, cfg: &GpuConfig) -> Option<Self> {
        let features = extract_features(desc, cfg).ok()?;
        Some(Self::from_features(&features, cfg))
    }

    /// Builds the signature from an already-extracted feature vector.
    #[must_use]
    pub fn from_features(features: &Features, cfg: &GpuConfig) -> Self {
        let (class, archetype) = derived_signature(features);
        // Rust's `Debug` for f64 uses shortest-roundtrip formatting, so the
        // fingerprint is a stable, exact rendering of the feature vector.
        let canon = format!("ws-store/v{STORE_FORMAT_VERSION}|{class}|{archetype}|{features:?}");
        Self {
            key: CurveKey {
                kernel_sig: fnv1a64(canon.as_bytes()),
                gpu_sig: fnv1a64(format!("{cfg:?}").as_bytes()),
            },
            class,
            archetype,
        }
    }
}

/// One memoized performance curve.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreEntry {
    /// Derived workload class tag at insert time.
    pub class: String,
    /// Derived scaling-archetype tag at insert time.
    pub archetype: String,
    /// `perf[j]` = accepted performance of the kernel with `j + 1` CTAs.
    pub perf: Vec<f64>,
    /// The curve's knee (smallest CTA count within tolerance of the peak).
    pub knee: u32,
}

impl StoreEntry {
    /// Builds an entry from a measured curve, deriving the knee and
    /// carrying the signature's class/archetype tag.
    #[must_use]
    pub fn measured(sig: &KernelSignature, perf: Vec<f64>) -> Self {
        let knee = knee_of(&perf);
        Self {
            class: sig.class.to_string(),
            archetype: sig.archetype.to_string(),
            perf,
            knee,
        }
    }
}

/// Lifetime counters of one [`CurveStore`] (in-memory only; not persisted).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Inserts that created a new entry.
    pub insertions: u64,
    /// Inserts that replaced an existing entry in place.
    pub replacements: u64,
    /// Entries removed by [`CurveStore::invalidate`].
    pub invalidations: u64,
    /// Entries removed by capacity eviction.
    pub evictions: u64,
}

/// The bounded, deterministic performance-curve cache.
#[derive(Debug, Clone, PartialEq)]
pub struct CurveStore {
    capacity: usize,
    /// Key-ordered entries (`BTreeMap` so iteration is deterministic).
    entries: BTreeMap<CurveKey, StoreEntry>,
    /// Keys in insertion order; the front is the eviction candidate.
    order: Vec<CurveKey>,
    stats: StoreStats,
}

impl Default for CurveStore {
    fn default() -> Self {
        Self::new(DEFAULT_STORE_CAPACITY)
    }
}

/// Whether every curve point survives the JSONL round-trip bit-exactly:
/// finite, and shortest-roundtrip formatting parses back to the same bits.
fn roundtrip_exact(perf: &[f64]) -> bool {
    // `f64::from_str` (not `str::parse`) keeps the accounting call graph
    // free of a false edge into the trace parser's identically-named
    // `parse` method.
    use std::str::FromStr;
    perf.iter().all(|&v| {
        v.is_finite() && f64::from_str(&format!("{v}")).is_ok_and(|p| p.to_bits() == v.to_bits())
    })
}

impl CurveStore {
    /// Creates an empty store holding at most `capacity` entries
    /// (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            entries: BTreeMap::new(),
            order: Vec::new(),
            stats: StoreStats::default(),
        }
    }

    /// The bounded capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of memoized entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime counters.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Looks up a key, counting the hit or miss.
    pub fn lookup(&mut self, key: &CurveKey) -> Option<&StoreEntry> {
        match self.entries.get(key) {
            Some(e) => {
                self.stats.hits = self.stats.hits.saturating_add(1);
                Some(e)
            }
            None => {
                self.stats.misses = self.stats.misses.saturating_add(1);
                None
            }
        }
    }

    /// Looks up a key without touching the hit/miss counters (diagnostics,
    /// `store inspect`).
    #[must_use]
    pub fn peek(&self, key: &CurveKey) -> Option<&StoreEntry> {
        self.entries.get(key)
    }

    /// Inserts (or replaces) an entry, evicting the oldest-inserted entries
    /// while over capacity. Replacing an existing key refreshes the entry
    /// in place without renewing its insertion age. Returns `false` —
    /// leaving the store untouched — when a curve point would not survive
    /// the JSONL round-trip bit-exactly (non-finite values); under
    /// strict-invariants that is a panic, because caching a curve that
    /// cannot be persisted exactly would break the warm-path byte-identity
    /// contract.
    pub fn insert(&mut self, key: CurveKey, entry: StoreEntry) -> bool {
        let exact = roundtrip_exact(&entry.perf);
        gpu_sim::strict_assert!(
            exact,
            "store entry for {key:?} has curve points that do not round-trip \
             through JSONL bit-exactly"
        );
        if !exact {
            return false;
        }
        if self.entries.insert(key, entry).is_some() {
            self.stats.replacements = self.stats.replacements.saturating_add(1);
        } else {
            self.stats.insertions = self.stats.insertions.saturating_add(1);
            self.order.push(key);
        }
        while self.entries.len() > self.capacity {
            if self.evict_oldest().is_none() {
                break;
            }
        }
        true
    }

    /// Evicts the oldest-inserted entry, returning its key.
    pub fn evict_oldest(&mut self) -> Option<CurveKey> {
        // Insertion-order bookkeeping invariant: `order` and `entries`
        // always hold the same key set.
        gpu_sim::strict_assert!(
            self.order.len() == self.entries.len(),
            "store order/entry bookkeeping diverged"
        );
        if self.order.is_empty() {
            return None;
        }
        let key = self.order.remove(0);
        if self.entries.remove(&key).is_some() {
            self.stats.evictions = self.stats.evictions.saturating_add(1);
            Some(key)
        } else {
            None
        }
    }

    /// Removes exactly `key` (a phase-monitor trigger: the cached curve no
    /// longer describes the kernel). Returns whether an entry was removed.
    pub fn invalidate(&mut self, key: &CurveKey) -> bool {
        if self.entries.remove(key).is_none() {
            return false;
        }
        self.order.retain(|k| k != key);
        self.stats.invalidations = self.stats.invalidations.saturating_add(1);
        true
    }

    /// Entries in insertion order (oldest first), the order `to_jsonl`
    /// persists and `from_jsonl` restores.
    pub fn entries_in_insertion_order(&self) -> impl Iterator<Item = (&CurveKey, &StoreEntry)> {
        self.order
            .iter()
            .filter_map(|k| self.entries.get(k).map(|e| (k, e)))
    }

    /// Serializes the store as versioned JSONL: one `store_meta` header
    /// followed by one `store_entry` record per entry in insertion order.
    /// The output is schema-valid under
    /// [`crate::tracefmt::validate_jsonl`].
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"type\":\"store_meta\",\"version\":{STORE_FORMAT_VERSION},\
             \"capacity\":{},\"entries\":{}}}\n",
            self.capacity,
            self.entries.len(),
        ));
        for (key, e) in self.entries_in_insertion_order() {
            let perf: Vec<String> = e.perf.iter().map(|v| format!("{v}")).collect();
            out.push_str(&format!(
                "{{\"type\":\"store_entry\",\"kernel_sig\":\"{:016x}\",\
                 \"gpu_sig\":\"{:016x}\",\"class\":\"{}\",\"archetype\":\"{}\",\
                 \"perf\":[{}],\"knee\":{}}}\n",
                key.kernel_sig,
                key.gpu_sig,
                tracefmt::esc(&e.class),
                tracefmt::esc(&e.archetype),
                perf.join(","),
                e.knee,
            ));
        }
        out
    }

    /// Loads a store from its JSONL serialization, restoring entries in
    /// file order (which is insertion order, so eviction behavior survives
    /// the round-trip).
    ///
    /// # Errors
    ///
    /// Returns a message naming the first offending line: syntax errors,
    /// a missing or wrong-version `store_meta` header, or malformed
    /// entries.
    pub fn from_jsonl(text: &str) -> Result<Self, String> {
        let mut lines = text
            .lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty());
        let Some((idx, header)) = lines.next() else {
            return Err("empty store file (missing store_meta header)".to_string());
        };
        let meta = tracefmt::parse_line(header).map_err(|e| format!("line {}: {e}", idx + 1))?;
        if meta.get("type").and_then(Json::as_str) != Some("store_meta") {
            return Err(format!("line {}: first record must be store_meta", idx + 1));
        }
        let version = meta
            .get("version")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("line {}: store_meta.version missing", idx + 1))?;
        if version != STORE_FORMAT_VERSION {
            return Err(format!(
                "unsupported store format version {version} (expected {STORE_FORMAT_VERSION})"
            ));
        }
        let capacity = meta
            .get("capacity")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("line {}: store_meta.capacity missing", idx + 1))?;
        let mut store = Self::new(usize::try_from(capacity).unwrap_or(usize::MAX));
        for (idx, line) in lines {
            let line_no = idx + 1;
            let v = tracefmt::parse_line(line).map_err(|e| format!("line {line_no}: {e}"))?;
            if v.get("type").and_then(Json::as_str) != Some("store_entry") {
                return Err(format!("line {line_no}: expected a store_entry record"));
            }
            let sig = |field: &str| -> Result<u64, String> {
                let s = v
                    .get(field)
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("line {line_no}: {field} missing"))?;
                u64::from_str_radix(s, 16)
                    .map_err(|_| format!("line {line_no}: {field} is not a hex hash"))
            };
            let key = CurveKey {
                kernel_sig: sig("kernel_sig")?,
                gpu_sig: sig("gpu_sig")?,
            };
            let text_field = |field: &str| -> Result<String, String> {
                v.get(field)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("line {line_no}: {field} missing"))
            };
            let perf: Vec<f64> = v
                .get("perf")
                .and_then(Json::as_array)
                .ok_or_else(|| format!("line {line_no}: perf missing"))?
                .iter()
                .map(|j| {
                    j.as_f64()
                        .ok_or_else(|| format!("line {line_no}: non-numeric perf point"))
                })
                .collect::<Result<_, _>>()?;
            let knee = v
                .get("knee")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("line {line_no}: knee missing"))?;
            let entry = StoreEntry {
                class: text_field("class")?,
                archetype: text_field("archetype")?,
                perf,
                knee: u32::try_from(knee).unwrap_or(u32::MAX),
            };
            if !store.insert(key, entry) {
                return Err(format!(
                    "line {line_no}: curve points do not round-trip bit-exactly"
                ));
            }
        }
        // Loading is bookkeeping, not cache traffic: the inserts above must
        // not pollute the lifetime counters.
        store.stats = StoreStats::default();
        Ok(store)
    }
}

/// A cloneable handle to one shared [`CurveStore`], attachable to
/// [`WarpedSlicerConfig`](crate::policy::WarpedSlicerConfig). Equality is
/// handle identity (two clones of one handle are equal; two stores with
/// identical contents are not), matching the policy-config semantics of
/// "these controllers share one store".
#[derive(Debug, Clone)]
pub struct SharedCurveStore(Arc<Mutex<CurveStore>>);

impl PartialEq for SharedCurveStore {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl Default for SharedCurveStore {
    fn default() -> Self {
        Self::new(CurveStore::default())
    }
}

impl SharedCurveStore {
    /// Wraps a store in a shareable handle.
    #[must_use]
    pub fn new(store: CurveStore) -> Self {
        Self(Arc::new(Mutex::new(store)))
    }

    /// Creates a handle to an empty store with the given capacity.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self::new(CurveStore::new(capacity))
    }

    /// Runs `f` with exclusive access to the store. A poisoned lock (a
    /// panicked co-user) is recovered: the store's state is plain data and
    /// every mutation leaves it consistent.
    pub fn with<R>(&self, f: impl FnOnce(&mut CurveStore) -> R) -> R {
        match self.0.lock() {
            Ok(mut guard) => f(&mut guard),
            Err(poisoned) => f(&mut poisoned.into_inner()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::GpuConfig;
    use ws_workloads::by_abbrev;

    fn key(n: u64) -> CurveKey {
        CurveKey {
            kernel_sig: n,
            gpu_sig: 7,
        }
    }

    fn entry(v: f64) -> StoreEntry {
        StoreEntry {
            class: "compute".to_string(),
            archetype: "compute-saturating".to_string(),
            perf: vec![v, v * 2.0, v * 3.0],
            knee: 3,
        }
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned reference value: the empty-input FNV-1a offset basis.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
    }

    #[test]
    fn derive_is_deterministic_and_config_sensitive() {
        let cfg = GpuConfig::isca_baseline();
        let desc = &by_abbrev("IMG").unwrap().desc;
        let a = KernelSignature::derive(desc, &cfg).expect("IMG passes pre-flight");
        let b = KernelSignature::derive(desc, &cfg).expect("second derivation");
        assert_eq!(a, b, "same kernel + config -> same key");
        let large = KernelSignature::derive(desc, &GpuConfig::large()).expect("large config");
        assert_ne!(a.key.gpu_sig, large.key.gpu_sig, "config hash differs");
        let other = KernelSignature::derive(&by_abbrev("NN").unwrap().desc, &cfg).expect("NN");
        assert_ne!(a.key.kernel_sig, other.key.kernel_sig, "kernels differ");
    }

    #[test]
    fn signature_tags_follow_the_consistency_rule_signals() {
        let cfg = GpuConfig::isca_baseline();
        for b in ws_workloads::suite() {
            let sig = KernelSignature::derive(&b.desc, &cfg).expect("suite passes pre-flight");
            assert!(
                ["memory", "compute", "mixed"].contains(&sig.class),
                "{}",
                sig.class
            );
        }
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let mut s = CurveStore::new(4);
        assert!(s.lookup(&key(1)).is_none());
        assert!(s.insert(key(1), entry(1.0)));
        assert!(s.lookup(&key(1)).is_some());
        let st = s.stats();
        assert_eq!((st.hits, st.misses, st.insertions), (1, 1, 1));
    }

    #[test]
    fn eviction_is_oldest_insertion_first_and_replacement_keeps_age() {
        let mut s = CurveStore::new(2);
        s.insert(key(1), entry(1.0));
        s.insert(key(2), entry(2.0));
        // Replacing key 1 must not renew its age.
        s.insert(key(1), entry(9.0));
        s.insert(key(3), entry(3.0));
        assert_eq!(s.len(), 2);
        assert!(s.peek(&key(1)).is_none(), "oldest-inserted evicted");
        assert!(s.peek(&key(2)).is_some());
        assert!(s.peek(&key(3)).is_some());
        let st = s.stats();
        assert_eq!((st.evictions, st.replacements), (1, 1));
    }

    #[test]
    fn invalidate_removes_exactly_the_key() {
        let mut s = CurveStore::new(4);
        s.insert(key(1), entry(1.0));
        s.insert(key(2), entry(2.0));
        assert!(s.invalidate(&key(1)));
        assert!(!s.invalidate(&key(1)), "already gone");
        assert!(s.peek(&key(1)).is_none());
        assert!(s.peek(&key(2)).is_some(), "other keys untouched");
        assert_eq!(s.stats().invalidations, 1);
    }

    #[test]
    fn jsonl_round_trip_is_exact_and_schema_valid() {
        let mut s = CurveStore::new(8);
        s.insert(key(0xdead_beef), entry(0.1));
        s.insert(
            key(2),
            StoreEntry {
                class: "memory".to_string(),
                archetype: "memory-saturating".to_string(),
                perf: vec![1.0 / 3.0, 2.0 / 7.0, f64::MIN_POSITIVE],
                knee: 1,
            },
        );
        let text = s.to_jsonl();
        crate::tracefmt::validate_jsonl(&text).expect("schema-valid store file");
        let loaded = CurveStore::from_jsonl(&text).expect("loads");
        assert_eq!(loaded.capacity(), 8);
        assert_eq!(loaded.len(), 2);
        for (k, e) in s.entries_in_insertion_order() {
            let l = loaded.peek(k).expect("entry survives");
            assert_eq!(l.class, e.class);
            assert_eq!(l.knee, e.knee);
            let bits: Vec<u64> = e.perf.iter().map(|v| v.to_bits()).collect();
            let lbits: Vec<u64> = l.perf.iter().map(|v| v.to_bits()).collect();
            assert_eq!(bits, lbits, "curve bits survive the round-trip");
        }
        // Insertion order (eviction order) also survives.
        let orig: Vec<CurveKey> = s.entries_in_insertion_order().map(|(k, _)| *k).collect();
        let got: Vec<CurveKey> = loaded
            .entries_in_insertion_order()
            .map(|(k, _)| *k)
            .collect();
        assert_eq!(orig, got);
    }

    #[test]
    fn malformed_store_files_are_rejected() {
        assert!(CurveStore::from_jsonl("").is_err(), "empty");
        assert!(
            CurveStore::from_jsonl("{\"type\":\"store_entry\"}").is_err(),
            "missing header"
        );
        let wrong_version = "{\"type\":\"store_meta\",\"version\":99,\"capacity\":4,\"entries\":0}";
        assert!(CurveStore::from_jsonl(wrong_version)
            .unwrap_err()
            .contains("version"));
        let bad_entry = "{\"type\":\"store_meta\",\"version\":1,\"capacity\":4,\"entries\":1}\n\
                         {\"type\":\"store_entry\",\"kernel_sig\":\"zz\",\"gpu_sig\":\"0\",\
                          \"class\":\"c\",\"archetype\":\"a\",\"perf\":[1.0],\"knee\":1}";
        assert!(CurveStore::from_jsonl(bad_entry)
            .unwrap_err()
            .contains("hex"));
    }

    #[test]
    #[should_panic(expected = "round-trip")]
    fn non_finite_curves_are_rejected_at_insert() {
        let mut s = CurveStore::new(4);
        let mut e = entry(1.0);
        e.perf.push(f64::NAN);
        let _ = s.insert(key(1), e);
    }

    #[test]
    fn shared_handle_equality_is_identity() {
        let a = SharedCurveStore::with_capacity(4);
        let b = a.clone();
        let c = SharedCurveStore::with_capacity(4);
        assert_eq!(a, b);
        assert_ne!(a, c);
        a.with(|s| {
            s.insert(key(1), entry(1.0));
        });
        assert_eq!(b.with(|s| s.len()), 1, "clones share one store");
    }
}
