//! Prediction-driven pruning of the Fig. 3 profiling sweep.
//!
//! The full Fig. 3 sweep samples every CTA count `1..=N` per kernel. The
//! `ws-predict` static analyzer ([`ws_analyze::predict_kernel`]) predicts
//! each kernel's performance knee without simulating a cycle, which lets
//! the profiler concentrate its samples in a ±1 window around the
//! predicted knee and skip most of the tail.
//!
//! ## The sweep-pruning contract
//!
//! Water-filling consumes curves through `staircase`, which normalizes by
//! the curve's peak and keeps only *strictly increasing* prefix steps. A
//! pruned curve therefore yields **bit-identical quotas** to the full
//! sweep iff no unsampled point exceeds the maximum of the sampled prefix.
//! Statically that cannot be guaranteed — predictions err — so pruning is
//! *checked, never trusted*: every pruned sweep samples a guard point at
//! the feasibility bound `N` (plus a midpoint when the skipped gap is
//! wide), and [`accept_pruned`] only accepts when
//!
//! 1. every guard sample is at or below the sampled prefix maximum, and
//! 2. the curve is non-rising at the window's right edge
//!    (`curve[hi] <= curve[hi-1]`), i.e. the knee is visibly behind us.
//!
//! When either check fails the kernel falls back to the full sweep
//! (a second batch round in [`profile_curves_planned`]); the escape hatch
//! `WS_PREDICT=0` disables pruning globally. Accepted gaps are filled by
//! linear interpolation between sampled points — interpolated values are
//! bounded by their sampled endpoints, so they can never introduce a new
//! staircase step, which is what makes the accepted-pruned curve
//! water-fill-equivalent to the full sweep.

use std::sync::OnceLock;

use crate::profiler::interpolate_counts;
use crate::runner::{RunConfig, SimJob, SimStream};
use gpu_sim::{GpuConfig, KernelDesc};
use ws_analyze::predict_kernel;

/// Whether prediction-driven sweep pruning is enabled by default, read
/// once from the `WS_PREDICT` environment variable. On unless the
/// variable is set to `0`, `false`, or `off` — the escape hatch for
/// comparing against the unpruned Fig. 3 sweep.
#[must_use]
pub fn predict_default() -> bool {
    static DEFAULT: OnceLock<bool> = OnceLock::new();
    *DEFAULT.get_or_init(|| match std::env::var("WS_PREDICT") {
        Ok(v) => !matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "0" | "false" | "off"
        ),
        Err(_) => true,
    })
}

/// One kernel's profiling window over the CTA axis: sample CTA counts
/// `lo..=hi` densely, guard the skipped tail, interpolate the rest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepWindow {
    /// First CTA count of the dense window (>= 1).
    pub lo: u32,
    /// Last CTA count of the dense window (`lo <= hi <= max`).
    pub hi: u32,
    /// The kernel's Eq. 1 feasibility bound `N` (curve length).
    pub max: u32,
}

impl SweepWindow {
    /// The unpruned window: sample every count `1..=max`.
    #[must_use]
    pub fn full(max: u32) -> Self {
        let max = max.max(1);
        Self {
            lo: 1,
            hi: max,
            max,
        }
    }

    /// A ±1 window around a predicted knee, clamped to `[1, max]`. The
    /// dense prefix always starts at 1 (water-filling needs the ramp up to
    /// the knee); `hi` is where dense sampling stops.
    #[must_use]
    pub fn around_knee(knee: u32, max: u32) -> Self {
        let max = max.max(1);
        Self {
            lo: 1,
            hi: knee.saturating_add(1).clamp(1, max),
            max,
        }
    }

    /// Whether this window samples the whole curve.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.lo <= 1 && self.hi >= self.max
    }

    /// The single most informative CTA count when only one sample can be
    /// taken: the predicted knee for a pruned window (the dense edge `hi`
    /// backs off the `+1` guard [`SweepWindow::around_knee`] added), the
    /// feasibility bound for a full window. One-SM profiling groups probe
    /// this count — a knee sample anchors the curve's ramp, where the
    /// guard-bound sample alone would flatline it.
    #[must_use]
    pub fn knee_cap(&self) -> u32 {
        if self.is_full() {
            self.max.max(1)
        } else {
            self.hi.saturating_sub(1).max(self.lo).max(1)
        }
    }

    /// The CTA counts a pruned offline sweep actually simulates: the dense
    /// prefix `lo..=hi`, a guard at `max`, and a midpoint guard when the
    /// skipped gap spans more than two counts. Sorted, deduplicated.
    #[must_use]
    pub fn planned_caps(&self) -> Vec<u32> {
        let mut caps: Vec<u32> = (self.lo.max(1)..=self.hi.min(self.max)).collect();
        if self.hi < self.max {
            let gap = self.max - self.hi;
            if gap > 2 {
                caps.push(self.hi + gap / 2);
            }
            caps.push(self.max);
        }
        caps.dedup();
        caps
    }
}

/// A per-kernel set of [`SweepWindow`]s for one profiling sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepPlan {
    /// One window per kernel, in kernel order.
    pub windows: Vec<SweepWindow>,
}

impl SweepPlan {
    /// The unpruned plan: full windows for every kernel.
    #[must_use]
    pub fn full(max_ctas: &[u32]) -> Self {
        Self {
            windows: max_ctas.iter().map(|&m| SweepWindow::full(m)).collect(),
        }
    }

    /// Builds a pruned plan from `ws-predict` static predictions: each
    /// kernel gets a ±1 window around its predicted knee. A kernel whose
    /// prediction fails (pre-flight rejection) falls back to its full
    /// window — pruning is an optimization, never a gate.
    #[must_use]
    pub fn from_predictions(descs: &[&KernelDesc], max_ctas: &[u32], cfg: &GpuConfig) -> Self {
        let windows = descs
            .iter()
            .zip(max_ctas)
            .map(|(desc, &max)| match predict_kernel(desc, cfg) {
                Ok(curve) => SweepWindow::around_knee(curve.knee, max),
                Err(_) => SweepWindow::full(max),
            })
            .collect();
        Self { windows }
    }

    /// Total simulation samples this plan schedules (first round).
    #[must_use]
    pub fn planned_samples(&self) -> usize {
        self.windows.iter().map(|w| w.planned_caps().len()).sum()
    }

    /// Samples the full (unpruned) sweep would schedule.
    #[must_use]
    pub fn full_samples(&self) -> usize {
        self.windows.iter().map(|w| w.max.max(1) as usize).sum()
    }

    /// Samples the plan avoids relative to the full sweep (before any
    /// fall-back rounds).
    #[must_use]
    pub fn samples_saved(&self) -> usize {
        self.full_samples().saturating_sub(self.planned_samples())
    }
}

/// Applies the sweep-pruning acceptance check to one kernel's sampled
/// points (`(cta_count, ipc)` pairs covering [`SweepWindow::planned_caps`])
/// and, on acceptance, synthesizes the full-length curve by linear
/// interpolation over the unsampled gap.
///
/// Returns `None` when the guards reject pruning — the sampled evidence is
/// consistent with the curve still rising past the window, so the caller
/// must sample the remaining counts to preserve water-fill equivalence.
#[must_use]
pub fn accept_pruned(samples: &[(u32, f64)], window: &SweepWindow) -> Option<Vec<f64>> {
    let n = window.max.max(1) as usize;
    let value_at =
        |cap: u32| -> Option<f64> { samples.iter().find(|(c, _)| *c == cap).map(|(_, v)| *v) };
    if window.is_full() {
        // Nothing was skipped: the samples *are* the curve.
        let curve: Option<Vec<f64>> = (1..=window.max).map(value_at).collect();
        return curve;
    }
    let prefix: Vec<f64> = (window.lo..=window.hi).map_while(value_at).collect();
    if prefix.len() != (window.hi - window.lo + 1) as usize || prefix.len() < 2 {
        return None;
    }
    let prefix_max = prefix.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    // Guard 1: the curve must be non-rising at the window's right edge.
    let mut tail = prefix.iter().rev();
    let (last, before) = (tail.next()?, tail.next()?);
    if last > before {
        return None;
    }
    // Guard 2: every sampled point beyond the window stays at or below the
    // sampled prefix maximum (otherwise an unsampled point may form a new
    // staircase step and change the water-fill).
    let guards: Vec<(u32, f64)> = samples
        .iter()
        .copied()
        .filter(|(c, _)| *c > window.hi)
        .collect();
    if guards.is_empty() || guards.iter().any(|(_, v)| *v > prefix_max) {
        return None;
    }
    // Accepted: interpolate the gap between the window edge and the guards.
    let mut sums = vec![0.0f64; n];
    let mut counts = vec![0u32; n];
    for &(cap, v) in samples {
        if (1..=window.max).contains(&cap) {
            let j = (cap - 1) as usize;
            if let (Some(s), Some(c)) = (sums.get_mut(j), counts.get_mut(j)) {
                *s += v;
                *c += 1;
            }
        }
    }
    Some(interpolate_counts(&sums, &counts))
}

/// Result of a planned (possibly pruned) offline sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedSweep {
    /// Full-length per-kernel curves, same shape as
    /// [`crate::profiler::profile_curves`]: `curves[i][j]` = IPC of kernel
    /// `i` at `j + 1` CTAs (sampled or interpolated).
    pub curves: Vec<Vec<f64>>,
    /// Whether kernel `i`'s pruned window was accepted (`true`) or fell
    /// back to the full sweep (`false`).
    pub pruned: Vec<bool>,
    /// Simulation samples actually run, across both rounds.
    pub samples_run: usize,
}

/// Per-kernel bookkeeping for the pipelined sweep drain loop.
#[derive(Debug, Default, Clone)]
struct KernelProgress {
    /// Samples collected so far, `(cta_count, ipc)`.
    samples: Vec<(u32, f64)>,
    /// Outstanding jobs of the kernel's current round.
    pending: usize,
    /// Whether the full-sweep fallback round has been submitted.
    fallback: bool,
    /// The finished full-length curve, once decided.
    curve: Option<Vec<f64>>,
    /// Whether the pruned window was accepted.
    pruned: bool,
}

impl KernelProgress {
    /// Finalizes a fully sampled kernel: sort by CTA count, strip counts.
    fn finalize_full(&mut self) {
        let mut full = self.samples.clone();
        full.sort_by_key(|&(c, _)| c);
        self.curve = Some(full.iter().map(|&(_, v)| v).collect());
    }

    /// Accounts one delivered (kernel, cap) result against the current
    /// round; returns whether that delivery completed the round. A
    /// delivery with nothing outstanding is a double-delivery of some
    /// (kernel, cap) result — a checked invariant, because a saturating
    /// decrement would report it as a *spurious round completion* and
    /// re-run acceptance (or re-submit a fallback) on a half-sampled
    /// round. In release builds the duplicate is dropped instead.
    fn deliver(&mut self) -> bool {
        if self.pending == 0 {
            gpu_sim::strict_assert!(
                false,
                "duplicate delivery: sweep result arrived with no round outstanding"
            );
            return false;
        }
        self.pending -= 1;
        self.pending == 0
    }
}

/// The planned analogue of [`crate::profiler::profile_curves`]: samples
/// each kernel's [`SweepWindow::planned_caps`], applies [`accept_pruned`]
/// per kernel, and samples the remaining CTA counts of every kernel whose
/// pruning was rejected. Accepted kernels get interpolated full-length
/// curves; rejected kernels get fully sampled ones — either way
/// `curves[i]` has length `max(1, windows[i].max)`.
///
/// The sweep is **pipelined**, not staged: all planned samples go into one
/// [`SimStream`], acceptance for a kernel runs on the drain thread the
/// moment its last window sample finishes, and a rejected kernel's
/// full-sweep fallback jobs are re-submitted into the same stream
/// immediately — no global barrier between the rounds, so kernel A's
/// fallback simulates while kernel B's first-round windows are still in
/// flight. The result is byte-identical to draining each round as a
/// barriered batch: samples are keyed by `(kernel, cta_count)` and the
/// acceptance check is order-insensitive.
///
/// # Panics
///
/// Panics if `descs` and `plan.windows` lengths differ, and re-raises the
/// lowest-submission-index job panic after the stream drains.
#[must_use]
pub fn profile_curves_planned(
    pool: &ws_exec::Pool,
    descs: &[&KernelDesc],
    plan: &SweepPlan,
    window: u64,
    cfg: &RunConfig,
) -> PlannedSweep {
    assert_eq!(
        descs.len(),
        plan.windows.len(),
        "one sweep window per kernel"
    );
    let mut stream = SimStream::new(pool);
    // tags[job id] = (kernel index, cta cap) — stream ids are sequential.
    let mut tags: Vec<(usize, u32)> = Vec::new();
    let mut kernels: Vec<KernelProgress> = vec![KernelProgress::default(); descs.len()];
    for ((i, desc), w) in descs.iter().enumerate().zip(&plan.windows) {
        let caps = w.planned_caps();
        if let Some(k) = kernels.get_mut(i) {
            k.pending = caps.len();
        }
        for &cap in &caps {
            tags.push((i, cap));
            stream.submit_job(&SimJob::cta_cap(desc, cap, window, cfg));
        }
    }
    let mut samples_run = tags.len();
    let mut first_panic: Option<ws_exec::JobPanic> = None;

    while let Some((id, result)) = stream.next() {
        let Some(&(i, cap)) = tags.get(id.0) else {
            continue;
        };
        match result {
            Ok(out) => {
                if let Some(k) = kernels.get_mut(i) {
                    k.samples.push((cap, out.measured_ipc()));
                }
            }
            Err(p) => {
                if first_panic.as_ref().is_none_or(|q| p.id < q.id) {
                    first_panic = Some(p);
                }
            }
        }
        let round_done = kernels.get_mut(i).is_some_and(KernelProgress::deliver);
        if !round_done {
            continue;
        }
        let (Some(k), Some(w), Some(desc)) =
            (kernels.get_mut(i), plan.windows.get(i), descs.get(i))
        else {
            continue;
        };
        if k.fallback {
            // The fallback round just finished: the kernel is fully
            // sampled.
            k.finalize_full();
            continue;
        }
        let mut sorted = k.samples.clone();
        sorted.sort_by_key(|&(c, _)| c);
        match accept_pruned(&sorted, w) {
            Some(curve) => {
                k.pruned = !w.is_full();
                k.curve = Some(curve);
            }
            None => {
                // Rejected: re-submit the missing counts into the same
                // stream, right now — other kernels' windows keep
                // simulating underneath this drain loop.
                k.fallback = true;
                let have: Vec<u32> = sorted.iter().map(|&(c, _)| c).collect();
                let mut missing = 0usize;
                for cap in 1..=w.max.max(1) {
                    if !have.contains(&cap) {
                        tags.push((i, cap));
                        stream.submit_job(&SimJob::cta_cap(desc, cap, window, cfg));
                        missing += 1;
                    }
                }
                samples_run += missing;
                if let Some(k) = kernels.get_mut(i) {
                    k.pending = missing;
                    if missing == 0 {
                        // Every count was already sampled (a window whose
                        // guards rejected but whose caps covered 1..=max).
                        k.finalize_full();
                    }
                }
            }
        }
    }
    if let Some(p) = first_panic {
        panic!("{p}");
    }

    PlannedSweep {
        curves: kernels
            .iter()
            .map(|k| k.curve.clone().unwrap_or_default())
            .collect(),
        pruned: kernels.iter().map(|k| k.pruned).collect(),
        samples_run,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::ResourceVec;
    use crate::waterfill::{water_fill, KernelCurve};

    fn window(knee: u32, max: u32) -> SweepWindow {
        SweepWindow::around_knee(knee, max)
    }

    fn samples_for(curve: &[f64], w: &SweepWindow) -> Vec<(u32, f64)> {
        w.planned_caps()
            .iter()
            .map(|&cap| (cap, curve.get((cap - 1) as usize).copied().unwrap_or(0.0)))
            .collect()
    }

    #[test]
    fn full_window_covers_everything_and_saves_nothing() {
        let w = SweepWindow::full(8);
        assert!(w.is_full());
        assert_eq!(w.planned_caps(), (1..=8).collect::<Vec<_>>());
        let plan = SweepPlan::full(&[8, 6]);
        assert_eq!(plan.samples_saved(), 0);
    }

    #[test]
    fn knee_window_samples_prefix_guard_and_midpoint() {
        let w = window(2, 8);
        assert_eq!(
            w,
            SweepWindow {
                lo: 1,
                hi: 3,
                max: 8
            }
        );
        // Dense prefix 1..=3, midpoint (3 + 5/2 = 5), guard at 8.
        assert_eq!(w.planned_caps(), vec![1, 2, 3, 5, 8]);
        let plan = SweepPlan {
            windows: vec![w, SweepWindow::full(6)],
        };
        assert_eq!(plan.planned_samples(), 5 + 6);
        assert_eq!(plan.full_samples(), 8 + 6);
        assert_eq!(plan.samples_saved(), 3);
    }

    #[test]
    fn knee_near_max_degenerates_to_full() {
        let w = window(7, 8);
        assert!(w.is_full());
        assert_eq!(w.planned_caps().len(), 8);
    }

    #[test]
    fn declining_tail_is_accepted_and_interpolated() {
        // A cache-sensitive shape: peak at 2, declining tail.
        let full = [0.8, 1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4];
        let w = window(2, 8);
        let curve = accept_pruned(&samples_for(&full, &w), &w).expect("accepted");
        assert_eq!(curve.len(), 8);
        // Sampled points are exact.
        for &cap in &[1usize, 2, 3, 5, 8] {
            assert!((curve[cap - 1] - full[cap - 1]).abs() < 1e-12, "{curve:?}");
        }
        // Interpolated points never exceed the sampled prefix max.
        let prefix_max = 1.0;
        assert!(curve.iter().all(|&v| v <= prefix_max + 1e-12));
    }

    #[test]
    fn rising_tail_is_rejected() {
        // Compute-scaling shape: still rising at the window edge and the
        // guard at max exceeds the prefix — both guards must fire.
        let full = [0.2, 0.4, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0];
        let w = window(2, 8);
        assert!(accept_pruned(&samples_for(&full, &w), &w).is_none());
    }

    #[test]
    fn hidden_hump_is_caught_by_the_guard() {
        // Flat through the window, but an unsampled hump at the guard
        // point: the guard sample exceeds the prefix max, so pruning is
        // rejected even though the window edge is non-rising.
        let full = [0.9, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.3];
        let w = window(2, 8);
        assert!(accept_pruned(&samples_for(&full, &w), &w).is_none());
    }

    #[test]
    fn missing_samples_reject() {
        let w = window(2, 8);
        assert!(accept_pruned(&[(1, 0.5)], &w).is_none());
    }

    #[test]
    fn accepted_pruned_curve_is_water_fill_equivalent() {
        // The contract in one test: for a declining-tail curve paired with
        // a compute kernel, the accepted pruned curve and the full curve
        // produce identical quotas.
        let cache = [0.8, 1.0, 0.7, 0.6, 0.5, 0.45, 0.4, 0.35];
        let compute = [0.25, 0.5, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0];
        let w = window(2, 8);
        let pruned = accept_pruned(&samples_for(&cache, &w), &w).expect("accepted");
        let cap = ResourceVec {
            regs: 32768,
            shmem: 48 * 1024,
            threads: 1536,
            ctas: 8,
        };
        let cost_a = ResourceVec {
            regs: 3072,
            shmem: 0,
            threads: 192,
            ctas: 1,
        };
        let cost_b = ResourceVec {
            regs: 4096,
            shmem: 0,
            threads: 128,
            ctas: 1,
        };
        let with = |perf: Vec<f64>| {
            water_fill(
                &[
                    KernelCurve {
                        perf,
                        cta_cost: cost_a,
                    },
                    KernelCurve {
                        perf: compute.to_vec(),
                        cta_cost: cost_b,
                    },
                ],
                cap,
            )
            .expect("feasible")
        };
        assert_eq!(with(pruned).ctas, with(cache.to_vec()).ctas);
    }

    #[test]
    fn predict_default_reads_env_once() {
        // Whatever the ambient value, the gate is stable across calls.
        assert_eq!(predict_default(), predict_default());
    }

    #[test]
    fn knee_cap_is_the_predicted_knee_for_pruned_windows() {
        assert_eq!(window(2, 8).knee_cap(), 2);
        assert_eq!(window(4, 8).knee_cap(), 4);
        // Full windows probe the feasibility bound, like the plain ramp.
        assert_eq!(SweepWindow::full(8).knee_cap(), 8);
        assert_eq!(SweepWindow::full(1).knee_cap(), 1);
        // A knee at 1 keeps the cap at least 1.
        assert_eq!(window(1, 8).knee_cap(), 1);
    }

    #[test]
    fn deliver_counts_down_and_completes_the_round_once() {
        let mut k = KernelProgress {
            pending: 2,
            ..KernelProgress::default()
        };
        assert!(!k.deliver(), "first of two results: round still open");
        assert!(k.deliver(), "second result completes the round");
    }

    #[test]
    #[should_panic(expected = "duplicate delivery")]
    fn duplicate_delivery_is_a_checked_invariant() {
        let mut k = KernelProgress {
            pending: 1,
            ..KernelProgress::default()
        };
        assert!(k.deliver());
        // A second delivery of the same (kernel, cap) result must not be
        // reported as another round completion.
        let _ = k.deliver();
    }
}
