//! ws-trace export formats: JSONL and Chrome `trace_event` serialization
//! of a traced [`SimOutcome`], plus a dependency-free schema validator.
//!
//! The JSONL stream is one JSON object per line, each carrying a `"type"`
//! discriminator. The stream opens with a `meta` record (workload label,
//! policy, kernel names, run totals), continues with the decision-audit
//! records (every Eq. 2-4 scaling application, the water-filling inputs,
//! curves, grants and decision, the fallback verdict, phase-monitor
//! samples), then the simulator events (kernel/CTA lifecycle, MSHR fills,
//! fast-forward jumps, stall windows), and closes with one `finish` record
//! per kernel. [`validate_jsonl`] checks every line against the per-type
//! required-key schema in [`SCHEMAS`] using a built-in JSON parser, so CI
//! can gate trace output without any external tooling.
//!
//! The Chrome writer emits a `trace_event` JSON document loadable in
//! `chrome://tracing` / Perfetto: one complete (`ph:"X"`) span per kernel
//! from launch to finish, instant events for the CTA lifecycle, spans for
//! fast-forwarded gaps, and counter (`ph:"C"`) tracks for the per-window
//! stall breakdown.
//!
//! Everything here runs *after* a simulation completes; nothing in this
//! module is on the tick path.

use gpu_sim::TraceEvent;

use crate::audit::AuditEvent;
use crate::resources::ResourceVec;
use crate::runner::SimOutcome;

/// Required keys per record type. Every JSONL line must carry a `"type"`
/// matching one of these entries and at least the listed keys.
pub const SCHEMAS: [(&str, &[&str]); 23] = [
    ("meta", &["label", "policy", "kernels", "total_cycles"]),
    ("predicted_curve", &["kernel", "perf", "knee"]),
    ("sweep_window", &["kernel", "lo", "hi", "max"]),
    (
        "scaled_point",
        &[
            "kernel",
            "ctas",
            "ipc_sampled",
            "phi_mem",
            "psi",
            "raw_factor",
            "factor",
            "clamped",
            "ipc_scaled",
        ],
    ),
    ("water_fill_inputs", &["cta_costs", "capacity"]),
    ("curve", &["kernel", "perf"]),
    ("water_fill_step", &["kernel", "ctas", "perf"]),
    (
        "water_fill_decision",
        &["quotas", "water_level", "predicted"],
    ),
    ("fallback_verdict", &["threshold", "max_loss", "spatial"]),
    (
        "phase_sample",
        &["kernel", "cycle", "ipc", "baseline", "triggered"],
    ),
    ("kernel_launch", &["cycle", "kernel"]),
    ("cta_launch", &["cycle", "sm", "kernel", "cta"]),
    ("cta_complete", &["cycle", "kernel", "cta"]),
    ("kernel_halt", &["cycle", "kernel", "insts"]),
    ("mshr_fill", &["cycle", "sm", "line"]),
    ("fast_forward", &["from", "to"]),
    (
        "stall_window",
        &["cycle", "mem", "raw", "exec", "ibuffer", "barrier", "idle"],
    ),
    ("finish", &["kernel", "name", "finish_cycle", "insts"]),
    ("store_hit", &["kernel", "sig", "perf"]),
    ("store_miss", &["kernel", "sig"]),
    ("store_invalidate", &["kernel", "sig"]),
    ("store_meta", &["version", "capacity", "entries"]),
    (
        "store_entry",
        &[
            "kernel_sig",
            "gpu_sig",
            "class",
            "archetype",
            "perf",
            "knee",
        ],
    ),
];

/// Escapes `s` for inclusion inside a JSON string literal.
///
/// Public so downstream JSON emitters (the xtask lint report, external
/// tooling) share one escaping implementation with the trace writer.
#[must_use]
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON value (`null` for non-finite values, which
/// JSON cannot represent).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Formats a slice of `f64` as a JSON array.
fn num_array(vs: &[f64]) -> String {
    let items: Vec<String> = vs.iter().map(|&v| num(v)).collect();
    format!("[{}]", items.join(","))
}

/// Formats an optional `u64` as a JSON value.
fn opt_u64(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_string(), |x| x.to_string())
}

/// Formats an optional `f64` as a JSON value.
fn opt_num(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_string(), num)
}

/// Formats a [`ResourceVec`] as a JSON object.
fn resource_obj(r: &ResourceVec) -> String {
    format!(
        "{{\"regs\":{},\"shmem\":{},\"threads\":{},\"ctas\":{}}}",
        r.regs, r.shmem, r.threads, r.ctas
    )
}

/// One decision-audit event as a JSONL line (no trailing newline).
fn audit_line(e: &AuditEvent) -> String {
    match e {
        AuditEvent::ScaledPoint {
            kernel,
            ctas,
            ipc_sampled,
            phi_mem,
            psi,
            outcome,
        } => format!(
            "{{\"type\":\"scaled_point\",\"kernel\":{kernel},\"ctas\":{ctas},\
             \"ipc_sampled\":{},\"phi_mem\":{},\"psi\":{},\"raw_factor\":{},\
             \"factor\":{},\"clamped\":{},\"ipc_scaled\":{}}}",
            num(*ipc_sampled),
            num(*phi_mem),
            num(*psi),
            num(outcome.raw_factor),
            num(outcome.factor),
            outcome.clamped,
            num(outcome.ipc),
        ),
        AuditEvent::WaterFillInputs {
            cta_costs,
            capacity,
        } => {
            let costs: Vec<String> = cta_costs.iter().map(resource_obj).collect();
            format!(
                "{{\"type\":\"water_fill_inputs\",\"cta_costs\":[{}],\"capacity\":{}}}",
                costs.join(","),
                resource_obj(capacity),
            )
        }
        AuditEvent::Curve { kernel, perf } => format!(
            "{{\"type\":\"curve\",\"kernel\":{kernel},\"perf\":{}}}",
            num_array(perf)
        ),
        AuditEvent::PredictedCurve { kernel, perf, knee } => format!(
            "{{\"type\":\"predicted_curve\",\"kernel\":{kernel},\"perf\":{},\"knee\":{knee}}}",
            num_array(perf)
        ),
        AuditEvent::SweepWindow { kernel, lo, hi, max } => format!(
            "{{\"type\":\"sweep_window\",\"kernel\":{kernel},\"lo\":{lo},\"hi\":{hi},\"max\":{max}}}"
        ),
        AuditEvent::WaterFillStep { kernel, ctas, perf } => format!(
            "{{\"type\":\"water_fill_step\",\"kernel\":{kernel},\"ctas\":{ctas},\"perf\":{}}}",
            num(*perf)
        ),
        AuditEvent::WaterFillDecision {
            quotas,
            water_level,
            predicted,
        } => {
            let qs: Vec<String> = quotas.iter().map(u32::to_string).collect();
            format!(
                "{{\"type\":\"water_fill_decision\",\"quotas\":[{}],\
                 \"water_level\":{},\"predicted\":{}}}",
                qs.join(","),
                num(*water_level),
                num_array(predicted),
            )
        }
        AuditEvent::FallbackVerdict {
            threshold,
            max_loss,
            spatial,
        } => format!(
            "{{\"type\":\"fallback_verdict\",\"threshold\":{},\"max_loss\":{},\"spatial\":{spatial}}}",
            num(*threshold),
            opt_num(*max_loss),
        ),
        AuditEvent::PhaseSample {
            kernel,
            cycle,
            ipc,
            baseline,
            triggered,
        } => format!(
            "{{\"type\":\"phase_sample\",\"kernel\":{kernel},\"cycle\":{cycle},\
             \"ipc\":{},\"baseline\":{},\"triggered\":{triggered}}}",
            num(*ipc),
            opt_num(*baseline),
        ),
        AuditEvent::StoreHit { kernel, sig, perf } => format!(
            "{{\"type\":\"store_hit\",\"kernel\":{kernel},\"sig\":\"{sig:016x}\",\"perf\":{}}}",
            num_array(perf)
        ),
        AuditEvent::StoreMiss { kernel, sig } => {
            format!("{{\"type\":\"store_miss\",\"kernel\":{kernel},\"sig\":\"{sig:016x}\"}}")
        }
        AuditEvent::StoreInvalidate { kernel, sig } => {
            format!("{{\"type\":\"store_invalidate\",\"kernel\":{kernel},\"sig\":\"{sig:016x}\"}}")
        }
    }
}

/// One simulator event as a JSONL line (no trailing newline).
fn event_line(e: &TraceEvent) -> String {
    match e {
        TraceEvent::KernelLaunch { cycle, kernel } => {
            format!("{{\"type\":\"kernel_launch\",\"cycle\":{cycle},\"kernel\":{kernel}}}")
        }
        TraceEvent::CtaLaunch {
            cycle,
            sm,
            kernel,
            cta,
        } => format!(
            "{{\"type\":\"cta_launch\",\"cycle\":{cycle},\"sm\":{sm},\"kernel\":{kernel},\"cta\":{cta}}}"
        ),
        TraceEvent::CtaComplete { cycle, kernel, cta } => format!(
            "{{\"type\":\"cta_complete\",\"cycle\":{cycle},\"kernel\":{kernel},\"cta\":{cta}}}"
        ),
        TraceEvent::KernelHalt {
            cycle,
            kernel,
            insts,
        } => format!(
            "{{\"type\":\"kernel_halt\",\"cycle\":{cycle},\"kernel\":{kernel},\"insts\":{insts}}}"
        ),
        TraceEvent::MshrFill { cycle, sm, line } => {
            format!("{{\"type\":\"mshr_fill\",\"cycle\":{cycle},\"sm\":{sm},\"line\":{line}}}")
        }
        TraceEvent::FastForward { from, to } => {
            format!("{{\"type\":\"fast_forward\",\"from\":{from},\"to\":{to}}}")
        }
        TraceEvent::StallWindow { cycle, stalls } => format!(
            "{{\"type\":\"stall_window\",\"cycle\":{cycle},\"mem\":{},\"raw\":{},\
             \"exec\":{},\"ibuffer\":{},\"barrier\":{},\"idle\":{}}}",
            stalls.mem, stalls.raw, stalls.exec, stalls.ibuffer, stalls.barrier, stalls.idle,
        ),
    }
}

/// Serializes a traced run as JSONL: a `meta` record, the decision-audit
/// records, the simulator events, and one `finish` record per kernel.
/// Works on untraced outcomes too (the audit/event sections are simply
/// absent). `kernel_names` must have one entry per kernel slot.
#[must_use]
pub fn jsonl(outcome: &SimOutcome, label: &str, policy: &str, kernel_names: &[&str]) -> String {
    let mut out = String::new();
    let names: Vec<String> = kernel_names
        .iter()
        .map(|n| format!("\"{}\"", esc(n)))
        .collect();
    out.push_str(&format!(
        "{{\"type\":\"meta\",\"label\":\"{}\",\"policy\":\"{}\",\"kernels\":[{}],\
         \"total_cycles\":{},\"ff_skipped_cycles\":{},\"timed_out\":{}}}\n",
        esc(label),
        esc(policy),
        names.join(","),
        outcome.total_cycles,
        outcome.ff_skipped_cycles,
        outcome.timed_out,
    ));
    if let Some(audit) = &outcome.audit {
        for e in &audit.events {
            out.push_str(&audit_line(e));
            out.push('\n');
        }
    }
    if let Some(events) = &outcome.trace {
        for e in events {
            out.push_str(&event_line(e));
            out.push('\n');
        }
    }
    for (k, name) in kernel_names.iter().enumerate() {
        out.push_str(&format!(
            "{{\"type\":\"finish\",\"kernel\":{k},\"name\":\"{}\",\"finish_cycle\":{},\"insts\":{}}}\n",
            esc(name),
            opt_u64(outcome.finish_cycle.get(k).copied().flatten()),
            outcome.end_insts.get(k).copied().unwrap_or(0),
        ));
    }
    out
}

/// Serializes a traced run as a Chrome `trace_event` JSON document
/// (loadable in `chrome://tracing` or Perfetto). Timestamps are core
/// cycles. Kernels are spans on pid 0, per-SM CTA activity instants on
/// pid 1, fast-forward gaps spans on pid 2, and stall windows counter
/// tracks on pid 0.
#[must_use]
pub fn chrome_trace(outcome: &SimOutcome, kernel_names: &[&str]) -> String {
    let mut ev: Vec<String> = Vec::new();
    for (pid, name) in [(0, "kernels"), (1, "sms"), (2, "simulator")] {
        ev.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\
             \"args\":{{\"name\":\"{name}\"}}}}"
        ));
    }
    for (k, name) in kernel_names.iter().enumerate() {
        let end = outcome
            .finish_cycle
            .get(k)
            .copied()
            .flatten()
            .unwrap_or(outcome.total_cycles);
        ev.push(format!(
            "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"kernel\",\"ts\":0,\"dur\":{end},\
             \"pid\":0,\"tid\":{k}}}",
            esc(name),
        ));
    }
    for e in outcome.trace.as_deref().unwrap_or(&[]) {
        match e {
            TraceEvent::KernelLaunch { cycle, kernel } => ev.push(format!(
                "{{\"ph\":\"i\",\"name\":\"launch\",\"ts\":{cycle},\"pid\":0,\
                 \"tid\":{kernel},\"s\":\"t\"}}"
            )),
            TraceEvent::KernelHalt { cycle, kernel, .. } => ev.push(format!(
                "{{\"ph\":\"i\",\"name\":\"halt\",\"ts\":{cycle},\"pid\":0,\
                 \"tid\":{kernel},\"s\":\"t\"}}"
            )),
            TraceEvent::CtaLaunch {
                cycle,
                sm,
                kernel,
                cta,
            } => ev.push(format!(
                "{{\"ph\":\"i\",\"name\":\"cta {cta} k{kernel}\",\"ts\":{cycle},\
                 \"pid\":1,\"tid\":{sm},\"s\":\"t\"}}"
            )),
            TraceEvent::CtaComplete { cycle, kernel, cta } => ev.push(format!(
                "{{\"ph\":\"i\",\"name\":\"cta {cta} done\",\"ts\":{cycle},\
                 \"pid\":0,\"tid\":{kernel},\"s\":\"t\"}}"
            )),
            TraceEvent::MshrFill { .. } => {}
            TraceEvent::FastForward { from, to } => ev.push(format!(
                "{{\"ph\":\"X\",\"name\":\"fast-forward\",\"cat\":\"ff\",\"ts\":{from},\
                 \"dur\":{},\"pid\":2,\"tid\":0}}",
                to.saturating_sub(*from),
            )),
            TraceEvent::StallWindow { cycle, stalls } => ev.push(format!(
                "{{\"ph\":\"C\",\"name\":\"stalls\",\"ts\":{cycle},\"pid\":0,\
                 \"args\":{{\"mem\":{},\"raw\":{},\"exec\":{},\"ibuffer\":{},\
                 \"barrier\":{},\"idle\":{}}}}}",
                stalls.mem, stalls.raw, stalls.exec, stalls.ibuffer, stalls.barrier, stalls.idle,
            )),
        }
    }
    format!("{{\"traceEvents\":[{}]}}\n", ev.join(","))
}

/// A parsed JSON value (just enough structure for schema validation and
/// the store loader).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object.
    pub(crate) fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub(crate) fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number in
    /// `u64` range (bit-compared against its truncation, so no float
    /// equality is involved).
    pub(crate) fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n)
                if *n >= 0.0
                    && *n <= 9_007_199_254_740_992.0
                    && n.trunc().to_bits() == n.to_bits() =>
            {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub(crate) fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one JSONL line into a [`Json`] value (the store loader shares
/// the validator's parser).
pub(crate) fn parse_line(line: &str) -> Result<Json, String> {
    Parser::new(line).parse()
}

/// A minimal recursive-descent JSON parser over one input line.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn consume(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        let end = self.pos + word.len();
        if self.bytes.get(self.pos..end) == Some(word.as_bytes()) {
            self.pos = end;
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.consume(b'"')?;
        let mut out = Vec::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return String::from_utf8(out).map_err(|_| "invalid UTF-8".to_string());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push(b'"'),
                        Some(b'\\') => out.push(b'\\'),
                        Some(b'/') => out.push(b'/'),
                        Some(b'n') => out.push(b'\n'),
                        Some(b'r') => out.push(b'\r'),
                        Some(b't') => out.push(b'\t'),
                        Some(b'b') => out.push(0x08),
                        Some(b'f') => out.push(0x0c),
                        Some(b'u') => {
                            // Accept \uXXXX but keep only the raw escape; the
                            // validator never inspects decoded text.
                            let end = self.pos + 5;
                            if end > self.bytes.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            out.push(b'?');
                            self.pos = end - 1;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(b) => {
                    out.push(b);
                    self.pos += 1;
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(self.bytes.get(start..self.pos).unwrap_or(&[]))
            .map_err(|_| "invalid UTF-8 in number".to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.consume(b':')?;
                    let val = self.value()?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
                    }
                }
            }
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                    }
                }
            }
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn parse(mut self) -> Result<Json, String> {
        let v = self.value()?;
        self.skip_ws();
        if self.pos == self.bytes.len() {
            Ok(v)
        } else {
            Err(format!("trailing input at byte {}", self.pos))
        }
    }
}

/// Validates a ws-trace JSONL document: every non-empty line must parse as
/// a JSON object whose `"type"` names a known record type and which carries
/// that type's required keys (see [`SCHEMAS`]). Returns the number of
/// records validated.
///
/// # Errors
///
/// Returns a message naming the first offending line (1-based) and what
/// was wrong with it.
pub fn validate_jsonl(input: &str) -> Result<usize, String> {
    let mut count = 0usize;
    for (idx, line) in input.lines().enumerate() {
        let line_no = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let value = Parser::new(line)
            .parse()
            .map_err(|e| format!("line {line_no}: {e}"))?;
        let Some(Json::Str(ty)) = value.get("type") else {
            return Err(format!("line {line_no}: missing string \"type\" field"));
        };
        let Some((_, required)) = SCHEMAS.iter().find(|(name, _)| name == ty) else {
            return Err(format!("line {line_no}: unknown record type \"{ty}\""));
        };
        for key in *required {
            if value.get(key).is_none() {
                return Err(format!(
                    "line {line_no}: record type \"{ty}\" is missing required key \"{key}\""
                ));
            }
        }
        count += 1;
    }
    Ok(count)
}

/// Validates that every non-empty line of `input` parses as a JSON value,
/// with no record-type schema applied — for JSONL documents other than
/// ws-trace streams (e.g. the xtask lint report). Returns the number of
/// lines parsed.
///
/// # Errors
///
/// Returns a message naming the first offending line (1-based) and what
/// was wrong with it.
pub fn validate_json_syntax(input: &str) -> Result<usize, String> {
    let mut count = 0usize;
    for (idx, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        Parser::new(line)
            .parse()
            .map_err(|e| format!("line {}: {e}", idx + 1))?;
        count += 1;
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{PolicyKind, WarpedSlicerConfig};
    use crate::runner::{execute, run_isolation, RunConfig, SimJob, TraceOptions};
    use ws_workloads::by_abbrev;

    fn traced_outcome() -> (SimOutcome, Vec<&'static str>) {
        let cfg = RunConfig {
            isolation_cycles: 12_000,
            trace: Some(TraceOptions::default()),
            ..RunConfig::default()
        };
        let a = by_abbrev("IMG").unwrap().desc;
        let b = by_abbrev("NN").unwrap().desc;
        let ta = run_isolation(&a, &cfg).target_insts;
        let tb = run_isolation(&b, &cfg).target_insts;
        let policy = PolicyKind::WarpedSlicer(WarpedSlicerConfig::scaled_for(12_000));
        let job = SimJob::corun(&[&a, &b], &[ta, tb], &policy, &cfg);
        (execute(&job), vec!["IMG", "NN"])
    }

    #[test]
    fn traced_corun_exports_schema_valid_jsonl() {
        let (outcome, names) = traced_outcome();
        let text = jsonl(&outcome, "IMG_NN", "warped-slicer", &names);
        let records = validate_jsonl(&text).expect("schema-valid");
        assert!(records > 10, "only {records} records");
        // Acceptance: at least one scaled-curve record per kernel with its
        // phi_mem/psi inputs, a water-filling decision with the quota
        // vector, and per-kernel finish records.
        for k in 0..2 {
            assert!(
                text.lines().any(|l| l.contains("\"type\":\"scaled_point\"")
                    && l.contains(&format!("\"kernel\":{k}"))
                    && l.contains("\"phi_mem\":")
                    && l.contains("\"psi\":")),
                "kernel {k} scaled point missing"
            );
            assert!(
                text.lines()
                    .any(|l| l.contains("\"type\":\"finish\"")
                        && l.contains(&format!("\"kernel\":{k}"))),
                "kernel {k} finish record missing"
            );
        }
        assert!(text.contains("\"type\":\"water_fill_decision\""));
        assert!(text.contains("\"quotas\":["));
    }

    #[test]
    fn chrome_trace_is_loadable_json() {
        let (outcome, names) = traced_outcome();
        let doc = chrome_trace(&outcome, &names);
        let parsed = Parser::new(doc.trim()).parse().expect("valid JSON");
        let Some(Json::Arr(events)) = parsed.get("traceEvents") else {
            panic!("traceEvents array missing");
        };
        assert!(events.len() > 5);
        assert!(doc.contains("\"name\":\"IMG\""));
        assert!(doc.contains("\"ph\":\"X\""));
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(validate_jsonl("{\"type\":\"meta\"").is_err(), "truncated");
        assert!(
            validate_jsonl("{\"cycle\":5}")
                .unwrap_err()
                .contains("type"),
            "missing type"
        );
        assert!(
            validate_jsonl("{\"type\":\"bogus\"}")
                .unwrap_err()
                .contains("unknown record type"),
            "unknown type"
        );
        let missing = validate_jsonl("{\"type\":\"kernel_launch\",\"cycle\":5}");
        assert!(missing.unwrap_err().contains("kernel"), "missing key named");
    }

    #[test]
    fn validator_counts_records_and_skips_blank_lines() {
        let text = "{\"type\":\"kernel_launch\",\"cycle\":5,\"kernel\":0}\n\n\
                    {\"type\":\"fast_forward\",\"from\":10,\"to\":90}\n";
        assert_eq!(validate_jsonl(text), Ok(2));
        assert_eq!(validate_jsonl(""), Ok(0));
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
        assert_eq!(num(1.5), "1.5");
        assert_eq!(opt_num(None), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let parsed = Parser::new("\"a\\\"b\\\\c\\nd\"").parse().unwrap();
        assert_eq!(parsed, Json::Str("a\"b\\c\nd".to_string()));
    }
}
