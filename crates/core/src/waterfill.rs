//! The discrete water-filling partitioning algorithm (Algorithm 1).
//!
//! Given each kernel's performance-vs-CTA-count curve and per-CTA resource
//! footprint, find the CTA quota vector `(T_1..T_K)` that maximizes the
//! *minimum* normalized performance across kernels, subject to the SM's
//! capacity (Eq. 1):
//!
//! ```text
//! max  min_i P(i, T_i)   s.t.  Σ_i R_{T_i} <= R_tot
//! ```
//!
//! The algorithm runs in `O(KN)` time and space (K kernels, N CTA counts):
//! it repeatedly picks the kernel whose current normalized performance is
//! lowest and grants it the minimum number of additional CTAs that yields an
//! incremental performance improvement, until resources run out or every
//! kernel is saturated. This mirrors classical water-filling in
//! communication systems, adapted to discrete, non-convex curves.

use crate::resources::ResourceVec;

/// One kernel's input to the partitioner.
#[derive(Debug, Clone)]
pub struct KernelCurve {
    /// `perf[j]` is the measured/predicted performance with `j + 1` CTAs.
    /// Values need not be normalized; the algorithm normalizes to the
    /// curve's maximum. Non-monotonic (even non-convex) curves are fine.
    pub perf: Vec<f64>,
    /// Resource footprint of one CTA.
    pub cta_cost: ResourceVec,
}

/// The partitioner's output.
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    /// CTAs granted to each kernel.
    pub ctas: Vec<u32>,
    /// Normalized performance `P(i, T_i)` each kernel achieves at its grant.
    pub perf: Vec<f64>,
}

impl Partition {
    /// The minimum normalized performance across kernels (the objective of
    /// Eq. 1).
    #[must_use]
    pub fn min_perf(&self) -> f64 {
        self.perf.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Per-kernel performance loss `1 - P(i, T_i)` relative to each
    /// kernel's solo peak.
    #[must_use]
    pub fn losses(&self) -> Vec<f64> {
        self.perf.iter().map(|p| 1.0 - p).collect()
    }
}

/// Monotone staircase of a performance curve: `q[d]` is the best
/// performance reachable with `m[d]` CTAs, strictly increasing in both.
/// For a non-empty curve the staircase is never empty: entry 0 is always
/// `(1 CTA, perf[0])`, so a lane's initial grant of one CTA is always a
/// valid step (even for all-zero curves, which used to have no steps).
#[derive(Debug, Clone)]
struct Staircase {
    q: Vec<f64>,
    m: Vec<u32>,
}

fn staircase(perf: &[f64]) -> Staircase {
    let peak = perf.iter().copied().fold(0.0f64, f64::max);
    let norm = if peak > 0.0 { peak } else { 1.0 };
    let mut q = Vec::new();
    let mut m = Vec::new();
    let mut best = f64::NEG_INFINITY;
    for (ctas, &p) in (1u32..).zip(perf.iter()) {
        let p = p / norm;
        if p > best {
            best = p;
            q.push(p);
            m.push(ctas);
        }
    }
    Staircase { q, m }
}

/// One kernel's progress through its staircase during the main loop.
struct Lane<'a> {
    stair: Staircase,
    cta_cost: &'a ResourceVec,
    /// Index into the staircase of the entry currently achieved. Entry 0 is
    /// `(1 CTA, its perf)`, matching the initial grant `T_i = 1`.
    step: usize,
    /// CTAs granted so far (the `T_i` being built up).
    ctas: u32,
    /// Saturated: no further step exists or the next step does not fit.
    full: bool,
}

impl Lane<'_> {
    /// Normalized performance at the currently achieved step. The fallback
    /// is unreachable: `step` only advances to indices the staircase has.
    fn perf(&self) -> f64 {
        self.stair.q.get(self.step).copied().unwrap_or(0.0)
    }
}

/// One Algorithm 1 grant, for decision-audit traces: after the grant, the
/// lane for `kernel` holds `ctas` CTAs at normalized performance `perf`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaterFillStep {
    /// Kernel whose lane was raised (the initial one-CTA grants are
    /// recorded too, in kernel order).
    pub kernel: usize,
    /// The lane's CTA total after the grant.
    pub ctas: u32,
    /// The lane's normalized performance after the grant.
    pub perf: f64,
}

/// Runs Algorithm 1.
///
/// Returns `None` when even one CTA per kernel does not fit in `total` (the
/// caller should then fall back to spatial multitasking), or when a curve is
/// empty.
///
/// # Examples
///
/// A kernel that keeps scaling shares an SM with one that thrashes the L1
/// past two CTAs; the partitioner gives the scaler the slots the thrasher
/// cannot use:
///
/// ```
/// use warped_slicer::waterfill::{water_fill, KernelCurve};
/// use warped_slicer::resources::ResourceVec;
///
/// let cta = |threads| ResourceVec { regs: 2048, shmem: 0, threads, ctas: 1 };
/// let scaler = KernelCurve {
///     perf: vec![0.25, 0.5, 0.75, 1.0],
///     cta_cost: cta(128),
/// };
/// let thrasher = KernelCurve {
///     perf: vec![0.9, 1.0, 0.6, 0.4],
///     cta_cost: cta(128),
/// };
/// let cap = ResourceVec { regs: 32768, shmem: 48 * 1024, threads: 1536, ctas: 8 };
/// let p = water_fill(&[scaler, thrasher], cap).expect("feasible");
/// assert_eq!(p.ctas, vec![4, 2]);
/// ```
#[must_use]
pub fn water_fill(kernels: &[KernelCurve], total: ResourceVec) -> Option<Partition> {
    water_fill_traced(kernels, total, &mut Vec::new())
}

/// [`water_fill`] with an audit trail: every grant — the K initial one-CTA
/// grants and each main-loop raise — is appended to `steps` in execution
/// order. On an infeasible instance `steps` holds the grants made before
/// the algorithm gave up.
#[must_use]
pub fn water_fill_traced(
    kernels: &[KernelCurve],
    total: ResourceVec,
    steps: &mut Vec<WaterFillStep>,
) -> Option<Partition> {
    if kernels.is_empty() || kernels.iter().any(|k| k.perf.is_empty()) {
        return None;
    }

    // Initialization: one CTA per kernel (lines 6-15).
    let mut left = total;
    let mut lanes: Vec<Lane> = Vec::with_capacity(kernels.len());
    for (i, k) in kernels.iter().enumerate() {
        if !left.covers(&k.cta_cost) {
            return None;
        }
        left = left.saturating_sub(&k.cta_cost);
        let lane = Lane {
            stair: staircase(&k.perf),
            cta_cost: &k.cta_cost,
            step: 0,
            ctas: 1,
            full: false,
        };
        steps.push(WaterFillStep {
            kernel: i,
            ctas: 1,
            perf: lane.perf(),
        });
        lanes.push(lane);
    }

    // Main loop (lines 16-32): raise the worst performer step by step.
    loop {
        let mut selected: Option<usize> = None;
        let mut min_perf = f64::INFINITY;
        for (i, lane) in lanes.iter().enumerate() {
            if !lane.full && lane.perf() < min_perf {
                min_perf = lane.perf();
                selected = Some(i);
            }
        }
        let Some(sel) = selected else {
            break; // every kernel full
        };
        let Some(lane) = lanes.get_mut(sel) else {
            break;
        };
        match (lane.stair.m.get(lane.step), lane.stair.m.get(lane.step + 1)) {
            (Some(&cur), Some(&next)) => {
                let d_t = next - cur;
                let need = lane.cta_cost.times(u64::from(d_t));
                if left.covers(&need) {
                    left = left.saturating_sub(&need);
                    lane.step += 1;
                    lane.ctas += d_t;
                    steps.push(WaterFillStep {
                        kernel: sel,
                        ctas: lane.ctas,
                        perf: lane.perf(),
                    });
                } else {
                    lane.full = true;
                }
            }
            // No further incremental improvement exists for this kernel.
            _ => lane.full = true,
        }
    }

    let p = Partition {
        ctas: lanes.iter().map(|lane| lane.ctas).collect(),
        perf: lanes.iter().map(Lane::perf).collect(),
    };
    if gpu_sim::invariant::enabled() {
        assert_partition_feasible(kernels, &total, &p);
        strict_oracle_check(kernels, total, &p);
    }
    Some(p)
}

/// Panics if `p` is not a feasible answer to Eq. 1 for `kernels` under
/// `total`: wrong arity, a zero-CTA grant, or an aggregate footprint the SM
/// cannot hold.
///
/// [`water_fill`] runs this on every partition it returns when strict
/// invariants are compiled in (see [`gpu_sim::invariant::enabled`]); it is
/// public so policies that post-process partitions can re-validate them.
pub fn assert_partition_feasible(kernels: &[KernelCurve], total: &ResourceVec, p: &Partition) {
    assert!(
        p.ctas.len() == kernels.len() && p.perf.len() == kernels.len(),
        "infeasible partition: {} quotas / {} perf entries for {} kernels",
        p.ctas.len(),
        p.perf.len(),
        kernels.len()
    );
    let mut used = ResourceVec::zero();
    for (i, (k, &t)) in kernels.iter().zip(&p.ctas).enumerate() {
        assert!(t >= 1, "infeasible partition: kernel {i} granted zero CTAs");
        used = used.plus(&k.cta_cost.times(u64::from(t)));
    }
    assert!(
        total.covers(&used),
        "infeasible partition: quotas {:?} need {used:?} but the SM only has \
         {total:?} (Eq. 1 violated)",
        p.ctas
    );
}

/// For small instances, checks the water-filling answer against the
/// exhaustive [`brute_force`] optimum on the Eq. 1 objective.
fn strict_oracle_check(kernels: &[KernelCurve], total: ResourceVec, p: &Partition) {
    let states: usize = kernels
        .iter()
        .map(|k| k.perf.len())
        .try_fold(1usize, |acc, n| acc.checked_mul(n))
        .unwrap_or(usize::MAX);
    if kernels.len() > 3 || states > 4096 {
        return;
    }
    if let Some(oracle) = brute_force(kernels, total) {
        assert!(
            p.min_perf() >= oracle.min_perf() - 1e-9,
            "water-filling lost to the exhaustive oracle: min perf {} at \
             quotas {:?} vs {} at {:?}",
            p.min_perf(),
            p.ctas,
            oracle.min_perf(),
            oracle.ctas
        );
    }
}

/// Exhaustive-search reference: maximizes the same objective by trying every
/// feasible CTA combination (`O(N^K)`). Used by tests and the Oracle policy.
///
/// Tie-breaking: among partitions with equal minimum performance, prefers
/// the one with the larger *sum* of normalized performance.
#[must_use]
pub fn brute_force(kernels: &[KernelCurve], total: ResourceVec) -> Option<Partition> {
    if kernels.is_empty() || kernels.iter().any(|k| k.perf.is_empty()) {
        return None;
    }
    let norm: Vec<Vec<f64>> = kernels
        .iter()
        .map(|k| {
            let peak = k.perf.iter().copied().fold(0.0f64, f64::max);
            let d = if peak > 0.0 { peak } else { 1.0 };
            k.perf.iter().map(|p| p / d).collect()
        })
        .collect();
    let mut best: Option<(f64, f64, Vec<u32>)> = None;
    let mut current = vec![1u32; kernels.len()];
    search(kernels, &norm, total, 0, &mut current, &mut best);
    let (_, _, ctas) = best?;
    let perf = ctas
        .iter()
        .zip(&norm)
        // u32 -> usize never truncates. xtask-allow: no-lossy-cast
        .map(|(&t, n)| n.get(t as usize - 1).copied().unwrap_or(0.0))
        .collect();
    Some(Partition { ctas, perf })
}

fn search(
    kernels: &[KernelCurve],
    norm: &[Vec<f64>],
    left: ResourceVec,
    i: usize,
    current: &mut Vec<u32>,
    best: &mut Option<(f64, f64, Vec<u32>)>,
) {
    let Some(kernel) = kernels.get(i) else {
        // Leaf: every kernel has a tentative grant; score the combination.
        let mut min_p = f64::INFINITY;
        let mut sum_p = 0.0;
        for (n, &t) in norm.iter().zip(current.iter()) {
            // u32 -> usize never truncates. xtask-allow: no-lossy-cast
            let p = n.get(t as usize - 1).copied().unwrap_or(0.0);
            min_p = min_p.min(p);
            sum_p += p;
        }
        let better = match best {
            None => true,
            Some((bm, bs, _)) => {
                min_p > *bm + 1e-12 || ((min_p - *bm).abs() <= 1e-12 && sum_p > *bs)
            }
        };
        if better {
            *best = Some((min_p, sum_p, current.clone()));
        }
        return;
    };
    let max_t = u32::try_from(kernel.perf.len()).unwrap_or(u32::MAX);
    for t in 1..=max_t {
        let need = kernel.cta_cost.times(u64::from(t));
        if !left.covers(&need) {
            break;
        }
        if let Some(slot) = current.get_mut(i) {
            *slot = t;
        }
        search(
            kernels,
            norm,
            left.saturating_sub(&need),
            i + 1,
            current,
            best,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(regs: u64, threads: u64) -> ResourceVec {
        ResourceVec {
            regs,
            shmem: 0,
            threads,
            ctas: 1,
        }
    }

    fn cap() -> ResourceVec {
        ResourceVec {
            regs: 32768,
            shmem: 48 * 1024,
            threads: 1536,
            ctas: 8,
        }
    }

    #[test]
    fn single_kernel_gets_peak() {
        // Saturating curve peaking at 6 CTAs.
        let k = KernelCurve {
            perf: vec![0.2, 0.4, 0.6, 0.8, 0.9, 1.0, 1.0, 1.0],
            cta_cost: cost(1000, 64),
        };
        let p = water_fill(&[k], cap()).unwrap();
        assert_eq!(p.ctas, vec![6], "no CTAs wasted past the plateau");
        assert!((p.perf[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fig3b_sweet_spot() {
        // The IMG + NN illustration: an even split starves IMG by ~30%,
        // while 60/40 loses only ~10% each. 8 slots, symmetric costs.
        let img = KernelCurve {
            perf: vec![0.24, 0.47, 0.66, 0.84, 0.90, 0.95, 0.99, 1.0],
            cta_cost: cost(1792 * 2, 128),
        };
        let nn = KernelCurve {
            perf: vec![0.71, 0.90, 1.0, 1.0, 0.76, 0.67, 0.61, 0.57],
            cta_cost: cost(1792 * 2, 128),
        };
        let p = water_fill(&[img.clone(), nn.clone()], cap()).unwrap();
        // IMG should get more CTAs than an even split would give it.
        assert!(p.ctas[0] >= 4, "IMG CTAs: {:?}", p.ctas);
        assert!(p.ctas[1] <= 4);
        assert!(p.min_perf() > 0.8, "min perf {:?}", p.perf);
        // And it should match the exhaustive optimum on the objective.
        let b = brute_force(&[img, nn], cap()).unwrap();
        assert!((p.min_perf() - b.min_perf()).abs() < 1e-9);
    }

    #[test]
    fn respects_resource_capacity() {
        let k1 = KernelCurve {
            perf: vec![0.5, 0.8, 1.0],
            cta_cost: cost(12000, 512),
        };
        let k2 = KernelCurve {
            perf: vec![0.6, 0.9, 1.0],
            cta_cost: cost(12000, 512),
        };
        let p = water_fill(&[k1.clone(), k2.clone()], cap()).unwrap();
        let used = k1
            .cta_cost
            .times(u64::from(p.ctas[0]))
            .plus(&k2.cta_cost.times(u64::from(p.ctas[1])));
        assert!(cap().covers(&used));
        // 32768 regs / 12000 per CTA = at most 2 total... threads: 1536/512=3.
        assert!(p.ctas[0] + p.ctas[1] <= 2);
    }

    #[test]
    fn infeasible_pair_returns_none() {
        let huge = KernelCurve {
            perf: vec![1.0],
            cta_cost: cost(20000, 1024),
        };
        assert!(water_fill(&[huge.clone(), huge], cap()).is_none());
        assert!(water_fill(&[], cap()).is_none());
    }

    #[test]
    fn all_zero_curve_is_granted_one_cta() {
        // An all-zero curve has no improving step past its first entry; it
        // used to leave the staircase empty and panic on lookup. It should
        // simply keep its initial one-CTA grant at zero performance.
        let dead = KernelCurve {
            perf: vec![0.0, 0.0, 0.0],
            cta_cost: cost(1000, 64),
        };
        let live = KernelCurve {
            perf: vec![0.5, 1.0],
            cta_cost: cost(1000, 64),
        };
        let p = water_fill(&[dead, live], cap()).unwrap();
        assert_eq!(p.ctas, vec![1, 2]);
        assert!((p.perf[0] - 0.0).abs() < 1e-12);
        assert!((p.perf[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_curve_returns_none() {
        let k = KernelCurve {
            perf: vec![],
            cta_cost: cost(1, 1),
        };
        assert!(water_fill(&[k], cap()).is_none());
    }

    #[test]
    fn worst_performer_is_raised_first() {
        // Kernel A saturates instantly; kernel B needs CTAs. B should get
        // the lion's share of the 8 slots.
        let a = KernelCurve {
            perf: vec![1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0],
            cta_cost: cost(100, 32),
        };
        let b = KernelCurve {
            perf: vec![0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0],
            cta_cost: cost(100, 32),
        };
        let p = water_fill(&[a, b], cap()).unwrap();
        assert_eq!(p.ctas, vec![1, 7]);
    }

    #[test]
    fn non_convex_curve_skips_the_valley() {
        // Perf dips at 3-4 CTAs and recovers at 5: the staircase jumps
        // straight from 2 to 5.
        let k = KernelCurve {
            perf: vec![0.4, 0.6, 0.5, 0.55, 1.0],
            cta_cost: cost(1000, 64),
        };
        let p = water_fill(&[k], cap()).unwrap();
        assert_eq!(p.ctas, vec![5]);
    }

    #[test]
    fn three_kernels_partition() {
        let mk = |peak_at: usize| KernelCurve {
            perf: (1..=8)
                .map(|j| (j as f64 / peak_at as f64).min(1.0))
                .collect(),
            cta_cost: cost(2000, 128),
        };
        let p = water_fill(&[mk(2), mk(4), mk(6)], cap()).unwrap();
        assert_eq!(p.ctas.len(), 3);
        let total: u32 = p.ctas.iter().sum();
        assert!(total <= 8);
        // The slow-saturating kernel gets the most CTAs.
        assert!(p.ctas[2] >= p.ctas[1] && p.ctas[1] >= p.ctas[0]);
    }

    #[test]
    #[should_panic(expected = "Eq. 1 violated")]
    fn infeasible_partition_is_rejected() {
        let k = KernelCurve {
            perf: vec![0.5, 1.0],
            cta_cost: cost(20000, 512),
        };
        // Two CTAs each need 40000 registers; the SM has 32768.
        let bogus = Partition {
            ctas: vec![2],
            perf: vec![1.0],
        };
        assert_partition_feasible(&[k], &cap(), &bogus);
    }

    #[test]
    #[should_panic(expected = "zero CTAs")]
    fn zero_cta_grant_is_rejected() {
        let k = KernelCurve {
            perf: vec![1.0],
            cta_cost: cost(1, 1),
        };
        let bogus = Partition {
            ctas: vec![0],
            perf: vec![0.0],
        };
        assert_partition_feasible(&[k], &cap(), &bogus);
    }

    #[test]
    fn water_fill_output_is_feasible() {
        // assert_partition_feasible also runs inside water_fill under strict
        // invariants; exercise the public entry point explicitly too.
        let ks = [
            KernelCurve {
                perf: vec![0.3, 0.6, 1.0],
                cta_cost: cost(4000, 256),
            },
            KernelCurve {
                perf: vec![0.8, 1.0],
                cta_cost: cost(6000, 256),
            },
        ];
        let p = water_fill(&ks, cap()).unwrap();
        assert_partition_feasible(&ks, &cap(), &p);
    }

    #[test]
    fn traced_steps_end_at_the_final_quotas() {
        let scaler = KernelCurve {
            perf: vec![0.25, 0.5, 0.75, 1.0],
            cta_cost: cost(2048, 128),
        };
        let thrasher = KernelCurve {
            perf: vec![0.9, 1.0, 0.6, 0.4],
            cta_cost: cost(2048, 128),
        };
        let mut steps = Vec::new();
        let p = water_fill_traced(&[scaler, thrasher], cap(), &mut steps).unwrap();
        // The first K steps are the initial one-CTA grants, in kernel order.
        assert_eq!(
            steps[0],
            WaterFillStep {
                kernel: 0,
                ctas: 1,
                perf: 0.25
            }
        );
        assert_eq!(steps[1].kernel, 1);
        assert_eq!(steps[1].ctas, 1);
        // Each kernel's last recorded grant is its final quota.
        for (i, &quota) in p.ctas.iter().enumerate() {
            let last = steps.iter().rev().find(|s| s.kernel == i).unwrap();
            assert_eq!(last.ctas, quota);
        }
        // And the untraced entry point agrees.
        assert_eq!(
            water_fill(
                &[
                    KernelCurve {
                        perf: vec![0.25, 0.5, 0.75, 1.0],
                        cta_cost: cost(2048, 128)
                    },
                    KernelCurve {
                        perf: vec![0.9, 1.0, 0.6, 0.4],
                        cta_cost: cost(2048, 128)
                    },
                ],
                cap()
            )
            .unwrap(),
            p
        );
    }

    #[test]
    fn matches_brute_force_on_taxing_cases() {
        // A deterministic battery of awkward shapes.
        let shapes: Vec<Vec<f64>> = vec![
            vec![0.9, 0.2, 1.0, 0.1, 0.95, 0.97, 0.99, 1.0],
            vec![1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3],
            vec![0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 1.0],
            vec![0.5; 8],
        ];
        for a in &shapes {
            for b in &shapes {
                let ks = [
                    KernelCurve {
                        perf: a.clone(),
                        cta_cost: cost(3000, 128),
                    },
                    KernelCurve {
                        perf: b.clone(),
                        cta_cost: cost(2000, 192),
                    },
                ];
                let wf = water_fill(&ks, cap()).unwrap();
                let bf = brute_force(&ks, cap()).unwrap();
                assert!(
                    wf.min_perf() >= bf.min_perf() - 1e-9,
                    "waterfill {:?} vs brute {:?} on {a:?}/{b:?}",
                    wf,
                    bf
                );
            }
        }
    }
}
