//! Randomized property tests for the ws-predict → water-filling contract:
//!
//! 1. feeding Algorithm 1 a *predicted* curve (instead of a sampled one)
//!    always yields an Eq. 1-feasible quota vector whose per-kernel grant
//!    stays inside the occupancy-feasible range the predictor derived;
//! 2. whenever the predicted knee matches the sampled knee — i.e. the
//!    pruned window is centered where the real curve actually flattens —
//!    an accepted pruned sweep reproduces the sampled-curve water-fill
//!    decision exactly.
//!
//! Cases are generated with the in-tree deterministic `SimRng`
//! (xoshiro256++) so the suite runs with `--offline` and replays
//! identically everywhere; each assertion carries its case index, which
//! together with the fixed seed reproduces the exact inputs.

use gpu_sim::{GpuConfig, KernelDesc, SimRng};
use warped_slicer::resources::ResourceVec;
use warped_slicer::sweep::{accept_pruned, SweepWindow};
use warped_slicer::waterfill::{assert_partition_feasible, water_fill, KernelCurve};
use ws_analyze::{knee_of, predict_kernel};
use ws_workloads::suite;

/// A suite kernel with its resource footprint perturbed inside the SM's
/// feasible envelope, so every generated descriptor admits at least one
/// CTA (32..=384 threads, 16..=32 regs/thread, 0/4K/8K shared bytes fit
/// a 1536-thread / 32768-register / 48K SM with room to spare).
fn perturbed_desc(rng: &mut SimRng) -> KernelDesc {
    let bench = suite();
    let pick = rng.range_usize(bench.len());
    let mut desc = bench
        .get(pick)
        .map(|b| b.desc.clone())
        .unwrap_or_else(|| unreachable!("suite() is non-empty"));
    desc.threads_per_cta = 32 * (1 + rng.range_u64(12) as u32);
    desc.regs_per_thread = 16 + rng.range_u64(17) as u32;
    desc.shmem_per_cta = 4096 * rng.range_u64(3) as u32;
    desc.seed = rng.next_u64();
    desc
}

#[test]
fn predicted_curves_water_fill_to_feasible_quotas() {
    let cfg = GpuConfig::isca_baseline();
    let total = ResourceVec::sm_capacity(&cfg.sm);
    let mut rng = SimRng::seed_from_u64(0x9E1D_0001);
    for case in 0..48 {
        let k = 2 + rng.range_usize(2);
        let mut kernels = Vec::new();
        let mut floor = ResourceVec::zero();
        for _ in 0..k {
            let desc = perturbed_desc(&mut rng);
            let curve = predict_kernel(&desc, &cfg)
                .unwrap_or_else(|e| panic!("case {case}: perturbed kernel infeasible: {e}"));
            assert!(
                !curve.ipc.is_empty(),
                "case {case}: predictor returned an empty curve"
            );
            assert!(
                (1..=curve.max_ctas()).contains(&curve.knee),
                "case {case}: knee {} outside 1..={}",
                curve.knee,
                curve.max_ctas()
            );
            let cost = ResourceVec::cta_cost(&desc);
            floor = floor.plus(&cost);
            kernels.push(KernelCurve {
                perf: curve.ipc,
                cta_cost: cost,
            });
        }
        let part = water_fill(&kernels, total);
        if !total.covers(&floor) {
            // Even one CTA per kernel does not fit: Algorithm 1 must
            // decline (the controller then falls back to spatial).
            assert!(part.is_none(), "case {case}: infeasible floor accepted");
            continue;
        }
        let part =
            part.unwrap_or_else(|| panic!("case {case}: feasible instance returned no partition"));
        // Eq. 1: the granted footprint fits the SM.
        assert_partition_feasible(&kernels, &total, &part);
        for (i, (&q, kc)) in part.ctas.iter().zip(&kernels).enumerate() {
            assert!(
                q >= 1 && q as usize <= kc.perf.len(),
                "case {case} kernel {i}: quota {q} outside the occupancy-feasible 1..={}",
                kc.perf.len()
            );
        }
    }
}

/// A random Fig. 3-shaped curve: concave rise to a peak at a random CTA
/// count, then a flat-to-declining tail.
fn random_curve(rng: &mut SimRng, max: u32) -> Vec<f64> {
    let peak_at = 1 + rng.range_u64(u64::from(max)) as u32;
    let peak = 5.0 + rng.unit_f64() * 20.0;
    let exponent = 0.3 + rng.unit_f64() * 0.3;
    let decline = rng.unit_f64() * 0.12;
    (1..=max)
        .map(|c| {
            if c <= peak_at {
                peak * (f64::from(c) / f64::from(peak_at)).powf(exponent)
            } else {
                (peak * (1.0 - decline * f64::from(c - peak_at))).max(0.0)
            }
        })
        .collect()
}

#[test]
fn knee_matched_pruning_reproduces_the_sampled_decision() {
    let cfg = GpuConfig::isca_baseline();
    let total = ResourceVec::sm_capacity(&cfg.sm);
    let cost = ResourceVec {
        regs: 4096,
        shmem: 0,
        threads: 256,
        ctas: 1,
    };
    let partner = KernelCurve {
        perf: (1..=8).map(f64::from).collect(),
        cta_cost: cost,
    };
    let mut rng = SimRng::seed_from_u64(0x9E1D_0002);
    let mut accepted = 0usize;
    for case in 0..96 {
        let max = 4 + rng.range_u64(5) as u32;
        let sampled = random_curve(&mut rng, max);
        // "Predicted knee matches sampled knee": center the window at the
        // sampled curve's own knee.
        let window = SweepWindow::around_knee(knee_of(&sampled), max);
        let samples: Vec<(u32, f64)> = window
            .planned_caps()
            .iter()
            .filter_map(|&c| sampled.get((c - 1) as usize).map(|&v| (c, v)))
            .collect();
        let Some(pruned_curve) = accept_pruned(&samples, &window) else {
            // Guards rejected: the sampled evidence is consistent with the
            // curve still rising, so the sweep falls back — no decision to
            // compare.
            continue;
        };
        accepted += 1;
        assert_eq!(
            pruned_curve.len(),
            sampled.len(),
            "case {case}: pruned curve has the full sweep's shape"
        );
        let full = water_fill(
            &[
                KernelCurve {
                    perf: sampled.clone(),
                    cta_cost: cost,
                },
                partner.clone(),
            ],
            total,
        );
        let pruned = water_fill(
            &[
                KernelCurve {
                    perf: pruned_curve,
                    cta_cost: cost,
                },
                partner.clone(),
            ],
            total,
        );
        assert_eq!(
            full.map(|p| p.ctas),
            pruned.map(|p| p.ctas),
            "case {case}: knee-matched pruning changed the water-fill decision"
        );
    }
    assert!(
        accepted >= 32,
        "knee-matched windows should be accepted for most Fig. 3 shapes; got {accepted}/96"
    );
}
