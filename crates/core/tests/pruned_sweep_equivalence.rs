//! End-to-end acceptance test for the prediction-driven sweep pruner: the
//! pruned offline sweep (`WS_PREDICT=1` behaviour, [`SweepPlan`] built from
//! `ws-predict` static curves) must reproduce the full sweep's
//! (`WS_PREDICT=0`) water-filling quotas on every Fig. 3 pair of the
//! Table II suite. Pruning is an optimization: it may skip simulation
//! samples, never change a co-location decision.
//!
//! Both sweeps run at a short profiling window so the whole 30-pair check
//! stays test-suite fast; the guards inside `accept_pruned` are what make
//! the equivalence hold regardless of window length.

use std::collections::BTreeMap;

use gpu_sim::{GpuConfig, KernelDesc};
use warped_slicer::resources::ResourceVec;
use warped_slicer::sweep::{profile_curves_planned, SweepPlan};
use warped_slicer::waterfill::{water_fill, KernelCurve};
use warped_slicer::{profile_curves, RunConfig};
use ws_workloads::{all_pairs, suite, Benchmark};

const WINDOW: u64 = 3_000;

#[test]
fn pruned_sweep_reproduces_full_sweep_quotas_on_every_fig3_pair() {
    let gpu = GpuConfig::isca_baseline();
    let cfg = RunConfig::default();
    let pool = ws_exec::Pool::from_env();
    let benches = suite();
    let descs: Vec<&KernelDesc> = benches.iter().map(|b| &b.desc).collect();
    let maxes: Vec<u32> = benches.iter().map(Benchmark::max_ctas_baseline).collect();

    // WS_PREDICT=0 analogue: the dense 1..=N sweep of Fig. 3.
    let full = profile_curves(&pool, &descs, &maxes, WINDOW, &cfg);

    // WS_PREDICT=1 analogue: windows around each predicted knee.
    let plan = SweepPlan::from_predictions(&descs, &maxes, &gpu);
    assert!(
        plan.samples_saved() > 0,
        "the predicted plan should prune at least part of the suite sweep"
    );
    let planned = profile_curves_planned(&pool, &descs, &plan, WINDOW, &cfg);
    assert!(
        planned.samples_run <= plan.full_samples(),
        "fall-back rounds never exceed the full sweep: {} > {}",
        planned.samples_run,
        plan.full_samples()
    );
    assert!(
        planned.pruned.iter().any(|&p| p),
        "at least one kernel's pruned window should be accepted"
    );

    let index: BTreeMap<&str, usize> = benches
        .iter()
        .enumerate()
        .map(|(i, b)| (b.abbrev, i))
        .collect();
    let total = ResourceVec::sm_capacity(&gpu.sm);
    let lane = |curves: &[Vec<f64>], i: usize| KernelCurve {
        perf: curves.get(i).cloned().unwrap_or_default(),
        cta_cost: benches
            .get(i)
            .map(|b| ResourceVec::cta_cost(&b.desc))
            .unwrap_or_else(ResourceVec::zero),
    };

    for pair in all_pairs() {
        let (Some(&ia), Some(&ib)) = (index.get(pair.a.abbrev), index.get(pair.b.abbrev)) else {
            panic!(
                "pair {} references a kernel outside the suite",
                pair.label()
            );
        };
        let q_full = water_fill(&[lane(&full, ia), lane(&full, ib)], total).map(|p| p.ctas);
        let q_pruned = water_fill(
            &[lane(&planned.curves, ia), lane(&planned.curves, ib)],
            total,
        )
        .map(|p| p.ctas);
        assert_eq!(
            q_full,
            q_pruned,
            "{}: pruned sweep changed the water-fill quotas",
            pair.label()
        );
    }
}
