//! ws-store contract tests: the persisted curve cache must be *invisible*
//! in decision space — a warm-hit water-fill decision is byte-identical to
//! the uncached one for the same curves, across the full
//! insert → serialize → load → lookup round-trip — and a phase-monitor
//! trigger invalidates exactly the affected key, nothing else.

use gpu_sim::GpuConfig;
use warped_slicer::phase::PhaseMonitor;
use warped_slicer::policy::{PolicyKind, WarpedSlicerConfig};
use warped_slicer::resources::ResourceVec;
use warped_slicer::runner::{execute, run_isolation, RunConfig, SimJob, TraceOptions};
use warped_slicer::store::{CurveStore, KernelSignature, SharedCurveStore, StoreEntry};
use warped_slicer::waterfill::{water_fill, KernelCurve};
use ws_workloads::by_abbrev;

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn random_curve(rng: &mut gpu_sim::SimRng, len: usize) -> Vec<f64> {
    // Arbitrary positive values with full-precision mantissas: the divisor
    // is deliberately not a power of two, so curve points exercise the
    // shortest-roundtrip serialization on non-trivial bit patterns.
    (0..len)
        .map(|_| (1 + rng.next_u64() % 100_000) as f64 / 7_001.0)
        .collect()
}

#[test]
fn store_round_trip_reproduces_water_fill_quotas_byte_identically() {
    let cfg = GpuConfig::isca_baseline();
    let suite = ws_workloads::suite();
    let capacity = ResourceVec::sm_capacity(&cfg.sm);
    let mut rng = gpu_sim::SimRng::seed_from_u64(0x570e_0001);
    let mut feasible = 0usize;
    for round in 0..40 {
        // A random co-run: 2-3 distinct suite kernels with random curves.
        let k = 2 + (rng.next_u64() % 2) as usize;
        let mut picks: Vec<usize> = Vec::new();
        while picks.len() < k {
            let i = (rng.next_u64() as usize) % suite.len();
            if !picks.contains(&i) {
                picks.push(i);
            }
        }
        let descs: Vec<_> = picks.iter().map(|&i| &suite[i].desc).collect();
        let sigs: Vec<KernelSignature> = descs
            .iter()
            .map(|d| KernelSignature::derive(d, &cfg).expect("suite kernels pass pre-flight"))
            .collect();
        let curves: Vec<Vec<f64>> = descs
            .iter()
            .map(|_| {
                let len = 3 + (rng.next_u64() % 6) as usize;
                random_curve(&mut rng, len)
            })
            .collect();

        // The uncached path: water-fill straight from the in-memory curves.
        let kernels: Vec<KernelCurve> = descs
            .iter()
            .zip(&curves)
            .map(|(d, perf)| KernelCurve {
                perf: perf.clone(),
                cta_cost: ResourceVec::cta_cost(d),
            })
            .collect();
        let uncached = water_fill(&kernels, capacity);

        // The store path: insert, serialize, load, look up, water-fill.
        let mut store = CurveStore::new(8);
        for (sig, perf) in sigs.iter().zip(&curves) {
            assert!(
                store.insert(sig.key, StoreEntry::measured(sig, perf.clone())),
                "round {round}: finite curves insert"
            );
        }
        let text = store.to_jsonl();
        warped_slicer::validate_jsonl(&text).expect("store file is schema-valid");
        let mut loaded = CurveStore::from_jsonl(&text).expect("store file loads");
        let looked: Vec<Vec<f64>> = sigs
            .iter()
            .map(|s| loaded.lookup(&s.key).expect("warm hit").perf.clone())
            .collect();
        for (orig, got) in curves.iter().zip(&looked) {
            assert_eq!(bits(orig), bits(got), "round {round}: curve bits survive");
        }
        let cached_kernels: Vec<KernelCurve> = descs
            .iter()
            .zip(&looked)
            .map(|(d, perf)| KernelCurve {
                perf: perf.clone(),
                cta_cost: ResourceVec::cta_cost(d),
            })
            .collect();
        match (uncached, water_fill(&cached_kernels, capacity)) {
            (Some(u), Some(c)) => {
                assert_eq!(u.ctas, c.ctas, "round {round}: quotas byte-identical");
                assert_eq!(bits(&u.perf), bits(&c.perf), "round {round}: perf bits");
                feasible += 1;
            }
            (None, None) => {}
            (u, c) => panic!("round {round}: feasibility diverged: {u:?} vs {c:?}"),
        }
    }
    assert!(feasible > 10, "only {feasible}/40 rounds were feasible");
}

#[test]
fn phase_monitor_trigger_invalidates_exactly_the_affected_key() {
    // The controller's invalidation contract, driven by the real monitor:
    // whatever kernel's IPC collapses, exactly that kernel's key leaves the
    // store; every other entry keeps hitting, and the re-profile's insert
    // restores the key.
    let cfg = GpuConfig::isca_baseline();
    let suite = ws_workloads::suite();
    let sigs: Vec<KernelSignature> = suite
        .iter()
        .map(|b| KernelSignature::derive(&b.desc, &cfg).expect("suite kernels pass pre-flight"))
        .collect();
    for (i, a) in sigs.iter().enumerate() {
        for b in sigs.iter().skip(i + 1) {
            assert_ne!(a.key, b.key, "suite signatures are pairwise distinct");
        }
    }
    let mut rng = gpu_sim::SimRng::seed_from_u64(0x570e_0002);
    for round in 0..20 {
        let mut store = CurveStore::new(sigs.len());
        for sig in &sigs {
            store.insert(
                sig.key,
                StoreEntry::measured(sig, random_curve(&mut rng, 8)),
            );
        }
        let victim = (rng.next_u64() as usize) % sigs.len();
        let mut monitors: Vec<PhaseMonitor> =
            sigs.iter().map(|_| PhaseMonitor::paper_default()).collect();
        let mut invalidations = 0usize;
        for window in 0..12 {
            for (i, m) in monitors.iter_mut().enumerate() {
                // Steady 2.0 IPC everywhere; the victim collapses to 0.4
                // (an 80 % sustained drop) from window 5 on.
                let ipc = if i == victim && window >= 5 { 0.4 } else { 2.0 };
                if m.observe(ipc) {
                    assert_eq!(i, victim, "round {round}: only the collapse triggers");
                    assert!(store.invalidate(&sigs[i].key));
                    invalidations += 1;
                }
            }
        }
        assert_eq!(invalidations, 1, "round {round}: one sustained collapse");
        for (i, sig) in sigs.iter().enumerate() {
            assert_eq!(
                store.peek(&sig.key).is_some(),
                i != victim,
                "round {round}: exactly the victim's entry is gone"
            );
        }
        // The re-profile replaces the entry; lookups hit again.
        store.insert(
            sigs[victim].key,
            StoreEntry::measured(&sigs[victim], random_curve(&mut rng, 8)),
        );
        assert!(store.lookup(&sigs[victim].key).is_some());
        assert_eq!(store.len(), sigs.len());
    }
}

#[test]
fn traced_corun_decides_warm_from_the_store_with_identical_quotas() {
    // End-to-end through the runner: the same traced co-run job executed
    // twice against one shared store. The first run profiles cold and
    // inserts; the second decides warm — earlier, from memoized curves, and
    // with a byte-identical quota vector. The exported JSONL carries the
    // store_miss/store_hit audit records and stays schema-valid.
    let cfg = RunConfig {
        isolation_cycles: 12_000,
        trace: Some(TraceOptions::default()),
        ..RunConfig::default()
    };
    let a = by_abbrev("IMG").unwrap().desc;
    let b = by_abbrev("NN").unwrap().desc;
    let ta = run_isolation(&a, &cfg).target_insts;
    let tb = run_isolation(&b, &cfg).target_insts;
    let store = SharedCurveStore::with_capacity(8);
    let policy = PolicyKind::WarpedSlicer(WarpedSlicerConfig {
        store: Some(store.clone()),
        ..WarpedSlicerConfig::scaled_for(12_000)
    });
    let job = SimJob::corun(&[&a, &b], &[ta, tb], &policy, &cfg);

    let cold = execute(&job);
    assert_eq!(store.with(|s| s.len()), 2, "cold run memoized both curves");
    let warm = execute(&job);

    let cold_d = cold.decision.as_ref().expect("cold decision");
    let warm_d = warm.decision.as_ref().expect("warm decision");
    assert!(
        warm_d.decided_at < cold_d.decided_at,
        "warm decision ({}) must beat the cold profile ({})",
        warm_d.decided_at,
        cold_d.decided_at
    );
    assert_eq!(warm_d.quotas, cold_d.quotas, "quota vectors byte-identical");
    assert_eq!(warm_d.spatial_fallback, cold_d.spatial_fallback);
    for (w, c) in warm_d.measured_curves.iter().zip(&cold_d.measured_curves) {
        assert_eq!(bits(w), bits(c), "warm curves bit-equal to cold");
    }

    let cold_text =
        warped_slicer::tracefmt::jsonl(&cold, "IMG_NN", "warped-slicer", &["IMG", "NN"]);
    let warm_text =
        warped_slicer::tracefmt::jsonl(&warm, "IMG_NN", "warped-slicer", &["IMG", "NN"]);
    warped_slicer::validate_jsonl(&cold_text).expect("cold trace schema-valid");
    warped_slicer::validate_jsonl(&warm_text).expect("warm trace schema-valid");
    assert!(cold_text.contains("\"type\":\"store_miss\""));
    assert!(warm_text.contains("\"type\":\"store_hit\""));
    assert!(
        !warm_text.contains("\"type\":\"scaled_point\""),
        "no profiling samples on the warm path"
    );
}
