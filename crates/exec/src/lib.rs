//! # ws-exec
//!
//! A deterministic parallel execution layer for the Warped-Slicer harness.
//!
//! The decision pipeline this repository reproduces is embarrassingly
//! parallel: the online profiling phase evaluates one CTA count per SM as
//! `K x N` *independent* simulations, and the experiment suite multiplies
//! that by pairs, triples, policies and sensitivity variants. [`Pool`] runs
//! such batches on scoped worker threads while keeping the output
//! *byte-identical* to a serial run:
//!
//! * jobs are numbered on submission and results are collected **by job
//!   index**, so the returned `Vec` never depends on scheduling order;
//! * each job is a pure function of its description — workers share no
//!   mutable state with the jobs;
//! * with one worker the batch runs inline on the caller's thread, which is
//!   exactly the pre-pool serial harness.
//!
//! The worker count comes from `WS_EXEC_THREADS` (default: the machine's
//! available parallelism; `1` forces serial execution). A panicking job
//! fails *that job*, not the process: [`Pool::try_run`] returns
//! `Result<R, JobPanic>` per job, and [`Pool::run`] re-raises the first
//! failure (lowest job index) deterministically.
//!
//! The crate is deliberately `std`-only and free of simulator types: the
//! job model (`SimJob`) lives in `warped-slicer`'s runner, which depends on
//! this crate, not the other way around.
//!
//! All thread use in this crate goes through the scoped pool; the
//! `no-unchecked-spawn` rule of `cargo xtask lint` pins that invariant.

use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// Environment variable controlling the worker count.
pub const THREADS_ENV: &str = "WS_EXEC_THREADS";

/// Identifies one job within a batch (its submission index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub usize);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// A job that panicked instead of returning a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// Which job failed.
    pub id: JobId,
    /// The panic payload rendered as text (when it was a string).
    pub message: String,
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} panicked: {}", self.id, self.message)
    }
}

impl std::error::Error for JobPanic {}

/// Per-job result of a fallible batch.
pub type JobResult<R> = Result<R, JobPanic>;

/// Parses a `WS_EXEC_THREADS`-style value into a worker count.
///
/// `None`, an empty string, `0`, or an unparsable value fall back to the
/// machine's available parallelism (itself falling back to 1), so a
/// misconfigured environment degrades to the default rather than erroring.
#[must_use]
pub fn threads_from_env(value: Option<&str>) -> usize {
    match value.map(str::trim).and_then(|v| v.parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism().map_or(1, NonZeroUsize::get),
    }
}

/// A deterministic scoped-thread worker pool.
///
/// The pool owns no long-lived threads: every [`Pool::run`] /
/// [`Pool::try_run`] call opens a [`std::thread::scope`], spawns up to
/// `threads` workers for the duration of the batch, and joins them (scope
/// exit checks every join; a worker cannot disappear silently). This keeps
/// the type trivially `Sync` and means a `Pool` held in shared experiment
/// state never outlives its work.
#[derive(Debug)]
pub struct Pool {
    threads: usize,
    completed: AtomicU64,
}

impl Default for Pool {
    fn default() -> Self {
        Self::from_env()
    }
}

impl Pool {
    /// Creates a pool with a fixed worker count (clamped to at least 1).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            completed: AtomicU64::new(0),
        }
    }

    /// Creates a pool sized by `WS_EXEC_THREADS` (see [`threads_from_env`]).
    #[must_use]
    pub fn from_env() -> Self {
        Self::new(threads_from_env(std::env::var(THREADS_ENV).ok().as_deref()))
    }

    /// The configured worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Total jobs completed over the pool's lifetime (including panicked
    /// ones) — the harness's per-experiment job counter.
    #[must_use]
    pub fn jobs_completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Runs `f` over every job in `jobs`, returning one result per job **in
    /// submission order**, with per-job panic containment.
    ///
    /// `f` receives the job's [`JobId`] and a reference to its description.
    /// Results are keyed by job index, so the output is identical for any
    /// worker count. A panic inside `f` is caught and surfaced as
    /// `Err(JobPanic)` for that job only; the batch and the process
    /// continue.
    pub fn try_run<J, R, F>(&self, jobs: &[J], f: F) -> Vec<JobResult<R>>
    where
        J: Sync,
        R: Send,
        F: Fn(JobId, &J) -> R + Sync,
    {
        let workers = self.threads.min(jobs.len()).max(1);
        if workers == 1 {
            // Serial fast path: run inline on the caller's thread. This is
            // bit-for-bit the pre-pool behaviour (same thread, same order).
            return jobs
                .iter()
                .enumerate()
                .map(|(i, job)| {
                    let r = run_contained(JobId(i), job, &f);
                    self.completed.fetch_add(1, Ordering::Relaxed);
                    r
                })
                .collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<JobResult<R>>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = jobs.get(i) else { break };
                    let r = run_contained(JobId(i), job, &f);
                    if let Some(slot) = slots.get(i) {
                        *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(r);
                    }
                    self.completed.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    .unwrap_or_else(|| {
                        // Unreachable: the scope joined every worker and the
                        // index walk covers every slot exactly once.
                        Err(JobPanic {
                            id: JobId(usize::MAX),
                            message: "result slot never filled".to_string(),
                        })
                    })
            })
            .collect()
    }

    /// Runs `f` over every job, returning plain results in submission
    /// order.
    ///
    /// # Panics
    ///
    /// Re-raises the first failed job (lowest job index) on the caller's
    /// thread — deterministic regardless of worker count. Use
    /// [`Pool::try_run`] to keep going past failures.
    pub fn run<J, R, F>(&self, jobs: &[J], f: F) -> Vec<R>
    where
        J: Sync,
        R: Send,
        F: Fn(JobId, &J) -> R + Sync,
    {
        self.try_run(jobs, f)
            .into_iter()
            .map(|r| match r {
                Ok(v) => v,
                Err(p) => panic!("{p}"),
            })
            .collect()
    }
}

/// Runs one job under `catch_unwind`, mapping a panic to [`JobPanic`].
fn run_contained<J, R>(id: JobId, job: &J, f: &(impl Fn(JobId, &J) -> R + Sync)) -> JobResult<R> {
    catch_unwind(AssertUnwindSafe(|| f(id, job))).map_err(|payload| JobPanic {
        id,
        message: panic_message(payload.as_ref()),
    })
}

/// Renders a panic payload: `&str` and `String` payloads verbatim,
/// anything else as a placeholder.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_ordered_by_job_id_for_any_worker_count() {
        let jobs: Vec<u64> = (0..97).collect();
        let serial = Pool::new(1).run(&jobs, |_, &j| j * j);
        for threads in [2, 3, 8, 64] {
            let parallel = Pool::new(threads).run(&jobs, |_, &j| j * j);
            assert_eq!(serial, parallel, "{threads} workers reorder results");
        }
    }

    #[test]
    fn job_ids_match_submission_indices() {
        let jobs = vec![(); 40];
        let ids = Pool::new(4).run(&jobs, |id, ()| id.0);
        assert_eq!(ids, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn panicking_job_fails_that_job_not_the_process() {
        let jobs: Vec<u32> = (0..20).collect();
        for threads in [1, 4] {
            let results = Pool::new(threads).try_run(&jobs, |_, &j| {
                assert!(j != 7 && j != 13, "job {j} exploded");
                j + 100
            });
            assert_eq!(results.len(), 20);
            for (i, r) in results.iter().enumerate() {
                match r {
                    Ok(v) if i != 7 && i != 13 => assert_eq!(*v, i as u32 + 100),
                    Err(p) if i == 7 || i == 13 => {
                        assert_eq!(p.id, JobId(i));
                        assert!(p.message.contains("exploded"), "{}", p.message);
                    }
                    other => panic!("job {i} ({threads} threads): unexpected {other:?}"),
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "job#3 panicked")]
    fn run_reraises_the_first_failure_deterministically() {
        let jobs: Vec<u32> = (0..32).collect();
        let _ = Pool::new(8).run(&jobs, |_, &j| {
            assert!(j < 3 || j % 3 != 0, "multiple of three");
            j
        });
    }

    #[test]
    fn empty_batch_is_fine() {
        let out: Vec<u8> = Pool::new(4).run(&Vec::<u8>::new(), |_, &j| j);
        assert!(out.is_empty());
    }

    #[test]
    fn jobs_completed_counts_across_batches() {
        let pool = Pool::new(2);
        let _ = pool.run(&[(); 5], |_, ()| ());
        let _ = pool.try_run(&[(); 3], |id, ()| assert!(id.0 > 0, "zero"));
        assert_eq!(pool.jobs_completed(), 8);
    }

    #[test]
    fn thread_count_parsing_falls_back_to_parallelism() {
        assert_eq!(threads_from_env(Some("6")), 6);
        assert_eq!(threads_from_env(Some(" 2 ")), 2);
        let default = threads_from_env(None);
        assert!(default >= 1);
        assert_eq!(threads_from_env(Some("0")), default);
        assert_eq!(threads_from_env(Some("")), default);
        assert_eq!(threads_from_env(Some("lots")), default);
        assert_eq!(threads_from_env(Some("-3")), default);
    }

    #[test]
    fn worker_count_is_clamped_to_at_least_one() {
        assert_eq!(Pool::new(0).threads(), 1);
        assert!(Pool::default().threads() >= 1);
    }

    #[test]
    fn non_string_panic_payload_is_reported() {
        let results = Pool::new(1).try_run(&[0u8], |_, _| -> u8 { std::panic::panic_any(42u32) });
        match &results[0] {
            Err(p) => assert!(p.message.contains("non-string")),
            Ok(v) => panic!("job should have failed, got {v}"),
        }
    }
}
