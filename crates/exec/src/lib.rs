//! # ws-exec
//!
//! A deterministic parallel execution layer for the Warped-Slicer harness.
//!
//! The decision pipeline this repository reproduces is embarrassingly
//! parallel: the online profiling phase evaluates one CTA count per SM as
//! `K x N` *independent* simulations, and the experiment suite multiplies
//! that by pairs, triples, policies and sensitivity variants. [`Pool`] runs
//! that work on **persistent worker threads** while keeping the output
//! *byte-identical* to a serial run:
//!
//! * jobs are numbered on submission and results are collected **by job
//!   index**, so the returned `Vec` never depends on scheduling order;
//! * each job is a pure function of its description — workers share no
//!   mutable state with the jobs;
//! * with one worker everything runs inline on the caller's thread, which
//!   is exactly the pre-pool serial harness.
//!
//! ## Execution model
//!
//! A pool with `threads > 1` spawns its workers once, at construction, and
//! keeps them parked until work arrives. Submissions are distributed
//! round-robin across **per-worker deques**; a worker pops the *front* of
//! its own deque and, when that runs dry, **steals from the back** of its
//! siblings' deques. Stealing is what keeps heavily skewed batches (one
//! 40k-cycle simulation among 2k-cycle ones — the shape prediction-pruned
//! sweeps and fleet traces produce) from head-of-line blocking behind a
//! single dispatch counter. Determinism is unaffected: scheduling order
//! may vary run to run, but results are keyed by submission index and
//! every job is pure.
//!
//! Two submission surfaces share the same workers:
//!
//! * the **batch** API ([`Pool::run`], [`Pool::try_run`],
//!   [`Pool::try_run_observed`]) — submit a slice of jobs, block until all
//!   results are collected in submission order;
//! * the **streaming** API ([`Pool::stream`], [`Pool::submit`]) — submit
//!   jobs one at a time and drain completions *as they finish*, so
//!   downstream work (curve acceptance, water-filling) can overlap with
//!   simulation still in flight. See `profile_curves_planned` and the
//!   pipelined decide harness in `ws-bench`.
//!
//! The worker count comes from `WS_EXEC_THREADS` (default: the machine's
//! available parallelism; `1` forces serial execution). A panicking job
//! fails *that job*, not the process: [`Pool::try_run`] returns
//! `Result<R, JobPanic>` per job, and [`Pool::run`] re-raises the first
//! failure (lowest job index) deterministically — even when the panicking
//! job was stolen by another worker.
//!
//! The crate is deliberately `std`-only and free of simulator types: the
//! job model (`SimJob`) lives in `warped-slicer`'s runner, which depends on
//! this crate, not the other way around.
//!
//! All thread use in this crate binds and joins its worker handles (the
//! pool's `Drop` joins every worker), and no completion channel receive is
//! silently discarded; the `no-unchecked-spawn` rule of `cargo xtask lint`
//! pins both invariants.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, PoisonError};

/// Environment variable controlling the worker count.
pub const THREADS_ENV: &str = "WS_EXEC_THREADS";

/// Identifies one job within a batch or stream (its submission index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub usize);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// A job that panicked instead of returning a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// Which job failed.
    pub id: JobId,
    /// The panic payload rendered as text (when it was a string).
    pub message: String,
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} panicked: {}", self.id, self.message)
    }
}

impl std::error::Error for JobPanic {}

/// Per-job result of a fallible batch.
pub type JobResult<R> = Result<R, JobPanic>;

/// Progress report for one completed job of an observed batch.
///
/// Reports are delivered on the **caller's thread**, one per completion,
/// with `seq` counting completions `1..=total` — so observation order is
/// deterministic (strictly increasing `seq`) at any worker count even
/// though `id` reflects the actual (scheduling-dependent) finish order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchProgress {
    /// 1-based completion count (the `seq`-th job to finish).
    pub seq: usize,
    /// Total jobs in the batch.
    pub total: usize,
    /// The job that finished.
    pub id: JobId,
}

/// Parses a `WS_EXEC_THREADS`-style value into a worker count.
///
/// `None`, an empty string, `0`, or an unparsable value fall back to the
/// machine's available parallelism (itself falling back to 1), so a
/// misconfigured environment degrades to the default rather than erroring.
#[must_use]
pub fn threads_from_env(value: Option<&str>) -> usize {
    match value.map(str::trim).and_then(|v| v.parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism().map_or(1, NonZeroUsize::get),
    }
}

/// A queued unit of work: the job closure plus its result plumbing.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// Predicate state protected by the park mutex: the shutdown flag and the
/// number of queued (not yet claimed) tasks across every deque.
#[derive(Debug, Default)]
struct ParkState {
    shutdown: bool,
    queued: usize,
}

/// Shared state between the pool handle and its persistent workers.
struct Core {
    /// One deque per worker; submissions round-robin, owners pop the
    /// front, thieves steal the back.
    deques: Vec<Mutex<VecDeque<Task>>>,
    /// Round-robin cursor for external submissions.
    rr: AtomicUsize,
    /// Park predicate (queued count + shutdown flag).
    state: Mutex<ParkState>,
    /// Wakes parked workers when work arrives or shutdown begins.
    cond: Condvar,
}

impl Core {
    /// Enqueues a task on the next deque in round-robin order and wakes
    /// the workers.
    fn push(&self, task: Task) {
        let n = self.deques.len().max(1);
        let w = self.rr.fetch_add(1, Ordering::Relaxed) % n;
        if let Some(dq) = self.deques.get(w) {
            dq.lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(task);
        }
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.queued += 1;
        drop(state);
        self.cond.notify_all();
    }

    /// Claims one task: the front of `home`'s own deque first, then a
    /// back-steal over the other deques in ring order.
    fn find_task(&self, home: usize) -> Option<Task> {
        let n = self.deques.len();
        for k in 0..n {
            let Some(dq) = self.deques.get((home + k) % n) else {
                continue;
            };
            let mut dq = dq.lock().unwrap_or_else(PoisonError::into_inner);
            let task = if k == 0 {
                dq.pop_front()
            } else {
                dq.pop_back()
            };
            if task.is_some() {
                drop(dq);
                let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
                state.queued = state.queued.saturating_sub(1);
                return task;
            }
        }
        None
    }

    /// The persistent worker body: claim-and-run until shutdown, parking
    /// on the condvar while no work is queued. Shutdown wins over queued
    /// work, so a pool dropped with jobs still queued exits promptly; the
    /// tasks it strands are discarded by [`Pool`]'s `Drop` (nothing can be
    /// waiting on them — streams and handles borrow the pool).
    fn worker_loop(&self, home: usize) {
        loop {
            if let Some(task) = self.find_task(home) {
                task();
                continue;
            }
            let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if state.shutdown {
                    return;
                }
                if state.queued > 0 {
                    break;
                }
                state = self
                    .cond
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
    }
}

/// A deterministic persistent work-stealing worker pool.
///
/// Workers are spawned once at construction and live until the pool is
/// dropped; `Drop` signals shutdown and joins every worker handle. With
/// `threads == 1` no workers exist and every submission runs inline on the
/// caller's thread (the serial harness, bit for bit).
pub struct Pool {
    threads: usize,
    core: Option<Arc<Core>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    completed: Arc<AtomicU64>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.threads)
            .field("jobs_completed", &self.jobs_completed())
            .finish()
    }
}

impl Default for Pool {
    fn default() -> Self {
        Self::from_env()
    }
}

impl Pool {
    /// Creates a pool with a fixed worker count (clamped to at least 1).
    /// Counts above 1 spawn that many persistent workers immediately.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let completed = Arc::new(AtomicU64::new(0));
        if threads == 1 {
            return Self {
                threads,
                core: None,
                workers: Vec::new(),
                completed,
            };
        }
        let core = Arc::new(Core {
            deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            rr: AtomicUsize::new(0),
            state: Mutex::new(ParkState::default()),
            cond: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|i| {
                let core = Arc::clone(&core);
                let spawned = std::thread::Builder::new()
                    .name(format!("ws-exec-{i}"))
                    .spawn(move || core.worker_loop(i));
                match spawned {
                    Ok(handle) => handle,
                    Err(e) => panic!("ws-exec: could not spawn worker thread {i}: {e}"),
                }
            })
            .collect();
        Self {
            threads,
            core: Some(core),
            workers,
            completed,
        }
    }

    /// Creates a pool sized by `WS_EXEC_THREADS` (see [`threads_from_env`]).
    #[must_use]
    pub fn from_env() -> Self {
        Self::new(threads_from_env(std::env::var(THREADS_ENV).ok().as_deref()))
    }

    /// The configured worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Total jobs completed over the pool's lifetime (including panicked
    /// ones) — the harness's per-experiment job counter.
    #[must_use]
    pub fn jobs_completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Opens a completion stream: submit jobs one at a time with
    /// [`Stream::submit`], drain results in *finish order* with
    /// [`Stream::next`]. Job ids number the stream's submissions from 0.
    #[must_use]
    pub fn stream<R: Send + 'static>(&self) -> Stream<'_, R> {
        let (tx, rx) = mpsc::channel();
        Stream {
            pool: self,
            tx,
            rx,
            ready: VecDeque::new(),
            submitted: 0,
            delivered: 0,
        }
    }

    /// Submits one job and returns a handle joined independently of any
    /// batch. On a serial pool the job runs inline before this returns.
    pub fn submit<R, F>(&self, f: F) -> JobHandle<'_, R>
    where
        R: Send + 'static,
        F: FnOnce() -> R + Send + 'static,
    {
        let id = JobId(0);
        match &self.core {
            None => {
                let r = contain(id, f);
                self.completed.fetch_add(1, Ordering::Relaxed);
                JobHandle {
                    id,
                    state: HandleState::Ready(r),
                    _pool: PhantomData,
                }
            }
            Some(core) => {
                let (tx, rx) = mpsc::channel();
                let completed = Arc::clone(&self.completed);
                core.push(Box::new(move || {
                    let r = contain(id, f);
                    completed.fetch_add(1, Ordering::Relaxed);
                    // A dropped handle discards the result on purpose.
                    let _ = tx.send(r);
                }));
                JobHandle {
                    id,
                    state: HandleState::Pending(rx),
                    _pool: PhantomData,
                }
            }
        }
    }

    /// Runs `f` over every job in `jobs`, returning one result per job **in
    /// submission order**, with per-job panic containment.
    ///
    /// `f` receives the job's [`JobId`] and a reference to its description.
    /// Results are collected into pre-sized slots keyed by job index — one
    /// writer per slot, on the caller's thread, no locks — so the output is
    /// identical for any worker count. A panic inside `f` is caught and
    /// surfaced as `Err(JobPanic)` for that job only; the batch and the
    /// process continue.
    pub fn try_run<J, R, F>(&self, jobs: &[J], f: F) -> Vec<JobResult<R>>
    where
        J: Clone + Send + 'static,
        R: Send + 'static,
        F: Fn(JobId, &J) -> R + Send + Sync + 'static,
    {
        self.try_run_observed(jobs, f, |_| {})
    }

    /// [`Pool::try_run`] with a per-completion progress observer.
    ///
    /// `observe` runs on the caller's thread once per finished job, in
    /// completion-count order ([`BatchProgress::seq`] goes `1..=total`
    /// strictly increasing), carrying the finishing job's [`JobId`]. That
    /// makes progress reporting deterministic in *shape* at any worker
    /// count; only the `id` field reflects actual scheduling.
    ///
    /// # Panics
    ///
    /// Panics if the executor's delivery invariant breaks (a result slot
    /// filled twice, never filled, or workers gone with jobs outstanding)
    /// — these indicate a bug in the executor itself, never in `f`.
    pub fn try_run_observed<J, R, F, O>(
        &self,
        jobs: &[J],
        f: F,
        mut observe: O,
    ) -> Vec<JobResult<R>>
    where
        J: Clone + Send + 'static,
        R: Send + 'static,
        F: Fn(JobId, &J) -> R + Send + Sync + 'static,
        O: FnMut(BatchProgress),
    {
        let total = jobs.len();
        let Some(core) = &self.core else {
            // Serial fast path: run inline on the caller's thread. This is
            // bit-for-bit the pre-pool behaviour (same thread, same order).
            return jobs
                .iter()
                .enumerate()
                .map(|(i, job)| {
                    let id = JobId(i);
                    let r = contain(id, || f(id, job));
                    self.completed.fetch_add(1, Ordering::Relaxed);
                    observe(BatchProgress {
                        seq: i + 1,
                        total,
                        id,
                    });
                    r
                })
                .collect();
        };
        let f = Arc::new(f);
        let (tx, rx) = mpsc::channel::<(JobId, JobResult<R>)>();
        for (i, job) in jobs.iter().enumerate() {
            let id = JobId(i);
            let job = job.clone();
            let f = Arc::clone(&f);
            let tx = tx.clone();
            let completed = Arc::clone(&self.completed);
            core.push(Box::new(move || {
                let r = contain(id, move || f(id, &job));
                completed.fetch_add(1, Ordering::Relaxed);
                // The batch collector below outlives every task it
                // submitted, so this send only fails if the collector
                // already panicked — nothing left to notify either way.
                let _ = tx.send((id, r));
            }));
        }
        drop(tx);
        // Pre-sized result slots, written only by this (caller) thread as
        // completions drain — one writer per index, no locks.
        let mut slots: Vec<Option<JobResult<R>>> = (0..total).map(|_| None).collect();
        for seq in 1..=total {
            let (id, r) = match rx.recv() {
                Ok(msg) => msg,
                Err(_) => panic!(
                    "ws-exec invariant violated: workers disconnected with {} of {total} jobs outstanding",
                    total - (seq - 1)
                ),
            };
            match slots.get_mut(id.0) {
                Some(slot @ None) => *slot = Some(r),
                Some(Some(_)) => panic!("ws-exec invariant violated: {id} completed twice"),
                None => panic!("ws-exec invariant violated: unknown {id} in a batch of {total}"),
            }
            observe(BatchProgress { seq, total, id });
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.unwrap_or_else(|| {
                    panic!("ws-exec invariant violated: job#{i} never delivered a result")
                })
            })
            .collect()
    }

    /// Runs `f` over every job, returning plain results in submission
    /// order.
    ///
    /// # Panics
    ///
    /// Re-raises the first failed job (lowest job index) on the caller's
    /// thread — deterministic regardless of worker count or which worker
    /// stole the panicking job. Use [`Pool::try_run`] to keep going past
    /// failures.
    pub fn run<J, R, F>(&self, jobs: &[J], f: F) -> Vec<R>
    where
        J: Clone + Send + 'static,
        R: Send + 'static,
        F: Fn(JobId, &J) -> R + Send + Sync + 'static,
    {
        self.try_run(jobs, f)
            .into_iter()
            .map(|r| match r {
                Ok(v) => v,
                Err(p) => panic!("{p}"),
            })
            .collect()
    }
}

impl Drop for Pool {
    /// Signals shutdown, joins every worker, and discards tasks still
    /// queued (no [`Stream`] or [`JobHandle`] can outlive the pool — they
    /// borrow it — so no result is ever silently lost to a waiter).
    fn drop(&mut self) {
        let Some(core) = self.core.take() else { return };
        {
            let mut state = core.state.lock().unwrap_or_else(PoisonError::into_inner);
            state.shutdown = true;
        }
        core.cond.notify_all();
        let mut worker_panic = None;
        for handle in self.workers.drain(..) {
            if let Err(payload) = handle.join() {
                worker_panic = Some(payload);
            }
        }
        for dq in &core.deques {
            dq.lock().unwrap_or_else(PoisonError::into_inner).clear();
        }
        if let Some(payload) = worker_panic {
            // Workers contain job panics with catch_unwind, so a panic
            // escaping the worker loop is an executor bug: surface it.
            std::panic::resume_unwind(payload);
        }
    }
}

/// Result plumbing for a single-job [`JobHandle`].
enum HandleState<R> {
    /// Serial pool: the job already ran inline.
    Ready(JobResult<R>),
    /// Parallel pool: the result arrives on this channel.
    Pending(mpsc::Receiver<JobResult<R>>),
}

/// A handle to one job submitted with [`Pool::submit`]; join it to get the
/// result. Borrows the pool, so the pool cannot shut down underneath it.
pub struct JobHandle<'p, R> {
    id: JobId,
    state: HandleState<R>,
    _pool: PhantomData<&'p Pool>,
}

impl<R> JobHandle<'_, R> {
    /// The submitted job's id (always `job#0` for single submissions).
    #[must_use]
    pub fn id(&self) -> JobId {
        self.id
    }

    /// Blocks until the job finishes, with panic containment.
    ///
    /// # Panics
    ///
    /// Panics only on an executor invariant violation (the worker dropped
    /// the result channel without sending) — a job panic comes back as
    /// `Err(JobPanic)`.
    pub fn try_join(self) -> JobResult<R> {
        match self.state {
            HandleState::Ready(r) => r,
            HandleState::Pending(rx) => match rx.recv() {
                Ok(r) => r,
                Err(_) => panic!(
                    "ws-exec invariant violated: result channel for {} closed without a result",
                    self.id
                ),
            },
        }
    }

    /// Blocks until the job finishes, re-raising its panic if it failed.
    ///
    /// # Panics
    ///
    /// Re-raises the job's panic on the caller's thread.
    pub fn join(self) -> R {
        match self.try_join() {
            Ok(v) => v,
            Err(p) => panic!("{p}"),
        }
    }
}

/// A streaming submission session on a [`Pool`].
///
/// Jobs submitted through one stream are numbered `0, 1, 2, ...` in
/// submission order; [`Stream::next`] yields `(JobId, JobResult)` pairs in
/// **completion order**, which lets callers overlap downstream computation
/// with jobs still in flight. On a serial pool each submission runs inline
/// and completions are queued in submission order — the degenerate
/// (deterministically ordered) case of the same API.
pub struct Stream<'p, R: Send + 'static> {
    pool: &'p Pool,
    tx: mpsc::Sender<(JobId, JobResult<R>)>,
    rx: mpsc::Receiver<(JobId, JobResult<R>)>,
    /// Completions from inline (serial) execution, in submission order.
    ready: VecDeque<(JobId, JobResult<R>)>,
    submitted: usize,
    delivered: usize,
}

impl<R: Send + 'static> Stream<'_, R> {
    /// Submits one job; returns its stream-local id.
    pub fn submit<F>(&mut self, f: F) -> JobId
    where
        F: FnOnce() -> R + Send + 'static,
    {
        let id = JobId(self.submitted);
        self.submitted += 1;
        match &self.pool.core {
            None => {
                let r = contain(id, f);
                self.pool.completed.fetch_add(1, Ordering::Relaxed);
                self.ready.push_back((id, r));
            }
            Some(core) => {
                let tx = self.tx.clone();
                let completed = Arc::clone(&self.pool.completed);
                core.push(Box::new(move || {
                    let r = contain(id, f);
                    completed.fetch_add(1, Ordering::Relaxed);
                    // A dropped stream discards in-flight results on
                    // purpose; completion accounting already happened.
                    let _ = tx.send((id, r));
                }));
            }
        }
        id
    }

    /// Jobs submitted so far.
    #[must_use]
    pub fn submitted(&self) -> usize {
        self.submitted
    }

    /// Jobs submitted but not yet delivered via [`Stream::next`].
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.submitted - self.delivered - self.ready.len()
    }
}

impl<R: Send + 'static> Iterator for Stream<'_, R> {
    type Item = (JobId, JobResult<R>);

    /// Blocks for the next completion, in finish order; `None` once every
    /// submitted job has been delivered. More jobs may be submitted after
    /// a `None` — the stream then resumes yielding.
    fn next(&mut self) -> Option<(JobId, JobResult<R>)> {
        if self.delivered == self.submitted {
            return None;
        }
        if let Some(done) = self.ready.pop_front() {
            self.delivered += 1;
            return Some(done);
        }
        // The stream holds its own sender clone, so the channel can never
        // disconnect while jobs are outstanding: recv blocks until a
        // worker finishes one.
        match self.rx.recv() {
            Ok(done) => {
                self.delivered += 1;
                Some(done)
            }
            Err(_) => panic!(
                "ws-exec invariant violated: stream channel closed with {} jobs in flight",
                self.in_flight()
            ),
        }
    }
}

/// Runs one job closure under `catch_unwind`, mapping a panic to
/// [`JobPanic`].
fn contain<R>(id: JobId, f: impl FnOnce() -> R) -> JobResult<R> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|payload| JobPanic {
        id,
        message: panic_message(payload.as_ref()),
    })
}

/// Renders a panic payload: `&str` and `String` payloads verbatim,
/// anything else as a placeholder.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic busy-work whose cost scales with `n` — the exec-level
    /// stand-in for a simulation window of `n` cycles.
    fn spin(n: u64) -> u64 {
        let mut acc = n;
        for i in 0..n {
            acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i);
        }
        acc
    }

    #[test]
    fn results_are_ordered_by_job_id_for_any_worker_count() {
        let jobs: Vec<u64> = (0..97).collect();
        let serial = Pool::new(1).run(&jobs, |_, &j| j * j);
        for threads in [2, 3, 8, 64] {
            let parallel = Pool::new(threads).run(&jobs, |_, &j| j * j);
            assert_eq!(serial, parallel, "{threads} workers reorder results");
        }
    }

    #[test]
    fn job_ids_match_submission_indices() {
        let jobs = vec![(); 40];
        let ids = Pool::new(4).run(&jobs, |id, ()| id.0);
        assert_eq!(ids, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn skewed_job_sizes_stay_deterministic_under_stealing() {
        // One 40k-unit job among 2k-unit jobs: the shape that head-of-line
        // blocks a counter-dispatch pool and exercises back-stealing here.
        let jobs: Vec<u64> = (0..48)
            .map(|i| if i == 5 { 40_000 } else { 2_000 })
            .collect();
        let serial = Pool::new(1).run(&jobs, |_, &j| spin(j));
        let stolen = Pool::new(8).run(&jobs, |_, &j| spin(j));
        assert_eq!(serial, stolen);
    }

    #[test]
    fn panicking_job_fails_that_job_not_the_process() {
        let jobs: Vec<u32> = (0..20).collect();
        for threads in [1, 4] {
            let results = Pool::new(threads).try_run(&jobs, |_, &j| {
                assert!(j != 7 && j != 13, "job {j} exploded");
                j + 100
            });
            assert_eq!(results.len(), 20);
            for (i, r) in results.iter().enumerate() {
                match r {
                    Ok(v) if i != 7 && i != 13 => assert_eq!(*v, i as u32 + 100),
                    Err(p) if i == 7 || i == 13 => {
                        assert_eq!(p.id, JobId(i));
                        assert!(p.message.contains("exploded"), "{}", p.message);
                    }
                    other => panic!("job {i} ({threads} threads): unexpected {other:?}"),
                }
            }
        }
    }

    #[test]
    fn stolen_panicking_job_is_contained_and_attributed() {
        // A heavy head job pins its owner, so trailing jobs — including
        // the panicking one — get claimed by stealing workers; containment
        // and attribution must be identical to the serial run.
        let jobs: Vec<u64> = (0..64).map(|i| if i == 0 { 40_000 } else { 200 }).collect();
        let results = Pool::new(8).try_run(&jobs, |id, &j| {
            assert!(id.0 != 57, "stolen job exploded");
            spin(j)
        });
        for (i, r) in results.iter().enumerate() {
            match r {
                Err(p) if i == 57 => assert_eq!(p.id, JobId(57)),
                Ok(_) if i != 57 => {}
                other => panic!("job {i}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "job#3 panicked")]
    fn run_reraises_the_first_failure_deterministically() {
        let jobs: Vec<u32> = (0..32).collect();
        let _ = Pool::new(8).run(&jobs, |_, &j| {
            assert!(j < 3 || j % 3 != 0, "multiple of three");
            j
        });
    }

    #[test]
    fn empty_batch_is_fine() {
        let out: Vec<u8> = Pool::new(4).run(&Vec::<u8>::new(), |_, &j| j);
        assert!(out.is_empty());
    }

    #[test]
    fn jobs_completed_counts_across_batches() {
        let pool = Pool::new(2);
        let _ = pool.run(&[(); 5], |_, ()| ());
        let _ = pool.try_run(&[(); 3], |id, ()| assert!(id.0 > 0, "zero"));
        assert_eq!(pool.jobs_completed(), 8);
    }

    #[test]
    fn thread_count_parsing_falls_back_to_parallelism() {
        assert_eq!(threads_from_env(Some("6")), 6);
        assert_eq!(threads_from_env(Some(" 2 ")), 2);
        let default = threads_from_env(None);
        assert!(default >= 1);
        assert_eq!(threads_from_env(Some("0")), default);
        assert_eq!(threads_from_env(Some("")), default);
        assert_eq!(threads_from_env(Some("lots")), default);
        assert_eq!(threads_from_env(Some("-3")), default);
    }

    #[test]
    fn worker_count_is_clamped_to_at_least_one() {
        assert_eq!(Pool::new(0).threads(), 1);
        assert!(Pool::default().threads() >= 1);
    }

    #[test]
    fn non_string_panic_payload_is_reported() {
        let results = Pool::new(1).try_run(&[0u8], |_, _| -> u8 { std::panic::panic_any(42u32) });
        match &results[0] {
            Err(p) => assert!(p.message.contains("non-string")),
            Ok(v) => panic!("job should have failed, got {v}"),
        }
    }

    #[test]
    fn stream_delivers_every_submission_exactly_once() {
        for threads in [1, 8] {
            let pool = Pool::new(threads);
            let mut stream = pool.stream::<u64>();
            for j in 0..40u64 {
                let weight = if j == 3 { 40_000 } else { 2_000 };
                stream.submit(move || spin(weight).wrapping_add(j));
            }
            assert_eq!(stream.submitted(), 40);
            let mut by_id: Vec<Option<u64>> = vec![None; 40];
            for (id, r) in stream.by_ref() {
                let slot = by_id
                    .get_mut(id.0)
                    .unwrap_or_else(|| panic!("unknown {id}"));
                assert!(slot.is_none(), "{id} delivered twice");
                *slot = Some(match r {
                    Ok(v) => v,
                    Err(p) => panic!("{p}"),
                });
            }
            assert_eq!(stream.in_flight(), 0);
            let expect: Vec<u64> = (0..40u64)
                .map(|j| spin(if j == 3 { 40_000 } else { 2_000 }).wrapping_add(j))
                .collect();
            let got: Vec<u64> = by_id.into_iter().map(|v| v.unwrap_or(0)).collect();
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn stream_overlaps_drain_with_in_flight_jobs() {
        let pool = Pool::new(4);
        let mut stream = pool.stream::<u64>();
        for _ in 0..8 {
            stream.submit(|| spin(10_000));
        }
        // Drain one completion while seven are still queued or running,
        // then keep submitting from the drain loop (the pipelined-sweep
        // resubmission pattern).
        let first = stream.next();
        assert!(first.is_some());
        stream.submit(|| spin(100));
        let mut seen = 1;
        for (_, r) in stream {
            assert!(r.is_ok());
            seen += 1;
        }
        assert_eq!(seen, 9);
    }

    #[test]
    fn single_submit_handle_joins_inline_and_parallel() {
        for threads in [1, 4] {
            let pool = Pool::new(threads);
            let handle = pool.submit(|| spin(2_000));
            assert_eq!(handle.id(), JobId(0));
            assert_eq!(handle.join(), spin(2_000));
        }
        let pool = Pool::new(4);
        let failing = pool.submit(|| -> u8 { panic!("handle job exploded") });
        match failing.try_join() {
            Err(p) => assert!(p.message.contains("exploded")),
            Ok(v) => panic!("expected a contained panic, got {v}"),
        }
    }

    #[test]
    fn progress_is_observed_in_completion_count_order() {
        // Satellite pin: at 1 and at 8 workers the observer sees seq ==
        // 1..=n; at 1 worker ids arrive in submission order; at 8 workers
        // the id multiset matches the submissions even under heavy skew.
        let jobs: Vec<u64> = (0..32)
            .map(|i| if i == 2 { 40_000 } else { 2_000 })
            .collect();
        for threads in [1usize, 8] {
            let pool = Pool::new(threads);
            let mut seen: Vec<BatchProgress> = Vec::new();
            let results = pool.try_run_observed(&jobs, |_, &j| spin(j), |p| seen.push(p));
            assert_eq!(results.len(), jobs.len());
            let seqs: Vec<usize> = seen.iter().map(|p| p.seq).collect();
            assert_eq!(
                seqs,
                (1..=jobs.len()).collect::<Vec<_>>(),
                "threads={threads}"
            );
            assert!(seen.iter().all(|p| p.total == jobs.len()));
            let mut ids: Vec<usize> = seen.iter().map(|p| p.id.0).collect();
            if threads == 1 {
                assert_eq!(ids, (0..jobs.len()).collect::<Vec<_>>());
            }
            ids.sort_unstable();
            assert_eq!(ids, (0..jobs.len()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn shutdown_with_jobs_still_queued_is_graceful() {
        // Drop the stream (and then the pool) with most of the batch still
        // queued: the pool must join its workers promptly, discarding the
        // stranded tasks, without hanging or panicking.
        let pool = Pool::new(4);
        let mut stream = pool.stream::<u64>();
        for _ in 0..256 {
            stream.submit(|| spin(20_000));
        }
        let first = stream.next();
        assert!(first.is_some());
        drop(stream);
        drop(pool);
    }

    #[test]
    fn pool_reuse_across_batches_and_streams() {
        let pool = Pool::new(4);
        let a = pool.run(&(0..16u64).collect::<Vec<_>>(), |_, &j| j + 1);
        assert_eq!(a[15], 16);
        let mut s = pool.stream::<u64>();
        s.submit(|| 7);
        assert!(matches!(s.next(), Some((JobId(0), Ok(7)))));
        let b = pool.run(&(0..16u64).collect::<Vec<_>>(), |_, &j| j * 2);
        assert_eq!(b[15], 30);
        assert_eq!(pool.jobs_completed(), 33);
    }
}
