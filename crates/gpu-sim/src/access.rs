//! Global-memory address-stream generation.
//!
//! Each synthetic kernel owns a disjoint slice of the physical address space
//! (so co-scheduled kernels never false-share cache lines) and draws its
//! global accesses from one of four patterns. The patterns are the minimal
//! set that reproduces the four performance-scaling archetypes of Fig. 3a of
//! the paper: streaming and random traffic saturate DRAM bandwidth, tiled
//! traffic stays cache-resident, and bounded-footprint traffic creates L1
//! sensitivity (performance peaks and then degrades as more CTAs thrash the
//! L1).

use crate::rng::SimRng;

/// Cache-line-granular address (byte address >> log2(line size)).
pub type LineAddr = u64;

/// How many address bits each CTA's private region spans (in lines).
const CTA_REGION_BITS: u32 = 16; // 64 Ki lines = 8 MB at 128 B lines
/// Offset of the kernel-shared region within a kernel's address slice.
const SHARED_REGION_BIT: u32 = 36;
/// Address bits reserved per kernel slice.
const KERNEL_SLICE_BITS: u32 = 40;

/// Capacity of each CTA's private region, in lines. Streaming/tiled/hot-cold
/// walks wrap within this many lines; a declared footprint beyond it cannot
/// be disjoint from the neighbouring CTA's region.
pub const CTA_REGION_LINES: u64 = 1 << CTA_REGION_BITS;

/// Capacity of a kernel's shared (inter-CTA) region, in lines: the span from
/// the shared-region base to the end of the kernel's address slice. A random
/// footprint beyond this would bleed into the next kernel's slice and
/// false-share cache lines across kernels.
pub const SHARED_REGION_LINES: u64 = (1 << KERNEL_SLICE_BITS) - (1 << SHARED_REGION_BIT);

/// Number of CTAs whose private regions fit below the shared region. Grids
/// beyond this alias their private regions onto the shared region.
pub const MAX_DISJOINT_CTAS: u64 = 1 << (SHARED_REGION_BIT - CTA_REGION_BITS);

/// Base line address of kernel slot `slot`'s address slice.
#[must_use]
pub fn kernel_base(slot: usize) -> LineAddr {
    ((slot as u64) + 1) << KERNEL_SLICE_BITS
}

/// Base line address of the private region of CTA `cta_index` of kernel
/// `slot`.
#[must_use]
pub fn cta_region_base(slot: usize, cta_index: u64) -> LineAddr {
    kernel_base(slot) + (cta_index << CTA_REGION_BITS)
}

/// Base line address of kernel `slot`'s shared (inter-CTA) region.
#[must_use]
pub fn shared_region_base(slot: usize) -> LineAddr {
    kernel_base(slot) | (1 << SHARED_REGION_BIT)
}

/// A global-memory access pattern.
///
/// `transactions` is the number of 128-byte memory transactions one warp
/// memory instruction generates: 1 is a fully coalesced access, 32 is fully
/// divergent.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPattern {
    /// Sequential walk over a per-CTA region far larger than any cache:
    /// every line is touched once. Models Blackscholes/LBM-style streaming.
    Streaming {
        /// Transactions per warp memory instruction.
        transactions: u32,
    },
    /// Uniformly random lines over a kernel-shared footprint. With a
    /// footprint much larger than the L2 this models BFS/KNN-style irregular
    /// traffic.
    Random {
        /// Footprint of the shared region, in lines.
        footprint_lines: u64,
        /// Transactions per warp memory instruction.
        transactions: u32,
    },
    /// Mixed per-CTA private footprint and kernel-shared footprint, both
    /// bounded. When few CTAs are resident the hot lines fit in the L1 and
    /// hit; as CTAs are added the aggregate footprint exceeds the L1 and
    /// performance degrades — the "L1 cache sensitive" archetype (NN, MVP).
    BoundedFootprint {
        /// Lines in each CTA's private footprint.
        private_lines: u32,
        /// Lines in the kernel-shared footprint.
        shared_lines: u64,
        /// Probability that an access targets the shared footprint.
        shared_frac: f64,
        /// Transactions per warp memory instruction.
        transactions: u32,
    },
    /// Blocked/tiled access: the warp revisits a small tile `reuse` times
    /// before advancing. Models DXT/HOT/MM-style software-blocked kernels
    /// with very low miss rates.
    Tiled {
        /// Tile size in lines.
        tile_lines: u32,
        /// Number of passes over a tile before advancing to the next.
        reuse: u32,
        /// Transactions per warp memory instruction.
        transactions: u32,
    },
    /// Per-CTA *hot* reused lines mixed with a per-CTA *cold* sequential
    /// stream. The hot regions of co-resident CTAs compete for L1 capacity
    /// (performance peaks below full occupancy) while the cold stream
    /// produces CTA-proportional DRAM traffic — the matrix-vector-product
    /// shape: reused vector block + streamed matrix rows.
    HotCold {
        /// Lines in each CTA's hot (reused) footprint.
        hot_lines: u32,
        /// Probability that an access targets the hot footprint.
        hot_frac: f64,
        /// Transactions per warp memory instruction.
        transactions: u32,
    },
}

impl AccessPattern {
    /// Transactions per warp memory instruction for this pattern.
    #[must_use]
    pub fn transactions(&self) -> u32 {
        match *self {
            Self::Streaming { transactions }
            | Self::Random { transactions, .. }
            | Self::BoundedFootprint { transactions, .. }
            | Self::Tiled { transactions, .. }
            | Self::HotCold { transactions, .. } => transactions.clamp(1, 32),
        }
    }
}

/// Per-warp address-stream generator state.
///
/// Streams are deterministic functions of (kernel slot, CTA index, warp
/// index, seed), so repeated simulations of the same workload produce
/// identical traffic.
#[derive(Debug, Clone)]
pub struct AddressStream {
    kernel_slot: usize,
    cta_index: u64,
    seq: u64,
    rng: SimRng,
}

impl AddressStream {
    /// Creates the stream for warp `warp_in_cta` of CTA `cta_index` of the
    /// kernel in slot `kernel_slot`.
    #[must_use]
    pub fn new(kernel_slot: usize, cta_index: u64, warp_in_cta: u32, seed: u64) -> Self {
        let stream_seed = seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((kernel_slot as u64) << 48)
            .wrapping_add(cta_index << 16)
            .wrapping_add(u64::from(warp_in_cta));
        Self {
            kernel_slot,
            cta_index,
            seq: u64::from(warp_in_cta) << 32,
            rng: SimRng::seed_from_u64(stream_seed),
        }
    }

    /// Generates the line addresses for the next warp memory instruction,
    /// appending `pattern.transactions()` lines to `out`.
    pub fn next_access(&mut self, pattern: &AccessPattern, out: &mut Vec<LineAddr>) {
        let t = pattern.transactions();
        match *pattern {
            AccessPattern::Streaming { .. } => {
                let base = cta_region_base(self.kernel_slot, self.cta_index);
                for _ in 0..t {
                    // Wrap within the CTA region so long runs stay in bounds.
                    out.push(base + (self.seq & ((1 << CTA_REGION_BITS) - 1)));
                    self.seq += 1;
                }
            }
            AccessPattern::Random {
                footprint_lines, ..
            } => {
                let base = shared_region_base(self.kernel_slot);
                let fp = footprint_lines.max(1);
                for _ in 0..t {
                    out.push(base + self.rng.range_u64(fp));
                }
            }
            AccessPattern::BoundedFootprint {
                private_lines,
                shared_lines,
                shared_frac,
                ..
            } => {
                let private_base = cta_region_base(self.kernel_slot, self.cta_index);
                let shared_base = shared_region_base(self.kernel_slot);
                let pl = u64::from(private_lines.max(1));
                let sl = shared_lines.max(1);
                for _ in 0..t {
                    if self.rng.unit_f64() < shared_frac {
                        out.push(shared_base + self.rng.range_u64(sl));
                    } else {
                        out.push(private_base + self.rng.range_u64(pl));
                    }
                }
            }
            AccessPattern::HotCold {
                hot_lines,
                hot_frac,
                ..
            } => {
                let base = cta_region_base(self.kernel_slot, self.cta_index);
                let hl = u64::from(hot_lines.max(1));
                for _ in 0..t {
                    if self.rng.unit_f64() < hot_frac {
                        out.push(base + self.rng.range_u64(hl));
                    } else {
                        // Cold stream: sequential walk above the hot region.
                        out.push(base + hl + (self.seq & ((1 << CTA_REGION_BITS) - 1)));
                        self.seq += 1;
                    }
                }
            }
            AccessPattern::Tiled {
                tile_lines, reuse, ..
            } => {
                let base = cta_region_base(self.kernel_slot, self.cta_index);
                let tl = u64::from(tile_lines.max(1));
                let ru = u64::from(reuse.max(1));
                for _ in 0..t {
                    let tile = self.seq / (tl * ru);
                    let within = self.seq % tl;
                    out.push(base + ((tile * tl + within) & ((1 << CTA_REGION_BITS) - 1)));
                    self.seq += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_slices_are_disjoint() {
        // The top of any address produced by kernel 0 can never collide with
        // kernel 1's slice.
        let k0 = kernel_base(0);
        let k1 = kernel_base(1);
        assert!(k1 - k0 >= 1 << KERNEL_SLICE_BITS);
        assert!(shared_region_base(0) < k1);
        assert!(cta_region_base(0, 1 << 20) < k1);
    }

    #[test]
    fn streaming_walks_sequentially() {
        let mut s = AddressStream::new(0, 3, 0, 7);
        let pat = AccessPattern::Streaming { transactions: 1 };
        let mut out = Vec::new();
        for _ in 0..4 {
            s.next_access(&pat, &mut out);
        }
        assert_eq!(out.len(), 4);
        for w in out.windows(2) {
            assert_eq!(w[1], w[0] + 1);
        }
    }

    #[test]
    fn streams_are_deterministic() {
        let pat = AccessPattern::Random {
            footprint_lines: 1 << 20,
            transactions: 4,
        };
        let mut a = AddressStream::new(1, 2, 3, 99);
        let mut b = AddressStream::new(1, 2, 3, 99);
        let (mut out_a, mut out_b) = (Vec::new(), Vec::new());
        for _ in 0..16 {
            a.next_access(&pat, &mut out_a);
            b.next_access(&pat, &mut out_b);
        }
        assert_eq!(out_a, out_b);
    }

    #[test]
    fn random_stays_in_footprint() {
        let fp = 1024;
        let pat = AccessPattern::Random {
            footprint_lines: fp,
            transactions: 8,
        };
        let mut s = AddressStream::new(0, 0, 0, 1);
        let mut out = Vec::new();
        for _ in 0..100 {
            s.next_access(&pat, &mut out);
        }
        let base = shared_region_base(0);
        assert!(out.iter().all(|&l| l >= base && l < base + fp));
    }

    #[test]
    fn bounded_footprint_mixes_regions() {
        let pat = AccessPattern::BoundedFootprint {
            private_lines: 16,
            shared_lines: 64,
            shared_frac: 0.5,
            transactions: 1,
        };
        let mut s = AddressStream::new(0, 5, 1, 3);
        let mut out = Vec::new();
        for _ in 0..400 {
            s.next_access(&pat, &mut out);
        }
        let shared_base = shared_region_base(0);
        let n_shared = out.iter().filter(|&&l| l >= shared_base).count();
        // Roughly half the accesses should land in the shared region.
        assert!(n_shared > 100 && n_shared < 300, "n_shared = {n_shared}");
    }

    #[test]
    fn tiled_reuses_lines() {
        let pat = AccessPattern::Tiled {
            tile_lines: 8,
            reuse: 4,
            transactions: 1,
        };
        let mut s = AddressStream::new(0, 0, 0, 1);
        let mut out = Vec::new();
        for _ in 0..64 {
            s.next_access(&pat, &mut out);
        }
        // 64 accesses over 8-line tiles reused 4x touch only 16 distinct lines.
        let mut distinct: Vec<_> = out.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), 16);
    }

    #[test]
    fn hot_cold_mixes_reuse_and_streaming() {
        let pat = AccessPattern::HotCold {
            hot_lines: 8,
            hot_frac: 0.5,
            transactions: 1,
        };
        let mut s = AddressStream::new(0, 0, 0, 1);
        let mut out = Vec::new();
        for _ in 0..400 {
            s.next_access(&pat, &mut out);
        }
        let base = cta_region_base(0, 0);
        let hot = out.iter().filter(|&&l| l < base + 8).count();
        assert!(hot > 120 && hot < 280, "hot accesses: {hot}");
        // Cold lines never repeat.
        let mut cold: Vec<_> = out.iter().filter(|&&l| l >= base + 8).copied().collect();
        let n = cold.len();
        cold.sort_unstable();
        cold.dedup();
        assert_eq!(cold.len(), n, "cold stream must be distinct lines");
    }

    #[test]
    fn transactions_clamped_to_warp_size() {
        let pat = AccessPattern::Streaming { transactions: 64 };
        assert_eq!(pat.transactions(), 32);
        let pat = AccessPattern::Random {
            footprint_lines: 10,
            transactions: 0,
        };
        assert_eq!(pat.transactions(), 1);
    }
}
