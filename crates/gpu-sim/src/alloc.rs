//! Intra-SM storage-resource allocation.
//!
//! Registers and shared memory are allocated *contiguously* per CTA, exactly
//! as on real hardware — which is what makes allocation-strategy choice
//! matter (Fig. 2 of the paper): a first-come-first-serve interleaving of
//! two kernels' CTAs fragments the space so that a departed small CTA's hole
//! cannot host a larger CTA of the other kernel.
//!
//! [`LinearAllocator`] is a first-fit contiguous allocator over a
//! one-dimensional resource; [`SmResources`] bundles the four per-SM
//! resources (registers, shared memory, thread slots, CTA slots) and hands
//! out [`CtaResources`] leases.

use crate::config::SmConfig;
use crate::kernel::KernelDesc;

/// A contiguous extent of a one-dimensional resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First unit of the extent.
    pub start: u32,
    /// Extent length in units; zero-length regions are valid leases for
    /// kernels that use none of the resource.
    pub len: u32,
}

impl Region {
    /// The whole `[0, capacity)` window.
    #[must_use]
    pub fn whole(capacity: u32) -> Self {
        Self {
            start: 0,
            len: capacity,
        }
    }

    /// One-past-the-end unit.
    #[must_use]
    pub fn end(&self) -> u32 {
        self.start + self.len
    }

    /// Whether `other` lies entirely within `self`.
    #[must_use]
    pub fn contains(&self, other: &Region) -> bool {
        other.start >= self.start && other.end() <= self.end()
    }
}

/// First-fit contiguous allocator.
///
/// # Examples
///
/// Fragmentation is observable, exactly what Fig. 2 of the paper is about:
///
/// ```
/// use gpu_sim::LinearAllocator;
///
/// let mut a = LinearAllocator::new(100);
/// let small = a.alloc(20).unwrap();
/// let _big = a.alloc(60).unwrap();
/// a.free(small);
/// // 40 units are free, but not contiguously:
/// assert_eq!(a.capacity() - a.used(), 40);
/// assert_eq!(a.largest_free(), 20);
/// assert!(a.alloc(40).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct LinearAllocator {
    capacity: u32,
    /// Live blocks, sorted by start offset.
    blocks: Vec<Region>,
    used: u32,
}

impl LinearAllocator {
    /// Creates an allocator over `[0, capacity)`.
    #[must_use]
    pub fn new(capacity: u32) -> Self {
        Self {
            capacity,
            blocks: Vec::new(),
            used: 0,
        }
    }

    /// Total capacity in units.
    #[must_use]
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Units currently allocated.
    #[must_use]
    pub fn used(&self) -> u32 {
        self.used
    }

    /// Allocates `len` units anywhere, first fit.
    pub fn alloc(&mut self, len: u32) -> Option<Region> {
        self.alloc_in_window(len, Region::whole(self.capacity))
    }

    /// Allocates `len` units by first fit inside `window`.
    ///
    /// Zero-length requests always succeed with a zero-length region and do
    /// not consume space.
    pub fn alloc_in_window(&mut self, len: u32, window: Region) -> Option<Region> {
        if len == 0 {
            return Some(Region {
                start: window.start,
                len: 0,
            });
        }
        let lo = window.start;
        let hi = window.end().min(self.capacity);
        if lo >= hi || hi - lo < len {
            return None;
        }
        let mut cursor = lo;
        let mut insert_at = self.blocks.len();
        for (i, b) in self.blocks.iter().enumerate() {
            if b.end() <= cursor {
                continue;
            }
            if b.start >= hi {
                insert_at = i;
                break;
            }
            // Gap [cursor, b.start) within the window?
            if b.start >= cursor && b.start - cursor >= len {
                insert_at = i;
                break;
            }
            cursor = cursor.max(b.end());
            insert_at = i + 1;
        }
        if hi.saturating_sub(cursor) < len && insert_at == self.blocks.len() {
            return None;
        }
        // Re-check the chosen gap end against both window and next block.
        let gap_end = self.blocks.get(insert_at).map_or(hi, |b| b.start.min(hi));
        if cursor < lo || gap_end.saturating_sub(cursor) < len {
            return None;
        }
        let region = Region { start: cursor, len };
        self.blocks.insert(insert_at, region);
        self.used += len;
        if crate::invariant::enabled() {
            self.assert_consistent();
        }
        Some(region)
    }

    /// Verifies the allocator's internal accounting, panicking on the first
    /// inconsistency found.
    ///
    /// Runs automatically after every mutation when strict invariants are
    /// compiled in (see [`crate::invariant::enabled`]); exposed so embedders
    /// and tests can audit an allocator at any point.
    ///
    /// # Panics
    ///
    /// Panics if the live-block list is out of order, overlapping, or out of
    /// bounds, or if the `used` counter disagrees with the blocks.
    pub fn assert_consistent(&self) {
        let mut prev_end = 0u32;
        let mut sum = 0u64;
        for (i, b) in self.blocks.iter().enumerate() {
            assert!(
                b.end() <= self.capacity,
                "allocator corruption: block {i} [{}, {}) exceeds capacity {}",
                b.start,
                b.end(),
                self.capacity
            );
            assert!(
                i == 0 || b.start >= prev_end,
                "allocator corruption: block {i} [{}, {}) overlaps or precedes \
                 its neighbour ending at {prev_end}",
                b.start,
                b.end()
            );
            prev_end = b.end();
            sum += u64::from(b.len);
        }
        assert!(
            u64::from(self.used) == sum,
            "allocator corruption: used counter {} disagrees with the {} units \
             held by live blocks",
            self.used,
            sum
        );
    }

    /// Returns a previously allocated region to the free pool.
    ///
    /// Zero-length regions are accepted and ignored.
    ///
    /// # Panics
    ///
    /// Panics if `region` is not a live allocation (double free or foreign
    /// region).
    pub fn free(&mut self, region: Region) {
        if region.len == 0 {
            return;
        }
        let idx = self
            .blocks
            .iter()
            .position(|b| *b == region)
            // Documented panic: a double free or foreign region is caller
            // corruption the allocator must not paper over.
            // xtask-allow: no-unwrap, panic-free-accounting
            .expect("free of a region that is not allocated");
        self.blocks.remove(idx);
        self.used -= region.len;
        if crate::invariant::enabled() {
            self.assert_consistent();
        }
    }

    /// Size of the largest free contiguous extent inside `window`.
    #[must_use]
    pub fn largest_free_in_window(&self, window: Region) -> u32 {
        let lo = window.start;
        let hi = window.end().min(self.capacity);
        let mut best = 0;
        let mut cursor = lo;
        for b in &self.blocks {
            if b.end() <= lo {
                continue;
            }
            if b.start >= hi {
                break;
            }
            if b.start > cursor {
                best = best.max(b.start.min(hi) - cursor);
            }
            cursor = cursor.max(b.end());
        }
        if hi > cursor {
            best = best.max(hi - cursor);
        }
        best
    }

    /// Size of the largest free contiguous extent anywhere.
    #[must_use]
    pub fn largest_free(&self) -> u32 {
        self.largest_free_in_window(Region::whole(self.capacity))
    }

    /// Total free units inside `window` (possibly fragmented).
    #[must_use]
    pub fn free_in_window(&self, window: Region) -> u32 {
        let lo = window.start;
        let hi = window.end().min(self.capacity);
        let mut used = 0;
        for b in &self.blocks {
            let s = b.start.max(lo);
            let e = b.end().min(hi);
            if e > s {
                used += e - s;
            }
        }
        (hi - lo).saturating_sub(used)
    }
}

/// Per-kernel allocation window restricting where a kernel's CTAs may land.
///
/// Policies build these: `Even` gives each kernel a `1/K` slice of every
/// resource; Warped-Slicer sizes each slice to the chosen quota.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionWindow {
    /// Register-file window, in registers.
    pub regs: Region,
    /// Shared-memory window, in bytes.
    pub shmem: Region,
    /// Maximum CTAs of the kernel on this SM.
    pub max_ctas: u32,
    /// Maximum threads of the kernel on this SM.
    pub max_threads: u32,
}

/// The resources a resident CTA holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtaResources {
    /// Register-file extent.
    pub regs: Region,
    /// Shared-memory extent.
    pub shmem: Region,
    /// Thread slots held.
    pub threads: u32,
}

/// The four per-SM resources.
#[derive(Debug, Clone)]
pub struct SmResources {
    /// Register file (units: registers).
    pub regs: LinearAllocator,
    /// Shared memory (units: bytes).
    pub shmem: LinearAllocator,
    threads_used: u32,
    max_threads: u32,
    ctas_used: u32,
    max_ctas: u32,
}

impl SmResources {
    /// Creates the resource pool for one SM.
    #[must_use]
    pub fn new(cfg: &SmConfig) -> Self {
        Self {
            regs: LinearAllocator::new(cfg.max_registers),
            shmem: LinearAllocator::new(cfg.shared_mem_bytes),
            threads_used: 0,
            max_threads: cfg.max_threads,
            ctas_used: 0,
            max_ctas: cfg.max_ctas,
        }
    }

    /// Threads currently resident.
    #[must_use]
    pub fn threads_used(&self) -> u32 {
        self.threads_used
    }

    /// CTAs currently resident.
    #[must_use]
    pub fn ctas_used(&self) -> u32 {
        self.ctas_used
    }

    /// CTA-slot capacity.
    #[must_use]
    pub fn max_ctas(&self) -> u32 {
        self.max_ctas
    }

    /// Thread-slot capacity.
    #[must_use]
    pub fn max_threads(&self) -> u32 {
        self.max_threads
    }

    /// Attempts to lease the resources for one CTA of `desc`, optionally
    /// restricted to a [`PartitionWindow`]. `kernel_ctas` / `kernel_threads`
    /// are the kernel's current residency on this SM, checked against the
    /// window's quota.
    pub fn try_alloc(
        &mut self,
        desc: &KernelDesc,
        window: Option<&PartitionWindow>,
        kernel_ctas: u32,
        kernel_threads: u32,
    ) -> Option<CtaResources> {
        if self.ctas_used >= self.max_ctas
            || self.threads_used + desc.threads_per_cta > self.max_threads
        {
            return None;
        }
        let (reg_window, shm_window) = match window {
            Some(w) => {
                if kernel_ctas >= w.max_ctas
                    || kernel_threads + desc.threads_per_cta > w.max_threads
                {
                    return None;
                }
                (w.regs, w.shmem)
            }
            None => (
                Region::whole(self.regs.capacity()),
                Region::whole(self.shmem.capacity()),
            ),
        };
        let regs = self.regs.alloc_in_window(desc.regs_per_cta(), reg_window)?;
        let Some(shmem) = self.shmem.alloc_in_window(desc.shmem_per_cta, shm_window) else {
            self.regs.free(regs);
            return None;
        };
        self.threads_used += desc.threads_per_cta;
        self.ctas_used += 1;
        if crate::invariant::enabled() {
            self.assert_consistent();
        }
        Some(CtaResources {
            regs,
            shmem,
            threads: desc.threads_per_cta,
        })
    }

    /// Returns a CTA's lease.
    ///
    /// # Panics
    ///
    /// Panics if the lease's regions are not live allocations (a corrupted
    /// or double-freed lease), via [`LinearAllocator::free`].
    pub fn free(&mut self, res: CtaResources) {
        self.regs.free(res.regs);
        self.shmem.free(res.shmem);
        self.threads_used -= res.threads;
        self.ctas_used -= 1;
        if crate::invariant::enabled() {
            self.assert_consistent();
        }
    }

    /// Verifies occupancy accounting across all four resources, panicking on
    /// the first inconsistency.
    ///
    /// Runs automatically after every lease and free when strict invariants
    /// are compiled in (see [`crate::invariant::enabled`]).
    ///
    /// # Panics
    ///
    /// Panics if either allocator is internally inconsistent or if the CTA /
    /// thread occupancy exceeds the SM's capacity.
    pub fn assert_consistent(&self) {
        self.regs.assert_consistent();
        self.shmem.assert_consistent();
        assert!(
            self.ctas_used <= self.max_ctas,
            "SM occupancy corruption: {} resident CTAs exceed the {} CTA slots",
            self.ctas_used,
            self.max_ctas
        );
        assert!(
            self.threads_used <= self.max_threads,
            "SM occupancy corruption: {} resident threads exceed the {} thread slots",
            self.threads_used,
            self.max_threads
        );
        assert!(
            self.ctas_used > 0 || (self.threads_used == 0 && self.regs.used() == 0),
            "SM occupancy corruption: {} threads / {} registers held with no \
             resident CTA",
            self.threads_used,
            self.regs.used()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessPattern;
    use crate::config::GpuConfig;
    use crate::program::ProgramSpec;

    #[test]
    fn first_fit_fills_lowest_gap() {
        let mut a = LinearAllocator::new(100);
        let b0 = a.alloc(30).unwrap();
        let b1 = a.alloc(30).unwrap();
        let _b2 = a.alloc(30).unwrap();
        assert_eq!((b0.start, b1.start), (0, 30));
        a.free(b0);
        // 30-unit hole at 0 and 10 free at the end: a 20-unit request takes
        // the hole.
        let b3 = a.alloc(20).unwrap();
        assert_eq!(b3.start, 0);
    }

    #[test]
    fn fragmentation_blocks_large_requests() {
        // The Fig. 2a scenario: interleave small (A) and large (B) blocks;
        // freeing the As leaves holes that cannot host another B.
        let mut a = LinearAllocator::new(120);
        let mut small = Vec::new();
        for _ in 0..3 {
            small.push(a.alloc(20).unwrap()); // A
            a.alloc(20).unwrap(); // B stays
        }
        for s in small {
            a.free(s);
        }
        assert_eq!(a.free_in_window(Region::whole(120)), 60);
        assert_eq!(a.largest_free(), 20);
        // 60 units are free but no 40-unit block fits.
        assert!(a.alloc(40).is_none());
    }

    #[test]
    fn window_confines_allocation() {
        let mut a = LinearAllocator::new(100);
        let w = Region { start: 50, len: 50 };
        let b = a.alloc_in_window(30, w).unwrap();
        assert!(w.contains(&b));
        assert!(a.alloc_in_window(30, w).is_none());
        // The other half is untouched.
        assert_eq!(a.largest_free_in_window(Region { start: 0, len: 50 }), 50);
    }

    #[test]
    fn zero_length_allocations_are_free() {
        let mut a = LinearAllocator::new(10);
        let z = a.alloc(0).unwrap();
        assert_eq!(z.len, 0);
        assert_eq!(a.used(), 0);
        a.free(z);
        assert_eq!(a.used(), 0);
    }

    #[test]
    #[should_panic(expected = "not allocated")]
    fn double_free_panics() {
        let mut a = LinearAllocator::new(10);
        let b = a.alloc(5).unwrap();
        a.free(b);
        a.free(b);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut a = LinearAllocator::new(10);
        assert!(a.alloc(11).is_none());
        let _ = a.alloc(10).unwrap();
        assert!(a.alloc(1).is_none());
    }

    fn kernel(threads: u32, regs: u32, shmem: u32) -> KernelDesc {
        KernelDesc {
            name: "k".into(),
            grid_ctas: 10,
            threads_per_cta: threads,
            regs_per_thread: regs,
            shmem_per_cta: shmem,
            program: ProgramSpec::default().generate(),
            iterations: 1,
            pattern: AccessPattern::Streaming { transactions: 1 },
            icache_miss_rate: 0.0,
            shmem_conflict_degree: 1,
            seed: 0,
        }
    }

    #[test]
    fn sm_resources_roundtrip() {
        let cfg = GpuConfig::isca_baseline().sm;
        let mut r = SmResources::new(&cfg);
        let k = kernel(256, 20, 4096);
        let lease = r.try_alloc(&k, None, 0, 0).unwrap();
        assert_eq!(r.ctas_used(), 1);
        assert_eq!(r.threads_used(), 256);
        assert_eq!(r.regs.used(), 256 * 20);
        assert_eq!(r.shmem.used(), 4096);
        r.free(lease);
        assert_eq!(r.ctas_used(), 0);
        assert_eq!(r.threads_used(), 0);
        assert_eq!(r.regs.used(), 0);
        assert_eq!(r.shmem.used(), 0);
    }

    #[test]
    fn sm_resources_respect_cta_slots() {
        let cfg = GpuConfig::isca_baseline().sm;
        let mut r = SmResources::new(&cfg);
        let k = kernel(32, 1, 0);
        for _ in 0..8 {
            assert!(r.try_alloc(&k, None, 0, 0).is_some());
        }
        assert!(r.try_alloc(&k, None, 0, 0).is_none());
    }

    #[test]
    fn window_quota_limits_kernel_ctas() {
        let cfg = GpuConfig::isca_baseline().sm;
        let mut r = SmResources::new(&cfg);
        let k = kernel(32, 1, 0);
        let w = PartitionWindow {
            regs: Region::whole(cfg.max_registers),
            shmem: Region::whole(cfg.shared_mem_bytes),
            max_ctas: 2,
            max_threads: cfg.max_threads,
        };
        assert!(r.try_alloc(&k, Some(&w), 0, 0).is_some());
        assert!(r.try_alloc(&k, Some(&w), 1, 32).is_some());
        assert!(r.try_alloc(&k, Some(&w), 2, 64).is_none());
    }

    #[test]
    #[should_panic(expected = "not allocated")]
    fn corrupted_lease_is_rejected_on_free() {
        let cfg = GpuConfig::isca_baseline().sm;
        let mut r = SmResources::new(&cfg);
        let k = kernel(256, 20, 4096);
        let mut lease = r.try_alloc(&k, None, 0, 0).unwrap();
        // Tamper with the lease: shift the register extent.
        lease.regs.start += 1;
        r.free(lease);
    }

    #[test]
    #[should_panic(expected = "allocator corruption")]
    fn overlapping_blocks_are_detected() {
        let mut a = LinearAllocator::new(100);
        let _ = a.alloc(10).unwrap();
        // Corrupt the internal block list directly: an overlapping block.
        a.blocks.push(Region { start: 5, len: 10 });
        a.assert_consistent();
    }

    #[test]
    #[should_panic(expected = "used counter")]
    fn used_counter_drift_is_detected() {
        let mut a = LinearAllocator::new(100);
        let _ = a.alloc(10).unwrap();
        a.used = 99;
        a.assert_consistent();
    }

    #[test]
    fn consistency_holds_through_a_churn_sequence() {
        let cfg = GpuConfig::isca_baseline().sm;
        let mut r = SmResources::new(&cfg);
        let k = kernel(128, 16, 1024);
        let mut leases = Vec::new();
        for _ in 0..4 {
            leases.push(r.try_alloc(&k, None, 0, 0).unwrap());
        }
        r.free(leases.remove(1));
        r.free(leases.remove(2));
        leases.push(r.try_alloc(&k, None, 0, 0).unwrap());
        for l in leases {
            r.free(l);
        }
        r.assert_consistent();
        assert_eq!(r.ctas_used(), 0);
    }

    #[test]
    fn shmem_failure_rolls_back_registers() {
        let cfg = GpuConfig::isca_baseline().sm;
        let mut r = SmResources::new(&cfg);
        // Kernel wanting more shared memory than exists.
        let k = kernel(32, 1, cfg.shared_mem_bytes + 1);
        assert!(r.try_alloc(&k, None, 0, 0).is_none());
        assert_eq!(r.regs.used(), 0);
        assert_eq!(r.ctas_used(), 0);
    }
}
