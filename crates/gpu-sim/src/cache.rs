//! Set-associative cache model with true-LRU replacement.
//!
//! The model is tag-only (no data payload): a probe either hits or misses.
//! Fills happen explicitly (allocate-on-fill), which lets the L1 model defer
//! allocation until the memory response returns, as GPGPU-Sim does.

use crate::access::LineAddr;

#[derive(Debug, Clone, Copy)]
struct CacheLine {
    tag: u64,
    last_use: u64,
    valid: bool,
}

/// Result of a cache probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeResult {
    /// Line present; LRU state updated.
    Hit,
    /// Line absent.
    Miss,
}

/// Tag-only set-associative cache with LRU replacement.
///
/// # Examples
///
/// ```
/// use gpu_sim::{ProbeResult, SetAssocCache};
///
/// let mut l1 = SetAssocCache::new(16 * 1024, 4, 128);
/// assert_eq!(l1.access(42), ProbeResult::Miss);
/// l1.fill(42); // allocate-on-fill, as the SM does when the response returns
/// assert_eq!(l1.access(42), ProbeResult::Hit);
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    sets: Vec<CacheLine>,
    num_sets: u64,
    assoc: usize,
    clock: u64,
    accesses: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Creates a cache of `size_bytes` capacity with `assoc` ways and
    /// `line_bytes` lines.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly into at least one set.
    #[must_use]
    pub fn new(size_bytes: u32, assoc: u32, line_bytes: u32) -> Self {
        let lines = size_bytes / line_bytes;
        assert!(
            assoc > 0 && lines >= assoc && lines.is_multiple_of(assoc),
            "invalid cache geometry: {size_bytes} B / {assoc}-way / {line_bytes} B lines"
        );
        let num_sets = u64::from(lines / assoc);
        Self {
            sets: vec![
                CacheLine {
                    tag: 0,
                    last_use: 0,
                    valid: false,
                };
                (lines) as usize
            ],
            num_sets,
            assoc: assoc as usize,
            clock: 0,
            accesses: 0,
            misses: 0,
        }
    }

    fn set_range(&self, line: LineAddr) -> std::ops::Range<usize> {
        let set = (line % self.num_sets) as usize;
        set * self.assoc..(set + 1) * self.assoc
    }

    /// Probes for `line`, updating LRU on a hit and recording statistics.
    pub fn access(&mut self, line: LineAddr) -> ProbeResult {
        self.clock += 1;
        self.accesses += 1;
        let tag = line / self.num_sets;
        let clock = self.clock;
        let range = self.set_range(line);
        for way in &mut self.sets[range] {
            if way.valid && way.tag == tag {
                way.last_use = clock;
                return ProbeResult::Hit;
            }
        }
        self.misses += 1;
        ProbeResult::Miss
    }

    /// Probes without touching LRU or statistics.
    #[must_use]
    pub fn peek(&self, line: LineAddr) -> bool {
        let tag = line / self.num_sets;
        self.sets[self.set_range(line)]
            .iter()
            .any(|w| w.valid && w.tag == tag)
    }

    /// Installs `line`, evicting the LRU way if the set is full. Installing
    /// an already-present line refreshes its LRU position.
    pub fn fill(&mut self, line: LineAddr) {
        self.clock += 1;
        let tag = line / self.num_sets;
        let clock = self.clock;
        let range = self.set_range(line);
        let set = &mut self.sets[range];
        if let Some(way) = set.iter_mut().find(|w| w.valid && w.tag == tag) {
            way.last_use = clock;
            return;
        }
        let victim = set
            .iter_mut()
            .min_by_key(|w| if w.valid { w.last_use } else { 0 })
            // Invariant: the constructor rejects assoc == 0, so a set is
            // never empty. xtask-allow: no-unwrap
            .expect("assoc > 0");
        *victim = CacheLine {
            tag,
            last_use: clock,
            valid: true,
        };
    }

    /// Lifetime probe count.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Lifetime miss count.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate over the cache's lifetime, or 0 if never accessed.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Drops all lines and statistics.
    pub fn reset(&mut self) {
        for w in &mut self.sets {
            w.valid = false;
        }
        self.accesses = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache {
        // 4 sets x 2 ways.
        SetAssocCache::new(8 * 128, 2, 128)
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small();
        assert_eq!(c.access(42), ProbeResult::Miss);
        c.fill(42);
        assert_eq!(c.access(42), ProbeResult::Hit);
        assert_eq!(c.accesses(), 2);
        assert_eq!(c.misses(), 1);
        assert!((c.miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Lines 0, 4, 8 all map to set 0 (4 sets).
        c.fill(0);
        c.fill(4);
        let _ = c.access(0); // 0 is now MRU
        c.fill(8); // evicts 4
        assert!(c.peek(0));
        assert!(!c.peek(4));
        assert!(c.peek(8));
    }

    #[test]
    fn refill_refreshes_lru() {
        let mut c = small();
        c.fill(0);
        c.fill(4);
        c.fill(0); // refresh, not duplicate
        c.fill(8); // evicts 4, not 0
        assert!(c.peek(0));
        assert!(!c.peek(4));
    }

    #[test]
    fn peek_does_not_touch_stats() {
        let mut c = small();
        c.fill(3);
        assert!(c.peek(3));
        assert!(!c.peek(7));
        assert_eq!(c.accesses(), 0);
    }

    #[test]
    fn distinct_sets_do_not_interfere() {
        let mut c = small();
        for line in 0..4 {
            c.fill(line);
        }
        for line in 0..4 {
            assert_eq!(c.access(line), ProbeResult::Hit);
        }
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = small();
        // 16 lines cycling through an 8-line cache with LRU => ~0% hits on a
        // sequential sweep.
        for pass in 0..4 {
            for line in 0..16 {
                let r = c.access(line);
                if pass > 0 {
                    assert_eq!(r, ProbeResult::Miss);
                }
                c.fill(line);
            }
        }
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = small();
        c.fill(1);
        let _ = c.access(1);
        c.reset();
        assert!(!c.peek(1));
        assert_eq!(c.accesses(), 0);
        assert_eq!(c.misses(), 0);
    }

    #[test]
    #[should_panic(expected = "invalid cache geometry")]
    fn bad_geometry_rejected() {
        let _ = SetAssocCache::new(100, 3, 128);
    }
}
