//! Simulator configuration.
//!
//! [`GpuConfig`] mirrors Table I of the Warped-Slicer paper (the GPGPU-Sim
//! v3.2.2 baseline the authors used), plus the "large" configuration from the
//! sensitivity study in Section V-H.

/// Per-SM resource capacities and pipeline parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SmConfig {
    /// Maximum resident threads per SM (Table I: 1536).
    pub max_threads: u32,
    /// Number of 32-bit registers in the register file (Table I: 32768).
    pub max_registers: u32,
    /// Maximum resident CTAs (thread blocks) per SM (Table I: 8).
    pub max_ctas: u32,
    /// Shared memory capacity in bytes (Table I: 48 KB).
    pub shared_mem_bytes: u32,
    /// Number of warp schedulers per SM (Table I: 2).
    pub num_schedulers: u32,
    /// SIMT lane width per scheduler (Table I: 16x2). A 32-thread warp
    /// therefore occupies an ALU for `32 / simt_width` cycles.
    pub simt_width: u32,
    /// Number of SFU lanes per scheduler. A warp occupies an SFU for
    /// `32 / sfu_width` cycles.
    pub sfu_width: u32,
    /// Number of LSU address lanes per scheduler: one fully coalesced
    /// 32-thread access occupies the LSU for `32 / lsu_width` cycles, plus
    /// one cycle per extra memory transaction.
    pub lsu_width: u32,
    /// ALU result latency in cycles (issue to operand-ready).
    pub alu_latency: u32,
    /// SFU result latency in cycles.
    pub sfu_latency: u32,
    /// Shared-memory access latency in cycles.
    pub shmem_latency: u32,
    /// L1 hit latency in cycles.
    pub l1_hit_latency: u32,
    /// Decoded-instruction buffer entries per warp.
    pub ibuffer_entries: u32,
    /// Cycles to fetch+decode one instruction into the i-buffer on an
    /// i-cache hit.
    pub fetch_latency: u32,
    /// Extra penalty cycles for an instruction-cache miss.
    pub icache_miss_penalty: u32,
    /// Shared fetch-port width: instructions the SM front end can fetch
    /// per cycle across all warps. Fetch-hungry kernels (large bodies,
    /// i-cache misses) saturate this and show i-buffer-empty stalls.
    pub fetch_width: u32,
}

impl SmConfig {
    /// Warp size in threads. Fixed at 32, as in all NVIDIA generations the
    /// paper models.
    pub const WARP_SIZE: u32 = 32;

    /// Maximum resident warps implied by the thread capacity.
    #[must_use]
    pub fn max_warps(&self) -> u32 {
        self.max_threads / Self::WARP_SIZE
    }
}

/// L1 data cache geometry (per SM).
#[derive(Debug, Clone, PartialEq)]
pub struct L1Config {
    /// Total capacity in bytes (Table I: 16 KB).
    pub size_bytes: u32,
    /// Associativity (Table I: 4-way).
    pub assoc: u32,
    /// Cache line size in bytes.
    pub line_bytes: u32,
    /// Miss-status holding registers (Table I: 64).
    pub mshr_entries: u32,
    /// Maximum misses merged into a single MSHR entry.
    pub mshr_max_merged: u32,
}

/// L2 cache geometry. The L2 is banked: one bank (slice) per memory channel.
#[derive(Debug, Clone, PartialEq)]
pub struct L2Config {
    /// Capacity per memory-channel slice in bytes (Table I: 128 KB/channel).
    pub size_bytes_per_channel: u32,
    /// Associativity (Table I: 8-way).
    pub assoc: u32,
    /// Cache line size in bytes.
    pub line_bytes: u32,
    /// Bank access latency in core cycles.
    pub latency: u32,
}

/// GDDR5 DRAM timing, in DRAM command-clock cycles (Table I: 924 MHz).
#[derive(Debug, Clone, PartialEq)]
pub struct DramTiming {
    /// CAS latency.
    pub t_cl: u32,
    /// Row precharge.
    pub t_rp: u32,
    /// Row cycle.
    pub t_rc: u32,
    /// Row active time.
    pub t_ras: u32,
    /// RAS-to-CAS delay.
    pub t_rcd: u32,
    /// Row-to-row activate delay (different banks).
    pub t_rrd: u32,
    /// Data-burst occupancy of the channel per 128-byte transaction.
    pub t_burst: u32,
}

/// Memory-subsystem configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MemConfig {
    /// Number of memory channels / memory controllers (Table I: 6).
    pub num_channels: u32,
    /// DRAM banks per channel.
    pub banks_per_channel: u32,
    /// DRAM row size in bytes (determines row-buffer hit behaviour).
    pub row_bytes: u32,
    /// GDDR5 timing parameters.
    pub timing: DramTiming,
    /// DRAM command clock in MHz (Table I: 924).
    pub dram_clock_mhz: u32,
    /// One-way interconnect latency between an SM and an L2 slice, in core
    /// cycles.
    pub icnt_latency: u32,
    /// Per-channel request-queue capacity; a full queue back-pressures L2.
    pub dram_queue_entries: u32,
}

/// Top-level GPU configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Number of SMs ("compute units", Table I: 16).
    pub num_sms: u32,
    /// Core clock in MHz (Table I: 1400).
    pub core_clock_mhz: u32,
    /// Per-SM configuration.
    pub sm: SmConfig,
    /// L1 data cache configuration.
    pub l1: L1Config,
    /// L2 cache configuration.
    pub l2: L2Config,
    /// Memory-subsystem configuration.
    pub mem: MemConfig,
}

impl GpuConfig {
    /// The ISCA 2016 baseline configuration (Table I).
    ///
    /// 16 SMs at 1400 MHz, SIMT width 16x2, 1536 threads / 32768 registers /
    /// 8 CTAs / 48 KB shared memory per SM, 16 KB 4-way L1 with 64 MSHRs,
    /// 128 KB/channel 8-way L2, 6 memory channels of FR-FCFS GDDR5.
    #[must_use]
    pub fn isca_baseline() -> Self {
        Self {
            num_sms: 16,
            core_clock_mhz: 1400,
            sm: SmConfig {
                max_threads: 1536,
                max_registers: 32768,
                max_ctas: 8,
                shared_mem_bytes: 48 * 1024,
                num_schedulers: 2,
                simt_width: 16,
                sfu_width: 4,
                lsu_width: 16,
                alu_latency: 10,
                sfu_latency: 20,
                shmem_latency: 24,
                l1_hit_latency: 28,
                ibuffer_entries: 2,
                fetch_latency: 2,
                icache_miss_penalty: 40,
                fetch_width: 6,
            },
            l1: L1Config {
                size_bytes: 16 * 1024,
                assoc: 4,
                line_bytes: 128,
                mshr_entries: 64,
                mshr_max_merged: 8,
            },
            l2: L2Config {
                size_bytes_per_channel: 128 * 1024,
                assoc: 8,
                line_bytes: 128,
                latency: 30,
            },
            mem: MemConfig {
                num_channels: 6,
                banks_per_channel: 8,
                row_bytes: 2048,
                timing: DramTiming {
                    t_cl: 12,
                    t_rp: 12,
                    t_rc: 40,
                    t_ras: 28,
                    t_rcd: 12,
                    t_rrd: 6,
                    t_burst: 4,
                },
                dram_clock_mhz: 924,
                icnt_latency: 8,
                dram_queue_entries: 32,
            },
        }
    }

    /// The "less contended" large configuration from Section V-H: 256 KB
    /// register file, 96 KB shared memory, 32 CTA slots and 64 warps per SM.
    #[must_use]
    pub fn large() -> Self {
        let mut cfg = Self::isca_baseline();
        cfg.sm.max_registers = 256 * 1024 / 4; // 256 KB of 32-bit registers
        cfg.sm.shared_mem_bytes = 96 * 1024;
        cfg.sm.max_ctas = 32;
        cfg.sm.max_threads = 64 * SmConfig::WARP_SIZE;
        cfg
    }

    /// Ratio of core-clock to DRAM-command-clock frequency, used to convert
    /// DRAM timings into core cycles.
    #[must_use]
    pub fn core_per_dram_clock(&self) -> f64 {
        f64::from(self.core_clock_mhz) / f64::from(self.mem.dram_clock_mhz)
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::isca_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table_i() {
        let cfg = GpuConfig::isca_baseline();
        assert_eq!(cfg.num_sms, 16);
        assert_eq!(cfg.core_clock_mhz, 1400);
        assert_eq!(cfg.sm.max_threads, 1536);
        assert_eq!(cfg.sm.max_registers, 32768);
        assert_eq!(cfg.sm.max_ctas, 8);
        assert_eq!(cfg.sm.shared_mem_bytes, 48 * 1024);
        assert_eq!(cfg.sm.num_schedulers, 2);
        assert_eq!(cfg.l1.size_bytes, 16 * 1024);
        assert_eq!(cfg.l1.assoc, 4);
        assert_eq!(cfg.l1.mshr_entries, 64);
        assert_eq!(cfg.l2.size_bytes_per_channel, 128 * 1024);
        assert_eq!(cfg.l2.assoc, 8);
        assert_eq!(cfg.mem.num_channels, 6);
        assert_eq!(cfg.mem.dram_clock_mhz, 924);
        let t = &cfg.mem.timing;
        assert_eq!(
            (t.t_cl, t.t_rp, t.t_rc, t.t_ras, t.t_rcd, t.t_rrd),
            (12, 12, 40, 28, 12, 6)
        );
    }

    #[test]
    fn baseline_warp_capacity() {
        let cfg = GpuConfig::isca_baseline();
        assert_eq!(cfg.sm.max_warps(), 48);
    }

    #[test]
    fn large_config_matches_section_v_h() {
        let cfg = GpuConfig::large();
        assert_eq!(cfg.sm.max_registers * 4, 256 * 1024);
        assert_eq!(cfg.sm.shared_mem_bytes, 96 * 1024);
        assert_eq!(cfg.sm.max_ctas, 32);
        assert_eq!(cfg.sm.max_warps(), 64);
    }

    #[test]
    fn clock_ratio_is_core_over_dram() {
        let cfg = GpuConfig::isca_baseline();
        let ratio = cfg.core_per_dram_clock();
        assert!((ratio - 1400.0 / 924.0).abs() < 1e-12);
    }

    #[test]
    fn default_is_baseline() {
        assert_eq!(GpuConfig::default(), GpuConfig::isca_baseline());
    }
}
