//! GDDR5 memory-channel model with FR-FCFS scheduling.
//!
//! Each channel owns a request queue and a set of banks with open-row
//! tracking. Scheduling is first-ready, first-come-first-serve: a request
//! hitting an open row is served before older row-miss requests. Timing
//! parameters are the Table I GDDR5 numbers, converted from DRAM command
//! clocks into core cycles.

use std::collections::VecDeque;

use crate::access::LineAddr;
use crate::config::{DramTiming, MemConfig};

/// A request as seen by a DRAM channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramRequest {
    /// Line address (global).
    pub line: LineAddr,
    /// Opaque tag the memory subsystem uses to route the completion.
    pub tag: u64,
    /// Arrival order stamp for FCFS tie-breaking.
    pub arrival: u64,
}

/// A serviced request and the core cycle its data is available.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramCompletion {
    /// The request that completed.
    pub req: DramRequest,
    /// Core cycle at which the data burst finishes.
    pub ready_at: u64,
}

#[derive(Debug, Clone, Copy)]
struct Bank {
    open_row: Option<u64>,
}

/// One GDDR5 channel: bounded queue, banks, row-buffer state.
#[derive(Debug)]
pub struct DramChannel {
    queue: VecDeque<DramRequest>,
    banks: Vec<Bank>,
    lines_per_row: u64,
    queue_capacity: usize,
    /// Cycle until which the data bus is occupied.
    busy_until: u64,
    // Timings in core cycles.
    lat_row_hit: u64,
    lat_row_miss: u64,
    lat_row_closed: u64,
    burst: u64,
    // Statistics.
    serviced: u64,
    row_hits: u64,
    busy_cycles: u64,
}

impl DramChannel {
    /// Creates a channel from the memory configuration; `core_per_dram` is
    /// the clock-ratio used to convert timings into core cycles.
    #[must_use]
    pub fn new(cfg: &MemConfig, core_per_dram: f64) -> Self {
        let t = &cfg.timing;
        let cvt =
            |dram_cycles: u32| -> u64 { (f64::from(dram_cycles) * core_per_dram).round() as u64 };
        let DramTiming {
            t_cl,
            t_rp,
            t_rcd,
            t_burst,
            ..
        } = *t;
        Self {
            queue: VecDeque::new(),
            banks: vec![Bank { open_row: None }; cfg.banks_per_channel as usize],
            lines_per_row: u64::from(cfg.row_bytes / 128).max(1),
            queue_capacity: cfg.dram_queue_entries as usize,
            busy_until: 0,
            lat_row_hit: cvt(t_cl + t_burst),
            lat_row_miss: cvt(t_rp + t_rcd + t_cl + t_burst),
            lat_row_closed: cvt(t_rcd + t_cl + t_burst),
            burst: cvt(t_burst).max(1),
            serviced: 0,
            row_hits: 0,
            busy_cycles: 0,
        }
    }

    /// Whether the request queue can accept another entry.
    #[must_use]
    pub fn can_accept(&self) -> bool {
        self.queue.len() < self.queue_capacity
    }

    /// Enqueues a request.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full; callers must check [`Self::can_accept`].
    pub fn enqueue(&mut self, req: DramRequest) {
        assert!(self.can_accept(), "DRAM queue overflow");
        self.queue.push_back(req);
    }

    fn bank_and_row(&self, line: LineAddr) -> (usize, u64) {
        let within_channel = line; // channel bits already stripped by caller
        let bank = (within_channel % self.banks.len() as u64) as usize;
        let row = within_channel / self.banks.len() as u64 / self.lines_per_row;
        (bank, row)
    }

    /// Advances the channel by one core cycle, possibly starting one
    /// request. Returns the completion if a request was dispatched.
    pub fn tick(&mut self, now: u64) -> Option<DramCompletion> {
        if now < self.busy_until {
            self.busy_cycles += 1;
            return None;
        }
        if self.queue.is_empty() {
            return None;
        }
        // FR-FCFS: oldest row-hit first, else the oldest request.
        let pick = self
            .queue
            .iter()
            .position(|r| {
                let (bank, row) = self.bank_and_row(r.line);
                self.banks[bank].open_row == Some(row)
            })
            .unwrap_or(0);
        // Invariant: `pick` came from enumerating this queue above.
        // xtask-allow: no-unwrap
        let req = self.queue.remove(pick).expect("index in range");
        let (bank, row) = self.bank_and_row(req.line);
        let latency = match self.banks[bank].open_row {
            Some(open) if open == row => {
                self.row_hits += 1;
                self.lat_row_hit
            }
            Some(_) => self.lat_row_miss,
            None => self.lat_row_closed,
        };
        self.banks[bank].open_row = Some(row);
        self.busy_until = now + self.burst;
        self.busy_cycles += 1;
        self.serviced += 1;
        Some(DramCompletion {
            req,
            ready_at: now + latency,
        })
    }

    /// The earliest cycle `>= from` at which this channel can dispatch a
    /// queued request, or `None` when the queue is empty (an idle channel
    /// only accrues bus-occupancy cycles, which [`Self::account_skip`]
    /// replays in bulk).
    #[must_use]
    pub fn next_dispatch(&self, from: u64) -> Option<u64> {
        (!self.queue.is_empty()).then(|| self.busy_until.max(from))
    }

    /// Whether a `tick(now)` would be a pure no-op: nothing queued and the
    /// data bus free, so neither a dispatch nor a `busy_cycles` increment
    /// can happen. Lets the memory subsystem skip the channel entirely
    /// (micro-horizon) without changing any statistics.
    #[must_use]
    pub fn idle_at(&self, now: u64) -> bool {
        self.queue.is_empty() && now >= self.busy_until
    }

    /// Bulk-replays the per-cycle accounting `tick` would have performed
    /// over the dead span `[from, to)`: the bus-occupancy counter advances
    /// while `now < busy_until`, and nothing else can change because the
    /// fast-forward horizon guarantees no dispatch happens before `to`.
    pub fn account_skip(&mut self, from: u64, to: u64) {
        self.busy_cycles += self.busy_until.min(to).saturating_sub(from);
    }

    /// Requests serviced so far.
    #[must_use]
    pub fn serviced(&self) -> u64 {
        self.serviced
    }

    /// Row-buffer hits so far.
    #[must_use]
    pub fn row_hits(&self) -> u64 {
        self.row_hits
    }

    /// Cycles the data bus was occupied.
    #[must_use]
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Outstanding queued requests.
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;

    fn channel() -> DramChannel {
        let cfg = GpuConfig::isca_baseline();
        DramChannel::new(&cfg.mem, cfg.core_per_dram_clock())
    }

    fn req(line: LineAddr, arrival: u64) -> DramRequest {
        DramRequest {
            line,
            tag: line,
            arrival,
        }
    }

    #[test]
    fn sequential_lines_hit_the_row_buffer() {
        let mut ch = channel();
        // Same bank + row: lines k*banks for small k share bank 0 and row 0.
        ch.enqueue(req(0, 0));
        ch.enqueue(req(8, 1));
        ch.enqueue(req(16, 2));
        let mut now = 0;
        let mut completions = Vec::new();
        while completions.len() < 3 {
            if let Some(c) = ch.tick(now) {
                completions.push(c);
            }
            now += 1;
        }
        assert_eq!(ch.row_hits(), 2);
        // The first access opens the row (closed-bank latency); later ones
        // are faster row hits.
        let first = completions[0].ready_at;
        let second = completions[1].ready_at - completions[1].req.arrival;
        assert!(first > 0 && second > 0);
    }

    #[test]
    fn row_conflicts_pay_precharge() {
        let mut ch = channel();
        let lines_per_row = 2048 / 128;
        // Two requests to bank 0, different rows.
        ch.enqueue(req(0, 0));
        ch.enqueue(req(8 * lines_per_row, 1));
        let c0 = loop {
            if let Some(c) = ch.tick(0) {
                break c;
            }
        };
        let mut now = c0.ready_at.max(1);
        // Drain bus occupancy.
        let c1 = loop {
            if let Some(c) = ch.tick(now) {
                break c;
            }
            now += 1;
        };
        let lat0 = c0.ready_at;
        let lat1 = c1.ready_at - now;
        assert!(lat1 > lat0, "conflict ({lat1}) should exceed cold ({lat0})");
        assert_eq!(ch.row_hits(), 0);
    }

    #[test]
    fn fr_fcfs_prefers_open_row() {
        let mut ch = channel();
        // Open row 0 of bank 0.
        ch.enqueue(req(0, 0));
        let _ = ch.tick(0).unwrap();
        // Queue: row-conflict first (arrival order), then a row hit.
        let lines_per_row = 2048 / 128;
        ch.enqueue(req(8 * lines_per_row, 1)); // bank 0, row 1
        ch.enqueue(req(8, 2)); // bank 0, row 0 -> hit
        let mut now = 100;
        let c = loop {
            if let Some(c) = ch.tick(now) {
                break c;
            }
            now += 1;
        };
        assert_eq!(c.req.line, 8, "row-hit request should be served first");
    }

    #[test]
    fn bus_occupancy_limits_throughput() {
        let mut ch = channel();
        for i in 0..8 {
            ch.enqueue(req(i * 8, i));
        }
        let mut served_at = Vec::new();
        for now in 0..200 {
            if let Some(_c) = ch.tick(now) {
                served_at.push(now);
            }
        }
        assert_eq!(served_at.len(), 8);
        for w in served_at.windows(2) {
            assert!(w[1] - w[0] >= 6, "burst gap violated: {:?}", w);
        }
    }

    #[test]
    fn queue_capacity_backpressures() {
        let cfg = GpuConfig::isca_baseline();
        let mut ch = DramChannel::new(&cfg.mem, cfg.core_per_dram_clock());
        for i in 0..cfg.mem.dram_queue_entries as u64 {
            assert!(ch.can_accept());
            ch.enqueue(req(i, i));
        }
        assert!(!ch.can_accept());
    }

    #[test]
    #[should_panic(expected = "DRAM queue overflow")]
    fn overflow_panics() {
        let mut ch = channel();
        // One more request than the queue holds.
        for i in 0..100 {
            ch.enqueue(req(i, i));
        }
    }
}
