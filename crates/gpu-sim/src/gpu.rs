//! Top-level GPU: SMs plus the shared memory subsystem, with a
//! policy-agnostic launch interface.
//!
//! The simulator deliberately does *not* embed a CTA scheduling policy:
//! multiprogramming controllers (Left-Over, Even, Spatial, Warped-Slicer,
//! ...) live in the `warped-slicer` crate and drive launches through
//! [`Gpu::try_launch`], [`Gpu::set_window`], and [`Gpu::halt_kernel`].

use std::sync::OnceLock;

use crate::access::LineAddr;
use crate::alloc::PartitionWindow;
use crate::config::GpuConfig;
use crate::kernel::{KernelDesc, KernelId};
use crate::mem::{MemResponse, MemStats, MemSubsystem};
use crate::scheduler::SchedulerKind;
use crate::sm::{CtaCompletion, Sm};
use crate::stats::StallBreakdown;
use crate::trace::{TraceEvent, TraceSink};
use crate::verify::{self, KernelVerifyError};

/// Whether event-horizon fast-forwarding is enabled by default, read once
/// from the `WS_SIM_FASTFORWARD` environment variable. It is on unless the
/// variable is set to `0`, `false`, or `off` — the escape hatch for
/// bisecting any suspected divergence against the naive tick loop.
#[must_use]
pub fn fast_forward_default() -> bool {
    static DEFAULT: OnceLock<bool> = OnceLock::new();
    *DEFAULT.get_or_init(|| match std::env::var("WS_SIM_FASTFORWARD") {
        Ok(v) => !matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "0" | "false" | "off"
        ),
        Err(_) => true,
    })
}

/// Per-kernel dispatch bookkeeping.
#[derive(Debug, Clone, Copy, Default)]
pub struct KernelMeta {
    /// CTAs handed to SMs so far.
    pub dispatched_ctas: u64,
    /// CTAs that ran to completion.
    pub completed_ctas: u64,
    /// Whether the kernel has been halted (instruction target reached).
    pub halted: bool,
}

/// The simulated GPU.
#[derive(Debug)]
pub struct Gpu {
    cfg: GpuConfig,
    sms: Vec<Sm>,
    mem: MemSubsystem,
    descs: Vec<KernelDesc>,
    meta: Vec<KernelMeta>,
    kernel_insts: Vec<u64>,
    cycle: u64,
    resp_buf: Vec<MemResponse>,
    /// Per-SM staging buffers for this cycle's memory fills: responses are
    /// grouped by destination SM (preserving per-SM arrival order) and
    /// applied in one `on_fill_batch` call per SM, so each touched warp's
    /// scoreboard entry refreshes once per cycle instead of once per fill.
    fill_bufs: Vec<Vec<LineAddr>>,
    completion_buf: Vec<CtaCompletion>,
    fast_forward: bool,
    skipped_cycles: u64,
    /// Current attempt-backoff width: after a failed skip attempt the next
    /// `ff_cooldown` calls decline without probing, and the width doubles
    /// (capped). Dense phases — where every cycle has real work — thus pay
    /// for a horizon probe only once every `FF_BACKOFF_CAP` cycles instead
    /// of every cycle. Purely a wall-clock heuristic: declining to skip
    /// never changes simulated state.
    ff_backoff: u32,
    ff_cooldown: u32,
    /// ws-trace event sink. `None` (the default) keeps every hook a single
    /// branch, so the tick path stays allocation-free and effectively
    /// zero-cost with tracing off.
    trace: Option<TraceSink>,
}

/// Widest attempt-backoff (in declined `fast_forward` calls) after
/// consecutive failed skip attempts.
const FF_BACKOFF_CAP: u32 = 32;

impl Gpu {
    /// Builds a GPU with the given configuration and warp scheduler.
    #[must_use]
    pub fn new(cfg: GpuConfig, scheduler: SchedulerKind) -> Self {
        let num_sms = cfg.num_sms as usize;
        let sms = (0..num_sms).map(|i| Sm::new(i, &cfg, scheduler)).collect();
        let mem = MemSubsystem::new(&cfg);
        Self {
            cfg,
            sms,
            mem,
            descs: Vec::new(),
            meta: Vec::new(),
            kernel_insts: Vec::new(),
            cycle: 0,
            resp_buf: Vec::new(),
            fill_bufs: vec![Vec::new(); num_sms],
            completion_buf: Vec::new(),
            fast_forward: fast_forward_default(),
            skipped_cycles: 0,
            ff_backoff: 0,
            ff_cooldown: 0,
            trace: None,
        }
    }

    /// Enables the ws-trace event sink with a ring of `capacity` events and
    /// aggregate stall-window records every `stall_window` cycles (`0`
    /// disables stall windows). Replaces any prior sink.
    pub fn enable_trace(&mut self, capacity: usize, stall_window: u64) {
        self.trace = Some(TraceSink::new(capacity, stall_window));
    }

    /// The active trace sink, if tracing is enabled.
    #[must_use]
    pub fn trace(&self) -> Option<&TraceSink> {
        self.trace.as_ref()
    }

    /// Detaches and returns the trace sink, disabling further recording.
    pub fn take_trace(&mut self) -> Option<TraceSink> {
        self.trace.take()
    }

    /// Overrides the event-horizon fast-forward gate for this GPU instance
    /// (the process-wide default comes from [`fast_forward_default`]).
    /// Useful for in-process A/B comparisons where mutating the environment
    /// would race with other threads.
    pub fn set_fast_forward(&mut self, on: bool) {
        self.fast_forward = on;
    }

    /// Whether event-horizon fast-forwarding is enabled on this instance.
    #[must_use]
    pub fn fast_forward_enabled(&self) -> bool {
        self.fast_forward
    }

    /// Total dead cycles skipped (rather than naively ticked) so far.
    #[must_use]
    pub fn skipped_cycles(&self) -> u64 {
        self.skipped_cycles
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Current core cycle.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Number of SMs.
    #[must_use]
    pub fn num_sms(&self) -> usize {
        self.sms.len()
    }

    /// Registers a kernel for execution, returning its slot id. Kernels are
    /// not launched automatically; a controller must dispatch CTAs.
    ///
    /// No pre-flight verification runs on this path (tests deliberately
    /// build degenerate kernels); descriptors from untrusted input should go
    /// through [`Self::try_add_kernel`] instead.
    pub fn add_kernel(&mut self, desc: KernelDesc) -> KernelId {
        let id = KernelId(self.descs.len());
        self.descs.push(desc);
        self.meta.push(KernelMeta::default());
        self.kernel_insts.push(0);
        id
    }

    /// Verified kernel registration: runs the [`crate::verify`] pre-flight
    /// (structural sanity, Eq. 1 single-CTA feasibility, program
    /// well-formedness) against this GPU's SM configuration and rejects
    /// malformed descriptors with a typed [`KernelVerifyError`] *before*
    /// they can panic mid-simulation or poison occupancy curves.
    pub fn try_add_kernel(&mut self, desc: KernelDesc) -> Result<KernelId, KernelVerifyError> {
        verify::preflight(&desc, &self.cfg.sm)?;
        Ok(self.add_kernel(desc))
    }

    /// The descriptor of kernel `k`.
    #[must_use]
    pub fn kernel_desc(&self, k: KernelId) -> &KernelDesc {
        &self.descs[k.0]
    }

    /// Number of registered kernels.
    #[must_use]
    pub fn num_kernels(&self) -> usize {
        self.descs.len()
    }

    /// Dispatch bookkeeping for kernel `k`.
    #[must_use]
    pub fn kernel_meta(&self, k: KernelId) -> KernelMeta {
        self.meta[k.0]
    }

    /// Warp instructions issued by kernel `k` so far (across all SMs).
    #[must_use]
    pub fn kernel_insts(&self, k: KernelId) -> u64 {
        self.kernel_insts[k.0]
    }

    /// CTAs of kernel `k` not yet dispatched.
    #[must_use]
    pub fn remaining_ctas(&self, k: KernelId) -> u64 {
        let m = &self.meta[k.0];
        if m.halted {
            0
        } else {
            self.descs[k.0].grid_ctas - m.dispatched_ctas
        }
    }

    /// Whether kernel `k` has work left (undispatched CTAs) and is not
    /// halted.
    #[must_use]
    pub fn kernel_has_work(&self, k: KernelId) -> bool {
        self.remaining_ctas(k) > 0
    }

    /// Total CTAs completed across all kernels. Controllers use this as a
    /// cheap change signal: launch opportunities only appear when a CTA
    /// retires or a kernel halts.
    #[must_use]
    pub fn total_completed(&self) -> u64 {
        self.meta.iter().map(|m| m.completed_ctas).sum()
    }

    /// Number of halted kernels.
    #[must_use]
    pub fn halted_kernels(&self) -> usize {
        self.meta.iter().filter(|m| m.halted).count()
    }

    /// All registered kernel ids, in slot order.
    #[must_use]
    pub fn kernel_ids(&self) -> Vec<KernelId> {
        (0..self.descs.len()).map(KernelId).collect()
    }

    /// Shared-memory-subsystem statistics.
    #[must_use]
    pub fn mem_stats(&self) -> &MemStats {
        self.mem.stats()
    }

    /// The memory subsystem (for bandwidth statistics).
    #[must_use]
    pub fn mem(&self) -> &MemSubsystem {
        &self.mem
    }

    /// SM `s` (read-only; controllers mutate only through GPU methods).
    #[must_use]
    pub fn sm(&self, s: usize) -> &Sm {
        &self.sms[s]
    }

    /// Iterates over all SMs.
    pub fn sms(&self) -> impl Iterator<Item = &Sm> {
        self.sms.iter()
    }

    /// Attempts to dispatch kernel `k`'s next CTA onto SM `sm_id`.
    pub fn try_launch(&mut self, k: KernelId, sm_id: usize) -> bool {
        if self.meta[k.0].halted || self.meta[k.0].dispatched_ctas >= self.descs[k.0].grid_ctas {
            return false;
        }
        let cta_index = self.meta[k.0].dispatched_ctas;
        if self.sms[sm_id].launch_cta(&self.descs[k.0], k, cta_index) {
            self.meta[k.0].dispatched_ctas += 1;
            if let Some(t) = self.trace.as_mut() {
                if cta_index == 0 {
                    t.record(TraceEvent::KernelLaunch {
                        cycle: self.cycle,
                        kernel: k.0,
                    });
                }
                t.record(TraceEvent::CtaLaunch {
                    cycle: self.cycle,
                    sm: sm_id,
                    kernel: k.0,
                    cta: cta_index,
                });
            }
            true
        } else {
            false
        }
    }

    /// Whether a CTA of kernel `k` would fit on SM `sm_id` right now.
    #[must_use]
    pub fn can_launch(&self, k: KernelId, sm_id: usize) -> bool {
        !self.meta[k.0].halted
            && self.meta[k.0].dispatched_ctas < self.descs[k.0].grid_ctas
            && self.sms[sm_id].can_launch(&self.descs[k.0], k)
    }

    /// Sets (or clears) kernel `k`'s partition window on SM `sm_id`.
    pub fn set_window(&mut self, sm_id: usize, k: KernelId, window: Option<PartitionWindow>) {
        self.sms[sm_id].set_window(k.0, window);
    }

    /// Halts kernel `k`: evicts its CTAs from every SM and releases all its
    /// resources (the paper's equal-work methodology: a benchmark reaching
    /// its instruction target is halted and its resources freed).
    pub fn halt_kernel(&mut self, k: KernelId) {
        if self.meta[k.0].halted {
            return;
        }
        self.meta[k.0].halted = true;
        for sm in &mut self.sms {
            sm.evict_kernel(k.0, &self.descs[k.0]);
        }
        if let Some(t) = self.trace.as_mut() {
            t.record(TraceEvent::KernelHalt {
                cycle: self.cycle,
                kernel: k.0,
                insts: self.kernel_insts[k.0],
            });
        }
    }

    /// Advances the whole GPU by one core cycle.
    pub fn tick(&mut self) {
        let now = self.cycle;
        for sm in &mut self.sms {
            sm.tick(now, &mut self.mem, &self.descs, &mut self.kernel_insts);
        }
        self.resp_buf.clear();
        self.mem.tick(now, &mut self.resp_buf);
        // Group this cycle's fills by destination SM. Per-SM arrival order
        // is preserved and SMs are state-independent, so batching is
        // byte-identical to applying each response as it was drained; trace
        // events keep the original (interleaved) response order.
        for i in 0..self.resp_buf.len() {
            let r = self.resp_buf[i];
            self.fill_bufs[r.sm_id].push(r.line);
            if let Some(t) = self.trace.as_mut() {
                t.record(TraceEvent::MshrFill {
                    cycle: now,
                    sm: r.sm_id,
                    line: r.line,
                });
            }
        }
        if !self.resp_buf.is_empty() {
            for sm_id in 0..self.sms.len() {
                if !self.fill_bufs[sm_id].is_empty() {
                    self.sms[sm_id].on_fill_batch(&self.fill_bufs[sm_id], now);
                    self.fill_bufs[sm_id].clear();
                }
            }
        }
        self.completion_buf.clear();
        for sm in &mut self.sms {
            sm.drain_completions_into(&mut self.completion_buf);
        }
        for c in &self.completion_buf {
            self.meta[c.kernel.0].completed_ctas += 1;
            if let Some(t) = self.trace.as_mut() {
                t.record(TraceEvent::CtaComplete {
                    cycle: now,
                    kernel: c.kernel.0,
                    cta: c.cta_index,
                });
            }
        }
        if self.trace.as_ref().is_some_and(|t| t.stall_window_due(now)) {
            let mut agg = StallBreakdown::default();
            for sm in &self.sms {
                agg.accumulate(&sm.stats().stalls);
            }
            if let Some(t) = self.trace.as_mut() {
                t.record_stall_window(now, agg);
            }
        }
        if crate::invariant::enabled() {
            for m in &self.meta {
                assert!(
                    m.completed_ctas <= m.dispatched_ctas,
                    "kernel accounting corruption: {} CTAs completed but only \
                     {} were ever dispatched",
                    m.completed_ctas,
                    m.dispatched_ctas
                );
            }
        }
        self.cycle = self
            .cycle
            .checked_add(1)
            // Documented panic: a u64 cycle counter wrapping means the
            // simulation ran ~5.8e11 years; overflow is corruption.
            // xtask-allow: no-unwrap
            .expect("cycle counter overflow");
    }

    /// Jumps the clock over a provably dead span. Every SM and the memory
    /// subsystem report the earliest future cycle at which they can change
    /// state; if the global minimum (clamped to `limit`, exclusive) lies
    /// beyond the next tick, the skipped cycles' bookkeeping is replayed in
    /// bulk and `cycle` jumps straight there. Returns the number of cycles
    /// skipped (0 when fast-forwarding is disabled or the next tick can do
    /// work). Call *after* [`Self::tick`] and after any external
    /// stop-condition checks, so window edges and controller intervention
    /// points — which must bound `limit` — stay exact.
    pub fn fast_forward(&mut self, limit: u64) -> u64 {
        if !self.fast_forward || self.cycle >= limit {
            return 0;
        }
        if self.ff_cooldown > 0 {
            self.ff_cooldown -= 1;
            return 0;
        }
        let from = self.cycle;
        let mut horizon = self.mem.next_event(from);
        if horizon > from {
            for sm in &mut self.sms {
                horizon = horizon.min(sm.next_event(from));
                if horizon <= from {
                    break;
                }
            }
        }
        let to = horizon.min(limit);
        if to <= from {
            self.ff_backoff = (self.ff_backoff * 2 + 1).min(FF_BACKOFF_CAP);
            self.ff_cooldown = self.ff_backoff;
            return 0;
        }
        self.ff_backoff = 0;
        for sm in &mut self.sms {
            sm.account_skip(from, to);
        }
        self.mem.account_skip(from, to);
        self.cycle = to;
        self.skipped_cycles += to - from;
        if let Some(t) = self.trace.as_mut() {
            t.record(TraceEvent::FastForward { from, to });
        }
        to - from
    }

    /// One tick followed by a fast-forward bounded by `limit`: the
    /// event-horizon equivalent of a naive tick loop iteration. Returns the
    /// number of dead cycles skipped after the tick.
    pub fn tick_fast_forward(&mut self, limit: u64) -> u64 {
        self.tick();
        self.fast_forward(limit)
    }

    /// Runs `cycles` cycles with no controller intervention, fast-forwarding
    /// over dead spans when enabled (statistics are identical either way).
    pub fn run(&mut self, cycles: u64) {
        let end = self
            .cycle
            .checked_add(cycles)
            // Same corruption argument as the tick counter overflow below.
            // xtask-allow: no-unwrap
            .expect("cycle budget overflow");
        while self.cycle < end {
            self.tick_fast_forward(end);
        }
    }

    /// Aggregate IPC across all SMs (warp instructions per core cycle).
    #[must_use]
    pub fn total_ipc(&self) -> f64 {
        if self.cycle == 0 {
            return 0.0;
        }
        let insts: u64 = self.kernel_insts.iter().sum();
        insts as f64 / self.cycle as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessPattern;
    use crate::program::ProgramSpec;

    fn kernel(name: &str, gload: f64, seed: u64) -> KernelDesc {
        KernelDesc {
            name: name.into(),
            grid_ctas: 256,
            threads_per_cta: 128,
            regs_per_thread: 16,
            shmem_per_cta: 0,
            program: ProgramSpec {
                body_len: 48,
                gload_frac: gload,
                dep_distance: 6,
                seed,
                ..ProgramSpec::default()
            }
            .generate(),
            iterations: 8,
            pattern: AccessPattern::Streaming { transactions: 1 },
            icache_miss_rate: 0.0,
            shmem_conflict_degree: 1,
            seed,
        }
    }

    fn fill_all_sms(gpu: &mut Gpu, k: KernelId) {
        for s in 0..gpu.num_sms() {
            while gpu.try_launch(k, s) {}
        }
    }

    #[test]
    fn single_kernel_progresses_on_all_sms() {
        let mut gpu = Gpu::new(GpuConfig::isca_baseline(), SchedulerKind::GreedyThenOldest);
        let k = gpu.add_kernel(kernel("a", 0.05, 1));
        fill_all_sms(&mut gpu, k);
        gpu.run(2000);
        assert!(gpu.kernel_insts(k) > 10_000);
        for sm in gpu.sms() {
            assert!(sm.stats().insts_issued() > 0, "every SM should work");
        }
    }

    #[test]
    fn identical_runs_are_deterministic() {
        let run_once = || {
            let mut gpu = Gpu::new(GpuConfig::isca_baseline(), SchedulerKind::GreedyThenOldest);
            let k = gpu.add_kernel(kernel("a", 0.2, 7));
            fill_all_sms(&mut gpu, k);
            gpu.run(3000);
            (gpu.kernel_insts(k), gpu.mem_stats().total.l2_accesses)
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn two_kernels_share_an_sm() {
        let mut gpu = Gpu::new(GpuConfig::isca_baseline(), SchedulerKind::GreedyThenOldest);
        let a = gpu.add_kernel(kernel("a", 0.05, 1));
        let b = gpu.add_kernel(kernel("b", 0.3, 2));
        // Two CTAs of each on SM 0.
        assert!(gpu.try_launch(a, 0));
        assert!(gpu.try_launch(b, 0));
        assert!(gpu.try_launch(a, 0));
        assert!(gpu.try_launch(b, 0));
        gpu.run(4000);
        assert!(gpu.kernel_insts(a) > 0);
        assert!(gpu.kernel_insts(b) > 0);
        let st = gpu.sm(0).stats();
        assert!(st.kernel(0).insts_issued > 0 && st.kernel(1).insts_issued > 0);
    }

    #[test]
    fn halt_releases_resources_and_stops_progress() {
        let mut gpu = Gpu::new(GpuConfig::isca_baseline(), SchedulerKind::GreedyThenOldest);
        let k = gpu.add_kernel(kernel("a", 0.1, 3));
        fill_all_sms(&mut gpu, k);
        gpu.run(500);
        let before = gpu.kernel_insts(k);
        assert!(before > 0);
        gpu.halt_kernel(k);
        assert_eq!(gpu.remaining_ctas(k), 0);
        assert!(!gpu.kernel_has_work(k));
        gpu.run(500);
        assert_eq!(gpu.kernel_insts(k), before, "no progress after halt");
        for sm in gpu.sms() {
            assert_eq!(sm.resident_ctas(), 0);
        }
    }

    #[test]
    fn completed_ctas_are_counted_and_refillable() {
        let mut gpu = Gpu::new(GpuConfig::isca_baseline(), SchedulerKind::GreedyThenOldest);
        let mut desc = kernel("tiny", 0.0, 4);
        desc.iterations = 1;
        desc.grid_ctas = 4;
        let k = gpu.add_kernel(desc);
        assert!(gpu.try_launch(k, 0));
        assert!(gpu.try_launch(k, 0));
        let mut launched = 2;
        for _ in 0..5000 {
            gpu.tick();
            while launched < 4 && gpu.try_launch(k, 0) {
                launched += 1;
            }
            if gpu.kernel_meta(k).completed_ctas == 4 {
                break;
            }
        }
        assert_eq!(gpu.kernel_meta(k).completed_ctas, 4);
        assert_eq!(gpu.remaining_ctas(k), 0);
    }

    #[test]
    fn try_add_kernel_rejects_malformed_and_accepts_valid() {
        let mut gpu = Gpu::new(GpuConfig::isca_baseline(), SchedulerKind::GreedyThenOldest);
        // A CTA footprint no SM can hold: zero occupancy is a structured
        // error naming the Eq. 1 rule, not a mid-simulation panic.
        let mut bad = kernel("fat", 0.1, 6);
        bad.threads_per_cta = 4096;
        let err = gpu.try_add_kernel(bad).unwrap_err();
        assert_eq!(err.rule(), "eq1-infeasible");
        assert_eq!(gpu.num_kernels(), 0, "rejected kernel takes no slot");
        // A well-formed kernel is registered exactly as via add_kernel.
        let k = gpu.try_add_kernel(kernel("ok", 0.1, 6)).expect("valid");
        assert_eq!(k, KernelId(0));
        assert!(gpu.try_launch(k, 0));
    }

    /// Everything the fast-forward path must reproduce bit-for-bit,
    /// rendered through Debug so every counter is compared.
    fn full_state(gpu: &Gpu) -> (u64, Vec<u64>, String, String) {
        (
            gpu.cycle(),
            gpu.kernel_ids()
                .into_iter()
                .map(|k| gpu.kernel_insts(k))
                .collect(),
            format!("{:?}", gpu.sms().map(Sm::stats).collect::<Vec<_>>()),
            format!("{:?}", gpu.mem_stats()),
        )
    }

    #[test]
    fn fast_forward_matches_naive_tick_loop() {
        let run_with = |ff: bool| {
            let mut gpu = Gpu::new(GpuConfig::isca_baseline(), SchedulerKind::GreedyThenOldest);
            gpu.set_fast_forward(ff);
            let a = gpu.add_kernel(kernel("a", 0.4, 9));
            let b = gpu.add_kernel(kernel("b", 0.05, 11));
            // Sparse residency on a few SMs: plenty of dead cycles.
            assert!(gpu.try_launch(a, 0));
            assert!(gpu.try_launch(a, 1));
            assert!(gpu.try_launch(b, 2));
            gpu.run(20_000);
            (full_state(&gpu), gpu.skipped_cycles())
        };
        let (ff_state, skipped) = run_with(true);
        let (naive_state, zero) = run_with(false);
        assert_eq!(ff_state, naive_state, "fast-forward must be invisible");
        assert_eq!(zero, 0, "disabled mode must not skip");
        assert!(skipped > 0, "memory-bound co-run must have dead cycles");
    }

    #[test]
    fn fast_forward_respects_the_run_boundary() {
        let mut gpu = Gpu::new(GpuConfig::isca_baseline(), SchedulerKind::GreedyThenOldest);
        gpu.set_fast_forward(true);
        let k = gpu.add_kernel(kernel("a", 0.5, 13));
        assert!(gpu.try_launch(k, 0));
        for _ in 0..7 {
            gpu.run(311);
            assert_eq!(gpu.cycle() % 311, 0, "run() may never overshoot");
        }
    }

    #[test]
    fn fast_forward_on_an_idle_gpu_jumps_to_the_limit() {
        let mut gpu = Gpu::new(GpuConfig::isca_baseline(), SchedulerKind::GreedyThenOldest);
        gpu.set_fast_forward(true);
        gpu.run(100_000);
        assert_eq!(gpu.cycle(), 100_000);
        assert!(
            gpu.skipped_cycles() > 99_000,
            "an empty GPU should skip nearly everything, skipped {}",
            gpu.skipped_cycles()
        );
        // Stats must still read as 100k idle cycles.
        assert_eq!(gpu.sm(0).stats().cycles, 100_000);
        assert_eq!(gpu.sm(0).stats().stalls.idle, 200_000, "2 schedulers");
    }

    #[test]
    fn tracing_records_events_without_perturbing_state() {
        use crate::trace::TraceEvent;
        let run = |trace: bool| {
            let mut gpu = Gpu::new(GpuConfig::isca_baseline(), SchedulerKind::GreedyThenOldest);
            let k = gpu.add_kernel(kernel("a", 0.3, 21));
            if trace {
                gpu.enable_trace(4096, 500);
            }
            assert!(gpu.try_launch(k, 0));
            gpu.run(3000);
            gpu.halt_kernel(k);
            (full_state(&gpu), gpu.take_trace())
        };
        let (traced_state, sink) = run(true);
        let (plain_state, no_sink) = run(false);
        assert_eq!(traced_state, plain_state, "tracing must be invisible");
        assert!(no_sink.is_none());
        let sink = sink.expect("tracing was enabled");
        let has = |f: fn(&TraceEvent) -> bool| sink.events().any(f);
        assert!(has(|e| matches!(e, TraceEvent::KernelLaunch { .. })));
        assert!(has(|e| matches!(e, TraceEvent::CtaLaunch { .. })));
        assert!(has(|e| matches!(e, TraceEvent::MshrFill { .. })));
        assert!(has(|e| matches!(e, TraceEvent::StallWindow { .. })));
        assert!(has(
            |e| matches!(e, TraceEvent::KernelHalt { insts, .. } if *insts > 0)
        ));
    }

    #[test]
    fn dispatch_respects_grid_size() {
        let mut gpu = Gpu::new(GpuConfig::isca_baseline(), SchedulerKind::GreedyThenOldest);
        let mut desc = kernel("small", 0.0, 5);
        desc.grid_ctas = 3;
        let k = gpu.add_kernel(desc);
        assert!(gpu.try_launch(k, 0));
        assert!(gpu.try_launch(k, 1));
        assert!(gpu.try_launch(k, 2));
        assert!(!gpu.try_launch(k, 3), "grid exhausted");
        assert!(!gpu.can_launch(k, 3));
    }
}
