//! Strict-invariant support: checked-accounting assertions.
//!
//! The simulator's accounting structures (allocators, MSHR tables, cycle
//! counters) maintain invariants that, when silently broken, corrupt results
//! rather than crash. This module gates a layer of assertions that verify
//! those invariants after every mutation. The checks are compiled in when
//! either `debug_assertions` is on (any `cargo test` / dev build) or the
//! `strict-invariants` cargo feature is enabled, which lets release-mode
//! experiment sweeps opt into checked accounting:
//!
//! ```text
//! cargo run --release --features strict-invariants ...
//! ```
//!
//! In a plain release build the [`enabled`] predicate is `const false`, so
//! every `strict_assert!` body is removed by the optimizer.

/// Whether strict-invariant checks are compiled into this build.
#[must_use]
pub const fn enabled() -> bool {
    cfg!(any(debug_assertions, feature = "strict-invariants"))
}

/// Asserts a simulator invariant when strict checks are compiled in (see
/// [`enabled`]); a no-op in plain release builds.
///
/// Takes the same arguments as [`assert!`].
#[macro_export]
macro_rules! strict_assert {
    ($($arg:tt)*) => {
        if $crate::invariant::enabled() {
            assert!($($arg)*);
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn enabled_in_test_builds() {
        // Tests always build with debug_assertions.
        assert!(super::enabled());
    }

    #[test]
    fn passing_assertion_is_silent() {
        strict_assert!(1 + 1 == 2, "arithmetic holds");
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn failing_assertion_panics_when_enabled() {
        strict_assert!(false, "deliberate");
    }
}
