//! Kernel descriptors: everything the simulator needs to launch and execute
//! one grid.

use crate::access::AccessPattern;
use crate::config::SmConfig;
use crate::program::Program;
use crate::verify::{KernelVerifyError, ResourceKind};

/// Identifies one of the kernels co-resident in a simulation run.
///
/// Slots are assigned in launch order (the paper's "kernel 1", "kernel 2",
/// ...). A run hosts at most a handful of kernels so a small index suffices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KernelId(pub usize);

impl std::fmt::Display for KernelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "K{}", self.0)
    }
}

/// Static description of one kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelDesc {
    /// Human-readable name (benchmark abbreviation).
    pub name: String,
    /// Grid dimension: total CTAs in the kernel ("Griddim" in Table II).
    pub grid_ctas: u64,
    /// Threads per CTA ("Blkdim" in Table II).
    pub threads_per_cta: u32,
    /// Registers per thread. CTA register footprint is
    /// `threads_per_cta * regs_per_thread`.
    pub regs_per_thread: u32,
    /// Shared-memory bytes statically allocated per CTA.
    pub shmem_per_cta: u32,
    /// The synthetic loop body each warp executes.
    pub program: Program,
    /// Loop iterations each warp runs before retiring.
    pub iterations: u32,
    /// Global-memory access pattern.
    pub pattern: AccessPattern,
    /// Fraction of instruction fetches that miss the instruction cache
    /// (models large-body kernels such as DXT whose front end stalls).
    pub icache_miss_rate: f64,
    /// Shared-memory bank-conflict degree: the average serialization factor
    /// of a shared-memory access (1 = conflict-free, up to 32 = all lanes
    /// hit one bank). Multiplies LSU occupancy and access latency.
    pub shmem_conflict_degree: u32,
    /// Seed for the kernel's address streams.
    pub seed: u64,
}

impl KernelDesc {
    /// Warps per CTA (threads rounded up to warp granularity).
    #[must_use]
    pub fn warps_per_cta(&self) -> u32 {
        self.threads_per_cta.div_ceil(SmConfig::WARP_SIZE)
    }

    /// Register-file footprint of one CTA, in registers. Saturates at
    /// `u32::MAX` for absurd descriptors instead of wrapping (a wrapped
    /// footprint would make an infeasible kernel look feasible).
    #[must_use]
    pub fn regs_per_cta(&self) -> u32 {
        self.threads_per_cta.saturating_mul(self.regs_per_thread)
    }

    /// Dynamic warp instructions one warp executes before completing.
    #[must_use]
    pub fn insts_per_warp(&self) -> u64 {
        self.program.len() as u64 * u64::from(self.iterations)
    }

    /// Dynamic warp instructions one CTA executes before completing.
    #[must_use]
    pub fn insts_per_cta(&self) -> u64 {
        self.insts_per_warp() * u64::from(self.warps_per_cta())
    }

    /// Maximum CTAs of this kernel that fit on one SM with the full SM to
    /// itself, considering every resource limit (threads, registers, shared
    /// memory, CTA slots) — the "max allowed CTAs" of Fig. 3a.
    ///
    /// Total (documented saturation): a zero per-CTA demand on a resource
    /// means that resource never binds (its quotient saturates to the CTA
    /// slot limit rather than dividing by zero), and a kernel whose single
    /// CTA exceeds a capacity yields 0. Use [`Self::try_max_ctas_per_sm`]
    /// for a typed error naming the binding resource instead.
    #[must_use]
    pub fn max_ctas_per_sm(&self, sm: &SmConfig) -> u32 {
        self.try_max_ctas_per_sm(sm).unwrap_or_default()
    }

    /// Like [`Self::max_ctas_per_sm`], but distinguishes *why* a kernel
    /// achieves zero occupancy: returns the Eq. 1 resource dimension whose
    /// per-CTA demand already exceeds the SM's capacity (or
    /// [`KernelVerifyError::ZeroThreads`] for a threadless CTA, which no
    /// resource arithmetic can make meaningful).
    ///
    /// All arithmetic is widened to `u64`, so pathological descriptors
    /// (e.g. `u32::MAX` threads x `u32::MAX` registers) report infeasibility
    /// instead of wrapping or panicking.
    pub fn try_max_ctas_per_sm(&self, sm: &SmConfig) -> Result<u32, KernelVerifyError> {
        if self.threads_per_cta == 0 {
            return Err(KernelVerifyError::ZeroThreads);
        }
        let wide_regs = u64::from(self.threads_per_cta) * u64::from(self.regs_per_thread);
        let demands = [
            (
                ResourceKind::Threads,
                u64::from(self.threads_per_cta),
                u64::from(sm.max_threads),
            ),
            (
                ResourceKind::Registers,
                wide_regs,
                u64::from(sm.max_registers),
            ),
            (
                ResourceKind::SharedMem,
                u64::from(self.shmem_per_cta),
                u64::from(sm.shared_mem_bytes),
            ),
            (ResourceKind::CtaSlots, 1, u64::from(sm.max_ctas)),
        ];
        let mut limit = u64::from(sm.max_ctas);
        for (resource, per_cta, available) in demands {
            // A zero demand never binds; the resource imposes no limit.
            let Some(quota) = available.checked_div(per_cta) else {
                continue;
            };
            if quota == 0 {
                return Err(KernelVerifyError::Infeasible {
                    resource,
                    per_cta,
                    available,
                });
            }
            limit = limit.min(quota);
        }
        Ok(u32::try_from(limit).unwrap_or(u32::MAX))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;
    use crate::program::ProgramSpec;

    fn desc(threads: u32, regs: u32, shmem: u32) -> KernelDesc {
        KernelDesc {
            name: "test".into(),
            grid_ctas: 100,
            threads_per_cta: threads,
            regs_per_thread: regs,
            shmem_per_cta: shmem,
            program: ProgramSpec::default().generate(),
            iterations: 10,
            pattern: AccessPattern::Streaming { transactions: 1 },
            icache_miss_rate: 0.0,
            shmem_conflict_degree: 1,
            seed: 0,
        }
    }

    #[test]
    fn warp_count_rounds_up() {
        assert_eq!(desc(128, 16, 0).warps_per_cta(), 4);
        assert_eq!(desc(169, 16, 0).warps_per_cta(), 6);
        assert_eq!(desc(1, 16, 0).warps_per_cta(), 1);
    }

    #[test]
    fn occupancy_limited_by_threads() {
        let sm = GpuConfig::isca_baseline().sm;
        // 512-thread CTAs: 1536/512 = 3 CTAs.
        assert_eq!(desc(512, 8, 0).max_ctas_per_sm(&sm), 3);
    }

    #[test]
    fn occupancy_limited_by_registers() {
        let sm = GpuConfig::isca_baseline().sm;
        // 128 threads x 40 regs = 5120 regs/CTA -> 32768/5120 = 6 CTAs.
        assert_eq!(desc(128, 40, 0).max_ctas_per_sm(&sm), 6);
    }

    #[test]
    fn occupancy_limited_by_shared_memory() {
        let sm = GpuConfig::isca_baseline().sm;
        // 10 KB of shared memory per CTA -> 48K/10K = 4 CTAs.
        assert_eq!(desc(64, 8, 10 * 1024).max_ctas_per_sm(&sm), 4);
    }

    #[test]
    fn occupancy_limited_by_cta_slots() {
        let sm = GpuConfig::isca_baseline().sm;
        // Tiny CTAs: slot limit (8) binds.
        assert_eq!(desc(32, 1, 0).max_ctas_per_sm(&sm), 8);
    }

    #[test]
    fn instruction_budgets_multiply() {
        let d = desc(128, 16, 0);
        assert_eq!(d.insts_per_warp(), d.program.len() as u64 * 10);
        assert_eq!(d.insts_per_cta(), d.insts_per_warp() * 4);
    }

    #[test]
    fn kernel_id_displays_compactly() {
        assert_eq!(KernelId(2).to_string(), "K2");
    }

    #[test]
    fn zero_per_cta_resources_saturate_instead_of_panicking() {
        let sm = GpuConfig::isca_baseline().sm;
        // Zero registers / zero shared memory per CTA: those resources never
        // bind, the other limits still apply.
        assert_eq!(desc(192, 0, 0).max_ctas_per_sm(&sm), 8);
        assert_eq!(desc(192, 0, 0).try_max_ctas_per_sm(&sm), Ok(8));
        // Zero threads per CTA is a typed error, not a division or a bogus
        // full-occupancy answer.
        let d = desc(0, 16, 0);
        assert_eq!(
            d.try_max_ctas_per_sm(&sm),
            Err(crate::verify::KernelVerifyError::ZeroThreads)
        );
        assert_eq!(d.max_ctas_per_sm(&sm), 0);
    }

    #[test]
    fn oversized_footprints_report_the_binding_resource() {
        let sm = GpuConfig::isca_baseline().sm;
        let err = desc(2048, 1, 0).try_max_ctas_per_sm(&sm).unwrap_err();
        assert!(matches!(
            err,
            crate::verify::KernelVerifyError::Infeasible {
                resource: crate::verify::ResourceKind::Threads,
                ..
            }
        ));
        // u32::MAX threads x u32::MAX regs must not wrap into feasibility.
        let d = desc(u32::MAX, u32::MAX, 0);
        assert_eq!(d.regs_per_cta(), u32::MAX, "saturating, not wrapping");
        assert_eq!(d.max_ctas_per_sm(&sm), 0);
        assert!(d.try_max_ctas_per_sm(&sm).is_err());
    }
}
