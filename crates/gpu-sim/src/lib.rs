//! # gpu-sim
//!
//! A from-scratch, cycle-level GPU streaming-multiprocessor simulator — the
//! execution substrate for the Warped-Slicer (ISCA 2016) reproduction.
//!
//! The simulator models the Table I baseline of the paper: 16 SMs with dual
//! warp schedulers (greedy-then-oldest or round-robin), per-SM register
//! file / shared memory / thread / CTA-slot resources with *contiguous*
//! first-fit allocation (so fragmentation behaves as in Fig. 2), ALU/SFU/LSU
//! pipelines with realistic initiation intervals, a 16 KB 4-way L1 with 64
//! MSHRs per SM, a banked 128 KB-per-channel L2, and six GDDR5 channels with
//! FR-FCFS scheduling.
//!
//! Kernels are synthetic (see [`program`] and [`access`]): deterministic
//! instruction streams parameterized by functional-unit mix, register
//! dependence distance, and global-memory access pattern. The `ws-workloads`
//! crate instantiates the paper's ten benchmarks on top of these primitives.
//!
//! ## Quick example
//!
//! ```
//! use gpu_sim::{
//!     AccessPattern, Gpu, GpuConfig, KernelDesc, ProgramSpec, SchedulerKind,
//! };
//!
//! let mut gpu = Gpu::new(GpuConfig::isca_baseline(), SchedulerKind::GreedyThenOldest);
//! let k = gpu.add_kernel(KernelDesc {
//!     name: "demo".into(),
//!     grid_ctas: 64,
//!     threads_per_cta: 128,
//!     regs_per_thread: 16,
//!     shmem_per_cta: 0,
//!     program: ProgramSpec::default().generate(),
//!     iterations: 4,
//!     pattern: AccessPattern::Streaming { transactions: 1 },
//!     icache_miss_rate: 0.0,
//!     shmem_conflict_degree: 1,
//!     seed: 1,
//! });
//! // Launch as many CTAs as fit on SM 0, then simulate.
//! while gpu.try_launch(k, 0) {}
//! gpu.run(1000);
//! assert!(gpu.kernel_insts(k) > 0);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod access;
pub mod alloc;
pub mod cache;
pub mod config;
pub mod dram;
pub mod gpu;
pub mod invariant;
pub mod kernel;
pub mod mem;
pub mod mshr;
pub mod program;
pub mod rng;
pub mod scheduler;
pub mod sm;
pub mod stats;
pub mod trace;
pub mod verify;
pub mod warp;

pub use access::{
    AccessPattern, AddressStream, LineAddr, CTA_REGION_LINES, MAX_DISJOINT_CTAS,
    SHARED_REGION_LINES,
};
pub use alloc::{CtaResources, LinearAllocator, PartitionWindow, Region, SmResources};
pub use cache::{ProbeResult, SetAssocCache};
pub use config::{DramTiming, GpuConfig, L1Config, L2Config, MemConfig, SmConfig};
pub use gpu::{fast_forward_default, Gpu, KernelMeta};
pub use kernel::{KernelDesc, KernelId};
pub use mem::{KernelMemStats, MemRequest, MemResponse, MemStats, MemSubsystem};
pub use program::{Inst, OpClass, Program, ProgramSpec, Reg, NUM_VIRTUAL_REGS};
pub use rng::SimRng;
pub use scheduler::SchedulerKind;
pub use sm::{CtaCompletion, Sm};
pub use stats::{SmKernelStats, SmStats, StallBreakdown, StallReason};
pub use trace::{TraceEvent, TraceSink};
pub use verify::{occupancy_breakdown, KernelVerifyError, ResourceKind};
pub use warp::{Warp, WarpTable, PENDING_LOAD};
