//! The shared memory subsystem: interconnect, banked L2, DRAM channels.
//!
//! The L2 is sliced per memory channel (Table I: 128 KB/channel); a line's
//! channel is a simple modulo hash. Requests from all SMs meet here, which
//! is why even inter-SM *spatial* multitasking still shows L2 contention in
//! the paper (Sec. V-C) — the slices are shared no matter how SMs are
//! partitioned.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

use crate::access::LineAddr;
use crate::cache::{ProbeResult, SetAssocCache};
use crate::config::GpuConfig;
use crate::dram::{DramChannel, DramRequest};
use crate::kernel::KernelId;

/// A request from an SM's L1 into the shared memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Target line.
    pub line: LineAddr,
    /// Requesting SM.
    pub sm_id: usize,
    /// Kernel the access belongs to (for per-kernel statistics).
    pub kernel: KernelId,
    /// Store traffic needs no response.
    pub is_store: bool,
}

/// A fill returning to an SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemResponse {
    /// The filled line.
    pub line: LineAddr,
    /// Destination SM.
    pub sm_id: usize,
}

/// Per-kernel memory statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelMemStats {
    /// L2 probes attributed to the kernel.
    pub l2_accesses: u64,
    /// L2 misses attributed to the kernel.
    pub l2_misses: u64,
    /// DRAM read transactions.
    pub dram_reads: u64,
    /// DRAM write transactions.
    pub dram_writes: u64,
}

/// Aggregate memory-subsystem statistics.
#[derive(Debug, Clone, Default)]
pub struct MemStats {
    /// Totals across kernels.
    pub total: KernelMemStats,
    /// Per-kernel-slot breakdown (indexed by `KernelId.0`).
    pub per_kernel: Vec<KernelMemStats>,
    /// DRAM transactions (reads + writes) attributed to each requesting SM.
    pub dram_by_sm: Vec<u64>,
}

impl MemStats {
    /// Pre-sizes the per-kernel and per-SM stat slots so the tick hot loop
    /// can index them directly: kernel ids are dense slot indices, so the
    /// resize-on-demand branch belongs at submission time, not in the
    /// per-cycle L2 loop.
    fn ensure_slots(&mut self, k: KernelId, sm: usize) {
        if self.per_kernel.len() <= k.0 {
            self.per_kernel.resize(k.0 + 1, KernelMemStats::default());
        }
        if self.dram_by_sm.len() <= sm {
            self.dram_by_sm.resize(sm + 1, 0);
        }
    }

    /// Statistics for kernel `k` (zeros if it never accessed memory).
    #[must_use]
    pub fn kernel(&self, k: KernelId) -> KernelMemStats {
        self.per_kernel.get(k.0).copied().unwrap_or_default()
    }

    /// DRAM transactions attributed to SM `sm` (zero if it never missed).
    #[must_use]
    pub fn dram_by_sm(&self, sm: usize) -> u64 {
        self.dram_by_sm.get(sm).copied().unwrap_or(0)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Timed<T: Ord> {
    ready: u64,
    payload: T,
}

/// Memory subsystem: one instance shared by all SMs.
#[derive(Debug)]
pub struct MemSubsystem {
    num_channels: usize,
    icnt_latency: u64,
    l2_latency: u64,
    /// Requests in flight on the SM->L2 interconnect.
    ingress: VecDeque<(u64, MemRequest)>,
    /// Per-channel L2 input queues.
    l2_in: Vec<VecDeque<MemRequest>>,
    /// Per-channel L2 slices.
    l2: Vec<SetAssocCache>,
    /// Per-channel DRAM channels.
    dram: Vec<DramChannel>,
    /// Load lines in flight to DRAM: original line -> waiting requests.
    /// Ordered by line address (`BTreeMap`, never a hash map) so draining
    /// and invariant walks are deterministic (`determinism` lint).
    pending_fills: Vec<BTreeMap<LineAddr, Vec<MemRequest>>>,
    /// Responses scheduled to arrive at SMs, ordered by ready time.
    responses: BinaryHeap<Reverse<Timed<(LineAddr, usize)>>>,
    /// DRAM completions waiting for their data-ready cycle, per channel.
    dram_done: BinaryHeap<Reverse<Timed<(usize, LineAddr)>>>,
    /// Bit `ch` set while L2 input queue `ch` is non-empty, so the per-tick
    /// slice loop (and the horizon) test one word instead of scanning every
    /// queue. Maintained at enqueue and after each slice services its head.
    l2_pending: u64,
    arrival_clock: u64,
    stats: MemStats,
}

impl MemSubsystem {
    /// Builds the memory subsystem for `cfg`.
    #[must_use]
    pub fn new(cfg: &GpuConfig) -> Self {
        let n = cfg.mem.num_channels as usize;
        assert!(
            n <= 64,
            "l2_pending bitmask holds at most 64 channels, got {n}"
        );
        let ratio = cfg.core_per_dram_clock();
        Self {
            num_channels: n,
            icnt_latency: u64::from(cfg.mem.icnt_latency),
            l2_latency: u64::from(cfg.l2.latency),
            ingress: VecDeque::new(),
            l2_in: vec![VecDeque::new(); n],
            l2: (0..n)
                .map(|_| {
                    SetAssocCache::new(
                        cfg.l2.size_bytes_per_channel,
                        cfg.l2.assoc,
                        cfg.l2.line_bytes,
                    )
                })
                .collect(),
            dram: (0..n).map(|_| DramChannel::new(&cfg.mem, ratio)).collect(),
            pending_fills: vec![BTreeMap::new(); n],
            responses: BinaryHeap::new(),
            dram_done: BinaryHeap::new(),
            l2_pending: 0,
            arrival_clock: 0,
            stats: MemStats::default(),
        }
    }

    /// Channel a line maps to.
    #[must_use]
    pub fn channel_of(&self, line: LineAddr) -> usize {
        (line % self.num_channels as u64) as usize
    }

    /// Submits an L1 miss (or store) into the interconnect at cycle `now`.
    pub fn submit(&mut self, now: u64, req: MemRequest) {
        self.stats.ensure_slots(req.kernel, req.sm_id);
        self.ingress.push_back((now + self.icnt_latency, req));
    }

    /// Advances the subsystem one core cycle, appending any fills that
    /// arrive at SMs this cycle to `out`.
    pub fn tick(&mut self, now: u64, out: &mut Vec<MemResponse>) {
        // Interconnect -> L2 input queues.
        while let Some(&(ready, req)) = self.ingress.front() {
            if ready > now {
                break;
            }
            self.ingress.pop_front();
            let ch = self.channel_of(req.line);
            self.l2_in[ch].push_back(req);
            self.l2_pending |= 1u64 << ch;
        }

        // L2 slices: one request per channel per cycle. Ascending bit
        // order equals the old ascending channel scan, so servicing order
        // (and therefore every statistic) is unchanged; channels with an
        // empty input queue are never visited.
        let mut pending = self.l2_pending;
        while pending != 0 {
            let ch = pending.trailing_zeros() as usize;
            pending &= pending - 1;
            self.l2_slice_tick(ch, now);
            if self.l2_in[ch].is_empty() {
                self.l2_pending &= !(1u64 << ch);
            }
        }

        // DRAM channels. A channel with nothing queued and a free data bus
        // provably does nothing in tick() (no dispatch, no busy-cycle
        // accrual), so skipping it is statistics-preserving.
        for ch in 0..self.num_channels {
            if self.dram[ch].idle_at(now) {
                continue;
            }
            if let Some(done) = self.dram[ch].tick(now) {
                self.dram_done.push(Reverse(Timed {
                    ready: done.ready_at,
                    payload: (ch, done.req.tag),
                }));
            }
        }

        // DRAM completions whose data is ready: fill L2, wake waiters.
        while let Some(&Reverse(Timed { ready, payload })) = self.dram_done.peek() {
            if ready > now {
                break;
            }
            self.dram_done.pop();
            let (ch, line) = payload;
            if let Some(waiters) = self.pending_fills[ch].remove(&line) {
                self.l2[ch].fill(line);
                for w in waiters {
                    self.responses.push(Reverse(Timed {
                        ready: now + self.icnt_latency,
                        payload: (line, w.sm_id),
                    }));
                }
            }
            // Store completions have no waiters and do not allocate.
        }

        // Responses arriving at SMs this cycle.
        while let Some(&Reverse(Timed { ready, payload })) = self.responses.peek() {
            if ready > now {
                break;
            }
            self.responses.pop();
            out.push(MemResponse {
                line: payload.0,
                sm_id: payload.1,
            });
        }
    }

    /// Services at most one request at the head of L2 slice `ch`'s input
    /// queue: merge into an in-flight fill, hit, or miss into DRAM (with
    /// head-of-line back-pressure when the DRAM queue is full).
    fn l2_slice_tick(&mut self, ch: usize, now: u64) {
        let Some(&req) = self.l2_in[ch].front() else {
            return;
        };
        // A load whose line is already being fetched merges without a
        // fresh L2 probe (the in-flight fill will satisfy it).
        if !req.is_store {
            if let Some(waiters) = self.pending_fills[ch].get_mut(&req.line) {
                self.l2_in[ch].pop_front();
                waiters.push(req);
                return;
            }
        }
        // Stat slots were pre-sized at submit(); index them directly
        // instead of paying a resize-on-demand lookup per probe.
        let k = req.kernel.0;
        let probe = self.l2[ch].access(req.line);
        self.stats.total.l2_accesses += 1;
        self.stats.per_kernel[k].l2_accesses += 1;
        match probe {
            ProbeResult::Hit => {
                self.l2_in[ch].pop_front();
                if !req.is_store {
                    self.responses.push(Reverse(Timed {
                        ready: now + self.l2_latency + self.icnt_latency,
                        payload: (req.line, req.sm_id),
                    }));
                }
            }
            ProbeResult::Miss => {
                self.stats.total.l2_misses += 1;
                self.stats.per_kernel[k].l2_misses += 1;
                if req.is_store {
                    // Write-allocate: repeated stores to a hot line
                    // (e.g. a tile being accumulated) hit the L2
                    // instead of re-missing on every write-through.
                    self.l2[ch].fill(req.line);
                }
                if !self.dram[ch].can_accept() {
                    // Head-of-line stall: retry next cycle. Undo the
                    // probe statistics so the retry is not double
                    // counted.
                    self.stats.total.l2_accesses -= 1;
                    self.stats.total.l2_misses -= 1;
                    self.stats.per_kernel[k].l2_accesses -= 1;
                    self.stats.per_kernel[k].l2_misses -= 1;
                    return;
                }
                self.l2_in[ch].pop_front();
                let stripped = req.line / self.num_channels as u64;
                self.arrival_clock += 1;
                self.dram[ch].enqueue(DramRequest {
                    line: stripped,
                    tag: req.line,
                    arrival: self.arrival_clock,
                });
                if req.is_store {
                    self.stats.per_kernel[k].dram_writes += 1;
                    self.stats.total.dram_writes += 1;
                } else {
                    self.stats.per_kernel[k].dram_reads += 1;
                    self.stats.total.dram_reads += 1;
                    self.pending_fills[ch]
                        .entry(req.line)
                        .or_default()
                        .push(req);
                }
                self.stats.dram_by_sm[req.sm_id] += 1;
            }
        }
    }

    /// The earliest future cycle `>= from` at which [`Self::tick`] can
    /// change state: the ingress head's arrival, any non-empty L2 input
    /// queue (serviced one request per channel per cycle, forcing "next
    /// cycle"), the earliest DRAM dispatch opportunity, the earliest
    /// data-ready DRAM completion, or the earliest scheduled SM response.
    /// Returns `u64::MAX` when fully quiescent. Pending fills never need
    /// their own entry: their line is always also queued in a DRAM channel
    /// or sitting in `dram_done`.
    #[must_use]
    pub fn next_event(&self, from: u64) -> u64 {
        // The ingress is FIFO with a constant latency and monotone submit
        // times, so the front entry carries the minimum ready stamp.
        let mut best = u64::MAX;
        if let Some(&(ready, _)) = self.ingress.front() {
            best = ready.max(from);
        }
        if self.l2_pending != 0 {
            return from;
        }
        for ch in &self.dram {
            if let Some(at) = ch.next_dispatch(from) {
                best = best.min(at);
            }
        }
        if let Some(&Reverse(Timed { ready, .. })) = self.dram_done.peek() {
            best = best.min(ready.max(from));
        }
        if let Some(&Reverse(Timed { ready, .. })) = self.responses.peek() {
            best = best.min(ready.max(from));
        }
        best
    }

    /// Bulk-replays per-cycle accounting over the dead span `[from, to)`
    /// that a fast-forward skipped. Only DRAM bus-occupancy counters tick
    /// during a dead span; every queue is provably idle until `to` because
    /// [`Self::next_event`] returned a cycle `>= to`.
    pub fn account_skip(&mut self, from: u64, to: u64) {
        for ch in &mut self.dram {
            ch.account_skip(from, to);
        }
    }

    /// Aggregate statistics.
    #[must_use]
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Total DRAM data transactions (reads + writes) serviced.
    #[must_use]
    pub fn dram_serviced(&self) -> u64 {
        self.dram.iter().map(DramChannel::serviced).sum()
    }

    /// Total DRAM data-bus busy cycles across channels.
    #[must_use]
    pub fn dram_busy_cycles(&self) -> u64 {
        self.dram.iter().map(DramChannel::busy_cycles).sum()
    }

    /// Number of DRAM channels.
    #[must_use]
    pub fn num_channels(&self) -> usize {
        self.num_channels
    }

    /// Fraction of cycles the DRAM data buses were busy, given `cycles`
    /// elapsed.
    #[must_use]
    pub fn dram_busy_fraction(&self, cycles: u64) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        let busy: u64 = self.dram.iter().map(DramChannel::busy_cycles).sum();
        busy as f64 / (cycles * self.dram.len() as u64) as f64
    }

    /// Whether any request is still in flight anywhere in the subsystem.
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.ingress.is_empty()
            && self.l2_in.iter().all(VecDeque::is_empty)
            && self.pending_fills.iter().all(BTreeMap::is_empty)
            && self.responses.is_empty()
            && self.dram_done.is_empty()
            && self.dram.iter().all(|d| d.queue_len() == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> MemSubsystem {
        MemSubsystem::new(&GpuConfig::isca_baseline())
    }

    fn load(line: LineAddr, sm: usize) -> MemRequest {
        MemRequest {
            line,
            sm_id: sm,
            kernel: KernelId(0),
            is_store: false,
        }
    }

    fn run_until_response(
        m: &mut MemSubsystem,
        start: u64,
        budget: u64,
    ) -> Option<(u64, Vec<MemResponse>)> {
        let mut out = Vec::new();
        for now in start..start + budget {
            m.tick(now, &mut out);
            if !out.is_empty() {
                return Some((now, out));
            }
        }
        None
    }

    #[test]
    fn cold_load_round_trips_through_dram() {
        let mut m = mem();
        m.submit(0, load(100, 3));
        let (cycle, out) = run_until_response(&mut m, 0, 2000).expect("response");
        assert_eq!(
            out,
            vec![MemResponse {
                line: 100,
                sm_id: 3
            }]
        );
        // Must include icnt + dram + icnt at minimum.
        assert!(cycle > 2 * 8, "latency too small: {cycle}");
        assert_eq!(m.stats().total.l2_misses, 1);
        assert_eq!(m.stats().total.dram_reads, 1);
        assert!(m.is_quiescent());
    }

    #[test]
    fn second_load_hits_l2() {
        let mut m = mem();
        m.submit(0, load(100, 0));
        let (t1, _) = run_until_response(&mut m, 0, 2000).unwrap();
        m.submit(t1 + 1, load(100, 1));
        let (t2, out) = run_until_response(&mut m, t1 + 1, 2000).unwrap();
        assert_eq!(out[0].sm_id, 1);
        let lat1 = t1;
        let lat2 = t2 - (t1 + 1);
        assert!(lat2 < lat1, "L2 hit ({lat2}) should beat DRAM ({lat1})");
        assert_eq!(m.stats().total.l2_misses, 1);
        assert_eq!(m.stats().total.dram_reads, 1);
    }

    #[test]
    fn concurrent_loads_to_same_line_merge() {
        let mut m = mem();
        m.submit(0, load(100, 0));
        m.submit(0, load(100, 1));
        let mut out = Vec::new();
        for now in 0..2000 {
            m.tick(now, &mut out);
        }
        assert_eq!(out.len(), 2, "both SMs must receive fills");
        assert_eq!(m.stats().total.dram_reads, 1, "one DRAM read only");
    }

    #[test]
    fn stores_produce_no_response() {
        let mut m = mem();
        m.submit(
            0,
            MemRequest {
                line: 5,
                sm_id: 0,
                kernel: KernelId(1),
                is_store: true,
            },
        );
        let mut out = Vec::new();
        for now in 0..2000 {
            m.tick(now, &mut out);
        }
        assert!(out.is_empty());
        assert_eq!(m.stats().kernel(KernelId(1)).dram_writes, 1);
        assert!(m.is_quiescent());
    }

    #[test]
    fn per_kernel_stats_are_attributed() {
        let mut m = mem();
        m.submit(0, load(7, 0));
        m.submit(
            0,
            MemRequest {
                line: 13,
                sm_id: 0,
                kernel: KernelId(2),
                is_store: false,
            },
        );
        let mut out = Vec::new();
        for now in 0..2000 {
            m.tick(now, &mut out);
        }
        assert_eq!(m.stats().kernel(KernelId(0)).l2_accesses, 1);
        assert_eq!(m.stats().kernel(KernelId(2)).l2_accesses, 1);
        assert_eq!(m.stats().kernel(KernelId(5)), KernelMemStats::default());
    }

    #[test]
    fn lines_spread_across_channels() {
        let m = mem();
        let channels: std::collections::HashSet<_> = (0u64..6).map(|l| m.channel_of(l)).collect();
        assert_eq!(channels.len(), 6);
    }

    #[test]
    fn bandwidth_saturates_under_streaming() {
        let mut m = mem();
        // Saturate: submit far more distinct lines than the channels can
        // service in the window.
        let mut out = Vec::new();
        let mut line = 0u64;
        for now in 0..3000 {
            if now % 2 == 0 {
                for _ in 0..4 {
                    m.submit(now, load(line * 997, 0));
                    line += 1;
                }
            }
            m.tick(now, &mut out);
        }
        let frac = m.dram_busy_fraction(3000);
        assert!(frac > 0.5, "DRAM should be mostly busy, got {frac}");
    }
}
