//! Miss-status holding registers.
//!
//! Each SM's L1 tracks outstanding misses in an MSHR table. Misses to a line
//! that is already in flight merge into the existing entry (up to a merge
//! limit); a full table back-pressures the LSU, which is one of the
//! contention effects intra-SM sharing must manage.

use std::collections::BTreeMap;

use crate::access::LineAddr;

/// Identifies a load waiting on an in-flight line. The SM resolves this to a
/// warp slot when the fill returns; the generation counter guards against a
/// slot being recycled while the fill is in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MshrWaiter {
    /// Warp slot within the owning SM.
    pub warp_slot: usize,
    /// Generation of the warp occupying the slot when the miss was issued.
    pub warp_gen: u32,
    /// The warp-local load this transaction belongs to.
    pub load_id: u32,
}

/// Outcome of registering a miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// New entry allocated: the caller must forward a memory request.
    Allocated,
    /// Merged into an in-flight entry: no new memory request needed.
    Merged,
    /// Table or merge capacity exhausted: the access must retry later.
    Rejected,
}

/// MSHR table: line address -> waiters.
#[derive(Debug, Clone)]
pub struct MshrTable {
    /// Line-ordered (`BTreeMap`) so the strict-invariant walk and any future
    /// drain see a deterministic order (`determinism` lint).
    entries: BTreeMap<LineAddr, Vec<MshrWaiter>>,
    max_entries: usize,
    max_merged: usize,
    /// Retired waiter vectors kept for reuse so the per-miss allocate /
    /// per-fill free churn disappears from the tick path.
    pool: Vec<Vec<MshrWaiter>>,
}

impl MshrTable {
    /// Creates a table with `max_entries` distinct in-flight lines and up to
    /// `max_merged` waiters per line.
    #[must_use]
    pub fn new(max_entries: u32, max_merged: u32) -> Self {
        // u32 -> usize never truncates. xtask-allow: no-lossy-cast
        let max_entries = max_entries as usize;
        Self {
            entries: BTreeMap::new(),
            max_entries,
            // xtask-allow: no-lossy-cast
            max_merged: max_merged.max(1) as usize,
            pool: Vec::with_capacity(max_entries),
        }
    }

    /// Registers a miss on `line` for `waiter`.
    pub fn register(&mut self, line: LineAddr, waiter: MshrWaiter) -> MshrOutcome {
        if let Some(waiters) = self.entries.get_mut(&line) {
            if waiters.len() >= self.max_merged {
                return MshrOutcome::Rejected;
            }
            waiters.push(waiter);
            return MshrOutcome::Merged;
        }
        if self.entries.len() >= self.max_entries {
            return MshrOutcome::Rejected;
        }
        let mut waiters = self.pool.pop().unwrap_or_default();
        waiters.push(waiter);
        self.entries.insert(line, waiters);
        if crate::invariant::enabled() {
            self.assert_within_bounds();
        }
        MshrOutcome::Allocated
    }

    /// Verifies that the table respects its configured bounds, panicking on
    /// the first violation.
    ///
    /// Runs automatically after every allocation when strict invariants are
    /// compiled in (see [`crate::invariant::enabled`]).
    ///
    /// # Panics
    ///
    /// Panics if more lines are in flight than the table has entries, or a
    /// line holds more (or fewer) waiters than the merge bound allows.
    pub fn assert_within_bounds(&self) {
        assert!(
            self.entries.len() <= self.max_entries,
            "MSHR corruption: {} in-flight lines exceed the {}-entry table",
            self.entries.len(),
            self.max_entries
        );
        for (line, waiters) in &self.entries {
            assert!(
                !waiters.is_empty(),
                "MSHR corruption: line {line:#x} tracked with no waiters"
            );
            assert!(
                waiters.len() <= self.max_merged,
                "MSHR corruption: line {line:#x} holds {} waiters, merge bound is {}",
                waiters.len(),
                self.max_merged
            );
        }
    }

    /// Completes the fill of `line`, returning every waiter that was merged
    /// into it (empty if the line was not tracked).
    pub fn complete(&mut self, line: LineAddr) -> Vec<MshrWaiter> {
        self.entries.remove(&line).unwrap_or_default()
    }

    /// Completes the fill of `line`, appending its waiters to `out` and
    /// recycling the entry's storage internally — the allocation-free
    /// variant of [`Self::complete`] used on the per-fill hot path.
    pub fn complete_into(&mut self, line: LineAddr, out: &mut Vec<MshrWaiter>) {
        if let Some(mut waiters) = self.entries.remove(&line) {
            out.append(&mut waiters);
            if self.pool.len() < self.max_entries {
                self.pool.push(waiters);
            }
        }
    }

    /// Whether `line` is already in flight.
    #[must_use]
    pub fn contains(&self, line: LineAddr) -> bool {
        self.entries.contains_key(&line)
    }

    /// Number of in-flight lines.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no lines are in flight.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn waiter(slot: usize) -> MshrWaiter {
        MshrWaiter {
            warp_slot: slot,
            warp_gen: 0,
            load_id: 0,
        }
    }

    #[test]
    fn first_miss_allocates_second_merges() {
        let mut m = MshrTable::new(4, 4);
        assert_eq!(m.register(10, waiter(0)), MshrOutcome::Allocated);
        assert_eq!(m.register(10, waiter(1)), MshrOutcome::Merged);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn completion_returns_all_waiters() {
        let mut m = MshrTable::new(4, 4);
        let _ = m.register(10, waiter(0));
        let _ = m.register(10, waiter(1));
        let ws = m.complete(10);
        assert_eq!(ws, vec![waiter(0), waiter(1)]);
        assert!(m.is_empty());
        assert!(m.complete(10).is_empty());
    }

    #[test]
    fn table_capacity_rejects() {
        let mut m = MshrTable::new(2, 4);
        assert_eq!(m.register(1, waiter(0)), MshrOutcome::Allocated);
        assert_eq!(m.register(2, waiter(0)), MshrOutcome::Allocated);
        assert_eq!(m.register(3, waiter(0)), MshrOutcome::Rejected);
        // Merging into existing entries still works while full.
        assert_eq!(m.register(1, waiter(1)), MshrOutcome::Merged);
    }

    #[test]
    fn merge_capacity_rejects() {
        let mut m = MshrTable::new(4, 2);
        assert_eq!(m.register(1, waiter(0)), MshrOutcome::Allocated);
        assert_eq!(m.register(1, waiter(1)), MshrOutcome::Merged);
        assert_eq!(m.register(1, waiter(2)), MshrOutcome::Rejected);
    }

    #[test]
    fn completing_frees_capacity() {
        let mut m = MshrTable::new(1, 1);
        assert_eq!(m.register(1, waiter(0)), MshrOutcome::Allocated);
        assert_eq!(m.register(2, waiter(0)), MshrOutcome::Rejected);
        let _ = m.complete(1);
        assert_eq!(m.register(2, waiter(0)), MshrOutcome::Allocated);
    }

    #[test]
    fn clear_empties_the_table() {
        let mut m = MshrTable::new(2, 2);
        let _ = m.register(5, waiter(0));
        assert!(m.contains(5));
        m.clear();
        assert!(m.is_empty());
        assert!(!m.contains(5));
    }
}
