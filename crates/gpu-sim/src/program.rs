//! Synthetic warp programs.
//!
//! Real GPGPU kernels are replaced by deterministic synthetic instruction
//! streams (see DESIGN.md, substitution table). A [`Program`] is a loop body
//! of [`Inst`]s; every warp executes the body for a configurable number of
//! iterations. The generator controls exactly the properties the paper's
//! conclusions depend on: the functional-unit mix, the register dependence
//! distance (which drives read-after-write stalls and compute saturation),
//! and the fraction of global-memory instructions (which drives the memory
//! system).

use crate::rng::SimRng;

/// Virtual register index within a warp's synthetic register window.
pub type Reg = u8;

/// Number of virtual registers each synthetic warp program may name.
pub const NUM_VIRTUAL_REGS: usize = 32;

/// Functional-unit class of an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Integer/FP32 arithmetic executed on the SP (ALU) pipeline.
    Alu,
    /// Transcendental executed on the special-function unit.
    Sfu,
    /// Global-memory load executed on the LSU; goes through L1/L2/DRAM.
    GlobalLoad,
    /// Global-memory store executed on the LSU; fire-and-forget traffic.
    GlobalStore,
    /// Shared-memory access executed on the LSU; never leaves the SM.
    SharedMem,
    /// CTA-wide barrier (`__syncthreads`): the warp blocks until every
    /// live warp of its CTA has issued the same barrier.
    Barrier,
}

impl OpClass {
    /// Whether the instruction occupies the load/store unit.
    #[must_use]
    pub fn uses_lsu(self) -> bool {
        matches!(self, Self::GlobalLoad | Self::GlobalStore | Self::SharedMem)
    }

    /// Whether the instruction is a CTA-wide barrier.
    #[must_use]
    pub fn is_barrier(self) -> bool {
        self == Self::Barrier
    }

    /// Whether the instruction produces global-memory traffic.
    #[must_use]
    pub fn is_global(self) -> bool {
        matches!(self, Self::GlobalLoad | Self::GlobalStore)
    }
}

/// One synthetic warp instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Inst {
    /// Functional-unit class.
    pub op: OpClass,
    /// Destination register, or `None` for stores.
    pub dst: Option<Reg>,
    /// Source registers read by the instruction.
    pub srcs: [Option<Reg>; 2],
}

/// A loop body executed repeatedly by every warp of a kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    insts: Vec<Inst>,
}

impl Program {
    /// Builds a program from an explicit instruction list.
    ///
    /// # Panics
    ///
    /// Panics if `insts` is empty: a warp must always have a next
    /// instruction to fetch.
    #[must_use]
    pub fn new(insts: Vec<Inst>) -> Self {
        assert!(!insts.is_empty(), "program body must not be empty");
        Self { insts }
    }

    /// The instruction at `pc` (wrapping semantics are the caller's
    /// responsibility; `pc` must be in range).
    #[must_use]
    pub fn inst(&self, pc: usize) -> Inst {
        self.insts[pc]
    }

    /// Body length in instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the body is empty. Always `false` by construction; provided
    /// for API completeness.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Iterates over the body.
    pub fn iter(&self) -> std::slice::Iter<'_, Inst> {
        self.insts.iter()
    }

    /// Fraction of the body belonging to `op`.
    #[must_use]
    pub fn fraction(&self, op: OpClass) -> f64 {
        let n = self.insts.iter().filter(|i| i.op == op).count();
        n as f64 / self.insts.len() as f64
    }
}

/// Parameters for deterministic random program generation.
///
/// The fractions need not sum to 1: the remainder becomes ALU work.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramSpec {
    /// Loop-body length in instructions.
    pub body_len: usize,
    /// Fraction of SFU instructions.
    pub sfu_frac: f64,
    /// Fraction of global loads.
    pub gload_frac: f64,
    /// Fraction of global stores.
    pub gstore_frac: f64,
    /// Fraction of shared-memory accesses.
    pub shmem_frac: f64,
    /// Fraction of CTA-wide barriers (`__syncthreads`); tiled kernels
    /// synchronize between tile loads and tile use.
    pub barrier_frac: f64,
    /// Register dependence distance: instruction `i` reads the destination
    /// of instruction `i - dep_distance`. Small values serialize the warp
    /// (compute-saturating behaviour); large values expose ILP.
    pub dep_distance: usize,
    /// RNG seed so identical specs generate identical programs.
    pub seed: u64,
}

impl Default for ProgramSpec {
    fn default() -> Self {
        Self {
            body_len: 64,
            sfu_frac: 0.0,
            gload_frac: 0.1,
            gstore_frac: 0.0,
            shmem_frac: 0.0,
            barrier_frac: 0.0,
            dep_distance: 4,
            seed: 0,
        }
    }
}

impl ProgramSpec {
    /// Generates the program described by this spec.
    ///
    /// Instruction classes are laid out by deterministic stochastic
    /// interleaving so that memory operations are spread through the body
    /// (matching how compiled kernels interleave loads with arithmetic)
    /// while the exact mix converges to the requested fractions.
    ///
    /// # Panics
    ///
    /// Panics if `body_len` is zero or the fractions are negative or sum to
    /// more than 1.
    #[must_use]
    pub fn generate(&self) -> Program {
        assert!(self.body_len > 0, "body_len must be positive");
        let mem_frac = self.sfu_frac
            + self.gload_frac
            + self.gstore_frac
            + self.shmem_frac
            + self.barrier_frac;
        assert!(
            self.sfu_frac >= 0.0
                && self.gload_frac >= 0.0
                && self.gstore_frac >= 0.0
                && self.shmem_frac >= 0.0
                && self.barrier_frac >= 0.0
                && mem_frac <= 1.0 + 1e-9,
            "instruction-class fractions must be non-negative and sum to <= 1"
        );

        let mut rng = SimRng::seed_from_u64(self.seed);
        let n = self.body_len;
        // Exact per-class counts (largest-remainder rounding keeps the mix
        // faithful even for short bodies).
        let counts = [
            (OpClass::Sfu, self.sfu_frac),
            (OpClass::GlobalLoad, self.gload_frac),
            (OpClass::GlobalStore, self.gstore_frac),
            (OpClass::SharedMem, self.shmem_frac),
            (OpClass::Barrier, self.barrier_frac),
        ];
        let mut ops: Vec<OpClass> = Vec::with_capacity(n);
        for (op, frac) in counts {
            let k = (frac * n as f64).round() as usize;
            ops.extend(std::iter::repeat_n(op, k.min(n - ops.len())));
        }
        while ops.len() < n {
            ops.push(OpClass::Alu);
        }
        // Deterministic shuffle spreads classes through the body.
        rng.shuffle(&mut ops);

        // The register window never exceeds the body length: a body of `n`
        // instructions writes at most `n` distinct registers, and naming
        // more would generate reads of never-defined registers that the
        // verifier (`gpu_sim::verify`) rightly rejects.
        let window = NUM_VIRTUAL_REGS.min(n);
        let dep = self.dep_distance.max(1);
        let insts = ops
            .iter()
            .enumerate()
            .map(|(i, &op)| {
                let dst_reg = (i % window) as Reg;
                // Primary source: the destination written `dep` instructions
                // earlier, creating the requested dependence chain.
                let src0 = (i + window - (dep % window)) % window;
                // Secondary source: a uniformly random earlier register,
                // mimicking the irregular second operands of real code.
                let src1 = rng.range_usize(window);
                if op == OpClass::Barrier {
                    // Barriers carry no operands: they synchronize, not
                    // compute.
                    Inst {
                        op,
                        dst: None,
                        srcs: [None, None],
                    }
                } else {
                    Inst {
                        op,
                        dst: if op == OpClass::GlobalStore {
                            None
                        } else {
                            Some(dst_reg)
                        },
                        srcs: [Some(src0 as Reg), Some(src1 as Reg)],
                    }
                }
            })
            .collect();
        Program::new(repair_undefined_reads(insts))
    }
}

/// Rewrites source operands that name a register no instruction defines.
///
/// Destination registers are assigned positionally, but stores and barriers
/// define nothing, so a register whose body slots all land on stores would
/// otherwise be read while never written — which the kernel verifier
/// (`gpu_sim::verify`) rejects as a hard error. Each such read is redirected
/// to the destination of the nearest preceding defining instruction
/// (wrapping around the loop body), which preserves the read's short-range
/// RAW character. If the body defines nothing at all (e.g. pure stores),
/// source operands are dropped entirely.
fn repair_undefined_reads(mut insts: Vec<Inst>) -> Vec<Inst> {
    let mut defined = [false; NUM_VIRTUAL_REGS];
    for inst in &insts {
        if let Some(dst) = inst.dst {
            defined[dst as usize % NUM_VIRTUAL_REGS] = true;
        }
    }
    // Last register defined at or before each position, wrapping: seed the
    // scan with the last definition in the body.
    let mut last_def: Option<Reg> = insts.iter().rev().find_map(|i| i.dst);
    for inst in &mut insts {
        for src in &mut inst.srcs {
            if let Some(reg) = *src {
                if !defined[reg as usize % NUM_VIRTUAL_REGS] {
                    *src = last_def;
                }
            }
        }
        if let Some(dst) = inst.dst {
            last_def = Some(dst);
        }
    }
    insts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ProgramSpec {
        ProgramSpec {
            body_len: 200,
            sfu_frac: 0.1,
            gload_frac: 0.2,
            gstore_frac: 0.05,
            shmem_frac: 0.15,
            barrier_frac: 0.0,
            dep_distance: 3,
            seed: 42,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(spec().generate(), spec().generate());
    }

    #[test]
    fn different_seeds_differ() {
        let mut other = spec();
        other.seed = 43;
        assert_ne!(spec().generate(), other.generate());
    }

    #[test]
    fn fractions_match_request() {
        let p = spec().generate();
        assert!((p.fraction(OpClass::Sfu) - 0.1).abs() < 0.01);
        assert!((p.fraction(OpClass::GlobalLoad) - 0.2).abs() < 0.01);
        assert!((p.fraction(OpClass::GlobalStore) - 0.05).abs() < 0.01);
        assert!((p.fraction(OpClass::SharedMem) - 0.15).abs() < 0.01);
        assert!((p.fraction(OpClass::Alu) - 0.5).abs() < 0.01);
    }

    #[test]
    fn stores_and_barriers_have_no_destination() {
        let mut sp = spec();
        sp.barrier_frac = 0.05;
        let p = sp.generate();
        for inst in p.iter() {
            match inst.op {
                OpClass::GlobalStore => assert_eq!(inst.dst, None),
                OpClass::Barrier => {
                    assert_eq!(inst.dst, None);
                    assert_eq!(inst.srcs, [None, None]);
                }
                _ => assert!(inst.dst.is_some()),
            }
        }
        assert!((p.fraction(OpClass::Barrier) - 0.05).abs() < 0.01);
    }

    #[test]
    fn dependence_distance_is_honored() {
        let p = ProgramSpec {
            dep_distance: 1,
            ..spec()
        }
        .generate();
        // With distance 1 every instruction's first source is the previous
        // instruction's destination register index.
        for i in 1..p.len() {
            let src = p.inst(i).srcs[0].unwrap() as usize;
            assert_eq!(src, (i - 1) % NUM_VIRTUAL_REGS);
        }
    }

    #[test]
    #[should_panic(expected = "body_len must be positive")]
    fn zero_length_body_rejected() {
        let _ = ProgramSpec {
            body_len: 0,
            ..ProgramSpec::default()
        }
        .generate();
    }

    #[test]
    #[should_panic(expected = "fractions")]
    fn overfull_fractions_rejected() {
        let _ = ProgramSpec {
            gload_frac: 0.9,
            sfu_frac: 0.9,
            ..ProgramSpec::default()
        }
        .generate();
    }

    #[test]
    fn op_class_predicates() {
        assert!(OpClass::GlobalLoad.uses_lsu());
        assert!(OpClass::SharedMem.uses_lsu());
        assert!(!OpClass::Alu.uses_lsu());
        assert!(OpClass::GlobalStore.is_global());
        assert!(!OpClass::SharedMem.is_global());
    }
}
