//! A tiny deterministic PRNG (xoshiro256++ seeded via SplitMix64).
//!
//! The simulator must replay identically across runs, platforms, and
//! dependency upgrades, so it uses its own fixed-algorithm generator rather
//! than an external crate whose stream may change between versions.

/// xoshiro256++ pseudo-random generator.
///
/// # Examples
///
/// ```
/// use gpu_sim::SimRng;
///
/// let mut a = SimRng::seed_from_u64(7);
/// let mut b = SimRng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // identical streams
/// assert!(a.range_u64(10) < 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn range_u64(&mut self, n: u64) -> u64 {
        assert!(n > 0, "range_u64 requires n > 0");
        // Multiply-shift rejection-free mapping (Lemire); the tiny modulo
        // bias is irrelevant for workload generation.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform integer in `[0, n)` as `usize`.
    pub fn range_usize(&mut self, n: usize) -> usize {
        self.range_u64(n as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range_usize(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = SimRng::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(r.range_u64(10) < 10);
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = SimRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.range_usize(10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_f64_in_unit_interval() {
        let mut r = SimRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    #[should_panic(expected = "n > 0")]
    fn zero_range_panics() {
        let mut r = SimRng::seed_from_u64(0);
        let _ = r.range_u64(0);
    }

    #[test]
    fn clone_preserves_stream() {
        let mut a = SimRng::seed_from_u64(11);
        let _ = a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
