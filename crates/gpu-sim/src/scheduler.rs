//! Warp schedulers: greedy-then-oldest (GPGPU-Sim's `gto`, the Table I
//! default) and loose round-robin (the Fig. 10b alternative).

use crate::warp::Warp;

/// Warp scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedulerKind {
    /// Keep issuing from the last warp that issued; fall back to the oldest
    /// ready warp (by launch order).
    #[default]
    GreedyThenOldest,
    /// Rotate through warps starting after the last issuer.
    RoundRobin,
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::GreedyThenOldest => write!(f, "gto"),
            Self::RoundRobin => write!(f, "rr"),
        }
    }
}

/// Per-scheduler selection state. Warps are statically partitioned across
/// schedulers by slot parity (`slot % num_schedulers == sched_id`).
#[derive(Debug)]
pub struct SchedulerState {
    kind: SchedulerKind,
    sched_id: usize,
    num_schedulers: usize,
    last_issued: Option<usize>,
}

impl SchedulerState {
    /// Creates the state for scheduler `sched_id` of `num_schedulers`.
    #[must_use]
    pub fn new(
        kind: SchedulerKind,
        sched_id: usize,
        num_schedulers: usize,
        _max_warps: usize,
    ) -> Self {
        Self {
            kind,
            sched_id,
            num_schedulers,
            last_issued: None,
        }
    }

    /// Whether `slot` belongs to this scheduler's partition.
    #[must_use]
    pub fn owns(&self, slot: usize) -> bool {
        slot % self.num_schedulers == self.sched_id
    }

    /// Fills `out` with this scheduler's occupied warp slots in issue-
    /// priority order.
    pub fn fill_order(&self, warps: &[Option<Warp>], out: &mut Vec<usize>) {
        out.clear();
        match self.kind {
            SchedulerKind::GreedyThenOldest => {
                if let Some(g) = self.last_issued {
                    if warps.get(g).is_some_and(Option::is_some) {
                        out.push(g);
                    }
                }
                let greedy = self.last_issued;
                let mut rest: Vec<usize> = (self.sched_id..warps.len())
                    .step_by(self.num_schedulers)
                    .filter(|&s| Some(s) != greedy && warps[s].is_some())
                    .collect();
                rest.sort_by_key(|&s| warps[s].as_ref().map_or(u64::MAX, |w| w.launch_seq));
                out.extend(rest);
            }
            SchedulerKind::RoundRobin => {
                let slots: Vec<usize> = (self.sched_id..warps.len())
                    .step_by(self.num_schedulers)
                    .collect();
                let start = self
                    .last_issued
                    .and_then(|l| slots.iter().position(|&s| s == l).map(|p| p + 1))
                    .unwrap_or(0);
                for i in 0..slots.len() {
                    let s = slots[(start + i) % slots.len()];
                    if warps[s].is_some() {
                        out.push(s);
                    }
                }
            }
        }
    }

    /// Records that `slot` issued this cycle.
    pub fn note_issue(&mut self, slot: usize) {
        self.last_issued = Some(slot);
    }

    /// The slot that issued most recently, if any.
    #[must_use]
    pub fn last_issued(&self) -> Option<usize> {
        self.last_issued
    }

    /// The scheduling policy.
    #[must_use]
    pub fn kind(&self) -> SchedulerKind {
        self.kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessPattern;
    use crate::kernel::{KernelDesc, KernelId};
    use crate::program::ProgramSpec;

    fn warp(launch_seq: u64) -> Warp {
        let desc = KernelDesc {
            name: "t".into(),
            grid_ctas: 1,
            threads_per_cta: 32,
            regs_per_thread: 8,
            shmem_per_cta: 0,
            program: ProgramSpec::default().generate(),
            iterations: 1,
            pattern: AccessPattern::Streaming { transactions: 1 },
            icache_miss_rate: 0.0,
            shmem_conflict_degree: 1,
            seed: 0,
        };
        Warp::new(&desc, KernelId(0), 0, 0, 0, 0, launch_seq, 2)
    }

    fn slots(n: usize, seqs: &[(usize, u64)]) -> Vec<Option<Warp>> {
        let mut v: Vec<Option<Warp>> = (0..n).map(|_| None).collect();
        for &(slot, seq) in seqs {
            v[slot] = Some(warp(seq));
        }
        v
    }

    #[test]
    fn partition_by_parity() {
        let s0 = SchedulerState::new(SchedulerKind::GreedyThenOldest, 0, 2, 8);
        let s1 = SchedulerState::new(SchedulerKind::GreedyThenOldest, 1, 2, 8);
        assert!(s0.owns(0) && s0.owns(6));
        assert!(!s0.owns(3));
        assert!(s1.owns(3) && !s1.owns(4));
    }

    #[test]
    fn gto_puts_greedy_first_then_oldest() {
        let warps = slots(8, &[(0, 5), (2, 1), (4, 9), (6, 3)]);
        let mut s = SchedulerState::new(SchedulerKind::GreedyThenOldest, 0, 2, 8);
        let mut out = Vec::new();
        s.fill_order(&warps, &mut out);
        // No greedy yet: pure oldest-first.
        assert_eq!(out, vec![2, 6, 0, 4]);
        s.note_issue(4);
        s.fill_order(&warps, &mut out);
        assert_eq!(out, vec![4, 2, 6, 0]);
    }

    #[test]
    fn gto_drops_vacated_greedy_slot() {
        let mut warps = slots(8, &[(0, 5), (2, 1)]);
        let mut s = SchedulerState::new(SchedulerKind::GreedyThenOldest, 0, 2, 8);
        s.note_issue(0);
        warps[0] = None;
        let mut out = Vec::new();
        s.fill_order(&warps, &mut out);
        assert_eq!(out, vec![2]);
    }

    #[test]
    fn round_robin_rotates() {
        let warps = slots(8, &[(1, 0), (3, 1), (5, 2), (7, 3)]);
        let mut s = SchedulerState::new(SchedulerKind::RoundRobin, 1, 2, 8);
        let mut out = Vec::new();
        s.fill_order(&warps, &mut out);
        assert_eq!(out, vec![1, 3, 5, 7]);
        s.note_issue(3);
        s.fill_order(&warps, &mut out);
        assert_eq!(out, vec![5, 7, 1, 3]);
        s.note_issue(7);
        s.fill_order(&warps, &mut out);
        assert_eq!(out, vec![1, 3, 5, 7]); // wraps around, 7 now last
    }

    #[test]
    fn display_names() {
        assert_eq!(SchedulerKind::GreedyThenOldest.to_string(), "gto");
        assert_eq!(SchedulerKind::RoundRobin.to_string(), "rr");
    }
}
