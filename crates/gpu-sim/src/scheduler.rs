//! Warp schedulers: greedy-then-oldest (GPGPU-Sim's `gto`, the Table I
//! default) and loose round-robin (the Fig. 10b alternative).

use crate::warp::Warp;

/// Warp scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedulerKind {
    /// Keep issuing from the last warp that issued; fall back to the oldest
    /// ready warp (by launch order).
    #[default]
    GreedyThenOldest,
    /// Rotate through warps starting after the last issuer.
    RoundRobin,
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::GreedyThenOldest => write!(f, "gto"),
            Self::RoundRobin => write!(f, "rr"),
        }
    }
}

/// Per-scheduler selection state. Warps are statically partitioned across
/// schedulers by slot parity (`slot % num_schedulers == sched_id`).
#[derive(Debug)]
pub struct SchedulerState {
    kind: SchedulerKind,
    sched_id: usize,
    num_schedulers: usize,
    last_issued: Option<usize>,
}

impl SchedulerState {
    /// Creates the state for scheduler `sched_id` of `num_schedulers`.
    #[must_use]
    pub fn new(
        kind: SchedulerKind,
        sched_id: usize,
        num_schedulers: usize,
        _max_warps: usize,
    ) -> Self {
        Self {
            kind,
            sched_id,
            num_schedulers,
            last_issued: None,
        }
    }

    /// Whether `slot` belongs to this scheduler's partition.
    #[must_use]
    pub fn owns(&self, slot: usize) -> bool {
        slot % self.num_schedulers == self.sched_id
    }

    /// Bitmask of the slots this scheduler owns among `n_slots` (at most
    /// 64). Computed once at SM construction; the issue stage intersects it
    /// with the warp-table eligibility masks every cycle.
    #[must_use]
    pub fn owned_mask(&self, n_slots: usize) -> u64 {
        assert!(n_slots <= 64, "owned_mask holds at most 64 slots");
        let mut mask = 0u64;
        let mut slot = self.sched_id;
        while slot < n_slots {
            mask |= 1u64 << slot;
            slot += self.num_schedulers;
        }
        mask
    }

    /// Picks the winning slot out of `issuable` (a bitmask of
    /// operand-ready, unit-available candidate slots) — the mask-based
    /// replacement for scanning warps in [`Self::fill_order`] priority.
    /// `launch_seq` supplies the per-slot launch stamps (greedy-then-oldest
    /// key) and its length is the slot count. Policy matches the scan
    /// exactly: the last issuer wins outright under either policy (the
    /// greedy slot's key was 0 in the scan, below every other key);
    /// greedy-then-oldest falls back to the minimum launch stamp; round-
    /// robin rotates the mask so `trailing_zeros` finds the first candidate
    /// at-or-after the slot following the last issuer.
    #[must_use]
    pub fn select(&self, issuable: u64, launch_seq: &[u64]) -> Option<usize> {
        if issuable == 0 {
            return None;
        }
        if let Some(g) = self.last_issued {
            if issuable & (1u64 << g) != 0 {
                return Some(g);
            }
        }
        match self.kind {
            SchedulerKind::GreedyThenOldest => {
                let mut best_slot = 0usize;
                let mut best_key = u64::MAX;
                let mut m = issuable;
                while m != 0 {
                    let slot = m.trailing_zeros() as usize;
                    m &= m - 1;
                    // Launch stamps are unique (a monotone counter), so
                    // strict `<` picks the oldest warp unambiguously.
                    if launch_seq[slot] < best_key {
                        best_key = launch_seq[slot];
                        best_slot = slot;
                    }
                }
                Some(best_slot)
            }
            SchedulerKind::RoundRobin => {
                let n_slots = launch_seq.len();
                // Origin is the slot after the last issuer; reduce mod
                // n_slots first so the sentinel (`last == n_slots`, nothing
                // issued yet) wraps to slot 0. Rotating the mask right by
                // the origin puts cyclic distance in bit position, so the
                // lowest set bit is the first candidate at-or-after the
                // origin; wrapped slots land in the high bits, after every
                // unwrapped one, exactly like the scan's distance key.
                let last = self.last_issued.unwrap_or(n_slots);
                let origin = ((last + 1) % n_slots) as u32;
                let rot = issuable.rotate_right(origin);
                Some(((origin + rot.trailing_zeros()) & 63) as usize)
            }
        }
    }

    /// Fills `out` with this scheduler's occupied warp slots in issue-
    /// priority order.
    pub fn fill_order(&self, warps: &[Option<Warp>], out: &mut Vec<usize>) {
        out.clear();
        match self.kind {
            SchedulerKind::GreedyThenOldest => {
                if let Some(g) = self.last_issued {
                    if warps.get(g).is_some_and(Option::is_some) {
                        out.push(g);
                    }
                }
                let greedy = self.last_issued;
                let mut rest: Vec<usize> = (self.sched_id..warps.len())
                    .step_by(self.num_schedulers)
                    .filter(|&s| Some(s) != greedy && warps[s].is_some())
                    .collect();
                rest.sort_by_key(|&s| warps[s].as_ref().map_or(u64::MAX, |w| w.launch_seq));
                out.extend(rest);
            }
            SchedulerKind::RoundRobin => {
                let slots: Vec<usize> = (self.sched_id..warps.len())
                    .step_by(self.num_schedulers)
                    .collect();
                let start = self
                    .last_issued
                    .and_then(|l| slots.iter().position(|&s| s == l).map(|p| p + 1))
                    .unwrap_or(0);
                for i in 0..slots.len() {
                    let s = slots[(start + i) % slots.len()];
                    if warps[s].is_some() {
                        out.push(s);
                    }
                }
            }
        }
    }

    /// Records that `slot` issued this cycle.
    pub fn note_issue(&mut self, slot: usize) {
        self.last_issued = Some(slot);
    }

    /// The slot that issued most recently, if any.
    #[must_use]
    pub fn last_issued(&self) -> Option<usize> {
        self.last_issued
    }

    /// The scheduling policy.
    #[must_use]
    pub fn kind(&self) -> SchedulerKind {
        self.kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessPattern;
    use crate::kernel::{KernelDesc, KernelId};
    use crate::program::ProgramSpec;

    fn warp(launch_seq: u64) -> Warp {
        let desc = KernelDesc {
            name: "t".into(),
            grid_ctas: 1,
            threads_per_cta: 32,
            regs_per_thread: 8,
            shmem_per_cta: 0,
            program: ProgramSpec::default().generate(),
            iterations: 1,
            pattern: AccessPattern::Streaming { transactions: 1 },
            icache_miss_rate: 0.0,
            shmem_conflict_degree: 1,
            seed: 0,
        };
        Warp::new(&desc, KernelId(0), 0, 0, 0, 0, launch_seq, 2)
    }

    fn slots(n: usize, seqs: &[(usize, u64)]) -> Vec<Option<Warp>> {
        let mut v: Vec<Option<Warp>> = (0..n).map(|_| None).collect();
        for &(slot, seq) in seqs {
            v[slot] = Some(warp(seq));
        }
        v
    }

    #[test]
    fn partition_by_parity() {
        let s0 = SchedulerState::new(SchedulerKind::GreedyThenOldest, 0, 2, 8);
        let s1 = SchedulerState::new(SchedulerKind::GreedyThenOldest, 1, 2, 8);
        assert!(s0.owns(0) && s0.owns(6));
        assert!(!s0.owns(3));
        assert!(s1.owns(3) && !s1.owns(4));
    }

    #[test]
    fn gto_puts_greedy_first_then_oldest() {
        let warps = slots(8, &[(0, 5), (2, 1), (4, 9), (6, 3)]);
        let mut s = SchedulerState::new(SchedulerKind::GreedyThenOldest, 0, 2, 8);
        let mut out = Vec::new();
        s.fill_order(&warps, &mut out);
        // No greedy yet: pure oldest-first.
        assert_eq!(out, vec![2, 6, 0, 4]);
        s.note_issue(4);
        s.fill_order(&warps, &mut out);
        assert_eq!(out, vec![4, 2, 6, 0]);
    }

    #[test]
    fn gto_drops_vacated_greedy_slot() {
        let mut warps = slots(8, &[(0, 5), (2, 1)]);
        let mut s = SchedulerState::new(SchedulerKind::GreedyThenOldest, 0, 2, 8);
        s.note_issue(0);
        warps[0] = None;
        let mut out = Vec::new();
        s.fill_order(&warps, &mut out);
        assert_eq!(out, vec![2]);
    }

    #[test]
    fn round_robin_rotates() {
        let warps = slots(8, &[(1, 0), (3, 1), (5, 2), (7, 3)]);
        let mut s = SchedulerState::new(SchedulerKind::RoundRobin, 1, 2, 8);
        let mut out = Vec::new();
        s.fill_order(&warps, &mut out);
        assert_eq!(out, vec![1, 3, 5, 7]);
        s.note_issue(3);
        s.fill_order(&warps, &mut out);
        assert_eq!(out, vec![5, 7, 1, 3]);
        s.note_issue(7);
        s.fill_order(&warps, &mut out);
        assert_eq!(out, vec![1, 3, 5, 7]); // wraps around, 7 now last
    }

    /// Mask-based `select` must agree with the slot-scan `fill_order`
    /// priority on the first issuable candidate.
    fn first_issuable(s: &SchedulerState, warps: &[Option<Warp>], issuable: u64) -> Option<usize> {
        let mut order = Vec::new();
        s.fill_order(warps, &mut order);
        order
            .into_iter()
            .find(|&slot| issuable & (1u64 << slot) != 0)
    }

    #[test]
    fn select_matches_fill_order_for_gto() {
        let warps = slots(8, &[(0, 5), (2, 1), (4, 9), (6, 3)]);
        let seqs: Vec<u64> = warps
            .iter()
            .map(|w| w.as_ref().map_or(0, |w| w.launch_seq))
            .collect();
        let mut s = SchedulerState::new(SchedulerKind::GreedyThenOldest, 0, 2, 8);
        for issuable in [0b0101_0101u64, 0b0101_0000, 0b0000_0100, 0] {
            assert_eq!(
                s.select(issuable, &seqs),
                first_issuable(&s, &warps, issuable)
            );
        }
        s.note_issue(4);
        for issuable in [0b0101_0101u64, 0b0101_0000, 0b0100_0001] {
            assert_eq!(
                s.select(issuable, &seqs),
                first_issuable(&s, &warps, issuable)
            );
        }
        // Greedy slot no longer issuable: oldest wins.
        assert_eq!(s.select(0b0100_0101, &seqs), Some(2));
    }

    #[test]
    fn select_matches_fill_order_for_round_robin() {
        let warps = slots(8, &[(1, 0), (3, 1), (5, 2), (7, 3)]);
        let seqs: Vec<u64> = warps
            .iter()
            .map(|w| w.as_ref().map_or(0, |w| w.launch_seq))
            .collect();
        let mut s = SchedulerState::new(SchedulerKind::RoundRobin, 1, 2, 8);
        for issuable in [0b1010_1010u64, 0b1000_0010, 0b0000_1000] {
            assert_eq!(
                s.select(issuable, &seqs),
                first_issuable(&s, &warps, issuable)
            );
        }
        s.note_issue(3);
        // The issue stage gives the last issuer key 0 under *either*
        // policy, so a still-issuable greedy slot wins outright even in
        // round-robin (fill_order lacks this quirk, so compare against it
        // only when the greedy slot is not issuable).
        assert_eq!(s.select(0b1010_1010, &seqs), Some(3), "greedy wins");
        for issuable in [0b1010_0010u64, 0b0000_0010] {
            assert_eq!(
                s.select(issuable, &seqs),
                first_issuable(&s, &warps, issuable)
            );
        }
        s.note_issue(7); // wrap-around: origin reduces to slot 0
        for issuable in [0b0010_1010u64, 0b0010_0010, 0b0000_0010] {
            assert_eq!(
                s.select(issuable, &seqs),
                first_issuable(&s, &warps, issuable)
            );
        }
    }

    #[test]
    fn owned_mask_matches_owns() {
        for (sched_id, num) in [(0usize, 2usize), (1, 2), (0, 1), (2, 3)] {
            let s = SchedulerState::new(SchedulerKind::GreedyThenOldest, sched_id, num, 48);
            let mask = s.owned_mask(48);
            for slot in 0..48 {
                assert_eq!(mask & (1u64 << slot) != 0, s.owns(slot), "slot {slot}");
            }
            assert_eq!(mask >> 48, 0, "no bits past n_slots");
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(SchedulerKind::GreedyThenOldest.to_string(), "gto");
        assert_eq!(SchedulerKind::RoundRobin.to_string(), "rr");
    }
}
