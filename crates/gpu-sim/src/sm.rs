//! The streaming multiprocessor: CTA residency, dual warp schedulers,
//! functional units, LSU, L1/MSHR front end, and stall accounting.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use crate::access::LineAddr;
use crate::alloc::{CtaResources, PartitionWindow, SmResources};
use crate::cache::{ProbeResult, SetAssocCache};
use crate::config::GpuConfig;
use crate::kernel::{KernelDesc, KernelId};
use crate::mem::{MemRequest, MemSubsystem};
use crate::mshr::{MshrOutcome, MshrTable, MshrWaiter};
use crate::program::OpClass;
use crate::scheduler::{SchedulerKind, SchedulerState};
use crate::stats::{SmStats, StallReason};
use crate::warp::{Warp, WarpTable};

/// A CTA resident on an SM.
#[derive(Debug, Clone)]
pub struct CtaRecord {
    /// Owning kernel.
    pub kernel: KernelId,
    /// Global CTA index within the kernel's grid.
    pub cta_index: u64,
    resources: CtaResources,
    warp_slots: Vec<usize>,
    warps_done: u32,
}

/// Notification that a CTA ran to completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtaCompletion {
    /// Kernel the CTA belonged to.
    pub kernel: KernelId,
    /// Its global CTA index.
    pub cta_index: u64,
}

#[derive(Debug)]
enum LsuKind {
    GlobalLoad { load_id: u32 },
    GlobalStore,
    Shared,
}

#[derive(Debug)]
struct LsuOp {
    warp_slot: usize,
    warp_gen: u32,
    kernel: KernelId,
    kind: LsuKind,
    lines: VecDeque<LineAddr>,
    cycles_left: u32,
}

#[derive(Debug, Default)]
struct UnitSet {
    alu_busy_until: u64,
    sfu_busy_until: u64,
    lsu: Option<LsuOp>,
}

/// One streaming multiprocessor.
#[derive(Debug)]
pub struct Sm {
    /// This SM's index within the GPU.
    pub id: usize,
    cfg: GpuConfig,
    /// Storage resources (registers, shared memory, threads, CTA slots).
    pub resources: SmResources,
    l1: SetAssocCache,
    mshr: MshrTable,
    warps: Vec<Option<Warp>>,
    warp_gens: Vec<u32>,
    ctas: Vec<Option<CtaRecord>>,
    schedulers: Vec<SchedulerState>,
    units: Vec<UnitSet>,
    launch_counter: u64,
    /// Per-kernel-slot spatial partition windows. Kept in a `BTreeMap` (not
    /// a hash map) so any future iteration is slot-ordered: byte-identical
    /// results at any worker count is a workspace-wide contract
    /// (`determinism` lint, DESIGN.md §11).
    windows: BTreeMap<usize, PartitionWindow>,
    /// Per-kernel-slot (CTA count, thread count) residency.
    residency: Vec<(u32, u32)>,
    stats: SmStats,
    completions: Vec<CtaCompletion>,
    line_buf: Vec<LineAddr>,
    /// Recycled line deques for in-flight LSU ops: completed (or evicted)
    /// ops return their deque here so issuing a new memory op never
    /// allocates on the tick path (`no-tick-alloc`). Bounded by the number
    /// of scheduler units (at most one LSU op each).
    lsu_line_pool: Vec<VecDeque<LineAddr>>,
    finished_buf: Vec<usize>,
    waiter_buf: Vec<MshrWaiter>,
    fetch_ptr: usize,
    /// Cycle stamp of the most recent `tick`, for the strict monotonicity
    /// check (`None` before the first tick).
    last_tick: Option<u64>,
    /// Struct-of-arrays mirror of per-warp scheduler-visible state:
    /// residency/finished/barrier/i-buffer/mem-pending bitmasks plus the
    /// head instruction's readiness stamp and op class. Refreshed whenever
    /// a warp mutates (`refresh_warp`), so the fetch/issue/horizon hot
    /// paths intersect masks instead of chasing `Option<Warp>` pointers.
    table: WarpTable,
    /// Per-scheduler ownership masks (slot `s` belongs to scheduler
    /// `s % num_schedulers`); precomputed at construction.
    sched_masks: Vec<u64>,
    /// Fetch micro-horizon: no warp can fetch before this cycle, so the
    /// fetch stage skips its slot walk entirely. 0 means unknown/dirty.
    fetch_idle_until: u64,
    /// Bit `i` set while scheduler `i`'s LSU pipeline holds an op, so the
    /// LSU stage (and horizon) can skip the unit walk when idle.
    lsu_busy_mask: u64,
    /// Cached event horizon; valid while `horizon_valid` and no state
    /// change (fetch/issue/LSU work, fill, launch, eviction) occurred.
    horizon: u64,
    horizon_valid: bool,
}

impl Sm {
    /// Creates SM `id` under configuration `cfg` with the given warp
    /// scheduler.
    #[must_use]
    pub fn new(id: usize, cfg: &GpuConfig, scheduler: SchedulerKind) -> Self {
        let max_warps = cfg.sm.max_warps() as usize;
        let num_sched = cfg.sm.num_schedulers as usize;
        let schedulers: Vec<SchedulerState> = (0..num_sched)
            .map(|s| SchedulerState::new(scheduler, s, num_sched, max_warps))
            .collect();
        let sched_masks = schedulers.iter().map(|s| s.owned_mask(max_warps)).collect();
        Self {
            id,
            cfg: cfg.clone(),
            resources: SmResources::new(&cfg.sm),
            l1: SetAssocCache::new(cfg.l1.size_bytes, cfg.l1.assoc, cfg.l1.line_bytes),
            mshr: MshrTable::new(cfg.l1.mshr_entries, cfg.l1.mshr_max_merged),
            warps: (0..max_warps).map(|_| None).collect(),
            warp_gens: vec![0; max_warps],
            ctas: (0..cfg.sm.max_ctas as usize).map(|_| None).collect(),
            schedulers,
            units: (0..num_sched).map(|_| UnitSet::default()).collect(),
            launch_counter: 0,
            windows: BTreeMap::new(),
            residency: Vec::new(),
            stats: SmStats::default(),
            completions: Vec::new(),
            line_buf: Vec::with_capacity(32),
            lsu_line_pool: Vec::with_capacity(num_sched),
            finished_buf: Vec::with_capacity(8),
            waiter_buf: Vec::with_capacity(8),
            fetch_ptr: 0,
            last_tick: None,
            table: WarpTable::new(max_warps),
            sched_masks,
            fetch_idle_until: 0,
            lsu_busy_mask: 0,
            horizon: 0,
            horizon_valid: false,
        }
    }

    /// Statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &SmStats {
        &self.stats
    }

    /// Read-only view of warp slot `slot` (tests and oracles).
    #[must_use]
    pub fn warp(&self, slot: usize) -> Option<&Warp> {
        self.warps.get(slot).and_then(Option::as_ref)
    }

    /// The derived struct-of-arrays scoreboard (read-only view).
    #[must_use]
    pub fn scoreboard(&self) -> &WarpTable {
        &self.table
    }

    /// Number of warp slots on this SM.
    #[must_use]
    pub fn warp_slot_count(&self) -> usize {
        self.warps.len()
    }

    /// Re-derives the scoreboard from the warps and panics on any
    /// divergence from the incrementally maintained bitmasks.
    pub fn check_scoreboard(&self) {
        self.table.assert_matches(&self.warps);
    }

    /// Re-derives slot `slot`'s scoreboard entry from its warp. Every
    /// warp mutation must route through here (or `WarpTable::clear`) so
    /// the bitmask mirrors never go stale.
    fn refresh_warp(&mut self, slot: usize) {
        match self.warps[slot].as_ref() {
            Some(w) => self.table.refresh(slot, w),
            None => self.table.clear(slot),
        }
        self.fetch_idle_until = 0;
    }

    /// The L1 data cache (read-only view for statistics).
    #[must_use]
    pub fn l1(&self) -> &SetAssocCache {
        &self.l1
    }

    /// CTAs of kernel-slot `slot` currently resident.
    #[must_use]
    pub fn kernel_ctas(&self, slot: usize) -> u32 {
        self.residency.get(slot).map_or(0, |r| r.0)
    }

    /// Threads of kernel-slot `slot` currently resident.
    #[must_use]
    pub fn kernel_threads(&self, slot: usize) -> u32 {
        self.residency.get(slot).map_or(0, |r| r.1)
    }

    /// Total resident CTAs.
    #[must_use]
    pub fn resident_ctas(&self) -> u32 {
        self.resources.ctas_used()
    }

    /// Sets (or clears) the partition window constraining kernel-slot
    /// `slot`'s allocations on this SM.
    pub fn set_window(&mut self, slot: usize, window: Option<PartitionWindow>) {
        match window {
            Some(w) => {
                self.windows.insert(slot, w);
            }
            None => {
                self.windows.remove(&slot);
            }
        }
        self.horizon_valid = false;
    }

    /// The partition window currently constraining kernel-slot `slot`.
    #[must_use]
    pub fn window(&self, slot: usize) -> Option<&PartitionWindow> {
        self.windows.get(&slot)
    }

    fn residency_mut(&mut self, slot: usize) -> &mut (u32, u32) {
        if self.residency.len() <= slot {
            self.residency.resize(slot + 1, (0, 0));
        }
        &mut self.residency[slot]
    }

    /// Whether a CTA of `desc` could be launched right now (without
    /// launching it).
    #[must_use]
    pub fn can_launch(&self, desc: &KernelDesc, kernel: KernelId) -> bool {
        let needed = desc.warps_per_cta() as usize;
        let free_slots = self.warps.iter().filter(|w| w.is_none()).count();
        if free_slots < needed {
            return false;
        }
        // Cheap capacity pre-checks; the definitive (fragmentation-aware)
        // answer comes from the allocator at launch time.
        let mut probe = self.resources.clone();
        probe
            .try_alloc(
                desc,
                self.windows.get(&kernel.0),
                self.kernel_ctas(kernel.0),
                self.kernel_threads(kernel.0),
            )
            .is_some()
    }

    /// Launches one CTA of `desc` with global index `cta_index`. Returns
    /// `false` (without side effects) if resources, windows, or warp slots
    /// do not permit it.
    pub fn launch_cta(&mut self, desc: &KernelDesc, kernel: KernelId, cta_index: u64) -> bool {
        let needed = desc.warps_per_cta() as usize;
        let free_slots: Vec<usize> = self
            .warps
            .iter()
            .enumerate()
            .filter_map(|(i, w)| w.is_none().then_some(i))
            .take(needed)
            .collect();
        if free_slots.len() < needed {
            return false;
        }
        let Some(lease) = self.resources.try_alloc(
            desc,
            self.windows.get(&kernel.0),
            self.kernel_ctas(kernel.0),
            self.kernel_threads(kernel.0),
        ) else {
            return false;
        };
        let cta_slot = self
            .ctas
            .iter()
            .position(Option::is_none)
            // Invariant: SmResources::try_alloc succeeded, so a CTA slot is
            // free; a miss here is an accounting bug worth aborting on.
            // xtask-allow: no-unwrap
            .expect("allocator admitted CTA but no CTA slot free");
        for (w, &slot) in free_slots.iter().enumerate() {
            let warp = Warp::new(
                desc,
                kernel,
                cta_slot,
                cta_index,
                w as u32,
                self.warp_gens[slot],
                self.launch_counter,
                self.cfg.sm.ibuffer_entries,
            );
            self.launch_counter += 1;
            self.table.refresh(slot, &warp);
            self.warps[slot] = Some(warp);
        }
        self.fetch_idle_until = 0;
        self.ctas[cta_slot] = Some(CtaRecord {
            kernel,
            cta_index,
            resources: lease,
            warp_slots: free_slots,
            warps_done: 0,
        });
        let r = self.residency_mut(kernel.0);
        r.0 += 1;
        r.1 += desc.threads_per_cta;
        self.horizon_valid = false;
        true
    }

    fn release_cta(&mut self, cta_slot: usize, threads_per_cta: u32) {
        let rec = self.ctas[cta_slot]
            .take()
            // Invariant: callers pass slots they just found occupied.
            // xtask-allow: no-unwrap
            .expect("release of empty CTA slot");
        self.resources.free(rec.resources);
        for slot in rec.warp_slots {
            self.warps[slot] = None;
            self.warp_gens[slot] = self.warp_gens[slot].wrapping_add(1);
            self.table.clear(slot);
        }
        self.fetch_idle_until = 0;
        let r = self.residency_mut(rec.kernel.0);
        r.0 -= 1;
        r.1 -= threads_per_cta;
        self.horizon_valid = false;
    }

    /// Immediately removes every CTA of kernel-slot `slot` (used when a
    /// kernel reaches its instruction target and releases its resources, or
    /// when the Warped-Slicer repartitions). In-flight memory fills for the
    /// removed warps are discarded on arrival via generation checks.
    pub fn evict_kernel(&mut self, slot: usize, desc: &KernelDesc) {
        let cta_slots: Vec<usize> = self
            .ctas
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.as_ref().is_some_and(|c| c.kernel.0 == slot).then_some(i))
            .collect();
        for cs in cta_slots {
            self.release_cta(cs, desc.threads_per_cta);
        }
        // Drop LSU work belonging to the evicted kernel.
        for (i, unit) in self.units.iter_mut().enumerate() {
            if unit.lsu.as_ref().is_some_and(|op| op.kernel.0 == slot) {
                unit.lsu = None;
                self.lsu_busy_mask &= !(1u64 << i);
            }
        }
        self.horizon_valid = false;
    }

    /// Drains CTA-completion notifications since the last call.
    pub fn take_completions(&mut self) -> Vec<CtaCompletion> {
        std::mem::take(&mut self.completions)
    }

    /// Drains CTA-completion notifications into `out`. Both this SM's
    /// internal buffer and `out` keep their capacity, so the per-tick
    /// collection path allocates nothing in steady state (unlike
    /// [`Self::take_completions`], which hands the whole Vec away).
    pub fn drain_completions_into(&mut self, out: &mut Vec<CtaCompletion>) {
        out.append(&mut self.completions);
    }

    /// Handles a memory fill arriving from the L2/DRAM.
    pub fn on_fill(&mut self, line: LineAddr, now: u64) {
        self.on_fill_batch(std::slice::from_ref(&line), now);
    }

    /// Handles every memory fill destined for this SM this cycle in one
    /// pass. Lines are applied in arrival order (the caller preserves the
    /// memory subsystem's response order per SM), so the result is
    /// byte-identical to calling [`Self::on_fill`] per line; batching lets
    /// the scoreboard refresh each touched warp once instead of per fill.
    pub fn on_fill_batch(&mut self, lines: &[LineAddr], now: u64) {
        if lines.is_empty() {
            return;
        }
        self.horizon_valid = false;
        let mut touched = 0u64;
        let mut waiters = std::mem::take(&mut self.waiter_buf);
        for &line in lines {
            self.l1.fill(line);
            waiters.clear();
            self.mshr.complete_into(line, &mut waiters);
            for MshrWaiter {
                warp_slot,
                warp_gen,
                load_id,
            } in waiters.drain(..)
            {
                if self.warp_gens[warp_slot] == warp_gen {
                    if let Some(w) = self.warps[warp_slot].as_mut() {
                        if w.complete_load_transaction(load_id, now) {
                            // Only a fully completed load changes the
                            // scoreboard (a register became ready).
                            touched |= 1u64 << warp_slot;
                        }
                    }
                }
            }
        }
        self.waiter_buf = waiters;
        while touched != 0 {
            let slot = touched.trailing_zeros() as usize;
            touched &= touched - 1;
            self.refresh_warp(slot);
        }
    }

    /// Advances the SM one cycle. `descs` is the kernel table (indexed by
    /// kernel slot); issued-instruction counts are accumulated into
    /// `kernel_insts`.
    pub fn tick(
        &mut self,
        now: u64,
        mem: &mut MemSubsystem,
        descs: &[KernelDesc],
        kernel_insts: &mut [u64],
    ) {
        if let Some(prev) = self.last_tick {
            crate::strict_assert!(
                now > prev,
                "SM {}: tick cycle went backwards or repeated ({now} after {prev})",
                self.id
            );
        }
        self.last_tick = Some(now);
        let fetched = self.fetch_stage(now, descs);
        let issued = self.issue_stage(now, descs, kernel_insts);
        let lsu_active = self.lsu_stage(now, mem);
        if fetched || issued || lsu_active {
            self.horizon_valid = false;
        }
        self.finalize_warps(descs);
        self.accumulate_occupancy();
        self.stats.cycles += 1;
        if crate::invariant::enabled() {
            self.mshr.assert_within_bounds();
            // SoA-vs-oracle: the incrementally maintained scoreboard must
            // match a fresh recomputation from the warps. Sampled every
            // 64th cycle to keep the debug suite fast; the property tests
            // in tests/soa_scoreboard.rs check after every step.
            if now & 63 == 0 {
                self.table.assert_matches(&self.warps);
            }
        }
    }

    fn fetch_stage(&mut self, now: u64, descs: &[KernelDesc]) -> bool {
        let n = self.warps.len();
        // The round-robin pointer advances whether or not anything fetched,
        // so the fast-forward bulk replay stays bit-exact.
        self.fetch_ptr = (self.fetch_ptr + 1) % n.max(1);
        if self.table.resident_mask() == 0 {
            return false;
        }
        // Micro-horizon: a failed pass records the earliest cycle any warp
        // could fetch; until then the slot walk is provably fruitless.
        // Invalidated (set to 0) whenever any warp state changes.
        if self.fetch_idle_until > now {
            return false;
        }
        let fetch_latency = self.cfg.sm.fetch_latency;
        let miss_penalty = self.cfg.sm.icache_miss_penalty;
        let mut budget = self.cfg.sm.fetch_width;
        let mut fetched = false;
        let mut min_next = u64::MAX;
        // Round-robin over warp slots so no warp starves the shared port.
        // Finished warps are fully fetched (fetch_at == MAX), so iterating
        // live() visits exactly the slots the dense scan could fetch from.
        let start = (self.fetch_ptr + n - 1) % n.max(1);
        let mut m = self.table.live().rotate_right(start as u32);
        while m != 0 {
            if budget == 0 {
                break;
            }
            let slot = (start + m.trailing_zeros() as usize) & 63;
            m &= m - 1;
            let at = self.table.fetch_at(slot);
            if at > now {
                min_next = min_next.min(at);
                continue;
            }
            // Invariant: live() only covers occupied slots.
            // xtask-allow: no-unwrap
            let warp = self.warps[slot].as_mut().expect("live slot occupied");
            if warp.fetch(now, &descs[warp.kernel.0], fetch_latency, miss_penalty) {
                budget -= 1;
                fetched = true;
                self.refresh_warp(slot);
            }
        }
        if !fetched {
            self.fetch_idle_until = min_next;
        }
        fetched
    }

    fn issue_stage(&mut self, now: u64, descs: &[KernelDesc], kernel_insts: &mut [u64]) -> bool {
        let mut any_issued = false;
        for sched_id in 0..self.schedulers.len() {
            // Candidate universe: occupied, unfinished slots this scheduler
            // owns. All classification below is mask intersection; only the
            // decoded, operand-checkable slots need a per-slot walk.
            let cand = self.table.live() & self.sched_masks[sched_id];
            if cand == 0 {
                self.stats.stalls.record(StallReason::Idle);
                continue;
            }
            let barrier_set = cand & self.table.barrier_mask();
            let rest = cand & !self.table.barrier_mask();
            let fetch_set = rest & self.table.ib_empty_mask();
            let decoded = rest & !self.table.ib_empty_mask();
            let mem_set = decoded & self.table.mem_pending_mask();
            let (alu_ok, sfu_ok, lsu_ok) = {
                let unit = &self.units[sched_id];
                (
                    unit.alu_busy_until <= now,
                    unit.sfu_busy_until <= now,
                    unit.lsu.is_none(),
                )
            };
            let mut n_raw = 0u32;
            let mut n_exec = 0u32;
            let mut issuable = 0u64;
            let mut m = decoded & !mem_set;
            while m != 0 {
                let slot = m.trailing_zeros() as usize;
                m &= m - 1;
                if self.table.head_ready(slot) > now {
                    n_raw += 1;
                    continue;
                }
                let available = match self.table.head_op(slot) {
                    OpClass::Alu => alu_ok,
                    OpClass::Sfu => sfu_ok,
                    OpClass::Barrier => true,
                    _ => lsu_ok,
                };
                if available {
                    issuable |= 1u64 << slot;
                } else {
                    n_exec += 1;
                }
            }

            if let Some(slot) = self.schedulers[sched_id].select(issuable, self.table.launch_seqs())
            {
                self.issue_to_unit(now, sched_id, slot, descs, kernel_insts);
                self.schedulers[sched_id].note_issue(slot);
                any_issued = true;
            } else {
                // Attribute the lost cycle to the reason blocking the most
                // warps (ties broken in the paper's Fig. 1 priority order);
                // strict comparison keeps the *first* maximum on ties.
                let counts = [
                    (mem_set.count_ones(), StallReason::LongMemoryLatency),
                    (n_raw, StallReason::ShortRawHazard),
                    (n_exec, StallReason::ExecResource),
                    (fetch_set.count_ones(), StallReason::IbufferEmpty),
                    (barrier_set.count_ones(), StallReason::Barrier),
                ];
                let mut best = counts[0];
                for &c in &counts[1..] {
                    if c.0 > best.0 {
                        best = c;
                    }
                }
                self.stats.stalls.record(best.1);
            }
        }
        any_issued
    }

    fn issue_to_unit(
        &mut self,
        now: u64,
        sched_id: usize,
        slot: usize,
        descs: &[KernelDesc],
        kernel_insts: &mut [u64],
    ) {
        let sm_cfg = &self.cfg.sm;
        // Invariant: the issue stage only selects occupied slots with a
        // non-empty i-buffer. xtask-allow: no-unwrap
        let warp = self.warps[slot].as_mut().expect("issuing to empty slot");
        let kernel = warp.kernel;
        let desc = &descs[kernel.0];
        let inst = warp.head().expect("non-empty i-buffer"); // xtask-allow: no-unwrap
        let unit = &mut self.units[sched_id];
        let warp_size = u64::from(crate::config::SmConfig::WARP_SIZE);
        match inst.op {
            OpClass::Alu => {
                let ii = warp_size / u64::from(sm_cfg.simt_width);
                unit.alu_busy_until = now + ii;
                self.stats.alu_busy += ii;
                let _ = warp.issue(now, u64::from(sm_cfg.alu_latency));
            }
            OpClass::Sfu => {
                let ii = warp_size / u64::from(sm_cfg.sfu_width);
                unit.sfu_busy_until = now + ii;
                self.stats.sfu_busy += ii;
                let _ = warp.issue(now, u64::from(sm_cfg.sfu_latency));
            }
            OpClass::SharedMem => {
                // Bank conflicts serialize the access: both the LSU
                // occupancy and the result latency scale with the degree.
                let degree = desc.shmem_conflict_degree.max(1);
                let base = (warp_size / u64::from(sm_cfg.lsu_width)) as u32;
                let latency = u64::from(sm_cfg.shmem_latency) + u64::from((degree - 1) * base);
                let _ = warp.issue(now, latency);
                unit.lsu = Some(LsuOp {
                    warp_slot: slot,
                    warp_gen: warp.gen,
                    kernel,
                    kind: LsuKind::Shared,
                    lines: VecDeque::new(),
                    cycles_left: base * degree,
                });
            }
            OpClass::Barrier => {
                let _ = warp.issue(now, 0);
                warp.at_barrier = true;
                let cta_slot = warp.cta_slot;
                self.note_barrier_arrival(cta_slot);
            }
            OpClass::GlobalLoad | OpClass::GlobalStore => {
                let _ = warp.issue(now, 0);
                self.line_buf.clear();
                {
                    let mut lines = std::mem::take(&mut self.line_buf);
                    warp.stream.next_access(&desc.pattern, &mut lines);
                    self.line_buf = lines;
                }
                let kind = if inst.op == OpClass::GlobalLoad {
                    // Invariant: the program generator always gives loads a
                    // destination register. xtask-allow: no-unwrap
                    let load_id = warp.begin_load(inst.dst.expect("loads have destinations"));
                    LsuKind::GlobalLoad { load_id }
                } else {
                    LsuKind::GlobalStore
                };
                // Reuse a pooled deque instead of collecting into a fresh
                // one: issuing a memory op must not allocate per-op.
                let mut lines = self.lsu_line_pool.pop().unwrap_or_default();
                lines.clear();
                lines.extend(self.line_buf.drain(..));
                unit.lsu = Some(LsuOp {
                    warp_slot: slot,
                    warp_gen: warp.gen,
                    kernel,
                    kind,
                    lines,
                    cycles_left: (warp_size / u64::from(sm_cfg.lsu_width)) as u32,
                });
            }
        }
        self.stats.kernel_mut(kernel.0).insts_issued += 1;
        if kernel.0 < kernel_insts.len() {
            kernel_insts[kernel.0] += 1;
        }
        if self.units[sched_id].lsu.is_some() {
            self.lsu_busy_mask |= 1u64 << sched_id;
        }
        self.refresh_warp(slot);
        if self.warps[slot].as_ref().is_some_and(Warp::finished) {
            self.finished_buf.push(slot);
        }
    }

    fn lsu_stage(&mut self, now: u64, mem: &mut MemSubsystem) -> bool {
        // Micro-horizon: every in-flight op sets its unit's bit, so an
        // all-zero mask means the unit walk below would find nothing.
        if self.lsu_busy_mask == 0 {
            return false;
        }
        let mut any_active = false;
        let l1_hit_latency = u64::from(self.cfg.sm.l1_hit_latency);
        for sched_id in 0..self.units.len() {
            let Some(mut op) = self.units[sched_id].lsu.take() else {
                continue;
            };
            any_active = true;
            self.stats.lsu_busy += 1;
            // A warp evicted mid-operation invalidates the op.
            if self.warp_gens[op.warp_slot] != op.warp_gen {
                op.lines.clear();
                self.lsu_line_pool.push(op.lines);
                self.lsu_busy_mask &= !(1u64 << sched_id);
                continue;
            }
            if let Some(&line) = op.lines.front() {
                let is_store = matches!(op.kind, LsuKind::GlobalStore);
                let probe = self.l1.access(line);
                let kstats = self.stats.kernel_mut(op.kernel.0);
                kstats.l1_accesses += 1;
                let mut processed = true;
                match (probe, is_store) {
                    (ProbeResult::Hit, true) => {
                        // Write-through: traffic still goes to memory.
                        mem.submit(
                            now,
                            MemRequest {
                                line,
                                sm_id: self.id,
                                kernel: op.kernel,
                                is_store: true,
                            },
                        );
                    }
                    (ProbeResult::Miss, true) => {
                        kstats.l1_misses += 1;
                        mem.submit(
                            now,
                            MemRequest {
                                line,
                                sm_id: self.id,
                                kernel: op.kernel,
                                is_store: true,
                            },
                        );
                    }
                    (ProbeResult::Hit, false) => {}
                    (ProbeResult::Miss, false) => {
                        kstats.l1_misses += 1;
                        let LsuKind::GlobalLoad { load_id } = op.kind else {
                            unreachable!("loads checked above")
                        };
                        let outcome = self.mshr.register(
                            line,
                            MshrWaiter {
                                warp_slot: op.warp_slot,
                                warp_gen: op.warp_gen,
                                load_id,
                            },
                        );
                        match outcome {
                            MshrOutcome::Allocated => {
                                mem.submit(
                                    now,
                                    MemRequest {
                                        line,
                                        sm_id: self.id,
                                        kernel: op.kernel,
                                        is_store: false,
                                    },
                                );
                                self.note_load_transaction(&op);
                            }
                            MshrOutcome::Merged => self.note_load_transaction(&op),
                            MshrOutcome::Rejected => {
                                // MSHR pressure: retry next cycle, undoing
                                // the optimistic statistics.
                                let kstats = self.stats.kernel_mut(op.kernel.0);
                                kstats.l1_accesses -= 1;
                                kstats.l1_misses -= 1;
                                processed = false;
                            }
                        }
                    }
                }
                if processed {
                    op.lines.pop_front();
                    op.cycles_left = op.cycles_left.saturating_sub(1);
                }
            } else if op.cycles_left > 0 {
                op.cycles_left -= 1;
            }

            if op.lines.is_empty() && op.cycles_left == 0 {
                if let LsuKind::GlobalLoad { load_id } = op.kind {
                    if let Some(w) = self.warps[op.warp_slot].as_mut() {
                        let _ = w.finish_load_issue(load_id, now + l1_hit_latency);
                    }
                    // An all-hit load just made its destination ready.
                    self.refresh_warp(op.warp_slot);
                }
                self.lsu_line_pool.push(op.lines);
                self.lsu_busy_mask &= !(1u64 << sched_id);
            } else {
                self.units[sched_id].lsu = Some(op);
            }
        }
        any_active
    }

    /// Releases a CTA's barrier once every live warp has arrived.
    fn note_barrier_arrival(&mut self, cta_slot: usize) {
        let Some(rec) = self.ctas[cta_slot].as_ref() else {
            return;
        };
        let all_arrived = rec.warp_slots.iter().all(|&s| {
            self.warps[s]
                .as_ref()
                .is_none_or(|w| w.finished() || w.at_barrier)
        });
        if all_arrived {
            // Collect the slots into a bitmask so the CTA record's borrow
            // ends before the warps (and the scoreboard) are mutated — this
            // also drops the old per-release Vec clone from the tick path.
            let mut mask = 0u64;
            for &s in &rec.warp_slots {
                mask |= 1u64 << s;
            }
            while mask != 0 {
                let s = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                if let Some(w) = self.warps[s].as_mut() {
                    w.at_barrier = false;
                }
                self.refresh_warp(s);
            }
        }
    }

    fn note_load_transaction(&mut self, op: &LsuOp) {
        if let LsuKind::GlobalLoad { load_id } = op.kind {
            if let Some(w) = self.warps[op.warp_slot].as_mut() {
                w.add_load_transaction(load_id);
            }
        }
    }

    fn finalize_warps(&mut self, descs: &[KernelDesc]) {
        // Count newly finished warps into their CTAs and retire CTAs whose
        // warps are all done.
        while let Some(slot) = self.finished_buf.pop() {
            let Some(warp) = self.warps[slot].as_ref() else {
                continue;
            };
            let cta_slot = warp.cta_slot;
            let done = {
                let rec = self.ctas[cta_slot]
                    .as_mut()
                    // Invariant: a warp's cta_slot stays live until every
                    // sibling warp finished. xtask-allow: no-unwrap
                    .expect("finished warp belongs to a live CTA");
                rec.warps_done += 1;
                rec.warps_done == rec.warp_slots.len() as u32
            };
            if done {
                let (kernel, cta_index) = {
                    // Same slot as the as_mut() above. xtask-allow: no-unwrap
                    let rec = self.ctas[cta_slot].as_ref().expect("checked above");
                    (rec.kernel, rec.cta_index)
                };
                self.release_cta(cta_slot, descs[kernel.0].threads_per_cta);
                self.completions.push(CtaCompletion { kernel, cta_index });
            }
        }
    }

    fn accumulate_occupancy(&mut self) {
        self.stats.reg_used_acc += u128::from(self.resources.regs.used());
        self.stats.shmem_used_acc += u128::from(self.resources.shmem.used());
        self.stats.threads_used_acc += u128::from(self.resources.threads_used());
        // One popcount replaces the old per-warp occupancy accumulation.
        self.stats.warps_active_acc += u128::from(self.table.live().count_ones());
    }

    /// The earliest future cycle `>= from` at which this SM can change
    /// state on its own: a warp fetch becoming possible, a warp's operands
    /// becoming ready, or an execution unit freeing up for an
    /// operand-ready warp. Pending memory fills and barrier releases are
    /// deliberately *not* warp-local events: a fill is reported by the
    /// memory subsystem, and a barrier release coincides with a sibling
    /// warp's issue (itself an SM event). Returns `u64::MAX` when the SM
    /// can never progress without external input, and `from` when the very
    /// next tick can do work. The result is cached; any state change
    /// invalidates it.
    pub fn next_event(&mut self, from: u64) -> u64 {
        if self.horizon_valid && self.horizon >= from {
            return self.horizon;
        }
        let h = self.compute_horizon(from);
        self.horizon = h;
        self.horizon_valid = true;
        h
    }

    fn compute_horizon(&self, from: u64) -> u64 {
        // An in-flight LSU operation processes a line (or burns a
        // serialization cycle) every tick.
        if self.lsu_busy_mask != 0 {
            return from;
        }
        if self.table.resident_mask() == 0 {
            return u64::MAX;
        }
        let num_sched = self.schedulers.len();
        // Slots with no issue event of their own: a parked warp un-parks
        // only when the last sibling issues its barrier (that sibling's
        // event); an empty i-buffer is covered by the fetch event; a
        // pending global load by the memory subsystem's horizon.
        let skip =
            self.table.barrier_mask() | self.table.ib_empty_mask() | self.table.mem_pending_mask();
        let mut best = u64::MAX;
        let mut m = self.table.live();
        while m != 0 {
            let slot = m.trailing_zeros() as usize;
            let bit = m & m.wrapping_neg();
            m &= m - 1;
            let f = self.table.fetch_at(slot);
            if f != u64::MAX {
                best = best.min(f.max(from));
            }
            if skip & bit != 0 {
                continue;
            }
            let ready = self.table.head_ready(slot);
            let e = if ready > from {
                // RAW horizon. Even if the unit is still busy at `ready`,
                // the span must end there: the stall classification flips
                // from ShortRawHazard to ExecResource.
                ready
            } else {
                // Operands ready now: bounded by unit availability.
                let unit = &self.units[slot % num_sched];
                match self.table.head_op(slot) {
                    OpClass::Alu => unit.alu_busy_until.max(from),
                    OpClass::Sfu => unit.sfu_busy_until.max(from),
                    // Barriers always issue; LSU-class ops issue whenever
                    // the LSU is free, and no LSU op is in flight here.
                    _ => from,
                }
            };
            best = best.min(e);
            if best <= from {
                return from;
            }
        }
        best
    }

    /// Read-only mirror of `issue_stage`'s stall classification for
    /// scheduler `sched_id` at cycle `now`, used to replay a dead span in
    /// bulk. The event horizon guarantees the classification is constant
    /// across the span and that no warp can actually issue.
    fn classify_stall(&self, sched_id: usize, now: u64) -> StallReason {
        let cand = self.table.live() & self.sched_masks[sched_id];
        if cand == 0 {
            return StallReason::Idle;
        }
        let barrier_set = cand & self.table.barrier_mask();
        let rest = cand & !self.table.barrier_mask();
        let fetch_set = rest & self.table.ib_empty_mask();
        let decoded = rest & !self.table.ib_empty_mask();
        let mem_set = decoded & self.table.mem_pending_mask();
        let mut n_raw = 0u32;
        let mut n_exec = 0u32;
        let mut m = decoded & !mem_set;
        while m != 0 {
            let slot = m.trailing_zeros() as usize;
            m &= m - 1;
            if self.table.head_ready(slot) > now {
                n_raw += 1;
                continue;
            }
            crate::strict_assert!(
                {
                    let unit = &self.units[sched_id];
                    match self.table.head_op(slot) {
                        OpClass::Alu => unit.alu_busy_until > now,
                        OpClass::Sfu => unit.sfu_busy_until > now,
                        OpClass::Barrier => false,
                        _ => unit.lsu.is_some(),
                    }
                },
                "SM {}: warp slot {slot} was issuable inside a fast-forwarded span",
                self.id
            );
            n_exec += 1;
        }
        let counts = [
            (mem_set.count_ones(), StallReason::LongMemoryLatency),
            (n_raw, StallReason::ShortRawHazard),
            (n_exec, StallReason::ExecResource),
            (fetch_set.count_ones(), StallReason::IbufferEmpty),
            (barrier_set.count_ones(), StallReason::Barrier),
        ];
        let mut best = counts[0];
        for &c in &counts[1..] {
            if c.0 > best.0 {
                best = c;
            }
        }
        best.1
    }

    /// Bulk-replays the per-cycle bookkeeping `tick` would have performed
    /// over the dead span `[from, to)`: cycle and occupancy accumulators,
    /// the constant per-scheduler stall classification, and the fetch
    /// round-robin pointer. Callers must have established via
    /// [`Self::next_event`] (and the memory subsystem's horizon) that no
    /// state can change before `to`.
    pub fn account_skip(&mut self, from: u64, to: u64) {
        debug_assert!(to > from, "empty skip span");
        let span = to - from;
        for sched_id in 0..self.schedulers.len() {
            let reason = self.classify_stall(sched_id, from);
            self.stats.stalls.record_n(reason, span);
        }
        let n = self.warps.len().max(1) as u64;
        self.fetch_ptr = ((self.fetch_ptr as u64 + span % n) % n) as usize;
        self.stats.reg_used_acc += u128::from(self.resources.regs.used()) * u128::from(span);
        self.stats.shmem_used_acc += u128::from(self.resources.shmem.used()) * u128::from(span);
        self.stats.threads_used_acc += u128::from(self.resources.threads_used()) * u128::from(span);
        // live() is constant over a dead span: residency and finished bits
        // change only at issue/launch/release, all of which end spans.
        self.stats.warps_active_acc +=
            u128::from(self.table.live().count_ones()) * u128::from(span);
        self.stats.cycles += span;
        self.last_tick = Some(to - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessPattern;
    use crate::program::{Inst, Program, ProgramSpec};

    fn alu_kernel(iterations: u32) -> KernelDesc {
        KernelDesc {
            name: "alu".into(),
            grid_ctas: 64,
            threads_per_cta: 64,
            regs_per_thread: 16,
            shmem_per_cta: 0,
            program: ProgramSpec {
                body_len: 32,
                dep_distance: 8,
                gload_frac: 0.0,
                ..ProgramSpec::default()
            }
            .generate(),
            iterations,
            pattern: AccessPattern::Streaming { transactions: 1 },
            icache_miss_rate: 0.0,
            shmem_conflict_degree: 1,
            seed: 3,
        }
    }

    fn mem_kernel(iterations: u32) -> KernelDesc {
        KernelDesc {
            name: "mem".into(),
            grid_ctas: 64,
            threads_per_cta: 64,
            regs_per_thread: 16,
            shmem_per_cta: 0,
            program: ProgramSpec {
                body_len: 32,
                dep_distance: 2,
                gload_frac: 0.4,
                ..ProgramSpec::default()
            }
            .generate(),
            iterations,
            pattern: AccessPattern::Streaming { transactions: 1 },
            icache_miss_rate: 0.0,
            shmem_conflict_degree: 1,
            seed: 4,
        }
    }

    fn run(sm: &mut Sm, mem: &mut MemSubsystem, descs: &[KernelDesc], cycles: u64) -> Vec<u64> {
        let mut kernel_insts = vec![0u64; descs.len()];
        let mut responses = Vec::new();
        // Resume from the SM's own clock so repeated runs stay monotone.
        let start = sm.stats().cycles;
        for now in start..start + cycles {
            sm.tick(now, mem, descs, &mut kernel_insts);
            responses.clear();
            mem.tick(now, &mut responses);
            for r in &responses {
                sm.on_fill(r.line, now);
            }
        }
        kernel_insts
    }

    #[test]
    fn alu_kernel_executes_to_completion() {
        let cfg = GpuConfig::isca_baseline();
        let mut sm = Sm::new(0, &cfg, SchedulerKind::GreedyThenOldest);
        let mut mem = MemSubsystem::new(&cfg);
        let descs = vec![alu_kernel(4)];
        assert!(sm.launch_cta(&descs[0], KernelId(0), 0));
        assert_eq!(sm.resident_ctas(), 1);
        let insts = run(&mut sm, &mut mem, &descs, 3000);
        // 2 warps x 32 insts x 4 iterations = 256 instructions.
        assert_eq!(insts[0], 256);
        assert_eq!(sm.resident_ctas(), 0, "CTA should retire");
        let completions = sm.take_completions();
        assert_eq!(
            completions,
            vec![CtaCompletion {
                kernel: KernelId(0),
                cta_index: 0
            }]
        );
    }

    #[test]
    fn memory_kernel_round_trips_loads() {
        let cfg = GpuConfig::isca_baseline();
        let mut sm = Sm::new(0, &cfg, SchedulerKind::GreedyThenOldest);
        let mut mem = MemSubsystem::new(&cfg);
        let descs = vec![mem_kernel(2)];
        assert!(sm.launch_cta(&descs[0], KernelId(0), 0));
        let insts = run(&mut sm, &mut mem, &descs, 20_000);
        assert_eq!(insts[0], 128, "2 warps x 32 x 2 iterations");
        assert!(sm.stats().kernel(0).l1_accesses > 0);
        assert!(mem.stats().total.dram_reads > 0);
        assert!(sm.stats().stalls.mem > 0, "streaming loads must stall");
    }

    #[test]
    fn more_ctas_more_throughput_for_compute() {
        let cfg = GpuConfig::isca_baseline();
        let descs = vec![alu_kernel(50)];
        let mut ipc = Vec::new();
        for n in [1u64, 4] {
            let mut sm = Sm::new(0, &cfg, SchedulerKind::GreedyThenOldest);
            let mut mem = MemSubsystem::new(&cfg);
            for c in 0..n {
                assert!(sm.launch_cta(&descs[0], KernelId(0), c));
            }
            let insts = run(&mut sm, &mut mem, &descs, 2000);
            ipc.push(insts[0] as f64 / 2000.0);
        }
        assert!(
            ipc[1] > ipc[0] * 1.3,
            "4 CTAs ({}) should outrun 1 CTA ({})",
            ipc[1],
            ipc[0]
        );
    }

    #[test]
    fn launch_fails_when_resources_exhausted() {
        let cfg = GpuConfig::isca_baseline();
        let mut sm = Sm::new(0, &cfg, SchedulerKind::GreedyThenOldest);
        let desc = KernelDesc {
            threads_per_cta: 512,
            ..alu_kernel(1)
        };
        assert!(sm.launch_cta(&desc, KernelId(0), 0));
        assert!(sm.launch_cta(&desc, KernelId(0), 1));
        assert!(sm.launch_cta(&desc, KernelId(0), 2));
        // 4th CTA: 2048 threads > 1536.
        assert!(!sm.launch_cta(&desc, KernelId(0), 3));
        assert!(!sm.can_launch(&desc, KernelId(0)));
    }

    #[test]
    fn evict_kernel_releases_everything() {
        let cfg = GpuConfig::isca_baseline();
        let mut sm = Sm::new(0, &cfg, SchedulerKind::GreedyThenOldest);
        let mut mem = MemSubsystem::new(&cfg);
        let descs = vec![mem_kernel(1000)];
        for c in 0..4 {
            assert!(sm.launch_cta(&descs[0], KernelId(0), c));
        }
        let _ = run(&mut sm, &mut mem, &descs, 200);
        sm.evict_kernel(0, &descs[0]);
        assert_eq!(sm.resident_ctas(), 0);
        assert_eq!(sm.kernel_ctas(0), 0);
        assert_eq!(sm.kernel_threads(0), 0);
        assert_eq!(sm.resources.regs.used(), 0);
        // Late fills must not crash.
        let _ = run(&mut sm, &mut mem, &descs, 2000);
    }

    #[test]
    fn window_quota_blocks_extra_ctas() {
        let cfg = GpuConfig::isca_baseline();
        let mut sm = Sm::new(0, &cfg, SchedulerKind::GreedyThenOldest);
        let desc = alu_kernel(1);
        sm.set_window(
            0,
            Some(PartitionWindow {
                regs: crate::alloc::Region::whole(cfg.sm.max_registers),
                shmem: crate::alloc::Region::whole(cfg.sm.shared_mem_bytes),
                max_ctas: 2,
                max_threads: cfg.sm.max_threads,
            }),
        );
        assert!(sm.launch_cta(&desc, KernelId(0), 0));
        assert!(sm.launch_cta(&desc, KernelId(0), 1));
        assert!(!sm.launch_cta(&desc, KernelId(0), 2));
        sm.set_window(0, None);
        assert!(sm.launch_cta(&desc, KernelId(0), 2));
    }

    #[test]
    fn divergent_accesses_occupy_the_lsu_longer() {
        let cfg = GpuConfig::isca_baseline();
        let run_lsu_busy = |transactions: u32| {
            let mut sm = Sm::new(0, &cfg, SchedulerKind::GreedyThenOldest);
            let mut mem = MemSubsystem::new(&cfg);
            let desc = KernelDesc {
                pattern: AccessPattern::Random {
                    footprint_lines: 1 << 16,
                    transactions,
                },
                ..mem_kernel(4)
            };
            let descs = vec![desc];
            assert!(sm.launch_cta(&descs[0], KernelId(0), 0));
            let _ = run(&mut sm, &mut mem, &descs, 30_000);
            sm.stats().lsu_busy
        };
        let coalesced = run_lsu_busy(1);
        let divergent = run_lsu_busy(8);
        assert!(
            divergent > coalesced * 2,
            "8-way divergence ({divergent}) should occupy the LSU far longer than coalesced ({coalesced})"
        );
    }

    #[test]
    fn barriers_synchronize_cta_warps() {
        let cfg = GpuConfig::isca_baseline();
        let mut sm = Sm::new(0, &cfg, SchedulerKind::GreedyThenOldest);
        let mut mem = MemSubsystem::new(&cfg);
        // Body: a (randomly timed) load then ALU work desynchronizes the
        // warps, a barrier re-synchronizes them, then more work.
        let mut insts: Vec<Inst> = vec![Inst {
            op: OpClass::GlobalLoad,
            dst: Some(20),
            srcs: [Some(21), None],
        }];
        insts.extend((0..10).map(|i| Inst {
            op: OpClass::Alu,
            dst: Some(i as u8),
            srcs: [Some(if i == 0 { 20 } else { (i - 1) as u8 }), None],
        }));
        insts.push(Inst {
            op: OpClass::Barrier,
            dst: None,
            srcs: [None, None],
        });
        insts.extend((0..10).map(|i| Inst {
            op: OpClass::Alu,
            dst: Some((i + 11) as u8),
            srcs: [Some(i as u8), None],
        }));
        let desc = KernelDesc {
            name: "bar".into(),
            grid_ctas: 4,
            threads_per_cta: 128,
            regs_per_thread: 8,
            shmem_per_cta: 0,
            program: Program::new(insts),
            iterations: 6,
            pattern: AccessPattern::Random {
                footprint_lines: 1 << 14,
                transactions: 2,
            },
            icache_miss_rate: 0.0,
            shmem_conflict_degree: 1,
            seed: 0,
        };
        let descs = vec![desc];
        assert!(sm.launch_cta(&descs[0], KernelId(0), 0));
        let insts_done = run(&mut sm, &mut mem, &descs, 20_000);
        // All warps finish (no deadlock) and barrier stalls were recorded.
        assert_eq!(insts_done[0], 4 * 22 * 6, "all warps complete");
        assert!(
            sm.stats().stalls.barrier > 0,
            "barrier waits recorded: {:?}",
            sm.stats().stalls
        );
        assert_eq!(sm.resident_ctas(), 0, "CTA retires after barriers");
    }

    #[test]
    fn bank_conflicts_slow_shared_memory_kernels() {
        let cfg = GpuConfig::isca_baseline();
        let run_with_degree = |degree: u32| {
            let mut sm = Sm::new(0, &cfg, SchedulerKind::GreedyThenOldest);
            let mut mem = MemSubsystem::new(&cfg);
            let desc = KernelDesc {
                name: "shm".into(),
                grid_ctas: 64,
                threads_per_cta: 128,
                regs_per_thread: 8,
                shmem_per_cta: 1024,
                program: ProgramSpec {
                    body_len: 32,
                    shmem_frac: 0.5,
                    gload_frac: 0.0,
                    dep_distance: 8,
                    ..ProgramSpec::default()
                }
                .generate(),
                iterations: 100,
                pattern: AccessPattern::Streaming { transactions: 1 },
                icache_miss_rate: 0.0,
                shmem_conflict_degree: degree,
                seed: 0,
            };
            let descs = vec![desc];
            for c in 0..4 {
                assert!(sm.launch_cta(&descs[0], KernelId(0), c));
            }
            run(&mut sm, &mut mem, &descs, 4_000)[0]
        };
        let clean = run_with_degree(1);
        let conflicted = run_with_degree(8);
        assert!(
            clean as f64 > conflicted as f64 * 1.5,
            "8-way conflicts should hurt: {clean} vs {conflicted}"
        );
    }

    #[test]
    fn raw_stalls_dominate_serial_kernels() {
        let cfg = GpuConfig::isca_baseline();
        let mut sm = Sm::new(0, &cfg, SchedulerKind::GreedyThenOldest);
        let mut mem = MemSubsystem::new(&cfg);
        // Fully serial single-warp ALU chain.
        let insts: Vec<Inst> = (0..32)
            .map(|i| Inst {
                op: OpClass::Alu,
                dst: Some((i % 32) as u8),
                srcs: [Some(((i + 31) % 32) as u8), None],
            })
            .collect();
        let desc = KernelDesc {
            name: "serial".into(),
            grid_ctas: 1,
            threads_per_cta: 32,
            regs_per_thread: 8,
            shmem_per_cta: 0,
            program: Program::new(insts),
            iterations: 20,
            pattern: AccessPattern::Streaming { transactions: 1 },
            icache_miss_rate: 0.0,
            shmem_conflict_degree: 1,
            seed: 0,
        };
        let descs = vec![desc];
        assert!(sm.launch_cta(&descs[0], KernelId(0), 0));
        let _ = run(&mut sm, &mut mem, &descs, 8000);
        let st = sm.stats().stalls;
        assert!(
            st.raw > st.mem && st.raw > st.exec,
            "RAW should dominate: {st:?}"
        );
    }
}
