//! Per-SM statistics: instruction throughput, the stall-cycle taxonomy of
//! Fig. 1, functional-unit occupancy, storage-resource occupancy, and
//! per-kernel L1 behaviour.

/// Why a warp scheduler issued nothing in a given cycle (Fig. 1 taxonomy).
///
/// Classification priority follows the paper: long memory latency, then
/// short RAW hazards, then execute-stage structural hazards, then an empty
/// instruction buffer. A scheduler with no resident warps is `Idle`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallReason {
    /// All issuable warps wait on outstanding global loads.
    LongMemoryLatency,
    /// Warps wait on short ALU/SFU read-after-write dependences.
    ShortRawHazard,
    /// A warp was ready but its functional unit was occupied.
    ExecResource,
    /// No decoded instruction was available (fetch/i-cache pressure).
    IbufferEmpty,
    /// Warps wait at a CTA-wide barrier.
    Barrier,
    /// No resident warps to schedule.
    Idle,
}

impl StallReason {
    /// All reasons, in classification-priority order.
    pub const ALL: [StallReason; 6] = [
        StallReason::LongMemoryLatency,
        StallReason::ShortRawHazard,
        StallReason::ExecResource,
        StallReason::IbufferEmpty,
        StallReason::Barrier,
        StallReason::Idle,
    ];
}

/// Counts of scheduler-cycles lost to each stall reason.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    /// Long-memory-latency scheduler-cycles.
    pub mem: u64,
    /// Short-RAW scheduler-cycles.
    pub raw: u64,
    /// Execute-stage structural scheduler-cycles.
    pub exec: u64,
    /// I-buffer-empty scheduler-cycles.
    pub ibuffer: u64,
    /// Barrier-wait scheduler-cycles.
    pub barrier: u64,
    /// Idle scheduler-cycles (no warps).
    pub idle: u64,
}

impl StallBreakdown {
    /// Records one stalled scheduler-cycle.
    pub fn record(&mut self, reason: StallReason) {
        match reason {
            StallReason::LongMemoryLatency => self.mem += 1,
            StallReason::ShortRawHazard => self.raw += 1,
            StallReason::ExecResource => self.exec += 1,
            StallReason::IbufferEmpty => self.ibuffer += 1,
            StallReason::Barrier => self.barrier += 1,
            StallReason::Idle => self.idle += 1,
        }
    }

    /// Records `n` stalled scheduler-cycles with the same classification —
    /// used by the fast-forward path to replay a dead span in bulk.
    pub fn record_n(&mut self, reason: StallReason, n: u64) {
        match reason {
            StallReason::LongMemoryLatency => self.mem += n,
            StallReason::ShortRawHazard => self.raw += n,
            StallReason::ExecResource => self.exec += n,
            StallReason::IbufferEmpty => self.ibuffer += n,
            StallReason::Barrier => self.barrier += n,
            StallReason::Idle => self.idle += n,
        }
    }

    /// Count for `reason`.
    #[must_use]
    pub fn get(&self, reason: StallReason) -> u64 {
        match reason {
            StallReason::LongMemoryLatency => self.mem,
            StallReason::ShortRawHazard => self.raw,
            StallReason::ExecResource => self.exec,
            StallReason::IbufferEmpty => self.ibuffer,
            StallReason::Barrier => self.barrier,
            StallReason::Idle => self.idle,
        }
    }

    /// Total stalled scheduler-cycles, excluding idle.
    #[must_use]
    pub fn total_non_idle(&self) -> u64 {
        self.mem + self.raw + self.exec + self.ibuffer + self.barrier
    }

    /// Adds `other` component-wise — used to aggregate per-SM breakdowns
    /// into a GPU-wide total (e.g. for trace stall windows).
    pub fn accumulate(&mut self, other: &StallBreakdown) {
        self.mem += other.mem;
        self.raw += other.raw;
        self.exec += other.exec;
        self.ibuffer += other.ibuffer;
        self.barrier += other.barrier;
        self.idle += other.idle;
    }

    /// Component-wise difference (`self - earlier`).
    #[must_use]
    pub fn since(&self, earlier: &StallBreakdown) -> StallBreakdown {
        StallBreakdown {
            mem: self.mem - earlier.mem,
            raw: self.raw - earlier.raw,
            exec: self.exec - earlier.exec,
            ibuffer: self.ibuffer - earlier.ibuffer,
            barrier: self.barrier - earlier.barrier,
            idle: self.idle - earlier.idle,
        }
    }
}

/// Per-kernel, per-SM counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SmKernelStats {
    /// Warp instructions issued.
    pub insts_issued: u64,
    /// L1 data-cache probes.
    pub l1_accesses: u64,
    /// L1 data-cache misses.
    pub l1_misses: u64,
}

/// Statistics for one SM.
#[derive(Debug, Clone, Default)]
pub struct SmStats {
    /// Core cycles simulated.
    pub cycles: u64,
    /// Stall taxonomy (scheduler-cycles).
    pub stalls: StallBreakdown,
    /// Cycles an ALU pipeline was occupied (summed over schedulers).
    pub alu_busy: u64,
    /// Cycles an SFU pipeline was occupied.
    pub sfu_busy: u64,
    /// Cycles an LSU pipeline was occupied.
    pub lsu_busy: u64,
    /// Sum over cycles of registers allocated (for time-averaged occupancy).
    pub reg_used_acc: u128,
    /// Sum over cycles of shared-memory bytes allocated.
    pub shmem_used_acc: u128,
    /// Sum over cycles of threads resident.
    pub threads_used_acc: u128,
    /// Sum over cycles of live warps (resident and unfinished), taken as a
    /// single `count_ones()` popcount of the SM's warp-table bitmasks.
    pub warps_active_acc: u128,
    /// Per-kernel-slot counters.
    pub per_kernel: Vec<SmKernelStats>,
}

impl SmStats {
    /// Mutable per-kernel counters for slot `slot`, growing on demand.
    pub fn kernel_mut(&mut self, slot: usize) -> &mut SmKernelStats {
        if self.per_kernel.len() <= slot {
            self.per_kernel.resize(slot + 1, SmKernelStats::default());
        }
        &mut self.per_kernel[slot]
    }

    /// Per-kernel counters for slot `slot` (zeros if never active here).
    #[must_use]
    pub fn kernel(&self, slot: usize) -> SmKernelStats {
        self.per_kernel.get(slot).copied().unwrap_or_default()
    }

    /// Total warp instructions issued on this SM.
    #[must_use]
    pub fn insts_issued(&self) -> u64 {
        self.per_kernel.iter().map(|k| k.insts_issued).sum()
    }

    /// Instructions per cycle over the SM's lifetime.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.insts_issued() as f64 / self.cycles as f64
        }
    }

    /// Fraction of scheduler-cycles lost to long memory latency — the
    /// paper's `φ_mem` input to the IPC scaling factor (Eq. 3).
    #[must_use]
    pub fn phi_mem(&self, num_schedulers: u32) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.stalls.mem as f64 / (self.cycles * u64::from(num_schedulers)) as f64
    }

    /// Time-averaged register occupancy as a fraction of `capacity`.
    #[must_use]
    pub fn avg_reg_occupancy(&self, capacity: u32) -> f64 {
        if self.cycles == 0 || capacity == 0 {
            return 0.0;
        }
        (self.reg_used_acc / u128::from(self.cycles)) as f64 / f64::from(capacity)
    }

    /// Time-averaged shared-memory occupancy as a fraction of `capacity`.
    #[must_use]
    pub fn avg_shmem_occupancy(&self, capacity: u32) -> f64 {
        if self.cycles == 0 || capacity == 0 {
            return 0.0;
        }
        (self.shmem_used_acc / u128::from(self.cycles)) as f64 / f64::from(capacity)
    }

    /// Time-averaged thread occupancy as a fraction of `capacity`.
    #[must_use]
    pub fn avg_thread_occupancy(&self, capacity: u32) -> f64 {
        if self.cycles == 0 || capacity == 0 {
            return 0.0;
        }
        (self.threads_used_acc / u128::from(self.cycles)) as f64 / f64::from(capacity)
    }

    /// Time-averaged live-warp occupancy as a fraction of `max_warps`.
    #[must_use]
    pub fn avg_warp_occupancy(&self, max_warps: u32) -> f64 {
        if self.cycles == 0 || max_warps == 0 {
            return 0.0;
        }
        self.warps_active_acc as f64 / (u128::from(self.cycles) * u128::from(max_warps)) as f64
    }

    /// Fraction of cycles the named unit class was busy, normalizing by
    /// `num_schedulers` unit pipelines.
    #[must_use]
    pub fn unit_utilization(&self, busy: u64, num_schedulers: u32) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        busy as f64 / (self.cycles * u64::from(num_schedulers)) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_records_and_reads_back() {
        let mut b = StallBreakdown::default();
        for r in StallReason::ALL {
            b.record(r);
            b.record(r);
        }
        for r in StallReason::ALL {
            assert_eq!(b.get(r), 2);
        }
        assert_eq!(b.total_non_idle(), 10);
    }

    #[test]
    fn since_subtracts_componentwise() {
        let mut early = StallBreakdown::default();
        early.record(StallReason::LongMemoryLatency);
        let mut late = early;
        late.record(StallReason::LongMemoryLatency);
        late.record(StallReason::ShortRawHazard);
        let d = late.since(&early);
        assert_eq!(d.mem, 1);
        assert_eq!(d.raw, 1);
        assert_eq!(d.exec, 0);
    }

    #[test]
    fn ipc_counts_all_kernels() {
        let mut s = SmStats {
            cycles: 100,
            ..SmStats::default()
        };
        s.kernel_mut(0).insts_issued = 120;
        s.kernel_mut(2).insts_issued = 80;
        assert_eq!(s.insts_issued(), 200);
        assert!((s.ipc() - 2.0).abs() < 1e-12);
        assert_eq!(s.kernel(1), SmKernelStats::default());
    }

    #[test]
    fn phi_mem_normalizes_by_scheduler_cycles() {
        let mut s = SmStats {
            cycles: 100,
            ..SmStats::default()
        };
        s.stalls.mem = 50;
        assert!((s.phi_mem(2) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn occupancy_time_averages() {
        let s = SmStats {
            cycles: 10,
            reg_used_acc: 10 * 16384,
            shmem_used_acc: 10 * 1024,
            threads_used_acc: 10 * 768,
            ..SmStats::default()
        };
        assert!((s.avg_reg_occupancy(32768) - 0.5).abs() < 1e-12);
        assert!((s.avg_shmem_occupancy(49152) - 1024.0 / 49152.0).abs() < 1e-9);
        assert!((s.avg_thread_occupancy(1536) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn warp_occupancy_time_averages() {
        let s = SmStats {
            cycles: 10,
            warps_active_acc: 10 * 24,
            ..SmStats::default()
        };
        assert!((s.avg_warp_occupancy(48) - 0.5).abs() < 1e-12);
        assert_eq!(s.avg_warp_occupancy(0), 0.0);
    }

    #[test]
    fn zero_cycle_stats_are_zero() {
        let s = SmStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.phi_mem(2), 0.0);
        assert_eq!(s.avg_reg_occupancy(100), 0.0);
    }
}
