//! ws-trace event sink: a bounded, pre-allocated ring buffer of simulator
//! events (kernel/CTA lifecycle, MSHR fills, fast-forward jumps, per-window
//! stall-breakdown deltas).
//!
//! The sink is strictly opt-in: a [`crate::gpu::Gpu`] carries
//! `Option<TraceSink>` and every hook sits behind an `is_some` check, so the
//! tick path stays branch-cheap and allocation-free when tracing is off (the
//! `no-tick-alloc` lint covers [`TraceSink::record`]). When tracing is on,
//! all allocation happens up front in [`TraceSink::new`]; a full ring
//! overwrites its oldest slot and counts the drop instead of growing.
//!
//! Event *streams* are only guaranteed identical across runs with the same
//! fast-forward setting: a skipped span emits one [`TraceEvent::FastForward`]
//! jump and folds its stall cycles into the next
//! [`TraceEvent::StallWindow`], where a naive run would emit per-window
//! records throughout. Aggregate statistics remain byte-identical either
//! way — the tracing layer never feeds back into simulation state.

use crate::access::LineAddr;
use crate::stats::StallBreakdown;

/// One structured simulator event. Fixed-size and `Copy` so the ring buffer
/// never touches the heap after construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A kernel dispatched its first CTA (the kernel became resident).
    KernelLaunch {
        /// Core cycle of the dispatch.
        cycle: u64,
        /// Kernel slot id.
        kernel: usize,
    },
    /// A CTA was dispatched onto an SM.
    CtaLaunch {
        /// Core cycle of the dispatch.
        cycle: u64,
        /// Destination SM.
        sm: usize,
        /// Kernel slot id.
        kernel: usize,
        /// Global CTA index within the kernel's grid.
        cta: u64,
    },
    /// A CTA ran to completion and released its resources.
    CtaComplete {
        /// Core cycle of the retirement.
        cycle: u64,
        /// Kernel slot id.
        kernel: usize,
        /// Global CTA index within the kernel's grid.
        cta: u64,
    },
    /// A kernel was halted and evicted from every SM (equal-work target
    /// reached, or a controller tore it down).
    KernelHalt {
        /// Core cycle of the eviction.
        cycle: u64,
        /// Kernel slot id.
        kernel: usize,
        /// Warp instructions the kernel had issued when halted.
        insts: u64,
    },
    /// The memory subsystem delivered a fill to an SM's MSHR.
    MshrFill {
        /// Core cycle of the fill.
        cycle: u64,
        /// Destination SM.
        sm: usize,
        /// The filled cache line.
        line: LineAddr,
    },
    /// The event-horizon fast-forward jumped the clock over a dead span.
    FastForward {
        /// First skipped cycle.
        from: u64,
        /// Cycle the clock jumped to (exclusive end of the span).
        to: u64,
    },
    /// GPU-aggregate stall-cycle deltas since the previous window boundary.
    StallWindow {
        /// Core cycle at which the window closed.
        cycle: u64,
        /// Scheduler-cycles lost per stall reason inside the window.
        stalls: StallBreakdown,
    },
}

/// Bounded keep-latest event ring. All storage is reserved in [`Self::new`];
/// once full, each new event overwrites the oldest and bumps the dropped
/// counter, so recording never allocates.
#[derive(Debug)]
pub struct TraceSink {
    events: Vec<TraceEvent>,
    /// Next slot to overwrite once `events` has reached capacity.
    head: usize,
    capacity: usize,
    dropped: u64,
    stall_window: u64,
    last_window_emit: u64,
    last_stalls: StallBreakdown,
}

impl TraceSink {
    /// Builds a sink holding at most `capacity` events (at least one slot is
    /// always reserved). `stall_window` is the cycle period of aggregate
    /// [`TraceEvent::StallWindow`] records; `0` disables them.
    #[must_use]
    pub fn new(capacity: usize, stall_window: u64) -> Self {
        let capacity = capacity.max(1);
        Self {
            events: Vec::with_capacity(capacity),
            head: 0,
            capacity,
            dropped: 0,
            stall_window,
            last_window_emit: 0,
            last_stalls: StallBreakdown::default(),
        }
    }

    /// Appends an event, overwriting the oldest when the ring is full.
    pub fn record(&mut self, event: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else if let Some(slot) = self.events.get_mut(self.head) {
            self.dropped += 1;
            *slot = event;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Whether a stall-window record is due at cycle `now`. Uses a `>=`
    /// threshold rather than a modulus so fast-forwarded spans (which jump
    /// the clock past many boundaries) still close exactly one window.
    #[must_use]
    pub fn stall_window_due(&self, now: u64) -> bool {
        self.stall_window > 0 && now >= self.last_window_emit + self.stall_window
    }

    /// Closes a stall window at cycle `now` against the GPU-aggregate
    /// breakdown `total`, recording the delta since the previous boundary.
    pub fn record_stall_window(&mut self, now: u64, total: StallBreakdown) {
        let delta = total.since(&self.last_stalls);
        self.last_stalls = total;
        self.last_window_emit = now;
        self.record(TraceEvent::StallWindow {
            cycle: now,
            stalls: delta,
        });
    }

    /// Events in arrival order (oldest surviving first).
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        let (wrapped, recent) = self.events.split_at(self.head.min(self.events.len()));
        recent.iter().chain(wrapped.iter())
    }

    /// Number of events currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the ring holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Ring capacity in events.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events lost to ring overflow (oldest-first eviction).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn halt(cycle: u64) -> TraceEvent {
        TraceEvent::KernelHalt {
            cycle,
            kernel: 0,
            insts: 0,
        }
    }

    #[test]
    fn records_in_order_below_capacity() {
        let mut sink = TraceSink::new(8, 0);
        for c in 0..5 {
            sink.record(halt(c));
        }
        let cycles: Vec<u64> = sink
            .events()
            .map(|e| match e {
                TraceEvent::KernelHalt { cycle, .. } => *cycle,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(cycles, vec![0, 1, 2, 3, 4]);
        assert_eq!(sink.dropped(), 0);
        assert_eq!(sink.len(), 5);
    }

    #[test]
    fn full_ring_drops_oldest_and_counts() {
        let mut sink = TraceSink::new(4, 0);
        for c in 0..10 {
            sink.record(halt(c));
        }
        let cycles: Vec<u64> = sink
            .events()
            .map(|e| match e {
                TraceEvent::KernelHalt { cycle, .. } => *cycle,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(cycles, vec![6, 7, 8, 9], "keep-latest semantics");
        assert_eq!(sink.dropped(), 6);
        assert_eq!(sink.capacity(), 4);
    }

    #[test]
    fn recording_never_grows_the_ring() {
        let mut sink = TraceSink::new(16, 0);
        let cap_before = sink.events.capacity();
        for c in 0..1000 {
            sink.record(halt(c));
        }
        assert_eq!(sink.events.capacity(), cap_before, "no reallocation");
    }

    #[test]
    fn stall_windows_emit_deltas_not_totals() {
        let mut sink = TraceSink::new(8, 100);
        assert!(!sink.stall_window_due(99));
        assert!(sink.stall_window_due(100));
        let total = StallBreakdown {
            mem: 40,
            ..StallBreakdown::default()
        };
        sink.record_stall_window(100, total);
        let total = StallBreakdown {
            mem: 55,
            idle: 7,
            ..StallBreakdown::default()
        };
        assert!(!sink.stall_window_due(150));
        assert!(sink.stall_window_due(200));
        sink.record_stall_window(200, total);
        let windows: Vec<StallBreakdown> = sink
            .events()
            .filter_map(|e| match e {
                TraceEvent::StallWindow { stalls, .. } => Some(*stalls),
                _ => None,
            })
            .collect();
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].mem, 40);
        assert_eq!(windows[1].mem, 15, "second window is a delta");
        assert_eq!(windows[1].idle, 7);
    }

    #[test]
    fn zero_window_disables_stall_records() {
        let sink = TraceSink::new(8, 0);
        assert!(!sink.stall_window_due(u64::MAX / 2));
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut sink = TraceSink::new(0, 0);
        sink.record(halt(1));
        sink.record(halt(2));
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.dropped(), 1);
    }
}
