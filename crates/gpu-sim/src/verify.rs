//! Launch-time kernel verification: the typed pre-flight behind
//! [`crate::Gpu::try_add_kernel`].
//!
//! A malformed [`KernelDesc`] historically either panicked deep inside
//! `Sm::tick` (a load with no destination register trips `begin_load`) or
//! silently produced garbage occupancy curves (a CTA footprint violating the
//! Eq. 1 resource constraints never launches, so its "performance curve" is
//! all zeros). This module rejects such kernels *before* a single cycle is
//! simulated, with a structured [`KernelVerifyError`] naming the violated
//! rule.
//!
//! The checks here are the **hard** rules — conditions under which the
//! simulator cannot produce a meaningful result. The richer static analysis
//! (dataflow histograms, memory-footprint bounds, declared-vs-derived
//! workload consistency) lives in the `ws-analyze` crate, which builds on
//! this module and downgrades nothing: every error here is also an error
//! there.

use crate::config::SmConfig;
use crate::kernel::KernelDesc;
use crate::program::{OpClass, Program, Reg};

/// The SM resource dimension that makes a kernel infeasible (Eq. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResourceKind {
    /// Resident-thread capacity (`SmConfig::max_threads`).
    Threads,
    /// Register-file capacity (`SmConfig::max_registers`).
    Registers,
    /// Shared-memory capacity (`SmConfig::shared_mem_bytes`).
    SharedMem,
    /// CTA slots (`SmConfig::max_ctas`).
    CtaSlots,
}

impl std::fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Threads => write!(f, "threads"),
            Self::Registers => write!(f, "registers"),
            Self::SharedMem => write!(f, "shared memory"),
            Self::CtaSlots => write!(f, "CTA slots"),
        }
    }
}

/// A structured kernel-verification failure.
///
/// Each variant corresponds to one verifier rule; [`KernelVerifyError::rule`]
/// returns the stable rule identifier used by the `ws-analyze` diagnostics
/// and by `// analysis-waiver` allowlists.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelVerifyError {
    /// The grid has no CTAs: there is nothing to launch.
    ZeroGrid,
    /// `threads_per_cta` is zero: a CTA with no threads never retires and
    /// deadlocks barrier release.
    ZeroThreads,
    /// `iterations` is zero: every warp is born finished and the CTA's
    /// completion accounting never fires.
    ZeroIterations,
    /// One CTA of the kernel exceeds an SM resource outright, so the Eq. 1
    /// constraint `Σ_i R_{T_i} <= R_tot` cannot hold for any `T >= 1`
    /// (zero occupancy).
    Infeasible {
        /// The binding resource.
        resource: ResourceKind,
        /// The per-CTA demand on that resource.
        per_cta: u64,
        /// The SM's capacity on that resource.
        available: u64,
    },
    /// An instruction reads a virtual register that no instruction in the
    /// loop body ever defines, in any iteration: the read can never carry a
    /// RAW dependence and indicates a hand-built descriptor bug.
    NeverDefinedRead {
        /// Index of the reading instruction in the loop body.
        inst: usize,
        /// The register that is read but never written.
        reg: Reg,
    },
    /// A barrier instruction carries operands. Barriers synchronize, they do
    /// not compute; an operand-carrying barrier would create non-uniform
    /// scoreboard behaviour across the warps arriving at it.
    BarrierOperands {
        /// Index of the malformed barrier in the loop body.
        inst: usize,
    },
    /// A global load has no destination register; the LSU would panic when
    /// registering the in-flight load.
    LoadWithoutDest {
        /// Index of the malformed load in the loop body.
        inst: usize,
    },
    /// A rate-valued field is outside `[0, 1]`.
    RateOutOfRange {
        /// Name of the offending `KernelDesc` field.
        field: &'static str,
        /// Its value.
        value: f64,
    },
}

impl KernelVerifyError {
    /// Stable rule identifier for this error, shared with the `ws-analyze`
    /// diagnostics and waiver allowlists.
    #[must_use]
    pub fn rule(&self) -> &'static str {
        match self {
            Self::ZeroGrid => "zero-grid",
            Self::ZeroThreads => "zero-threads",
            Self::ZeroIterations => "zero-iterations",
            Self::Infeasible { .. } => "eq1-infeasible",
            Self::NeverDefinedRead { .. } => "never-defined-read",
            Self::BarrierOperands { .. } => "barrier-operands",
            Self::LoadWithoutDest { .. } => "load-without-dest",
            Self::RateOutOfRange { .. } => "rate-out-of-range",
        }
    }

    /// Index into the loop body this error points at, when it concerns a
    /// specific instruction.
    #[must_use]
    pub fn span(&self) -> Option<usize> {
        match *self {
            Self::NeverDefinedRead { inst, .. }
            | Self::BarrierOperands { inst }
            | Self::LoadWithoutDest { inst } => Some(inst),
            _ => None,
        }
    }
}

impl std::fmt::Display for KernelVerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] ", self.rule())?;
        match self {
            Self::ZeroGrid => write!(f, "grid_ctas is 0: the kernel has nothing to launch"),
            Self::ZeroThreads => {
                write!(f, "threads_per_cta is 0: a threadless CTA never retires")
            }
            Self::ZeroIterations => {
                write!(f, "iterations is 0: every warp is born finished")
            }
            Self::Infeasible {
                resource,
                per_cta,
                available,
            } => write!(
                f,
                "one CTA needs {per_cta} {resource} but the SM only has {available}: \
                 zero occupancy under Eq. 1"
            ),
            Self::NeverDefinedRead { inst, reg } => write!(
                f,
                "inst {inst} reads virtual register r{reg}, which no instruction in the \
                 loop body ever defines"
            ),
            Self::BarrierOperands { inst } => write!(
                f,
                "inst {inst} is a barrier carrying operands; barriers synchronize and \
                 must be operand-free"
            ),
            Self::LoadWithoutDest { inst } => write!(
                f,
                "inst {inst} is a global load without a destination register"
            ),
            Self::RateOutOfRange { field, value } => {
                write!(f, "{field} is {value}, outside [0, 1]")
            }
        }
    }
}

impl std::error::Error for KernelVerifyError {}

/// Per-resource CTA quota under Eq. 1 of the paper, with `u32::MAX` for a
/// resource the kernel does not demand (it never binds), in the order
/// threads / registers / shared memory / CTA slots, plus the binding
/// minimum.
///
/// This is the feasible-CTA-range computation shared by the launch
/// pre-flight, the `ws-analyze` occupancy diagnostics, and the static
/// performance predictor: all three must agree on the Fig. 3a "max allowed
/// CTAs" for a kernel.
#[must_use]
pub fn occupancy_breakdown(desc: &KernelDesc, sm: &SmConfig) -> ([u32; 4], u32) {
    let regs_per_cta = u64::from(desc.threads_per_cta) * u64::from(desc.regs_per_thread);
    let quota = |per_cta: u64, available: u64| -> u32 {
        match available.checked_div(per_cta) {
            None => u32::MAX,
            Some(q) => u32::try_from(q).unwrap_or(u32::MAX),
        }
    };
    let by = [
        quota(u64::from(desc.threads_per_cta), u64::from(sm.max_threads)),
        quota(regs_per_cta, u64::from(sm.max_registers)),
        quota(
            u64::from(desc.shmem_per_cta),
            u64::from(sm.shared_mem_bytes),
        ),
        sm.max_ctas,
    ];
    let max_ctas = by.iter().copied().min().unwrap_or(0);
    (by, max_ctas)
}

/// The set of virtual registers written anywhere in a loop body, as a
/// 32-bit mask (the IR names at most [`crate::program::NUM_VIRTUAL_REGS`]
/// registers).
#[must_use]
pub fn defined_regs(program: &Program) -> u32 {
    let mut mask = 0u32;
    for inst in program.iter() {
        if let Some(dst) = inst.dst {
            mask |= 1u32 << (u32::from(dst) % 32);
        }
    }
    mask
}

/// Scans the loop body for per-instruction hard errors: reads of
/// never-defined registers, operand-carrying barriers, destination-less
/// loads.
///
/// Reads of registers that *are* defined, only later in the body, are fine:
/// under the loop semantics the definition from the previous iteration
/// reaches them, and on the first iteration they model live-in values
/// (`ws-analyze` reports those separately as informational diagnostics).
pub fn check_program(program: &Program) -> Result<(), KernelVerifyError> {
    let defined = defined_regs(program);
    for (i, inst) in program.iter().enumerate() {
        if inst.op.is_barrier() {
            if inst.dst.is_some() || inst.srcs.iter().any(Option::is_some) {
                return Err(KernelVerifyError::BarrierOperands { inst: i });
            }
            continue;
        }
        if inst.op == OpClass::GlobalLoad && inst.dst.is_none() {
            return Err(KernelVerifyError::LoadWithoutDest { inst: i });
        }
        for src in inst.srcs.iter().flatten() {
            if defined & (1u32 << (u32::from(*src) % 32)) == 0 {
                return Err(KernelVerifyError::NeverDefinedRead { inst: i, reg: *src });
            }
        }
    }
    Ok(())
}

/// Verifies a kernel descriptor against the hard launch rules: structural
/// sanity, the Eq. 1 resource feasibility of a single CTA, and the
/// per-instruction program checks of [`check_program`].
///
/// This is the pre-flight run by [`crate::Gpu::try_add_kernel`]; `Ok(())`
/// means the simulator can execute the kernel without panicking on it and
/// that at least one CTA fits an idle SM.
pub fn preflight(desc: &KernelDesc, sm: &SmConfig) -> Result<(), KernelVerifyError> {
    if desc.grid_ctas == 0 {
        return Err(KernelVerifyError::ZeroGrid);
    }
    if desc.threads_per_cta == 0 {
        return Err(KernelVerifyError::ZeroThreads);
    }
    if desc.iterations == 0 {
        return Err(KernelVerifyError::ZeroIterations);
    }
    if !(0.0..=1.0).contains(&desc.icache_miss_rate) {
        return Err(KernelVerifyError::RateOutOfRange {
            field: "icache_miss_rate",
            value: desc.icache_miss_rate,
        });
    }
    desc.try_max_ctas_per_sm(sm)?;
    check_program(&desc.program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessPattern;
    use crate::config::GpuConfig;
    use crate::program::{Inst, ProgramSpec};

    fn desc() -> KernelDesc {
        KernelDesc {
            name: "v".into(),
            grid_ctas: 16,
            threads_per_cta: 128,
            regs_per_thread: 16,
            shmem_per_cta: 0,
            program: ProgramSpec::default().generate(),
            iterations: 2,
            pattern: AccessPattern::Streaming { transactions: 1 },
            icache_miss_rate: 0.0,
            shmem_conflict_degree: 1,
            seed: 1,
        }
    }

    fn sm() -> SmConfig {
        GpuConfig::isca_baseline().sm
    }

    #[test]
    fn well_formed_kernel_passes() {
        assert_eq!(preflight(&desc(), &sm()), Ok(()));
    }

    #[test]
    fn structural_zeroes_are_rejected_with_named_rules() {
        let mut d = desc();
        d.grid_ctas = 0;
        assert_eq!(preflight(&d, &sm()).unwrap_err().rule(), "zero-grid");
        let mut d = desc();
        d.threads_per_cta = 0;
        assert_eq!(preflight(&d, &sm()).unwrap_err().rule(), "zero-threads");
        let mut d = desc();
        d.iterations = 0;
        assert_eq!(preflight(&d, &sm()).unwrap_err().rule(), "zero-iterations");
    }

    #[test]
    fn infeasible_footprint_names_the_binding_resource() {
        let mut d = desc();
        d.threads_per_cta = 2048; // > 1536
        match preflight(&d, &sm()).unwrap_err() {
            KernelVerifyError::Infeasible { resource, .. } => {
                assert_eq!(resource, ResourceKind::Threads);
            }
            other => panic!("wrong error: {other}"),
        }
        let mut d = desc();
        d.regs_per_thread = 300; // 128 * 300 = 38400 > 32768
        match preflight(&d, &sm()).unwrap_err() {
            KernelVerifyError::Infeasible { resource, .. } => {
                assert_eq!(resource, ResourceKind::Registers);
            }
            other => panic!("wrong error: {other}"),
        }
        let mut d = desc();
        d.shmem_per_cta = 49 * 1024;
        assert_eq!(preflight(&d, &sm()).unwrap_err().rule(), "eq1-infeasible");
    }

    #[test]
    fn never_defined_read_is_rejected_with_span() {
        let prog = Program::new(vec![
            Inst {
                op: OpClass::Alu,
                dst: Some(0),
                srcs: [Some(0), None],
            },
            Inst {
                op: OpClass::Alu,
                dst: Some(1),
                srcs: [Some(0), Some(7)], // r7 is never written
            },
        ]);
        let mut d = desc();
        d.program = prog;
        let err = preflight(&d, &sm()).unwrap_err();
        assert_eq!(err.rule(), "never-defined-read");
        assert_eq!(err.span(), Some(1));
    }

    #[test]
    fn forward_defined_read_is_accepted() {
        // r1 is read before its (only) definition: the previous iteration's
        // write reaches it, so this is well-formed.
        let prog = Program::new(vec![
            Inst {
                op: OpClass::Alu,
                dst: Some(0),
                srcs: [Some(1), None],
            },
            Inst {
                op: OpClass::Alu,
                dst: Some(1),
                srcs: [Some(0), None],
            },
        ]);
        let mut d = desc();
        d.program = prog;
        assert_eq!(preflight(&d, &sm()), Ok(()));
    }

    #[test]
    fn barrier_with_operands_is_rejected() {
        let prog = Program::new(vec![
            Inst {
                op: OpClass::Alu,
                dst: Some(0),
                srcs: [Some(0), None],
            },
            Inst {
                op: OpClass::Barrier,
                dst: None,
                srcs: [Some(0), None],
            },
        ]);
        let mut d = desc();
        d.program = prog;
        let err = preflight(&d, &sm()).unwrap_err();
        assert_eq!(err.rule(), "barrier-operands");
        assert_eq!(err.span(), Some(1));
    }

    #[test]
    fn load_without_destination_is_rejected() {
        let prog = Program::new(vec![Inst {
            op: OpClass::GlobalLoad,
            dst: None,
            srcs: [None, None],
        }]);
        let mut d = desc();
        d.program = prog;
        assert_eq!(
            preflight(&d, &sm()).unwrap_err().rule(),
            "load-without-dest"
        );
    }

    #[test]
    fn icache_rate_outside_unit_interval_is_rejected() {
        let mut d = desc();
        d.icache_miss_rate = 1.5;
        assert_eq!(
            preflight(&d, &sm()).unwrap_err().rule(),
            "rate-out-of-range"
        );
    }

    #[test]
    fn generated_programs_are_always_clean() {
        // Every ProgramSpec-generated body must pass the program checks,
        // including short bodies whose register window is narrowed.
        for (len, dep) in [(1, 1), (3, 7), (24, 4), (31, 31), (64, 2), (100, 8)] {
            let p = ProgramSpec {
                body_len: len,
                gload_frac: 0.2,
                gstore_frac: 0.1,
                barrier_frac: 0.05,
                dep_distance: dep,
                seed: len as u64,
                ..ProgramSpec::default()
            }
            .generate();
            assert_eq!(check_program(&p), Ok(()), "body_len {len}");
        }
    }

    #[test]
    fn errors_render_their_rule_id() {
        let err = KernelVerifyError::ZeroGrid;
        assert!(err.to_string().contains("[zero-grid]"));
        let err = KernelVerifyError::Infeasible {
            resource: ResourceKind::SharedMem,
            per_cta: 50_000,
            available: 49_152,
        };
        assert!(err.to_string().contains("shared memory"));
    }
}
