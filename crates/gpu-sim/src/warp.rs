//! Warp execution state: program counter, i-buffer, scoreboard, and
//! outstanding-load tracking.

use std::collections::VecDeque;

use crate::access::AddressStream;
use crate::kernel::{KernelDesc, KernelId};
use crate::program::{Inst, OpClass, Reg, NUM_VIRTUAL_REGS};

/// Scoreboard marker for a register awaiting a global load.
pub const PENDING_LOAD: u64 = u64::MAX;

/// Why a warp cannot issue its head instruction this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueBlock {
    /// An operand (or the destination) awaits an outstanding global load.
    MemPending,
    /// An operand awaits a short ALU/SFU/shared-memory result.
    RawPending,
}

/// One outstanding global load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadTracker {
    /// Warp-local load id (monotonic).
    pub id: u32,
    /// Destination register.
    pub dst: Reg,
    /// L1-miss transactions still in flight.
    pub remaining: u32,
    /// Whether the LSU has issued every transaction of the load.
    pub all_issued: bool,
}

/// A resident warp.
#[derive(Debug, Clone)]
pub struct Warp {
    /// Owning kernel.
    pub kernel: KernelId,
    /// CTA slot within the SM this warp belongs to.
    pub cta_slot: usize,
    /// Slot-recycling generation (checked by late memory fills).
    pub gen: u32,
    /// Launch order stamp used by the greedy-then-oldest scheduler.
    pub launch_seq: u64,
    /// Dynamic warp instructions issued so far.
    pub insts_issued: u64,
    /// Whether the warp is parked at a CTA-wide barrier.
    pub at_barrier: bool,
    total_insts: u64,
    pc: usize,
    body_len: usize,
    iters_left: u32,
    ibuffer: VecDeque<Inst>,
    ibuffer_cap: usize,
    fetch_ready: u64,
    fetch_count: u64,
    reg_ready: [u64; NUM_VIRTUAL_REGS],
    loads: Vec<LoadTracker>,
    next_load_id: u32,
    /// Global-memory address stream for this warp.
    pub stream: AddressStream,
}

impl Warp {
    /// Creates a warp for `desc` (kernel slot `kernel`), CTA `cta_index`,
    /// warp `warp_in_cta` within it.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        desc: &KernelDesc,
        kernel: KernelId,
        cta_slot: usize,
        cta_index: u64,
        warp_in_cta: u32,
        gen: u32,
        launch_seq: u64,
        ibuffer_cap: u32,
    ) -> Self {
        Self {
            kernel,
            cta_slot,
            gen,
            launch_seq,
            insts_issued: 0,
            at_barrier: false,
            total_insts: desc.insts_per_warp(),
            pc: 0,
            body_len: desc.program.len(),
            iters_left: desc.iterations,
            ibuffer: VecDeque::with_capacity(ibuffer_cap as usize),
            ibuffer_cap: ibuffer_cap as usize,
            fetch_ready: 0,
            fetch_count: 0,
            reg_ready: [0; NUM_VIRTUAL_REGS],
            loads: Vec::with_capacity(4),
            next_load_id: 0,
            stream: AddressStream::new(kernel.0, cta_index, warp_in_cta, desc.seed),
        }
    }

    /// Whether the warp has issued its full instruction budget.
    #[must_use]
    pub fn finished(&self) -> bool {
        self.insts_issued >= self.total_insts
    }

    /// Whether every body instruction has been fetched (fetch front end is
    /// done, but issue may lag).
    #[must_use]
    pub fn fetch_done(&self) -> bool {
        self.iters_left == 0
    }

    /// Attempts one fetch into the i-buffer, returning whether an
    /// instruction was fetched (consuming shared fetch-port bandwidth).
    /// `now` is the current cycle; the i-cache miss decision is a
    /// deterministic hash so runs replay exactly.
    pub fn fetch(
        &mut self,
        now: u64,
        desc: &KernelDesc,
        fetch_latency: u32,
        icache_miss_penalty: u32,
    ) -> bool {
        if self.fetch_done() || self.ibuffer.len() >= self.ibuffer_cap || self.fetch_ready > now {
            return false;
        }
        self.ibuffer.push_back(desc.program.inst(self.pc));
        self.pc += 1;
        if self.pc == self.body_len {
            self.pc = 0;
            self.iters_left -= 1;
        }
        self.fetch_count += 1;
        let miss = if desc.icache_miss_rate > 0.0 {
            // Deterministic hash in [0, 1).
            let h = self
                .fetch_count
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(self.launch_seq.rotate_left(17));
            (h >> 11) as f64 / (1u64 << 53) as f64 >= 1.0 - desc.icache_miss_rate
        } else {
            false
        };
        self.fetch_ready = now
            + u64::from(fetch_latency)
            + if miss {
                u64::from(icache_miss_penalty)
            } else {
                0
            };
        true
    }

    /// The decoded instruction at the head of the i-buffer.
    #[must_use]
    pub fn head(&self) -> Option<Inst> {
        self.ibuffer.front().copied()
    }

    /// Whether the i-buffer is empty (front-end starved).
    #[must_use]
    pub fn ibuffer_empty(&self) -> bool {
        self.ibuffer.is_empty()
    }

    fn reg_block(&self, reg: Reg, now: u64) -> Option<IssueBlock> {
        let ready = self.reg_ready[reg as usize];
        if ready == PENDING_LOAD {
            Some(IssueBlock::MemPending)
        } else if ready > now {
            Some(IssueBlock::RawPending)
        } else {
            None
        }
    }

    /// Scoreboard check for the head instruction. `None` means operands are
    /// ready (structural hazards are the SM's concern).
    #[must_use]
    pub fn issue_block(&self, now: u64) -> Option<IssueBlock> {
        let inst = self.head()?;
        let mut worst: Option<IssueBlock> = None;
        let mut consider = |b: Option<IssueBlock>| {
            worst = match (worst, b) {
                (_, Some(IssueBlock::MemPending)) | (Some(IssueBlock::MemPending), _) => {
                    Some(IssueBlock::MemPending)
                }
                (w, None) => w,
                (None, b) => b,
                (w, _) => w,
            };
        };
        for src in inst.srcs.into_iter().flatten() {
            consider(self.reg_block(src, now));
        }
        if let Some(dst) = inst.dst {
            // Write-after-write on an in-flight load result.
            consider(self.reg_block(dst, now));
        }
        worst
    }

    /// Consumes the head instruction at issue. For ALU/SFU/shared-memory
    /// ops the destination becomes ready at `now + latency`; for global
    /// loads the caller must follow up with [`Self::begin_load`].
    pub fn issue(&mut self, now: u64, result_latency: u64) -> Inst {
        // Invariant: the scheduler only issues warps whose i-buffer it just
        // inspected via head(). xtask-allow: no-unwrap
        let inst = self.ibuffer.pop_front().expect("issue on empty i-buffer");
        self.insts_issued += 1;
        if inst.op != OpClass::GlobalLoad {
            if let Some(dst) = inst.dst {
                self.reg_ready[dst as usize] = now + result_latency;
            }
        }
        inst
    }

    /// Registers a new outstanding global load for `dst`, returning its
    /// warp-local load id.
    pub fn begin_load(&mut self, dst: Reg) -> u32 {
        let id = self.next_load_id;
        self.next_load_id += 1;
        self.reg_ready[dst as usize] = PENDING_LOAD;
        self.loads.push(LoadTracker {
            id,
            dst,
            remaining: 0,
            all_issued: false,
        });
        id
    }

    /// Notes one more in-flight L1-miss transaction for load `id`.
    pub fn add_load_transaction(&mut self, id: u32) {
        let t = self
            .loads
            .iter_mut()
            .find(|t| t.id == id)
            // Invariant: ids come from begin_load on this same warp and stay
            // live until the load completes. xtask-allow: no-unwrap
            .expect("unknown load id");
        t.remaining += 1;
    }

    /// Marks every transaction of load `id` as issued; if none missed the
    /// L1 the destination becomes ready at `ready_at`. Returns `true` if the
    /// load completed immediately.
    pub fn finish_load_issue(&mut self, id: u32, ready_at: u64) -> bool {
        let idx = self
            .loads
            .iter()
            .position(|t| t.id == id)
            // Invariant: same id lifecycle as add_load_transaction above.
            // xtask-allow: no-unwrap
            .expect("unknown load id");
        self.loads[idx].all_issued = true;
        if self.loads[idx].remaining == 0 {
            let dst = self.loads[idx].dst;
            self.reg_ready[dst as usize] = ready_at;
            self.loads.swap_remove(idx);
            true
        } else {
            false
        }
    }

    /// Completes one in-flight transaction of load `id` (a fill returned).
    /// Returns `true` if this completed the whole load.
    pub fn complete_load_transaction(&mut self, id: u32, now: u64) -> bool {
        let Some(idx) = self.loads.iter().position(|t| t.id == id) else {
            return false; // stale fill for an already-halted warp
        };
        let t = &mut self.loads[idx];
        debug_assert!(t.remaining > 0);
        t.remaining -= 1;
        if t.remaining == 0 && t.all_issued {
            let dst = t.dst;
            self.reg_ready[dst as usize] = now;
            self.loads.swap_remove(idx);
            true
        } else {
            false
        }
    }

    /// The earliest cycle `>= from` at which the front end could fetch, or
    /// `None` when fetching cannot resume on its own: the body is fully
    /// fetched, or the i-buffer is full (drained only by an issue, which is
    /// itself an SM event).
    #[must_use]
    pub fn fetch_event(&self, from: u64) -> Option<u64> {
        let at = self.fetch_ready_at();
        (at != u64::MAX).then(|| at.max(from))
    }

    /// The raw fetch readiness as a single sentinel-encoded cycle: the
    /// cycle the fetch port opens for this warp, or `u64::MAX` when fetching
    /// cannot resume on its own (body fully fetched, or i-buffer full). This
    /// is the value cached per-slot in [`WarpTable::fetch_at`].
    #[must_use]
    pub fn fetch_ready_at(&self) -> u64 {
        if self.fetch_done() || self.ibuffer.len() >= self.ibuffer_cap {
            u64::MAX
        } else {
            self.fetch_ready
        }
    }

    /// The scoreboard state of the head instruction as a single
    /// sentinel-encoded cycle plus its op class, or `None` when the
    /// i-buffer is empty. The cycle is the max readiness over every source
    /// operand and the destination; because [`PENDING_LOAD`] is `u64::MAX`
    /// the encoding is total: `== u64::MAX` means an outstanding global
    /// load, `> now` a short RAW hazard, `<= now` operands ready.
    #[must_use]
    pub fn head_state(&self) -> Option<(u64, OpClass)> {
        let inst = self.head()?;
        let mut ready = 0u64;
        for src in inst.srcs.into_iter().flatten() {
            ready = ready.max(self.reg_ready[src as usize]);
        }
        if let Some(dst) = inst.dst {
            // Write-after-write on an in-flight load result.
            ready = ready.max(self.reg_ready[dst as usize]);
        }
        Some((ready, inst.op))
    }

    /// The cycle at which every operand (and the destination) of the head
    /// instruction becomes ready, or `None` when the i-buffer is empty or an
    /// operand awaits an outstanding global load — a fill is a
    /// memory-subsystem event, not a warp-local one, so the warp reports no
    /// horizon of its own for it.
    #[must_use]
    pub fn operands_ready_at(&self) -> Option<u64> {
        let (ready, _) = self.head_state()?;
        // PENDING_LOAD is u64::MAX, so a pending operand dominates the max.
        (ready != PENDING_LOAD).then_some(ready)
    }

    /// Outstanding-load count (for occupancy introspection/tests).
    #[must_use]
    pub fn outstanding_loads(&self) -> usize {
        self.loads.len()
    }

    /// Total dynamic instructions this warp will issue.
    #[must_use]
    pub fn total_insts(&self) -> u64 {
        self.total_insts
    }
}

/// Struct-of-arrays mirror of the per-warp state the per-cycle stages
/// actually read: residency/finished/barrier/i-buffer/mem-pending bitmasks
/// plus flat arrays of head readiness, head op class, fetch readiness, and
/// launch order. The [`Warp`] structs stay the source of truth; the table
/// is derived state maintained event-driven (the owning SM refreshes a slot
/// after any mutation of its warp), so scheduler selection and stall
/// classification become mask intersections and `trailing_zeros` walks
/// instead of per-warp pointer chases. Capacity is one `u64` of slots —
/// `Sm::new` asserts `max_warps <= 64`.
#[derive(Debug, Clone)]
pub struct WarpTable {
    /// Occupied slots (whether or not the warp has finished issuing).
    resident: u64,
    /// Slots whose warp has issued its full instruction budget.
    finished: u64,
    /// Slots parked at a CTA-wide barrier.
    barrier: u64,
    /// Slots with an empty i-buffer (front-end starved).
    ib_empty: u64,
    /// Slots whose head instruction awaits an outstanding global load.
    mem_pending: u64,
    /// Sentinel-encoded head readiness per slot (see [`Warp::head_state`]).
    head_ready: Vec<u64>,
    /// Head-instruction op class per slot (meaningful only when decoded).
    head_op: Vec<OpClass>,
    /// Sentinel-encoded fetch readiness (see [`Warp::fetch_ready_at`]).
    fetch_at: Vec<u64>,
    /// Launch-order stamp per slot (greedy-then-oldest key).
    launch_seq: Vec<u64>,
}

impl WarpTable {
    /// An empty table with `n_slots` warp slots (at most 64).
    #[must_use]
    pub fn new(n_slots: usize) -> Self {
        assert!(
            n_slots <= 64,
            "WarpTable bitmasks hold at most 64 warp slots, got {n_slots}"
        );
        Self {
            resident: 0,
            finished: 0,
            barrier: 0,
            ib_empty: 0,
            mem_pending: 0,
            head_ready: vec![0; n_slots],
            head_op: vec![OpClass::Alu; n_slots],
            fetch_at: vec![u64::MAX; n_slots],
            launch_seq: vec![0; n_slots],
        }
    }

    /// Recomputes slot `slot`'s derived state from `warp`. Callers must
    /// invoke this after *any* mutation of the warp (fetch, issue, load
    /// lifecycle, barrier park/release) or the table silently diverges —
    /// the strict-invariant oracle check catches that in debug builds.
    pub fn refresh(&mut self, slot: usize, warp: &Warp) {
        let bit = 1u64 << slot;
        self.resident |= bit;
        if warp.finished() {
            self.finished |= bit;
        } else {
            self.finished &= !bit;
        }
        if warp.at_barrier {
            self.barrier |= bit;
        } else {
            self.barrier &= !bit;
        }
        self.fetch_at[slot] = warp.fetch_ready_at();
        self.launch_seq[slot] = warp.launch_seq;
        match warp.head_state() {
            Some((ready, op)) => {
                self.ib_empty &= !bit;
                if ready == PENDING_LOAD {
                    self.mem_pending |= bit;
                } else {
                    self.mem_pending &= !bit;
                }
                self.head_ready[slot] = ready;
                self.head_op[slot] = op;
            }
            None => {
                self.ib_empty |= bit;
                self.mem_pending &= !bit;
                self.head_ready[slot] = 0;
                self.head_op[slot] = OpClass::Alu;
            }
        }
    }

    /// Clears slot `slot` back to its vacant canonical state (warp
    /// released or CTA retired).
    pub fn clear(&mut self, slot: usize) {
        let keep = !(1u64 << slot);
        self.resident &= keep;
        self.finished &= keep;
        self.barrier &= keep;
        self.ib_empty &= keep;
        self.mem_pending &= keep;
        self.head_ready[slot] = 0;
        self.head_op[slot] = OpClass::Alu;
        self.fetch_at[slot] = u64::MAX;
        self.launch_seq[slot] = 0;
    }

    /// Occupied slots.
    #[must_use]
    pub fn resident_mask(&self) -> u64 {
        self.resident
    }

    /// Occupied slots that still have instructions to issue — the
    /// scheduler-candidate universe.
    #[must_use]
    pub fn live(&self) -> u64 {
        self.resident & !self.finished
    }

    /// Slots parked at a barrier.
    #[must_use]
    pub fn barrier_mask(&self) -> u64 {
        self.barrier
    }

    /// Slots with an empty i-buffer.
    #[must_use]
    pub fn ib_empty_mask(&self) -> u64 {
        self.ib_empty
    }

    /// Slots whose head instruction awaits an outstanding global load.
    #[must_use]
    pub fn mem_pending_mask(&self) -> u64 {
        self.mem_pending
    }

    /// Sentinel-encoded head readiness for slot `slot`.
    #[must_use]
    pub fn head_ready(&self, slot: usize) -> u64 {
        self.head_ready[slot]
    }

    /// Head-instruction op class for slot `slot`.
    #[must_use]
    pub fn head_op(&self, slot: usize) -> OpClass {
        self.head_op[slot]
    }

    /// Sentinel-encoded fetch readiness for slot `slot`.
    #[must_use]
    pub fn fetch_at(&self, slot: usize) -> u64 {
        self.fetch_at[slot]
    }

    /// Launch-order stamps, one per slot (scheduler selection key).
    #[must_use]
    pub fn launch_seqs(&self) -> &[u64] {
        &self.launch_seq
    }

    /// Oracle check: asserts every derived entry matches a fresh
    /// recomputation from `warps`. This is the SoA-vs-oracle contract the
    /// strict-invariant layer runs inside the tick loop in debug builds.
    ///
    /// # Panics
    ///
    /// Panics on any divergence between the table and the warp array.
    pub fn assert_matches(&self, warps: &[Option<Warp>]) {
        assert_eq!(self.head_ready.len(), warps.len(), "slot count mismatch");
        for (slot, warp) in warps.iter().enumerate() {
            let bit = 1u64 << slot;
            match warp.as_ref() {
                None => {
                    assert_eq!(self.resident & bit, 0, "slot {slot}: vacant but resident");
                    assert_eq!(self.fetch_at[slot], u64::MAX, "slot {slot}: stale fetch_at");
                }
                Some(w) => {
                    assert_ne!(self.resident & bit, 0, "slot {slot}: resident bit missing");
                    assert_eq!(
                        self.finished & bit != 0,
                        w.finished(),
                        "slot {slot}: finished bit"
                    );
                    assert_eq!(
                        self.barrier & bit != 0,
                        w.at_barrier,
                        "slot {slot}: barrier bit"
                    );
                    assert_eq!(
                        self.fetch_at[slot],
                        w.fetch_ready_at(),
                        "slot {slot}: fetch_at"
                    );
                    assert_eq!(
                        self.launch_seq[slot], w.launch_seq,
                        "slot {slot}: launch_seq"
                    );
                    match w.head_state() {
                        None => {
                            assert_ne!(self.ib_empty & bit, 0, "slot {slot}: ib_empty bit");
                            assert_eq!(self.mem_pending & bit, 0, "slot {slot}: mem_pending bit");
                        }
                        Some((ready, op)) => {
                            assert_eq!(self.ib_empty & bit, 0, "slot {slot}: ib_empty bit set");
                            assert_eq!(
                                self.mem_pending & bit != 0,
                                ready == PENDING_LOAD,
                                "slot {slot}: mem_pending bit"
                            );
                            assert_eq!(self.head_ready[slot], ready, "slot {slot}: head_ready");
                            assert_eq!(self.head_op[slot], op, "slot {slot}: head_op");
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessPattern;
    use crate::program::{Inst, Program};

    fn alu(dst: Reg, src: Reg) -> Inst {
        Inst {
            op: OpClass::Alu,
            dst: Some(dst),
            srcs: [Some(src), None],
        }
    }

    fn load(dst: Reg, src: Reg) -> Inst {
        Inst {
            op: OpClass::GlobalLoad,
            dst: Some(dst),
            srcs: [Some(src), None],
        }
    }

    fn kernel_with(insts: Vec<Inst>, iterations: u32) -> KernelDesc {
        KernelDesc {
            name: "w".into(),
            grid_ctas: 1,
            threads_per_cta: 32,
            regs_per_thread: 8,
            shmem_per_cta: 0,
            program: Program::new(insts),
            iterations,
            pattern: AccessPattern::Streaming { transactions: 1 },
            icache_miss_rate: 0.0,
            shmem_conflict_degree: 1,
            seed: 1,
        }
    }

    fn warp_for(desc: &KernelDesc) -> Warp {
        Warp::new(desc, KernelId(0), 0, 0, 0, 0, 0, 2)
    }

    #[test]
    fn fetch_fills_ibuffer_and_wraps() {
        let desc = kernel_with(vec![alu(0, 1), alu(1, 0)], 2);
        let mut w = warp_for(&desc);
        assert!(w.fetch(0, &desc, 1, 0));
        assert!(!w.ibuffer_empty());
        // Second fetch gated by fetch latency.
        assert!(!w.fetch(0, &desc, 1, 0));
        assert_eq!(w.ibuffer.len(), 1);
        w.fetch(1, &desc, 1, 0);
        assert_eq!(w.ibuffer.len(), 2);
        // Buffer full: no more fetches.
        w.fetch(2, &desc, 1, 0);
        assert_eq!(w.ibuffer.len(), 2);
        // Drain and keep fetching: 4 total instructions then fetch_done.
        let _ = w.issue(2, 1);
        let _ = w.issue(2, 1);
        w.fetch(3, &desc, 1, 0);
        w.fetch(4, &desc, 1, 0);
        assert!(w.fetch_done());
        let _ = w.issue(5, 1);
        let _ = w.issue(5, 1);
        assert!(w.finished());
    }

    #[test]
    fn raw_hazard_blocks_until_latency_elapses() {
        let desc = kernel_with(vec![alu(0, 1), alu(2, 0)], 1);
        let mut w = warp_for(&desc);
        w.fetch(0, &desc, 1, 0);
        w.fetch(1, &desc, 1, 0);
        assert_eq!(w.issue_block(0), None);
        let _ = w.issue(0, 10); // r0 ready at 10
        assert_eq!(w.issue_block(5), Some(IssueBlock::RawPending));
        assert_eq!(w.issue_block(10), None);
    }

    #[test]
    fn load_blocks_consumer_until_fill() {
        let desc = kernel_with(vec![load(0, 1), alu(2, 0)], 1);
        let mut w = warp_for(&desc);
        w.fetch(0, &desc, 1, 0);
        w.fetch(1, &desc, 1, 0);
        let inst = w.issue(0, 0);
        assert_eq!(inst.op, OpClass::GlobalLoad);
        let id = w.begin_load(inst.dst.unwrap());
        w.add_load_transaction(id);
        assert!(!w.finish_load_issue(id, 0));
        assert_eq!(w.issue_block(100), Some(IssueBlock::MemPending));
        assert!(w.complete_load_transaction(id, 150));
        assert_eq!(w.issue_block(150), None);
    }

    #[test]
    fn all_hit_load_completes_at_issue() {
        let desc = kernel_with(vec![load(0, 1), alu(2, 0)], 1);
        let mut w = warp_for(&desc);
        w.fetch(0, &desc, 1, 0);
        let inst = w.issue(0, 0);
        let id = w.begin_load(inst.dst.unwrap());
        assert!(w.finish_load_issue(id, 28));
        assert_eq!(w.outstanding_loads(), 0);
        assert_eq!(w.issue_block(27), None); // ALU not fetched yet -> None
        w.fetch(1, &desc, 1, 0);
        assert_eq!(w.issue_block(20), Some(IssueBlock::RawPending));
        assert_eq!(w.issue_block(28), None);
    }

    #[test]
    fn waw_on_inflight_load_destination_blocks() {
        // Two loads to the same destination register: the second must wait
        // for the first fill (write-after-write on r0).
        let desc = kernel_with(vec![load(0, 1), load(0, 2)], 1);
        let mut w = warp_for(&desc);
        w.fetch(0, &desc, 0, 0);
        w.fetch(0, &desc, 0, 0);
        let first = w.issue(0, 0);
        let id = w.begin_load(first.dst.unwrap());
        w.add_load_transaction(id);
        let _ = w.finish_load_issue(id, 0);
        assert_eq!(
            w.issue_block(100),
            Some(IssueBlock::MemPending),
            "second load must stall on the in-flight destination"
        );
        assert!(w.complete_load_transaction(id, 120));
        assert_eq!(w.issue_block(120), None);
    }

    #[test]
    fn stale_fill_is_ignored() {
        let desc = kernel_with(vec![load(0, 1)], 1);
        let mut w = warp_for(&desc);
        w.fetch(0, &desc, 1, 0);
        let _ = w.issue(0, 0);
        assert!(!w.complete_load_transaction(99, 10));
    }

    #[test]
    fn icache_misses_delay_fetch() {
        let mut desc = kernel_with(vec![alu(0, 1); 100], 10);
        desc.icache_miss_rate = 1.0;
        let mut w = warp_for(&desc);
        w.fetch(0, &desc, 2, 40);
        assert_eq!(w.ibuffer.len(), 1);
        // Every fetch misses: next fetch not ready until 42.
        w.fetch(41, &desc, 2, 40);
        assert_eq!(w.ibuffer.len(), 1);
        w.fetch(42, &desc, 2, 40);
        assert_eq!(w.ibuffer.len(), 2);
    }

    #[test]
    fn warp_table_tracks_fetch_issue_and_load_lifecycle() {
        let desc = kernel_with(vec![load(0, 1), alu(2, 0)], 1);
        let mut w = warp_for(&desc);
        let mut t = WarpTable::new(4);
        t.refresh(0, &w);
        assert_eq!(t.resident_mask(), 1);
        assert_eq!(t.live(), 1);
        assert_ne!(t.ib_empty_mask() & 1, 0, "nothing fetched yet");
        assert_eq!(t.fetch_at(0), 0, "fetch port open immediately");
        t.assert_matches(&[Some(w.clone()), None, None, None]);

        w.fetch(0, &desc, 1, 0);
        t.refresh(0, &w);
        assert_eq!(t.ib_empty_mask() & 1, 0);
        assert_eq!(t.head_op(0), OpClass::GlobalLoad);
        t.assert_matches(&[Some(w.clone()), None, None, None]);

        let inst = w.issue(0, 0);
        let id = w.begin_load(inst.dst.unwrap());
        w.add_load_transaction(id);
        let _ = w.finish_load_issue(id, 0);
        w.fetch(1, &desc, 1, 0);
        t.refresh(0, &w);
        assert_ne!(t.mem_pending_mask() & 1, 0, "consumer blocked on load");
        assert_eq!(t.head_ready(0), PENDING_LOAD);
        t.assert_matches(&[Some(w.clone()), None, None, None]);

        assert!(w.complete_load_transaction(id, 50));
        t.refresh(0, &w);
        assert_eq!(t.mem_pending_mask() & 1, 0);
        assert_eq!(t.head_ready(0), 50);
        t.assert_matches(&[Some(w.clone()), None, None, None]);

        t.clear(0);
        assert_eq!(t.resident_mask(), 0);
        assert_eq!(t.fetch_at(0), u64::MAX);
        t.assert_matches(&[None, None, None, None]);
    }

    #[test]
    fn warp_table_tracks_barrier_and_finished_bits() {
        let desc = kernel_with(
            vec![Inst {
                op: OpClass::Barrier,
                dst: None,
                srcs: [None, None],
            }],
            1,
        );
        let mut w = warp_for(&desc);
        let mut t = WarpTable::new(2);
        w.fetch(0, &desc, 1, 0);
        let _ = w.issue(0, 0);
        w.at_barrier = true;
        t.refresh(0, &w);
        assert_ne!(t.barrier_mask() & 1, 0);
        assert_eq!(t.live(), 0, "finished warp leaves the candidate set");
        t.assert_matches(&[Some(w.clone()), None]);
        w.at_barrier = false;
        t.refresh(0, &w);
        assert_eq!(t.barrier_mask(), 0);
    }

    #[test]
    #[should_panic(expected = "at most 64 warp slots")]
    fn warp_table_rejects_more_than_64_slots() {
        let _ = WarpTable::new(65);
    }

    #[test]
    #[should_panic(expected = "finished bit")]
    fn warp_table_oracle_catches_divergence() {
        let desc = kernel_with(vec![alu(0, 1)], 1);
        let mut w = warp_for(&desc);
        let mut t = WarpTable::new(1);
        t.refresh(0, &w);
        // Mutate the warp without refreshing: the oracle must object.
        w.fetch(0, &desc, 1, 0);
        let _ = w.issue(0, 1);
        t.assert_matches(&[Some(w)]);
    }

    #[test]
    fn mem_pending_dominates_raw() {
        let desc = kernel_with(vec![load(0, 1), alu(1, 2), alu(3, 0)], 1);
        let mut w = warp_for(&desc);
        w.fetch(0, &desc, 0, 0);
        let inst = w.issue(0, 0);
        let id = w.begin_load(inst.dst.unwrap());
        w.add_load_transaction(id);
        let _ = w.finish_load_issue(id, 0);
        w.fetch(1, &desc, 0, 0);
        let _ = w.issue(1, 10); // r1 ready at 11? (now=1 + 10)
        w.fetch(2, &desc, 0, 0);
        // Head reads r0 (mem-pending): classified as MemPending.
        assert_eq!(w.issue_block(2), Some(IssueBlock::MemPending));
    }
}
