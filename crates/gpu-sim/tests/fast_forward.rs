//! Randomized equivalence tests for the event-horizon fast-forward path.
//!
//! The contract (DESIGN.md §9) is that skipping dead cycles changes *only*
//! wall-clock time: every counter in every statistics structure must be
//! byte-identical to the naive one-tick-at-a-time loop. These tests drive
//! randomly generated kernel mixes — including barriers, partition-window
//! changes, and mid-run kernel halts — through both modes and compare the
//! full `Debug` rendering of the final state.
//!
//! Cases are generated with the in-tree deterministic `SimRng`
//! (xoshiro256++) so the suite runs with `--offline` and replays
//! identically everywhere; each assertion carries its case index, which
//! together with the fixed seed reproduces the exact inputs.

use gpu_sim::{
    AccessPattern, Gpu, GpuConfig, KernelDesc, KernelId, PartitionWindow, ProgramSpec, Region,
    SchedulerKind, SimRng, Sm,
};

/// A scripted mid-run intervention, applied at a fixed cycle in both modes.
#[derive(Debug, Clone)]
enum Action {
    /// Halt kernel-slot `k` (drains its CTAs and frees its resources).
    Halt(usize),
    /// Constrain kernel-slot `k` on SM `sm` to the given partition window.
    Window(usize, usize, Option<PartitionWindow>),
    /// Sweep-launch every kernel onto every SM that will take it.
    Relaunch,
}

/// One randomized scenario: a kernel mix, an initial residency, and a
/// timeline of interventions.
#[derive(Debug, Clone)]
struct Scenario {
    config: GpuConfig,
    scheduler: SchedulerKind,
    kernels: Vec<KernelDesc>,
    /// `(kernel slot, sm, launches)` triples applied before cycle 0.
    placements: Vec<(usize, usize, usize)>,
    /// Cycle-sorted interventions.
    script: Vec<(u64, Action)>,
    total_cycles: u64,
}

fn random_kernel(rng: &mut SimRng, slot: usize) -> KernelDesc {
    let barrier_frac = [0.0, 0.0, 0.06, 0.15][rng.range_usize(4)];
    let seed = rng.next_u64();
    KernelDesc {
        name: format!("k{slot}"),
        grid_ctas: 16 + rng.range_u64(240),
        threads_per_cta: 64 * (1 + rng.range_u64(4) as u32),
        regs_per_thread: 16 + 8 * rng.range_u64(3) as u32,
        shmem_per_cta: 2048 * rng.range_u64(3) as u32,
        program: ProgramSpec {
            body_len: 16 + rng.range_usize(48),
            gload_frac: 0.05 + 0.35 * rng.unit_f64(),
            sfu_frac: 0.1 * rng.unit_f64(),
            shmem_frac: 0.1 * rng.unit_f64(),
            barrier_frac,
            dep_distance: 2 + rng.range_usize(8),
            seed,
            ..ProgramSpec::default()
        }
        .generate(),
        iterations: 2 + rng.range_u64(4) as u32,
        pattern: if rng.unit_f64() < 0.5 {
            AccessPattern::Streaming {
                transactions: 1 + rng.range_u64(3) as u32,
            }
        } else {
            AccessPattern::Random {
                footprint_lines: 1 << (10 + rng.range_u64(6)),
                transactions: 1 + rng.range_u64(3) as u32,
            }
        },
        icache_miss_rate: 0.0,
        shmem_conflict_degree: 1,
        seed,
    }
}

fn random_scenario(rng: &mut SimRng) -> Scenario {
    let mut config = GpuConfig::isca_baseline();
    // Fewer SMs keeps the naive arm of the A/B affordable without losing
    // any of the interesting machinery (barriers, MSHRs, DRAM contention).
    config.num_sms = 4 + 4 * rng.range_u64(2) as u32;
    let num_sms = config.num_sms as usize;
    let nk = 1 + rng.range_usize(3);
    let kernels: Vec<KernelDesc> = (0..nk).map(|s| random_kernel(rng, s)).collect();

    // Sparse, random residency: some SMs empty (pure dead cycles), some
    // partly filled, some saturated.
    let mut placements = Vec::new();
    for sm in 0..num_sms {
        if rng.unit_f64() < 0.35 {
            continue; // leave this SM idle
        }
        let k = rng.range_usize(nk);
        let launches = 1 + rng.range_usize(6);
        placements.push((k, sm, launches));
    }

    let total_cycles = 4_000 + rng.range_u64(6_000);
    let mut script = Vec::new();
    let events = rng.range_usize(4);
    for _ in 0..events {
        let at = 500 + rng.range_u64(total_cycles - 1_000);
        let action = match rng.range_usize(4) {
            0 => Action::Halt(rng.range_usize(nk)),
            1 => Action::Relaunch,
            2 => Action::Window(rng.range_usize(nk), rng.range_usize(num_sms), None),
            _ => {
                let half = PartitionWindow {
                    regs: Region {
                        start: 0,
                        len: config.sm.max_registers / 2,
                    },
                    shmem: Region {
                        start: 0,
                        len: config.sm.shared_mem_bytes / 2,
                    },
                    max_ctas: config.sm.max_ctas / 2,
                    max_threads: config.sm.max_threads / 2,
                };
                Action::Window(rng.range_usize(nk), rng.range_usize(num_sms), Some(half))
            }
        };
        script.push((at, action));
    }
    script.sort_by_key(|&(at, _)| at);

    Scenario {
        config,
        scheduler: if rng.unit_f64() < 0.5 {
            SchedulerKind::GreedyThenOldest
        } else {
            SchedulerKind::RoundRobin
        },
        kernels,
        placements,
        script,
        total_cycles,
    }
}

/// Advances to `end`, fast-forwarding through dead spans when the GPU has
/// it enabled (a no-op otherwise, so the same driver serves both arms).
fn run_to(gpu: &mut Gpu, end: u64) {
    while gpu.cycle() < end {
        gpu.tick();
        let _ = gpu.fast_forward(end);
    }
}

/// Everything the fast-forward path must reproduce bit-for-bit, rendered
/// through `Debug` so every counter is compared, plus the per-SM IPC values
/// the Warped-Slicer profiler consumes.
fn run_scenario(sc: &Scenario, ff: bool) -> (String, u64) {
    let mut gpu = Gpu::new(sc.config.clone(), sc.scheduler);
    gpu.set_fast_forward(ff);
    let ids: Vec<KernelId> = sc
        .kernels
        .iter()
        .map(|d| gpu.add_kernel(d.clone()))
        .collect();
    for &(k, sm, launches) in &sc.placements {
        for _ in 0..launches {
            if !gpu.try_launch(ids[k], sm) {
                break;
            }
        }
    }
    for &(at, ref action) in &sc.script {
        run_to(&mut gpu, at);
        match *action {
            Action::Halt(k) => gpu.halt_kernel(ids[k]),
            Action::Window(k, sm, w) => {
                gpu.set_window(sm, ids[k], w);
                // A widened window may admit new CTAs; launch like a
                // controller would.
                for &kid in &ids {
                    while gpu.try_launch(kid, sm) {}
                }
            }
            Action::Relaunch => {
                for sm in 0..gpu.num_sms() {
                    for &kid in &ids {
                        while gpu.try_launch(kid, sm) {}
                    }
                }
            }
        }
    }
    run_to(&mut gpu, sc.total_cycles);

    let insts: Vec<u64> = ids.iter().map(|&k| gpu.kernel_insts(k)).collect();
    let ipc: Vec<f64> = gpu.sms().map(|sm| sm.stats().ipc()).collect();
    let state = format!(
        "cycle={} insts={:?} ipc={:?} sms={:?} mem={:?}",
        gpu.cycle(),
        insts,
        ipc,
        gpu.sms().map(Sm::stats).collect::<Vec<_>>(),
        gpu.mem_stats(),
    );
    (state, gpu.skipped_cycles())
}

#[test]
fn fast_forward_is_byte_identical_across_random_mixes() {
    let mut rng = SimRng::seed_from_u64(0xFFF0_0001);
    let mut total_skipped = 0u64;
    let mut total_cycles = 0u64;
    const CASES: usize = 52;
    for case in 0..CASES {
        let sc = random_scenario(&mut rng);
        let (naive, naive_skipped) = run_scenario(&sc, false);
        let (fast, skipped) = run_scenario(&sc, true);
        assert_eq!(naive_skipped, 0, "case {case}: naive arm must not skip");
        assert_eq!(
            naive, fast,
            "case {case}: fast-forward diverged from the naive loop\nscenario: {sc:?}"
        );
        total_skipped += skipped;
        total_cycles += sc.total_cycles;
    }
    // The property is vacuous if no case ever fast-forwards: random sparse
    // residency must produce a meaningful volume of dead cycles.
    assert!(
        total_skipped > total_cycles / 20,
        "fast-forward only skipped {total_skipped} of {total_cycles} cycles — \
         the scenarios no longer exercise the skip path"
    );
}

#[test]
fn fast_forward_matches_under_barrier_heavy_load() {
    // Dedicated barrier stress: every warp of a CTA must rendezvous, which
    // exercises the horizon rule that barrier-parked warps contribute
    // fetch events but no issue events.
    let mut rng = SimRng::seed_from_u64(0xFFF0_0002);
    for case in 0..6 {
        let mut sc = random_scenario(&mut rng);
        for k in &mut sc.kernels {
            let spec = ProgramSpec {
                barrier_frac: 0.25,
                body_len: 24,
                dep_distance: 3,
                seed: k.seed,
                ..ProgramSpec::default()
            };
            k.program = spec.generate();
            k.threads_per_cta = 256;
        }
        sc.total_cycles = 3_000;
        let (naive, _) = run_scenario(&sc, false);
        let (fast, _) = run_scenario(&sc, true);
        assert_eq!(naive, fast, "barrier case {case} diverged");
    }
}
